package mosaic

// Cross-module integration tests: these exercise the full stack —
// device physics → analog BER → bit-true PHY → traffic — and check that
// the layers agree with each other, stay deterministic, never corrupt
// data silently, and behave under concurrency.

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

func makeFrames(rng *rand.Rand, n, size int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = make([]byte, size)
		rng.Read(frames[i])
	}
	return frames
}

// TestAnalogPredictsDigital checks the core consistency property: where
// the analog model says the channels are clean, the bit-true pipeline
// delivers everything; where the analog model says the eye is collapsed,
// the pipeline collapses too.
func TestAnalogPredictsDigital(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frames := makeFrames(rng, 100, 1500)
	for _, tc := range []struct {
		lengthM   float64
		expectAll bool
	}{
		{2, true},
		{30, true},
		{50, true},
		{90, false}, // ~35 dB past margin: unusable
	} {
		d := core.DefaultDesign()
		d.LengthM = tc.lengthM
		link, err := d.BuildPHY()
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := link.Exchange(frames)
		if err != nil {
			// A link whose bring-up failed every channel refuses traffic —
			// that is the correct "collapse" outcome.
			if tc.expectAll {
				t.Fatalf("at %vm: %v", tc.lengthM, err)
			}
			continue
		}
		if tc.expectAll && st.FramesDelivered != len(frames) {
			t.Errorf("at %vm: %d/%d delivered, analog predicted clean",
				tc.lengthM, st.FramesDelivered, len(frames))
		}
		if !tc.expectAll && st.FramesDelivered > len(frames)/2 {
			t.Errorf("at %vm: %d/%d delivered, analog predicted collapse",
				tc.lengthM, st.FramesDelivered, len(frames))
		}
		// Delivered frames must match bit-for-bit (FCS guarantee).
		for i, f := range got {
			if tc.expectAll && !bytes.Equal(f, frames[i]) {
				t.Fatalf("at %vm: delivered frame %d corrupted", tc.lengthM, i)
			}
		}
	}
}

// TestNoSilentCorruption pushes traffic through a badly degraded link and
// asserts the FCS layer never lets a corrupted frame through as good.
func TestNoSilentCorruption(t *testing.T) {
	cfg := phy.DefaultConfig()
	cfg.FEC = phy.NoFEC{} // no protection: maximise corruption chances
	cfg.Seed = 11
	link, err := phy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for p := 0; p < link.Mapper().NumChannels(); p++ {
		link.SetChannelBER(p, 3e-4)
	}
	sent := makeFrames(rng, 300, 900)
	index := map[string]bool{}
	for _, f := range sent {
		index[string(f)] = true
	}
	got, st, err := link.Exchange(sent)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered == len(sent) {
		t.Skip("no corruption at this seed; raise BER")
	}
	for _, f := range got {
		if !index[string(f)] {
			t.Fatal("a delivered frame matches nothing that was sent")
		}
	}
}

// TestMonitorEstimatesInjectedBER checks the health monitor's
// corrected-error BER estimate lands near the truly injected BER.
func TestMonitorEstimatesInjectedBER(t *testing.T) {
	cfg := phy.DefaultConfig()
	cfg.Lanes = 10
	cfg.Spares = 0
	cfg.FEC = phy.NewRSLite()
	cfg.Seed = 5
	link, err := phy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const injected = 2e-5
	for p := 0; p < 10; p++ {
		link.SetChannelBER(p, injected)
	}
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 30; round++ {
		if _, _, err := link.Exchange(makeFrames(rng, 50, 1500)); err != nil {
			t.Fatal(err)
		}
	}
	var est, n float64
	for _, h := range link.Monitor().Snapshot() {
		if h.BitsObserved > 0 {
			est += h.EstimatedBER()
			n++
		}
	}
	est /= n
	// RS corrections count symbol errors, not bit errors, so the estimate
	// runs ~1 byte-symbol per bit flip: within 3x is agreement.
	if est < injected/3 || est > injected*3 {
		t.Errorf("monitor estimate %v vs injected %v", est, injected)
	}
}

// TestConcurrentLinksAreIndependent runs many links in parallel (each has
// its own RNGs) and checks determinism is preserved per link. Run with
// -race to verify the per-channel worker fan-out is clean.
func TestConcurrentLinksAreIndependent(t *testing.T) {
	results := make([]int, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := phy.DefaultConfig()
			cfg.Seed = 77 // identical seeds => identical results
			link, err := phy.New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for p := 0; p < link.Mapper().NumChannels(); p++ {
				link.SetChannelBER(p, 5e-5)
			}
			rng := rand.New(rand.NewSource(77))
			_, st, err := link.Exchange(makeFrames(rng, 100, 1500))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = st.Corrections
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("identical links diverged: %v", results)
		}
	}
}

// TestWaveformAgreesWithBudget cross-validates the eye simulator against
// the closed-form link budget at the design operating point.
func TestWaveformAgreesWithBudget(t *testing.T) {
	d := core.DefaultDesign()
	d.LengthM = 40
	res, err := d.NominalChannel()
	if err != nil {
		t.Fatal(err)
	}
	cfg := channel.EyeConfig{
		BitRate:     d.ChannelRate,
		BandwidthHz: res.BandwidthHz,
		HighLevel:   1,
		LowLevel:    0,
		NoiseSigma:  1 / (2 * res.Q), // by construction: Q = swing/(2 sigma)
		NumBits:     4000,
		Seed:        9,
	}
	eye, err := channel.SimulateEye(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := eye.QAtBestPhase()
	if q < res.Q/3 || q > res.Q*3 {
		t.Errorf("waveform Q %v vs budget Q %v", q, res.Q)
	}
}

// TestEndToEndNetworkStory runs the complete systems pitch in one test:
// analyse a fabric, pick the Mosaic plan, run flows, fault a link, and
// verify the network survives.
func TestEndToEndNetworkStory(t *testing.T) {
	topo, err := netsim.NewFatTree(8, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := netsim.Analyze(topo, netsim.MosaicPlan(), 800e9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PowerW <= 0 || rep.FailuresPerYear <= 0 {
		t.Fatalf("degenerate analysis: %+v", rep)
	}

	eng := sim.NewEngine(13)
	fs := netsim.NewFlowSim(topo, eng)
	hosts := topo.Hosts()
	dist := workload.WebSearch()
	rng := eng.RNG("story")
	for i := 0; i < 500; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		at := sim.Time(float64(i) * 1e-6)
		eng.Schedule(at, func() {
			if _, err := fs.StartFlow(src, dst, dist.SampleBits(rng), rng.Uint64()); err != nil {
				t.Error(err)
			}
		})
	}
	// Degrade one fabric link Mosaic-style partway through.
	victim := topo.LinksByTier()[netsim.TierToRAgg][3]
	eng.Schedule(250e-6, func() { fs.SetLinkCapacityFraction(victim, 0.96) })
	eng.Run()

	st := netsim.Stats(fs.Records())
	if st.Count != 500 || st.Stalled != 0 {
		t.Fatalf("network story failed: %+v", st)
	}
}

// TestConfigToTraffic drives the JSON-config path end to end: parse a
// design, build the PHY (bring-up included), push traffic.
func TestConfigToTraffic(t *testing.T) {
	d, err := core.ReadDesign(strings.NewReader(
		`{"aggregateRateGbps": 400, "channelRateGbps": 2, "spares": 8,
		  "lengthM": 25, "fec": "hamming72", "channelPitchUm": 25,
		  "spotDiameterUm": 20, "seed": 33}`))
	if err != nil {
		t.Fatal(err)
	}
	link, err := d.BuildPHY()
	if err != nil {
		t.Fatal(err)
	}
	if link.Config().FEC.Name() != "hamming72" {
		t.Fatalf("FEC = %s", link.Config().FEC.Name())
	}
	rng := rand.New(rand.NewSource(33))
	got, st, err := link.Exchange(makeFrames(rng, 60, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 60 {
		t.Fatalf("configured link dropped frames: %+v", st)
	}
	if len(got) != 60 {
		t.Fatal("delivery count mismatch")
	}
}

// TestMaintenanceUnderStream runs the predictive-maintenance policy inside
// a time-domain stream: periodic Maintain calls replace a drifting channel
// before it loses anything.
func TestMaintenanceUnderStream(t *testing.T) {
	d := core.DefaultDesign()
	d.Variation.DeadProb = 0
	link, err := d.BuildPHY()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(3)
	stream, err := phy.NewStream(link, eng)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	stream.Enqueue(makeFrames(rng, 1500, 1500)...)

	// Channel 12 drifts upward during the run; a maintenance tick fires
	// every 20 µs.
	eng.After(15e-6, func() { link.SetChannelBER(12, 5e-5) })
	var tick func()
	tick = func() {
		link.Maintain(phy.DefaultMaintenancePolicy())
		if stream.QueueDepth() > 0 {
			eng.After(20e-6, tick)
		}
	}
	eng.After(20e-6, tick)
	eng.Run()

	if stream.FramesLost != 0 {
		t.Errorf("lost %d frames despite graceful drift + maintenance", stream.FramesLost)
	}
	if link.Mapper().LaneOf(12) != -1 {
		t.Error("drifting channel never replaced")
	}
}

// TestExchangeRepeatabilityAcrossRuns guards the documented determinism
// contract of the whole stack.
func TestExchangeRepeatabilityAcrossRuns(t *testing.T) {
	run := func() (int, int) {
		d := core.Design800G()
		d.LengthM = 40
		d.Seed = 21
		link, err := d.BuildPHY()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		_, st, err := link.Exchange(makeFrames(rng, 50, 4096))
		if err != nil {
			t.Fatal(err)
		}
		return st.FramesDelivered, st.Corrections
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("runs diverged: %d/%d vs %d/%d", d1, c1, d2, c2)
	}
}
