// Datacenter: network-scale consequences of the link technology choice.
// Builds a k=16 fat-tree (1024 hosts), compares the three deployment plans
// on power and expected failures, then runs a loaded flow simulation where
// a ToR-aggregation link faults mid-run — once as a Mosaic link losing 4%
// of its channels, once as an optical link going dark.
package main

import (
	"fmt"
	"log"

	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/sim"
)

func main() {
	topo, err := netsim.NewFatTree(16, 800e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fat-tree k=16: %d hosts, %d links\n\n", topo.NumHosts(), len(topo.Links))

	fmt.Printf("%-12s %10s %16s\n", "plan", "power_kW", "link failures/yr")
	for _, plan := range netsim.Plans() {
		rep, err := netsim.Analyze(topo, plan, 800e9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.1f %16.1f\n", rep.Plan, rep.PowerW/1e3, rep.FailuresPerYear)
	}

	fmt.Println("\nflow simulation (k=8, websearch flows, load 0.4, access-link fault mid-run):")
	fmt.Printf("%-24s %8s %10s %10s\n", "scenario", "stalled", "mean_ms", "p99_ms")
	for _, sc := range []struct {
		name string
		frac float64
	}{
		{"no-fault", -1},
		{"mosaic-degraded(-4%)", 0.96},
		{"optics-linkdown", 0},
	} {
		st := run(sc.frac)
		fmt.Printf("%-24s %8d %10.3f %10.3f\n",
			sc.name, st.Stalled, float64(st.Mean)*1e3, float64(st.P99)*1e3)
	}
	fmt.Println("\nthe Mosaic fault is a rounding error; the optical fault moves the tail")
	fmt.Println("(and on access links, where there is no ECMP, it strands hosts entirely).")
}

func run(frac float64) netsim.FCTStats {
	topo, err := netsim.NewFatTree(8, 800e9)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(3)
	fs := netsim.NewFlowSim(topo, eng)
	hosts := topo.Hosts()
	dist := workload.WebSearch()
	arr := workload.NewPoissonForLoad(0.4, len(hosts), 800e9, dist.MeanBits())
	rng := eng.RNG("flows")

	const nflows = 2000
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= nflows {
			return
		}
		eng.Schedule(at, func() {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			_, _ = fs.StartFlow(src, dst, dist.SampleBits(rng), rng.Uint64())
			schedule(i+1, at+sim.Time(arr.NextGapSec(rng)))
		})
	}
	schedule(0, 0)
	if frac >= 0 {
		// Fault once ~15% of the flows have arrived (mid-run, independent
		// of absolute arrival rate). Fault an access link: that is where
		// link-down has no ECMP to hide behind.
		faultAt := sim.Time(0.15 * nflows / arr.RatePerSec)
		victim := topo.LinksByTier()[netsim.TierHostToR][0]
		eng.Schedule(faultAt, func() {
			fs.SetLinkCapacityFraction(victim, frac)
		})
	}
	eng.Run()
	return netsim.Stats(fs.Records())
}
