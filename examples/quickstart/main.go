// Quickstart: build the paper's 100-channel Mosaic prototype, check its
// link budget, and push real frames through the bit-true pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mosaic/internal/core"
	"mosaic/internal/units"
)

func main() {
	// 1. The paper's prototype: 100 channels x 2 Gbps over imaging fiber.
	design := core.DefaultDesign()
	design.LengthM = 10

	// 2. Analog analysis: is the link budget sound?
	res, err := design.NominalChannel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal channel at %.0f m: %v\n", design.LengthM, res)
	fmt.Printf("max reach at BER 1e-12:  %.1f m\n", design.MaxReach(1e-12))

	// 3. Power: where does the 69% saving come from?
	budget := design.PowerBudget()
	fmt.Printf("module pair power: %v (%.2f pJ/bit)\n",
		units.Power(budget.TotalW()), budget.PJPerBit())
	for _, c := range budget.SortedComponents() {
		fmt.Printf("  %-18s %v\n", c.Name, units.Power(c.PowerW))
	}

	// 4. Bit-true traffic: 100 Ethernet-sized frames through TX, 104
	// simulated noisy channels, and RX.
	link, err := design.BuildPHY()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	frames := make([][]byte, 100)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	delivered, stats, err := link.Exchange(frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexchanged %d frames: %d delivered, %d FEC corrections, efficiency %.3f\n",
		stats.FramesIn, len(delivered), stats.Corrections,
		float64(stats.PayloadBytes)/float64(stats.WireBytes))
	fmt.Printf("aggregate rate: %v across %d lanes\n",
		units.DataRate(link.AggregateRate()), link.Mapper().NumLanes())
}
