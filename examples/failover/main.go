// Failover: watch a Mosaic link absorb transmitter deaths. Channels are
// killed one by one while traffic flows; the monitor detects each death
// from frame loss, the mapper remaps the lane onto a spare, and — once the
// spares run out — the link degrades its rate instead of going dark.
// Compare with a laser link, where the first death is an outage.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mosaic/internal/core"
	"mosaic/internal/units"
)

func main() {
	design := core.DefaultDesign()
	design.Variation.DeadProb = 0 // start with a perfect array
	design.Spares = 2
	link, err := design.BuildPHY()
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	frames := make([][]byte, 50)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}

	exchange := func(tag string) {
		_, st, err := link.Exchange(frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s lanes=%-3d rate=%-8v delivered=%d/%d unitsLost=%d\n",
			tag, link.Mapper().NumLanes(), units.DataRate(link.AggregateRate()),
			st.FramesDelivered, st.FramesIn, st.UnitsLost)
	}

	exchange("healthy")

	victims := []int{17, 42, 63, 88}
	for i, v := range victims {
		// The transmitter dies mid-operation...
		link.KillChannel(v)
		exchange(fmt.Sprintf("channel %d died", v))

		// ...the monitor has now seen the loss; check its verdict...
		h := link.Monitor().Health(v)
		fmt.Printf("  monitor: channel %d is %v (lost %d frames)\n", v, h.State, h.FramesLost)

		// ...and the sparing logic repairs the lane map.
		ev := link.FailChannel(v)
		fmt.Printf("  sparing: %v (spares left: %d)\n", ev, link.Mapper().SparesLeft())
		exchange(fmt.Sprintf("after repair #%d", i+1))
		fmt.Println()
	}

	fmt.Println("summary: two deaths absorbed by spares (full rate),")
	fmt.Println("two more degraded the lane count — the link never went down.")
}
