// Streaming: continuous time-domain operation of a Mosaic link on the
// discrete-event engine. A traffic source enqueues frames, a channel dies
// mid-stream, the monitor catches it, sparing repairs it — and the
// goodput/loss timeline shows the whole episode with real timestamps.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mosaic/internal/core"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
	"mosaic/internal/units"
)

func main() {
	design := core.DefaultDesign()
	design.Variation.DeadProb = 0
	link, err := design.BuildPHY()
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(11)
	stream, err := phy.NewStream(link, eng)
	if err != nil {
		log.Fatal(err)
	}

	// A steady source: 2000 x 1500B frames ≈ 24 Mbit, a few hundred µs at
	// 200 Gbps.
	rng := rand.New(rand.NewSource(4))
	frames := make([][]byte, 2000)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	stream.Enqueue(frames...)

	// Channel 33's transmitter dies 40 µs in; ops spares it 40 µs later.
	eng.After(40*sim.Microsecond, func() {
		fmt.Printf("[%v] channel 33 transmitter died\n", eng.Now())
		link.KillChannel(33)
	})
	eng.After(80*sim.Microsecond, func() {
		h := link.Monitor().Health(33)
		ev := link.FailChannel(33)
		fmt.Printf("[%v] monitor: channel 33 is %v; %v\n", eng.Now(), h.State, ev)
	})

	eng.Run()

	fmt.Printf("\n%-12s %-10s %-10s %-10s\n", "time", "rate", "delivered", "lost")
	for _, s := range stream.History {
		fmt.Printf("%-12v %-10v %-10d %-10d\n",
			s.At, units.DataRate(s.Rate), s.Delivered, s.Lost)
	}
	fmt.Printf("\ntotals: %d in, %d out, %d lost; measured goodput %v over %v\n",
		stream.FramesIn, stream.FramesOut, stream.FramesLost,
		units.DataRate(stream.GoodputBps()), eng.Now())
}
