// Reachpower: the trade-off the paper breaks, as a text figure. For each
// link technology it plots energy per bit against usable reach at 800G and
// prints the per-component budgets, then sweeps the Mosaic link budget out
// to its maximum reach.
package main

import (
	"fmt"
	"log"
	"strings"

	"mosaic/internal/core"
	"mosaic/internal/power"
)

func main() {
	design := core.DefaultDesign()

	rows, err := design.CompareTechnologies(800e9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The optics vs copper trade-off at 800G (and how Mosaic sits outside it):")
	fmt.Printf("%-8s %10s %10s %10s\n", "tech", "reach_m", "pJ/bit", "link_FIT")
	for _, r := range rows {
		fmt.Printf("%-8s %10.1f %10.2f %10.0f\n", r.Tech, r.ReachM, r.PJPerBit, r.LinkFIT)
	}

	// A small ASCII scatter: reach (log-ish buckets) vs energy.
	fmt.Println("\nenergy/bit vs reach (each * is one technology):")
	for _, r := range rows {
		bar := int(r.PJPerBit)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%-8s |%s* %5.1f pJ/bit @ %.0fm\n",
			r.Tech, strings.Repeat(" ", bar), r.PJPerBit, r.ReachM)
	}

	// Where the wide-and-slow saving comes from.
	fmt.Println("\n800G module-pair budgets:")
	for _, tech := range []power.Tech{power.DR, power.Mosaic} {
		b, err := power.PerBudget(tech, 800e9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.2f W total\n", tech, b.TotalW())
		for _, c := range b.SortedComponents() {
			fmt.Printf("   %-18s %6.2f W\n", c.Name, c.PowerW)
		}
	}
	red, err := power.Reduction(power.Mosaic, power.DR, 800e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mosaic vs DR: %.0f%% lower power\n", red*100)

	// And the reach sweep of the Mosaic link itself.
	fmt.Println("\nMosaic link budget vs reach (2 Gbps/channel, NRZ):")
	fmt.Printf("%8s %10s %12s %10s\n", "len_m", "rx_dBm", "BER", "margin_dB")
	for _, l := range []float64{2, 10, 20, 30, 40, 50, 60} {
		d := design
		d.LengthM = l
		res, err := d.NominalChannel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %10.1f %12.2e %10.1f\n", l, res.RxPowerDBm, res.BER, res.MarginDB)
	}
	fmt.Printf("\nmax reach at 1e-12: %.1f m (copper at 112G PAM4: ~2 m)\n",
		design.MaxReach(1e-12))
}
