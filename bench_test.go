package mosaic

// One benchmark per reconstructed table/figure (E1-E25) and ablation
// (A1-A5). Each bench regenerates its experiment through the experiment
// registry — the same code path as cmd/mosaicbench — reports the headline
// numbers as custom metrics, and (with -v) logs the full table.
//
//	go test -bench=. -benchmem            # all experiments as benchmarks
//	go test -bench=BenchmarkE4 -v         # one experiment, with its table
//	go run ./cmd/mosaicbench              # the same tables as a report

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/experiments"
	"mosaic/internal/fleetd"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/power"
	"mosaic/internal/reliability"
)

// logTable renders a table into the bench log (visible with -v).
func logTable(b *testing.B, tab experiments.Table, err error) experiments.Table {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	b.Log("\n" + buf.String())
	return tab
}

// runExperiment regenerates one registered experiment b.N times with
// seed 1 and returns the last table.
func runExperiment(b *testing.B, id string) experiments.Table {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = e.Gen(1)
	}
	return logTable(b, tab, err)
}

func BenchmarkE1TradeoffTable(b *testing.B) {
	tab := runExperiment(b, "E1")
	// Headline metrics: Mosaic reach multiple over copper.
	var dac, mosaic float64
	for _, r := range tab.Rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		switch r[0] {
		case "DAC":
			dac = v
		case "Mosaic":
			mosaic = v
		}
	}
	if dac > 0 {
		b.ReportMetric(mosaic/dac, "reach_x_copper")
	}
}

func BenchmarkE2PowerBreakdown(b *testing.B) {
	runExperiment(b, "E2")
	red, err := power.Reduction(power.Mosaic, power.DR, 800e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(red*100, "reduction_pct")
}

func BenchmarkE3PowerScaling(b *testing.B) {
	runExperiment(b, "E3")
	m, _ := power.PerBudget(power.Mosaic, 1.6e12)
	b.ReportMetric(m.PJPerBit(), "mosaic_1.6T_pJ_per_bit")
}

func BenchmarkE4ReachBudget(b *testing.B) {
	runExperiment(b, "E4")
	b.ReportMetric(core.DefaultDesign().MaxReach(1e-12), "reach_m")
	b.ReportMetric(channel.Twinax26AWG().MaxReach(
		channel.NyquistHz(106.25e9, channel.PAM4), 28), "copper_reach_m")
}

func BenchmarkE5PrototypeBER(b *testing.B) {
	runExperiment(b, "E5")
	d := core.DefaultDesign()
	d.LengthM = 40
	rep, err := d.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.MedianBER, "median_BER_40m")
	b.ReportMetric(float64(rep.BelowTarget), "channels_above_1e-12")
}

func BenchmarkE6Misalignment(b *testing.B) {
	runExperiment(b, "E6")
	d := core.DefaultDesign()
	penalty := d.Fiber.CouplingLossDB(d.SpotDiameterM, 10e-6) -
		d.Fiber.CouplingLossDB(d.SpotDiameterM, 0)
	b.ReportMetric(penalty, "10um_penalty_dB")
}

func BenchmarkE7Reliability(b *testing.B) {
	runExperiment(b, "E7")
	mission := 5 * reliability.HoursPerYear
	b.ReportMetric(float64(reliability.MosaicLinkFIT(400, 16, mission)), "mosaic_FIT")
	b.ReportMetric(float64(reliability.LinkFIT(reliability.FITLaserDFB, 8)), "dr8_FIT")
}

func BenchmarkE8ScalingTable(b *testing.B) {
	runExperiment(b, "E8")
	b.ReportMetric(float64(power.MosaicChannels(1.6e12)), "channels_at_1.6T")
}

func BenchmarkE9SweetSpot(b *testing.B) {
	runExperiment(b, "E9")
	b.ReportMetric(power.SweetSpotRate()/1e9, "sweet_spot_Gbps")
}

func BenchmarkE10EndToEnd(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "E10")
}

func BenchmarkE11Datacenter(b *testing.B) {
	runExperiment(b, "E11")
}

func BenchmarkE12Degradation(b *testing.B) {
	runExperiment(b, "E12")
}

func BenchmarkE13Temperature(b *testing.B) {
	runExperiment(b, "E13")
}

func BenchmarkE14Latency(b *testing.B) {
	runExperiment(b, "E14")
}

func BenchmarkE15Cost(b *testing.B) {
	runExperiment(b, "E15")
	_, cheapest, err := power.CheapestAt(800e9, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cheapest.TotalUSD(), "mosaic_30m_usd")
}

func BenchmarkE16BlastRadius(b *testing.B) {
	runExperiment(b, "E16")
}

func BenchmarkE17Equalization(b *testing.B) {
	runExperiment(b, "E17")
}

func BenchmarkE18Waterfall(b *testing.B) {
	runExperiment(b, "E18")
}

func BenchmarkE19OpticsBudget(b *testing.B) {
	runExperiment(b, "E19")
}

func BenchmarkE20FleetTCO(b *testing.B) {
	runExperiment(b, "E20")
}

func BenchmarkE21PredictiveMaintenance(b *testing.B) {
	runExperiment(b, "E21")
}

func BenchmarkE22SparingSoak(b *testing.B) {
	tab := runExperiment(b, "E22")
	// Headline: worst absolute deviation of the pipeline-measured
	// survival from the k-of-n closed form, across spare levels.
	var worst float64
	for i := range tab.Rows {
		v, _ := strconv.ParseFloat(tab.Rows[i][4], 64)
		if v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst_abs_err")
}

func BenchmarkE23MACRenegotiation(b *testing.B) {
	tab := runExperiment(b, "E23")
	// Headline: flows stranded by the copper cut vs by the MAC's graceful
	// renegotiation (the latter must be zero), and the final capacity
	// fraction the bridge negotiated down to.
	for i := range tab.Rows {
		stalled, _ := strconv.ParseFloat(tab.Rows[i][2], 64)
		switch tab.Rows[i][0] {
		case "mosaic-aging(mac)":
			b.ReportMetric(stalled, "mosaic_stalled")
			frac, _ := strconv.ParseFloat(tab.Rows[i][5], 64)
			b.ReportMetric(frac, "frac_end")
		case "copper-link-down":
			b.ReportMetric(stalled, "copper_stalled")
		}
	}
}

func BenchmarkE24FleetFlows(b *testing.B) {
	// The fleet-scale experiment is the sharded incremental engine's
	// time-and-allocation budget: ~700k flows over 1752 links in a
	// handful of seconds. Headline metrics: the diurnal peak backlog and
	// how many flow-rate assignments the dirty-set waterfill performed
	// (the full-sweep equivalent would be orders of magnitude larger).
	b.ReportAllocs()
	tab := runExperiment(b, "E24")
	notes := tab.Notes
	if i := strings.Index(notes, "peak concurrent "); i >= 0 {
		var peak float64
		fmt.Sscanf(notes[i:], "peak concurrent %f", &peak)
		b.ReportMetric(peak, "peak_flows")
	}
	var rated float64
	if i := strings.Index(notes, "waterfills rated "); i >= 0 {
		fmt.Sscanf(notes[i:], "waterfills rated %f", &rated)
		b.ReportMetric(rated, "rated_flows")
	}
}

func BenchmarkE25ARQGoodput(b *testing.B) {
	tab := runExperiment(b, "E25")
	// Headline: goodput under identical burst loss per ARQ discipline —
	// selective repeat must hold strictly above go-back-N, whose
	// whole-window replays displace fresh frames at this offered load.
	for i := range tab.Rows {
		goodput, _ := strconv.ParseFloat(tab.Rows[i][3], 64)
		switch tab.Rows[i][0] {
		case "gbn-1vc":
			b.ReportMetric(goodput, "gbn_Mbps")
		case "sr-1vc":
			b.ReportMetric(goodput, "sr_Mbps")
		case "sr-3vc-qos":
			b.ReportMetric(goodput, "qos_Mbps")
		}
	}
}

func BenchmarkA1Oversampling(b *testing.B) {
	runExperiment(b, "A1")
}

func BenchmarkA2FECChoice(b *testing.B) {
	runExperiment(b, "A2")
}

func BenchmarkA3UnitSize(b *testing.B) {
	runExperiment(b, "A3")
}

func BenchmarkA4SparingPolicy(b *testing.B) {
	runExperiment(b, "A4")
}

func BenchmarkA5Modulation(b *testing.B) {
	runExperiment(b, "A5")
}

// BenchmarkFullSuite regenerates the entire registry through the parallel
// runner, the way `mosaicbench -par N` does.
func BenchmarkFullSuite(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run("par="+strconv.Itoa(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiments.Run(nil, 1, par)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkPipelineThroughput measures the raw simulation speed of the
// bit-true 100-channel pipeline (not a paper figure; an implementation
// benchmark).
func BenchmarkPipelineThroughput(b *testing.B) {
	link, err := core.DefaultDesign().BuildPHY()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	frames := make([][]byte, 64)
	total := 0
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
		total += 1500
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := link.Exchange(frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeSteadyState measures the zero-allocation Exchange
// path: the paper's 100-channel link in the clean steady state, with the
// caller recycling delivered frames through an ExchangeBuf arena. The
// baseline pins this at 0 allocs/op — every buffer in the TX → channel →
// RX round trip (lane slabs, streams, parse scratch, the output arena,
// the pool dispatch) must be reused, so any steady-state allocation is a
// regression (enforced by benchguard).
func BenchmarkExchangeSteadyState(b *testing.B) {
	link, err := phy.New(phy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	frames := make([][]byte, 64)
	total := 0
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
		total += 1500
	}
	var buf phy.ExchangeBuf
	delivered := 0
	// Warm the path: buffers grow to the traffic high-water mark on the
	// first round; after that the arena is steady.
	out, _, err := link.ExchangeInto(&buf, frames)
	if err != nil {
		b.Fatal(err)
	}
	if len(out) != len(frames) {
		b.Fatalf("clean link delivered %d/%d frames", len(out), len(frames))
	}

	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := link.ExchangeInto(&buf, frames)
		if err != nil {
			b.Fatal(err)
		}
		delivered += len(out)
	}
	b.StopTimer()
	if delivered != b.N*len(frames) {
		b.Fatalf("delivered %d/%d frames", delivered, b.N*len(frames))
	}
}

// BenchmarkFECSchemes compares per-channel FEC encode+decode speed.
func BenchmarkFECSchemes(b *testing.B) {
	payload := make([]byte, 243)
	rand.New(rand.NewSource(1)).Read(payload)
	for _, fec := range []phy.FEC{phy.NoFEC{}, phy.HammingFEC{}, phy.NewRSLite(), phy.NewRSKP4()} {
		b.Run(fec.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				enc := fec.Encode(payload)
				if _, _, err := fec.Decode(enc, len(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMACFrameRoundTrip measures the MAC framing hot path: append
// one frame into a reused buffer and deframe it back. The baseline pins
// this at 0 allocs/op — framing runs per superframe in the LLR, so any
// steady-state allocation here is a regression (enforced by benchguard).
func BenchmarkMACFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(payload)
	buf := make([]byte, 0, len(payload)+mac.Overhead)
	var d mac.Deframer
	got := 0
	emit := func(fr mac.Frame) {
		if len(fr.Payload) == len(payload) {
			got++
		}
	}
	// Warm the path once so one-time setup never counts as steady state.
	buf = mac.AppendFrame(buf[:0], mac.FlagData, 0, 0, payload)
	d.Deframe(buf, emit)
	got = 0

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = mac.AppendFrame(buf[:0], mac.FlagData, uint16(i), uint16(i), payload)
		d.Deframe(buf, emit)
	}
	b.StopTimer()
	if got != b.N {
		b.Fatalf("round-tripped %d/%d frames", got, b.N)
	}
}

// BenchmarkMACFrameRoundTripSR measures the selective-repeat steady
// state end to end: a packet enters an SR endpoint's queue, rides a v2
// superframe across a loopback, and the sack-bearing ack superframe
// returns. The baseline pins this at 0 allocs/op — the SR engine's
// reorder ring, sack scratch, and recycled queue buffers must keep the
// per-tick path allocation-free just like the go-back-N path.
func BenchmarkMACFrameRoundTripSR(b *testing.B) {
	cfg := mac.Config{
		Window: 32, RetxTimeout: 2, MaxPayload: 1500,
		PayloadBudget: 4096, ARQ: mac.ARQSelectiveRepeat,
	}
	delivered := 0
	tx, err := mac.NewEndpoint(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := mac.NewEndpoint(cfg, func(p []byte) {
		if len(p) == 1500 {
			delivered++
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(payload)
	tick := func() {
		rx.Accept([][]byte{tx.BuildSuperframe()})
		tx.Accept([][]byte{rx.BuildSuperframe()})
	}
	// Warm the path: the SR engine grows its per-slot pools lazily, one
	// buffer per fresh sequence slot, until the free list covers a full
	// window rotation — so warm for 2×Window sends before declaring
	// steady state (pinned allocation-free even at -benchtime 3x).
	for i := 0; i < 2*cfg.Window; i++ {
		if err := tx.Send(payload); err != nil {
			b.Fatal(err)
		}
		tick()
	}
	delivered = 0

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(payload); err != nil {
			b.Fatal(err)
		}
		tick()
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d/%d packets", delivered, b.N)
	}
}

// BenchmarkFleetdAdmit prices one fleet admission end to end: the
// admission gate (token bucket, budget checks, topology slot, event
// log) plus the epoch that constructs the link's PHY/MAC/bridge stack
// and walks it into bring-up. StepBudget=1 keeps the per-epoch serving
// work constant, so the figure measures admission cost, not fleet size.
// Pinned in ci/bench_baseline.json via make bench-check.
func BenchmarkFleetdAdmit(b *testing.B) {
	cfg := fleetd.DefaultConfig()
	cfg.Budgets.AdmitBurst = float64(cfg.Budgets.MaxLinks)
	cfg.Budgets.StepBudget = 1
	cfg.Budgets.FlowsPerEpoch = 0
	cfg.Budgets.DetailLinks = 0
	cfg.Design.Hazard = 0
	f, err := fleetd.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > cfg.Budgets.MaxLinks {
		b.Fatalf("b.N=%d exceeds the fleet budget %d; lower -benchtime", b.N, cfg.Budgets.MaxLinks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Create(1, nil); err != nil {
			b.Fatal(err)
		}
		f.Step()
	}
	b.StopTimer()
	if got := f.Snapshot().LiveLinks; got != b.N {
		b.Fatalf("%d live links after %d admissions", got, b.N)
	}
}
