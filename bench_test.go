package mosaic

// One benchmark per reconstructed table/figure (E1-E12) and ablation
// (A1-A4). Each bench regenerates its experiment through the same code
// path as cmd/mosaicbench, reports the headline numbers as custom metrics,
// and (with -v) logs the full table.
//
//	go test -bench=. -benchmem            # all experiments as benchmarks
//	go test -bench=BenchmarkE4 -v         # one experiment, with its table
//	go run ./cmd/mosaicbench              # the same tables as a report

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/experiments"
	"mosaic/internal/phy"
	"mosaic/internal/power"
	"mosaic/internal/reliability"
)

// logTable renders a table into the bench log (visible with -v).
func logTable(b *testing.B, tab experiments.Table, err error) experiments.Table {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	b.Log("\n" + buf.String())
	return tab
}

func BenchmarkE1TradeoffTable(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E1Tradeoff()
	}
	tab = logTable(b, tab, err)
	// Headline metrics: Mosaic reach multiple over copper.
	var dac, mosaic float64
	for _, r := range tab.Rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		switch r[0] {
		case "DAC":
			dac = v
		case "Mosaic":
			mosaic = v
		}
	}
	if dac > 0 {
		b.ReportMetric(mosaic/dac, "reach_x_copper")
	}
}

func BenchmarkE2PowerBreakdown(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E2PowerBreakdown()
	}
	logTable(b, tab, err)
	red, err := power.Reduction(power.Mosaic, power.DR, 800e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(red*100, "reduction_pct")
}

func BenchmarkE3PowerScaling(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E3PowerScaling()
	}
	logTable(b, tab, err)
	m, _ := power.PerBudget(power.Mosaic, 1.6e12)
	b.ReportMetric(m.PJPerBit(), "mosaic_1.6T_pJ_per_bit")
}

func BenchmarkE4ReachBudget(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E4ReachBudget()
	}
	logTable(b, tab, err)
	b.ReportMetric(core.DefaultDesign().MaxReach(1e-12), "reach_m")
	b.ReportMetric(channel.Twinax26AWG().MaxReach(
		channel.NyquistHz(106.25e9, channel.PAM4), 28), "copper_reach_m")
}

func BenchmarkE5PrototypeBER(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E5PrototypeBER(1)
	}
	logTable(b, tab, err)
	d := core.DefaultDesign()
	d.LengthM = 40
	rep, err := d.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.MedianBER, "median_BER_40m")
	b.ReportMetric(float64(rep.BelowTarget), "channels_above_1e-12")
}

func BenchmarkE6Misalignment(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E6Misalignment()
	}
	logTable(b, tab, err)
	d := core.DefaultDesign()
	penalty := d.Fiber.CouplingLossDB(d.SpotDiameterM, 10e-6) -
		d.Fiber.CouplingLossDB(d.SpotDiameterM, 0)
	b.ReportMetric(penalty, "10um_penalty_dB")
}

func BenchmarkE7Reliability(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E7Reliability()
	}
	logTable(b, tab, err)
	mission := 5 * reliability.HoursPerYear
	b.ReportMetric(float64(reliability.MosaicLinkFIT(400, 16, mission)), "mosaic_FIT")
	b.ReportMetric(float64(reliability.LinkFIT(reliability.FITLaserDFB, 8)), "dr8_FIT")
}

func BenchmarkE8ScalingTable(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E8ScalingTable()
	}
	logTable(b, tab, err)
	b.ReportMetric(float64(power.MosaicChannels(1.6e12)), "channels_at_1.6T")
}

func BenchmarkE9SweetSpot(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E9SweetSpot()
	}
	logTable(b, tab, err)
	b.ReportMetric(power.SweetSpotRate()/1e9, "sweet_spot_Gbps")
}

func BenchmarkE10EndToEnd(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E10EndToEnd(1)
	}
	logTable(b, tab, err)
}

func BenchmarkE11Datacenter(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E11Datacenter()
	}
	logTable(b, tab, err)
}

func BenchmarkE12Degradation(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E12Degradation(1)
	}
	logTable(b, tab, err)
}

func BenchmarkE13Temperature(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E13Temperature()
	}
	logTable(b, tab, err)
}

func BenchmarkE14Latency(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E14Latency()
	}
	logTable(b, tab, err)
}

func BenchmarkE15Cost(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E15Cost()
	}
	logTable(b, tab, err)
	_, cheapest, err := power.CheapestAt(800e9, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cheapest.TotalUSD(), "mosaic_30m_usd")
}

func BenchmarkE16BlastRadius(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E16BlastRadius(1)
	}
	logTable(b, tab, err)
}

func BenchmarkE17Equalization(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E17Equalization()
	}
	logTable(b, tab, err)
}

func BenchmarkE18Waterfall(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E18Waterfall(1)
	}
	logTable(b, tab, err)
}

func BenchmarkE19OpticsBudget(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E19OpticsBudget()
	}
	logTable(b, tab, err)
}

func BenchmarkE20FleetTCO(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E20FleetTCO()
	}
	logTable(b, tab, err)
}

func BenchmarkE21PredictiveMaintenance(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.E21PredictiveMaintenance(1)
	}
	logTable(b, tab, err)
}

func BenchmarkA5Modulation(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.A5Modulation()
	}
	logTable(b, tab, err)
}

func BenchmarkA1Oversampling(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.A1Oversampling()
	}
	logTable(b, tab, err)
}

func BenchmarkA2FECChoice(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.A2FECChoice(1)
	}
	logTable(b, tab, err)
}

func BenchmarkA3UnitSize(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.A3UnitSize(1)
	}
	logTable(b, tab, err)
}

func BenchmarkA4SparingPolicy(b *testing.B) {
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.A4SparingPolicy(1)
	}
	logTable(b, tab, err)
}

// BenchmarkPipelineThroughput measures the raw simulation speed of the
// bit-true 100-channel pipeline (not a paper figure; an implementation
// benchmark).
func BenchmarkPipelineThroughput(b *testing.B) {
	link, err := core.DefaultDesign().BuildPHY()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	frames := make([][]byte, 64)
	total := 0
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
		total += 1500
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := link.Exchange(frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFECSchemes compares per-channel FEC encode+decode speed.
func BenchmarkFECSchemes(b *testing.B) {
	payload := make([]byte, 243)
	rand.New(rand.NewSource(1)).Read(payload)
	for _, fec := range []phy.FEC{phy.NoFEC{}, phy.HammingFEC{}, phy.NewRSLite(), phy.NewRSKP4()} {
		b.Run(fec.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				enc := fec.Encode(payload)
				if _, _, err := fec.Decode(enc, len(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
