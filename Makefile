# Tier-1 verification for the Mosaic repo. `make check` is the gate every
# change must pass: vet, build, the plain test suite, the same suite under
# the race detector (the PHY's per-lane stage runs on a shared worker
# pool), and a doubled determinism run to catch any seed-dependent
# flakiness. CI (.github/workflows/ci.yml) runs `make check` plus the
# fuzz-smoke and bench-check stages below.

GO ?= go
FUZZTIME ?= 20s
# pkg:target pairs — go test runs one fuzz target at a time, per package.
FUZZ_TARGETS = internal/phy:FuzzFramerDecodeStream internal/phy:FuzzHammingFECDecode \
	internal/phy:FuzzRSLiteDecode internal/phy:FuzzParseFramesNeverPanics \
	internal/mac:FuzzMACDeframe

.PHONY: check vet build test race determinism staticcheck bench bench-mac bench-check fuzz-smoke verify-deep

check: vet staticcheck build test race determinism

vet:
	$(GO) vet ./...

# staticcheck is advisory locally (skipped when the binary is absent —
# the repo must build with only the Go toolchain installed); CI's lint
# job installs it and runs this target, so it is enforced there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI enforces it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism -count=2 ./internal/phy/

# Not part of check: the allocation-aware benchmarks. E10 exercises the
# whole pipeline; the MAC round trips (framing-only and the full
# selective-repeat loopback) are pinned allocation-free.
bench:
	$(GO) test -bench 'BenchmarkE10EndToEnd$$|BenchmarkMACFrameRoundTrip$$|BenchmarkMACFrameRoundTripSR$$' -benchmem -benchtime 3x -run '^$$' .

# Standalone MAC framing benchmark at a stable iteration count; the JSON
# record (no gating here — bench-check gates) lands in BENCH_MAC.json.
bench-mac:
	$(GO) test -bench 'BenchmarkMACFrameRoundTrip$$|BenchmarkMACFrameRoundTripSR$$' -benchmem -benchtime 100000x -run '^$$' . | \
		$(GO) run ./cmd/benchguard -out BENCH_MAC.json

# CI bench-regression gate: run the baselined benchmarks, record
# BENCH_E10.json, and fail if allocs/op regresses >10% against the
# committed baseline (a baseline of exactly 0 allows no allocations at all).
# After an intentional allocation change: make bench | go run ./cmd/benchguard -baseline ci/bench_baseline.json -update
bench-check:
	$(MAKE) --no-print-directory bench | $(GO) run ./cmd/benchguard \
		-baseline ci/bench_baseline.json -out BENCH_E10.json

# Deep differential verification: every optimized hot-path stage against
# its naive reference model (internal/refmodel) over a large seeded
# corpus, with the pipeline stage swept across worker counts, under the
# race detector. Not part of check (several minutes); run it to certify a
# perf-oriented change, or let CI's verify-deep job do it. A divergence
# fails the run with a (stage, seed, case, size) repro and writes
# DIVERGENCE.json for the CI artifact upload.
DIFF_CASES ?= 200
DIFF_SEED ?= 1
verify-deep:
	MOSAIC_VERIFY_DEEP=1 MOSAIC_DIFF_CASES=$(DIFF_CASES) MOSAIC_DIFF_SEED=$(DIFF_SEED) \
		MOSAIC_DIFF_OUT=DIVERGENCE.json \
		$(GO) test -race -run TestDiffDeep -v -timeout 60m ./internal/diffcheck/

# CI fuzz smoke: each pkg:target pair gets a short budget (go test runs
# one fuzz target at a time, so this is a loop, not a single invocation).
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "== fuzz $$pkg $$fn ($(FUZZTIME)) =="; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) ./$$pkg/ || exit 1; \
	done
