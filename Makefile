# Tier-1 verification for the Mosaic repo. `make check` is the gate every
# change must pass: vet, build, the plain test suite, the same suite under
# the race detector (the PHY's per-lane stage runs on a shared worker
# pool), and a doubled determinism run to catch any seed-dependent
# flakiness. CI (.github/workflows/ci.yml) runs `make check` plus the
# fuzz-smoke, bench-check, scenario-conformance, and coverage stages
# below.

GO ?= go
FUZZTIME ?= 20s
# pkg:target pairs — go test runs one fuzz target at a time, per package.
FUZZ_TARGETS = internal/phy:FuzzFramerDecodeStream internal/phy:FuzzHammingFECDecode \
	internal/phy:FuzzRSLiteDecode internal/phy:FuzzParseFramesNeverPanics \
	internal/mac:FuzzMACDeframe internal/scenario:FuzzScenarioSpec

.PHONY: check vet build test race determinism staticcheck bench bench-mac bench-e24 bench-check coverage fuzz-smoke verify-deep soak-fleetd scenario-conformance

check: vet staticcheck build test race determinism

vet:
	$(GO) vet ./...

# staticcheck is advisory locally (skipped when the binary is absent —
# the repo must build with only the Go toolchain installed); CI's lint
# job installs it and runs this target, so it is enforced there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI enforces it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The doubled PHY determinism run plus the sharded flow engine's
# worker-invariance goldens: the E24 fleet table (and its epoch
# event-log sha) at 1 worker vs GOMAXPROCS, the netsim fleet
# scenario at 1/3/GOMAXPROCS workers, the fleetd service's
# scripted-scenario event-log sha (1/3/GOMAXPROCS pool workers, plus
# the 50-iteration concurrent-admission invariance run), and the
# scenario-library goldens: every registered scenario experiment
# (E26/E27) renders a byte-identical table at 1 worker vs GOMAXPROCS,
# and 50 shuffles of a spec's component arrays keep the event-log sha.
determinism:
	$(GO) test -run TestDeterminism -count=2 ./internal/phy/
	$(GO) test -run 'TestFleetSimWorkerInvariance' -count=1 ./internal/netsim/
	$(GO) test -run 'TestE24DeterministicAcrossWorkers|TestScenarioTablesDeterministicAcrossWorkers' -count=1 ./internal/experiments/
	$(GO) test -run 'TestFleetdDeterministicAcrossWorkers|TestConcurrentAdmissionDeterministic' -count=1 ./internal/fleetd/
	$(GO) test -run 'TestCompositionOrderInvariant50Iterations' -count=1 ./internal/scenario/

# Not part of check: the time-and-allocation benchmarks. E10 exercises
# the whole pipeline (7 reach points, construction + exchange); the
# steady-state Exchange and the MAC round trips are pinned
# allocation-free; FleetdAdmit pins the cost of admitting one link into
# a live fleet and stepping it through an epoch. Every benchmark runs -count=$(BENCH_COUNT) and
# benchguard folds the repeats min-of-N (min ns/op, max allocs/op)
# before gating, so scheduler noise cannot fail a healthy run. The fast
# benchmarks get a larger -benchtime so their ns/op figure is a real
# measurement rather than timer noise.
BENCH_COUNT ?= 5
bench:
	@$(GO) test -bench 'BenchmarkE10EndToEnd$$' -benchmem -benchtime 3x -count=$(BENCH_COUNT) -run '^$$' . && \
	$(GO) test -bench 'BenchmarkExchangeSteadyState$$|BenchmarkMACFrameRoundTrip$$|BenchmarkMACFrameRoundTripSR$$' \
		-benchmem -benchtime 1000x -count=$(BENCH_COUNT) -run '^$$' . && \
	$(GO) test -bench 'BenchmarkE24FleetFlows$$' -benchmem -benchtime 1x -count=2 -run '^$$' -timeout 30m . && \
	$(GO) test -bench 'BenchmarkFleetdAdmit$$' -benchmem -benchtime 500x -count=$(BENCH_COUNT) -run '^$$' .

# Standalone MAC framing benchmark at a stable iteration count; the JSON
# record (no gating here — bench-check gates) lands in BENCH_MAC.json.
bench-mac:
	$(GO) test -bench 'BenchmarkMACFrameRoundTrip$$|BenchmarkMACFrameRoundTripSR$$' -benchmem -benchtime 100000x -run '^$$' . | \
		$(GO) run ./cmd/benchguard -out BENCH_MAC.json

# Standalone fleet-scale flow-engine benchmark (E24: ~700k flows over
# 1752 links through the sharded incremental engine); the JSON record
# lands in BENCH_E24.json (no gating here — bench-check gates).
bench-e24:
	$(GO) test -bench 'BenchmarkE24FleetFlows$$' -benchmem -benchtime 1x -run '^$$' -timeout 30m . | \
		$(GO) run ./cmd/benchguard -out BENCH_E24.json

# CI bench-regression gate: run the baselined benchmarks, keep the raw
# `go test -bench` text in BENCH_RAW.txt (uploaded as a CI artifact so a
# regression can be diagnosed from the individual -count repeats), record
# the min-of-N aggregate in BENCH_E10.json, and fail if any baselined
# benchmark regresses allocs/op >10% or ns/op >25% (a baseline of exactly
# 0 allocs allows no allocations at all).
# After an intentional change: make bench | go run ./cmd/benchguard -baseline ci/bench_baseline.json -update
bench-check:
	$(MAKE) --no-print-directory bench | tee BENCH_RAW.txt | $(GO) run ./cmd/benchguard \
		-baseline ci/bench_baseline.json -out BENCH_E10.json

# Coverage gate for the packages the vectorized kernels and the fault
# machinery live in: the PHY, the coding stack, and faultinject must
# stay at or above $(COVER_MIN)% statement coverage combined. COVER.out
# is uploaded as a CI artifact.
COVER_MIN ?= 85
coverage:
	$(GO) test -coverprofile=COVER.out -covermode=atomic ./internal/phy/... ./internal/coding/... ./internal/faultinject/...
	@total=$$($(GO) tool cover -func=COVER.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t + 0 < min + 0) { printf "coverage: FAIL — %.1f%% below minimum %d%%\n", t, min; exit 1 } \
		printf "coverage: OK — %.1f%% >= %d%%\n", t, min }'

# Deep differential verification: every optimized hot-path stage against
# its naive reference model (internal/refmodel) over a large seeded
# corpus, with the pipeline stage swept across worker counts, under the
# race detector. Not part of check (several minutes); run it to certify a
# perf-oriented change, or let CI's verify-deep job do it. A divergence
# fails the run with a (stage, seed, case, size) repro and writes
# DIVERGENCE.json for the CI artifact upload.
DIFF_CASES ?= 200
DIFF_SEED ?= 1
verify-deep:
	MOSAIC_VERIFY_DEEP=1 MOSAIC_DIFF_CASES=$(DIFF_CASES) MOSAIC_DIFF_SEED=$(DIFF_SEED) \
		MOSAIC_DIFF_OUT=DIVERGENCE.json \
		$(GO) test -race -run TestDiffDeep -v -timeout 60m ./internal/diffcheck/
	MOSAIC_VERIFY_DEEP=1 $(GO) test -race -run TestIncFlowSimDeepProperties -timeout 60m ./internal/netsim/

# The mosaicfleetd acceptance soak: >=2000 concurrent serving links
# stepped continuously for SOAK_SECONDS under the race detector while
# concurrent clients throw scrape, fault, and admission traffic at the
# HTTP API. Passes only with zero races, zero dropped serving links,
# and /healthz answering 200 throughout (503 allowed only inside the
# induced overload window). The final /metrics exposition lands in
# FLEETD_METRICS.prom for the CI artifact upload. Not part of check
# (it holds the wall clock for a minute); CI runs it as its own job.
SOAK_SECONDS ?= 60
soak-fleetd:
	MOSAIC_FLEETD_SOAK=1 MOSAIC_FLEETD_SOAK_SECONDS=$(SOAK_SECONDS) \
		FLEETD_METRICS_OUT=$(CURDIR)/FLEETD_METRICS.prom \
		$(GO) test -race -run 'TestFleetSoak$$' -v -timeout 20m ./internal/fleetd/

# The scenario conformance harness under the race detector: for every
# registered scenario, byte-identical event logs at 1/3/GOMAXPROCS
# workers, netsim flow conservation and max-min bottleneck saturation
# on every epoch, and injected fault counts inside the closed-form
# 6-sigma envelope. The rendered per-scenario experiment tables land in
# SCENARIO_TABLES.txt for the CI artifact upload.
scenario-conformance:
	$(GO) test -race -run 'TestLibraryConformance' -v -count=1 ./internal/scenario/
	$(GO) run ./cmd/mosaicbench -exp E26,E27 > SCENARIO_TABLES.txt
	@echo "scenario-conformance: tables written to SCENARIO_TABLES.txt"

# CI fuzz smoke: each pkg:target pair gets a short budget (go test runs
# one fuzz target at a time, so this is a loop, not a single invocation).
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "== fuzz $$pkg $$fn ($(FUZZTIME)) =="; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) ./$$pkg/ || exit 1; \
	done
