# Tier-1 verification for the Mosaic repo. `make check` is the gate every
# change must pass: vet, build, the plain test suite, the same suite under
# the race detector (the PHY's per-lane stage runs on a shared worker
# pool), and a doubled determinism run to catch any seed-dependent
# flakiness. CI (.github/workflows/ci.yml) runs `make check` plus the
# fuzz-smoke and bench-check stages below.

GO ?= go
FUZZTIME ?= 20s
FUZZ_TARGETS = FuzzFramerDecodeStream FuzzHammingFECDecode FuzzRSLiteDecode FuzzParseFramesNeverPanics

.PHONY: check vet build test race determinism staticcheck bench bench-check fuzz-smoke

check: vet staticcheck build test race determinism

vet:
	$(GO) vet ./...

# staticcheck is advisory locally (skipped when the binary is absent —
# the repo must build with only the Go toolchain installed); CI's lint
# job installs it and runs this target, so it is enforced there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI enforces it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism -count=2 ./internal/phy/

# Not part of check: the allocation-aware end-to-end benchmark.
bench:
	$(GO) test -bench 'BenchmarkE10EndToEnd$$' -benchmem -benchtime 3x -run '^$$' .

# CI bench-regression gate: run the E10 benchmark, record BENCH_E10.json,
# and fail if allocs/op regresses >10% against the committed baseline.
# After an intentional allocation change: make bench | go run ./cmd/benchguard -baseline ci/bench_baseline.json -update
bench-check:
	$(MAKE) --no-print-directory bench | $(GO) run ./cmd/benchguard \
		-baseline ci/bench_baseline.json -out BENCH_E10.json

# CI fuzz smoke: each fuzz target gets a short budget (go test runs one
# fuzz target at a time, so this is a loop, not a single invocation).
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "== fuzz $$t ($(FUZZTIME)) =="; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/phy/ || exit 1; \
	done
