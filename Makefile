# Tier-1 verification for the Mosaic repo. `make check` is the gate every
# change must pass: vet, build, the full test suite under the race
# detector (the PHY's per-lane stage runs on a shared worker pool), and a
# doubled determinism run to catch any seed-dependent flakiness.

GO ?= go

.PHONY: check vet build test race determinism bench

check: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism -count=2 ./internal/phy/

# Not part of check: the allocation-aware end-to-end benchmark.
bench:
	$(GO) test -bench 'BenchmarkE10EndToEnd$$' -benchmem -benchtime 3x -run '^$$' .
