// Command mosaicfleetd is the fleet service: a long-lived daemon owning
// thousands of simulated Mosaic links — each a full PHY/MAC/bridge stack
// under seeded fault injection — on a shared work-stealing pool, behind
// an admission-controlled HTTP/JSON API.
//
//	POST /v1/links                  admit links ({"count":N,"design":{...}})
//	GET  /v1/links?limit=N          list live links
//	GET  /v1/links/{id}             inspect one link
//	POST /v1/links/{id}/degrade     kill channels ({"kill":K})
//	POST /v1/links/{id}/renegotiate commit a degraded width
//	POST /v1/links/{id}/retire      drain and retire
//	POST /v1/links/batch            batched operations
//	POST /reload                    hot-reload budgets/design (also SIGHUP)
//	GET  /v1/fleet                  fleet snapshot
//	GET  /healthz                   200; 503 while overloaded or draining
//	/metrics /metrics.json /debug/pprof/  the standard operational mux
//
// The fleet advances in epochs on a wall-clock ticker; everything inside
// an epoch is deterministic (fixed seed, worker-count-invariant event
// log), so the same operation script replayed against internal/fleetd
// reproduces the daemon's event log byte for byte.
//
// Admission is token-bucket gated and load-shedding: past the rate,
// link, or topology budgets the API answers 429 and books the shed.
// SIGHUP (or POST /reload) re-reads -config and swaps budgets and the
// default link design without touching serving links. SIGTERM/SIGINT
// drain gracefully: admissions stop, every link walks its lifecycle to
// retired (bounded by -grace), telemetry flushes, and the HTTP server
// shuts down with http.Server.Shutdown.
//
//	mosaicfleetd -links 2000 -seed 7        # bring up 2000 links on :9091
//	mosaicfleetd -config fleet.json         # budgets/design from JSON
//	mosaicfleetd -scenario E26              # default links replay E26's witness faults
//	curl -XPOST :9091/v1/links -d '{"count":10}'
//	curl -XPOST :9091/v1/links -d '{"count":4,"scenario":"E27"}'
//	curl :9091/v1/fleet
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mosaic/internal/fleetd"
	"mosaic/internal/telemetry"
	"mosaic/internal/telemetry/httpx"
)

func main() {
	var (
		addr     = flag.String("addr", ":9091", "HTTP listen address")
		cfgPath  = flag.String("config", "", "JSON config file (budgets + default link design); reloaded on SIGHUP")
		links    = flag.Int("links", 0, "links to admit at startup (retried across epochs until reached)")
		seed     = flag.Int64("seed", 1, "fleet seed (event log is deterministic for a given seed and op sequence)")
		workers  = flag.Int("workers", 0, "pool workers (0 = all cores)")
		maxLinks = flag.Int("max-links", 0, "cap on live links (0 = config default)")
		epoch    = flag.Duration("epoch", 50*time.Millisecond, "wall-clock epoch interval")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace (drain + HTTP shutdown share it)")
		lanes    = flag.Int("lanes", 0, "default design: active lanes (0 = config default)")
		spares   = flag.Int("spares", -1, "default design: spare channels (-1 = config default)")
		hazard   = flag.Float64("hazard", -1, "default design: per-superframe channel kill probability (-1 = config default)")
		scenName = flag.String("scenario", "", "default design: bind links to a registered scenario's witness fault schedule (experiment ID like E26 or spec name; see mosaicbench -list)")
	)
	flag.Parse()

	loadCfg := func() (fleetd.Config, error) {
		cfg := fleetd.DefaultConfig()
		if *cfgPath != "" {
			var err error
			if cfg, err = fleetd.LoadConfig(*cfgPath); err != nil {
				return cfg, err
			}
		}
		// Flags layer on top of the file (or the defaults).
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *maxLinks > 0 {
			cfg.Budgets.MaxLinks = *maxLinks
		}
		if *lanes > 0 {
			cfg.Design.Lanes = *lanes
		}
		if *spares >= 0 {
			cfg.Design.Spares = *spares
		}
		if *hazard >= 0 {
			cfg.Design.Hazard = *hazard
		}
		if *scenName != "" {
			cfg.Design.Scenario = *scenName
		}
		return cfg, cfg.Validate()
	}

	cfg, err := loadCfg()
	if err != nil {
		fatal(err)
	}
	reg := telemetry.NewRegistry()
	fleet, err := fleetd.New(cfg, reg)
	if err != nil {
		fatal(err)
	}
	srv := fleetd.NewServer(fleet, reg)
	reload := func() error {
		cfg, err := loadCfg()
		if err != nil {
			return err
		}
		return fleet.Reload(cfg)
	}
	srv.ReloadConfig = reload

	// The ticker goroutine is the only caller of Step: operations from
	// the API land between epochs on the fleet mutex, exactly like ops in
	// a deterministic replay script land at epoch boundaries.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(*epoch)
		defer t.Stop()
		remaining := *links
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if remaining > 0 {
					ids, _ := fleet.Create(remaining, nil)
					remaining -= len(ids)
					if remaining == 0 {
						log.Printf("mosaicfleetd: startup target reached (%d links admitted)", *links)
					}
				}
				fleet.Step()
			}
		}
	}()

	d := &httpx.Daemon{
		Addr:    *addr,
		Handler: srv.Handler(),
		Grace:   *grace,
		Reload:  reload,
		Drain: func(ctx context.Context) {
			close(stop)
			<-done
			if left := fleet.Drain(ctx); left > 0 {
				log.Printf("mosaicfleetd: drain deadline hit with %d links still live", left)
			} else {
				adm := fleet.Admission()
				log.Printf("mosaicfleetd: drained clean after %d epochs (admitted=%d retired=%d)",
					fleet.Epoch(), adm.Admitted, adm.Retired)
			}
		},
	}
	log.Printf("mosaicfleetd: seed=%d workers=%d max_links=%d epoch=%v on %s",
		cfg.Seed, cfg.Workers, cfg.Budgets.MaxLinks, *epoch, *addr)
	if err := d.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosaicfleetd:", err)
	os.Exit(1)
}
