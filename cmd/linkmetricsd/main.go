// Command linkmetricsd is the serving face of the telemetry layer: it
// drives a Mosaic link through continuous fault-injection soak rounds and
// exposes the live metric registry over HTTP —
//
//	/metrics        Prometheus text exposition (per-link and per-channel)
//	/metrics.json   the same registry as a JSON snapshot
//	/healthz        link health summary; 200 at full width, 503 degraded
//	/debug/pprof/   net/http/pprof (CPU, heap, goroutine, ...)
//
// Each round replays a seeded random-kill schedule (seed + round index,
// so rounds differ but a given invocation is reproducible) against the
// same link while reactive sparing and proactive maintenance respond.
// When the link finally wears out (no lanes left), it is replaced by a
// fresh one — counted in mosaic_soakd_link_replacements_total — and the
// soak continues, so the daemon models a module swap rather than dying.
//
//	linkmetricsd                            # 100+4 channels on :9090
//	linkmetricsd -addr :8080 -hazard 0.01   # faster wear for demos
//	linkmetricsd -rounds 3                  # soak 3 rounds, then just serve
//	linkmetricsd -mac -max-retx-rate 0.2    # MAC session soak; 503 on retransmit storms
//	linkmetricsd -mac -arq sr -vc 3         # selective repeat over three QoS-classed VCs
//
// With -mac each round drives a full MAC session (CRC framing, the
// selected LLR discipline, capacity bridge) instead of a bare-PHY soak,
// adding the mosaic_mac_* metric set (per-VC counters when -vc > 1), and
// /healthz also returns 503 while the LLR retransmit rate (windowed,
// endpoint "a") exceeds -max-retx-rate.
//
// The HTTP side never touches the link: scrapes read only the registry's
// atomics, which the soak goroutine refreshes at superframe boundaries.
//
// On SIGTERM/SIGINT the daemon drains gracefully: the soak goroutine is
// told to stop and given the remainder of its current round to finish
// (bounded by the shutdown grace), then the HTTP server shuts down with
// http.Server.Shutdown so in-flight scrapes complete.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
	"mosaic/internal/telemetry"
	"mosaic/internal/telemetry/httpx"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "HTTP listen address")
		lanes       = flag.Int("lanes", 100, "active data lanes")
		spares      = flag.Int("spares", 4, "spare channels")
		fecName     = flag.String("fec", "rslite", "per-channel FEC: none|hamming72|rslite|kp4")
		unitLen     = flag.Int("unit", 243, "stripe unit length in bytes (multiple of 9)")
		superframes = flag.Int("superframes", 240, "superframes per soak round")
		frames      = flag.Int("frames", 24, "frames per superframe")
		frameLen    = flag.Int("framesize", 1500, "bytes per frame")
		seed        = flag.Int64("seed", 1, "base seed; round r uses seed+r for its schedule")
		workers     = flag.Int("workers", 0, "PHY lane workers (0 = all cores)")
		hazard      = flag.Float64("hazard", 0.0005, "per-superframe channel death probability per round")
		maintEvery  = flag.Int("maintain-every", 10, "superframes between proactive maintenance passes (0 = never)")
		keepSpares  = flag.Int("keep-spares", 1, "spares held back for hard failures")
		spareAbove  = flag.Float64("spare-above", 1e-6, "proactive remap threshold (estimated BER)")
		rounds      = flag.Int("rounds", 0, "soak rounds to run (0 = forever); serving continues after the last round")
		macMode     = flag.Bool("mac", false, "soak a full MAC session per round (framing + LLR + bridge) instead of a bare PHY")
		arqName     = flag.String("arq", "gbn", "LLR retransmission discipline with -mac: gbn|sr")
		vcCount     = flag.Int("vc", 1, "virtual channels with -mac (classes assigned round-robin)")
		maxRetxRate = flag.Float64("max-retx-rate", 0.5, "/healthz returns 503 while the windowed LLR retransmit rate exceeds this fraction (0 disables)")
	)
	flag.Parse()

	arq, err := mac.ARQByName(*arqName)
	if err != nil {
		fatal(err)
	}

	fec, err := phy.FECByName(*fecName)
	if err != nil {
		fatal(err)
	}
	newLink := func() *phy.Link {
		link, err := phy.New(phy.Config{
			Lanes:             *lanes,
			Spares:            *spares,
			FEC:               fec,
			UnitLen:           *unitLen,
			PerChannelBitRate: 2e9,
			Seed:              *seed,
			Workers:           *workers,
		})
		if err != nil {
			fatal(err)
		}
		return link
	}

	reg := telemetry.NewRegistry()
	reg.Help("mosaic_soakd_rounds_total", "completed soak rounds")
	reg.Help("mosaic_soakd_link_replacements_total", "worn-out links replaced by a fresh module")
	roundsTotal := reg.Counter("mosaic_soakd_rounds_total")
	replacements := reg.Counter("mosaic_soakd_link_replacements_total")

	// The health view reads only registry gauges — the soak goroutine
	// owns the link, so /healthz can never race it (or crash on it: the
	// whole accessor surface underneath is bounds-guarded).
	lanesActive := reg.Gauge("mosaic_link_lanes_active")
	sparesLeft := reg.Gauge("mosaic_link_spares_left")
	superframesG := reg.Gauge("mosaic_link_superframes")
	retxRate := reg.Gauge("mosaic_mac_retx_rate", "endpoint", "a")
	healthz := func(w http.ResponseWriter, _ *http.Request) {
		active := int(lanesActive.Value())
		rate := retxRate.Value()
		status := "ok"
		code := http.StatusOK
		if active < *lanes {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		if *maxRetxRate > 0 && rate > *maxRetxRate {
			status = "retx-storm"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":           status,
			"lanes_active":     active,
			"lanes_configured": *lanes,
			"spares_left":      int(sparesLeft.Value()),
			"superframes":      int64(superframesG.Value()),
			"soak_rounds":      roundsTotal.Value(),
			"mac_retx_rate":    rate,
			"max_retx_rate":    *maxRetxRate,
		})
	}

	params := soakParams{
		channels:    *lanes + *spares,
		superframes: *superframes,
		frames:      *frames,
		frameLen:    *frameLen,
		seed:        *seed,
		hazard:      *hazard,
		maintEvery:  *maintEvery,
		keepSpares:  *keepSpares,
		spareAbove:  *spareAbove,
		rounds:      *rounds,
		arq:         arq,
		vcs:         *vcCount,
	}
	// The soak goroutine checks stop at round boundaries and closes done
	// when it exits; Drain waits for it up to the shutdown grace.
	stop := make(chan struct{})
	done := make(chan struct{})
	if *macMode {
		go macSoakLoop(newLink, reg, roundsTotal, replacements, params, stop, done)
	} else {
		go soakLoop(newLink, reg, roundsTotal, replacements, params, stop, done)
	}

	d := &httpx.Daemon{
		Addr:    *addr,
		Handler: httpx.NewMux(reg, healthz),
		Drain: func(ctx context.Context) {
			close(stop)
			select {
			case <-done:
				log.Printf("linkmetricsd: soak drained after %d rounds", roundsTotal.Value())
			case <-ctx.Done():
				log.Printf("linkmetricsd: soak still mid-round at shutdown deadline")
			}
		},
	}
	log.Printf("linkmetricsd: serving /metrics /metrics.json /healthz /debug/pprof on %s", *addr)
	if err := d.ListenAndServe(); err != nil {
		fatal(err)
	}
}

type soakParams struct {
	channels, superframes, frames, frameLen int
	seed                                    int64
	hazard                                  float64
	maintEvery, keepSpares, rounds          int
	spareAbove                              float64
	arq                                     mac.ARQKind
	vcs                                     int
}

// soakLoop runs soak rounds forever (or for params.rounds), feeding reg.
// A round that fails — a link with no lanes left cannot Exchange — swaps
// in a fresh link and keeps going. It checks stop at round boundaries and
// closes done on exit, so shutdown waits at most one round.
func soakLoop(newLink func() *phy.Link, reg *telemetry.Registry,
	roundsTotal, replacements *telemetry.Counter, p soakParams,
	stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	link := newLink()
	for round := 0; p.rounds == 0 || round < p.rounds; round++ {
		select {
		case <-stop:
			return
		default:
		}
		var sched faultinject.Schedule
		if p.hazard > 0 {
			sched = faultinject.RandomKills(rand.New(rand.NewSource(p.seed+int64(round))),
				p.channels, p.hazard, p.superframes)
		}
		res, err := faultinject.Run(faultinject.Config{
			Link:        link,
			Schedule:    sched,
			Superframes: p.superframes,
			FramesPerSF: p.frames,
			FrameLen:    p.frameLen,
			Seed:        p.seed,
			Policy: phy.MaintenancePolicy{
				SpareAboveBER: p.spareAbove,
				KeepSpares:    p.keepSpares,
			},
			MaintainEvery: p.maintEvery,
			Metrics:       reg,
		})
		roundsTotal.Inc()
		if err != nil {
			log.Printf("round %d: %v; replacing the link module", round, err)
			replacements.Inc()
			link = newLink()
			continue
		}
		log.Printf("round %d: %s", round, firstLine(res.Summary()))
	}
	log.Printf("soak finished after %d rounds; still serving", p.rounds)
}

// nullSink is the MAC bridge's capacity sink when no network simulator
// is attached: renegotiations land only in the metric registry.
type nullSink struct{}

func (nullSink) SetLinkCapacityFraction(int, float64) {}

// macSoakLoop is soakLoop's MAC-mode twin: each round replays a seeded
// random-kill schedule against the forward link of a full-duplex MAC
// session, so the registry carries the mosaic_mac_* set (retransmits,
// replay occupancy, credit stalls, renegotiations) on top of the
// per-link metrics. Links persist across rounds and wear out; a round
// that cannot run swaps in a fresh pair. Like soakLoop it stops at round
// boundaries and closes done on exit.
func macSoakLoop(newLink func() *phy.Link, reg *telemetry.Registry,
	roundsTotal, replacements *telemetry.Counter, p soakParams,
	stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var pc mac.PairConfig
	pc.Endpoint.ARQ = p.arq
	pc.Endpoint.VCs = p.vcs
	if p.vcs > 0 {
		classes := make([]uint8, p.vcs)
		for vc := range classes {
			classes[vc] = uint8(vc % mac.NumClasses)
		}
		pc.Endpoint.VCClass = classes
	}
	var vcPackets []int
	if p.vcs > 1 {
		vcPackets = make([]int, p.vcs)
		for vc := range vcPackets {
			vcPackets[vc] = p.frames / p.vcs
			if vc < p.frames%p.vcs {
				vcPackets[vc]++
			}
		}
	}
	fwd, rev := newLink(), newLink()
	for round := 0; p.rounds == 0 || round < p.rounds; round++ {
		select {
		case <-stop:
			return
		default:
		}
		var sched faultinject.Schedule
		if p.hazard > 0 {
			sched = faultinject.RandomKills(rand.New(rand.NewSource(p.seed+int64(round))),
				p.channels, p.hazard, p.superframes)
		}
		eng := sim.NewEngine(p.seed + int64(round))
		sess, err := mac.NewSession(mac.SessionConfig{
			Engine:       eng,
			Fwd:          fwd,
			Rev:          rev,
			Pair:         pc,
			Schedule:     sched,
			Superframes:  p.superframes,
			Interval:     1e-5,
			PacketsPerSF: p.frames,
			VCPackets:    vcPackets,
			PacketLen:    p.frameLen,
			Seed:         p.seed,
			Bridge:       mac.NewBridge(fwd, nullSink{}, 0, eng),
			Metrics:      reg,
		})
		if err != nil {
			log.Printf("round %d: %v; replacing the link pair", round, err)
			replacements.Inc()
			fwd, rev = newLink(), newLink()
			continue
		}
		eng.Run()
		res := sess.Result()
		roundsTotal.Inc()
		if res.Err != "" {
			log.Printf("round %d: %s; replacing the link pair", round, res.Err)
			replacements.Inc()
			fwd, rev = newLink(), newLink()
			continue
		}
		log.Printf("round %d: %s", round, firstLine(res.Summary()))
	}
	log.Printf("mac soak finished after %d rounds; still serving", p.rounds)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linkmetricsd:", err)
	os.Exit(1)
}
