// Command benchguard turns `go test -bench` text output into a JSON
// record and gates allocation regressions against a committed baseline.
// It is the CI bench-regression stage:
//
//	go test -bench 'BenchmarkE10EndToEnd$' -benchmem -benchtime 3x -run '^$' . |
//	    benchguard -baseline ci/bench_baseline.json -out BENCH_E10.json
//
// The run fails (exit 1) when any baselined benchmark regresses its
// allocs/op by more than -max-regress (default 10%), or is missing from
// the input. allocs/op is the gated metric because it is stable across
// machines; ns/op and B/op are recorded in the JSON for trend-watching
// but never gated. Refresh the baseline after an intentional change with
// -update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"` // without the -GOMAXPROCS suffix
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the JSON document benchguard reads and writes.
type Report struct {
	Benchmarks []Bench `json:"benchmarks"`
}

// procSuffix strips the trailing -N GOMAXPROCS marker so baselines are
// portable across machines with different core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench`
// output. Non-benchmark lines (headers, tables logged with -v, PASS) are
// ignored.
func parseBench(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL" or a log line
		}
		b := Bench{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
		}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return out, nil
}

// compare checks every baselined benchmark against the current run and
// returns human-readable violations (empty = pass).
func compare(current, baseline []Bench, maxRegress float64) []string {
	byName := make(map[string]Bench, len(current))
	for _, b := range current {
		byName[b.Name] = b
	}
	var bad []string
	for _, base := range baseline {
		cur, ok := byName[base.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: baselined benchmark missing from this run", base.Name))
			continue
		}
		if base.AllocsPerOp < 0 {
			continue // explicitly ungated (e.g. a run without -benchmem)
		}
		// A baseline of exactly 0 is a hard gate: the benchmark is pinned
		// allocation-free and any allocation at all is a regression.
		limit := base.AllocsPerOp * (1 + maxRegress)
		if cur.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf(
				"%s: allocs/op %.0f exceeds baseline %.0f by %.1f%% (limit +%.0f%%)",
				base.Name, cur.AllocsPerOp, base.AllocsPerOp,
				100*(cur.AllocsPerOp/base.AllocsPerOp-1), 100*maxRegress))
		}
	}
	return bad
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		inPath     = flag.String("in", "", "bench output to parse (default: stdin)")
		outPath    = flag.String("out", "", "write the parsed results as JSON to this file")
		basePath   = flag.String("baseline", "", "baseline JSON to gate against")
		maxRegress = flag.Float64("max-regress", 0.10, "allowed fractional allocs/op regression")
		update     = flag.Bool("update", false, "rewrite -baseline from this run instead of gating")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	benches, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	rep := Report{Benchmarks: benches}
	for _, b := range benches {
		fmt.Printf("benchguard: %s  %.0f ns/op  %.0f B/op  %.0f allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fatal(err)
		}
	}
	if *basePath == "" {
		return
	}
	if *update {
		if err := writeReport(*basePath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: baseline %s updated\n", *basePath)
		return
	}
	baseline, err := loadReport(*basePath)
	if err != nil {
		fatal(err)
	}
	if bad := compare(benches, baseline.Benchmarks, *maxRegress); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: OK — %d benchmark(s) within +%.0f%% of baseline\n",
		len(baseline.Benchmarks), 100**maxRegress)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
