// Command benchguard turns `go test -bench` text output into a JSON
// record and gates time and allocation regressions against a committed
// baseline. It is the CI bench-regression stage:
//
//	go test -bench 'BenchmarkE10EndToEnd$' -benchmem -benchtime 3x -count=5 -run '^$' . |
//	    benchguard -baseline ci/bench_baseline.json -out BENCH_E10.json
//
// Repeated results for one benchmark (-count=N) are folded into a single
// record before gating: minimum ns/op — the least-noisy estimate of the
// code's true cost, since scheduler and cache interference only ever add
// time — and maximum allocs/op and B/op, which are deterministic for a
// steady-state benchmark, so any spread is itself suspicious and the
// worst observation is the honest one.
//
// The run fails (exit 1) when any baselined benchmark is missing from
// the input, regresses allocs/op by more than -max-regress (default
// 10%), or regresses ns/op by more than -max-time-regress (default 25%
// — looser than the alloc gate because wall time is machine-dependent).
// A baseline of exactly 0 allocs/op is a hard gate (the benchmark is
// pinned allocation-free); a negative allocs/op or zero/negative ns/op
// baseline leaves that metric ungated. Refresh the baseline after an
// intentional change with -update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"` // without the -GOMAXPROCS suffix
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the JSON document benchguard reads and writes.
type Report struct {
	Benchmarks []Bench `json:"benchmarks"`
}

// procSuffix strips the trailing -N GOMAXPROCS marker so baselines are
// portable across machines with different core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench`
// output. Non-benchmark lines (headers, tables logged with -v, PASS) are
// ignored.
func parseBench(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL" or a log line
		}
		b := Bench{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
		}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return out, nil
}

// aggregate folds repeated results for one benchmark (-count=N) into a
// single record: minimum ns/op, maximum allocs/op and B/op, summed
// iterations. First-appearance order is preserved.
func aggregate(benches []Bench) []Bench {
	idx := make(map[string]int, len(benches))
	var out []Bench
	for _, b := range benches {
		i, seen := idx[b.Name]
		if !seen {
			idx[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		out[i].Iterations += b.Iterations
		if b.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = b.NsPerOp
		}
		if b.BytesPerOp > out[i].BytesPerOp {
			out[i].BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp > out[i].AllocsPerOp {
			out[i].AllocsPerOp = b.AllocsPerOp
		}
	}
	return out
}

// compare checks every baselined benchmark against the current run and
// returns human-readable violations (empty = pass).
func compare(current, baseline []Bench, maxRegress, maxTimeRegress float64) []string {
	byName := make(map[string]Bench, len(current))
	for _, b := range current {
		byName[b.Name] = b
	}
	var bad []string
	for _, base := range baseline {
		cur, ok := byName[base.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: baselined benchmark missing from this run", base.Name))
			continue
		}
		if base.AllocsPerOp >= 0 {
			// A baseline of exactly 0 is a hard gate: the benchmark is
			// pinned allocation-free and any allocation is a regression.
			limit := base.AllocsPerOp * (1 + maxRegress)
			if cur.AllocsPerOp > limit {
				bad = append(bad, fmt.Sprintf(
					"%s: allocs/op %.0f exceeds baseline %.0f by %.1f%% (limit +%.0f%%)",
					base.Name, cur.AllocsPerOp, base.AllocsPerOp,
					100*(cur.AllocsPerOp/base.AllocsPerOp-1), 100*maxRegress))
			}
		}
		if base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+maxTimeRegress) {
			bad = append(bad, fmt.Sprintf(
				"%s: ns/op %.0f exceeds baseline %.0f by %.1f%% (limit +%.0f%%)",
				base.Name, cur.NsPerOp, base.NsPerOp,
				100*(cur.NsPerOp/base.NsPerOp-1), 100*maxTimeRegress))
		}
	}
	return bad
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		inPath         = flag.String("in", "", "bench output to parse (default: stdin)")
		outPath        = flag.String("out", "", "write the parsed results as JSON to this file")
		basePath       = flag.String("baseline", "", "baseline JSON to gate against")
		maxRegress     = flag.Float64("max-regress", 0.10, "allowed fractional allocs/op regression")
		maxTimeRegress = flag.Float64("max-time-regress", 0.25, "allowed fractional ns/op regression")
		update         = flag.Bool("update", false, "rewrite -baseline from this run instead of gating")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	benches, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	benches = aggregate(benches)
	rep := Report{Benchmarks: benches}
	for _, b := range benches {
		fmt.Printf("benchguard: %s  %.0f ns/op  %.0f B/op  %.0f allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fatal(err)
		}
	}
	if *basePath == "" {
		return
	}
	if *update {
		if err := writeReport(*basePath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: baseline %s updated\n", *basePath)
		return
	}
	baseline, err := loadReport(*basePath)
	if err != nil {
		fatal(err)
	}
	if bad := compare(benches, baseline.Benchmarks, *maxRegress, *maxTimeRegress); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: OK — %d benchmark(s) within +%.0f%% allocs, +%.0f%% time of baseline\n",
		len(baseline.Benchmarks), 100**maxRegress, 100**maxTimeRegress)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
