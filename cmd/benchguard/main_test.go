package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mosaic
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkE10EndToEnd 	       3	 308301659 ns/op	52425776 B/op	  141769 allocs/op
BenchmarkPipelineThroughput-8 	      12	  95000000 ns/op	1010.52 MB/s	 9000000 B/op	   50000 allocs/op
PASS
ok  	mosaic	1.229s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	e10 := benches[0]
	if e10.Name != "BenchmarkE10EndToEnd" {
		t.Errorf("name = %q", e10.Name)
	}
	if e10.Iterations != 3 || e10.NsPerOp != 308301659 ||
		e10.BytesPerOp != 52425776 || e10.AllocsPerOp != 141769 {
		t.Errorf("E10 metrics = %+v", e10)
	}
	// The -8 GOMAXPROCS suffix must be stripped so baselines are portable.
	if benches[1].Name != "BenchmarkPipelineThroughput" {
		t.Errorf("name = %q, want suffix stripped", benches[1].Name)
	}
	if benches[1].AllocsPerOp != 50000 {
		t.Errorf("throughput allocs = %v", benches[1].AllocsPerOp)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok mosaic 1s\n")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func TestParseBenchIgnoresFailedLines(t *testing.T) {
	in := "BenchmarkBroken --- FAIL\nBenchmarkGood 	 5	 100 ns/op	 10 allocs/op\n"
	benches, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].Name != "BenchmarkGood" {
		t.Fatalf("benches = %+v", benches)
	}
}

func TestCompare(t *testing.T) {
	base := []Bench{{Name: "BenchmarkE10EndToEnd", AllocsPerOp: 100000}}
	cases := []struct {
		name    string
		current []Bench
		wantBad int
	}{
		{"identical", []Bench{{Name: "BenchmarkE10EndToEnd", AllocsPerOp: 100000}}, 0},
		{"within 10%", []Bench{{Name: "BenchmarkE10EndToEnd", AllocsPerOp: 109999}}, 0},
		{"improved", []Bench{{Name: "BenchmarkE10EndToEnd", AllocsPerOp: 50000}}, 0},
		{"regressed 11%", []Bench{{Name: "BenchmarkE10EndToEnd", AllocsPerOp: 111000}}, 1},
		{"missing", []Bench{{Name: "BenchmarkOther", AllocsPerOp: 1}}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := compare(c.current, base, 0.10, 0.25)
			if len(bad) != c.wantBad {
				t.Errorf("violations = %v, want %d", bad, c.wantBad)
			}
		})
	}
}

func TestCompareTimeGate(t *testing.T) {
	base := []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 100_000_000, AllocsPerOp: 1000}}
	cases := []struct {
		name    string
		current []Bench
		wantBad int
	}{
		{"within 25%", []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 124_000_000, AllocsPerOp: 1000}}, 0},
		{"faster", []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 40_000_000, AllocsPerOp: 1000}}, 0},
		{"26% slower", []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 126_000_000, AllocsPerOp: 1000}}, 1},
		{"both metrics regressed", []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 200_000_000, AllocsPerOp: 9000}}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := compare(c.current, base, 0.10, 0.25)
			if len(bad) != c.wantBad {
				t.Errorf("violations = %v, want %d", bad, c.wantBad)
			}
		})
	}
	// A zero/negative ns/op baseline leaves time ungated.
	ungated := []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 0, AllocsPerOp: 1000}}
	cur := []Bench{{Name: "BenchmarkE10EndToEnd", NsPerOp: 9e12, AllocsPerOp: 1000}}
	if bad := compare(cur, ungated, 0.10, 0.25); len(bad) != 0 {
		t.Errorf("violations = %v, want none with ns baseline 0", bad)
	}
}

func TestAggregateMinOfN(t *testing.T) {
	in := []Bench{
		{Name: "BenchmarkA", Iterations: 3, NsPerOp: 110, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkB", Iterations: 5, NsPerOp: 900, BytesPerOp: 10, AllocsPerOp: 1},
		{Name: "BenchmarkA", Iterations: 3, NsPerOp: 100, BytesPerOp: 80, AllocsPerOp: 3},
		{Name: "BenchmarkA", Iterations: 4, NsPerOp: 130, BytesPerOp: 64, AllocsPerOp: 2},
	}
	out := aggregate(in)
	if len(out) != 2 {
		t.Fatalf("aggregated to %d records, want 2", len(out))
	}
	a := out[0]
	if a.Name != "BenchmarkA" || a.Iterations != 10 {
		t.Errorf("A = %+v, want first-appearance order and summed iterations", a)
	}
	// min ns/op, max B/op, max allocs/op.
	if a.NsPerOp != 100 || a.BytesPerOp != 80 || a.AllocsPerOp != 3 {
		t.Errorf("A metrics = %+v, want min-ns/max-bytes/max-allocs", a)
	}
	if out[1].Name != "BenchmarkB" || out[1].NsPerOp != 900 {
		t.Errorf("B = %+v, want single record passed through", out[1])
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	// allocs_per_op 0 pins a benchmark allocation-free: any allocation is
	// a violation, no matter how small. A negative baseline (a run
	// missing -benchmem) gates nothing.
	base := []Bench{
		{Name: "BenchmarkPinned", AllocsPerOp: 0},
		{Name: "BenchmarkUngated", AllocsPerOp: -1},
	}
	cur := []Bench{
		{Name: "BenchmarkPinned", AllocsPerOp: 1},
		{Name: "BenchmarkUngated", AllocsPerOp: 999999},
	}
	bad := compare(cur, base, 0.10, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkPinned") {
		t.Errorf("violations = %v, want exactly the pinned benchmark", bad)
	}
	clean := []Bench{
		{Name: "BenchmarkPinned", AllocsPerOp: 0},
		{Name: "BenchmarkUngated", AllocsPerOp: 5},
	}
	if bad := compare(clean, base, 0.10, 0.25); len(bad) != 0 {
		t.Errorf("violations = %v, want none for a 0-alloc run", bad)
	}
}
