// Command mosaicbench regenerates the paper's evaluation: every
// reconstructed table and figure (E1-E22) plus the design-choice ablations
// (A1-A5), driven by the experiment registry. Run with no arguments for
// the full suite, or select experiments:
//
//	mosaicbench                 # everything
//	mosaicbench -exp E4         # one experiment
//	mosaicbench -exp E1,E2,E7   # a subset
//	mosaicbench -list           # list experiments (metadata only, runs nothing)
//	mosaicbench -seed 7         # change the simulation seed
//	mosaicbench -par 4          # generate experiments concurrently
//	mosaicbench -soak           # fault-injection soak with a live event log
//	mosaicbench -metrics m.prom # also write a telemetry snapshot (.json = JSON)
//
// With -par N the generators run on up to N goroutines; output is always
// printed in registry order, and a fixed seed produces identical tables at
// any parallelism.
//
// -soak runs the default fault-injection scenario (a kill, an aging
// channel, a burst episode, and a correlated neighborhood failure) on the
// prototype link and prints the event log — the narrative companion to
// the E22 statistics; see cmd/linksoak for the fully scriptable harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mosaic/internal/experiments"
	"mosaic/internal/faultinject"
	"mosaic/internal/phy"
	"mosaic/internal/telemetry"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seedFlag = flag.Int64("seed", 1, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parFlag  = flag.Int("par", 1, "run up to N experiment generators concurrently")
		soakFlag = flag.Bool("soak", false, "run the default fault-injection soak scenario and exit")
		metrFlag = flag.String("metrics", "", "write a telemetry snapshot to this file after the run (.json suffix = JSON, else Prometheus text)")
	)
	flag.Parse()

	// Telemetry is write-only: tables and soak logs are byte-identical
	// with or without it (pinned by the determinism tests).
	var reg *telemetry.Registry
	if *metrFlag != "" {
		reg = telemetry.NewRegistry()
	}
	writeMetrics := func() {
		if reg == nil {
			return
		}
		if err := telemetry.WriteFile(reg, *metrFlag); err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *soakFlag {
		if err := runSoak(*seedFlag, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %v\n", err)
			os.Exit(1)
		}
		writeMetrics()
		return
	}

	if *listFlag {
		// Pure metadata: listing never runs a generator and cannot fail.
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "mosaicbench: no experiments matched %q (try -list)\n", *expFlag)
			os.Exit(2)
		}
	}
	results, err := experiments.RunMetered(ids, *seedFlag, *parFlag, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaicbench: %v (try -list)\n", err)
		os.Exit(2)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %s: %v\n", r.Experiment.ID, r.Err)
			os.Exit(1)
		}
		if *csvFlag {
			r.Table.FprintCSV(os.Stdout)
		} else {
			r.Table.Fprint(os.Stdout)
		}
	}
	writeMetrics()
}

// runSoak drives the paper's prototype configuration (100 channels + 4
// spares) through the default fault-injection scenario with proactive
// maintenance enabled, printing the event log and summary.
func runSoak(seed int64, reg *telemetry.Registry) error {
	const superframes = 120
	cfg := phy.DefaultConfig()
	cfg.Seed = seed
	link, err := phy.New(cfg)
	if err != nil {
		return err
	}
	sched, err := faultinject.DefaultScenario(cfg.Lanes+cfg.Spares, superframes)
	if err != nil {
		return err
	}
	fmt.Println("== fault-injection soak: 100+4 channel prototype, default scenario ==")
	for _, e := range sched.Events {
		fmt.Printf("scheduled: %v\n", e)
	}
	res, err := faultinject.Run(faultinject.Config{
		Link:          link,
		Schedule:      sched,
		Superframes:   superframes,
		FramesPerSF:   24,
		FrameLen:      1500,
		Seed:          seed,
		Policy:        phy.DefaultMaintenancePolicy(),
		MaintainEvery: 10,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	for _, line := range res.Log {
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println(res.Summary())
	return nil
}
