// Command mosaicbench regenerates the paper's evaluation: every
// reconstructed table and figure (E1-E12) plus the design-choice ablations
// (A1-A4). Run with no arguments for the full suite, or select experiments:
//
//	mosaicbench                 # everything
//	mosaicbench -exp E4         # one experiment
//	mosaicbench -exp E1,E2,E7   # a subset
//	mosaicbench -list           # list experiments
//	mosaicbench -seed 7         # change the simulation seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mosaic/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seedFlag = flag.Int64("seed", 1, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	all := experiments.All(*seedFlag)
	if *listFlag {
		for _, e := range all {
			tab, err := e.Gen()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				continue
			}
			fmt.Printf("%-4s %s\n", e.ID, tab.Title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tab, err := e.Gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csvFlag {
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mosaicbench: no experiments matched %q (try -list)\n", *expFlag)
		os.Exit(2)
	}
}
