// Command mosaicbench regenerates the paper's evaluation: every
// reconstructed table and figure (E1-E25, including the E24 fleet-scale
// sharded-flow-engine run and the E25 ARQ/QoS comparison), the scenario
// library (E26-..., workload × environment compositions from
// internal/scenario) and the design-choice ablations (A1-A5), driven by
// the experiment registry. Run with no arguments for the full suite, or
// select experiments:
//
//	mosaicbench                 # everything
//	mosaicbench -exp E4         # one experiment
//	mosaicbench -exp E1,E2,E7   # a subset
//	mosaicbench -exp E26,E27    # the scenario-library experiments
//	mosaicbench -list           # list experiments grouped by kind (runs nothing)
//	mosaicbench -seed 7         # change the simulation seed
//	mosaicbench -par 4          # generate experiments concurrently
//	mosaicbench -soak           # fault-injection soak with a live event log
//	mosaicbench -metrics m.prom # also write a telemetry snapshot (.json = JSON)
//	mosaicbench -diff           # differential verification vs the reference models
//
// -diff runs the internal/diffcheck harness: every optimized hot-path
// stage against its naive reference model over a seeded corpus, printing
// a per-stage summary and exiting nonzero on the first divergence (with
// the minimized three-number repro). -diff-cases, -diff-seed,
// -diff-workers and -diff-stages shape the corpus; -diff-out writes the
// JSON report artifact CI uploads on failure.
//
// With -par N the generators run on up to N goroutines; output is always
// printed in registry order, and a fixed seed produces identical tables at
// any parallelism.
//
// -soak runs the default fault-injection scenario (a kill, an aging
// channel, a burst episode, and a correlated neighborhood failure) on the
// prototype link and prints the event log — the narrative companion to
// the E22 statistics; see cmd/linksoak for the fully scriptable harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mosaic/internal/diffcheck"
	"mosaic/internal/experiments"
	"mosaic/internal/faultinject"
	"mosaic/internal/phy"
	"mosaic/internal/telemetry"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seedFlag = flag.Int64("seed", 1, "simulation seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parFlag  = flag.Int("par", 1, "run up to N experiment generators concurrently")
		soakFlag = flag.Bool("soak", false, "run the default fault-injection soak scenario and exit")
		metrFlag = flag.String("metrics", "", "write a telemetry snapshot to this file after the run (.json suffix = JSON, else Prometheus text)")

		diffFlag    = flag.Bool("diff", false, "run differential verification against the reference models and exit")
		diffCases   = flag.Int("diff-cases", 50, "differential cases per stage")
		diffSeed    = flag.Int64("diff-seed", 1, "differential corpus seed")
		diffWorkers = flag.String("diff-workers", "1,2,0", "comma-separated pipeline worker counts (0 = GOMAXPROCS)")
		diffStages  = flag.String("diff-stages", "", "comma-separated stage subset (default: all)")
		diffOut     = flag.String("diff-out", "", "write the JSON differential report to this file")
	)
	flag.Parse()

	if *diffFlag {
		if err := runDiff(*diffSeed, *diffCases, *diffWorkers, *diffStages, *diffOut); err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Telemetry is write-only: tables and soak logs are byte-identical
	// with or without it (pinned by the determinism tests).
	var reg *telemetry.Registry
	if *metrFlag != "" {
		reg = telemetry.NewRegistry()
	}
	writeMetrics := func() {
		if reg == nil {
			return
		}
		if err := telemetry.WriteFile(reg, *metrFlag); err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *soakFlag {
		if err := runSoak(*seedFlag, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %v\n", err)
			os.Exit(1)
		}
		writeMetrics()
		return
	}

	if *listFlag {
		// Pure metadata: listing never runs a generator and cannot fail.
		// Grouped by kind so the scenario library reads separately from
		// the paper reproductions and the ablations.
		for _, kind := range experiments.Kinds() {
			fmt.Printf("%s:\n", kind)
			for _, e := range experiments.ByKind(kind) {
				fmt.Printf("  %-4s %s\n", e.ID, e.Title)
			}
		}
		return
	}

	var ids []string
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "mosaicbench: no experiments matched %q (try -list)\n", *expFlag)
			os.Exit(2)
		}
	}
	results, err := experiments.RunMetered(ids, *seedFlag, *parFlag, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaicbench: %v (try -list)\n", err)
		os.Exit(2)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mosaicbench: %s: %v\n", r.Experiment.ID, r.Err)
			os.Exit(1)
		}
		if *csvFlag {
			r.Table.FprintCSV(os.Stdout)
		} else {
			r.Table.Fprint(os.Stdout)
		}
	}
	writeMetrics()
}

// runDiff executes the differential verification harness and prints a
// per-stage summary. Any divergence is an error carrying the minimized
// (stage, seed, case, size) repro; the optional JSON report is written in
// both outcomes so CI can upload it as an artifact.
func runDiff(seed int64, cases int, workersCSV, stagesCSV, out string) error {
	var workers []int
	for _, f := range strings.Split(workersCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 0 {
			return fmt.Errorf("bad -diff-workers entry %q", f)
		}
		workers = append(workers, w)
	}
	var stages []string
	if stagesCSV != "" {
		for _, s := range strings.Split(stagesCSV, ",") {
			if s = strings.TrimSpace(s); s != "" {
				stages = append(stages, s)
			}
		}
	}
	rep := diffcheck.Run(diffcheck.Options{
		Seed: seed, Cases: cases, Workers: workers, Stages: stages,
	})
	for _, st := range rep.Stages {
		verdict := "ok"
		if len(st.Divergences) > 0 {
			verdict = fmt.Sprintf("DIVERGED (%d)", len(st.Divergences))
		}
		fmt.Printf("%-10s %5d cases  %s\n", st.Stage, st.Cases, verdict)
	}
	fmt.Printf("total: %d cases, %d divergences (seed %d)\n", rep.TotalCases, rep.Diverged, seed)
	if out != "" {
		if err := diffcheck.WriteJSON(out, rep); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	if d := rep.First(); d != nil {
		return fmt.Errorf("differential divergence: %s", d)
	}
	return nil
}

// runSoak drives the paper's prototype configuration (100 channels + 4
// spares) through the default fault-injection scenario with proactive
// maintenance enabled, printing the event log and summary.
func runSoak(seed int64, reg *telemetry.Registry) error {
	const superframes = 120
	cfg := phy.DefaultConfig()
	cfg.Seed = seed
	link, err := phy.New(cfg)
	if err != nil {
		return err
	}
	sched, err := faultinject.DefaultScenario(cfg.Lanes+cfg.Spares, superframes)
	if err != nil {
		return err
	}
	fmt.Println("== fault-injection soak: 100+4 channel prototype, default scenario ==")
	for _, e := range sched.Events {
		fmt.Printf("scheduled: %v\n", e)
	}
	res, err := faultinject.Run(faultinject.Config{
		Link:          link,
		Schedule:      sched,
		Superframes:   superframes,
		FramesPerSF:   24,
		FrameLen:      1500,
		Seed:          seed,
		Policy:        phy.DefaultMaintenancePolicy(),
		MaintainEvery: 10,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	for _, line := range res.Log {
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println(res.Summary())
	return nil
}
