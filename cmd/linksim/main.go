// Command linksim analyses and simulates a single Mosaic link:
//
//	linksim -length 30                       # budget at 30 m
//	linksim -length 30 -offset 10e-6         # with 10 µm misalignment
//	linksim -channels 400 -spares 16         # an 800G configuration
//	linksim -length 50 -frames 500 -run      # bit-true traffic simulation
//	linksim -fec kp4 -run                    # switch the per-channel FEC
//	linksim -length 50 -mac                  # MAC-framed traffic (CRC framing + go-back-N LLR)
//	linksim -length 50 -mac -arq sr          # selective-repeat retransmission instead
//	linksim -length 50 -mac -arq sr -vc 3    # three QoS-classed virtual channels
//	linksim -length 45 -eye                  # render the eye diagram
//	linksim -sweep                           # reach sweep table
//	linksim -config design.json -run         # load a JSON design
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/units"
)

func main() {
	var (
		lengthM  = flag.Float64("length", 2, "fiber length in metres")
		offsetM  = flag.Float64("offset", 0, "lateral misalignment in metres (e.g. 10e-6)")
		channels = flag.Int("channels", 100, "data channels")
		spares   = flag.Int("spares", 4, "spare channels")
		chanRate = flag.Float64("chanrate", 2e9, "per-channel rate in bit/s")
		fecName  = flag.String("fec", "rslite", "per-channel FEC: none|hamming72|rslite|kp4")
		seed     = flag.Int64("seed", 1, "simulation seed")
		run      = flag.Bool("run", false, "also run bit-true traffic through the link")
		frames   = flag.Int("frames", 200, "frames to exchange with -run")
		sweep    = flag.Bool("sweep", false, "print a reach sweep instead")
		eye      = flag.Bool("eye", false, "render the channel eye diagram")
		cfgPath  = flag.String("config", "", "JSON design config (overrides other design flags)")
		par      = flag.Int("par", 0, "PHY lane workers for -run (0 = all cores, 1 = serial; same results either way)")
		macRun   = flag.Bool("mac", false, "run MAC-framed traffic (CRC framing + LLR) over a full-duplex pair")
		arqName  = flag.String("arq", "gbn", "LLR retransmission discipline with -mac: gbn|sr")
		vcCount  = flag.Int("vc", 1, "virtual channels with -mac (classes assigned round-robin)")
	)
	flag.Parse()

	var d core.Design
	if *cfgPath != "" {
		var err error
		d, err = core.LoadDesign(*cfgPath)
		if err != nil {
			fatal(err)
		}
	} else {
		d = core.DefaultDesign()
		d.LengthM = *lengthM
		d.LateralOffsetM = *offsetM
		d.AggregateRate = float64(*channels) * *chanRate
		d.ChannelRate = *chanRate
		d.Spares = *spares
		d.Seed = *seed
		if *channels > 150 {
			// Denser grid for big arrays (the 800G-class packing).
			d.ChannelPitchM = 25e-6
			d.SpotDiameterM = 20e-6
		}
		fec, err := phy.FECByName(*fecName)
		if err != nil {
			fatal(err)
		}
		d.FEC = fec
		if err := d.Validate(); err != nil {
			fatal(err)
		}
	}
	d.Workers = *par
	report(d, *seed, *eye, *run, *frames, *sweep)
	if *macRun {
		macDemo(d, *seed, *frames, *arqName, *vcCount)
	}
}

// macDemo pushes client packets through a full-duplex MAC pair built on
// the designed link: CRC framing, idle fill, and the selected LLR
// discipline (go-back-N or selective repeat, over one or more virtual
// channels) all run over the bit-true PHY, so residual post-FEC errors
// surface as retransmissions instead of lost frames.
func macDemo(d core.Design, seed int64, packets int, arqName string, vcs int) {
	arq, err := mac.ARQByName(arqName)
	if err != nil {
		fatal(err)
	}
	fwd, err := d.BuildPHY()
	if err != nil {
		fatal(err)
	}
	rd := d
	rd.Seed = seed + 1
	rev, err := rd.BuildPHY()
	if err != nil {
		fatal(err)
	}
	classes := make([]uint8, vcs)
	for vc := range classes {
		classes[vc] = uint8(vc % mac.NumClasses)
	}
	delivered := 0
	pair, err := mac.NewPair(fwd, rev, mac.PairConfig{
		Endpoint: mac.Config{Window: 64, RetxTimeout: 2, MaxPayload: 1500,
			PayloadBudget: 16 * (1500 + mac.OverheadV2),
			ARQ:           arq, VCs: vcs, VCClass: classes},
	}, nil, func([]byte) { delivered++ })
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 1500)
	sent, ticks := 0, 0
	for ; delivered < packets && ticks < 8*packets; ticks++ {
		for k := 0; k < 8 && sent < packets; k++ {
			rng.Read(payload)
			if err := pair.A.SendVC(sent%vcs, payload); err != nil {
				fatal(err)
			}
			sent++
		}
		if err := pair.Tick(); err != nil {
			fatal(err)
		}
	}
	a, b := pair.A.Stats(), pair.B.Stats()
	fmt.Printf("\nmac exchange (%s, %d vc): %d/%d packets delivered in %d superframes\n",
		arq, vcs, delivered, sent, ticks)
	fmt.Printf("llr: %d data tx, %d retransmits, %d timeouts, %d credit stalls\n",
		a.DataTx, a.Retransmits, a.Timeouts, a.CreditStalls)
	fmt.Printf("deframer: %d frames, %d crc rejects, %d resync bytes skipped\n",
		b.Deframe.Frames, b.Deframe.CRCRejects, b.Deframe.SkippedBytes)
	if vcs > 1 {
		for vc := 0; vc < pair.B.NumVCs(); vc++ {
			v := pair.B.VCSnapshot(vc)
			fmt.Printf("vc %d (class %d): %d delivered, %d reordered\n",
				vc, v.Class, v.Delivered, v.Reordered)
		}
	}
}

func report(d core.Design, seed int64, eye, run bool, frames int, sweep bool) {
	if sweep {
		fmt.Printf("%8s %10s %12s %10s\n", "len_m", "rx_dBm", "BER", "margin_dB")
		for _, l := range []float64{1, 2, 5, 10, 20, 30, 40, 50, 60, 70} {
			dd := d
			dd.LengthM = l
			res, err := dd.NominalChannel()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%8.0f %10.1f %12.2e %10.1f\n", l, res.RxPowerDBm, res.BER, res.MarginDB)
		}
		fmt.Printf("\nmax reach @1e-12: %.1f m\n", d.MaxReach(1e-12))
		return
	}

	res, err := d.NominalChannel()
	if err != nil {
		fatal(err)
	}
	rep, err := d.Evaluate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design: %d+%d channels x %s = %s aggregate, %s FEC\n",
		d.DataChannels(), d.Spares, units.DataRate(d.ChannelRate),
		units.DataRate(d.AggregateRate), d.FEC.Name())
	fmt.Printf("path:   %.1f m imaging fiber, %.1f um offset\n", d.LengthM, d.LateralOffsetM*1e6)
	fmt.Printf("nominal channel: %v\n", res)
	fmt.Printf("population: median BER %.2e, worst %.2e, worst margin %.1f dB, %d dead, %d above 1e-12\n",
		rep.MedianBER, rep.WorstBER, rep.WorstMargin, rep.DeadCount, rep.BelowTarget)
	b := d.PowerBudget()
	fmt.Printf("power:  %s pair (%.2f pJ/bit)\n", units.Power(b.TotalW()), b.PJPerBit())
	fit, surv := d.Reliability(5)
	fmt.Printf("reliability: %.1f effective FIT, %.6f 5-year survival\n", float64(fit), surv)

	if eye {
		cfg, err := channel.EyeFromOptical(d.NominalOpticalParams(), seed)
		if err != nil {
			fatal(err)
		}
		cfg.NumBits = 4000
		e, err := channel.SimulateEye(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\neye diagram (two UIs at %.1f m):\n%s", d.LengthM, e.Render(18))
	}

	if !run {
		return
	}
	link, err := d.BuildPHY()
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	payload := make([][]byte, frames)
	for i := range payload {
		payload[i] = make([]byte, 1500)
		rng.Read(payload[i])
	}
	_, st, err := link.Exchange(payload)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nbit-true exchange: %d/%d frames delivered, %d corrupted, %d units lost, %d FEC corrections\n",
		st.FramesDelivered, st.FramesIn, st.FramesCorrupted, st.UnitsLost, st.Corrections)
	fmt.Printf("efficiency: %.3f payload/wire (predicted %.3f)\n",
		float64(st.PayloadBytes)/float64(st.WireBytes), link.GoodputFraction())
	fmt.Printf("latency: %v\n", link.LatencyBudget())
	worst := link.Monitor().WorstChannels(3)
	for _, h := range worst {
		fmt.Printf("worst channel %d: state=%v estBER=%.2e\n", h.Physical, h.State, h.EstimatedBER())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linksim:", err)
	os.Exit(1)
}
