// Command linksoak runs deterministic fault-injection soaks against the
// bit-true Mosaic PHY: scripted or seeded-random fault schedules are
// replayed at superframe boundaries while the sparing, monitoring, and
// maintenance machinery reacts, and the run emits an event log of remaps,
// maintenance actions, health transitions, and loss milestones.
//
//	linksoak                                  # default scenario, 100+4 channels
//	linksoak -superframes 500 -hazard 0.001   # random channel deaths
//	linksoak -schedule faults.json            # replay a scripted schedule
//	linksoak -scenario E26                    # replay a library scenario's witness faults
//	linksoak -dump faults.json -hazard 0.002  # write the generated schedule
//	linksoak -trials 200 -spares 2            # survival study vs closed form
//	linksoak -json                            # machine-readable event log
//	linksoak -metrics m.prom                  # dump a telemetry snapshot after the soak
//	linksoak -mac                             # soak a full MAC session (framing + LLR + bridge)
//	linksoak -mac -arq sr -vc 3               # selective repeat over three QoS-classed VCs
//
// With -mac the schedule is replayed against the forward link of a
// full-duplex MAC pair instead of a bare PHY: client packets cross the
// CRC-framed LLR while the bridge renegotiates capacity as sparing
// consumes lanes. -frames/-framesize become client packets per
// superframe and packet length; -arq selects the retransmission
// discipline and -vc the virtual-channel count (classes assigned
// round-robin, per-superframe packets split evenly across VCs).
//
// A fixed -seed and schedule produce a byte-identical event log at any
// -workers value. Schedule files are JSON:
//
//	{"seed": 1, "events": [
//	  {"at": 10, "kind": "kill", "channel": 5},
//	  {"at": 20, "kind": "aging", "channel": 7, "ber": 1e-4, "duration": 30},
//	  {"at": 40, "kind": "burst", "channel": 3, "ber": 3e-4, "duration": 8},
//	  {"at": 60, "kind": "correlated", "channel": 96, "span": 4}
//	]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/scenario"
	"mosaic/internal/sim"
	"mosaic/internal/telemetry"
)

func main() {
	var (
		lanes       = flag.Int("lanes", 100, "active data lanes")
		spares      = flag.Int("spares", 4, "spare channels")
		fecName     = flag.String("fec", "rslite", "per-channel FEC: none|hamming72|rslite|kp4")
		unitLen     = flag.Int("unit", 243, "stripe unit length in bytes (multiple of 9)")
		superframes = flag.Int("superframes", 120, "superframes (Exchange rounds) to soak")
		frames      = flag.Int("frames", 24, "frames per superframe")
		frameLen    = flag.Int("framesize", 1500, "bytes per frame")
		seed        = flag.Int64("seed", 1, "simulation seed")
		workers     = flag.Int("workers", 0, "PHY lane workers (0 = all cores; results identical at any value)")
		maintEvery  = flag.Int("maintain-every", 10, "superframes between proactive maintenance passes (0 = never)")
		keepSpares  = flag.Int("keep-spares", 1, "spares held back for hard failures")
		spareAbove  = flag.Float64("spare-above", 1e-6, "proactive remap threshold (estimated BER)")
		schedPath   = flag.String("schedule", "", "JSON fault schedule to replay (default: -scenario witness, -hazard random kills, else the default scenario)")
		scenName    = flag.String("scenario", "", "registered scenario whose witness fault schedule to replay (experiment ID like E26 or spec name; see mosaicbench -list)")
		dumpPath    = flag.String("dump", "", "write the schedule that was run to this file")
		hazard      = flag.Float64("hazard", 0, "per-superframe channel death probability for a random-kill schedule")
		trials      = flag.Int("trials", 0, "run a survival study of N trials instead of one soak")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON")
		metricsPath = flag.String("metrics", "", "write a telemetry snapshot to this file after the soak (.json suffix = JSON, else Prometheus text); see cmd/linkmetricsd for live HTTP exposition")
		macMode     = flag.Bool("mac", false, "soak a full MAC session (CRC framing + LLR + capacity bridge) instead of a bare PHY")
		arqName     = flag.String("arq", "gbn", "LLR retransmission discipline with -mac: gbn|sr")
		vcCount     = flag.Int("vc", 1, "virtual channels with -mac (classes assigned round-robin)")
	)
	flag.Parse()

	fec, err := phy.FECByName(*fecName)
	if err != nil {
		fatal(err)
	}

	if *trials > 0 {
		runStudy(*lanes, *spares, *hazard, *superframes, *trials, *seed, *workers, *jsonOut)
		return
	}

	cfg := phy.Config{
		Lanes:             *lanes,
		Spares:            *spares,
		FEC:               fec,
		UnitLen:           *unitLen,
		PerChannelBitRate: 2e9,
		Seed:              *seed,
		Workers:           *workers,
	}
	link, err := phy.New(cfg)
	if err != nil {
		fatal(err)
	}

	sched, err := buildSchedule(*schedPath, *scenName, *hazard, *lanes+*spares, *superframes, *seed)
	if err != nil {
		fatal(err)
	}
	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fatal(err)
		}
		if err := sched.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	var reg *telemetry.Registry
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
	}

	if *macMode {
		runMACSoak(link, cfg, sched, *superframes, *frames, *frameLen, *seed,
			*arqName, *vcCount, reg, *metricsPath, *jsonOut)
		return
	}

	res, err := faultinject.Run(faultinject.Config{
		Link:        link,
		Schedule:    sched,
		Superframes: *superframes,
		FramesPerSF: *frames,
		FrameLen:    *frameLen,
		Seed:        *seed,
		Policy: phy.MaintenancePolicy{
			SpareAboveBER: *spareAbove,
			KeepSpares:    *keepSpares,
		},
		MaintainEvery: *maintEvery,
		Metrics:       reg,
	})
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		if err := telemetry.WriteFile(reg, *metricsPath); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("soak: %d+%d channels, %s FEC, %d superframes x %d frames, seed %d\n",
		*lanes, *spares, fec.Name(), *superframes, *frames, *seed)
	for _, e := range sched.Events {
		fmt.Printf("scheduled: %v\n", e)
	}
	fmt.Println()
	for _, line := range res.Log {
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println(res.Summary())
}

// printSink is the MAC bridge's capacity sink when there is no network
// simulator attached: renegotiations only land in the event log.
type printSink struct{}

func (printSink) SetLinkCapacityFraction(int, float64) {}

// runMACSoak replays the schedule against the forward link of a
// full-duplex MAC pair: client packets cross the CRC-framed LLR (the
// selected ARQ discipline, split across the configured virtual
// channels) every superframe while reactive sparing remaps failures and
// the bridge renegotiates capacity. The event log is byte-identical at
// any -workers value, like the bare-PHY soak.
func runMACSoak(fwd *phy.Link, cfg phy.Config, sched faultinject.Schedule,
	superframes, packets, packetLen int, seed int64, arqName string, vcs int,
	reg *telemetry.Registry, metricsPath string, jsonOut bool) {
	arq, err := mac.ARQByName(arqName)
	if err != nil {
		fatal(err)
	}
	revCfg := cfg
	revCfg.Seed = cfg.Seed + 1
	rev, err := phy.New(revCfg)
	if err != nil {
		fatal(err)
	}
	var pc mac.PairConfig
	pc.Endpoint.ARQ = arq
	pc.Endpoint.VCs = vcs
	if vcs > 0 {
		classes := make([]uint8, vcs)
		for vc := range classes {
			classes[vc] = uint8(vc % mac.NumClasses)
		}
		pc.Endpoint.VCClass = classes
	}
	// Split the per-superframe packet load evenly across VCs (the first
	// packets%vcs channels carry one extra).
	var vcPackets []int
	if vcs > 1 {
		vcPackets = make([]int, vcs)
		for vc := range vcPackets {
			vcPackets[vc] = packets / vcs
			if vc < packets%vcs {
				vcPackets[vc]++
			}
		}
	}
	eng := sim.NewEngine(seed)
	sess, err := mac.NewSession(mac.SessionConfig{
		Engine:       eng,
		Fwd:          fwd,
		Rev:          rev,
		Pair:         pc,
		Schedule:     sched,
		Superframes:  superframes,
		Interval:     1e-5,
		PacketsPerSF: packets,
		VCPackets:    vcPackets,
		PacketLen:    packetLen,
		Seed:         seed,
		Bridge:       mac.NewBridge(fwd, printSink{}, 0, eng),
		Metrics:      reg,
	})
	if err != nil {
		fatal(err)
	}
	eng.Run()
	res := sess.Result()
	if reg != nil {
		if err := telemetry.WriteFile(reg, metricsPath); err != nil {
			fatal(err)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("mac soak: %d+%d channels, %s FEC, %s arq, %d vc, %d superframes x %d packets x %dB, seed %d\n",
		cfg.Lanes, cfg.Spares, cfg.FEC.Name(), arq, vcs, superframes, packets, packetLen, seed)
	for _, e := range sched.Events {
		fmt.Printf("scheduled: %v\n", e)
	}
	fmt.Println()
	for _, line := range res.Log {
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println(res.Summary())
	if res.Err != "" {
		os.Exit(1)
	}
}

// buildSchedule picks the fault script: an explicit file, a library
// scenario's witness schedule, seeded random kills when -hazard is set,
// or the default showcase scenario.
func buildSchedule(path, scenName string, hazard float64, channels, superframes int, seed int64) (faultinject.Schedule, error) {
	if path != "" {
		return faultinject.LoadFile(path)
	}
	if scenName != "" {
		entry, ok := scenario.Lookup(scenName)
		if !ok {
			return faultinject.Schedule{}, fmt.Errorf("unknown scenario %q (see mosaicbench -list)", scenName)
		}
		return scenario.Witness(entry.Spec, channels, superframes, seed)
	}
	if hazard > 0 {
		s := faultinject.RandomKills(rand.New(rand.NewSource(seed)), channels, hazard, superframes)
		s.Seed = seed
		return s, nil
	}
	return faultinject.DefaultScenario(channels, superframes)
}

// runStudy cross-validates pipeline survival against the k-of-n closed
// form, like experiment E22 but at caller-chosen scale.
func runStudy(lanes, spares int, hazard float64, superframes, trials int, seed int64, workers int, jsonOut bool) {
	if hazard <= 0 {
		hazard = 0.002
	}
	res, err := faultinject.SurvivalStudy(faultinject.SurvivalConfig{
		Lanes:       lanes,
		Spares:      spares,
		HazardPerSF: hazard,
		Superframes: superframes,
		Trials:      trials,
		Seed:        seed,
		Workers:     workers,
	})
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("survival study: %d+%d channels, hazard %.2e/superframe, %d superframes, %d trials\n",
		lanes, spares, hazard, superframes, trials)
	fmt.Printf("simulated survival: %.4f  (%d/%d trials kept full width)\n",
		res.SimSurvival, res.Survived, res.Trials)
	fmt.Printf("closed-form k-of-n: %.4f  (|err| %.4f, tolerance %.4f)\n",
		res.ClosedForm, abs(res.SimSurvival-res.ClosedForm), res.Tolerance)
	fmt.Printf("mean remaps/trial: %.2f; %d trials dropped frames (mean first drop sf %.1f)\n",
		res.MeanRemaps, res.DroppedTrials, res.MeanFirstDrop)
	if res.Agrees() {
		fmt.Println("verdict: pipeline agrees with the closed form within Monte-Carlo tolerance")
	} else {
		fmt.Println("verdict: DISAGREEMENT beyond Monte-Carlo tolerance")
		os.Exit(1)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linksoak:", err)
	os.Exit(1)
}
