// Command dcsweep sweeps datacenter-scale deployments: fat-tree sizes ×
// link-technology plans, reporting network-wide link power, expected
// failures, and (optionally) a loaded flow simulation with a fault.
//
//	dcsweep                       # power/failure sweep over k = 4..24
//	dcsweep -k 16                 # one fabric size
//	dcsweep -flows -k 8 -load 0.4 # run the flow simulator too
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/sim"
)

func main() {
	var (
		kFlag   = flag.Int("k", 0, "fat-tree k (0 = sweep 4,8,16,24)")
		rate    = flag.Float64("rate", 800e9, "link rate in bit/s")
		doFlows = flag.Bool("flows", false, "run the loaded flow simulation with a fault")
		load    = flag.Float64("load", 0.4, "offered load for -flows")
		nflows  = flag.Int("nflows", 2000, "flows to inject for -flows")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	ks := []int{4, 8, 16, 24}
	if *kFlag > 0 {
		ks = []int{*kFlag}
	}

	fmt.Printf("%4s %7s %7s %14s %10s %14s\n", "k", "hosts", "links", "plan", "power_kW", "failures/yr")
	for _, k := range ks {
		topo, err := netsim.NewFatTree(k, *rate)
		if err != nil {
			fatal(err)
		}
		for _, plan := range netsim.Plans() {
			rep, err := netsim.Analyze(topo, plan, *rate)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%4d %7d %7d %14s %10.2f %14.2f\n",
				k, topo.NumHosts(), rep.Links, rep.Plan, rep.PowerW/1e3, rep.FailuresPerYear)
		}
	}

	if !*doFlows {
		return
	}
	k := ks[0]
	fmt.Printf("\nflow simulation: k=%d, load %.2f, %d flows, access-link fault mid-run\n", k, *load, *nflows)
	fmt.Printf("%-24s %7s %8s %12s %12s\n", "scenario", "flows", "stalled", "mean_ms", "p99_ms")
	for _, sc := range []struct {
		name string
		frac float64
	}{
		{"no-fault", -1},
		{"mosaic-degraded(-4%)", 0.96},
		{"optics-linkdown", 0},
	} {
		st, err := runScenario(k, *rate, *load, *nflows, *seed, sc.frac)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %7d %8d %12.3f %12.3f\n", sc.name,
			st.Count+st.Stalled, st.Stalled, float64(st.Mean)*1e3, float64(st.P99)*1e3)
	}
}

func runScenario(k int, rate, load float64, nflows int, seed int64, frac float64) (netsim.FCTStats, error) {
	topo, err := netsim.NewFatTree(k, rate)
	if err != nil {
		return netsim.FCTStats{}, err
	}
	eng := sim.NewEngine(seed)
	fs := netsim.NewFlowSim(topo, eng)
	hosts := topo.Hosts()
	dist := workload.WebSearch()
	arr := workload.NewPoissonForLoad(load, len(hosts), rate, dist.MeanBits())
	rng := eng.RNG("workload")

	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= nflows {
			return
		}
		eng.Schedule(at, func() {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			_, _ = fs.StartFlow(src, dst, dist.SampleBits(rng), rng.Uint64())
			schedule(i+1, at+sim.Time(arr.NextGapSec(rng)))
		})
	}
	schedule(0, 0)
	if frac >= 0 {
		// Mid-run fault on an access link (no ECMP diversity there).
		faultAt := sim.Time(0.15 * float64(nflows) / arr.RatePerSec)
		victim := topo.LinksByTier()[netsim.TierHostToR][0]
		eng.Schedule(faultAt, func() {
			fs.SetLinkCapacityFraction(victim, frac)
		})
	}
	eng.Run()
	return netsim.Stats(fs.Records()), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcsweep:", err)
	os.Exit(1)
}
