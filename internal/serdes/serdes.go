// Package serdes models the equalization machinery a narrow-and-fast lane
// cannot live without: symbol-spaced pulse responses synthesized from a
// channel's frequency response, ISI metrics, and zero-forcing FFE design
// via least squares. Its purpose in this reproduction is quantitative: show
// how many equalizer taps a 53 Gbaud copper or band-limited channel needs
// to open its eye, versus zero for a 2 Gbaud Mosaic channel — the origin of
// the DSP power that dominates conventional transceivers (experiment E17).
package serdes

import (
	"errors"
	"fmt"
	"math"
)

// PulseResponse is a symbol-spaced sampled pulse (the response of the
// channel to one transmitted symbol), with the main cursor at MainCursor.
type PulseResponse struct {
	Taps       []float64
	MainCursor int
}

// Main returns the main-cursor amplitude.
func (p PulseResponse) Main() float64 {
	if p.MainCursor < 0 || p.MainCursor >= len(p.Taps) {
		return 0
	}
	return p.Taps[p.MainCursor]
}

// ISIRatio returns the worst-case inter-symbol interference: the sum of
// absolute off-cursor taps divided by the main cursor. Below ~0.3 an NRZ
// eye is open; above 1.0 it is fully closed.
func (p PulseResponse) ISIRatio() float64 {
	main := math.Abs(p.Main())
	if main == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i, t := range p.Taps {
		if i != p.MainCursor {
			sum += math.Abs(t)
		}
	}
	return sum / main
}

// EyeOpening returns the normalised worst-case vertical eye: 1 - ISIRatio,
// clamped at 0.
func (p PulseResponse) EyeOpening() float64 {
	e := 1 - p.ISIRatio()
	if e < 0 {
		return 0
	}
	return e
}

// FrequencyResponse gives the channel's magnitude response |H(f)| (linear,
// not dB) at frequency f in Hz.
type FrequencyResponse func(fHz float64) float64

// SinglePole returns the response of a one-pole lowpass with the given
// 3 dB bandwidth.
func SinglePole(f3dB float64) FrequencyResponse {
	return func(f float64) float64 {
		if f3dB <= 0 {
			return 0
		}
		x := f / f3dB
		return 1 / math.Sqrt(1+x*x)
	}
}

// FromInsertionLossDB converts an insertion-loss function (dB, positive)
// into a magnitude response.
func FromInsertionLossDB(il func(fHz float64) float64) FrequencyResponse {
	return func(f float64) float64 {
		return math.Pow(10, -il(f)/20)
	}
}

// SamplePulse synthesizes the symbol-spaced pulse response of a channel at
// the given baud rate: the zero-phase inverse DFT of |H(f)| convolved with
// an ideal one-UI rectangular transmit pulse, sampled at symbol centres.
// pre and post select how many cursors to keep either side of the main
// tap. Zero-phase synthesis yields a symmetric pulse; for ISI and
// equalizer-burden estimates this is the standard simplification.
func SamplePulse(h FrequencyResponse, baud float64, pre, post int) (PulseResponse, error) {
	if baud <= 0 {
		return PulseResponse{}, errors.New("serdes: baud must be positive")
	}
	if pre < 0 || post < 0 {
		return PulseResponse{}, errors.New("serdes: negative cursor counts")
	}
	const osr = 16    // samples per UI
	const nfft = 4096 // frequency bins
	fs := baud * osr
	df := fs / nfft

	// Combined response: channel × transmit sinc (one-UI rectangular pulse).
	mag := make([]float64, nfft/2+1)
	for k := range mag {
		f := float64(k) * df
		sinc := 1.0
		if f > 0 {
			x := math.Pi * f / baud
			sinc = math.Sin(x) / x // signed: the lobes matter
		}
		mag[k] = h(f) * sinc
	}
	// Zero-phase inverse DFT (real, even): h[n] = (1/N)·Σ mag·cos(2πkn/N)·w
	// with Hermitian weights.
	impulse := func(n int) float64 {
		sum := mag[0]
		for k := 1; k < nfft/2; k++ {
			sum += 2 * mag[k] * math.Cos(2*math.Pi*float64(k)*float64(n)/nfft)
		}
		sum += mag[nfft/2] * math.Cos(math.Pi*float64(n))
		return sum / nfft
	}
	// Sample at symbol spacing around n=0 (the zero-phase peak).
	taps := make([]float64, pre+post+1)
	for i := range taps {
		n := (i - pre) * osr
		taps[i] = impulse(((n % nfft) + nfft) % nfft)
	}
	// Normalise to unit main cursor when possible.
	p := PulseResponse{Taps: taps, MainCursor: pre}
	if m := p.Main(); m != 0 {
		for i := range p.Taps {
			p.Taps[i] /= m
		}
	}
	return p, nil
}

// FFE is a feed-forward (linear transversal) equalizer.
type FFE struct {
	Taps       []float64
	MainCursor int
}

// DesignFFE computes the least-squares zero-forcing FFE of nTaps
// coefficients for the pulse: it minimises the off-cursor energy of the
// equalized pulse while pinning the main cursor to 1.
func DesignFFE(p PulseResponse, nTaps int) (FFE, error) {
	if nTaps <= 0 {
		return FFE{}, errors.New("serdes: need at least one tap")
	}
	if len(p.Taps) == 0 || p.Main() == 0 {
		return FFE{}, errors.New("serdes: degenerate pulse")
	}
	// Equalized pulse q = conv(p, w). Build the convolution matrix A with
	// rows for every output position and solve A·w ≈ e (unit at the target
	// cursor) in the least-squares sense.
	fc := nTaps / 2 // equalizer main tap position
	outLen := len(p.Taps) + nTaps - 1
	target := p.MainCursor + fc
	a := make([][]float64, outLen)
	b := make([]float64, outLen)
	for r := 0; r < outLen; r++ {
		a[r] = make([]float64, nTaps)
		for c := 0; c < nTaps; c++ {
			pi := r - c
			if pi >= 0 && pi < len(p.Taps) {
				a[r][c] = p.Taps[pi]
			}
		}
		if r == target {
			b[r] = 1
		}
	}
	w, err := leastSquares(a, b)
	if err != nil {
		return FFE{}, err
	}
	return FFE{Taps: w, MainCursor: fc}, nil
}

// Apply convolves the equalizer with a pulse and returns the equalized
// pulse, renormalised to its main cursor.
func (f FFE) Apply(p PulseResponse) PulseResponse {
	if len(f.Taps) == 0 || len(p.Taps) == 0 {
		return p
	}
	out := make([]float64, len(p.Taps)+len(f.Taps)-1)
	for i, pv := range p.Taps {
		for j, wv := range f.Taps {
			out[i+j] += pv * wv
		}
	}
	q := PulseResponse{Taps: out, MainCursor: p.MainCursor + f.MainCursor}
	if m := q.Main(); m != 0 {
		for i := range q.Taps {
			q.Taps[i] /= m
		}
	}
	return q
}

// TapsNeeded returns the smallest FFE length (up to maxTaps) that brings
// the pulse's ISI ratio at or below targetISI; 0 if the raw channel
// already meets it, and maxTaps+1 if even maxTaps cannot.
func TapsNeeded(p PulseResponse, maxTaps int, targetISI float64) int {
	if p.ISIRatio() <= targetISI {
		return 0
	}
	for n := 2; n <= maxTaps; n++ {
		ffe, err := DesignFFE(p, n)
		if err != nil {
			continue
		}
		if ffe.Apply(p).ISIRatio() <= targetISI {
			return n
		}
	}
	return maxTaps + 1
}

// leastSquares solves min ||A·x - b|| via the normal equations with
// Gaussian elimination and partial pivoting.
func leastSquares(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 {
		return nil, errors.New("serdes: empty system")
	}
	n := len(a[0])
	// Normal equations: (AᵀA)·x = Aᵀb.
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		ata[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for r := range a {
				s += a[r][i] * a[r][j]
			}
			ata[i][j] = s
		}
		s := 0.0
		for r := range a {
			s += a[r][i] * b[r]
		}
		atb[i] = s
	}
	// Tikhonov whisper for numerical safety.
	for i := 0; i < n; i++ {
		ata[i][i] += 1e-12
	}
	return solveGauss(ata, atb)
}

// solveGauss performs in-place Gaussian elimination with partial pivoting.
func solveGauss(m [][]float64, v []float64) ([]float64, error) {
	n := len(v)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[best][col]) {
				best = r
			}
		}
		if math.Abs(m[best][col]) < 1e-18 {
			return nil, fmt.Errorf("serdes: singular system at column %d", col)
		}
		m[col], m[best] = m[best], m[col]
		v[col], v[best] = v[best], v[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := v[r]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}
