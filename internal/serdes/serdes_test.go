package serdes

import (
	"math"
	"testing"

	"mosaic/internal/channel"
)

func TestSinglePoleResponse(t *testing.T) {
	h := SinglePole(1e9)
	if got := h(0); got != 1 {
		t.Errorf("DC gain = %v", got)
	}
	if got := h(1e9); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Errorf("gain at f3dB = %v", got)
	}
	if h(10e9) >= h(1e9) {
		t.Error("response should roll off")
	}
	if SinglePole(0)(1e9) != 0 {
		t.Error("zero-bandwidth channel should pass nothing")
	}
}

func TestSamplePulseCleanChannel(t *testing.T) {
	// A channel much faster than the baud: main cursor ~1, negligible ISI.
	p, err := SamplePulse(SinglePole(20e9), 2e9, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Main() != 1 {
		t.Errorf("main cursor = %v (should be normalised)", p.Main())
	}
	if isi := p.ISIRatio(); isi > 0.15 {
		t.Errorf("clean channel ISI = %v", isi)
	}
	if p.EyeOpening() < 0.85 {
		t.Errorf("clean channel eye = %v", p.EyeOpening())
	}
}

func TestSamplePulseBandlimitedChannel(t *testing.T) {
	// Bandwidth far below baud: heavy ISI, eye closed or nearly so.
	p, err := SamplePulse(SinglePole(0.15*53.125e9), 53.125e9, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-phase synthesis splits the tail symmetrically, so the worst-case
	// ISI reads lower than a causal pulse's — but it must still be severe
	// enough to leave only a sliver of eye.
	if isi := p.ISIRatio(); isi < 0.6 {
		t.Errorf("starved channel ISI = %v, want severe", isi)
	}
}

func TestSamplePulseValidation(t *testing.T) {
	if _, err := SamplePulse(SinglePole(1e9), 0, 2, 2); err == nil {
		t.Error("zero baud accepted")
	}
	if _, err := SamplePulse(SinglePole(1e9), 1e9, -1, 2); err == nil {
		t.Error("negative cursors accepted")
	}
}

func TestFFEOpensClosedEye(t *testing.T) {
	raw, err := SamplePulse(SinglePole(0.25*53.125e9), 53.125e9, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	ffe, err := DesignFFE(raw, 9)
	if err != nil {
		t.Fatal(err)
	}
	eq := ffe.Apply(raw)
	if !(eq.ISIRatio() < raw.ISIRatio()/2) {
		t.Errorf("FFE did not help: raw %v, eq %v", raw.ISIRatio(), eq.ISIRatio())
	}
	if eq.Main() != 1 {
		t.Error("equalized pulse not renormalised")
	}
}

func TestDesignFFEValidation(t *testing.T) {
	if _, err := DesignFFE(PulseResponse{}, 5); err == nil {
		t.Error("degenerate pulse accepted")
	}
	p, _ := SamplePulse(SinglePole(1e9), 1e9, 2, 2)
	if _, err := DesignFFE(p, 0); err == nil {
		t.Error("zero taps accepted")
	}
}

func TestTapsNeededOrdering(t *testing.T) {
	baud := 53.125e9
	// The cleaner the channel, the fewer taps.
	clean, _ := SamplePulse(SinglePole(baud*0.8), baud, 4, 10)
	mild, _ := SamplePulse(SinglePole(baud*0.35), baud, 4, 10)
	harsh, _ := SamplePulse(SinglePole(baud*0.18), baud, 4, 10)
	nClean := TapsNeeded(clean, 31, 0.3)
	nMild := TapsNeeded(mild, 31, 0.3)
	nHarsh := TapsNeeded(harsh, 31, 0.3)
	if !(nClean <= nMild && nMild <= nHarsh) {
		t.Errorf("taps not monotone: %d %d %d", nClean, nMild, nHarsh)
	}
	if nHarsh <= 2 {
		t.Errorf("harsh channel needs only %d taps?", nHarsh)
	}
}

func TestMosaicChannelNeedsNoEqualizer(t *testing.T) {
	// The headline of this package: the 2 Gbps Mosaic channel (LED ~1.2 GHz
	// + receiver) meets the ISI target with ZERO equalizer taps.
	p, err := SamplePulse(SinglePole(1.05e9), 2e9, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := TapsNeeded(p, 31, 0.3); n != 0 {
		t.Errorf("Mosaic channel needs %d taps, want 0", n)
	}
}

func TestCopperNeedsManyTaps(t *testing.T) {
	// 53 Gbaud over 2 m of twinax: insertion loss ~28 dB at Nyquist. The
	// equalizer burden must be substantial (this is what the DSP does).
	c := channel.Twinax26AWG()
	h := FromInsertionLossDB(func(f float64) float64 {
		return c.InsertionLossDB(f, 2)
	})
	p, err := SamplePulse(h, 53.125e9, 6, 14)
	if err != nil {
		t.Fatal(err)
	}
	n := TapsNeeded(p, 41, 0.3)
	if n < 3 {
		t.Errorf("112G copper needs %d taps; expected a real equalizer", n)
	}
}

func TestEyeOpeningClamp(t *testing.T) {
	p := PulseResponse{Taps: []float64{1, 1, 1}, MainCursor: 1}
	if p.EyeOpening() != 0 {
		t.Error("fully closed eye should clamp to 0")
	}
	if (PulseResponse{Taps: []float64{0}, MainCursor: 0}).ISIRatio() != math.Inf(1) {
		t.Error("zero main cursor should be infinite ISI")
	}
	if (PulseResponse{MainCursor: -1}).Main() != 0 {
		t.Error("out-of-range cursor should be 0")
	}
}

func TestSolveGauss(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	m := [][]float64{{2, 1}, {1, 3}}
	v := []float64{5, 10}
	x, err := solveGauss(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v", x)
	}
	// Singular system.
	m = [][]float64{{1, 1}, {1, 1}}
	v = []float64{1, 2}
	if _, err := solveGauss(m, v); err == nil {
		t.Error("singular system accepted")
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Overdetermined but consistent: fit y = 2x.
	a := [][]float64{{1}, {2}, {3}}
	b := []float64{2, 4, 6}
	x, err := leastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 {
		t.Errorf("slope = %v", x[0])
	}
	if _, err := leastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
}

func TestFFEApplyEdge(t *testing.T) {
	p := PulseResponse{Taps: []float64{1}, MainCursor: 0}
	if got := (FFE{}).Apply(p); got.Main() != 1 {
		t.Error("empty FFE should pass through")
	}
}

func BenchmarkDesignFFE(b *testing.B) {
	p, err := SamplePulse(SinglePole(10e9), 53.125e9, 6, 14)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := DesignFFE(p, 15); err != nil {
			b.Fatal(err)
		}
	}
}
