// Package power models the electrical power of every link technology the
// paper compares: passive copper (DAC), VCSEL-based multimode optics (AOC),
// single-mode DSP optics (DR/FR), linear-drive pluggable optics (LPO),
// co-packaged optics (CPO), and Mosaic's wide-and-slow microLED modules.
//
// Budgets are component-level so the power-breakdown experiment (E2) can
// show *where* the 69% reduction comes from: eliminating the DSP, the laser
// bias, and the high-speed analog front ends — not from better versions of
// them.
//
// Figures are parameterised from public transceiver data (OIF/IEEE
// presentations, module datasheets) for the 800G generation and scaled by
// lane count for other rates. They are estimates; the experiments depend on
// the ratios, which are robust.
package power

import (
	"fmt"
	"sort"
)

// Tech identifies a link technology.
type Tech int

// The compared technologies.
const (
	DAC    Tech = iota // passive copper twinax
	AOC                // VCSEL multimode active optical cable
	DR                 // single-mode EML + DSP pluggable (DR/FR class)
	LPO                // linear-drive pluggable optics (no DSP)
	CPO                // co-packaged optics
	Mosaic             // wide-and-slow microLED over imaging fiber
)

// AllTechs lists every technology in comparison order.
func AllTechs() []Tech { return []Tech{DAC, AOC, DR, LPO, CPO, Mosaic} }

// String names the technology.
func (t Tech) String() string {
	switch t {
	case DAC:
		return "DAC"
	case AOC:
		return "AOC"
	case DR:
		return "DR"
	case LPO:
		return "LPO"
	case CPO:
		return "CPO"
	case Mosaic:
		return "Mosaic"
	default:
		return fmt.Sprintf("tech(%d)", int(t))
	}
}

// NominalReachM returns the usable reach in metres for the technology at
// 100G/lane-era rates (the axis of experiment E1).
func (t Tech) NominalReachM() float64 {
	switch t {
	case DAC:
		return 2
	case AOC:
		return 100
	case DR:
		return 500
	case LPO:
		return 500
	case CPO:
		return 500
	case Mosaic:
		return 50
	default:
		return 0
	}
}

// Component is one entry in a power budget.
type Component struct {
	Name   string
	PowerW float64
}

// Budget is a transceiver-pair power budget (both ends of one link) at a
// given aggregate rate.
type Budget struct {
	Tech       Tech
	RateBps    float64
	Components []Component
}

// TotalW sums the component powers.
func (b Budget) TotalW() float64 {
	var sum float64
	for _, c := range b.Components {
		sum += c.PowerW
	}
	return sum
}

// PJPerBit returns the energy per transported bit in picojoules.
func (b Budget) PJPerBit() float64 {
	if b.RateBps <= 0 {
		return 0
	}
	return b.TotalW() / b.RateBps * 1e12
}

// Component returns the power of a named component (0 if absent).
func (b Budget) Component(name string) float64 {
	for _, c := range b.Components {
		if c.Name == name {
			return c.PowerW
		}
	}
	return 0
}

// SortedComponents returns components by descending power.
func (b Budget) SortedComponents() []Component {
	out := make([]Component, len(b.Components))
	copy(out, b.Components)
	sort.Slice(out, func(i, j int) bool { return out[i].PowerW > out[j].PowerW })
	return out
}

// SupportedRates lists the canonical aggregate rates (bit/s).
func SupportedRates() []float64 {
	return []float64{100e9, 200e9, 400e9, 800e9, 1.6e12}
}

// lanes returns the electrical lane configuration per canonical rate:
// count and per-lane rate.
func lanes(rateBps float64) (n int, perLane float64, pam4 bool, err error) {
	switch rateBps {
	case 100e9:
		return 4, 25e9, false, nil
	case 200e9:
		return 4, 50e9, true, nil
	case 400e9:
		return 4, 100e9, true, nil
	case 800e9:
		return 8, 100e9, true, nil
	case 1.6e12:
		return 8, 200e9, true, nil
	default:
		return 0, 0, false, fmt.Errorf("power: unsupported rate %g (use SupportedRates)", rateBps)
	}
}

// MosaicChannelRate is the per-channel line rate of the Mosaic design point.
const MosaicChannelRate = 2e9

// MosaicSpareFraction is the fraction of extra channels provisioned as
// spares in the canonical configurations.
const MosaicSpareFraction = 0.04

// MosaicChannels returns the channel count (incl. spares) for an aggregate
// rate at the nominal 2 Gbps per channel.
func MosaicChannels(rateBps float64) int {
	data := int(rateBps / MosaicChannelRate)
	spares := int(float64(data)*MosaicSpareFraction + 0.5)
	return data + spares
}

// PerBudget builds the component-level budget for one technology at one of
// the canonical aggregate rates. The budget covers both link ends (a
// transceiver pair), excluding the host switch/server serdes, which is
// identical across technologies (Mosaic's compatibility claim).
func PerBudget(t Tech, rateBps float64) (Budget, error) {
	n, perLane, pam4, err := lanes(rateBps)
	if err != nil {
		return Budget{}, err
	}
	fn := float64(n)
	scale := rateBps / 800e9 // misc components scale with aggregate rate

	b := Budget{Tech: t, RateBps: rateBps}
	add := func(name string, w float64) {
		if w > 0 {
			b.Components = append(b.Components, Component{name, w})
		}
	}

	// Per-lane building blocks (watts per lane per end, ×2 ends).
	var dspPerLane float64
	if pam4 {
		// PAM4 DSP incl. FFE/DFE + KP4 FEC: ~0.45 W per 100G lane per end.
		dspPerLane = 0.45 * perLane / 100e9
	} else {
		// NRZ-era CDR/retimer.
		dspPerLane = 0.15 * perLane / 25e9
	}

	switch t {
	case DAC:
		// Passive cable: no module electronics; only the connector/ID.
		add("module-misc", 0.05*scale*2)
	case AOC:
		add("dsp", dspPerLane*fn*2)
		add("laser-driver", 0.10*fn*2)
		add("laser-bias", 0.075*fn*2)
		add("tia-la", 0.16*fn*2)
		add("clocking", 0.20*scale*2)
		add("module-misc", 0.15*scale*2)
	case DR:
		add("dsp", dspPerLane*fn*2)
		add("modulator-driver", 0.15*fn*2)
		add("laser-bias", 0.22*fn*2)
		add("tia-la", 0.16*fn*2)
		add("clocking", 0.20*scale*2)
		add("module-misc", 0.15*scale*2)
	case LPO:
		// Linear drive: no DSP, beefier analog front ends.
		add("modulator-driver", 0.175*fn*2)
		add("laser-bias", 0.20*fn*2)
		add("tia-la", 0.225*fn*2)
		add("clocking", 0.15*scale*2)
		add("module-misc", 0.15*scale*2)
	case CPO:
		// Co-packaged: short host traces allow a cut-down DSP.
		add("dsp", 0.45*dspPerLane*fn*2)
		add("modulator-driver", 0.10*fn*2)
		add("laser-bias", 0.15*fn*2)
		add("tia-la", 0.125*fn*2)
		add("clocking", 0.125*scale*2)
		add("module-misc", 0.10*scale*2)
	case Mosaic:
		ch := float64(MosaicChannels(rateBps))
		// Per-channel analog is tiny: a CMOS LED driver (~2.2 mW incl. the
		// diode) and a slow TIA (~0.9 mW). No DSP, no laser bias, no CDR.
		add("led-driver-array", 2.2e-3*ch*2)
		add("tia-array", 0.9e-3*ch*2)
		// Gearbox digital: serdes-to-wide striping + framing + light FEC.
		// Logic area has a floor that stops scaling below ~320G.
		gscale := scale
		if gscale < 0.4 {
			gscale = 0.4
		}
		add("gearbox", 0.95*gscale*2)
		add("clocking", 0.20*scale*2)
		add("module-misc", 0.10*scale*2)
	default:
		return Budget{}, fmt.Errorf("power: unknown technology %v", t)
	}
	return b, nil
}

// Reduction returns the fractional power reduction of `t` vs `baseline` at
// the given rate, e.g. 0.69 for 69%.
func Reduction(t, baseline Tech, rateBps float64) (float64, error) {
	a, err := PerBudget(t, rateBps)
	if err != nil {
		return 0, err
	}
	b, err := PerBudget(baseline, rateBps)
	if err != nil {
		return 0, err
	}
	if b.TotalW() == 0 {
		return 0, fmt.Errorf("power: baseline %v has zero power", baseline)
	}
	return 1 - a.TotalW()/b.TotalW(), nil
}

// --- The wide-and-slow sweet spot (experiment E9) ---

// ChannelPowerW models the per-channel electronics power (driver + TIA +
// per-channel framing logic, one end) as a function of per-channel line
// rate. Three regimes:
//
//   - a fixed floor (bias, framing logic): ~1.2 mW;
//   - LED drive power growing ~quadratically with rate (the carrier
//     lifetime must shrink ∝ rate, which costs current density ∝ rate²);
//   - above ~5 Gbps the channel needs CDR and equalization — the
//     narrow-and-fast tax reappears, modelled as a per-channel DSP term.
func ChannelPowerW(rateBps float64) float64 {
	if rateBps <= 0 {
		return 0
	}
	const (
		floor = 1.2e-3  // W
		k     = 3.0e-22 // W per (bit/s)^2
	)
	p := floor + k*rateBps*rateBps
	if rateBps > 5e9 {
		// CDR + FFE kick in and scale with rate.
		p += 2.5e-3 * (rateBps - 5e9) / 1e9
	}
	return p
}

// EnergyPerBitPJ returns the per-channel energy per bit (pJ) at the given
// per-channel rate, including a fixed amortised share of the gearbox.
func EnergyPerBitPJ(rateBps float64) float64 {
	if rateBps <= 0 {
		return 0
	}
	const gearboxPJ = 2.75 // pJ/bit amortised gearbox+clocking share
	return ChannelPowerW(rateBps)/rateBps*1e12 + gearboxPJ
}

// SweetSpotRate finds the per-channel rate minimising EnergyPerBitPJ by
// golden-section search over [0.1, 30] Gbps.
func SweetSpotRate() float64 {
	lo, hi := 0.1e9, 30e9
	phi := 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	for i := 0; i < 200; i++ {
		if EnergyPerBitPJ(a) < EnergyPerBitPJ(b) {
			hi = b
			b = a
			a = hi - phi*(hi-lo)
		} else {
			lo = a
			a = b
			b = lo + phi*(hi-lo)
		}
	}
	return (lo + hi) / 2
}
