package power

import "testing"

func TestCostBasics(t *testing.T) {
	for _, tech := range AllTechs() {
		c, err := Cost(tech, 800e9, 1)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if c.TotalUSD() <= 0 || c.USDPerGbps() <= 0 {
			t.Errorf("%v: nonpositive cost", tech)
		}
	}
}

func TestCostValidation(t *testing.T) {
	if _, err := Cost(DR, 800e9, -1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := Cost(DR, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if (CostBreakdown{}).USDPerGbps() != 0 {
		t.Error("zero breakdown should be 0")
	}
}

func TestReachInfeasibleCost(t *testing.T) {
	if _, err := Cost(DAC, 800e9, 10); err == nil {
		t.Error("10 m copper should be unbuildable")
	}
	if _, err := Cost(Mosaic, 800e9, 60); err == nil {
		t.Error("60 m Mosaic exceeds reach")
	}
}

func TestCostOrderingInMosaicRange(t *testing.T) {
	// Inside 2 m, copper is unbeatable. From 3-50 m, Mosaic must be the
	// cheapest buildable option (that's the deployment pitch).
	tech, _, err := CheapestAt(800e9, 1)
	if err != nil || tech != DAC {
		t.Errorf("at 1 m cheapest = %v (%v), want DAC", tech, err)
	}
	for _, l := range []float64{3, 10, 30, 50} {
		tech, c, err := CheapestAt(800e9, l)
		if err != nil {
			t.Fatalf("at %v m: %v", l, err)
		}
		if tech != Mosaic {
			t.Errorf("at %v m cheapest = %v ($%.0f), want Mosaic", l, tech, c.TotalUSD())
		}
	}
	// Beyond 50 m only conventional optics remain.
	tech, _, err = CheapestAt(800e9, 100)
	if err != nil || tech == Mosaic || tech == DAC {
		t.Errorf("at 100 m cheapest = %v (%v)", tech, err)
	}
}

func TestCheapestAtNothingFits(t *testing.T) {
	if _, _, err := CheapestAt(800e9, 1e6); err == nil {
		t.Error("1000 km should fit nothing in this catalog")
	}
}

func TestCostScalesWithRate(t *testing.T) {
	c400, _ := Cost(Mosaic, 400e9, 10)
	c800, _ := Cost(Mosaic, 800e9, 10)
	if !(c400.ModulesUSD < c800.ModulesUSD) {
		t.Error("module cost should scale with rate")
	}
	if c400.CableUSD != c800.CableUSD {
		t.Error("cable cost should not depend on rate")
	}
}
