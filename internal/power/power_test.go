package power

import (
	"math"
	"testing"
)

func TestAllBudgetsConstruct(t *testing.T) {
	for _, tech := range AllTechs() {
		for _, rate := range SupportedRates() {
			b, err := PerBudget(tech, rate)
			if err != nil {
				t.Fatalf("%v @ %g: %v", tech, rate, err)
			}
			if b.TotalW() < 0 {
				t.Errorf("%v @ %g: negative power", tech, rate)
			}
			if b.PJPerBit() < 0 {
				t.Errorf("%v @ %g: negative energy", tech, rate)
			}
		}
	}
}

func TestUnsupportedRate(t *testing.T) {
	if _, err := PerBudget(DR, 123e9); err == nil {
		t.Error("odd rate accepted")
	}
}

func TestHeadline69PercentAt800G(t *testing.T) {
	// The abstract: "reducing power consumption by up to 69%".
	red, err := Reduction(Mosaic, DR, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	if red < 0.60 || red > 0.75 {
		t.Errorf("Mosaic vs DR reduction at 800G = %.1f%%, want ~69%%", red*100)
	}
}

func TestPowerOrderingAt800G(t *testing.T) {
	// DAC < Mosaic < CPO ~ LPO < AOC < DR: the trade-off Mosaic breaks is
	// that only DAC used to be below the optics cluster.
	get := func(tech Tech) float64 {
		b, err := PerBudget(tech, 800e9)
		if err != nil {
			t.Fatal(err)
		}
		return b.TotalW()
	}
	dac, mosaic, lpo, cpo, aoc, dr := get(DAC), get(Mosaic), get(LPO), get(CPO), get(AOC), get(DR)
	if !(dac < mosaic) {
		t.Errorf("DAC %v should be below Mosaic %v", dac, mosaic)
	}
	if !(mosaic < cpo && mosaic < lpo && mosaic < aoc && mosaic < dr) {
		t.Errorf("Mosaic %v should beat all optics (cpo %v lpo %v aoc %v dr %v)",
			mosaic, cpo, lpo, aoc, dr)
	}
	if !(lpo < dr && cpo < dr) {
		t.Errorf("LPO/CPO should beat DSP optics")
	}
}

func TestDSPDominatesDRBudget(t *testing.T) {
	b, err := PerBudget(DR, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	if b.Component("dsp") < 0.3*b.TotalW() {
		t.Errorf("DSP %.2f W should dominate the DR budget %.2f W", b.Component("dsp"), b.TotalW())
	}
	// Mosaic has neither DSP nor laser bias.
	m, _ := PerBudget(Mosaic, 800e9)
	if m.Component("dsp") != 0 || m.Component("laser-bias") != 0 {
		t.Error("Mosaic budget must not contain DSP or laser bias")
	}
}

func TestPowerScalesWithRate(t *testing.T) {
	for _, tech := range []Tech{AOC, DR, LPO, CPO, Mosaic} {
		prev := 0.0
		for _, rate := range SupportedRates() {
			b, err := PerBudget(tech, rate)
			if err != nil {
				t.Fatal(err)
			}
			if b.TotalW() < prev {
				t.Errorf("%v: power decreased from %v at %g", tech, prev, rate)
			}
			prev = b.TotalW()
		}
	}
}

func TestMosaicChannels(t *testing.T) {
	// 800G at 2G/channel: 400 data + 4% spares = 416.
	if got := MosaicChannels(800e9); got != 416 {
		t.Errorf("channels(800G) = %d, want 416", got)
	}
	if got := MosaicChannels(200e9); got != 104 {
		t.Errorf("channels(200G) = %d, want 104", got)
	}
}

func TestPJPerBitSanity(t *testing.T) {
	// 800G-era sanity: DR ~15-25 pJ/bit (pair), Mosaic ~5-8 pJ/bit.
	dr, _ := PerBudget(DR, 800e9)
	if pj := dr.PJPerBit(); pj < 12 || pj > 30 {
		t.Errorf("DR pJ/bit = %v, want ~20", pj)
	}
	m, _ := PerBudget(Mosaic, 800e9)
	if pj := m.PJPerBit(); pj < 3 || pj > 10 {
		t.Errorf("Mosaic pJ/bit = %v, want ~6", pj)
	}
	if (Budget{}).PJPerBit() != 0 {
		t.Error("zero-rate budget should have zero pJ/bit")
	}
}

func TestSortedComponents(t *testing.T) {
	b, _ := PerBudget(DR, 800e9)
	sorted := b.SortedComponents()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].PowerW > sorted[i-1].PowerW {
			t.Fatal("not sorted")
		}
	}
	if b.Component("no-such-component") != 0 {
		t.Error("missing component should be 0")
	}
}

func TestReductionErrors(t *testing.T) {
	if _, err := Reduction(Mosaic, DR, 5e9); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestReachOrdering(t *testing.T) {
	// The trade-off axis: copper reach << Mosaic reach << telecom optics.
	if !(DAC.NominalReachM() < Mosaic.NominalReachM() &&
		Mosaic.NominalReachM() < DR.NominalReachM()) {
		t.Error("reach ordering broken")
	}
	if Mosaic.NominalReachM() != 50 {
		t.Errorf("Mosaic reach = %v, want 50", Mosaic.NominalReachM())
	}
	if DAC.NominalReachM() != 2 {
		t.Errorf("DAC reach = %v, want 2", DAC.NominalReachM())
	}
}

func TestTechStrings(t *testing.T) {
	for _, tech := range AllTechs() {
		if tech.String() == "" {
			t.Error("empty tech name")
		}
	}
	if Tech(42).String() != "tech(42)" {
		t.Error("unknown tech formatting")
	}
	if Tech(42).NominalReachM() != 0 {
		t.Error("unknown tech reach should be 0")
	}
}

func TestChannelPowerShape(t *testing.T) {
	// Fixed floor at low rate.
	if p := ChannelPowerW(1e6); math.Abs(p-1.2e-3) > 1e-4 {
		t.Errorf("low-rate power %v, want ~1.2mW floor", p)
	}
	// Monotone in rate.
	prev := 0.0
	for r := 0.1e9; r < 30e9; r += 0.5e9 {
		p := ChannelPowerW(r)
		if p < prev {
			t.Fatalf("channel power not monotone at %v", r)
		}
		prev = p
	}
	if ChannelPowerW(0) != 0 {
		t.Error("zero rate should be 0")
	}
}

func TestSweetSpotNear2G(t *testing.T) {
	// The wide-and-slow thesis: the energy-per-bit minimum sits at a
	// couple of Gbps — far below the 50-100 Gbps of narrow-and-fast lanes.
	r := SweetSpotRate()
	if r < 1e9 || r > 4e9 {
		t.Errorf("sweet spot = %v bps, want ~2G", r)
	}
	// Energy at 2G must beat energy at 25G and at 100G by a wide margin.
	e2 := EnergyPerBitPJ(2e9)
	e25 := EnergyPerBitPJ(25e9)
	if e25 < 2*e2 {
		t.Errorf("25G/channel energy %v should be >2x the 2G energy %v", e25, e2)
	}
}

func TestEnergyPerBitEdge(t *testing.T) {
	if EnergyPerBitPJ(0) != 0 {
		t.Error("zero rate energy should be 0")
	}
}
