package power

import (
	"errors"
	"fmt"
)

// Cost model. The paper's economic argument: microLED arrays and imaging
// fiber come from display/endoscopy supply chains with enormous volume,
// while 100G-class lasers, modulators, and DSPs are boutique parts. These
// figures are order-of-magnitude estimates from public module pricing and
// bill-of-materials teardowns; the experiments use the ratios and the
// crossover shapes, not the absolute dollars.

// CostBreakdown itemises the cost of a deployed link (transceiver pair +
// cable/fiber of the given length).
type CostBreakdown struct {
	Tech         Tech
	RateBps      float64
	LengthM      float64
	ModulesUSD   float64 // both ends
	CableUSDPerM float64
	CableUSD     float64
}

// TotalUSD sums modules and cable.
func (c CostBreakdown) TotalUSD() float64 { return c.ModulesUSD + c.CableUSD }

// USDPerGbps normalises by rate.
func (c CostBreakdown) USDPerGbps() float64 {
	if c.RateBps <= 0 {
		return 0
	}
	return c.TotalUSD() / (c.RateBps / 1e9)
}

// modulePairUSD800 is the module-pair cost at 800G.
var modulePairUSD800 = map[Tech]float64{
	DAC:    90,   // connectors + shells (cable priced per metre)
	AOC:    1100, // includes its fiber pigtail electronics
	DR:     2600, // EMLs + DSP
	LPO:    1700,
	CPO:    1500,
	Mosaic: 520, // LED+PD arrays (display supply chain) + gearbox ASIC
}

// cableUSDPerM is the per-metre cable/fiber cost.
var cableUSDPerM = map[Tech]float64{
	DAC:    25,  // heavy twinax
	AOC:    0,   // priced into the module figure
	DR:     0.6, // SMF duplex
	LPO:    0.6,
	CPO:    0.6,
	Mosaic: 3.5, // multi-core imaging fiber (volume endoscopy process)
}

// Cost returns the deployed-link cost estimate. Only canonical rates are
// supported; other rates scale the module cost linearly (a coarse but
// stated assumption).
func Cost(t Tech, rateBps, lengthM float64) (CostBreakdown, error) {
	if lengthM < 0 {
		return CostBreakdown{}, errors.New("power: negative length")
	}
	if rateBps <= 0 {
		return CostBreakdown{}, errors.New("power: nonpositive rate")
	}
	base, ok := modulePairUSD800[t]
	if !ok {
		return CostBreakdown{}, fmt.Errorf("power: no cost data for %v", t)
	}
	perM := cableUSDPerM[t]
	// Reach feasibility: a link longer than the technology reaches costs
	// infinitely much in the sense that it cannot be built; flag by error.
	if lengthM > t.NominalReachM() {
		return CostBreakdown{}, fmt.Errorf("power: %v cannot span %.0f m (reach %.0f m)",
			t, lengthM, t.NominalReachM())
	}
	c := CostBreakdown{
		Tech:         t,
		RateBps:      rateBps,
		LengthM:      lengthM,
		ModulesUSD:   base * rateBps / 800e9,
		CableUSDPerM: perM,
	}
	c.CableUSD = perM * lengthM
	return c, nil
}

// CheapestAt returns the cheapest technology able to span the given length
// at the given rate, and its cost.
func CheapestAt(rateBps, lengthM float64) (Tech, CostBreakdown, error) {
	best := Tech(-1)
	var bestC CostBreakdown
	for _, t := range AllTechs() {
		c, err := Cost(t, rateBps, lengthM)
		if err != nil {
			continue
		}
		if best < 0 || c.TotalUSD() < bestC.TotalUSD() {
			best, bestC = t, c
		}
	}
	if best < 0 {
		return 0, CostBreakdown{}, fmt.Errorf("power: no technology spans %.0f m", lengthM)
	}
	return best, bestC, nil
}
