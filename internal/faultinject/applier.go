package faultinject

import (
	"math"

	"mosaic/internal/phy"
)

// Applier replays a Schedule against a link one superframe boundary at a
// time. It owns the in-flight state a schedule implies — aging ramps
// climbing log-linearly toward their target and burst episodes waiting to
// restore the pre-burst BER — so any superframe-driven harness (the soak
// runner here, the MAC session in internal/mac) injects faults with
// exactly the same semantics. Step is deterministic: the same schedule
// and call sequence always mutates the link identically.
type Applier struct {
	link   *phy.Link
	events []Event
	next   int
	ramps  []agingRamp
	bursts []burst

	// OnInject, when non-nil, is called for each event at the moment it
	// is applied (before the link is touched). Harnesses use it to log
	// and count injections.
	OnInject func(e Event)
}

// agingRamp tracks one in-flight KindAging event.
type agingRamp struct {
	channel  int
	startBER float64
	target   float64
	startSF  int
	duration int
}

// burst tracks one in-flight KindBurst event.
type burst struct {
	channel  int
	savedBER float64
	endSF    int
}

// NewApplier prepares a schedule for replay against link. The schedule
// must already be validated (events sorted by At).
func NewApplier(link *phy.Link, s Schedule) *Applier {
	return &Applier{link: link, events: s.Events}
}

// Step applies everything due at the boundary before superframe sf:
// events with At <= sf are injected in order, then aging ramps advance
// one step and expired bursts restore their saved BER. Call it once per
// superframe with a monotonically increasing sf.
func (a *Applier) Step(sf int) {
	link := a.link
	for a.next < len(a.events) && a.events[a.next].At <= sf {
		e := a.events[a.next]
		a.next++
		if a.OnInject != nil {
			a.OnInject(e)
		}
		switch e.Kind {
		case KindKill:
			link.KillChannel(e.Channel)
		case KindCorrelated:
			for c := e.Channel; c < e.Channel+e.Span; c++ {
				link.KillChannel(c)
			}
		case KindAging:
			start := link.ChannelBER(e.Channel)
			if start < 1e-9 {
				start = 1e-9
			}
			a.ramps = append(a.ramps, agingRamp{
				channel: e.Channel, startBER: start, target: e.BER,
				startSF: sf, duration: e.Duration,
			})
		case KindBurst:
			a.bursts = append(a.bursts, burst{
				channel: e.Channel, savedBER: link.ChannelBER(e.Channel),
				endSF: sf + e.Duration,
			})
			link.SetChannelBER(e.Channel, e.BER)
		}
	}

	// Aging ramps: log-linear BER climb toward the target, then hold.
	live := a.ramps[:0]
	for _, r := range a.ramps {
		prog := float64(sf-r.startSF+1) / float64(r.duration)
		if prog >= 1 {
			link.SetChannelBER(r.channel, r.target)
			continue // ramp complete; target holds
		}
		link.SetChannelBER(r.channel,
			r.startBER*math.Pow(r.target/r.startBER, prog))
		live = append(live, r)
	}
	a.ramps = live

	// Bursts: restore the saved BER once the episode ends.
	liveB := a.bursts[:0]
	for _, b := range a.bursts {
		if sf >= b.endSF {
			a.link.SetChannelBER(b.channel, b.savedBER)
			continue
		}
		liveB = append(liveB, b)
	}
	a.bursts = liveB
}
