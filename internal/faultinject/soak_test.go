package faultinject

import (
	"strings"
	"testing"

	"mosaic/internal/phy"
)

// soakLink builds a small fast link: 12 lanes + spares, tiny stripe units
// so the default traffic covers every lane, no FEC.
func soakLink(t *testing.T, spares int, seed int64) *phy.Link {
	t.Helper()
	return soakLinkFEC(t, spares, seed, phy.NoFEC{})
}

// soakLinkFEC is soakLink with a chosen FEC: the aging and burst tests
// need corrections (the monitor's BER estimate is corrections/bits, so a
// FEC-less link cannot see graceful drift, only hard loss).
func soakLinkFEC(t *testing.T, spares int, seed int64, fec phy.FEC) *phy.Link {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes:             12,
		Spares:            spares,
		FEC:               fec,
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func runSoak(t *testing.T, link *phy.Link, sched Schedule, superframes int, maintainEvery int) *Result {
	t.Helper()
	cfg := Config{
		Link:        link,
		Schedule:    sched,
		Superframes: superframes,
		FramesPerSF: 8,
		FrameLen:    120,
		Seed:        5,
	}
	if maintainEvery > 0 {
		cfg.MaintainEvery = maintainEvery
		cfg.Policy = phy.DefaultMaintenancePolicy()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hasLog(res *Result, substr string) bool {
	for _, line := range res.Log {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

func TestSoakCleanRun(t *testing.T) {
	res := runSoak(t, soakLink(t, 2, 1), Schedule{}, 20, 0)
	if res.FramesDelivered != res.FramesIn {
		t.Fatalf("clean run lost frames: %d/%d", res.FramesDelivered, res.FramesIn)
	}
	if res.Remaps != 0 || res.FirstDropSF != -1 || !res.SurvivedFullWidth {
		t.Fatalf("clean run saw faults: %s", res.Summary())
	}
	if len(res.Log) != 0 {
		t.Fatalf("clean run produced log entries: %v", res.Log)
	}
}

func TestSoakKillIsSparedInvisiblyAfterOneSF(t *testing.T) {
	sched := Schedule{Events: []Event{{At: 5, Kind: KindKill, Channel: 3}}}
	res := runSoak(t, soakLink(t, 2, 1), sched, 30, 0)
	if res.Remaps != 1 {
		t.Fatalf("remaps = %d, want 1\n%s", res.Remaps, strings.Join(res.Log, "\n"))
	}
	// The kill costs at most the superframe it happened in; afterwards the
	// spare carries the lane and the link runs clean at full width.
	if res.FirstDropSF != 5 {
		t.Errorf("first drop at sf %d, want 5", res.FirstDropSF)
	}
	if !res.SurvivedFullWidth || res.DegradedSF != -1 {
		t.Errorf("link degraded: %s", res.Summary())
	}
	if !hasLog(res, "remap") || !hasLog(res, "transition ch=3 healthy->failed") {
		t.Errorf("log missing remap/transition:\n%s", strings.Join(res.Log, "\n"))
	}
	// Only the one superframe dropped frames.
	if res.FramesIn-res.FramesDelivered-res.FramesCorrupted > 8 {
		t.Errorf("more than one superframe of loss: %s", res.Summary())
	}
}

func TestSoakCorrelatedExhaustsSparesAndDegrades(t *testing.T) {
	// 3 adjacent kills vs 2 spares: the neighborhood failure must exhaust
	// the pool and then degrade the link by one lane.
	sched := Schedule{Events: []Event{{At: 4, Kind: KindCorrelated, Channel: 5, Span: 3}}}
	res := runSoak(t, soakLink(t, 2, 1), sched, 30, 0)
	if res.Remaps != 3 {
		t.Fatalf("remaps = %d, want 3\n%s", res.Remaps, strings.Join(res.Log, "\n"))
	}
	if res.SpareExhaustSF < 0 || res.DegradedSF < 0 {
		t.Fatalf("expected exhaustion + degrade: %s", res.Summary())
	}
	if res.SurvivedFullWidth || res.LanesEnd != 11 || res.SparesEnd != 0 {
		t.Fatalf("lanes=%d spares=%d: %s", res.LanesEnd, res.SparesEnd, res.Summary())
	}
	if !hasLog(res, "spares-exhausted") || !hasLog(res, "degraded lanes=11/12") {
		t.Errorf("log missing milestones:\n%s", strings.Join(res.Log, "\n"))
	}
}

func TestSoakAgingTriggersProactiveMaintenance(t *testing.T) {
	// A slow BER ramp with maintenance enabled: the channel must be
	// replaced proactively (a maintain action, not a hard-failure remap)
	// with zero frame loss.
	sched := Schedule{Events: []Event{
		{At: 2, Kind: KindAging, Channel: 4, BER: 1e-4, Duration: 8},
	}}
	link := soakLinkFEC(t, 2, 1, phy.NewRSLite())
	res := runSoak(t, link, sched, 40, 5)
	if res.MaintenanceActions != 1 {
		t.Fatalf("maintenance actions = %d, want 1\n%s",
			res.MaintenanceActions, strings.Join(res.Log, "\n"))
	}
	if res.Remaps != 0 {
		t.Errorf("hard remaps = %d, want 0 (maintenance should win the race)", res.Remaps)
	}
	if res.FramesDelivered != res.FramesIn {
		t.Errorf("aging episode lost frames: %s", res.Summary())
	}
	if link.Mapper().LaneOf(4) != -1 {
		t.Error("aging channel still in service")
	}
	if !hasLog(res, "maintain") || !hasLog(res, "transition ch=4 healthy->degraded") {
		t.Errorf("log missing maintenance story:\n%s", strings.Join(res.Log, "\n"))
	}
}

func TestSoakBurstRecoversWithoutSparing(t *testing.T) {
	// A burst-noise episode without maintenance: corrections spike, the
	// channel may classify degraded, but nothing is spared and the BER
	// returns to the pre-burst value.
	sched := Schedule{Events: []Event{
		{At: 5, Kind: KindBurst, Channel: 7, BER: 5e-4, Duration: 4},
	}}
	link := soakLinkFEC(t, 2, 1, phy.NewRSLite())
	res := runSoak(t, link, sched, 20, 0)
	if res.Remaps != 0 {
		t.Fatalf("burst caused remaps:\n%s", strings.Join(res.Log, "\n"))
	}
	if link.ChannelBER(7) != 0 {
		t.Errorf("burst did not restore BER: %g", link.ChannelBER(7))
	}
	if res.Corrections == 0 && res.FramesDelivered == res.FramesIn {
		// NoFEC cannot correct, so the burst must at least damage frames.
		t.Error("burst had no observable effect")
	}
	if !hasLog(res, "inject sf=5 burst ch=7") {
		t.Errorf("log missing burst injection:\n%s", strings.Join(res.Log, "\n"))
	}
}

func TestSoakConfigValidation(t *testing.T) {
	link := soakLink(t, 1, 1)
	bad := []Config{
		{},
		{Link: link},
		{Link: link, Superframes: 10},
		{Link: link, Superframes: 10, FramesPerSF: 4, FrameLen: 2},
		{Link: link, Superframes: 10, FramesPerSF: 4, FrameLen: 64,
			Schedule: Schedule{Events: []Event{{At: -3, Kind: KindKill}}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSoakMaxLogCapsEntriesNotCounters(t *testing.T) {
	sched := Schedule{Events: []Event{{At: 1, Kind: KindCorrelated, Channel: 0, Span: 4}}}
	link := soakLink(t, 2, 1)
	res, err := Run(Config{
		Link: link, Schedule: sched, Superframes: 15,
		FramesPerSF: 8, FrameLen: 120, Seed: 5, MaxLog: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != 2 {
		t.Fatalf("log length %d, want cap 2", len(res.Log))
	}
	if res.Remaps != 4 {
		t.Fatalf("remaps = %d, want 4 despite capped log", res.Remaps)
	}
}
