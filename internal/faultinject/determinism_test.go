package faultinject

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"mosaic/internal/phy"
	"mosaic/internal/telemetry"
)

// The soak harness must be deterministic the same way the PHY pipeline is
// (see internal/phy/determinism_test.go): a fixed link seed, traffic
// seed, and fault schedule produce a byte-identical event log and summary
// at any pool worker count. The golden hash below pins the complete log
// of a scenario that exercises every event kind (kill, aging, burst,
// correlated), proactive maintenance, spare exhaustion, and degradation.

// goldenSoakSHA is sha256[:8] of the scenario's joined log + summary.
// Re-pinned when the BSC moved to the spec'd xoshiro256++ stream with
// geometric skip-sampling (the noise draw sequence changed, the channel
// model did not); the run was certified by a clean verify-deep pass and
// the scenario still exercises every event kind, proactive maintenance,
// spare exhaustion, and degradation — see the milestone spot-checks.
const goldenSoakSHA = "4a51bb45f333f4cb"

// runGoldenSoak executes the pinned scenario at the given worker count.
// reg may be nil; the golden hash must not depend on it (telemetry is
// write-only — TestSoakTelemetryPreservesGoldenLog pins exactly that).
func runGoldenSoak(t *testing.T, workers int, reg *telemetry.Registry) (string, *Result) {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes:             12,
		Spares:            3,
		FEC:               phy.NewRSLite(),
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              11,
		Workers:           workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{Events: []Event{
		{At: 3, Kind: KindKill, Channel: 2},
		{At: 8, Kind: KindAging, Channel: 6, BER: 1e-4, Duration: 10},
		{At: 14, Kind: KindBurst, Channel: 9, BER: 3e-4, Duration: 5},
		{At: 30, Kind: KindCorrelated, Channel: 10, Span: 3},
	}}
	res, err := Run(Config{
		Link:          link,
		Schedule:      sched,
		Superframes:   48,
		FramesPerSF:   8,
		FrameLen:      120,
		Seed:          21,
		Policy:        phy.DefaultMaintenancePolicy(),
		MaintainEvery: 6,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob := strings.Join(res.Log, "\n") + "\n" + res.Summary()
	h := sha256.Sum256([]byte(blob))
	return hex.EncodeToString(h[:8]), res
}

func TestSoakDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, runtime.NumCPU(), 0} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			sha, res := runGoldenSoak(t, w, nil)
			if sha != goldenSoakSHA {
				t.Errorf("event log hash = %s, want %s; log:\n%s",
					sha, goldenSoakSHA, strings.Join(res.Log, "\n"))
			}
			// Spot-check the milestones the hash pins, so a drift failure
			// reports something human-readable too.
			if res.Remaps != 4 || res.MaintenanceActions != 1 {
				t.Errorf("remaps=%d maintenance=%d, want 4/1", res.Remaps, res.MaintenanceActions)
			}
			if res.FirstDropSF != 3 || res.DegradedSF != 30 || res.SpareExhaustSF != 30 {
				t.Errorf("milestones first-drop=%d degraded=%d exhausted=%d, want 3/30/30",
					res.FirstDropSF, res.DegradedSF, res.SpareExhaustSF)
			}
		})
	}
}

// TestSoakRerunIdentical re-runs the same scenario twice on fresh links
// and requires identical logs — no hidden global state between runs.
func TestSoakRerunIdentical(t *testing.T) {
	a, _ := runGoldenSoak(t, 4, nil)
	b, _ := runGoldenSoak(t, 4, nil)
	if a != b {
		t.Fatalf("re-run diverged: %s vs %s", a, b)
	}
}
