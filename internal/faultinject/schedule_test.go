package faultinject

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{At: -1, Kind: KindKill},
		{Kind: KindKill, Channel: -2},
		{Kind: KindAging, BER: 0, Duration: 5},
		{Kind: KindAging, BER: 1e-4, Duration: 0},
		{Kind: KindBurst, BER: 0.9, Duration: 3},
		{Kind: KindCorrelated, Span: 0},
		{Kind: Kind("meteor")},
	}
	for _, e := range bad {
		if e.Validate() == nil {
			t.Errorf("event %+v should not validate", e)
		}
	}
	good := []Event{
		{Kind: KindKill, Channel: 3},
		{At: 7, Kind: KindAging, Channel: 1, BER: 1e-3, Duration: 10},
		{At: 2, Kind: KindBurst, Channel: 0, BER: 1e-4, Duration: 4},
		{At: 9, Kind: KindCorrelated, Channel: 8, Span: 4},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("event %+v: %v", e, err)
		}
	}
}

func TestScheduleOrderValidation(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: 5, Kind: KindKill, Channel: 1},
		{At: 2, Kind: KindKill, Channel: 2},
	}}
	if s.Validate() == nil {
		t.Fatal("out-of-order schedule validated")
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted schedule: %v", err)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s, err := DefaultScenario(20, 40)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 42
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"events":[{"at":0,"kind":"kill","channel":1,"laser":true}]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRandomKillsDeterministicAndSorted(t *testing.T) {
	a := RandomKills(rand.New(rand.NewSource(9)), 50, 0.01, 100)
	b := RandomKills(rand.New(rand.NewSource(9)), 50, 0.01, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("hazard 0.01 over 100 sf on 50 channels produced no kills")
	}
	for _, e := range a.Events {
		if e.Kind != KindKill || e.At >= 100 {
			t.Fatalf("unexpected event %v", e)
		}
	}
}

func TestRandomKillsRate(t *testing.T) {
	// With hazard p over horizon T the expected kill fraction is
	// 1-(1-p)^T; check the generator within a loose band.
	const channels, horizon = 4000, 50
	const p = 0.005
	s := RandomKills(rand.New(rand.NewSource(3)), channels, p, horizon)
	want := 1 - pow(1-p, horizon)
	got := float64(len(s.Events)) / channels
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("kill fraction %.4f, want ~%.4f", got, want)
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}
