package faultinject

import (
	"errors"
	"math"
	"math/rand"
)

// FleetAging is a deterministic continuous-aging schedule for a whole
// fleet of links: every link draws an independent per-epoch capacity
// decay rate from a seeded exponential, so at epoch e link l delivers
// exp(-decay[l]*e) of its nominal capacity. That is the fleet-level
// face of the microLED lumen-decay story: the population degrades as a
// smooth capacity haircut, and only links whose fraction crosses the
// sparing floor fail outright (the FlowSim semantics of a fraction
// reaching zero: reroute, possibly stall).
//
// Like Schedule, a FleetAging is pure data plus a seed — replaying the
// same seed reproduces the same fleet history bit for bit, which the
// E24 worker-count determinism golden depends on.
type FleetAging struct {
	Seed      int64   `json:"seed"`
	Links     int     `json:"links"`
	MeanDecay float64 `json:"mean_decay"` // mean fractional capacity loss per epoch
	Floor     float64 `json:"floor"`      // fraction below which the link is dead

	decays []float64
}

// NewFleetAging draws the per-link decay rates. MeanDecay is the mean
// of the exponential each link's rate is drawn from; Floor in (0, 1) is
// the sparing floor below which the link counts as failed.
func NewFleetAging(seed int64, links int, meanDecay, floor float64) (*FleetAging, error) {
	if links <= 0 {
		return nil, errors.New("faultinject: fleet aging needs links > 0")
	}
	if meanDecay <= 0 || meanDecay >= 1 {
		return nil, errors.New("faultinject: fleet aging needs 0 < meanDecay < 1")
	}
	if floor <= 0 || floor >= 1 {
		return nil, errors.New("faultinject: fleet aging needs 0 < floor < 1")
	}
	fa := &FleetAging{Seed: seed, Links: links, MeanDecay: meanDecay, Floor: floor}
	rng := rand.New(rand.NewSource(seed))
	fa.decays = make([]float64, links)
	for l := range fa.decays {
		fa.decays[l] = rng.ExpFloat64() * meanDecay
	}
	return fa, nil
}

// Decay returns link l's per-epoch decay rate.
func (fa *FleetAging) Decay(l int) float64 { return fa.decays[l] }

// Fraction returns the capacity fraction link l delivers at epoch e:
// exp(-decay*e), or exactly 0 once it falls below the sparing floor
// (the link is dead and stays dead — decay is monotone).
func (fa *FleetAging) Fraction(l, e int) float64 {
	f := math.Exp(-fa.decays[l] * float64(e))
	if f < fa.Floor {
		return 0
	}
	return f
}

// DeadAt returns the first epoch at which link l's fraction crosses the
// floor (is reported as 0), or -1 if it survives every epoch < horizon.
func (fa *FleetAging) DeadAt(l, horizon int) int {
	if fa.decays[l] <= 0 {
		return -1
	}
	// exp(-d*e) < floor  ⇔  e > ln(1/floor)/d. The closed form only
	// seeds the search: float rounding can land it one epoch off either
	// way (a floor of exactly exp(-d*e) makes epoch e alive — the
	// comparison is strict — while ceil may still return e), so walk to
	// the true first dead epoch in both directions.
	e := int(math.Ceil(math.Log(1/fa.Floor) / fa.decays[l]))
	for ; e > 0 && fa.Fraction(l, e-1) == 0; e-- {
	}
	for ; fa.Fraction(l, e) != 0; e++ {
	}
	if e >= horizon {
		return -1
	}
	return e
}

// MeanFraction returns the fleet-average delivered fraction at epoch e
// (dead links counting as 0) — the capacity-haircut curve E24 reports.
func (fa *FleetAging) MeanFraction(e int) float64 {
	var sum float64
	for l := 0; l < fa.Links; l++ {
		sum += fa.Fraction(l, e)
	}
	return sum / float64(fa.Links)
}
