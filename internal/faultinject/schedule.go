// Package faultinject is the deterministic fault-schedule engine for the
// Mosaic PHY: it scripts device-level events — hard transmitter kills,
// gradual BER aging, burst-noise episodes, and correlated multi-channel
// failures — and replays them against a running phy.Link, with every
// event taking effect at a superframe boundary, the way real hardware
// swaps lanes between alignment periods.
//
// A Schedule is pure data (JSON-serializable, diffable, replayable); the
// soak runner (soak.go) executes one against a link and records an event
// log of remaps, maintenance actions, health transitions, and loss
// milestones. The survival study (survival.go) runs many seeded random
// schedules and cross-validates the pipeline-level survival fraction
// against the closed-form k-of-n math in internal/reliability.
package faultinject

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
)

// Kind is the class of an injected fault.
type Kind string

// Fault kinds.
const (
	// KindKill turns a transmitter off permanently: the channel emits
	// noise from superframe At onward (phy.Link.KillChannel).
	KindKill Kind = "kill"
	// KindAging ramps a channel's BER log-linearly from its current value
	// up to BER over Duration superframes, then holds — the graceful LED
	// lumen-decay story the predictive-maintenance policy exists for.
	KindAging Kind = "aging"
	// KindBurst elevates a channel's BER to BER for Duration superframes,
	// then restores the pre-burst value — a transient interference or
	// connector-vibration episode.
	KindBurst Kind = "burst"
	// KindCorrelated kills Span adjacent physical channels starting at
	// Channel — a connector or fiber-core neighborhood failure taking out
	// spatially clustered channels at once.
	KindCorrelated Kind = "correlated"
)

// Event is one scripted fault. Events take effect at the boundary before
// superframe At (0-based): an event with At=0 is applied before any
// traffic flows.
type Event struct {
	At       int     `json:"at"`                 // superframe index
	Kind     Kind    `json:"kind"`               // fault class
	Channel  int     `json:"channel"`            // primary physical channel
	Span     int     `json:"span,omitempty"`     // correlated: channels affected (>=1)
	BER      float64 `json:"ber,omitempty"`      // aging target / burst level
	Duration int     `json:"duration,omitempty"` // aging ramp / burst length, superframes
}

// Validate checks one event's shape.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("faultinject: event at=%d before start", e.At)
	}
	if e.Channel < 0 {
		return fmt.Errorf("faultinject: negative channel %d", e.Channel)
	}
	switch e.Kind {
	case KindKill:
		return nil
	case KindAging, KindBurst:
		if e.BER <= 0 || e.BER > 0.5 {
			return fmt.Errorf("faultinject: %s needs 0 < ber <= 0.5, got %g", e.Kind, e.BER)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faultinject: %s needs duration > 0", e.Kind)
		}
		return nil
	case KindCorrelated:
		if e.Span < 1 {
			return fmt.Errorf("faultinject: correlated needs span >= 1, got %d", e.Span)
		}
		return nil
	default:
		return fmt.Errorf("faultinject: unknown kind %q", e.Kind)
	}
}

// String renders the event compactly (stable format: the soak event log
// hashes these strings in its determinism golden test).
func (e Event) String() string {
	switch e.Kind {
	case KindKill:
		return fmt.Sprintf("sf=%d kill ch=%d", e.At, e.Channel)
	case KindAging:
		return fmt.Sprintf("sf=%d aging ch=%d to=%.2e over=%d", e.At, e.Channel, e.BER, e.Duration)
	case KindBurst:
		return fmt.Sprintf("sf=%d burst ch=%d ber=%.2e for=%d", e.At, e.Channel, e.BER, e.Duration)
	case KindCorrelated:
		return fmt.Sprintf("sf=%d correlated ch=%d span=%d", e.At, e.Channel, e.Span)
	default:
		return fmt.Sprintf("sf=%d %s ch=%d", e.At, e.Kind, e.Channel)
	}
}

// Schedule is a validated, time-ordered fault script plus the seed that
// generated it (0 for hand-written schedules).
type Schedule struct {
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Validate checks every event and that the list is sorted by At (ties
// keep file order, which the runner preserves).
func (s Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if i > 0 && e.At < s.Events[i-1].At {
			return fmt.Errorf("faultinject: events out of order at index %d (at=%d after at=%d)",
				i, e.At, s.Events[i-1].At)
		}
	}
	return nil
}

// Sort orders events by At, keeping the original order of simultaneous
// events (stable), so generated schedules always validate.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At
	})
}

// Encode writes the schedule as indented JSON.
func (s Schedule) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode parses a JSON schedule and validates it.
func Decode(r io.Reader) (Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("faultinject: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// LoadFile reads a JSON schedule from disk.
func LoadFile(path string) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return Schedule{}, err
	}
	defer f.Close()
	return Decode(f)
}

// RandomKills samples one kill event per channel from independent
// geometric lifetimes with per-superframe hazard p, dropping channels
// that outlive the horizon. This is the discrete-time equivalent of the
// exponential lifetimes in reliability.MonteCarloSurvival: after T
// superframes a channel has failed with probability 1-(1-p)^T, so the
// pipeline-level survival of a soak over such a schedule is directly
// comparable to the k-of-n binomial closed form.
func RandomKills(rng *rand.Rand, channels int, hazardPerSF float64, horizon int) Schedule {
	s := Schedule{}
	if hazardPerSF <= 0 || hazardPerSF >= 1 || channels <= 0 || horizon <= 0 {
		return s
	}
	lnq := math.Log(1 - hazardPerSF)
	for c := 0; c < channels; c++ {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		// Geometric lifetime: death during superframe floor(ln(u)/ln(1-p)).
		life := int(math.Log(u) / lnq)
		if life < horizon {
			s.Events = append(s.Events, Event{At: life, Kind: KindKill, Channel: c})
		}
	}
	s.Sort()
	return s
}

// DefaultScenario builds a scripted showcase schedule for an n-channel
// link: an early hard kill, a slow-aging channel, a burst episode, and a
// correlated neighborhood failure in the final third. It exists so
// `linksoak` and `mosaicbench -soak` have a meaningful zero-config run.
func DefaultScenario(n, superframes int) (Schedule, error) {
	if n < 8 {
		return Schedule{}, errors.New("faultinject: default scenario needs >= 8 channels")
	}
	q := superframes / 4
	if q < 1 {
		return Schedule{}, errors.New("faultinject: default scenario needs >= 4 superframes")
	}
	s := Schedule{Events: []Event{
		{At: q / 2, Kind: KindKill, Channel: 2},
		{At: q, Kind: KindAging, Channel: n / 2, BER: 1e-3, Duration: q},
		{At: 2 * q, Kind: KindBurst, Channel: n / 3, BER: 2e-4, Duration: q / 2},
		{At: 3 * q, Kind: KindCorrelated, Channel: n - 4, Span: 3},
	}}
	s.Sort()
	return s, s.Validate()
}
