package faultinject

import (
	"errors"
	"math"
	"math/rand"

	"mosaic/internal/phy"
	"mosaic/internal/reliability"
)

// SurvivalConfig shapes a survival study: many independent soak trials of
// a lanes+spares link under seeded random channel deaths, scored against
// the closed-form k-of-n prediction.
type SurvivalConfig struct {
	Lanes  int
	Spares int
	// HazardPerSF is each channel's per-superframe death probability
	// (accelerated-aging time base: one superframe stands in for one
	// device-hour of a real mission).
	HazardPerSF float64
	Superframes int
	Trials      int
	Seed        int64

	// Traffic per superframe; the defaults (8 x 120 B) give every lane of
	// a <=20-lane link at least one stripe unit per superframe, which the
	// monitor needs to detect a dead channel. Zero values take defaults.
	FramesPerSF int
	FrameLen    int
	UnitLen     int // stripe unit; default 63 (small, so thin traffic covers all lanes)
	Workers     int // phy worker cap; results are identical at any value
}

// SurvivalResult compares the pipeline-measured survival fraction with
// the closed-form binomial k-of-n prediction.
type SurvivalResult struct {
	Trials   int
	Survived int // trials where the link never lost a lane

	SimSurvival float64 // Survived / Trials
	ClosedForm  float64 // reliability.SparedSystem binomial CDF
	Tolerance   float64 // 4-sigma Monte-Carlo band (plus a small floor)

	MeanRemaps    float64 // hard-failure remaps per trial
	DroppedTrials int     // trials that lost or corrupted at least one frame
	MeanFirstDrop float64 // mean first-drop superframe over DroppedTrials (-1 if none)
}

// Agrees reports whether the simulated survival matches the closed form
// within the Monte-Carlo tolerance band.
func (r SurvivalResult) Agrees() bool {
	return math.Abs(r.SimSurvival-r.ClosedForm) <= r.Tolerance
}

// ClosedFormSurvival returns the k-of-n binomial survival probability for
// n channels with per-superframe hazard p over T superframes, expressed
// through reliability.SparedSystem so the soak validates the exact code
// path experiment E7 uses: one superframe maps to one hour, so the
// per-channel rate is lambda = -ln(1-p) per hour.
func ClosedFormSurvival(lanes, spares int, hazardPerSF float64, superframes int) float64 {
	sys := reliability.SparedSystem{
		N:          lanes + spares,
		Spares:     spares,
		PerChannel: reliability.FIT(-math.Log(1-hazardPerSF) * 1e9),
	}
	return sys.SurvivalProb(float64(superframes))
}

// SurvivalStudy runs cfg.Trials independent soak trials, each over a
// fresh link and a fresh RandomKills schedule, and cross-validates the
// fraction that kept full lane width against the closed form. Trials are
// seeded individually from cfg.Seed, so the study is deterministic and
// trivially shardable.
func SurvivalStudy(cfg SurvivalConfig) (SurvivalResult, error) {
	if cfg.Lanes <= 0 || cfg.Spares < 0 || cfg.Trials <= 0 {
		return SurvivalResult{}, errors.New("faultinject: need lanes > 0, spares >= 0, trials > 0")
	}
	if cfg.HazardPerSF <= 0 || cfg.HazardPerSF >= 1 || cfg.Superframes <= 0 {
		return SurvivalResult{}, errors.New("faultinject: need 0 < hazard < 1 and superframes > 0")
	}
	framesPerSF := cfg.FramesPerSF
	if framesPerSF == 0 {
		framesPerSF = 8
	}
	frameLen := cfg.FrameLen
	if frameLen == 0 {
		frameLen = 120
	}
	unitLen := cfg.UnitLen
	if unitLen == 0 {
		unitLen = 63
	}

	res := SurvivalResult{Trials: cfg.Trials, MeanFirstDrop: -1}
	var remaps, firstDropSum int
	for trial := 0; trial < cfg.Trials; trial++ {
		trialSeed := cfg.Seed + int64(trial)*15485863
		link, err := phy.New(phy.Config{
			Lanes:             cfg.Lanes,
			Spares:            cfg.Spares,
			FEC:               phy.NoFEC{},
			UnitLen:           unitLen,
			PerChannelBitRate: 2e9,
			Seed:              trialSeed,
			Workers:           cfg.Workers,
		})
		if err != nil {
			return res, err
		}
		sched := RandomKills(rand.New(rand.NewSource(trialSeed+1)),
			cfg.Lanes+cfg.Spares, cfg.HazardPerSF, cfg.Superframes)
		// Kills land inside cfg.Superframes; the extra drain superframes
		// let a late death's detect->remap chain resolve (a promoted dead
		// spare costs one superframe per chain link), so "kept full
		// width" is exactly the k-of-n event the closed form predicts.
		r, err := Run(Config{
			Link:        link,
			Schedule:    sched,
			Superframes: cfg.Superframes + cfg.Spares + 2,
			FramesPerSF: framesPerSF,
			FrameLen:    frameLen,
			Seed:        trialSeed + 2,
			MaxLog:      1, // counters only; the logs of 100s of trials are noise
		})
		if err != nil {
			return res, err
		}
		if r.SurvivedFullWidth {
			res.Survived++
		}
		remaps += r.Remaps
		if r.FirstDropSF >= 0 {
			res.DroppedTrials++
			firstDropSum += r.FirstDropSF
		}
	}

	res.SimSurvival = float64(res.Survived) / float64(res.Trials)
	res.ClosedForm = ClosedFormSurvival(cfg.Lanes, cfg.Spares, cfg.HazardPerSF, cfg.Superframes)
	sigma := math.Sqrt(res.ClosedForm * (1 - res.ClosedForm) / float64(res.Trials))
	res.Tolerance = 4*sigma + 0.01
	res.MeanRemaps = float64(remaps) / float64(res.Trials)
	if res.DroppedTrials > 0 {
		res.MeanFirstDrop = float64(firstDropSum) / float64(res.DroppedTrials)
	}
	return res, nil
}
