package faultinject

import (
	"math"
	"testing"

	"mosaic/internal/reliability"
)

func TestClosedFormMatchesBinomial(t *testing.T) {
	// ClosedFormSurvival must be the exact binomial CDF: P(failures <= s)
	// with per-channel failure probability 1-(1-p)^T.
	const lanes, spares, T = 16, 2, 40
	const p = 0.002
	got := ClosedFormSurvival(lanes, spares, p, T)
	pf := 1 - math.Pow(1-p, T)
	want := 0.0
	n := lanes + spares
	for k := 0; k <= spares; k++ {
		want += choose(n, k) * math.Pow(pf, float64(k)) * math.Pow(1-pf, float64(n-k))
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("closed form %.12f, want %.12f", got, want)
	}
}

func choose(n, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

func TestSurvivalStudyAgreesWithClosedForm(t *testing.T) {
	// The pipeline-level survival fraction must match the k-of-n closed
	// form within the Monte-Carlo band. Small but real: 80 trials of a
	// 10+2 link, hazard tuned so ~35% of trials see >2 failures.
	res, err := SurvivalStudy(SurvivalConfig{
		Lanes:       10,
		Spares:      2,
		HazardPerSF: 0.004,
		Superframes: 30,
		Trials:      80,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agrees() {
		t.Fatalf("sim %.3f vs closed form %.3f exceeds tolerance %.3f",
			res.SimSurvival, res.ClosedForm, res.Tolerance)
	}
	if res.ClosedForm <= 0.3 || res.ClosedForm >= 0.99 {
		t.Fatalf("test operating point degenerate: closed form %.3f", res.ClosedForm)
	}
	if res.MeanRemaps <= 0 {
		t.Fatal("no remaps across the whole study; faults are not reaching the pipeline")
	}
	// Any trial that lost a lane must also have dropped frames (a death
	// with no spare left is visible traffic damage).
	if res.Survived < res.Trials && res.DroppedTrials == 0 {
		t.Fatal("trials degraded without ever dropping a frame")
	}
}

func TestSurvivalStudyDeterministic(t *testing.T) {
	cfg := SurvivalConfig{
		Lanes: 8, Spares: 1, HazardPerSF: 0.005, Superframes: 20,
		Trials: 25, Seed: 7,
	}
	a, err := SurvivalStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := SurvivalStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("worker count changed the study:\n%+v\n%+v", a, b)
	}
}

func TestSurvivalStudyValidation(t *testing.T) {
	bad := []SurvivalConfig{
		{},
		{Lanes: 8, Spares: 1, HazardPerSF: 0, Superframes: 10, Trials: 5},
		{Lanes: 8, Spares: 1, HazardPerSF: 1.5, Superframes: 10, Trials: 5},
		{Lanes: 0, Spares: 1, HazardPerSF: 0.01, Superframes: 10, Trials: 5},
		{Lanes: 8, Spares: 1, HazardPerSF: 0.01, Superframes: 10, Trials: 0},
	}
	for i, cfg := range bad {
		if _, err := SurvivalStudy(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestSurvivalZeroSparesMatchesSeries sanity-checks the degenerate case:
// with no spares the closed form collapses to the series-system survival
// (1-p)^(n*T)-ish, and the study must still agree.
func TestSurvivalZeroSparesMatchesSeries(t *testing.T) {
	res, err := SurvivalStudy(SurvivalConfig{
		Lanes: 8, Spares: 0, HazardPerSF: 0.001, Superframes: 25,
		Trials: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := reliability.SparedSystem{
		N: 8, Spares: 0,
		PerChannel: reliability.FIT(-math.Log(1-0.001) * 1e9),
	}.SurvivalProb(25)
	if math.Abs(res.ClosedForm-series) > 1e-12 {
		t.Fatalf("zero-spare closed form %.6f != series %.6f", res.ClosedForm, series)
	}
	if !res.Agrees() {
		t.Fatalf("sim %.3f vs closed form %.3f (tol %.3f)",
			res.SimSurvival, res.ClosedForm, res.Tolerance)
	}
}
