package faultinject

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mosaic/internal/phy"
	"mosaic/internal/telemetry"
)

// The telemetry contract for the soak runner: enabling a registry changes
// nothing observable (the golden event log stays byte-identical at any
// worker count), the registry's counters agree exactly with the Result,
// and scraping the registry while a soak runs is race-free.

func TestSoakTelemetryPreservesGoldenLog(t *testing.T) {
	for _, w := range []int{1, 4, runtime.NumCPU(), 0} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			sha, _ := runGoldenSoak(t, w, reg)
			if sha != goldenSoakSHA {
				t.Errorf("event log hash with telemetry = %s, want %s (telemetry must be write-only)",
					sha, goldenSoakSHA)
			}
		})
	}
}

func TestSoakMetricsAgreeWithResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, res := runGoldenSoak(t, 2, reg)
	snap := reg.Snapshot()

	counters := map[string]uint64{
		"mosaic_link_frames_in_total":                                    uint64(res.FramesIn),
		"mosaic_link_frames_delivered_total":                             uint64(res.FramesDelivered),
		"mosaic_link_frames_corrupted_total":                             uint64(res.FramesCorrupted),
		"mosaic_link_frames_lost_total":                                  uint64(res.FramesLost),
		"mosaic_link_units_lost_total":                                   uint64(res.UnitsLost),
		"mosaic_link_fec_corrections_total":                              uint64(res.Corrections),
		"mosaic_soak_remaps_total":                                       uint64(res.Remaps),
		"mosaic_soak_maintenance_actions_total":                          uint64(res.MaintenanceActions),
		"mosaic_soak_superframes_total":                                  uint64(res.Superframes),
		`mosaic_soak_injections_total{kind="kill"}`:                      1,
		`mosaic_soak_injections_total{kind="aging"}`:                     1,
		`mosaic_soak_injections_total{kind="burst"}`:                     1,
		`mosaic_soak_injections_total{kind="correlated"}`:                1,
		`mosaic_monitor_transitions_total{from="healthy",to="degraded"}`: res.Transitions.HealthyToDegraded,
		`mosaic_monitor_transitions_total{from="degraded",to="healthy"}`: res.Transitions.DegradedToHealthy,
		`mosaic_monitor_transitions_total{from="degraded",to="failed"}`:  res.Transitions.DegradedToFailed,
		`mosaic_monitor_transitions_total{from="healthy",to="failed"}`:   res.Transitions.HealthyToFailed,
	}
	for id, want := range counters {
		if got, ok := snap.Counters[id]; !ok || got != want {
			t.Errorf("counter %s = %d (present=%v), want %d", id, got, ok, want)
		}
	}
	gauges := map[string]float64{
		"mosaic_link_lanes_active":             float64(res.LanesEnd),
		"mosaic_link_spares_left":              float64(res.SparesEnd),
		"mosaic_link_superframes":              float64(res.Superframes),
		"mosaic_soak_first_drop_superframe":    float64(res.FirstDropSF),
		"mosaic_soak_degraded_superframe":      float64(res.DegradedSF),
		"mosaic_soak_spare_exhaust_superframe": float64(res.SpareExhaustSF),
	}
	for id, want := range gauges {
		if got, ok := snap.Gauges[id]; !ok || got != want {
			t.Errorf("gauge %s = %g (present=%v), want %g", id, got, ok, want)
		}
	}

	// Per-channel counters must sum to the link totals, and the killed
	// channel must expose its loss with an explicit no-BER-data marker
	// rather than a perfect-looking estimate.
	var chOK, chLost uint64
	for ch := 0; ch < 15; ch++ {
		chOK += snap.Counters[fmt.Sprintf(`mosaic_channel_frames_ok_total{channel="%d"}`, ch)]
		chLost += snap.Counters[fmt.Sprintf(`mosaic_channel_frames_lost_total{channel="%d"}`, ch)]
	}
	if chOK == 0 || chLost == 0 {
		t.Errorf("per-channel counters empty: ok=%d lost=%d", chOK, chLost)
	}
	killed := `mosaic_channel_frames_lost_total{channel="2"}` // KindKill at sf=3
	if snap.Counters[killed] == 0 {
		t.Errorf("killed channel shows no lost frames")
	}
	// Exposition renders and includes per-channel series.
	prom := reg.PrometheusString()
	for _, want := range []string{
		`mosaic_channel_ber_estimate{channel="2"}`,
		`mosaic_channel_state{channel="2"} 2`, // failed
		`mosaic_soak_remaps_total`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRegistryScrapeRaceUnderSoak hammers exposition reads against a
// running soak; it exists for the -race pass in make check, proving a
// live /metrics scrape cannot race the superframe loop.
func TestRegistryScrapeRaceUnderSoak(t *testing.T) {
	reg := telemetry.NewRegistry()
	link, err := phy.New(phy.Config{
		Lanes:             12,
		Spares:            3,
		FEC:               phy.NewRSLite(),
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              11,
		Workers:           0, // worker pool active: scrapes race the pool too, if they can
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{Events: []Event{
		{At: 2, Kind: KindKill, Channel: 1},
		{At: 5, Kind: KindAging, Channel: 6, BER: 1e-4, Duration: 10},
		{At: 9, Kind: KindBurst, Channel: 9, BER: 3e-4, Duration: 4},
	}}

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = reg.WritePrometheus(io.Discard)
					_ = reg.Snapshot()
				}
			}
		}()
	}

	_, err = Run(Config{
		Link:          link,
		Schedule:      sched,
		Superframes:   40,
		FramesPerSF:   6,
		FrameLen:      120,
		Seed:          21,
		Policy:        phy.DefaultMaintenancePolicy(),
		MaintainEvery: 5,
		Metrics:       reg,
	})
	close(done)
	scrapers.Wait()
	if err != nil {
		t.Fatal(err)
	}
}
