package faultinject

import "testing"

func TestFleetAgingDeterministicAndMonotone(t *testing.T) {
	a, err := NewFleetAging(42, 200, 0.01, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleetAging(42, 200, 0.01, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 200; l++ {
		if a.Decay(l) != b.Decay(l) {
			t.Fatalf("link %d: same seed drew different decays", l)
		}
		prev := 1.0
		for e := 0; e < 50; e++ {
			f := a.Fraction(l, e)
			if f != b.Fraction(l, e) {
				t.Fatalf("link %d epoch %d: fraction not reproducible", l, e)
			}
			if f < 0 || f > 1 {
				t.Fatalf("link %d epoch %d: fraction %v out of range", l, e, f)
			}
			if f > prev {
				t.Fatalf("link %d epoch %d: fraction rose %v -> %v", l, e, prev, f)
			}
			if f != 0 && f < 0.7 {
				t.Fatalf("link %d epoch %d: fraction %v below floor but not dead", l, e, f)
			}
			if f == 0 && prev != 0 && prev < 0.7 {
				t.Fatalf("link %d epoch %d: died from %v which was already below floor", l, e, prev)
			}
			prev = f
		}
	}
}

func TestFleetAgingDeadAt(t *testing.T) {
	a, err := NewFleetAging(7, 500, 0.02, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 40
	deaths := 0
	for l := 0; l < 500; l++ {
		d := a.DeadAt(l, horizon)
		if d < 0 {
			for e := 0; e < horizon; e++ {
				if a.Fraction(l, e) == 0 {
					t.Fatalf("link %d: DeadAt says alive but fraction 0 at epoch %d", l, e)
				}
			}
			continue
		}
		deaths++
		if a.Fraction(l, d) != 0 {
			t.Fatalf("link %d: DeadAt=%d but fraction %v", l, d, a.Fraction(l, d))
		}
		if d > 0 && a.Fraction(l, d-1) == 0 {
			t.Fatalf("link %d: dead before its DeadAt epoch %d", l, d)
		}
	}
	if deaths == 0 {
		t.Fatal("no deaths in 500 links over 40 epochs at 2%/epoch; scenario too weak")
	}
	if m := a.MeanFraction(horizon - 1); m <= 0 || m >= 1 {
		t.Fatalf("mean fraction %v out of (0,1)", m)
	}
}

func TestFleetAgingValidation(t *testing.T) {
	for _, c := range []struct {
		links        int
		decay, floor float64
	}{
		{0, 0.01, 0.7}, {10, 0, 0.7}, {10, 1.5, 0.7}, {10, 0.01, 0}, {10, 0.01, 1},
	} {
		if _, err := NewFleetAging(1, c.links, c.decay, c.floor); err == nil {
			t.Errorf("NewFleetAging(%d, %v, %v) accepted invalid config", c.links, c.decay, c.floor)
		}
	}
}
