package faultinject

import (
	"errors"
	"fmt"
	"math/rand"

	"mosaic/internal/phy"
	"mosaic/internal/telemetry"
)

// Config describes one soak run: a link under test, a fault schedule, the
// traffic pattern, and the maintenance cadence.
type Config struct {
	Link     *phy.Link // required; the runner drives and mutates it
	Schedule Schedule

	Superframes int // Exchange rounds to run
	FramesPerSF int // frames pushed per superframe
	FrameLen    int // bytes per frame
	Seed        int64

	// Policy is applied every MaintainEvery superframes when
	// MaintainEvery > 0; the zero policy disables proactive maintenance
	// (reactive sparing of monitor-failed channels always runs).
	Policy        phy.MaintenancePolicy
	MaintainEvery int

	// MaxLog caps the event log (0 = 100000). Injections and milestones
	// past the cap are still counted in the Result, just not logged.
	MaxLog int

	// Metrics, when non-nil, receives live telemetry for the run: the
	// full per-link/per-channel metric set (telemetry.LinkCollector,
	// refreshed at every superframe boundary) plus soak-level counters
	// (injections by kind, remaps, maintenance actions, milestone
	// superframes). Telemetry is strictly write-only from the soak's
	// point of view — enabling it cannot change the event log, which the
	// determinism tests pin byte-for-byte against the telemetry-off run.
	Metrics *telemetry.Registry
}

// Result is the outcome of a soak run: the event log plus aggregate
// counters and the loss/degradation milestones the reliability story
// cares about.
type Result struct {
	Log []string `json:"log"` // deterministic event log, in superframe order

	Superframes     int `json:"superframes"`
	FramesIn        int `json:"frames_in"`
	FramesDelivered int `json:"frames_delivered"`
	FramesCorrupted int `json:"frames_corrupted"`
	FramesLost      int `json:"frames_lost"`
	UnitsLost       int `json:"units_lost"`
	Corrections     int `json:"corrections"`

	Remaps             int                  `json:"remaps"`              // hard-failure remaps (spare consumed or degrade)
	MaintenanceActions int                  `json:"maintenance_actions"` // proactive replacements
	Transitions        phy.TransitionCounts `json:"transitions"`

	// Milestones, as superframe indexes (-1 = never happened).
	FirstDropSF    int `json:"first_drop_sf"`    // first superframe that lost or corrupted a frame
	DegradedSF     int `json:"degraded_sf"`      // first superframe the link lost a lane outright
	SpareExhaustSF int `json:"spare_exhaust_sf"` // first superframe the spare pool hit zero

	LanesStart int `json:"lanes_start"`
	LanesEnd   int `json:"lanes_end"`
	SparesEnd  int `json:"spares_end"`
	// SurvivedFullWidth is true when the link never lost a lane: every
	// failure was absorbed by a spare. This is the pipeline-level
	// equivalent of the k-of-n "at most s of n channels failed" event.
	SurvivedFullWidth bool `json:"survived_full_width"`
}

// Run executes the schedule against cfg.Link and returns the event log
// and aggregate statistics. The run is deterministic: a fixed link seed,
// traffic seed, and schedule produce a byte-identical Log at any
// phy.Config.Workers value, because injections happen at superframe
// boundaries and the pipeline folds lane observations serially.
func Run(cfg Config) (*Result, error) {
	if cfg.Link == nil {
		return nil, errors.New("faultinject: Config.Link is required")
	}
	if cfg.Superframes <= 0 {
		return nil, errors.New("faultinject: need Superframes > 0")
	}
	if cfg.FramesPerSF <= 0 || cfg.FrameLen < 3 {
		return nil, errors.New("faultinject: need FramesPerSF > 0 and FrameLen >= 3")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	maxLog := cfg.MaxLog
	if maxLog <= 0 {
		maxLog = 100000
	}

	link := cfg.Link
	res := &Result{
		FirstDropSF:    -1,
		DegradedSF:     -1,
		SpareExhaustSF: -1,
		LanesStart:     link.Mapper().NumLanes(),
	}
	logf := func(format string, args ...any) {
		if len(res.Log) < maxLog {
			res.Log = append(res.Log, fmt.Sprintf(format, args...))
		}
	}

	// Fixed traffic, regenerated per run from the seed (the same frames
	// every superframe, like the determinism goldens).
	rng := rand.New(rand.NewSource(cfg.Seed))
	frames := make([][]byte, cfg.FramesPerSF)
	for i := range frames {
		frames[i] = make([]byte, cfg.FrameLen)
		rng.Read(frames[i])
	}

	// Optional telemetry: the collector owns the link/channel metric set;
	// the soak adds its own event counters. All of it is fed from this
	// goroutine at superframe boundaries, never from a scrape.
	var (
		col         *telemetry.LinkCollector
		mInject     map[Kind]*telemetry.Counter
		mRemaps     *telemetry.Counter
		mMaintain   *telemetry.Counter
		mFirstDrop  *telemetry.Gauge
		mDegraded   *telemetry.Gauge
		mExhausted  *telemetry.Gauge
		mSuperframe *telemetry.Counter
	)
	if cfg.Metrics != nil {
		col = telemetry.NewLinkCollector(cfg.Metrics, link)
		cfg.Metrics.Help("mosaic_soak_injections_total", "fault events injected, by kind")
		cfg.Metrics.Help("mosaic_soak_first_drop_superframe", "superframe of the first lost/corrupted frame (-1 = never)")
		mInject = make(map[Kind]*telemetry.Counter, 4)
		for _, k := range []Kind{KindKill, KindAging, KindBurst, KindCorrelated} {
			mInject[k] = cfg.Metrics.Counter("mosaic_soak_injections_total", "kind", string(k))
		}
		mRemaps = cfg.Metrics.Counter("mosaic_soak_remaps_total")
		mMaintain = cfg.Metrics.Counter("mosaic_soak_maintenance_actions_total")
		mSuperframe = cfg.Metrics.Counter("mosaic_soak_superframes_total")
		mFirstDrop = cfg.Metrics.Gauge("mosaic_soak_first_drop_superframe")
		mDegraded = cfg.Metrics.Gauge("mosaic_soak_degraded_superframe")
		mExhausted = cfg.Metrics.Gauge("mosaic_soak_spare_exhaust_superframe")
		mFirstDrop.SetInt(-1)
		mDegraded.SetInt(-1)
		mExhausted.SetInt(-1)
	}

	// Health transitions land in the log as they happen; sf tracks the
	// current superframe for the hook.
	sf := 0
	base := link.Monitor().Transitions()
	link.Monitor().SetTransitionHook(func(physical int, from, to phy.ChannelState) {
		logf("sf=%d transition ch=%d %v->%v", sf, physical, from, to)
		if col != nil {
			col.OnTransition(physical, from, to)
		}
	})
	defer link.Monitor().SetTransitionHook(nil)

	// The Applier owns the schedule cursor plus aging-ramp and burst
	// state; the soak only observes injections (log + counters).
	applier := NewApplier(link, cfg.Schedule)
	applier.OnInject = func(e Event) {
		logf("inject %v", e)
		if ctr := mInject[e.Kind]; ctr != nil {
			ctr.Inc()
		}
	}
	handled := make(map[int]bool) // physicals already spared out

	spare := func(physical int) {
		if handled[physical] {
			return
		}
		handled[physical] = true
		ev := link.FailChannel(physical)
		res.Remaps++
		logf("sf=%d remap %v", sf, ev)
		if mRemaps != nil {
			mRemaps.Inc()
		}
	}

	for sf = 0; sf < cfg.Superframes; sf++ {
		// 1+2. Inject events due at this boundary, step aging ramps
		// (log-linear BER climb), and expire bursts.
		applier.Step(sf)

		// 3. One superframe of traffic.
		_, st, err := link.Exchange(frames)
		if err != nil {
			return res, fmt.Errorf("faultinject: superframe %d: %w", sf, err)
		}
		res.FramesIn += st.FramesIn
		res.FramesDelivered += st.FramesDelivered
		res.FramesCorrupted += st.FramesCorrupted
		res.FramesLost += st.FramesLost
		res.UnitsLost += st.UnitsLost
		res.Corrections += st.Corrections
		if res.FirstDropSF < 0 && st.FramesDelivered < st.FramesIn {
			res.FirstDropSF = sf
			logf("sf=%d first-drop delivered=%d/%d", sf, st.FramesDelivered, st.FramesIn)
			if mFirstDrop != nil {
				mFirstDrop.SetInt(int64(sf))
			}
		}
		if col != nil {
			col.ObserveExchange(st)
			mSuperframe.Inc()
		}

		// 4. Reactive sparing: monitor-failed channels are remapped at
		// the boundary, taking effect next superframe.
		for _, p := range link.Monitor().FailedChannels() {
			spare(p)
		}

		// 5. Periodic proactive maintenance.
		if cfg.MaintainEvery > 0 && (sf+1)%cfg.MaintainEvery == 0 {
			for _, a := range link.Maintain(cfg.Policy) {
				handled[a.Physical] = true
				res.MaintenanceActions++
				logf("sf=%d maintain %v", sf, a)
				if mMaintain != nil {
					mMaintain.Inc()
				}
			}
		}

		// 6. Milestones.
		if res.DegradedSF < 0 && link.Mapper().NumLanes() < res.LanesStart {
			res.DegradedSF = sf
			logf("sf=%d degraded lanes=%d/%d", sf, link.Mapper().NumLanes(), res.LanesStart)
			if mDegraded != nil {
				mDegraded.SetInt(int64(sf))
			}
		}
		if res.SpareExhaustSF < 0 && link.Mapper().SparesLeft() == 0 {
			res.SpareExhaustSF = sf
			logf("sf=%d spares-exhausted", sf)
			if mExhausted != nil {
				mExhausted.SetInt(int64(sf))
			}
		}

		// 7. Refresh gauges and per-channel counters at the boundary, so
		// a concurrent scrape always sees a whole-superframe view.
		if col != nil {
			col.Sync()
		}
	}

	res.Superframes = cfg.Superframes
	res.LanesEnd = link.Mapper().NumLanes()
	res.SparesEnd = link.Mapper().SparesLeft()
	res.SurvivedFullWidth = res.DegradedSF < 0
	tr := link.Monitor().Transitions()
	res.Transitions = phy.TransitionCounts{
		HealthyToDegraded: tr.HealthyToDegraded - base.HealthyToDegraded,
		DegradedToHealthy: tr.DegradedToHealthy - base.DegradedToHealthy,
		DegradedToFailed:  tr.DegradedToFailed - base.DegradedToFailed,
		HealthyToFailed:   tr.HealthyToFailed - base.HealthyToFailed,
	}
	return res, nil
}

// Summary renders the aggregate counters as a short multi-line report.
func (r *Result) Summary() string {
	mile := func(sf int) string {
		if sf < 0 {
			return "never"
		}
		return fmt.Sprintf("sf=%d", sf)
	}
	return fmt.Sprintf(
		"superframes=%d frames=%d/%d delivered (%d corrupted, %d lost), units_lost=%d, corrections=%d\n"+
			"remaps=%d maintenance=%d transitions{h>d=%d d>h=%d d>f=%d h>f=%d}\n"+
			"first-drop=%s degraded=%s spares-exhausted=%s lanes=%d->%d spares_left=%d survived_full_width=%v",
		r.Superframes, r.FramesDelivered, r.FramesIn, r.FramesCorrupted, r.FramesLost,
		r.UnitsLost, r.Corrections,
		r.Remaps, r.MaintenanceActions,
		r.Transitions.HealthyToDegraded, r.Transitions.DegradedToHealthy,
		r.Transitions.DegradedToFailed, r.Transitions.HealthyToFailed,
		mile(r.FirstDropSF), mile(r.DegradedSF), mile(r.SpareExhaustSF),
		r.LanesStart, r.LanesEnd, r.SparesEnd, r.SurvivedFullWidth)
}
