package faultinject

import (
	"math"
	"strings"
	"testing"
)

// Degenerate event shapes must be rejected at validation, not limp
// through the applier: a zero-duration burst would save-and-restore the
// same BER in one step (a no-op that still logs an injection), and a
// zero-duration aging ramp divides by zero in the progress computation.
func TestValidateDegenerateEvents(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		want string // substring of the error, "" for valid
	}{
		{"zero-duration burst", Event{Kind: KindBurst, BER: 1e-4, Duration: 0}, "duration > 0"},
		{"negative-duration burst", Event{Kind: KindBurst, BER: 1e-4, Duration: -3}, "duration > 0"},
		{"zero-duration aging", Event{Kind: KindAging, BER: 1e-3, Duration: 0}, "duration > 0"},
		{"burst at BER ceiling", Event{Kind: KindBurst, BER: 0.5, Duration: 2}, ""},
		{"burst above BER ceiling", Event{Kind: KindBurst, BER: 0.5000001, Duration: 2}, "ber <= 0.5"},
		{"zero-span correlated", Event{Kind: KindCorrelated, Span: 0}, "span >= 1"},
		{"single-channel correlated", Event{Kind: KindCorrelated, Span: 1}, ""},
	}
	for _, tc := range cases {
		err := tc.e.Validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: validated", tc.name)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}

	// The same rejection must hold at the JSON boundary.
	bad := `{"events":[{"at":0,"kind":"burst","channel":1,"ber":1e-4,"duration":0}]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Fatal("zero-duration burst decoded")
	}
}

// Overlapping correlated windows kill the union of their spans exactly
// once each: re-killing a dead channel is idempotent, channels outside
// both spans stay alive, and every event still reports via OnInject.
func TestOverlappingCorrelatedWindows(t *testing.T) {
	link := soakLink(t, 2, 1)
	sched := Schedule{Events: []Event{
		{At: 0, Kind: KindCorrelated, Channel: 2, Span: 4}, // kills 2..5
		{At: 0, Kind: KindCorrelated, Channel: 4, Span: 4}, // kills 4..7 (2 overlap)
		{At: 1, Kind: KindCorrelated, Channel: 5, Span: 3}, // kills 5..7, fully inside
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewApplier(link, sched)
	var injected int
	a.OnInject = func(Event) { injected++ }
	a.Step(0)
	a.Step(1)
	if injected != 3 {
		t.Fatalf("injected %d events, want all 3 despite overlap", injected)
	}
	for ch := 0; ch < 12; ch++ {
		dead := ch >= 2 && ch <= 7
		if link.ChannelDead(ch) != dead {
			t.Errorf("channel %d dead=%v, want %v", ch, !dead, dead)
		}
	}

	// A full soak over the overlapping windows must stay well-formed:
	// with 2 spares against 6 unique kills the link degrades, and the
	// remap log never names a channel twice for the same failure.
	res := runSoak(t, soakLink(t, 2, 1), sched, 20, 0)
	if res.Remaps != 6 {
		t.Fatalf("remaps = %d, want 6 (union of overlapping spans)", res.Remaps)
	}
}

// A capacity fraction exactly at the sparing floor is alive: the dead
// test is strictly below the floor, and DeadAt must agree — it names
// the first epoch reported as 0, even when the closed-form seed epoch
// lands on the still-alive boundary.
func TestFleetAgingFloorExactlyAtThreshold(t *testing.T) {
	ref, err := NewFleetAging(7, 4, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := ref.Decay(0)
	for e := 3; e <= 12; e++ {
		floor := math.Exp(-d * float64(e))
		fa, err := NewFleetAging(7, 4, 0.05, floor)
		if err != nil {
			t.Fatal(err)
		}
		if got := fa.Fraction(0, e); got != floor {
			t.Fatalf("e=%d: Fraction at exact floor = %v, want alive at %v", e, got, floor)
		}
		if got := fa.Fraction(0, e+1); got != 0 {
			t.Fatalf("e=%d: Fraction one epoch past the floor = %v, want 0", e, got)
		}
		dead := fa.DeadAt(0, 1000)
		if dead != e+1 {
			t.Fatalf("e=%d: DeadAt = %d, want %d (epoch at the floor is alive)", e, dead, e+1)
		}
		if fa.Fraction(0, dead) != 0 || fa.Fraction(0, dead-1) == 0 {
			t.Fatalf("e=%d: DeadAt=%d is not the first dead epoch", e, dead)
		}
	}
}

// DeadAt's two boundary contracts away from the exact-floor case: a
// horizon cutting the death epoch off reports survival, and the epoch
// before death is always alive.
func TestFleetAgingDeadAtHorizon(t *testing.T) {
	fa, err := NewFleetAging(3, 16, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < fa.Links; l++ {
		dead := fa.DeadAt(l, 1<<20)
		if dead < 0 {
			continue // effectively immortal at this horizon
		}
		if fa.Fraction(l, dead) != 0 {
			t.Fatalf("link %d: Fraction(DeadAt=%d) = %v, want 0", l, dead, fa.Fraction(l, dead))
		}
		if dead > 0 && fa.Fraction(l, dead-1) == 0 {
			t.Fatalf("link %d: dead before DeadAt=%d", l, dead)
		}
		if got := fa.DeadAt(l, dead); got != -1 {
			t.Fatalf("link %d: DeadAt with horizon=%d = %d, want -1 (death at the horizon is outside it)", l, dead, got)
		}
		if got := fa.DeadAt(l, dead+1); got != dead {
			t.Fatalf("link %d: DeadAt with horizon=%d = %d, want %d", l, dead+1, got, dead)
		}
	}
}
