// Package sim is a deterministic discrete-event simulation engine: a
// monotonic virtual clock, a binary-heap event queue with stable FIFO
// ordering for simultaneous events, and named deterministic RNG streams so
// that adding a new source of randomness never perturbs existing ones.
//
// It underpins the network-level experiments (flow simulation, failure
// injection) and the bit-true link pipeline's error processes.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Time is simulation time in seconds.
type Time float64

// Duration helpers.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// String renders the time with a convenient unit.
func (t Time) String() string {
	switch v := float64(t); {
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.6gs", v)
	case math.Abs(v) >= 1e-3:
		return fmt.Sprintf("%.6gms", v*1e3)
	case math.Abs(v) >= 1e-6:
		return fmt.Sprintf("%.6gus", v*1e6)
	case v == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.6gns", v*1e9)
	}
}

// ToStdDuration converts to a time.Duration (for printing).
func (t Time) ToStdDuration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// Event is a scheduled callback.
type event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among simultaneous events
	fn       func()
	canceled *bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. Not safe for
// concurrent use — determinism is the point.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	seed   int64
	rngs   map[string]*rand.Rand
	events uint64 // total events executed
}

// NewEngine returns an engine whose named RNG streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, rngs: make(map[string]*rand.Rand)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns how many events have run.
func (e *Engine) EventsExecuted() uint64 { return e.events }

// Canceler cancels a scheduled event when called. Calling it after the
// event has fired is a harmless no-op.
type Canceler func()

// Schedule runs fn at absolute time at. Scheduling in the past panics —
// that is always a model bug.
func (e *Engine) Schedule(at Time, fn func()) Canceler {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	canceled := new(bool)
	ev := &event{at: at, seq: e.seq, fn: fn, canceled: canceled}
	e.seq++
	heap.Push(&e.queue, ev)
	return func() { *canceled = true }
}

// After runs fn after delay d from now.
func (e *Engine) After(d Time, fn func()) Canceler {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if *ev.canceled {
			continue
		}
		e.now = ev.at
		e.events++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline; the clock then advances
// to the deadline (if it hasn't passed it already).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if *next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// RNG returns the deterministic random stream for the given name, creating
// it on first use. Streams with different names are independent; the same
// name always yields the same sequence for a given engine seed.
func (e *Engine) RNG(name string) *rand.Rand {
	if r, ok := e.rngs[name]; ok {
		return r
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	r := rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
	e.rngs[name] = r
	return r
}
