package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v", e.Now())
	}
	if e.EventsExecuted() != 3 {
		t.Errorf("events = %d", e.EventsExecuted())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.After(1, func() {
		hits = append(hits, e.Now())
		e.After(2, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	cancel := e.Schedule(1, func() { fired = true })
	cancel()
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Canceling after run is a no-op.
	cancel()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 10 {
		t.Errorf("now = %v, want 10 (deadline)", e.Now())
	}
}

func TestRunUntilWithCanceled(t *testing.T) {
	e := NewEngine(1)
	c := e.Schedule(1, func() { t.Error("canceled fired") })
	c()
	e.Schedule(2, func() {})
	e.RunUntil(5)
	if e.Now() != 5 {
		t.Errorf("now = %v", e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.RNG("flows").Int63() != b.RNG("flows").Int63() {
			t.Fatal("same seed, same stream name: sequences differ")
		}
	}
	// Different names are independent streams.
	c := NewEngine(42)
	d := NewEngine(42)
	_ = c.RNG("x").Int63()
	if c.RNG("y").Int63() != d.RNG("y").Int63() {
		t.Fatal("stream y perturbed by draws from stream x")
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a := NewEngine(1)
	b := NewEngine(2)
	same := 0
	for i := 0; i < 20; i++ {
		if a.RNG("s").Int63() == b.RNG("s").Int63() {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical streams")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{2.5, "2.5s"},
		{3e-3, "3ms"},
		{4e-6, "4us"},
		{5e-9, "5ns"},
		{0, "0s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestToStdDuration(t *testing.T) {
	if Millisecond.ToStdDuration().Milliseconds() != 1 {
		t.Error("conversion wrong")
	}
}

func TestPending(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("pending after run = %d", e.Pending())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, func() {})
		e.Step()
	}
}
