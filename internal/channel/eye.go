package channel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Waveform-level eye-diagram simulation. The closed-form engine in
// optical.go predicts BER from a single-pole ISI model; this file builds
// the actual eye by driving a random bit pattern through the same
// first-order channel, sampling the noisy waveform, and folding it on the
// unit interval. The two views of the channel agree (tested), and the eye
// renders as the classic figure a link-bringup lab would show.

// EyeConfig drives a waveform simulation.
type EyeConfig struct {
	BitRate      float64 // bit/s
	BandwidthHz  float64 // channel 3 dB bandwidth (single pole)
	HighLevel    float64 // signal level for a 1 (arbitrary units, e.g. A)
	LowLevel     float64 // signal level for a 0
	NoiseSigma   float64 // additive Gaussian noise, same units
	SamplesPerUI int     // horizontal resolution (default 32)
	NumBits      int     // pattern length (default 2000)
	Seed         int64
}

// Validate reports whether the configuration is usable.
func (c EyeConfig) Validate() error {
	switch {
	case c.BitRate <= 0:
		return errors.New("channel: eye needs a positive bit rate")
	case c.BandwidthHz <= 0:
		return errors.New("channel: eye needs a positive bandwidth")
	case c.HighLevel <= c.LowLevel:
		return errors.New("channel: high level must exceed low level")
	case c.NoiseSigma < 0:
		return errors.New("channel: negative noise")
	}
	return nil
}

// Eye is the folded two-UI eye: Samples[phase] collects the waveform
// values observed at that phase of the unit interval.
type Eye struct {
	SamplesPerUI int
	Samples      [][]float64 // len 2*SamplesPerUI (two UIs for display)
	cfg          EyeConfig
}

// SimulateEye runs the waveform simulation and folds the result.
func SimulateEye(cfg EyeConfig) (*Eye, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SamplesPerUI <= 0 {
		cfg.SamplesPerUI = 32
	}
	if cfg.NumBits <= 0 {
		cfg.NumBits = 2000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Single-pole lowpass: y += alpha * (x - y) per sample.
	dt := 1 / (cfg.BitRate * float64(cfg.SamplesPerUI))
	tau := 1 / (2 * math.Pi * cfg.BandwidthHz)
	alpha := dt / (tau + dt)

	eye := &Eye{
		SamplesPerUI: cfg.SamplesPerUI,
		Samples:      make([][]float64, 2*cfg.SamplesPerUI),
		cfg:          cfg,
	}
	for i := range eye.Samples {
		eye.Samples[i] = make([]float64, 0, cfg.NumBits/2)
	}

	y := cfg.LowLevel
	phase := 0
	for bit := 0; bit < cfg.NumBits; bit++ {
		x := cfg.LowLevel
		if rng.Intn(2) == 1 {
			x = cfg.HighLevel
		}
		for s := 0; s < cfg.SamplesPerUI; s++ {
			y += alpha * (x - y)
			if bit >= 8 { // let the filter settle before collecting
				v := y + rng.NormFloat64()*cfg.NoiseSigma
				eye.Samples[phase] = append(eye.Samples[phase], v)
			}
			phase = (phase + 1) % (2 * cfg.SamplesPerUI)
		}
	}
	return eye, nil
}

// OpeningAt returns the vertical eye opening at the given phase
// (0..2*SamplesPerUI-1): the gap between the lowest observed "high" and
// the highest observed "low", classified against the mid level. A closed
// eye returns a negative value.
func (e *Eye) OpeningAt(phase int) float64 {
	phase = ((phase % len(e.Samples)) + len(e.Samples)) % len(e.Samples)
	mid := (e.cfg.HighLevel + e.cfg.LowLevel) / 2
	minHigh := math.Inf(1)
	maxLow := math.Inf(-1)
	for _, v := range e.Samples[phase] {
		if v >= mid {
			if v < minHigh {
				minHigh = v
			}
		} else {
			if v > maxLow {
				maxLow = v
			}
		}
	}
	if math.IsInf(minHigh, 1) || math.IsInf(maxLow, -1) {
		return 0 // only one rail observed at this phase
	}
	return minHigh - maxLow
}

// BestOpening returns the widest vertical opening across phases, and the
// phase at which it occurs (the natural sampling point).
func (e *Eye) BestOpening() (opening float64, phase int) {
	best := math.Inf(-1)
	for p := range e.Samples {
		if len(e.Samples[p]) == 0 {
			continue
		}
		if o := e.OpeningAt(p); o > best {
			best, phase = o, p
		}
	}
	return best, phase
}

// QAtBestPhase estimates the Q-factor at the best sampling phase from the
// empirical level statistics: (mu1-mu0)/(sigma1+sigma0).
func (e *Eye) QAtBestPhase() float64 {
	_, phase := e.BestOpening()
	mid := (e.cfg.HighLevel + e.cfg.LowLevel) / 2
	var n1, n0 int
	var s1, s0, q1, q0 float64
	for _, v := range e.Samples[phase] {
		if v >= mid {
			n1++
			s1 += v
			q1 += v * v
		} else {
			n0++
			s0 += v
			q0 += v * v
		}
	}
	if n1 == 0 || n0 == 0 {
		return 0
	}
	mu1, mu0 := s1/float64(n1), s0/float64(n0)
	var sd1, sd0 float64
	if v := q1/float64(n1) - mu1*mu1; v > 0 {
		sd1 = math.Sqrt(v)
	}
	if v := q0/float64(n0) - mu0*mu0; v > 0 {
		sd0 = math.Sqrt(v)
	}
	if sd1+sd0 == 0 {
		return math.Inf(1)
	}
	return (mu1 - mu0) / (sd1 + sd0)
}

// Render draws the eye as ASCII art: rows are amplitude bins (top = high),
// columns are phase across two UIs, cell darkness is hit density.
func (e *Eye) Render(rows int) string {
	if rows <= 0 {
		rows = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, col := range e.Samples {
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if !(hi > lo) {
		return "(empty eye)\n"
	}
	grid := make([][]int, rows)
	for r := range grid {
		grid[r] = make([]int, len(e.Samples))
	}
	maxHit := 1
	for p, col := range e.Samples {
		for _, v := range col {
			r := int((hi - v) / (hi - lo) * float64(rows-1))
			grid[r][p]++
			if grid[r][p] > maxHit {
				maxHit = grid[r][p]
			}
		}
	}
	shades := []byte(" .:*#@")
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for p := 0; p < len(e.Samples); p++ {
			d := grid[r][p] * (len(shades) - 1) / maxHit
			b.WriteByte(shades[d])
		}
		b.WriteByte('\n')
	}
	opening, phase := e.BestOpening()
	fmt.Fprintf(&b, "opening %.3g at phase %d/%d, Q=%.2f\n",
		opening, phase, len(e.Samples), e.QAtBestPhase())
	return b.String()
}

// MeasureBER estimates the channel's bit error rate by direct Monte-Carlo
// counting: nbits random bits are pushed through the single-pole channel
// (sampled once per UI at the end of the interval — the exact zero-order-
// hold recursion), noise is added, and threshold decisions are compared
// with the transmitted bits. It cross-validates the closed-form Q-factor
// engine at operating points where errors are frequent enough to count.
func MeasureBER(cfg EyeConfig, nbits int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if nbits <= 0 {
		nbits = 1 << 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tau := 1 / (2 * math.Pi * cfg.BandwidthHz)
	a := math.Exp(-1 / (cfg.BitRate * tau)) // one-UI decay
	mid := (cfg.HighLevel + cfg.LowLevel) / 2

	y := cfg.LowLevel
	errs := 0
	for i := 0; i < nbits; i++ {
		x := cfg.LowLevel
		bit := rng.Intn(2) == 1
		if bit {
			x = cfg.HighLevel
		}
		y = a*y + (1-a)*x
		sample := y + rng.NormFloat64()*cfg.NoiseSigma
		if (sample >= mid) != bit {
			errs++
		}
	}
	return float64(errs) / float64(nbits), nil
}

// EyeFromOptical builds an EyeConfig matching an OpticalParams channel at
// its decision point: levels are the photocurrents and the noise is the
// receiver's RMS noise current at the average level.
func EyeFromOptical(p OpticalParams, seed int64) (EyeConfig, error) {
	if err := p.Validate(); err != nil {
		return EyeConfig{}, err
	}
	r := p.evaluate()
	er := math.Pow(10, p.ExtinctionRatioDB/10)
	iavg := r.Photocurrent
	i1 := 2 * iavg * er / (er + 1)
	i0 := 2 * iavg / (er + 1)
	baud := p.BitRate / float64(p.Modulation.BitsPerSymbol())
	nbw := 0.75 * baud
	if r.BandwidthHz < nbw {
		nbw = r.BandwidthHz
	}
	return EyeConfig{
		BitRate:     baud,
		BandwidthHz: r.BandwidthHz,
		HighLevel:   i1,
		LowLevel:    i0,
		NoiseSigma:  p.Rx.NoiseCurrentSigma(iavg, nbw),
		Seed:        seed,
	}, nil
}
