package channel

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/fiber"
	"mosaic/internal/photonics"
	"mosaic/internal/units"
)

func TestCopperCatalog(t *testing.T) {
	for _, c := range []Copper{Twinax26AWG(), Twinax30AWG()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := Copper{}
	if bad.Validate() == nil {
		t.Error("lossless copper accepted")
	}
	neg := Twinax26AWG()
	neg.SkinDBPerMRtGHz = -1
	if neg.Validate() == nil {
		t.Error("negative loss accepted")
	}
}

func TestCopperInsertionLossShape(t *testing.T) {
	c := Twinax26AWG()
	// Loss grows with both frequency and length.
	l1 := c.InsertionLossDB(10e9, 1)
	l2 := c.InsertionLossDB(20e9, 1)
	l3 := c.InsertionLossDB(10e9, 2)
	if !(l2 > l1 && l3 > l1) {
		t.Errorf("loss not monotone: %v %v %v", l1, l2, l3)
	}
	if got := c.InsertionLossDB(0, 5); got != c.FixedDB {
		t.Errorf("zero frequency should cost only fixed loss: %v", got)
	}
}

func TestCopperReachCollapsesWithRate(t *testing.T) {
	// The motivating trend: as per-lane rate rises, copper reach collapses.
	c := Twinax26AWG()
	const budget = 28.0
	r25 := c.MaxReach(NyquistHz(25e9, NRZ), budget)       // 25G NRZ (12.5 GHz)
	r50 := c.MaxReach(NyquistHz(56e9, PAM4), budget)      // 56G PAM4 (14 GHz)
	r100 := c.MaxReach(NyquistHz(106.25e9, PAM4), budget) // 100G PAM4
	r200 := c.MaxReach(NyquistHz(212.5e9, PAM4), budget)  // 200G PAM4
	if !(r25 > r50 && r50 > r100 && r100 > r200) {
		t.Errorf("reach should fall with rate: %v %v %v %v", r25, r50, r100, r200)
	}
	// 100G PAM4 DAC: the familiar ~2 m.
	if r100 < 1.2 || r100 > 3.5 {
		t.Errorf("112G PAM4 copper reach = %.2f m, want ~2 m", r100)
	}
	// 25G NRZ: several metres.
	if r25 < 3 {
		t.Errorf("25G copper reach = %.2f m, want > 3 m", r25)
	}
}

func TestCopperReachEdges(t *testing.T) {
	c := Twinax26AWG()
	if c.MaxReach(26e9, c.FixedDB) != 0 {
		t.Error("budget equal to fixed loss leaves nothing for cable")
	}
	if c.MaxReach(0, 30) != 0 {
		t.Error("zero Nyquist is not a link")
	}
}

func TestNyquist(t *testing.T) {
	if got := NyquistHz(100e9, PAM4); got != 25e9 {
		t.Errorf("Nyquist(100G PAM4) = %v, want 25G", got)
	}
	if got := NyquistHz(2e9, NRZ); got != 1e9 {
		t.Errorf("Nyquist(2G NRZ) = %v, want 1G", got)
	}
	if NyquistHz(-5, NRZ) != 0 {
		t.Error("negative rate should give 0")
	}
}

func TestModulation(t *testing.T) {
	if NRZ.BitsPerSymbol() != 1 || PAM4.BitsPerSymbol() != 2 {
		t.Error("bits per symbol wrong")
	}
	if NRZ.String() != "NRZ" || PAM4.String() != "PAM4" {
		t.Error("names wrong")
	}
}

// mosaicChannelParams builds the paper's per-channel operating point: a
// default microLED at nominal drive, imaging fiber of the given length, a
// Mosaic receiver, 2 Gbps NRZ.
func mosaicChannelParams(lengthM float64) OpticalParams {
	led := photonics.DefaultMicroLED()
	f := fiber.DefaultImagingFiber()
	i := led.NominalCurrent()
	return OpticalParams{
		TxPowerW:          led.OpticalPower(i) / 2, // average of OOK = half peak
		TxBandwidthHz:     led.Bandwidth(i),
		WavelengthM:       led.WavelengthM,
		RINdBHz:           led.RINdBHz,
		ExtinctionRatioDB: 12,
		PathLossDB:        f.CouplingLossDB(40e-6, 0)*2 + f.AttenuationDB(lengthM),
		MediumBWHz:        f.ModalBandwidth(lengthM),
		CrosstalkDB:       f.AdjacentCrosstalkDB(lengthM),
		Rx:                photonics.MosaicReceiver(),
		BitRate:           2e9,
		Modulation:        NRZ,
	}
}

func TestMosaicChannelAt2m(t *testing.T) {
	p := mosaicChannelParams(2)
	r, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r.BER > 1e-12 {
		t.Errorf("2m Mosaic channel BER = %.2e, want < 1e-12: %v", r.BER, r)
	}
	if r.MarginDB < 3 {
		t.Errorf("2m margin = %.1f dB, want healthy margin: %v", r.MarginDB, r)
	}
}

func TestMosaicChannelReach50m(t *testing.T) {
	// The headline claim: ~50 m reach at 2 Gbps/channel, >25x copper.
	p := mosaicChannelParams(0)
	f := fiber.DefaultImagingFiber()
	reach := p.MaxReach(1e-12, f.AttenDBPerM, func(l float64) float64 {
		return f.ModalBandwidth(l)
	})
	if reach < 30 || reach > 200 {
		t.Errorf("Mosaic reach = %.1f m, want ~50 m scale", reach)
	}
	copper := Twinax26AWG().MaxReach(NyquistHz(106.25e9, PAM4), 28)
	if reach < 25*copper {
		t.Errorf("Mosaic reach %.1f m not >25x copper %.1f m", reach, copper)
	}
}

func TestBERMonotoneInLength(t *testing.T) {
	prev := -1.0
	for _, l := range []float64{1, 5, 10, 20, 40, 60, 80, 120} {
		ber := mosaicChannelParams(l).BER()
		if ber < prev {
			t.Fatalf("BER should be non-decreasing in length at %vm", l)
		}
		prev = ber
	}
}

func TestBERMonotoneInPower(t *testing.T) {
	p := mosaicChannelParams(30)
	prop := func(raw float64) bool {
		extra := math.Abs(math.Mod(raw, 6))
		hi := p
		hi.TxPowerW = p.TxPowerW * units.FromDB(extra)
		return hi.BER() <= p.BER()*(1+1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateValidation(t *testing.T) {
	bad := mosaicChannelParams(2)
	bad.TxPowerW = 0
	if _, err := bad.Evaluate(); err == nil {
		t.Error("zero power accepted")
	}
	bad = mosaicChannelParams(2)
	bad.BitRate = -1
	if _, err := bad.Evaluate(); err == nil {
		t.Error("negative bit rate accepted")
	}
	bad = mosaicChannelParams(2)
	bad.ExtinctionRatioDB = 0
	if _, err := bad.Evaluate(); err == nil {
		t.Error("zero extinction ratio accepted")
	}
}

func TestEyeFactor(t *testing.T) {
	if got := eyeFactor(math.Inf(1), 2e9); got != 1 {
		t.Errorf("infinite bandwidth should have unit eye, got %v", got)
	}
	if got := eyeFactor(1e6, 2e9); got != 0 {
		t.Errorf("starved bandwidth should close the eye, got %v", got)
	}
	// Monotone in bandwidth.
	prev := 0.0
	for bw := 0.2e9; bw < 5e9; bw += 0.2e9 {
		cur := eyeFactor(bw, 2e9)
		if cur < prev {
			t.Fatalf("eye factor not monotone at %v", bw)
		}
		prev = cur
	}
	if eyeFactor(1e9, 0) != 0 {
		t.Error("zero baud should be 0")
	}
}

func TestBandwidth3dB(t *testing.T) {
	// Two equal poles: f/sqrt(2).
	got := bandwidth3dB(1e9, 1e9)
	if !units.ApproxEqual(got, 1e9/math.Sqrt2, 1e-9) {
		t.Errorf("two equal poles = %v", got)
	}
	// Infinite poles are transparent.
	if got := bandwidth3dB(2e9, math.Inf(1)); !units.ApproxEqual(got, 2e9, 1e-9) {
		t.Errorf("inf pole = %v", got)
	}
	if bandwidth3dB(0, 1e9) != 0 {
		t.Error("zero pole should kill the channel")
	}
	if !math.IsInf(bandwidth3dB(math.Inf(1)), 1) {
		t.Error("all-infinite should be infinite")
	}
}

func TestCrosstalkDegrades(t *testing.T) {
	clean := mosaicChannelParams(30)
	clean.CrosstalkDB = NoCrosstalk()
	dirty := mosaicChannelParams(30)
	dirty.CrosstalkDB = -15
	if !(dirty.BER() >= clean.BER()) {
		t.Error("crosstalk should not improve BER")
	}
	awful := mosaicChannelParams(30)
	awful.CrosstalkDB = -2
	if awful.BER() != 0.5 {
		t.Errorf("overwhelming crosstalk should close the eye, BER=%v", awful.BER())
	}
}

func TestPAM4NeedsMorePower(t *testing.T) {
	// PAM4 at the same bit rate has a ~3x smaller eye: its BER must be
	// worse than NRZ at identical optics.
	nrz := mosaicChannelParams(40)
	pam := mosaicChannelParams(40)
	pam.Modulation = PAM4
	if !(pam.BER() > nrz.BER()) {
		t.Errorf("PAM4 BER %v should exceed NRZ %v", pam.BER(), nrz.BER())
	}
}

func TestMarginDBSigns(t *testing.T) {
	good := mosaicChannelParams(2)
	if m := good.MarginDB(1e-12); m <= 0 {
		t.Errorf("short link should have positive margin, got %v", m)
	}
	bad := mosaicChannelParams(150)
	if m := bad.MarginDB(1e-12); m > 0 {
		t.Errorf("150 m link should have negative margin, got %v", m)
	}
}

func TestMaxReachEdges(t *testing.T) {
	p := mosaicChannelParams(0)
	if !math.IsInf(p.MaxReach(1e-12, 0, nil), 1) {
		t.Error("lossless medium should have unbounded reach")
	}
	hopeless := p
	hopeless.TxPowerW = 1e-12
	if r := hopeless.MaxReach(1e-12, 0.1, nil); r != 0 {
		t.Errorf("dark transmitter should have zero reach, got %v", r)
	}
}

func TestResultString(t *testing.T) {
	r, err := mosaicChannelParams(10).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); s == "" {
		t.Error("empty result string")
	}
}
