package channel

import (
	"math"
	"strings"
	"testing"
)

func cleanEyeConfig() EyeConfig {
	return EyeConfig{
		BitRate:     2e9,
		BandwidthHz: 1.5e9,
		HighLevel:   1.0,
		LowLevel:    0.0,
		NoiseSigma:  0.01,
		Seed:        1,
	}
}

func TestEyeValidate(t *testing.T) {
	bad := []func(*EyeConfig){
		func(c *EyeConfig) { c.BitRate = 0 },
		func(c *EyeConfig) { c.BandwidthHz = -1 },
		func(c *EyeConfig) { c.HighLevel = c.LowLevel },
		func(c *EyeConfig) { c.NoiseSigma = -0.1 },
	}
	for i, mutate := range bad {
		cfg := cleanEyeConfig()
		mutate(&cfg)
		if _, err := SimulateEye(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCleanEyeIsOpen(t *testing.T) {
	eye, err := SimulateEye(cleanEyeConfig())
	if err != nil {
		t.Fatal(err)
	}
	opening, _ := eye.BestOpening()
	// With BW/bitrate = 0.75 and tiny noise the eye should be well open:
	// more than half the full swing.
	if opening < 0.5 {
		t.Errorf("opening = %v, want > 0.5", opening)
	}
	if q := eye.QAtBestPhase(); q < 10 {
		t.Errorf("Q = %v, want comfortably high", q)
	}
}

func TestBandwidthStarvedEyeCloses(t *testing.T) {
	cfg := cleanEyeConfig()
	cfg.BandwidthHz = 0.15 * cfg.BitRate // heavy ISI
	eye, err := SimulateEye(cfg)
	if err != nil {
		t.Fatal(err)
	}
	open, _ := eye.BestOpening()
	ref, _ := SimulateEye(cleanEyeConfig())
	refOpen, _ := ref.BestOpening()
	if !(open < refOpen/2) {
		t.Errorf("starved eye %v should be far smaller than clean %v", open, refOpen)
	}
}

func TestNoiseShrinksOpening(t *testing.T) {
	quiet := cleanEyeConfig()
	loud := cleanEyeConfig()
	loud.NoiseSigma = 0.1
	e1, _ := SimulateEye(quiet)
	e2, _ := SimulateEye(loud)
	o1, _ := e1.BestOpening()
	o2, _ := e2.BestOpening()
	if !(o2 < o1) {
		t.Errorf("noisy eye %v should be smaller than quiet %v", o2, o1)
	}
}

func TestEyeQMatchesClosedForm(t *testing.T) {
	// The waveform Q at the best phase should land in the same ballpark as
	// the closed-form engine's Q for the equivalent channel. (The waveform
	// measures the worst observed pattern, the closed form an analytic
	// worst case; agreement within ~2.5x is the cross-check.)
	p := mosaicChannelParams(30)
	res, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := EyeFromOptical(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumBits = 6000
	eye, err := SimulateEye(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qWave := eye.QAtBestPhase()
	ratio := qWave / res.Q
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("waveform Q %v vs closed-form Q %v (ratio %v)", qWave, res.Q, ratio)
	}
}

func TestEyeFromOpticalValidation(t *testing.T) {
	bad := mosaicChannelParams(10)
	bad.TxPowerW = 0
	if _, err := EyeFromOptical(bad, 1); err == nil {
		t.Error("invalid optical params accepted")
	}
}

func TestEyeRender(t *testing.T) {
	eye, err := SimulateEye(cleanEyeConfig())
	if err != nil {
		t.Fatal(err)
	}
	art := eye.Render(12)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 13 { // 12 rows + summary
		t.Fatalf("render has %d lines", len(lines))
	}
	if !strings.Contains(lines[12], "opening") {
		t.Error("missing summary line")
	}
	// The top and bottom rails must be dense (heavy shades near the rails)
	// while the eye centre stays sparse.
	topDense := strings.ContainsAny(lines[0]+lines[1], "#@")
	botDense := strings.ContainsAny(lines[10]+lines[11], "#@")
	midSparse := !strings.ContainsAny(lines[6], "#@")
	if !topDense || !botDense {
		t.Errorf("rails not dense:\n%s", art)
	}
	if !midSparse {
		t.Errorf("eye centre not open:\n%s", art)
	}
	// Default rows.
	if eye.Render(0) == "" {
		t.Error("default render empty")
	}
}

func TestOpeningAtPhaseWraps(t *testing.T) {
	eye, err := SimulateEye(cleanEyeConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := len(eye.Samples)
	if eye.OpeningAt(0) != eye.OpeningAt(n) {
		t.Error("phase should wrap")
	}
	if eye.OpeningAt(-1) != eye.OpeningAt(n-1) {
		t.Error("negative phase should wrap")
	}
}

func TestEyeDeterministic(t *testing.T) {
	a, _ := SimulateEye(cleanEyeConfig())
	b, _ := SimulateEye(cleanEyeConfig())
	oa, pa := a.BestOpening()
	ob, pb := b.BestOpening()
	if oa != ob || pa != pb {
		t.Error("same seed produced different eyes")
	}
}

func TestTransitionPhaseSmallerThanCenter(t *testing.T) {
	eye, err := SimulateEye(cleanEyeConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, best := eye.BestOpening()
	// Half a UI away from the best sampling point the opening must be
	// smaller (that is where transitions cross).
	worse := eye.OpeningAt(best + eye.SamplesPerUI/2)
	bestO := eye.OpeningAt(best)
	if !(worse < bestO) {
		t.Errorf("transition phase opening %v >= center %v", worse, bestO)
	}
}

func TestEyeNaNFree(t *testing.T) {
	cfg := cleanEyeConfig()
	cfg.NoiseSigma = 0
	eye, err := SimulateEye(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range eye.Samples {
		for _, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite sample")
			}
		}
	}
}

func TestMeasureBERMatchesClosedForm(t *testing.T) {
	// A wideband channel (no ISI) with noise set for Q = 3: the measured
	// BER must land near 0.5·erfc(3/√2) ≈ 1.35e-3.
	cfg := EyeConfig{
		BitRate:     2e9,
		BandwidthHz: 50e9, // effectively no ISI
		HighLevel:   1,
		LowLevel:    0,
		NoiseSigma:  1.0 / 6.0, // swing/(2σ) = 3
		Seed:        5,
	}
	got, err := MeasureBER(cfg, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.35e-3
	if got < want/2 || got > want*2 {
		t.Errorf("measured BER %v vs analytic %v", got, want)
	}
}

func TestMeasureBERWithISI(t *testing.T) {
	// With real ISI the measured (average-pattern) BER must be at or below
	// the closed-form worst-case prediction, but not absurdly below it.
	cfg := EyeConfig{
		BitRate:     2e9,
		BandwidthHz: 1.0e9,
		HighLevel:   1,
		LowLevel:    0,
		NoiseSigma:  0.15, // worst-case Q ~3: errors frequent enough to count
		Seed:        6,
	}
	measured, err := MeasureBER(cfg, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-form worst case: eye factor 1-2exp(-2π·bw/baud), Q = eye/(2σ).
	eye := 1 - 2*math.Exp(-2*math.Pi*cfg.BandwidthHz/cfg.BitRate)
	q := eye / (2 * cfg.NoiseSigma)
	worst := 0.5 * math.Erfc(q/math.Sqrt2)
	if measured > worst*3 {
		t.Errorf("measured %v far above worst-case %v", measured, worst)
	}
	if measured < worst/1000 {
		t.Errorf("measured %v implausibly below worst-case %v", measured, worst)
	}
}

func TestMeasureBERMonotoneInNoise(t *testing.T) {
	base := EyeConfig{
		BitRate: 2e9, BandwidthHz: 2e9, HighLevel: 1, LowLevel: 0, Seed: 7,
	}
	prev := -1.0
	for _, sigma := range []float64{0.08, 0.12, 0.2, 0.3} {
		cfg := base
		cfg.NoiseSigma = sigma
		ber, err := MeasureBER(cfg, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		if ber < prev {
			t.Fatalf("BER not monotone in noise at sigma=%v", sigma)
		}
		prev = ber
	}
}

func TestMeasureBERValidation(t *testing.T) {
	bad := cleanEyeConfig()
	bad.BitRate = 0
	if _, err := MeasureBER(bad, 1000); err == nil {
		t.Error("invalid config accepted")
	}
	// Default nbits path.
	cfg := cleanEyeConfig()
	if _, err := MeasureBER(cfg, 0); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulateEye(b *testing.B) {
	cfg := cleanEyeConfig()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateEye(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
