// Package channel turns device and medium models into end-to-end link
// quality: insertion-loss-limited reach for copper, and a Gaussian-noise
// Q-factor/BER engine for optical channels (NRZ and PAM4).
package channel

import (
	"errors"
	"math"
)

// Copper models a passive twinax direct-attach cable (DAC) plus the host
// channel at each end. Its insertion loss follows the standard skin-effect
// + dielectric form: IL(f, L) = L·(ks·√f + kd·f) with f in GHz, plus fixed
// package/connector loss. Reach collapses as per-lane rates rise — the
// motivating trend of the paper.
type Copper struct {
	Name            string
	SkinDBPerMRtGHz float64 // ks: skin-effect loss, dB/(m·√GHz)
	DielDBPerMGHz   float64 // kd: dielectric loss, dB/(m·GHz)
	FixedDB         float64 // host PCB + connectors, both ends, dB
}

// Twinax26AWG returns a typical 26 AWG twinax DAC: about 8 dB/m at the
// 26.56 GHz Nyquist of a 106.25 Gb/s PAM4 lane, which with a ~28 dB channel
// budget yields the familiar ~2 m reach limit.
func Twinax26AWG() Copper {
	return Copper{
		Name:            "twinax-26AWG",
		SkinDBPerMRtGHz: 1.0,
		DielDBPerMGHz:   0.11,
		FixedDB:         12,
	}
}

// Twinax30AWG returns the thinner 30 AWG variant (lossier, used for short
// in-rack hops).
func Twinax30AWG() Copper {
	return Copper{
		Name:            "twinax-30AWG",
		SkinDBPerMRtGHz: 1.45,
		DielDBPerMGHz:   0.13,
		FixedDB:         12,
	}
}

// Validate reports whether the cable parameters are meaningful.
func (c Copper) Validate() error {
	if c.SkinDBPerMRtGHz < 0 || c.DielDBPerMGHz < 0 || c.FixedDB < 0 {
		return errors.New("channel: negative copper loss coefficient")
	}
	if c.SkinDBPerMRtGHz == 0 && c.DielDBPerMGHz == 0 {
		return errors.New("channel: lossless copper is not a cable")
	}
	return nil
}

// InsertionLossDB returns end-to-end insertion loss in dB at frequency f
// (Hz) for a cable of the given length (m).
func (c Copper) InsertionLossDB(fHz, lengthM float64) float64 {
	if fHz <= 0 || lengthM < 0 {
		return c.FixedDB
	}
	fGHz := fHz / 1e9
	return lengthM*(c.SkinDBPerMRtGHz*math.Sqrt(fGHz)+c.DielDBPerMGHz*fGHz) + c.FixedDB
}

// MaxReach returns the longest cable (m) whose insertion loss at the given
// Nyquist frequency stays within budgetDB. Returns 0 if even a zero-length
// cable exceeds the budget.
func (c Copper) MaxReach(nyquistHz, budgetDB float64) float64 {
	if nyquistHz <= 0 || budgetDB <= c.FixedDB {
		return 0
	}
	fGHz := nyquistHz / 1e9
	perM := c.SkinDBPerMRtGHz*math.Sqrt(fGHz) + c.DielDBPerMGHz*fGHz
	if perM <= 0 {
		return math.Inf(1)
	}
	return (budgetDB - c.FixedDB) / perM
}

// NyquistHz returns the Nyquist frequency for a bit rate under the given
// modulation: half the baud rate.
func NyquistHz(bitRate float64, mod Modulation) float64 {
	if bitRate <= 0 {
		return 0
	}
	return bitRate / float64(mod.BitsPerSymbol()) / 2
}
