package channel

import (
	"errors"
	"fmt"
	"math"

	"mosaic/internal/photonics"
	"mosaic/internal/units"
)

// Modulation selects the line modulation format.
type Modulation int

// Supported modulation formats.
const (
	NRZ  Modulation = iota // on-off keying, 1 bit/symbol
	PAM4                   // 4-level, 2 bits/symbol
)

// BitsPerSymbol returns the number of bits carried per symbol.
func (m Modulation) BitsPerSymbol() int {
	if m == PAM4 {
		return 2
	}
	return 1
}

// String names the format.
func (m Modulation) String() string {
	if m == PAM4 {
		return "PAM4"
	}
	return "NRZ"
}

// OpticalParams fully describes one optical channel for the BER engine.
// All the physics (device curves, fiber loss, coupling, misalignment) is
// reduced to these numbers by the caller; Evaluate then applies the
// standard Gaussian-noise link analysis.
type OpticalParams struct {
	// Transmitter.
	TxPowerW          float64 // average launched optical power (W)
	TxBandwidthHz     float64 // transmitter 3 dB bandwidth
	WavelengthM       float64
	RINdBHz           float64 // transmitter intensity noise
	ExtinctionRatioDB float64 // P1/P0 in dB

	// Path.
	PathLossDB float64 // fiber + coupling + connector loss, dB
	MediumBWHz float64 // dispersion-limited bandwidth of the medium
	// CrosstalkDB is the aggregate interferer power relative to the signal,
	// in dB (negative). Use math.Inf(-1), or leave zero-value semantics to
	// NoCrosstalk, for a clean channel.
	CrosstalkDB float64

	// Receiver.
	Rx photonics.Receiver

	// Signalling.
	BitRate    float64
	Modulation Modulation
}

// NoCrosstalk is the CrosstalkDB value for a channel with no interferers.
func NoCrosstalk() float64 { return math.Inf(-1) }

// Result reports the evaluated channel quality.
type Result struct {
	RxPowerW     float64 // received average optical power
	RxPowerDBm   float64
	Photocurrent float64 // average signal photocurrent (A)
	BandwidthHz  float64 // end-to-end 3 dB bandwidth (tx ∥ medium ∥ rx)
	EyeFactor    float64 // vertical eye opening factor from ISI, 0..1
	Q            float64 // Q-factor at the decision point
	BER          float64
	MarginDB     float64 // extra path loss tolerated at BER 1e-12
}

// Validate reports whether the parameters are meaningful.
func (p OpticalParams) Validate() error {
	switch {
	case p.TxPowerW <= 0:
		return errors.New("channel: transmit power must be positive")
	case p.TxBandwidthHz <= 0:
		return errors.New("channel: transmitter bandwidth must be positive")
	case p.WavelengthM <= 0:
		return errors.New("channel: wavelength must be positive")
	case p.BitRate <= 0:
		return errors.New("channel: bit rate must be positive")
	case p.ExtinctionRatioDB <= 0:
		return errors.New("channel: extinction ratio must be positive dB")
	case p.PathLossDB < 0:
		return errors.New("channel: path loss cannot be negative")
	}
	return p.Rx.Validate()
}

// bandwidth3dB combines cascaded single-pole bandwidths.
func bandwidth3dB(poles ...float64) float64 {
	inv := 0.0
	for _, f := range poles {
		if f <= 0 {
			return 0
		}
		if math.IsInf(f, 1) {
			continue
		}
		inv += 1 / (f * f)
	}
	if inv == 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(inv)
}

// eyeFactor returns the worst-case vertical eye opening (0..1) for a
// first-order channel of bandwidth bw signalling at the given baud rate:
// 1 - 2·exp(-2π·bw/baud), the classic isolated-transition eye closure.
func eyeFactor(bw, baud float64) float64 {
	if baud <= 0 {
		return 0
	}
	if math.IsInf(bw, 1) {
		return 1
	}
	k := 1 - 2*math.Exp(-2*math.Pi*bw/baud)
	if k < 0 {
		return 0
	}
	return k
}

// evaluate computes everything except the margin.
func (p OpticalParams) evaluate() Result {
	var r Result
	r.RxPowerW = p.TxPowerW * units.FromDB(-p.PathLossDB)
	r.RxPowerDBm = units.DBm(r.RxPowerW)

	// Average signal photocurrent (dark current contributes only noise).
	iavg := p.Rx.PD.Responsivity(p.WavelengthM) * r.RxPowerW
	r.Photocurrent = iavg

	medium := p.MediumBWHz
	if medium == 0 {
		medium = math.Inf(1)
	}
	r.BandwidthHz = bandwidth3dB(p.TxBandwidthHz, medium, p.Rx.Bandwidth())

	baud := p.BitRate / float64(p.Modulation.BitsPerSymbol())
	r.EyeFactor = eyeFactor(r.BandwidthHz, baud)
	if r.EyeFactor == 0 {
		r.BER = 0.5
		return r
	}

	// Level currents from average power and extinction ratio:
	// iavg = (i1+i0)/2, er = i1/i0.
	er := units.FromDB(p.ExtinctionRatioDB)
	i1 := 2 * iavg * er / (er + 1)
	i0 := 2 * iavg / (er + 1)
	swing := (i1 - i0) * r.EyeFactor

	// Crosstalk: deterministic worst-case amplitude subtraction. The
	// aggregate interferer photocurrent eats into the eye from both rails.
	if p.CrosstalkDB != 0 && !math.IsInf(p.CrosstalkDB, -1) {
		swing -= 2 * i1 * units.FromDB(p.CrosstalkDB)
		if swing <= 0 {
			r.BER = 0.5
			return r
		}
	}

	// Noise bandwidth: ~0.75 × baud for a matched-ish receiver, capped by
	// the physical bandwidth.
	nbw := 0.75 * baud
	if r.BandwidthHz < nbw {
		nbw = r.BandwidthHz
	}
	noise := func(level float64) float64 {
		n := p.Rx.Amp.InputNoiseCurrentSq(nbw) +
			units.ShotNoiseCurrentSq(level, nbw) +
			units.ShotNoiseCurrentSq(p.Rx.PD.DarkCurrentA, nbw) +
			units.RINNoiseCurrentSq(level, p.RINdBHz, nbw)
		return math.Sqrt(n)
	}

	switch p.Modulation {
	case PAM4:
		// Three eyes, each a third of the swing; the top eye sees the most
		// level noise. BER ≈ (3/4)·Q(top eye) with Gray coding.
		q := (swing / 3) / (noise(i1) + noise(i1*2/3+i0/3))
		r.Q = q
		r.BER = 0.75 * math.Erfc(q/math.Sqrt2) / 2
	default:
		q := swing / (noise(i1) + noise(i0))
		r.Q = q
		r.BER = units.BERFromQ(q)
	}
	return r
}

// Evaluate runs the link analysis and returns the channel quality,
// including the optical margin to a pre-FEC BER of 1e-12.
func (p OpticalParams) Evaluate() (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := p.evaluate()
	r.MarginDB = p.MarginDB(1e-12)
	return r, nil
}

// EvaluateBasic is Evaluate without the margin search: every field of the
// result except MarginDB (left zero) is identical to Evaluate's. The
// margin bisection re-runs the full link budget ~50 times per channel, so
// callers that only consume BER/Q/power — the bit-true PHY construction
// evaluating hundreds of channel instances — use this path.
func (p OpticalParams) EvaluateBasic() (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return p.evaluate(), nil
}

// BER returns just the bit error rate (0.5 on invalid parameters).
func (p OpticalParams) BER() float64 {
	if err := p.Validate(); err != nil {
		return 0.5
	}
	return p.evaluate().BER
}

// MarginDB returns how much additional path loss keeps BER <= target.
// Negative means the channel already misses target by that many dB of
// equivalent loss; -Inf means it fails even with 60 dB less loss.
func (p OpticalParams) MarginDB(target float64) float64 {
	berAt := func(extra float64) float64 {
		q := p
		q.PathLossDB = p.PathLossDB + extra
		if q.PathLossDB < 0 {
			q.PathLossDB = 0
		}
		return q.evaluate().BER
	}
	lo, hi := -60.0, 80.0
	switch {
	case berAt(lo) > target:
		return math.Inf(-1)
	case berAt(hi) <= target:
		return hi
	}
	// BER is monotone non-decreasing in path loss: bisect the crossing.
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			// The midpoint has converged onto an endpoint: every further
			// iteration would re-evaluate the same point and change
			// nothing. Exiting here is bit-identical to running out the
			// loop — it only skips no-op work (evaluate dominates the
			// whole-link analysis, so the saved iterations matter).
			break
		}
		if berAt(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MaxReach returns the longest path (m) keeping BER <= target given a
// per-metre loss (dB/m) and a function giving the medium bandwidth at each
// length. The fixed (length-independent) part of the loss must already be
// in p.PathLossDB; p.MediumBWHz is overridden by mediumBW.
func (p OpticalParams) MaxReach(target, lossPerM float64, mediumBW func(m float64) float64) float64 {
	if lossPerM <= 0 {
		return math.Inf(1)
	}
	berAt := func(l float64) float64 {
		q := p
		q.PathLossDB = p.PathLossDB + lossPerM*l
		if mediumBW != nil {
			q.MediumBWHz = mediumBW(l)
		}
		return q.evaluate().BER
	}
	if berAt(0) > target {
		return 0
	}
	lo, hi := 0.0, 1.0
	for berAt(hi) <= target {
		hi *= 2
		if hi > 1e6 {
			return hi
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break // converged to double precision; see MarginDB
		}
		if berAt(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// String summarises a result.
func (r Result) String() string {
	return fmt.Sprintf("rx=%.1fdBm bw=%s eye=%.2f Q=%.2f BER=%.2e margin=%.1fdB",
		r.RxPowerDBm, units.Bandwidth(r.BandwidthHz), r.EyeFactor, r.Q, r.BER, r.MarginDB)
}
