package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBRoundTrip(t *testing.T) {
	for _, ratio := range []float64{1e-6, 0.5, 1, 2, 10, 1234.5} {
		db := DB(ratio)
		if got := FromDB(db); !ApproxEqual(got, ratio, 1e-12) {
			t.Errorf("FromDB(DB(%v)) = %v", ratio, got)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	cases := []struct {
		ratio, db float64
	}{
		{1, 0},
		{10, 10},
		{100, 20},
		{0.1, -10},
		{2, 3.0102999566},
	}
	for _, c := range cases {
		if got := DB(c.ratio); math.Abs(got-c.db) > 1e-9 {
			t.Errorf("DB(%v) = %v, want %v", c.ratio, got, c.db)
		}
	}
}

func TestDBNonPositive(t *testing.T) {
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(-1) should be -Inf")
	}
}

func TestDBmKnownValues(t *testing.T) {
	if got := DBm(1e-3); math.Abs(got) > 1e-12 {
		t.Errorf("DBm(1mW) = %v, want 0", got)
	}
	if got := DBm(1); math.Abs(got-30) > 1e-9 {
		t.Errorf("DBm(1W) = %v, want 30", got)
	}
	if got := FromDBm(0); !ApproxEqual(got, 1e-3, 1e-12) {
		t.Errorf("FromDBm(0) = %v, want 1e-3", got)
	}
}

func TestBERFromQKnownValues(t *testing.T) {
	// Classic optical-communications anchor points.
	cases := []struct {
		q, ber, tol float64
	}{
		{0, 0.5, 1e-12},
		{6, 1e-9, 2e-10}, // Q=6 is the canonical 1e-9 point (9.87e-10)
		{7, 1.28e-12, 5e-13},
	}
	for _, c := range cases {
		if got := BERFromQ(c.q); math.Abs(got-c.ber) > c.tol {
			t.Errorf("BERFromQ(%v) = %v, want ~%v", c.q, got, c.ber)
		}
	}
}

func TestQFromBERInverse(t *testing.T) {
	for _, q := range []float64{0.5, 1, 3, 6, 7, 8, 10, 15} {
		ber := BERFromQ(q)
		if got := QFromBER(ber); math.Abs(got-q) > 1e-6 {
			t.Errorf("QFromBER(BERFromQ(%v)) = %v", q, got)
		}
	}
}

func TestQFromBEREdges(t *testing.T) {
	if !math.IsInf(QFromBER(0), 1) {
		t.Error("QFromBER(0) should be +Inf")
	}
	if got := QFromBER(0.5); got != 0 {
		t.Errorf("QFromBER(0.5) = %v, want 0", got)
	}
	if got := QFromBER(0.9); got != 0 {
		t.Errorf("QFromBER(0.9) = %v, want 0", got)
	}
}

func TestBERQMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 20))
		qb := math.Abs(math.Mod(b, 20))
		if qa > qb {
			qa, qb = qb, qa
		}
		return BERFromQ(qa) >= BERFromQ(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalNoise(t *testing.T) {
	// 50 ohm, 1 GHz, 300 K: 4kT*bw/r = 4*1.380649e-23*300*1e9/50.
	want := 4 * Boltzmann * 300 * 1e9 / 50
	if got := ThermalNoiseCurrentSq(50, 1e9, 300); !ApproxEqual(got, want, 1e-12) {
		t.Errorf("thermal noise = %v, want %v", got, want)
	}
	if ThermalNoiseCurrentSq(0, 1e9, 300) != 0 {
		t.Error("zero resistance should give zero noise (guard)")
	}
	if ThermalNoiseCurrentSq(50, -1, 300) != 0 {
		t.Error("negative bandwidth should give zero noise")
	}
}

func TestShotNoise(t *testing.T) {
	want := 2 * ElectronCharge * 1e-3 * 1e9
	if got := ShotNoiseCurrentSq(1e-3, 1e9); !ApproxEqual(got, want, 1e-12) {
		t.Errorf("shot noise = %v, want %v", got, want)
	}
	if ShotNoiseCurrentSq(-1e-3, 1e9) != 0 {
		t.Error("negative current should give zero noise")
	}
}

func TestRINNoise(t *testing.T) {
	// RIN -130 dB/Hz, 1 mA, 1 GHz: 1e-13 * 1e-6 * 1e9 = 1e-10.
	if got := RINNoiseCurrentSq(1e-3, -130, 1e9); !ApproxEqual(got, 1e-10, 1e-9) {
		t.Errorf("RIN noise = %v, want 1e-10", got)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(0, 10, 0.5) != 5 || Lerp(2, 2, 0.7) != 2 {
		t.Error("Lerp misbehaves")
	}
}

func TestWavelengthFreq(t *testing.T) {
	// 850 nm -> ~352.7 THz.
	f := WavelengthToFreq(850e-9)
	if !ApproxEqual(f, 3.527e14, 1e-3) {
		t.Errorf("freq(850nm) = %v", f)
	}
	e := PhotonEnergy(850e-9)
	if !ApproxEqual(e, 2.337e-19, 1e-3) {
		t.Errorf("photon energy(850nm) = %v", e)
	}
}

func TestFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Bandwidth(3.5e9).String(), "3.5GHz"},
		{Bandwidth(250e6).String(), "250MHz"},
		{DataRate(800e9).String(), "800Gbps"},
		{DataRate(1.6e12).String(), "1.6Tbps"},
		{Power(13.2).String(), "13.2W"},
		{Power(0.85).String(), "850mW"},
		{Power(0).String(), "0W"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("format: got %q want %q", c.got, c.want)
		}
	}
}

func TestEnergyPerBit(t *testing.T) {
	// 16 W at 800 Gbps = 20 pJ/bit.
	if got := EnergyPerBit(16, 800e9); !ApproxEqual(got, 20, 1e-12) {
		t.Errorf("EnergyPerBit = %v, want 20", got)
	}
	if !math.IsInf(EnergyPerBit(1, 0), 1) {
		t.Error("zero rate should be +Inf pJ/bit")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.05, 1e-3) {
		t.Error("should be approx equal")
	}
	if ApproxEqual(100, 101, 1e-3) {
		t.Error("should not be approx equal")
	}
	if !ApproxEqual(0, 1e-9, 1e-6) {
		t.Error("near-zero absolute tolerance failed")
	}
}
