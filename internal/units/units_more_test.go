package units

import (
	"math"
	"testing"
)

func TestBERFromQNegative(t *testing.T) {
	if BERFromQ(-3) != 0.5 {
		t.Error("negative Q should be coin-flip BER")
	}
}

func TestRINNoiseGuards(t *testing.T) {
	if RINNoiseCurrentSq(0, -130, 1e9) != 0 {
		t.Error("zero current should have zero RIN noise")
	}
	if RINNoiseCurrentSq(1e-3, -130, 0) != 0 {
		t.Error("zero bandwidth should have zero RIN noise")
	}
}

func TestBandwidthStringRanges(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5e12, "2.5THz"},
		{500, "500Hz"},
		{5e3, "5kHz"},
	}
	for _, c := range cases {
		if got := Bandwidth(c.v).String(); got != c.want {
			t.Errorf("Bandwidth(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDataRateStringRanges(t *testing.T) {
	if got := DataRate(5e6).String(); got != "5Mbps" {
		t.Errorf("got %q", got)
	}
	if got := DataRate(100).String(); got != "100bps" {
		t.Errorf("got %q", got)
	}
}

func TestPowerStringRanges(t *testing.T) {
	if got := Power(5e-6).String(); got != "5uW" {
		t.Errorf("got %q", got)
	}
	if got := Power(5e-10).String(); got != "0.5nW" {
		t.Errorf("got %q", got)
	}
	if got := Power(-2.5).String(); got != "-2.5W" {
		t.Errorf("got %q", got)
	}
}

func TestPhotonEnergyFreqConsistency(t *testing.T) {
	lambda := 1310e-9
	if got := PhotonEnergy(lambda); math.Abs(got-PlanckConst*WavelengthToFreq(lambda)) > 1e-30 {
		t.Error("photon energy inconsistent with frequency")
	}
}
