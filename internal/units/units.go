// Package units provides physical units, dB arithmetic, and the
// signal-integrity math (Q-factor, BER, noise spectral densities) shared by
// every analog model in the Mosaic reproduction.
//
// Conventions:
//   - Optical and electrical powers are carried in watts (linear) unless a
//     name says DB or DBm.
//   - Frequencies and rates are in hertz; data rates in bits per second.
//   - Lengths are in metres, currents in amperes, temperatures in kelvin.
package units

import (
	"fmt"
	"math"
)

// Physical constants (SI).
const (
	ElectronCharge = 1.602176634e-19 // C
	Boltzmann      = 1.380649e-23    // J/K
	PlanckConst    = 6.62607015e-34  // J*s
	LightSpeed     = 2.99792458e8    // m/s
	RoomTempK      = 300.0           // K, nominal operating temperature
)

// Common rate units, in bits per second.
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9
	Tbps = 1e12
)

// Common frequency units, in hertz.
const (
	KHz = 1e3
	MHz = 1e6
	GHz = 1e9
)

// DB converts a linear power ratio to decibels.
// Ratios <= 0 map to -Inf, matching the mathematical limit.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 {
	return DB(watts / 1e-3)
}

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 {
	return 1e-3 * FromDB(dbm)
}

// WavelengthToFreq converts a vacuum wavelength in metres to frequency in Hz.
func WavelengthToFreq(lambda float64) float64 {
	return LightSpeed / lambda
}

// PhotonEnergy returns the energy in joules of a photon at the given vacuum
// wavelength in metres.
func PhotonEnergy(lambda float64) float64 {
	return PlanckConst * WavelengthToFreq(lambda)
}

// QFromBER inverts BERFromQ: it returns the Q-factor that yields the given
// bit error rate under the Gaussian noise model. It is computed by bisection
// on the monotone map Q -> BER and is accurate to ~1e-12 in Q.
func QFromBER(ber float64) float64 {
	if ber <= 0 {
		return math.Inf(1)
	}
	if ber >= 0.5 {
		return 0
	}
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if BERFromQ(mid) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BERFromQ returns the NRZ bit error rate for a Q-factor under additive
// Gaussian noise: BER = 1/2 * erfc(Q/sqrt(2)).
func BERFromQ(q float64) float64 {
	if q < 0 {
		return 0.5
	}
	return 0.5 * math.Erfc(q/math.Sqrt2)
}

// ThermalNoiseCurrentSq returns the mean-square thermal (Johnson) noise
// current in A^2 for a resistance r (ohms) over bandwidth bw (Hz) at
// temperature t (K): 4kT*bw/r.
func ThermalNoiseCurrentSq(r, bw, t float64) float64 {
	if r <= 0 || bw <= 0 {
		return 0
	}
	return 4 * Boltzmann * t * bw / r
}

// ShotNoiseCurrentSq returns the mean-square shot noise current in A^2 for
// an average photocurrent i (A) over bandwidth bw (Hz): 2qI*bw.
func ShotNoiseCurrentSq(i, bw float64) float64 {
	if i <= 0 || bw <= 0 {
		return 0
	}
	return 2 * ElectronCharge * i * bw
}

// RINNoiseCurrentSq returns the mean-square intensity-noise current in A^2
// for an average photocurrent i (A), a relative intensity noise level
// rinDBHz (dB/Hz, e.g. -130), and bandwidth bw (Hz).
func RINNoiseCurrentSq(i, rinDBHz, bw float64) float64 {
	if i <= 0 || bw <= 0 {
		return 0
	}
	return FromDB(rinDBHz) * i * i * bw
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (or absolute tolerance rel when both are near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

// Bandwidth is a helper type for pretty-printing frequencies.
type Bandwidth float64

// String renders the bandwidth with an SI prefix, e.g. "3.5GHz".
func (b Bandwidth) String() string {
	v := float64(b)
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.3gTHz", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.3gGHz", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gMHz", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gkHz", v/1e3)
	default:
		return fmt.Sprintf("%.3gHz", v)
	}
}

// DataRate is a helper type for pretty-printing bit rates.
type DataRate float64

// String renders the rate with an SI prefix, e.g. "800Gbps".
func (r DataRate) String() string {
	v := float64(r)
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.4gTbps", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.4gGbps", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gMbps", v/1e6)
	default:
		return fmt.Sprintf("%.4gbps", v)
	}
}

// Power is a helper type for pretty-printing electrical powers.
type Power float64

// String renders the power with an SI prefix, e.g. "13.2W" or "850mW".
func (p Power) String() string {
	v := float64(p)
	av := math.Abs(v)
	switch {
	case av >= 1:
		return fmt.Sprintf("%.4gW", v)
	case av >= 1e-3:
		return fmt.Sprintf("%.4gmW", v*1e3)
	case av >= 1e-6:
		return fmt.Sprintf("%.4guW", v*1e6)
	case av == 0:
		return "0W"
	default:
		return fmt.Sprintf("%.4gnW", v*1e9)
	}
}

// EnergyPerBit returns the energy efficiency in pJ/bit for a power in watts
// at a data rate in bit/s.
func EnergyPerBit(powerW, rateBps float64) float64 {
	if rateBps <= 0 {
		return math.Inf(1)
	}
	return powerW / rateBps * 1e12
}
