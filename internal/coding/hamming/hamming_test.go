package hamming

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := rng.Uint64()
		got, res, err := Decode(Encode(d))
		if err != nil || res != Clean || got != d {
			t.Fatalf("clean decode of %#x: got %#x res=%v err=%v", d, got, res, err)
		}
	}
}

func TestCorrectsEverySingleDataBit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		d := rng.Uint64()
		cw := Encode(d)
		for bit := 0; bit < 64; bit++ {
			got, res, err := Decode(FlipDataBit(cw, bit))
			if err != nil || res != Corrected {
				t.Fatalf("bit %d: res=%v err=%v", bit, res, err)
			}
			if got != d {
				t.Fatalf("bit %d: data not corrected", bit)
			}
		}
	}
}

func TestCorrectsEveryCheckBit(t *testing.T) {
	d := uint64(0x0123456789abcdef)
	cw := Encode(d)
	for bit := 0; bit < 8; bit++ {
		got, res, err := Decode(FlipCheckBit(cw, bit))
		if err != nil || res != Corrected {
			t.Fatalf("check bit %d: res=%v err=%v", bit, res, err)
		}
		if got != d {
			t.Fatalf("check bit %d: data damaged", bit)
		}
	}
}

func TestDetectsDoubleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		d := rng.Uint64()
		cw := Encode(d)
		i := rng.Intn(64)
		j := rng.Intn(64)
		for j == i {
			j = rng.Intn(64)
		}
		bad := FlipDataBit(FlipDataBit(cw, i), j)
		_, res, err := Decode(bad)
		if err == nil || res != Detected {
			t.Fatalf("double error (%d,%d) not detected: res=%v err=%v", i, j, res, err)
		}
	}
}

func TestDetectsDataPlusCheckDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	misdecoded := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		d := rng.Uint64()
		cw := Encode(d)
		bad := FlipCheckBit(FlipDataBit(cw, rng.Intn(64)), rng.Intn(7))
		got, res, _ := Decode(bad)
		// A data+check double error either gets detected or, in some
		// patterns, miscorrected — but it must never be reported Clean
		// with wrong data.
		if res == Clean && got != d {
			t.Fatal("double error reported clean with wrong data")
		}
		if res == Corrected && got != d {
			misdecoded++
		}
	}
	// SEC-DED guarantees detection for double errors within its coverage;
	// data+check pairs are still double errors and must be caught.
	if misdecoded > 0 {
		t.Errorf("%d/%d data+check double errors were miscorrected", misdecoded, trials)
	}
}

func TestQuickSingleErrorProperty(t *testing.T) {
	prop := func(d uint64, bit uint8) bool {
		cw := FlipDataBit(Encode(d), int(bit)%64)
		got, res, err := Decode(cw)
		return err == nil && res == Corrected && got == d
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOverhead(t *testing.T) {
	if Overhead() != 0.125 {
		t.Errorf("overhead = %v", Overhead())
	}
}

func TestDataPosDistinct(t *testing.T) {
	seen := map[int]bool{}
	for i, p := range dataPos {
		if p < 1 || p > 72 {
			t.Fatalf("dataPos[%d] = %d out of range", i, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("dataPos[%d] = %d is a parity position", i, p)
		}
		if seen[p] {
			t.Fatalf("dataPos[%d] = %d duplicated", i, p)
		}
		seen[p] = true
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.SetBytes(8)
}

func BenchmarkDecodeCorrecting(b *testing.B) {
	cw := FlipDataBit(Encode(0xfeedfacecafebeef), 17)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
