// Package hamming implements the extended Hamming(72,64) SEC-DED code:
// single-error correction, double-error detection over 64-bit words with
// 8 check bits (12.5% overhead).
//
// In the Mosaic ablation study this is the "nearly free" FEC point: at
// 2 Gbps per channel the raw BER is already below 1e-12 over most of the
// reach, so even SEC-DED per 64-bit word adds several dB of margin for the
// cost of trivial XOR trees — no RS decoder latency at all.
package hamming

import (
	"errors"
	"math/bits"
)

// Codeword is a 72-bit Hamming codeword: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// The code uses positions 1..72 (position 0 unused); positions that are
// powers of two (1,2,4,8,16,32,64) carry the 7 Hamming parity bits, and
// we keep an 8th overall-parity bit separately (stored as check bit 7).
// Data bits fill the remaining positions in increasing order.

// dataPos[i] is the codeword position of data bit i.
var dataPos [64]int

func init() {
	i := 0
	for pos := 1; pos <= 72 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		dataPos[i] = pos
		i++
	}
}

// Encode computes the check bits for a 64-bit data word.
func Encode(data uint64) Codeword {
	var check uint8
	// Hamming parities p0..p6 cover positions with the respective bit set.
	for p := 0; p < 7; p++ {
		mask := 1 << uint(p)
		parity := 0
		for i := 0; i < 64; i++ {
			if dataPos[i]&mask != 0 {
				parity ^= int(data>>uint(i)) & 1
			}
		}
		check |= uint8(parity) << uint(p)
	}
	// Overall parity (bit 7) over data + the 7 Hamming bits.
	overall := bits.OnesCount64(data) + bits.OnesCount8(check&0x7f)
	check |= uint8(overall&1) << 7
	return Codeword{Data: data, Check: check}
}

// Decode errors.
var (
	ErrDoubleError = errors.New("hamming: uncorrectable double-bit error")
)

// Result classifies a decode.
type Result int

// Decode outcomes.
const (
	Clean     Result = iota // no error
	Corrected               // single-bit error fixed
	Detected                // double-bit error detected (data unreliable)
)

// Decode checks and corrects a received codeword. It returns the corrected
// data, what happened, and ErrDoubleError when two bit errors are detected.
func Decode(cw Codeword) (uint64, Result, error) {
	// Encode arranges the overall-parity bit so a transmitted codeword has
	// even parity across all 72 bits; an odd received parity means an odd
	// number of bit errors.
	parityOdd := (bits.OnesCount64(cw.Data)+bits.OnesCount8(cw.Check))%2 == 1
	recomputed := Encode(cw.Data)
	syndrome := (recomputed.Check ^ cw.Check) & 0x7f

	switch {
	case syndrome == 0 && !parityOdd:
		return cw.Data, Clean, nil
	case syndrome == 0 && parityOdd:
		// The overall parity bit itself flipped; data is fine.
		return cw.Data, Corrected, nil
	case parityOdd:
		// Single-bit error at position `syndrome`.
		pos := int(syndrome)
		if pos&(pos-1) == 0 {
			// A Hamming check bit flipped; data is fine.
			return cw.Data, Corrected, nil
		}
		for i := 0; i < 64; i++ {
			if dataPos[i] == pos {
				return cw.Data ^ 1<<uint(i), Corrected, nil
			}
		}
		// Syndrome points outside the codeword: treat as uncorrectable.
		return cw.Data, Detected, ErrDoubleError
	default:
		// Nonzero syndrome with good overall parity: double error.
		return cw.Data, Detected, ErrDoubleError
	}
}

// Overhead returns the code's rate overhead, 8/64.
func Overhead() float64 { return 8.0 / 64.0 }

// FlipDataBit returns cw with data bit i flipped (test/bench helper for
// error injection).
func FlipDataBit(cw Codeword, i int) Codeword {
	cw.Data ^= 1 << uint(i%64)
	return cw
}

// FlipCheckBit returns cw with check bit i flipped.
func FlipCheckBit(cw Codeword, i int) Codeword {
	cw.Check ^= 1 << uint(i%8)
	return cw
}
