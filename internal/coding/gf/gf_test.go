package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllSupportedFieldsConstruct(t *testing.T) {
	for m := 3; m <= 16; m++ {
		f, err := New(m)
		if err != nil {
			t.Fatalf("GF(2^%d): %v", m, err)
		}
		if f.Size() != 1<<uint(m) || f.Order() != 1<<uint(m)-1 {
			t.Errorf("GF(2^%d): wrong size/order", m)
		}
	}
}

func TestUnsupportedField(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("GF(2^2) has no table entry; should error")
	}
	if _, err := New(17); err == nil {
		t.Error("GF(2^17) should error")
	}
}

func TestNonPrimitivePolyRejected(t *testing.T) {
	// x^4 + x^3 + x^2 + x + 1 divides x^5-1: period 5, not primitive.
	if _, err := NewWithPoly(4, 0b11111); err == nil {
		t.Error("non-primitive polynomial accepted")
	}
	// Wrong degree.
	if _, err := NewWithPoly(4, 0b100011101); err == nil {
		t.Error("degree-8 polynomial accepted for m=4")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, m := range []int{4, 8, 10} {
		f := MustNew(m)
		for a := 1; a < f.Size(); a++ {
			if got := f.Alpha(f.Log(a)); got != a {
				t.Fatalf("GF(2^%d): alpha^log(%d) = %d", m, a, got)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(1))
	r := func() int { return rng.Intn(f.Size()) }
	rnz := func() int { return 1 + rng.Intn(f.Size()-1) }
	for i := 0; i < 5000; i++ {
		a, b, c := r(), r(), r()
		// Commutativity and associativity.
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatal("mul not commutative")
		}
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatal("mul not associative")
		}
		// Distributivity.
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			t.Fatal("not distributive")
		}
		// Identities.
		if f.Mul(a, 1) != a || f.Add(a, 0) != a {
			t.Fatal("identity broken")
		}
		// Characteristic 2.
		if f.Add(a, a) != 0 {
			t.Fatal("a+a != 0")
		}
		// Inverses.
		x := rnz()
		if f.Mul(x, f.Inv(x)) != 1 {
			t.Fatal("x * x^-1 != 1")
		}
		if f.Div(f.Mul(a, x), x) != a {
			t.Fatal("div does not undo mul")
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f := MustNew(10)
	mulDistributes := func(ra, rb, rc uint16) bool {
		a, b, c := int(ra)%f.Size(), int(rb)%f.Size(), int(rc)%f.Size()
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(mulDistributes, nil); err != nil {
		t.Error(err)
	}
}

func TestDivInvPanics(t *testing.T) {
	f := MustNew(8)
	assertPanics(t, "Div by zero", func() { f.Div(3, 0) })
	assertPanics(t, "Inv of zero", func() { f.Inv(0) })
	assertPanics(t, "Log of zero", func() { f.Log(0) })
	assertPanics(t, "neg pow of zero", func() { f.Pow(0, -1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestPow(t *testing.T) {
	f := MustNew(8)
	for a := 1; a < 20; a++ {
		acc := 1
		for n := 0; n < 10; n++ {
			if got := f.Pow(a, n); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, acc)
			}
			acc = f.Mul(acc, a)
		}
	}
	if f.Pow(0, 0) != 1 || f.Pow(0, 5) != 0 {
		t.Error("powers of zero wrong")
	}
	// Fermat: a^(2^m - 1) = 1.
	for a := 1; a < f.Size(); a++ {
		if f.Pow(a, f.Order()) != 1 {
			t.Fatalf("a^order != 1 for a=%d", a)
		}
	}
}

func TestAlphaWraps(t *testing.T) {
	f := MustNew(8)
	if f.Alpha(0) != 1 {
		t.Error("alpha^0 != 1")
	}
	if f.Alpha(f.Order()) != 1 {
		t.Error("alpha^order != 1")
	}
	if f.Alpha(-1) != f.Inv(f.Alpha(1)) {
		t.Error("alpha^-1 != inverse of alpha")
	}
}

func TestPolyEval(t *testing.T) {
	f := MustNew(8)
	// p(x) = 5 + 3x + x^2 at x=2: 5 ^ mul(3,2) ^ mul(2, 2)... compute directly.
	p := []int{5, 3, 1}
	want := f.Add(f.Add(5, f.Mul(3, 2)), f.Mul(1, f.Mul(2, 2)))
	if got := f.PolyEval(p, 2); got != want {
		t.Errorf("PolyEval = %d, want %d", got, want)
	}
	if f.PolyEval(nil, 7) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}

func TestPolyMulAddScale(t *testing.T) {
	f := MustNew(8)
	rng := rand.New(rand.NewSource(2))
	randPoly := func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = rng.Intn(f.Size())
		}
		return p
	}
	for i := 0; i < 200; i++ {
		a, b := randPoly(1+rng.Intn(8)), randPoly(1+rng.Intn(8))
		x := rng.Intn(f.Size())
		// Evaluation homomorphism: (a*b)(x) = a(x)*b(x); (a+b)(x)=a(x)+b(x).
		if f.PolyEval(f.PolyMul(a, b), x) != f.Mul(f.PolyEval(a, x), f.PolyEval(b, x)) {
			t.Fatal("PolyMul breaks evaluation homomorphism")
		}
		if f.PolyEval(f.PolyAdd(a, b), x) != f.Add(f.PolyEval(a, x), f.PolyEval(b, x)) {
			t.Fatal("PolyAdd breaks evaluation homomorphism")
		}
		c := rng.Intn(f.Size())
		if f.PolyEval(f.PolyScale(a, c), x) != f.Mul(c, f.PolyEval(a, x)) {
			t.Fatal("PolyScale breaks evaluation homomorphism")
		}
	}
	if f.PolyMul(nil, []int{1, 2}) != nil {
		t.Error("zero polynomial times anything should be nil")
	}
}

func TestPolyDeg(t *testing.T) {
	if PolyDeg(nil) != -1 || PolyDeg([]int{0, 0}) != -1 {
		t.Error("zero polynomial degree should be -1")
	}
	if PolyDeg([]int{1}) != 0 || PolyDeg([]int{0, 5, 0}) != 1 {
		t.Error("degree wrong")
	}
}

func TestStringer(t *testing.T) {
	if MustNew(10).String() != "GF(2^10)" {
		t.Error("bad String")
	}
}

func BenchmarkMulGF10(b *testing.B) {
	f := MustNew(10)
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc|1, (i&1023)|1)
	}
	_ = acc
}
