package gf

import "testing"

// naiveMul8 is an in-test carry-less shift-and-reduce multiply over
// GF(2^8) with the conventional polynomial x^8+x^4+x^3+x^2+1 — written
// from the definition, sharing nothing with the Field's log/exp tables,
// so the exhaustive comparison below convicts either representation.
func naiveMul8(a, b int) int {
	p := 0
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		a <<= 1
		if a&0x100 != 0 {
			a ^= 0x11d
		}
		b >>= 1
	}
	return p
}

func TestMulTable8Exhaustive(t *testing.T) {
	f := MustDefault(8)
	tab := f.MulTable8()
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := naiveMul8(a, b)
			if got := int(tab[a][b]); got != want {
				t.Fatalf("tab[%d][%d] = %d, naive says %d", a, b, got, want)
			}
			if got := f.Mul(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, naive says %d", a, b, got, want)
			}
		}
	}
}

func TestMulTable8CachedPerField(t *testing.T) {
	f := MustDefault(8)
	if f.MulTable8() != f.MulTable8() {
		t.Error("MulTable8 rebuilt the table instead of returning the cache")
	}
	if f.M() != 8 {
		t.Errorf("M() = %d, want 8", f.M())
	}
}

func TestMulTable8RejectsOtherFields(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulTable8 on GF(2^10) should panic")
		}
	}()
	MustDefault(10).MulTable8()
}

func TestDefaultCachesPerM(t *testing.T) {
	a, err := Default(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default(8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Default(8) returned distinct fields; want one shared instance")
	}
	if _, err := Default(2); err == nil {
		t.Error("Default(2) should error (no table entry for m=2)")
	}
}
