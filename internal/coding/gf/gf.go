// Package gf implements arithmetic over the finite fields GF(2^m),
// 3 <= m <= 16, using log/antilog tables over a primitive element. It is
// the substrate for the Reed-Solomon codecs used both by the KP4/KR4
// Ethernet FEC baselines and by Mosaic's lightweight per-link FEC.
package gf

import (
	"fmt"
)

// Primitive polynomials for GF(2^m), m = 3..16, given as integers whose bit
// i is the coefficient of x^i (the x^m term included). These are the
// conventional choices (e.g. x^10+x^3+1 for GF(1024) as in RS(544,514)).
var primitivePolys = map[int]uint32{
	3:  0b1011,              // x^3+x+1
	4:  0b10011,             // x^4+x+1
	5:  0b100101,            // x^5+x^2+1
	6:  0b1000011,           // x^6+x+1
	7:  0b10001001,          // x^7+x^3+1
	8:  0b100011101,         // x^8+x^4+x^3+x^2+1 (AES-adjacent, standard RS-255)
	9:  0b1000010001,        // x^9+x^4+1
	10: 0b10000001001,       // x^10+x^3+1
	11: 0b100000000101,      // x^11+x^2+1
	12: 0b1000001010011,     // x^12+x^6+x^4+x+1
	13: 0b10000000011011,    // x^13+x^4+x^3+x+1
	14: 0b100010001000011,   // x^14+x^10+x^6+x+1
	15: 0b1000000000000011,  // x^15+x+1
	16: 0b10001000000001011, // x^16+x^12+x^3+x+1
}

// Field is a finite field GF(2^m). Construct with New. A Field is immutable
// and safe for concurrent use.
type Field struct {
	m    int
	size int // 2^m
	mask int // 2^m - 1 (order of the multiplicative group)
	poly uint32
	exp  []uint16 // exp[i] = alpha^i, doubled length to avoid mod in Mul
	log  []uint16 // log[x] = i such that alpha^i = x; log[0] unused
}

// New returns the field GF(2^m) built over the package's primitive
// polynomial for m. It returns an error for unsupported m.
func New(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("gf: unsupported field GF(2^%d)", m)
	}
	return NewWithPoly(m, poly)
}

// MustNew is New but panics on error; for package-level defaults.
func MustNew(m int) *Field {
	f, err := New(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewWithPoly builds GF(2^m) over a caller-supplied primitive polynomial
// (bit i = coefficient of x^i, degree exactly m). It verifies that the
// polynomial generates the full multiplicative group and returns an error
// otherwise.
func NewWithPoly(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf: m=%d out of range [2,16]", m)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not have degree %d", poly, m)
	}
	f := &Field{
		m:    m,
		size: 1 << uint(m),
		mask: 1<<uint(m) - 1,
		poly: poly,
	}
	f.exp = make([]uint16, 2*f.mask)
	f.log = make([]uint16, f.size)
	x := 1
	for i := 0; i < f.mask; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d (period %d)", poly, m, i)
		}
		f.exp[i] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&f.size != 0 {
			x ^= int(poly)
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive for m=%d", poly, m)
	}
	// Double the exp table so Mul can skip the modular reduction.
	copy(f.exp[f.mask:], f.exp[:f.mask])
	return f, nil
}

// M returns the field's extension degree m.
func (f *Field) M() int { return f.m }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() int { return f.size }

// Order returns the order of the multiplicative group, 2^m - 1.
func (f *Field) Order() int { return f.mask }

// Alpha returns the primitive element's i-th power, alpha^i (i may be any
// integer; negative exponents wrap).
func (f *Field) Alpha(i int) int {
	i %= f.mask
	if i < 0 {
		i += f.mask
	}
	return int(f.exp[i])
}

// Add returns a+b (which equals a-b) in the field.
func (f *Field) Add(a, b int) int { return a ^ b }

// Mul returns a·b in the field.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return int(f.exp[int(f.log[a])+int(f.log[b])])
}

// Div returns a/b. It panics if b is zero (a programming error, like
// integer division by zero).
func (f *Field) Div(a, b int) int {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.mask
	}
	return int(f.exp[d])
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return int(f.exp[f.mask-int(f.log[a])])
}

// Pow returns a^n (n may be negative if a != 0; 0^0 = 1).
func (f *Field) Pow(a, n int) int {
	if a == 0 {
		if n == 0 {
			return 1
		}
		if n < 0 {
			panic("gf: negative power of zero")
		}
		return 0
	}
	e := (int(f.log[a]) * (n % f.mask)) % f.mask
	if e < 0 {
		e += f.mask
	}
	return int(f.exp[e])
}

// Log returns log_alpha(a). It panics if a is zero.
func (f *Field) Log(a int) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(f.log[a])
}

// PolyEval evaluates the polynomial p (p[i] = coefficient of x^i) at x
// using Horner's rule.
func (f *Field) PolyEval(p []int, x int) int {
	acc := 0
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// PolyMul returns the product of polynomials a and b (coefficients low to
// high). The zero polynomial is represented by an empty slice.
func (f *Field) PolyMul(a, b []int) []int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= f.Mul(ai, bj)
		}
	}
	return out
}

// PolyAdd returns a+b.
func (f *Field) PolyAdd(a, b []int) []int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	copy(out, a)
	for i, bi := range b {
		out[i] ^= bi
	}
	return out
}

// PolyScale returns c·a.
func (f *Field) PolyScale(a []int, c int) []int {
	out := make([]int, len(a))
	for i, ai := range a {
		out[i] = f.Mul(ai, c)
	}
	return out
}

// PolyDeg returns the degree of p, or -1 for the zero polynomial.
func PolyDeg(p []int) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// String identifies the field.
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d)", f.m)
}
