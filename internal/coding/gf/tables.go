package gf

import "sync"

// Table-driven fast paths for the byte field GF(2^8).
//
// The log/antilog representation in gf.go is compact and works for every
// m, but each Mul costs two log lookups, an add, and an exp lookup — and,
// worse for a hot loop, a pair of zero branches. For the per-channel
// RS-lite codec the PHY runs on every lane of every superframe, the
// winning representation is the full 256×256 product table: one
// dependent load per multiply, and a *row* of the table is a complete
// "multiply by constant c" map that a slice-wide kernel can hoist out of
// its inner loop (see internal/coding/rs.Codec8).
//
// The table is 64 KiB, built once per field on first use and cached on
// the Field; Fields are immutable so the cache is safe to share across
// every codec and worker.

// mul8Cache is the lazily built byte-product table for an m=8 field.
type mul8Cache struct {
	once sync.Once
	tab  *[256][256]byte
}

var mul8ByField sync.Map // *Field -> *mul8Cache

// MulTable8 returns the full product table of an m=8 field:
// tab[a][b] = a·b. Row tab[c][:] is the multiply-by-c map. It panics for
// fields other than GF(2^8); callers gate on M() == 8.
func (f *Field) MulTable8() *[256][256]byte {
	if f.m != 8 {
		panic("gf: MulTable8 needs GF(2^8)")
	}
	ci, _ := mul8ByField.LoadOrStore(f, &mul8Cache{})
	c := ci.(*mul8Cache)
	c.once.Do(func() {
		tab := new([256][256]byte)
		for a := 1; a < 256; a++ {
			la := int(f.log[a])
			for b := 1; b < 256; b++ {
				tab[a][b] = byte(f.exp[la+int(f.log[b])])
			}
		}
		c.tab = tab
	})
	return c.tab
}

// defaultFields caches one Field per supported m, so constructing a codec
// (rs.Lite builds GF(2^8), rs.KP4 builds GF(2^10)) stops paying the table
// build — and every codec over the same m shares one MulTable8 cache.
var defaultFields sync.Map // int -> *Field

// Default returns the process-wide shared field GF(2^m) over the
// package's primitive polynomial for m. Fields are immutable, so sharing
// one instance is safe; use New when a private instance or a custom
// polynomial is needed.
func Default(m int) (*Field, error) {
	if f, ok := defaultFields.Load(m); ok {
		return f.(*Field), nil
	}
	f, err := New(m)
	if err != nil {
		return nil, err
	}
	actual, _ := defaultFields.LoadOrStore(m, f)
	return actual.(*Field), nil
}

// MustDefault is Default but panics on error; for package-level codecs.
func MustDefault(m int) *Field {
	f, err := Default(m)
	if err != nil {
		panic(err)
	}
	return f
}
