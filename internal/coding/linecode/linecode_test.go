package linecode

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- Scrambler ---

func TestScramblerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	in := append([]byte(nil), data...)

	s := NewScrambler(0x123456789abcd)
	d := NewDescrambler(0x123456789abcd) // matching state: exact from bit 0
	scrambled := s.Scramble(append([]byte(nil), in...))
	out := d.Descramble(append([]byte(nil), scrambled...))
	if !bytes.Equal(out, data) {
		t.Fatal("scramble/descramble with matching state not identity")
	}
}

func TestScramblerSelfSynchronizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 1024)
	rng.Read(data)

	s := NewScrambler(0xdeadbeefcafe)
	d := NewDescrambler(0) // wrong state on purpose
	scrambled := s.Scramble(append([]byte(nil), data...))
	out := d.Descramble(scrambled)
	// After 58 bits (8 bytes) the descrambler must have locked.
	if !bytes.Equal(out[8:], data[8:]) {
		t.Fatal("descrambler did not self-synchronize after 58 bits")
	}
}

func TestScramblerErrorMultiplication(t *testing.T) {
	// A single channel bit error corrupts at most 3 descrambled bits.
	data := make([]byte, 256)
	s1 := NewScrambler(7)
	s2 := NewScrambler(7)
	a := s1.Scramble(append([]byte(nil), data...))
	b := s2.Scramble(append([]byte(nil), data...))
	b[100] ^= 0x01 // one bit error

	da := NewDescrambler(0).Descramble(a)
	db := NewDescrambler(0).Descramble(b)
	diff := 0
	for i := range da {
		x := da[i] ^ db[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff == 0 || diff > 3 {
		t.Errorf("error multiplication = %d bits, want 1..3", diff)
	}
}

func TestScramblerWhitens(t *testing.T) {
	// All-zero input must come out roughly balanced (this is the whole
	// point of scrambling a DC-coupled line).
	s := NewScrambler(0x5a5a5a5a5a5a5)
	out := s.Scramble(make([]byte, 1<<16))
	ones := 0
	for _, b := range out {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	total := 8 * (1 << 16)
	frac := float64(ones) / float64(total)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("scrambled all-zeros has ones fraction %v, want ~0.5", frac)
	}
}

// --- 8b/10b ---

func TestEnc6TableSanity(t *testing.T) {
	for v, cols := range enc6 {
		for c, code := range cols {
			d := popcount6(code)*2 - 6
			if d != 0 && d != 2 && d != -2 {
				t.Errorf("enc6[%d][%d] disparity %d", v, c, d)
			}
		}
		// Alternate columns must have opposite (or zero) disparity.
		d0 := popcount6(cols[0])*2 - 6
		d1 := popcount6(cols[1])*2 - 6
		if d0 != -d1 && !(d0 == 0 && d1 == 0) {
			t.Errorf("enc6[%d]: disparities %d,%d not complementary", v, d0, d1)
		}
		// RD- column must not have negative disparity.
		if d0 < 0 {
			t.Errorf("enc6[%d]: RD- column has negative disparity", v)
		}
	}
}

func TestEnc4TableSanity(t *testing.T) {
	for v, cols := range enc4 {
		d0 := popcount4(cols[0])*2 - 4
		d1 := popcount4(cols[1])*2 - 4
		if d0 != -d1 && !(d0 == 0 && d1 == 0) {
			t.Errorf("enc4[%d]: disparities %d,%d not complementary", v, d0, d1)
		}
		if d0 < 0 {
			t.Errorf("enc4[%d]: RD- column negative disparity", v)
		}
	}
}

func TestEncode8b10bRoundTripAllBytes(t *testing.T) {
	var enc Encoder8b10b
	dec := NewDecoder8b10b()
	for round := 0; round < 4; round++ { // hit both RD states
		for v := 0; v < 256; v++ {
			sym := enc.EncodeByte(byte(v))
			got, comma, err := dec.DecodeSymbol(sym)
			if err != nil {
				t.Fatalf("byte %#02x RD round %d: %v", v, round, err)
			}
			if comma {
				t.Fatalf("byte %#02x decoded as comma", v)
			}
			if got != byte(v) {
				t.Fatalf("byte %#02x decoded as %#02x", v, got)
			}
		}
	}
}

func TestRunningDisparityBounded(t *testing.T) {
	var enc Encoder8b10b
	rng := rand.New(rand.NewSource(3))
	rd := -1
	for i := 0; i < 100000; i++ {
		sym := enc.EncodeByte(byte(rng.Intn(256)))
		rd += SymbolDisparity(sym)
		if rd != -1 && rd != 1 {
			t.Fatalf("running disparity escaped to %d at symbol %d", rd, i)
		}
		if enc.RD() != rd {
			t.Fatalf("encoder RD %d != tracked %d", enc.RD(), rd)
		}
	}
}

func TestDCBalanceLongStream(t *testing.T) {
	var enc Encoder8b10b
	// Worst case for DC balance: constant bytes.
	for _, fill := range []byte{0x00, 0xff, 0xaa, 0x17} {
		ones, total := 0, 0
		e := enc
		for i := 0; i < 10000; i++ {
			sym := e.EncodeByte(fill)
			total += 10
			for j := 0; j < 10; j++ {
				ones += int(sym>>uint(j)) & 1
			}
		}
		frac := float64(ones) / float64(total)
		if frac < 0.49 || frac > 0.51 {
			t.Errorf("fill %#02x: ones fraction %v, want ~0.5", fill, frac)
		}
	}
}

func TestMaxRunLengthProperty(t *testing.T) {
	var enc Encoder8b10b
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 20000)
	rng.Read(data)
	syms := enc.Encode(data)
	if run := MaxRunLength(syms); run > 5 {
		t.Errorf("8b/10b run length %d exceeds 5", run)
	}
}

func TestCommaSymbol(t *testing.T) {
	var enc Encoder8b10b
	dec := NewDecoder8b10b()
	sym := enc.EncodeComma()
	if !IsComma(sym) {
		t.Fatal("EncodeComma did not produce a comma")
	}
	b, comma, err := dec.DecodeSymbol(sym)
	if err != nil || !comma || b != 0xbc {
		t.Fatalf("comma decode: b=%#02x comma=%v err=%v", b, comma, err)
	}
	// Comma flips RD.
	if enc.RD() != 1 {
		t.Errorf("RD after comma from - should be +, got %d", enc.RD())
	}
}

func TestDecodeInvalidSymbol(t *testing.T) {
	dec := NewDecoder8b10b()
	// 6b group 000000 is not in the code.
	if _, _, err := dec.DecodeSymbol(0); err == nil {
		t.Error("all-zero symbol accepted")
	}
	// Valid 6b, invalid 4b (0000).
	if _, _, err := dec.DecodeSymbol(0b1100010000); err == nil {
		t.Error("invalid 4b group accepted")
	}
}

func TestDecodeStreamSkipsCommas(t *testing.T) {
	var enc Encoder8b10b
	dec := NewDecoder8b10b()
	syms := []uint16{enc.EncodeByte(0x42), enc.EncodeComma(), enc.EncodeByte(0x99)}
	out, err := dec.Decode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0x42, 0x99}) {
		t.Fatalf("got %x", out)
	}
}

func Test8b10bQuickRoundTrip(t *testing.T) {
	dec := NewDecoder8b10b()
	prop := func(data []byte) bool {
		var enc Encoder8b10b
		out, err := dec.Decode(enc.Encode(data))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// --- 64b/66b ---

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	var d8 [8]byte
	copy(d8[:], "abcdefgh")
	var f7 [7]byte
	copy(f7[:], "1234567")
	term3, _ := TermBlock([]byte{9, 8, 7})
	blocks := []Block{
		DataBlock(d8),
		IdleBlock(),
		StartBlock(f7),
		term3,
	}
	for _, want := range blocks {
		sync, payload, err := want.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(sync, payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.TermLen != want.TermLen {
			t.Fatalf("kind/termlen mismatch: %+v vs %+v", got, want)
		}
		if got.Kind == KindData && got.Data != want.Data {
			t.Fatal("data mismatch")
		}
	}
}

func TestAllTermLengths(t *testing.T) {
	for n := 0; n <= 7; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + 1)
		}
		b, err := TermBlock(data)
		if err != nil {
			t.Fatal(err)
		}
		sync, payload, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(sync, payload)
		if err != nil || got.TermLen != n {
			t.Fatalf("T%d: %v, len %d", n, err, got.TermLen)
		}
		if !bytes.Equal(got.Data[:n], data) {
			t.Fatalf("T%d data mismatch", n)
		}
	}
	if _, err := TermBlock(make([]byte, 8)); err == nil {
		t.Error("8-byte terminate accepted")
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	var p [8]byte
	if _, err := DecodeBlock(0b11, p); err == nil {
		t.Error("bad sync accepted")
	}
	p[0] = 0x42 // unknown control type
	if _, err := DecodeBlock(SyncCtrl, p); err == nil {
		t.Error("unknown block type accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{7, 8, 15, 16, 64, 65, 1499, 1500} {
		frame := make([]byte, n)
		rng.Read(frame)
		blocks, err := FrameToBlocks(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, used, err := BlocksToFrame(blocks)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if used != len(blocks) {
			t.Errorf("n=%d: consumed %d of %d blocks", n, used, len(blocks))
		}
		if !bytes.Equal(got, frame) {
			t.Fatalf("n=%d: frame mismatch", n)
		}
	}
}

func TestFrameTooShort(t *testing.T) {
	if _, err := FrameToBlocks(make([]byte, 3)); err == nil {
		t.Error("sub-minimum frame accepted")
	}
}

func TestBlocksToFrameErrors(t *testing.T) {
	if _, _, err := BlocksToFrame(nil); err == nil {
		t.Error("empty block list accepted")
	}
	if _, _, err := BlocksToFrame([]Block{IdleBlock()}); err == nil {
		t.Error("frame not starting with start block accepted")
	}
	var f7 [7]byte
	if _, _, err := BlocksToFrame([]Block{StartBlock(f7), IdleBlock()}); err == nil {
		t.Error("idle inside frame accepted")
	}
	if _, _, err := BlocksToFrame([]Block{StartBlock(f7)}); err == nil {
		t.Error("unterminated frame accepted")
	}
}

func TestFrameQuickRoundTrip(t *testing.T) {
	prop := func(raw []byte) bool {
		if len(raw) < MinFrameLen {
			raw = append(raw, make([]byte, MinFrameLen-len(raw))...)
		}
		blocks, err := FrameToBlocks(raw)
		if err != nil {
			return false
		}
		got, _, err := BlocksToFrame(blocks)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []BlockKind{KindData, KindIdle, KindStart, KindTerm} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if BlockKind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func BenchmarkScramble(b *testing.B) {
	s := NewScrambler(1)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		s.Scramble(buf)
	}
}

func Benchmark8b10bEncode(b *testing.B) {
	var enc Encoder8b10b
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		enc.Encode(data)
	}
}

// TestScramblerWordMatchesBitSerial pins the word-at-a-time slice paths
// against pure bit-serial processing at non-64-aligned split points: the
// same stream scrambled in one call, in odd-sized chunks (each chunk
// boundary forces a history write-back/reload), and one bit at a time
// must be byte-identical, and likewise for the descrambler.
func TestScramblerWordMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{1, 7, 8, 9, 63, 64, 65, 1023} {
		data := make([]byte, size)
		rng.Read(data)
		seed := rng.Uint64() & (1<<58 - 1)

		bitwise := func(state uint64, in []byte) []byte {
			s := NewScrambler(state)
			out := make([]byte, len(in))
			for i, b := range in {
				var o byte
				for j := 0; j < 8; j++ {
					o |= s.ScrambleBit(b>>uint(j)) << uint(j)
				}
				out[i] = o
			}
			return out
		}
		want := bitwise(seed, data)

		whole := NewScrambler(seed).Scramble(append([]byte(nil), data...))
		if !bytes.Equal(whole, want) {
			t.Fatalf("size %d: whole-slice scramble differs from bit-serial", size)
		}

		for _, chunk := range []int{1, 3, 5, 13} {
			s := NewScrambler(seed)
			got := append([]byte(nil), data...)
			for off := 0; off < len(got); off += chunk {
				end := off + chunk
				if end > len(got) {
					end = len(got)
				}
				s.Scramble(got[off:end])
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("size %d chunk %d: chunked scramble differs from bit-serial", size, chunk)
			}
		}

		// Descrambler: same splits must all invert back to the input.
		for _, chunk := range []int{1, 3, 5, 13, size} {
			d := NewDescrambler(seed)
			got := append([]byte(nil), want...)
			for off := 0; off < len(got); off += chunk {
				end := off + chunk
				if end > len(got) {
					end = len(got)
				}
				d.Descramble(got[off:end])
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("size %d chunk %d: chunked descramble not the inverse", size, chunk)
			}
		}
	}
}

// TestScramblerWord64MatchesSlice pins the exported single-word step
// against the slice path on one aligned word.
func TestScramblerWord64MatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		var buf [8]byte
		rng.Read(buf[:])
		seed := rng.Uint64() & (1<<58 - 1)
		w := uint64(0)
		for i, b := range buf {
			w |= uint64(b) << (8 * i)
		}
		s1 := NewScrambler(seed)
		o := s1.ScrambleWord64(w)
		s2 := NewScrambler(seed)
		got := s2.Scramble(append([]byte(nil), buf[:]...))
		for i := range got {
			if got[i] != byte(o>>(8*i)) {
				t.Fatalf("trial %d: slice byte %d %02x != word byte %02x", trial, i, got[i], byte(o>>(8*i)))
			}
		}
	}
}
