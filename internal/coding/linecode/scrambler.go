// Package linecode implements the line codes a serial PHY needs: the
// self-synchronizing x^58 scrambler and 64b/66b block coding used by
// Ethernet PCS layers (and by Mosaic's protocol-agnostic gearbox), and the
// classic 8b/10b code with running disparity used where DC balance must be
// guaranteed per channel (a directly-modulated LED has no bias tee — the
// driver is AC-coupled, so per-channel DC balance matters).
package linecode

// Scrambler is the self-synchronizing multiplicative scrambler with
// polynomial G(x) = 1 + x^39 + x^58 (IEEE 802.3 clause 49). Because it is
// self-synchronizing, the descrambler locks onto the stream after 58 bits
// regardless of initial state — exactly what a wide-and-slow receiver wants
// after a channel remap.
//
// The zero value is a scrambler with an all-zero state; any state works.
type Scrambler struct {
	state uint64 // bits 0..57 hold x^1..x^58
}

// NewScrambler returns a scrambler seeded with the given state (only the
// low 58 bits are used). Seeding with a non-zero value avoids a long
// zero-output prefix on all-zero input.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{state: seed & (1<<58 - 1)}
}

// Reset rewinds the scrambler to the given seed state, making one instance
// reusable across streams without reallocation.
func (s *Scrambler) Reset(seed uint64) {
	s.state = seed & (1<<58 - 1)
}

// ScrambleBit scrambles one bit (0 or 1).
func (s *Scrambler) ScrambleBit(in byte) byte {
	tap := byte((s.state>>38)^(s.state>>57)) & 1 // x^39, x^58
	out := (in & 1) ^ tap
	s.state = (s.state<<1 | uint64(out)) & (1<<58 - 1)
	return out
}

// Scramble scrambles bits in place over a packed byte slice (LSB-first
// within each byte) and returns the same slice.
func (s *Scrambler) Scramble(bits []byte) []byte {
	for i, b := range bits {
		var out byte
		for j := 0; j < 8; j++ {
			out |= s.ScrambleBit(b>>uint(j)) << uint(j)
		}
		bits[i] = out
	}
	return bits
}

// Descrambler inverts Scrambler. It self-synchronizes: after 58 input bits
// its output is correct regardless of initial state, and a single channel
// bit error corrupts at most 3 output bits (the error plus its two taps).
type Descrambler struct {
	state uint64
}

// NewDescrambler returns a descrambler with the given initial state (it
// only matters for the first 58 bits).
func NewDescrambler(seed uint64) *Descrambler {
	return &Descrambler{state: seed & (1<<58 - 1)}
}

// Reset rewinds the descrambler to the given seed state.
func (d *Descrambler) Reset(seed uint64) {
	d.state = seed & (1<<58 - 1)
}

// DescrambleBit descrambles one bit.
func (d *Descrambler) DescrambleBit(in byte) byte {
	tap := byte((d.state>>38)^(d.state>>57)) & 1
	out := (in & 1) ^ tap
	d.state = (d.state<<1 | uint64(in&1)) & (1<<58 - 1)
	return out
}

// Descramble descrambles bits in place over a packed byte slice (LSB-first
// within each byte) and returns the same slice.
func (d *Descrambler) Descramble(bits []byte) []byte {
	for i, b := range bits {
		var out byte
		for j := 0; j < 8; j++ {
			out |= d.DescrambleBit(b>>uint(j)) << uint(j)
		}
		bits[i] = out
	}
	return bits
}
