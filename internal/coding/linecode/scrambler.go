// Package linecode implements the line codes a serial PHY needs: the
// self-synchronizing x^58 scrambler and 64b/66b block coding used by
// Ethernet PCS layers (and by Mosaic's protocol-agnostic gearbox), and the
// classic 8b/10b code with running disparity used where DC balance must be
// guaranteed per channel (a directly-modulated LED has no bias tee — the
// driver is AC-coupled, so per-channel DC balance matters).
package linecode

import "math/bits"

// Scrambler is the self-synchronizing multiplicative scrambler with
// polynomial G(x) = 1 + x^39 + x^58 (IEEE 802.3 clause 49). Because it is
// self-synchronizing, the descrambler locks onto the stream after 58 bits
// regardless of initial state — exactly what a wide-and-slow receiver wants
// after a channel remap.
//
// The zero value is a scrambler with an all-zero state; any state works.
//
// # Word-at-a-time operation
//
// Scramble and Descramble advance 64 bits per step instead of one. Over
// GF(2) the scrambler is linear, so 64 steps of the shift register are one
// multiplication by the 64th power of its state-transition matrix. For
// G(x) = 1 + x^39 + x^58 that matrix power collapses to three shifted XOR
// terms rather than a dense 64×64 bit matrix: writing the 64 input bits
// time-ordered in a word (bit i = the i-th bit on the wire) and the state
// history the same way (h bit i = the output 58-i steps ago, i.e. the
// 58-bit register reversed), the recurrence
//
//	out[t] = in[t] ^ out[t-39] ^ out[t-58]
//
// splits by whether each tap lands in the history or the current word:
//
//	T = in ^ (h >> 19) ^ h          // both taps served from history
//	O = T ^ (T << 39) ^ (T << 58)   // in-word feedback, fully unrolled
//
// (the substitution terminates because (x<<39)<<39 overflows 64 bits).
// The next state is the last 58 output bits, i.e. O reversed and masked.
// ScrambleWord64/DescrambleWord64 expose one such step; the slice forms
// run the same recurrence but keep the history in time order across the
// whole word run — the next history is just O >> 6 (scramble) or in >> 6
// (descramble), so the two Reverse64 per word collapse into a single
// register-form write-back after the loop. The tail stays bit-serial,
// producing byte-identical output at any offset (the equivalence is
// pinned by tests at non-64-aligned splits).
type Scrambler struct {
	state uint64 // bits 0..57 hold x^1..x^58
}

const mask58 = 1<<58 - 1

// histWord reorders a 58-bit register into time order: bit i of the
// result is the output/input from 58-i steps ago (register bit 57-i).
func histWord(state uint64) uint64 {
	return bits.Reverse64(state) >> 6
}

// NewScrambler returns a scrambler seeded with the given state (only the
// low 58 bits are used). Seeding with a non-zero value avoids a long
// zero-output prefix on all-zero input.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{state: seed & (1<<58 - 1)}
}

// Reset rewinds the scrambler to the given seed state, making one instance
// reusable across streams without reallocation.
func (s *Scrambler) Reset(seed uint64) {
	s.state = seed & (1<<58 - 1)
}

// ScrambleBit scrambles one bit (0 or 1).
func (s *Scrambler) ScrambleBit(in byte) byte {
	tap := byte((s.state>>38)^(s.state>>57)) & 1 // x^39, x^58
	out := (in & 1) ^ tap
	s.state = (s.state<<1 | uint64(out)) & (1<<58 - 1)
	return out
}

// ScrambleWord64 scrambles 64 bits at once. The input word is time-ordered:
// bit 0 is the first bit on the wire — exactly the layout of 8 consecutive
// stream bytes read little-endian, since the byte stream is LSB-first.
// Output and state update are bit-identical to 64 ScrambleBit calls.
func (s *Scrambler) ScrambleWord64(in uint64) uint64 {
	h := histWord(s.state)
	t := in ^ (h >> 19) ^ h
	o := t ^ (t << 39) ^ (t << 58)
	s.state = bits.Reverse64(o) & mask58
	return o
}

// Scramble scrambles bits in place over a packed byte slice (LSB-first
// within each byte) and returns the same slice. Aligned 8-byte runs go
// through ScrambleWord64; the tail stays bit-serial.
func (s *Scrambler) Scramble(buf []byte) []byte {
	// History-form loop: h stays time-ordered across words. The next
	// history is the last 58 output bits in time order — exactly o >> 6 —
	// so the per-word Reverse64 pair disappears; the register form is
	// reconstructed once after the loop (h << 6 restores the high 58 bits
	// of the last output word, whose reversal is the register).
	h := histWord(s.state)
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		w := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
			uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
			uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
		t := w ^ (h >> 19) ^ h
		o := t ^ (t << 39) ^ (t << 58)
		h = o >> 6
		buf[i] = byte(o)
		buf[i+1] = byte(o >> 8)
		buf[i+2] = byte(o >> 16)
		buf[i+3] = byte(o >> 24)
		buf[i+4] = byte(o >> 32)
		buf[i+5] = byte(o >> 40)
		buf[i+6] = byte(o >> 48)
		buf[i+7] = byte(o >> 56)
	}
	s.state = bits.Reverse64(h<<6) & mask58
	for ; i < len(buf); i++ {
		b := buf[i]
		var out byte
		for j := 0; j < 8; j++ {
			out |= s.ScrambleBit(b>>uint(j)) << uint(j)
		}
		buf[i] = out
	}
	return buf
}

// Descrambler inverts Scrambler. It self-synchronizes: after 58 input bits
// its output is correct regardless of initial state, and a single channel
// bit error corrupts at most 3 output bits (the error plus its two taps).
type Descrambler struct {
	state uint64
}

// NewDescrambler returns a descrambler with the given initial state (it
// only matters for the first 58 bits).
func NewDescrambler(seed uint64) *Descrambler {
	return &Descrambler{state: seed & (1<<58 - 1)}
}

// Reset rewinds the descrambler to the given seed state.
func (d *Descrambler) Reset(seed uint64) {
	d.state = seed & (1<<58 - 1)
}

// DescrambleBit descrambles one bit.
func (d *Descrambler) DescrambleBit(in byte) byte {
	tap := byte((d.state>>38)^(d.state>>57)) & 1
	out := (in & 1) ^ tap
	d.state = (d.state<<1 | uint64(in&1)) & (1<<58 - 1)
	return out
}

// DescrambleWord64 descrambles 64 time-ordered bits at once (see
// ScrambleWord64 for the layout). The descrambler is feed-forward — the
// taps read the *input* history — so there is no in-word recurrence to
// unroll: the new state is simply the last 58 input bits.
func (d *Descrambler) DescrambleWord64(in uint64) uint64 {
	h := histWord(d.state)
	o := in ^ (h >> 19) ^ h ^ (in << 39) ^ (in << 58)
	d.state = bits.Reverse64(in) & mask58
	return o
}

// Descramble descrambles bits in place over a packed byte slice (LSB-first
// within each byte) and returns the same slice. Aligned 8-byte runs go
// through DescrambleWord64; the tail stays bit-serial.
func (d *Descrambler) Descramble(buf []byte) []byte {
	// History-form loop (see Scrambler.Scramble): the descrambler's next
	// history is the last 58 *input* bits in time order, i.e. w >> 6.
	h := histWord(d.state)
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		w := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
			uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
			uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
		o := w ^ (h >> 19) ^ h ^ (w << 39) ^ (w << 58)
		h = w >> 6
		buf[i] = byte(o)
		buf[i+1] = byte(o >> 8)
		buf[i+2] = byte(o >> 16)
		buf[i+3] = byte(o >> 24)
		buf[i+4] = byte(o >> 32)
		buf[i+5] = byte(o >> 40)
		buf[i+6] = byte(o >> 48)
		buf[i+7] = byte(o >> 56)
	}
	d.state = bits.Reverse64(h<<6) & mask58
	for ; i < len(buf); i++ {
		b := buf[i]
		var out byte
		for j := 0; j < 8; j++ {
			out |= d.DescrambleBit(b>>uint(j)) << uint(j)
		}
		buf[i] = out
	}
	return buf
}
