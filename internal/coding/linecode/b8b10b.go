package linecode

import (
	"errors"
	"fmt"
)

// The 8b/10b code (Widmer & Franaszek) guarantees DC balance and a maximum
// run length of 5 via running disparity. Mosaic-class channels are
// AC-coupled directly into an LED driver, so per-channel DC balance is a
// hard requirement; 8b/10b is the classic way to get it when the 25%
// overhead of a scrambler-free code is acceptable at 2 Gbps.
//
// Bit convention in this package: the 6-bit sub-block is written abcdei
// with 'a' as the MOST significant bit of the 6-bit value, and the 4-bit
// sub-block fghj with 'f' as the most significant bit. A full 10-bit symbol
// is (sixb << 4) | fourb.

// enc6 maps the 5-bit value EDCBA to its 6-bit encodings; column 0 is used
// when the running disparity is negative, column 1 when positive.
var enc6 = [32][2]uint8{
	{0b100111, 0b011000}, // D.00
	{0b011101, 0b100010}, // D.01
	{0b101101, 0b010010}, // D.02
	{0b110001, 0b110001}, // D.03
	{0b110101, 0b001010}, // D.04
	{0b101001, 0b101001}, // D.05
	{0b011001, 0b011001}, // D.06
	{0b111000, 0b000111}, // D.07
	{0b111001, 0b000110}, // D.08
	{0b100101, 0b100101}, // D.09
	{0b010101, 0b010101}, // D.10
	{0b110100, 0b110100}, // D.11
	{0b001101, 0b001101}, // D.12
	{0b101100, 0b101100}, // D.13
	{0b011100, 0b011100}, // D.14
	{0b010111, 0b101000}, // D.15
	{0b011011, 0b100100}, // D.16
	{0b100011, 0b100011}, // D.17
	{0b010011, 0b010011}, // D.18
	{0b110010, 0b110010}, // D.19
	{0b001011, 0b001011}, // D.20
	{0b101010, 0b101010}, // D.21
	{0b011010, 0b011010}, // D.22
	{0b111010, 0b000101}, // D.23
	{0b110011, 0b001100}, // D.24
	{0b100110, 0b100110}, // D.25
	{0b010110, 0b010110}, // D.26
	{0b110110, 0b001001}, // D.27
	{0b001110, 0b001110}, // D.28
	{0b101110, 0b010001}, // D.29
	{0b011110, 0b100001}, // D.30
	{0b101011, 0b010100}, // D.31
}

// enc4 maps the 3-bit value HGF to its primary 4-bit encodings (column 0
// for RD-, column 1 for RD+). Index 7 holds the primary D.x.P7 encoding;
// the alternate D.x.A7 is handled specially.
var enc4 = [8][2]uint8{
	{0b1011, 0b0100}, // D.x.0
	{0b1001, 0b1001}, // D.x.1
	{0b0101, 0b0101}, // D.x.2
	{0b1100, 0b0011}, // D.x.3
	{0b1101, 0b0010}, // D.x.4
	{0b1010, 0b1010}, // D.x.5
	{0b0110, 0b0110}, // D.x.6
	{0b1110, 0b0001}, // D.x.P7
}

// a7 holds the alternate D.x.A7 encodings (RD-, RD+).
var a7 = [2]uint8{0b0111, 0b1000}

// K28.5, the comma symbol used for per-channel alignment.
var k285 = [2]uint16{0b0011111010, 0b1100000101} // RD-, RD+

// Encoder8b10b is a stateful 8b/10b encoder carrying running disparity.
// The zero value starts with negative running disparity (the convention).
type Encoder8b10b struct {
	rdPlus bool // false: RD-, true: RD+
}

// RD returns the current running disparity: -1 or +1.
func (e *Encoder8b10b) RD() int {
	if e.rdPlus {
		return 1
	}
	return -1
}

func popcount6(v uint8) int {
	n := 0
	for i := 0; i < 6; i++ {
		n += int(v>>uint(i)) & 1
	}
	return n
}

func popcount4(v uint8) int {
	n := 0
	for i := 0; i < 4; i++ {
		n += int(v>>uint(i)) & 1
	}
	return n
}

// EncodeByte encodes one data byte into a 10-bit symbol.
func (e *Encoder8b10b) EncodeByte(b byte) uint16 {
	x := b & 0x1f        // EDCBA
	y := (b >> 5) & 0x07 // HGF

	col := 0
	if e.rdPlus {
		col = 1
	}
	six := enc6[x][col]
	// Sub-block disparity of the 6b group updates RD before choosing 4b.
	d6 := popcount6(six)*2 - 6
	rdAfter6 := e.rdPlus
	if d6 > 0 {
		rdAfter6 = true
	} else if d6 < 0 {
		rdAfter6 = false
	}

	var four uint8
	if y == 7 {
		// Choose A7 to avoid a run of five identical bits across the
		// sub-block boundary: RD- with x in {17,18,20}, RD+ with x in
		// {11,13,14}.
		useA7 := (!rdAfter6 && (x == 17 || x == 18 || x == 20)) ||
			(rdAfter6 && (x == 11 || x == 13 || x == 14))
		if useA7 {
			if rdAfter6 {
				four = a7[1]
			} else {
				four = a7[0]
			}
		} else {
			if rdAfter6 {
				four = enc4[7][1]
			} else {
				four = enc4[7][0]
			}
		}
	} else {
		if rdAfter6 {
			four = enc4[y][1]
		} else {
			four = enc4[y][0]
		}
	}
	d4 := popcount4(four)*2 - 4
	rdFinal := rdAfter6
	if d4 > 0 {
		rdFinal = true
	} else if d4 < 0 {
		rdFinal = false
	}
	e.rdPlus = rdFinal
	return uint16(six)<<4 | uint16(four)
}

// EncodeComma emits the K28.5 comma symbol (used for alignment).
func (e *Encoder8b10b) EncodeComma() uint16 {
	var sym uint16
	if e.rdPlus {
		sym = k285[1]
	} else {
		sym = k285[0]
	}
	// K28.5 inverts running disparity (both sub-blocks are unbalanced).
	e.rdPlus = !e.rdPlus
	return sym
}

// Encode encodes a byte slice into 10-bit symbols.
func (e *Encoder8b10b) Encode(data []byte) []uint16 {
	out := make([]uint16, len(data))
	for i, b := range data {
		out[i] = e.EncodeByte(b)
	}
	return out
}

// Decoder8b10b is a stateless table decoder (disparity errors are detected
// as invalid symbols only when the sub-block is not in any column).
type Decoder8b10b struct {
	dec6 map[uint8]uint8
	dec4 map[uint8]uint8
}

// NewDecoder8b10b builds the reverse tables.
func NewDecoder8b10b() *Decoder8b10b {
	d := &Decoder8b10b{
		dec6: make(map[uint8]uint8, 64),
		dec4: make(map[uint8]uint8, 16),
	}
	for v, cols := range enc6 {
		d.dec6[cols[0]] = uint8(v)
		d.dec6[cols[1]] = uint8(v)
	}
	for v, cols := range enc4 {
		d.dec4[cols[0]] = uint8(v)
		d.dec4[cols[1]] = uint8(v)
	}
	d.dec4[a7[0]] = 7
	d.dec4[a7[1]] = 7
	return d
}

// ErrInvalidSymbol is returned for a 10-bit value outside the code.
var ErrInvalidSymbol = errors.New("linecode: invalid 8b/10b symbol")

// IsComma reports whether the symbol is a K28.5 comma.
func IsComma(sym uint16) bool {
	return sym == k285[0] || sym == k285[1]
}

// DecodeSymbol decodes one 10-bit symbol to a byte. Commas decode with
// comma=true.
func (d *Decoder8b10b) DecodeSymbol(sym uint16) (b byte, comma bool, err error) {
	if IsComma(sym) {
		return 0xbc, true, nil // K28.5's data pattern is 0xBC
	}
	six := uint8(sym>>4) & 0x3f
	four := uint8(sym) & 0x0f
	x, ok := d.dec6[six]
	if !ok {
		return 0, false, fmt.Errorf("%w: 6b group %06b", ErrInvalidSymbol, six)
	}
	y, ok := d.dec4[four]
	if !ok {
		return 0, false, fmt.Errorf("%w: 4b group %04b", ErrInvalidSymbol, four)
	}
	return y<<5 | x, false, nil
}

// Decode decodes symbols to bytes, skipping commas. It stops at the first
// invalid symbol and returns what it has plus the error.
func (d *Decoder8b10b) Decode(syms []uint16) ([]byte, error) {
	out := make([]byte, 0, len(syms))
	for _, s := range syms {
		b, comma, err := d.DecodeSymbol(s)
		if err != nil {
			return out, err
		}
		if !comma {
			out = append(out, b)
		}
	}
	return out, nil
}

// SymbolDisparity returns the disparity (ones minus zeros) of a 10-bit
// symbol: -2, 0, or +2 for valid symbols.
func SymbolDisparity(sym uint16) int {
	n := 0
	for i := 0; i < 10; i++ {
		n += int(sym>>uint(i)) & 1
	}
	return n*2 - 10
}

// MaxRunLength returns the length of the longest run of identical bits in
// the packed 10-bit symbol stream (for code-property tests).
func MaxRunLength(syms []uint16) int {
	best, cur := 0, 0
	last := byte(0xff)
	for _, s := range syms {
		for i := 9; i >= 0; i-- { // transmit MSB (bit 'a') first
			bit := byte(s>>uint(i)) & 1
			if bit == last {
				cur++
			} else {
				cur = 1
				last = bit
			}
			if cur > best {
				best = cur
			}
		}
	}
	return best
}
