package linecode

import (
	"errors"
	"fmt"
)

// 64b/66b block coding (IEEE 802.3 clause 49, simplified): each 66-bit
// block is a 2-bit sync header plus 64 payload bits. The sync header is the
// only unscrambled part of the stream and carries the block alignment; its
// guaranteed 01/10 transition bounds the run length without per-bit
// overhead (~3% vs 25% for 8b/10b).
//
// This implementation supports the block formats a framing PHY needs: all
// data, idle, start-of-frame (S0: start + 7 data bytes), and
// terminate-with-n-data-bytes (T0..T7). Control-character payloads beyond
// idle are not modelled — Mosaic is protocol agnostic and only moves
// opaque 64-bit words plus frame delineation.

// Sync header values.
const (
	SyncData byte = 0b01
	SyncCtrl byte = 0b10
)

// Control block type bytes (payload byte 0 of a control block).
const (
	typeIdle  byte = 0x1e
	typeStart byte = 0x78
)

// termType[n] is the block type byte for "terminate after n data bytes".
var termType = [8]byte{0x87, 0x99, 0xaa, 0xb4, 0xcc, 0xd2, 0xe1, 0xff}

// BlockKind discriminates decoded block contents.
type BlockKind int

// Block kinds.
const (
	KindData  BlockKind = iota // 8 data bytes
	KindIdle                   // inter-frame idle
	KindStart                  // start of frame + 7 data bytes
	KindTerm                   // end of frame with 0..7 trailing data bytes
)

// String names the kind.
func (k BlockKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindIdle:
		return "idle"
	case KindStart:
		return "start"
	case KindTerm:
		return "term"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Block is one decoded 64b/66b block.
type Block struct {
	Kind    BlockKind
	Data    [8]byte // KindData: all 8; KindStart: Data[0:7]; KindTerm: Data[0:TermLen]
	TermLen int     // only for KindTerm: number of valid data bytes, 0..7
}

// DataBlock builds a data block from 8 bytes.
func DataBlock(b [8]byte) Block { return Block{Kind: KindData, Data: b} }

// IdleBlock builds an idle block.
func IdleBlock() Block { return Block{Kind: KindIdle} }

// StartBlock builds a start-of-frame block carrying the first 7 bytes.
func StartBlock(first7 [7]byte) Block {
	var b Block
	b.Kind = KindStart
	copy(b.Data[:7], first7[:])
	return b
}

// TermBlock builds a terminate block with n in [0,7] trailing data bytes.
func TermBlock(data []byte) (Block, error) {
	if len(data) > 7 {
		return Block{}, fmt.Errorf("linecode: terminate block holds at most 7 bytes, got %d", len(data))
	}
	var b Block
	b.Kind = KindTerm
	b.TermLen = len(data)
	copy(b.Data[:], data)
	return b, nil
}

// Encode serialises the block into its sync header and 64-bit payload.
func (b Block) Encode() (sync byte, payload [8]byte, err error) {
	switch b.Kind {
	case KindData:
		return SyncData, b.Data, nil
	case KindIdle:
		payload[0] = typeIdle
		return SyncCtrl, payload, nil
	case KindStart:
		payload[0] = typeStart
		copy(payload[1:], b.Data[:7])
		return SyncCtrl, payload, nil
	case KindTerm:
		if b.TermLen < 0 || b.TermLen > 7 {
			return 0, payload, fmt.Errorf("linecode: bad TermLen %d", b.TermLen)
		}
		payload[0] = termType[b.TermLen]
		copy(payload[1:1+b.TermLen], b.Data[:b.TermLen])
		return SyncCtrl, payload, nil
	default:
		return 0, payload, fmt.Errorf("linecode: unknown block kind %v", b.Kind)
	}
}

// Errors returned by DecodeBlock.
var (
	ErrBadSync      = errors.New("linecode: invalid sync header")
	ErrBadBlockType = errors.New("linecode: unknown control block type")
)

// DecodeBlock parses a sync header and payload back into a Block.
func DecodeBlock(sync byte, payload [8]byte) (Block, error) {
	switch sync {
	case SyncData:
		return Block{Kind: KindData, Data: payload}, nil
	case SyncCtrl:
		bt := payload[0]
		switch bt {
		case typeIdle:
			return Block{Kind: KindIdle}, nil
		case typeStart:
			var b Block
			b.Kind = KindStart
			copy(b.Data[:7], payload[1:])
			return b, nil
		}
		for n, tt := range termType {
			if bt == tt {
				var b Block
				b.Kind = KindTerm
				b.TermLen = n
				copy(b.Data[:n], payload[1:1+n])
				return b, nil
			}
		}
		// Return the bare sentinel: corrupted blocks are the common case on
		// a noisy stream, and wrapping would allocate per bad block.
		return Block{}, ErrBadBlockType
	default:
		return Block{}, ErrBadSync
	}
}

// Frame <-> block conversion: a frame is an opaque byte payload delimited
// by Start and Term blocks, with full Data blocks in between. This is the
// minimal MAC-agnostic framing the Mosaic gearbox needs.

// ErrBadFraming is returned when a block sequence does not form a frame,
// or a frame cannot be expressed as blocks.
var ErrBadFraming = errors.New("linecode: bad frame delineation")

// MinFrameLen is the smallest frame FrameToBlocks accepts: the start block
// always carries 7 payload bytes, so shorter frames would be ambiguous.
// (Real MACs never get near this: the Ethernet minimum is 64 bytes.)
const MinFrameLen = 7

// FrameToBlocks converts a payload into Start/Data/Term blocks.
func FrameToBlocks(frame []byte) ([]Block, error) {
	return AppendFrameBlocks(make([]Block, 0, 2+len(frame)/8), frame)
}

// AppendFrameBlocks is FrameToBlocks into a reusable slice: the frame's
// blocks are appended to dst and the extended slice returned.
func AppendFrameBlocks(dst []Block, frame []byte) ([]Block, error) {
	if len(frame) < MinFrameLen {
		return dst, fmt.Errorf("%w: frame of %d bytes below minimum %d", ErrBadFraming, len(frame), MinFrameLen)
	}
	var first7 [7]byte
	n := copy(first7[:], frame)
	dst = append(dst, StartBlock(first7))
	rest := frame[n:]
	for len(rest) >= 8 {
		var d [8]byte
		copy(d[:], rest[:8])
		dst = append(dst, DataBlock(d))
		rest = rest[8:]
	}
	tb, err := TermBlock(rest)
	if err != nil {
		// unreachable: rest < 8
		panic(err)
	}
	return append(dst, tb), nil
}

// BlocksToFrame reassembles a payload from a Start..Term block run.
// It returns the number of blocks consumed.
func BlocksToFrame(blocks []Block) ([]byte, int, error) {
	if len(blocks) == 0 || blocks[0].Kind != KindStart {
		return nil, 0, fmt.Errorf("%w: frame must begin with a start block", ErrBadFraming)
	}
	frame := make([]byte, 0, 64)
	frame = append(frame, blocks[0].Data[:7]...)
	for i := 1; i < len(blocks); i++ {
		switch blocks[i].Kind {
		case KindData:
			frame = append(frame, blocks[i].Data[:]...)
		case KindTerm:
			frame = append(frame, blocks[i].Data[:blocks[i].TermLen]...)
			// The start block always carries 7 bytes; short frames are
			// padded there, so trim via the length the blocks imply.
			return frame, i + 1, nil
		default:
			return nil, 0, fmt.Errorf("%w: unexpected %v block inside frame", ErrBadFraming, blocks[i].Kind)
		}
	}
	return nil, 0, fmt.Errorf("%w: missing terminate block", ErrBadFraming)
}
