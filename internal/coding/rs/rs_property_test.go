package rs

import (
	"math/rand"
	"testing"

	"mosaic/internal/coding/gf"
)

// TestCodewordLinearity: RS codes are linear — the sum (XOR) of two
// codewords is a codeword.
func TestCodewordLinearity(t *testing.T) {
	c := MustNew(gf.MustNew(8), 32, 24, 0)
	rng := rand.New(rand.NewSource(20))
	f := c.Field()
	for trial := 0; trial < 100; trial++ {
		a, _ := c.Encode(randData(rng, c))
		b, _ := c.Encode(randData(rng, c))
		sum := make([]int, c.N())
		for i := range sum {
			sum[i] = f.Add(a[i], b[i])
		}
		if _, clean := c.Syndromes(sum); !clean {
			t.Fatal("sum of codewords is not a codeword")
		}
	}
}

// TestBurstErrors: a contiguous burst of up to t symbols is just t symbol
// errors — RS corrects it without interleaving.
func TestBurstErrors(t *testing.T) {
	c := MustNew(gf.MustNew(8), 64, 48, 0) // t=8
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		d := randData(rng, c)
		w, _ := c.Encode(d)
		r := make([]int, len(w))
		copy(r, w)
		burstLen := 1 + rng.Intn(c.T())
		start := rng.Intn(c.N() - burstLen)
		for i := start; i < start+burstLen; i++ {
			r[i] ^= 1 + rng.Intn(255)
		}
		got, n, err := c.Decode(r)
		if err != nil {
			t.Fatalf("burst of %d at %d: %v", burstLen, start, err)
		}
		if n != burstLen {
			// Some burst symbols may XOR to the original value; n <= burstLen.
			if n > burstLen {
				t.Fatalf("corrected %d > burst %d", n, burstLen)
			}
		}
		data := c.Data(got)
		for i := range d {
			if data[i] != d[i] {
				t.Fatal("burst decode corrupted data")
			}
		}
	}
}

// TestErasureCapacityBoundary: exactly n-k erasures decode; n-k+1 must be
// rejected up front.
func TestErasureCapacityBoundary(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	rng := rand.New(rand.NewSource(22))
	d := randData(rng, c)
	w, _ := c.Encode(d)
	r := make([]int, len(w))
	copy(r, w)
	positions := rng.Perm(c.N())[:c.Parity()]
	for _, p := range positions {
		r[p] = rng.Intn(256)
	}
	got, _, err := c.DecodeErasures(r, positions)
	if err != nil {
		t.Fatalf("n-k erasures should decode: %v", err)
	}
	data := c.Data(got)
	for i := range d {
		if data[i] != d[i] {
			t.Fatal("erasure-capacity decode corrupted data")
		}
	}
}

// TestSystematicShiftInvariance: encoding all-zero data gives the zero
// codeword (linearity's identity).
func TestZeroCodeword(t *testing.T) {
	c := MustNew(gf.MustNew(10), 100, 80, 0)
	w, err := c.Encode(make([]int, c.K()))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range w {
		if s != 0 {
			t.Fatalf("zero data produced nonzero symbol at %d", i)
		}
	}
}

// TestScaledCodeword: scaling a codeword by a field constant keeps it a
// codeword (linearity over GF).
func TestScaledCodeword(t *testing.T) {
	c := MustNew(gf.MustNew(8), 32, 24, 0)
	f := c.Field()
	rng := rand.New(rand.NewSource(23))
	w, _ := c.Encode(randData(rng, c))
	for _, k := range []int{2, 7, 255} {
		scaled := make([]int, len(w))
		for i, s := range w {
			scaled[i] = f.Mul(s, k)
		}
		if _, clean := c.Syndromes(scaled); !clean {
			t.Fatalf("scaling by %d broke the codeword", k)
		}
	}
}

// TestDecodeAtExactlyTPlusOne: t+1 random errors must virtually never
// decode silently back to the *original* data.
func TestDecodeBeyondCapacityNeverRestoresSilently(t *testing.T) {
	c := MustNew(gf.MustNew(8), 24, 16, 0) // t=4
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 200; trial++ {
		d := randData(rng, c)
		w, _ := c.Encode(d)
		r := corrupt(rng, w, c.T()+1, 256)
		got, _, err := c.Decode(r)
		if err != nil {
			continue // detected: fine
		}
		// Miscorrection happened (legal); it must not equal the original
		// (that would mean we "corrected" t+1 errors, impossible).
		same := true
		data := c.Data(got)
		for i := range d {
			if data[i] != d[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("decoded t+1 errors back to original data")
		}
	}
}
