package rs

import "mosaic/internal/coding/gf"

// Codec8 is the byte-domain fast path for short codes over GF(2^8) with
// at most 8 parity symbols — the RS-lite class the PHY runs on every lane
// of every superframe. It trades the general int-symbol API for three
// table-driven kernels:
//
//   - Encode: the systematic parity is linear in the data, so the LFSR
//     division register (np bytes, packed in one uint64) is precomputed
//     per data position: contrib[i][v] is the final remainder of a
//     message that is zero everywhere except byte value v at position i.
//     Encoding is then one table load and one XOR per data byte with no
//     loop-carried dependency — the loads pipeline, unlike the serial
//     feedback register they replace.
//   - Syndromes: Horner evaluation where the per-syndrome multiplier row
//     of the 256×256 product table (gf.MulTable8) is hoisted out of the
//     inner loop — one dependent load per received byte per syndrome.
//   - Decode: the same syndromes → Berlekamp-Massey → Chien → Forney
//     decision procedure as Code.DecodeErasures (with no erasures), run
//     over fixed-size stack arrays so a dirty block decodes without a
//     single heap allocation.
//
// A Codec8 makes exactly the accept/reject decisions of the reference
// path: same bounded-distance guard, same Chien root-count check, same
// final syndrome verification. That equivalence is what the rs_vector
// diffcheck stage pins against the naive refmodel decoder.
//
// A Codec8 is immutable after construction and safe for concurrent use;
// all mutable state is the caller's block and the decoder's stack frame.
type Codec8 struct {
	n, k, np, fcr int
	mul           *[256][256]byte
	genWord       [256]uint64   // genWord[fb] byte j = fb·gen[j]
	contrib       [][256]uint64 // contrib[i][v]: parity of v at data position i
	remMask       uint64        // low 8·np bits
	synMul        [8]byte       // alpha^(fcr+j): Horner multiplier per syndrome
	xinv          []byte        // xinv[i] = alpha^(-i), Chien probe per position
	xmag          []byte        // xmag[i] = alpha(i)^(1-fcr), Forney magnitude factor
	field         *gf.Field
}

// maxParity8 bounds the packed-register encode: 8 parity bytes fill the
// uint64 exactly. Every GF(2^8) code in this repo (RS-lite t≤3 class)
// fits; larger codes stay on the general path.
const maxParity8 = 8

// Codec8 returns the byte-domain fast codec for this code, or nil when
// the code is outside its envelope (field ≠ GF(2^8) or more than 8
// parity symbols). The codec is built once and cached on the Code.
func (c *Code) Codec8() *Codec8 {
	c.fast8Once.Do(func() {
		if c.field.M() != 8 || c.n-c.k > maxParity8 {
			return
		}
		c.fast8 = newCodec8(c)
	})
	return c.fast8
}

func newCodec8(c *Code) *Codec8 {
	f := c.field
	np := c.n - c.k
	cd := &Codec8{
		n:     c.n,
		k:     c.k,
		np:    np,
		fcr:   c.fcr,
		mul:   f.MulTable8(),
		field: f,
	}
	if np == 8 {
		cd.remMask = ^uint64(0)
	} else {
		cd.remMask = 1<<(8*np) - 1
	}
	for fb := 0; fb < 256; fb++ {
		var w uint64
		for j := 0; j < np; j++ {
			w |= uint64(cd.mul[fb][c.gen[j]]) << (8 * j)
		}
		cd.genWord[fb] = w
	}
	// contrib[i][v] = advance^i(genWord[v]): the remainder left by byte v
	// at data position i (i advance steps follow its feed). The register
	// update is GF(2)-linear in both the register and the input byte, so
	// the final remainder is the XOR of per-byte contributions.
	top := uint(8 * (np - 1))
	cd.contrib = make([][256]uint64, c.k)
	cd.contrib[0] = cd.genWord
	for i := 1; i < c.k; i++ {
		prev, cur := &cd.contrib[i-1], &cd.contrib[i]
		for v := 0; v < 256; v++ {
			rem := prev[v]
			fb := byte(rem >> top)
			cur[v] = ((rem << 8) & cd.remMask) ^ cd.genWord[fb]
		}
	}
	for j := 0; j < np; j++ {
		cd.synMul[j] = byte(f.Alpha(c.fcr + j))
	}
	cd.xinv = make([]byte, c.n)
	cd.xmag = make([]byte, c.n)
	for i := 0; i < c.n; i++ {
		cd.xinv[i] = byte(f.Alpha(-i))
		cd.xmag[i] = byte(f.Pow(f.Alpha(i), 1-c.fcr))
	}
	return cd
}

// N returns the codeword length in bytes.
func (cd *Codec8) N() int { return cd.n }

// K returns the data length in bytes.
func (cd *Codec8) K() int { return cd.k }

// Parity returns the parity length in bytes.
func (cd *Codec8) Parity() int { return cd.np }

// EncodeParity writes the np parity bytes of the systematic codeword for
// data into parity (len ≥ np). data holds the leading data bytes; any
// missing bytes up to k are treated as zero, matching the zero-padded
// tail block of the byte-stream FEC without the caller staging a padded
// copy. Byte i of data is codeword coefficient np+i, parity[j] is
// coefficient j — identical layout to Code.EncodeTo.
func (cd *Codec8) EncodeParity(parity, data []byte) {
	// Implicit zero padding at positions i ≥ len(data) contributes
	// nothing (contrib[i][0] == 0), so only the present bytes are
	// accumulated. The four independent accumulators let the table loads
	// pipeline; XOR order is irrelevant.
	var r0, r1, r2, r3 uint64
	i := 0
	for ; i+4 <= len(data); i += 4 {
		r0 ^= cd.contrib[i][data[i]]
		r1 ^= cd.contrib[i+1][data[i+1]]
		r2 ^= cd.contrib[i+2][data[i+2]]
		r3 ^= cd.contrib[i+3][data[i+3]]
	}
	for ; i < len(data); i++ {
		r0 ^= cd.contrib[i][data[i]]
	}
	rem := r0 ^ r1 ^ r2 ^ r3
	for j := 0; j < cd.np; j++ {
		parity[j] = byte(rem >> (8 * uint(j)))
	}
}

// Clean reports whether block (len n, coefficient order: parity first)
// is a codeword, without modifying it. A systematic codeword's parity is
// exactly the encoder's output for its data bytes, so one table-XOR
// encode pass answers the question np times cheaper than the syndrome
// check (which Decode still uses, since it needs the syndrome values).
func (cd *Codec8) Clean(block []byte) bool {
	var parity [maxParity8]byte
	cd.EncodeParity(parity[:cd.np], block[cd.np:])
	var diff byte
	for j := 0; j < cd.np; j++ {
		diff |= parity[j] ^ block[j]
	}
	return diff == 0
}

// syndromes fills syn and reports whether all are zero.
func (cd *Codec8) syndromes(syn *[maxParity8]byte, block []byte) bool {
	var dirty byte
	for j := 0; j < cd.np; j++ {
		row := &cd.mul[cd.synMul[j]]
		var acc byte
		for i := cd.n - 1; i >= 0; i-- {
			acc = row[acc] ^ block[i]
		}
		syn[j] = acc
		dirty |= acc
	}
	return dirty == 0
}

// polyEval8 evaluates p[:plen] at x with Horner's rule over the table.
func (cd *Codec8) polyEval8(p *[2*maxParity8 + 2]byte, plen int, x byte) byte {
	row := &cd.mul[x]
	var acc byte
	for i := plen - 1; i >= 0; i-- {
		acc = row[acc] ^ p[i]
	}
	return acc
}

// Decode corrects block (len n) in place and returns the number of byte
// corrections. On an uncorrectable block it returns ErrTooManyErrors and
// leaves block exactly as received. The decision procedure — including
// the bounded-distance guard, the Chien root-count check, and the final
// syndrome verification — matches Code.DecodeErasures(block, nil).
func (cd *Codec8) Decode(block []byte) (int, error) {
	var syn [maxParity8]byte
	if cd.syndromes(&syn, block) {
		return 0, nil
	}
	mul := cd.mul
	np := cd.np

	// Berlekamp-Massey over fixed arrays; lengths mirror the reference
	// polynomial slices exactly (trailing zeros included) so the
	// discrepancy loop bound `i < len(lambda)` agrees step for step.
	var lambda, bpoly, tmp [2*maxParity8 + 2]byte
	lambda[0], bpoly[0] = 1, 1
	lambdaLen, bLen := 1, 1
	l, m := 0, 1
	bcoef := byte(1)
	for nn := 0; nn < np; nn++ {
		d := syn[nn]
		for i := 1; i <= l && i < lambdaLen; i++ {
			if nn-i >= 0 {
				d ^= mul[lambda[i]][syn[nn-i]]
			}
		}
		if d == 0 {
			m++
			continue
		}
		coef := byte(cd.field.Div(int(d), int(bcoef)))
		newLen := m + bLen
		if lambdaLen > newLen {
			newLen = lambdaLen
		}
		if 2*l <= nn {
			copy(tmp[:], lambda[:lambdaLen])
			tmpLen := lambdaLen
			for i := 0; i < bLen; i++ {
				lambda[m+i] ^= mul[coef][bpoly[i]]
			}
			lambdaLen = newLen
			l = nn + 1 - l
			copy(bpoly[:], tmp[:tmpLen])
			for i := tmpLen; i < bLen; i++ {
				bpoly[i] = 0
			}
			bLen = tmpLen
			bcoef = d
			m = 1
		} else {
			for i := 0; i < bLen; i++ {
				lambda[m+i] ^= mul[coef][bpoly[i]]
			}
			lambdaLen = newLen
			m++
		}
	}
	// With no erasures Psi = Lambda; its degree is the claimed error count.
	nerr := -1
	for i := lambdaLen - 1; i >= 0; i-- {
		if lambda[i] != 0 {
			nerr = i
			break
		}
	}
	if nerr < 0 {
		return 0, ErrTooManyErrors
	}
	if nerr == 0 {
		// Psi constant: the Chien search finds no roots, the empty
		// correction cannot clear nonzero syndromes — reference path
		// reports uncorrectable after its final verify.
		return 0, ErrTooManyErrors
	}
	// Bounded-distance guard: 2v must not exceed n-k.
	if 2*nerr > np {
		return 0, ErrTooManyErrors
	}
	psiLen := nerr + 1

	// Chien search over all n positions.
	var positions [maxParity8]int
	npos := 0
	for i := 0; i < cd.n; i++ {
		if cd.polyEval8(&lambda, psiLen, cd.xinv[i]) == 0 {
			if npos < len(positions) {
				positions[npos] = i
			}
			npos++
		}
	}
	if npos != nerr {
		return 0, ErrTooManyErrors
	}

	// Forney: Omega = S·Psi mod x^np, dPsi = formal derivative.
	var omega, dpsi [2*maxParity8 + 2]byte
	for i := 0; i < np; i++ {
		if syn[i] == 0 {
			continue
		}
		row := &mul[syn[i]]
		for j := 0; j < psiLen && i+j < np; j++ {
			omega[i+j] ^= row[lambda[j]]
		}
	}
	for i := 1; i < psiLen; i += 2 {
		dpsi[i-1] = lambda[i]
	}
	var mags [maxParity8]byte
	for pi := 0; pi < npos; pi++ {
		pos := positions[pi]
		x := cd.xinv[pos]
		den := cd.polyEval8(&dpsi, psiLen-1, x)
		if den == 0 {
			return 0, ErrTooManyErrors
		}
		num := cd.polyEval8(&omega, np, x)
		mags[pi] = mul[cd.xmag[pos]][byte(cd.field.Div(int(num), int(den)))]
	}

	// Apply, verify, and revert if the "correction" is not a codeword.
	for pi := 0; pi < npos; pi++ {
		block[positions[pi]] ^= mags[pi]
	}
	var check [maxParity8]byte
	if !cd.syndromes(&check, block) {
		for pi := 0; pi < npos; pi++ {
			block[positions[pi]] ^= mags[pi]
		}
		return 0, ErrTooManyErrors
	}
	return npos, nil
}
