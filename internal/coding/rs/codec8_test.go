package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// codec8Codes lists the GF(2^8) codes inside the fast-codec envelope
// that the PHY actually runs.
func codec8Codes(t *testing.T) []*Code {
	t.Helper()
	var out []*Code
	for _, p := range [][2]int{{68, 64}, {24, 18}, {15, 11}} {
		c, err := Lite(p[0], p[1])
		if err != nil {
			t.Fatalf("Lite(%d,%d): %v", p[0], p[1], err)
		}
		out = append(out, c)
	}
	return out
}

func TestCodec8Envelope(t *testing.T) {
	for _, c := range codec8Codes(t) {
		cd := c.Codec8()
		if cd == nil {
			t.Fatalf("%v: inside the envelope but Codec8() == nil", c)
		}
		if cd.N() != c.N() || cd.K() != c.K() || cd.Parity() != c.Parity() {
			t.Errorf("%v: codec geometry %d/%d/%d != code %d/%d/%d",
				c, cd.N(), cd.K(), cd.Parity(), c.N(), c.K(), c.Parity())
		}
		if c.Codec8() != cd {
			t.Errorf("%v: Codec8 not cached", c)
		}
	}
	// KP4 lives in GF(2^10): outside the byte-domain envelope.
	if KP4().Codec8() != nil {
		t.Error("KP4 (m=10) should have no byte-domain fast codec")
	}
}

// TestCodec8EncodeParityMatchesLFSR pins the contrib-table encoder
// against the general LFSR encoder (Code.EncodeTo) on random data,
// including short data slices whose implicit zero padding must
// contribute nothing.
func TestCodec8EncodeParityMatchesLFSR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range codec8Codes(t) {
		cd := c.Codec8()
		n, k, np := c.N(), c.K(), c.Parity()
		ref := make([]int, n)
		data := make([]int, k)
		parity := make([]byte, np)
		for trial := 0; trial < 200; trial++ {
			dlen := 1 + rng.Intn(k) // short slices exercise the padding
			if trial%4 == 0 {
				dlen = k
			}
			dataB := make([]byte, dlen)
			rng.Read(dataB)
			for i := range data {
				data[i] = 0
				if i < dlen {
					data[i] = int(dataB[i])
				}
			}
			if err := c.EncodeTo(ref, data); err != nil {
				t.Fatalf("%v: EncodeTo: %v", c, err)
			}
			cd.EncodeParity(parity, dataB)
			for j := 0; j < np; j++ {
				if int(parity[j]) != ref[j] {
					t.Fatalf("%v trial %d (dlen %d): parity[%d] = %d, LFSR says %d",
						c, trial, dlen, j, parity[j], ref[j])
				}
			}
		}
	}
}

// TestCodec8CleanIsCodewordTest checks that Clean accepts exactly the
// codewords: every encode output passes, and any single-byte corruption
// fails (distance ≥ np+1 > 1 for all these codes).
func TestCodec8CleanIsCodewordTest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, c := range codec8Codes(t) {
		cd := c.Codec8()
		n, k := c.N(), c.K()
		for trial := 0; trial < 100; trial++ {
			data := make([]byte, k)
			rng.Read(data)
			block := make([]byte, n)
			cd.EncodeParity(block[:n-k], data)
			copy(block[n-k:], data)
			if !cd.Clean(block) {
				t.Fatalf("%v: Clean rejected a codeword", c)
			}
			pos := rng.Intn(n)
			block[pos] ^= byte(1 + rng.Intn(255))
			if cd.Clean(block) {
				t.Fatalf("%v: Clean accepted a corrupted block (byte %d)", c, pos)
			}
		}
	}
}

// TestCodec8DecodeMatchesReference drives the stack-array decoder and
// the general int-symbol decoder over identical received words with
// 0..t+2 errors — spanning clean, correctable, and overloaded blocks,
// the beyond-t patterns included — and requires identical bytes,
// correction counts, and accept/reject decisions.
func TestCodec8DecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range codec8Codes(t) {
		cd := c.Codec8()
		n, k := c.N(), c.K()
		for trial := 0; trial < 300; trial++ {
			data := make([]int, k)
			for i := range data {
				data[i] = rng.Intn(256)
			}
			cw, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			nerr := rng.Intn(c.T() + 3)
			recv := append([]int(nil), cw...)
			for _, pos := range rng.Perm(n)[:nerr] {
				recv[pos] ^= 1 + rng.Intn(255)
			}
			refOut, refCorr, refErr := c.DecodeErasures(append([]int(nil), recv...), nil)

			blk := make([]byte, n)
			for i, s := range recv {
				blk[i] = byte(s)
			}
			got := append([]byte(nil), blk...)
			corr, err := cd.Decode(got)
			if (err != nil) != (refErr != nil) {
				t.Fatalf("%v trial %d (%d errors): codec err %v, reference err %v",
					c, trial, nerr, err, refErr)
			}
			if err != nil {
				if !errors.Is(err, ErrTooManyErrors) {
					t.Fatalf("%v: unexpected error type %v", c, err)
				}
				// Uncorrectable: the block must be exactly as received.
				if !bytes.Equal(got, blk) {
					t.Fatalf("%v trial %d: failed decode modified the block", c, trial)
				}
				continue
			}
			if corr != refCorr {
				t.Fatalf("%v trial %d (%d errors): corrections %d, reference %d",
					c, trial, nerr, corr, refCorr)
			}
			for i := range refOut {
				if int(got[i]) != refOut[i] {
					t.Fatalf("%v trial %d: byte %d is %d, reference %d",
						c, trial, i, got[i], refOut[i])
				}
			}
		}
	}
}

func TestCachedCodeSharesInstances(t *testing.T) {
	a, err := Lite(68, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lite(68, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Lite(68,64) returned distinct codes; want one shared instance")
	}
	if KP4() != KP4() || KR4() != KR4() {
		t.Error("KP4/KR4 not cached")
	}
	if _, err := Lite(3, 5); err == nil {
		t.Error("Lite(3,5) (k >= n) should error")
	}
}
