package rs

import (
	"errors"
	"math/rand"
	"testing"

	"mosaic/internal/coding/gf"
)

func TestMustNew(t *testing.T) {
	c := MustNew(gf.MustNew(8), 68, 64, 0)
	if c.T() != 2 {
		t.Fatalf("MustNew(68,64) t=%d, want 2", c.T())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with k >= n did not panic")
		}
	}()
	MustNew(gf.MustNew(8), 10, 10, 0)
}

// TestEncodeTo checks the allocation-free encoder against Encode on random
// data and exercises every argument-validation path.
func TestEncodeTo(t *testing.T) {
	c, err := Lite(24, 18)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	out := make([]int, c.N())
	for trial := 0; trial < 50; trial++ {
		data := randData(rng, c)
		want, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EncodeTo(out, data); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("EncodeTo differs from Encode at symbol %d", i)
			}
		}
	}
	if err := c.EncodeTo(out, make([]int, c.K()-1)); err == nil {
		t.Error("short data accepted")
	}
	if err := c.EncodeTo(make([]int, c.N()-1), make([]int, c.K())); err == nil {
		t.Error("short out accepted")
	}
	bad := make([]int, c.K())
	bad[3] = 256
	if err := c.EncodeTo(out, bad); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

// TestDecodeTo covers the clean fast path, the correction fallback, the
// uncorrectable path, and the scratch-length validation.
func TestDecodeTo(t *testing.T) {
	c, err := Lite(24, 18)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	out := make([]int, c.N())
	syn := make([]int, c.N()-c.K())
	for trial := 0; trial < 50; trial++ {
		cw, err := c.Encode(randData(rng, c))
		if err != nil {
			t.Fatal(err)
		}
		for nerr := 0; nerr <= c.T(); nerr++ {
			recv := corrupt(rng, cw, nerr, c.Field().Size())
			ncorr, err := c.DecodeTo(out, recv, syn)
			if err != nil {
				t.Fatalf("%d errors: %v", nerr, err)
			}
			if ncorr != nerr {
				t.Fatalf("corrected %d symbols, injected %d", ncorr, nerr)
			}
			for i := range out {
				if out[i] != cw[i] {
					t.Fatalf("%d errors: symbol %d not restored", nerr, i)
				}
			}
		}
	}
	// Uncorrectable: overwhelm the code and require an explicit error.
	cw, _ := c.Encode(randData(rng, c))
	uncorrectableSeen := false
	for trial := 0; trial < 20 && !uncorrectableSeen; trial++ {
		recv := corrupt(rng, cw, c.T()+2, c.Field().Size())
		if _, err := c.DecodeTo(out, recv, syn); errors.Is(err, ErrTooManyErrors) {
			uncorrectableSeen = true
		}
	}
	if !uncorrectableSeen {
		t.Error("t+2 errors never reported as uncorrectable")
	}
	if _, err := c.DecodeTo(out, make([]int, c.N()-1), syn); err == nil {
		t.Error("short received accepted")
	}
	if _, err := c.DecodeTo(out, make([]int, c.N()), make([]int, 1)); err == nil {
		t.Error("short syndrome scratch accepted")
	}
}

// TestDecodeErasureBounds exercises the erasure-argument validation and
// the 2v+e budget boundary: n-k erasures alone are correctable, one more
// is not, and erasures combined with errors respect the shared budget.
func TestDecodeErasureBounds(t *testing.T) {
	c, err := Lite(24, 18) // n-k = 6, t = 3
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	cw, err := c.Encode(randData(rng, c))
	if err != nil {
		t.Fatal(err)
	}
	np := c.N() - c.K()

	// Exactly n-k erasures: correctable.
	recv := make([]int, len(cw))
	copy(recv, cw)
	positions := rng.Perm(c.N())[:np]
	for _, p := range positions {
		recv[p] ^= 1 + rng.Intn(255)
	}
	fixed, ncorr, err := c.DecodeErasures(recv, positions)
	if err != nil {
		t.Fatalf("n-k erasures: %v", err)
	}
	if ncorr != np {
		t.Fatalf("n-k erasures: corrected %d, want %d", ncorr, np)
	}
	for i := range fixed {
		if fixed[i] != cw[i] {
			t.Fatalf("n-k erasures: symbol %d not restored", i)
		}
	}

	// One more than n-k erasure positions: rejected up front.
	if _, _, err := c.DecodeErasures(recv, rng.Perm(c.N())[:np+1]); err == nil {
		t.Error("n-k+1 erasures accepted")
	}
	// Out-of-range erasure position: rejected.
	if _, _, err := c.DecodeErasures(recv, []int{c.N()}); err == nil {
		t.Error("out-of-range erasure position accepted")
	}
	// Wrong word length: rejected.
	if _, _, err := c.DecodeErasures(make([]int, c.N()-1), nil); err == nil {
		t.Error("short word accepted")
	}

	// Budget boundary: e erasures leave room for (n-k-e)/2 errors.
	for e := 0; e <= np; e += 2 {
		v := (np - e) / 2
		recv := make([]int, len(cw))
		copy(recv, cw)
		perm := rng.Perm(c.N())
		for _, p := range perm[:e+v] {
			recv[p] ^= 1 + rng.Intn(255)
		}
		fixed, _, err := c.DecodeErasures(recv, perm[:e])
		if err != nil {
			t.Fatalf("e=%d v=%d inside budget: %v", e, v, err)
		}
		for i := range fixed {
			if fixed[i] != cw[i] {
				t.Fatalf("e=%d v=%d: symbol %d not restored", e, v, i)
			}
		}
	}
}

// TestBoundedDistanceGuard pins the miscorrection bug found by
// FuzzRSLiteDecode: a received word at distance t+1 from a codeword must
// never decode "successfully" to that codeword — bounded-distance decoding
// only claims the radius-t ball.
func TestBoundedDistanceGuard(t *testing.T) {
	c, err := Lite(68, 64) // t = 2
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 200; trial++ {
		cw, err := c.Encode(randData(rng, c))
		if err != nil {
			t.Fatal(err)
		}
		recv := corrupt(rng, cw, c.T()+1, c.Field().Size())
		fixed, ncorr, err := c.Decode(recv)
		if err != nil {
			continue // detected as uncorrectable: correct behavior
		}
		// A successful decode must have landed on a codeword within
		// distance t of the received word — never further.
		if ncorr > c.T() {
			t.Fatalf("decoder claimed %d corrections with t=%d", ncorr, c.T())
		}
		dist := 0
		for i := range fixed {
			if fixed[i] != recv[i] {
				dist++
			}
		}
		if dist > c.T() {
			t.Fatalf("decoder accepted a codeword at distance %d with t=%d", dist, c.T())
		}
	}
}
