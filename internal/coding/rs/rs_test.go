package rs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mosaic/internal/coding/gf"
)

func randData(rng *rand.Rand, c *Code) []int {
	d := make([]int, c.K())
	for i := range d {
		d[i] = rng.Intn(c.Field().Size())
	}
	return d
}

func corrupt(rng *rand.Rand, word []int, nerr, size int) []int {
	out := make([]int, len(word))
	copy(out, word)
	positions := rng.Perm(len(word))[:nerr]
	for _, p := range positions {
		old := out[p]
		for out[p] == old {
			out[p] = rng.Intn(size)
		}
	}
	return out
}

func TestConstructors(t *testing.T) {
	if KP4().T() != 15 || KP4().N() != 544 || KP4().K() != 514 {
		t.Error("KP4 parameters wrong")
	}
	if KR4().T() != 7 {
		t.Error("KR4 parameters wrong")
	}
	lite, err := Lite(68, 64)
	if err != nil || lite.T() != 2 {
		t.Errorf("Lite(68,64): %v, t=%d", err, lite.T())
	}
	if _, err := New(gf.MustNew(8), 300, 100, 0); err == nil {
		t.Error("n > field order accepted")
	}
	if _, err := New(gf.MustNew(8), 100, 100, 0); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := New(nil, 10, 5, 0); err == nil {
		t.Error("nil field accepted")
	}
}

func TestEncodeProducesCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []*Code{MustNew(gf.MustNew(8), 20, 12, 0), KR4()} {
		for i := 0; i < 20; i++ {
			w, err := c.Encode(randData(rng, c))
			if err != nil {
				t.Fatal(err)
			}
			if len(w) != c.N() {
				t.Fatalf("codeword length %d != n %d", len(w), c.N())
			}
			if _, clean := c.Syndromes(w); !clean {
				t.Fatal("encoded word has nonzero syndromes")
			}
		}
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	rng := rand.New(rand.NewSource(2))
	d := randData(rng, c)
	w, err := c.Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Data(w)
	for i := range d {
		if got[i] != d[i] {
			t.Fatalf("systematic data mismatch at %d", i)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	if _, err := c.Encode(make([]int, 5)); err == nil {
		t.Error("short data accepted")
	}
	bad := make([]int, 12)
	bad[3] = 999
	if _, err := c.Encode(bad); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

func TestDecodeCleanWord(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	rng := rand.New(rand.NewSource(3))
	w, _ := c.Encode(randData(rng, c))
	got, n, err := c.Decode(w)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("clean word modified")
		}
	}
}

func TestDecodeCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	codes := []*Code{
		MustNew(gf.MustNew(8), 20, 12, 0),   // t=4
		MustNew(gf.MustNew(8), 68, 64, 0),   // t=2, the Mosaic-lite class
		MustNew(gf.MustNew(10), 100, 80, 0), // t=10
	}
	for _, c := range codes {
		for trial := 0; trial < 50; trial++ {
			d := randData(rng, c)
			w, _ := c.Encode(d)
			nerr := 1 + rng.Intn(c.T())
			r := corrupt(rng, w, nerr, c.Field().Size())
			got, n, err := c.Decode(r)
			if err != nil {
				t.Fatalf("%v: decode failed with %d errors: %v", c, nerr, err)
			}
			if n != nerr {
				t.Fatalf("%v: corrected %d, injected %d", c, n, nerr)
			}
			data := c.Data(got)
			for i := range d {
				if data[i] != d[i] {
					t.Fatalf("%v: data corrupted after decode", c)
				}
			}
		}
	}
}

func TestDecodeKP4FullLoad(t *testing.T) {
	c := KP4()
	rng := rand.New(rand.NewSource(5))
	d := randData(rng, c)
	w, _ := c.Encode(d)
	r := corrupt(rng, w, c.T(), c.Field().Size()) // all 15 errors
	got, n, err := c.Decode(r)
	if err != nil || n != c.T() {
		t.Fatalf("KP4 at full load: n=%d err=%v", n, err)
	}
	data := c.Data(got)
	for i := range d {
		if data[i] != d[i] {
			t.Fatal("KP4 data corrupted")
		}
	}
}

func TestDecodeDetectsOverload(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0) // t=4
	rng := rand.New(rand.NewSource(6))
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		w, _ := c.Encode(randData(rng, c))
		r := corrupt(rng, w, c.T()+3, c.Field().Size())
		if _, _, err := c.Decode(r); err != nil {
			detected++
		}
	}
	// Beyond-capacity words are usually flagged (miscorrection is rare but
	// legal for RS). Require a strong majority detected.
	if detected < trials*80/100 {
		t.Errorf("only %d/%d overloaded words detected", detected, trials)
	}
}

func TestDecodeErasuresOnly(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0) // n-k = 8: up to 8 erasures
	rng := rand.New(rand.NewSource(7))
	d := randData(rng, c)
	w, _ := c.Encode(d)
	r := make([]int, len(w))
	copy(r, w)
	erasures := []int{1, 4, 9, 13, 17, 19, 0, 6}
	for _, p := range erasures {
		r[p] = rng.Intn(c.Field().Size())
	}
	got, _, err := c.DecodeErasures(r, erasures)
	if err != nil {
		t.Fatalf("erasure decode: %v", err)
	}
	data := c.Data(got)
	for i := range d {
		if data[i] != d[i] {
			t.Fatal("erasure decode corrupted data")
		}
	}
}

func TestDecodeErrorsAndErasures(t *testing.T) {
	c := MustNew(gf.MustNew(8), 24, 16, 0) // n-k=8: 2v+e<=8
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		d := randData(rng, c)
		w, _ := c.Encode(d)
		r := make([]int, len(w))
		copy(r, w)
		// 2 errors + 4 erasures: 2*2+4 = 8 = n-k, exactly at capacity.
		perm := rng.Perm(c.N())
		erasures := perm[:4]
		errsAt := perm[4:6]
		for _, p := range erasures {
			r[p] = rng.Intn(c.Field().Size())
		}
		for _, p := range errsAt {
			old := r[p]
			for r[p] == old {
				r[p] = rng.Intn(c.Field().Size())
			}
		}
		got, _, err := c.DecodeErasures(r, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		data := c.Data(got)
		for i := range d {
			if data[i] != d[i] {
				t.Fatalf("trial %d: data corrupted", trial)
			}
		}
	}
}

func TestDecodeErasureValidation(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	w, _ := c.Encode(make([]int, 12))
	if _, _, err := c.DecodeErasures(w, []int{25}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
	if _, _, err := c.DecodeErasures(w, make([]int, 9)); err == nil {
		t.Error("too many erasures accepted")
	}
	if _, _, err := c.Decode(make([]int, 3)); err == nil {
		t.Error("short word accepted")
	}
}

func TestDecodeInputNotModified(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 0)
	rng := rand.New(rand.NewSource(9))
	w, _ := c.Encode(randData(rng, c))
	r := corrupt(rng, w, 2, 256)
	snapshot := make([]int, len(r))
	copy(snapshot, r)
	if _, _, err := c.Decode(r); err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if r[i] != snapshot[i] {
			t.Fatal("Decode modified its input")
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	c := MustNew(gf.MustNew(8), 32, 24, 0) // t=4
	rng := rand.New(rand.NewSource(10))
	prop := func(seed int64, rawN uint8) bool {
		local := rand.New(rand.NewSource(seed))
		d := randData(local, c)
		w, err := c.Encode(d)
		if err != nil {
			return false
		}
		nerr := int(rawN) % (c.T() + 1)
		r := w
		if nerr > 0 {
			r = corrupt(local, w, nerr, 256)
		}
		got, n, err := c.Decode(r)
		if err != nil || n != nerr {
			return false
		}
		data := c.Data(got)
		for i := range d {
			if data[i] != d[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestOverheadFraction(t *testing.T) {
	if got := KP4().OverheadFraction(); got < 0.058 || got > 0.059 {
		t.Errorf("KP4 overhead = %v, want ~5.84%%", got)
	}
	lite, _ := Lite(68, 64)
	if got := lite.OverheadFraction(); got != 4.0/64.0 {
		t.Errorf("Lite overhead = %v", got)
	}
}

func TestNonzeroFCR(t *testing.T) {
	c := MustNew(gf.MustNew(8), 20, 12, 1) // fcr=1 variant
	rng := rand.New(rand.NewSource(11))
	d := randData(rng, c)
	w, _ := c.Encode(d)
	r := corrupt(rng, w, 3, 256)
	got, n, err := c.Decode(r)
	if err != nil || n != 3 {
		t.Fatalf("fcr=1 decode: n=%d err=%v", n, err)
	}
	data := c.Data(got)
	for i := range d {
		if data[i] != d[i] {
			t.Fatal("fcr=1 data corrupted")
		}
	}
}

func TestStringer(t *testing.T) {
	if KP4().String() != "RS(544,514)/GF(2^10)" {
		t.Errorf("String = %q", KP4().String())
	}
}

func BenchmarkKP4Encode(b *testing.B) {
	c := KP4()
	rng := rand.New(rand.NewSource(1))
	d := randData(rng, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(d); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.K() * 10 / 8))
}

func BenchmarkKP4DecodeWorstCase(b *testing.B) {
	c := KP4()
	rng := rand.New(rand.NewSource(1))
	w, _ := c.Encode(randData(rng, c))
	r := corrupt(rng, w, c.T(), c.Field().Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decode(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.K() * 10 / 8))
}

func BenchmarkLiteDecode(b *testing.B) {
	c, _ := Lite(68, 64)
	rng := rand.New(rand.NewSource(1))
	w, _ := c.Encode(randData(rng, c))
	r := corrupt(rng, w, c.T(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decode(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(c.K()))
}
