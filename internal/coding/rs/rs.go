// Package rs implements systematic Reed-Solomon codes over GF(2^m), with a
// full hard-decision decoder (syndromes, Berlekamp-Massey, Chien search,
// Forney algorithm) and erasure support.
//
// Three code families matter to this reproduction:
//
//   - RS(544,514) over GF(2^10) — "KP4", the heavyweight FEC every 100G/lane
//     PAM4 Ethernet link must run, part of the DSP power Mosaic eliminates.
//   - RS(528,514) over GF(2^10) — "KR4", the lighter NRZ-era FEC.
//   - Short high-rate codes over GF(2^8) (e.g. RS(68,64)) — the class of
//     lightweight per-link FEC a wide-and-slow design can afford, because
//     each 2 Gbps channel is nearly error-free to begin with.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"mosaic/internal/coding/gf"
)

// Code is a systematic RS(n,k) code. Construct with New. A Code is
// immutable and safe for concurrent use.
type Code struct {
	field *gf.Field
	n, k  int
	t     int   // correctable symbol errors = (n-k)/2
	fcr   int   // first consecutive root exponent (alpha^fcr ... )
	gen   []int // generator polynomial, degree n-k, low-to-high

	// Lazily built byte-domain fast codec (codec8.go); nil outside its
	// envelope. Guarded by fast8Once so concurrent lanes share one build.
	fast8Once sync.Once
	fast8     *Codec8
}

// New builds RS(n,k) over the given field with first consecutive root
// alpha^fcr (0 is conventional). Requires 0 < k < n <= field.Order() and
// n-k even for a pure error-correcting code (odd n-k is allowed; the spare
// parity helps only with erasures).
func New(field *gf.Field, n, k, fcr int) (*Code, error) {
	if field == nil {
		return nil, errors.New("rs: nil field")
	}
	if k <= 0 || n <= k || n > field.Order() {
		return nil, fmt.Errorf("rs: invalid (n,k)=(%d,%d) for %v", n, k, field)
	}
	c := &Code{field: field, n: n, k: k, t: (n - k) / 2, fcr: fcr}
	// g(x) = prod_{i=0}^{n-k-1} (x - alpha^{fcr+i})
	g := []int{1}
	for i := 0; i < n-k; i++ {
		root := field.Alpha(fcr + i)
		g = field.PolyMul(g, []int{root, 1}) // (x + root) in char 2
	}
	c.gen = g
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(field *gf.Field, n, k, fcr int) *Code {
	c, err := New(field, n, k, fcr)
	if err != nil {
		panic(err)
	}
	return c
}

// codeCache shares Code instances for the canonical constructors below.
// A Code is immutable after construction (the lazily-built Codec8 hides
// behind a sync.Once), so handing every caller the same pointer is safe
// and means the generator polynomial and the Codec8's contribution
// tables are built once per process instead of once per link.
var codeCache sync.Map // (m<<32 | n<<16 | k) -> *Code

func cachedCode(m, n, k int) (*Code, error) {
	key := uint64(m)<<32 | uint64(n)<<16 | uint64(k)
	if c, ok := codeCache.Load(key); ok {
		return c.(*Code), nil
	}
	f, err := gf.Default(m)
	if err != nil {
		return nil, err
	}
	c, err := New(f, n, k, 0)
	if err != nil {
		return nil, err
	}
	actual, _ := codeCache.LoadOrStore(key, c)
	return actual.(*Code), nil
}

// KP4 returns RS(544,514) over GF(2^10): t=15, the 100G-per-lane Ethernet
// FEC (IEEE 802.3 clause 91/161 class).
func KP4() *Code {
	c, err := cachedCode(10, 544, 514)
	if err != nil {
		panic(err)
	}
	return c
}

// KR4 returns RS(528,514) over GF(2^10): t=7.
func KR4() *Code {
	c, err := cachedCode(10, 528, 514)
	if err != nil {
		panic(err)
	}
	return c
}

// Lite returns a short byte-oriented RS(n,k) over GF(2^8) suitable as a
// lightweight per-channel FEC (e.g. Lite(68,64) corrects t=2 bytes per
// 68-byte block at 6.25%% overhead). Every Lite code shares the
// process-wide GF(2^8) field — and the Code itself is cached, so the
// Codec8 fast-path tables behind it are built once per process.
func Lite(n, k int) (*Code, error) { return cachedCode(8, n, k) }

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols per codeword.
func (c *Code) K() int { return c.k }

// T returns the number of correctable symbol errors.
func (c *Code) T() int { return c.t }

// Parity returns the number of parity symbols, n-k.
func (c *Code) Parity() int { return c.n - c.k }

// OverheadFraction returns (n-k)/k, the rate overhead the code adds.
func (c *Code) OverheadFraction() float64 {
	return float64(c.n-c.k) / float64(c.k)
}

// Field returns the underlying field.
func (c *Code) Field() *gf.Field { return c.field }

// String identifies the code.
func (c *Code) String() string {
	return fmt.Sprintf("RS(%d,%d)/%v", c.n, c.k, c.field)
}

// Encode appends n-k parity symbols to the k data symbols and returns the
// n-symbol codeword (data first: systematic). Symbols must be in
// [0, field.Size()).
func (c *Code) Encode(data []int) ([]int, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: encode needs %d symbols, got %d", c.k, len(data))
	}
	for _, s := range data {
		if s < 0 || s >= c.field.Size() {
			return nil, fmt.Errorf("rs: symbol %d out of range for %v", s, c.field)
		}
	}
	// Systematic encoding: codeword = data·x^(n-k) + (data·x^(n-k) mod g).
	// We do polynomial long division with the data in high-order positions.
	np := c.n - c.k
	rem := make([]int, np) // remainder register, rem[0] is lowest order
	f := c.field
	for i := c.k - 1; i >= 0; i-- {
		// Feed data from the highest codeword power downward.
		feedback := f.Add(data[i], rem[np-1])
		for j := np - 1; j > 0; j-- {
			rem[j] = f.Add(rem[j-1], f.Mul(feedback, c.gen[j]))
		}
		rem[0] = f.Mul(feedback, c.gen[0])
	}
	out := make([]int, c.n)
	// Layout: out[0..np-1] = parity (low-order coefficients),
	// out[np..n-1] = data. Callers see data via Data().
	copy(out[:np], rem)
	copy(out[np:], data)
	return out, nil
}

// EncodeTo is Encode without allocation: it writes the n-symbol codeword
// into out (which must have length n), using out's parity section as the
// division register. data and out must not alias.
func (c *Code) EncodeTo(out, data []int) error {
	if len(data) != c.k {
		return fmt.Errorf("rs: encode needs %d symbols, got %d", c.k, len(data))
	}
	if len(out) != c.n {
		return fmt.Errorf("rs: EncodeTo needs an out of %d symbols, got %d", c.n, len(out))
	}
	for _, s := range data {
		if s < 0 || s >= c.field.Size() {
			return fmt.Errorf("rs: symbol %d out of range for %v", s, c.field)
		}
	}
	np := c.n - c.k
	f := c.field
	rem := out[:np]
	for i := range rem {
		rem[i] = 0
	}
	for i := c.k - 1; i >= 0; i-- {
		feedback := f.Add(data[i], rem[np-1])
		for j := np - 1; j > 0; j-- {
			rem[j] = f.Add(rem[j-1], f.Mul(feedback, c.gen[j]))
		}
		rem[0] = f.Mul(feedback, c.gen[0])
	}
	copy(out[np:], data)
	return nil
}

// Data extracts the k data symbols from a (possibly corrected) codeword.
func (c *Code) Data(codeword []int) []int {
	return codeword[c.n-c.k:]
}

// Syndromes computes the 2t syndromes of the received word. All-zero
// syndromes mean the word is a codeword.
func (c *Code) Syndromes(received []int) ([]int, bool) {
	syn := make([]int, c.n-c.k)
	clean := c.SyndromesInto(syn, received)
	return syn, clean
}

// SyndromesInto is Syndromes without allocation: it fills syn (which must
// have length n-k) and reports whether the word is clean.
func (c *Code) SyndromesInto(syn, received []int) bool {
	f := c.field
	np := c.n - c.k
	clean := true
	for j := 0; j < np; j++ {
		x := f.Alpha(c.fcr + j)
		s := f.PolyEval(received, x)
		syn[j] = s
		if s != 0 {
			clean = false
		}
	}
	return clean
}

// DecodeTo corrects received into out (both length n) using synScratch
// (length n-k) as syndrome scratch. The clean-word fast path — the common
// case for a channel running at its design BER — performs no allocation;
// corrupted words fall back to the full errors-and-erasures decoder.
func (c *Code) DecodeTo(out, received, synScratch []int) (int, error) {
	if len(received) != c.n || len(out) != c.n {
		return 0, fmt.Errorf("rs: DecodeTo needs %d symbols", c.n)
	}
	if len(synScratch) != c.n-c.k {
		return 0, fmt.Errorf("rs: DecodeTo needs %d syndrome scratch symbols", c.n-c.k)
	}
	if c.SyndromesInto(synScratch, received) {
		copy(out, received)
		return 0, nil
	}
	fixed, ncorr, err := c.DecodeErasures(received, nil)
	if err != nil {
		return 0, err
	}
	copy(out, fixed)
	return ncorr, nil
}

// ErrTooManyErrors is returned when the decoder detects an uncorrectable
// word (more than t symbol errors, or an inconsistent correction).
var ErrTooManyErrors = errors.New("rs: too many errors to correct")

// Decode corrects up to t symbol errors in place semantics: it returns the
// corrected codeword (a fresh slice), the number of symbols corrected, and
// an error if the word is uncorrectable. The input is not modified.
func (c *Code) Decode(received []int) ([]int, int, error) {
	return c.DecodeErasures(received, nil)
}

// DecodeErasures corrects errors and erasures. erasures lists known-bad
// positions (0-based codeword indices, where index 0 is the lowest-order
// parity symbol and n-1 the last data symbol). An RS code corrects e
// erasures and v errors when 2v+e <= n-k.
func (c *Code) DecodeErasures(received []int, erasures []int) ([]int, int, error) {
	if len(received) != c.n {
		return nil, 0, fmt.Errorf("rs: decode needs %d symbols, got %d", c.n, len(received))
	}
	f := c.field
	np := c.n - c.k
	if len(erasures) > np {
		return nil, 0, ErrTooManyErrors
	}
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, 0, fmt.Errorf("rs: erasure position %d out of range", e)
		}
	}
	syn, clean := c.Syndromes(received)
	if clean {
		out := make([]int, c.n)
		copy(out, received)
		return out, 0, nil
	}

	// Erasure locator: Gamma(x) = prod (1 - x·alpha^pos).
	gamma := []int{1}
	for _, pos := range erasures {
		gamma = f.PolyMul(gamma, []int{1, f.Alpha(pos)})
	}
	// Modified syndromes: Xi(x) = Gamma(x)·S(x) mod x^(n-k).
	xi := f.PolyMul(gamma, syn)
	if len(xi) > np {
		xi = xi[:np]
	} else {
		pad := make([]int, np)
		copy(pad, xi)
		xi = pad
	}

	// Berlekamp-Massey on the modified syndromes for the error locator.
	lambda := c.berlekampMassey(xi, len(erasures))
	// Full locator Psi = Lambda·Gamma.
	psi := f.PolyMul(lambda, gamma)
	nerr := gf.PolyDeg(psi)
	if nerr < 0 {
		return nil, 0, ErrTooManyErrors
	}
	// Bounded-distance guard: v errors plus e erasures are only
	// correctable when 2v+e <= n-k. Without this check a beyond-budget
	// received word can slip through Chien/Forney and the final syndrome
	// verification as a "successful" correction to a codeword at distance
	// greater than t — a miscorrection, not a decode.
	if v := nerr - len(erasures); v < 0 || 2*v+len(erasures) > np {
		return nil, 0, ErrTooManyErrors
	}

	// Chien search: roots of Psi give error positions.
	positions := make([]int, 0, nerr)
	for i := 0; i < c.n; i++ {
		// Position i has locator X = alpha^i; Psi(X^{-1}) == 0.
		if f.PolyEval(psi, f.Alpha(-i)) == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != nerr {
		return nil, 0, ErrTooManyErrors
	}

	// Forney: error evaluator Omega(x) = S(x)·Psi(x) mod x^(n-k).
	omega := f.PolyMul(syn, psi)
	if len(omega) > np {
		omega = omega[:np]
	}
	// Formal derivative of Psi (char 2: odd-power terms survive).
	dpsi := make([]int, 0, len(psi))
	for i := 1; i < len(psi); i += 2 {
		// derivative coefficient for x^{i-1} is psi[i] (i odd).
		for len(dpsi) < i {
			dpsi = append(dpsi, 0)
		}
		dpsi = append(dpsi, 0)
		dpsi[i-1] = psi[i]
	}

	out := make([]int, c.n)
	copy(out, received)
	for _, pos := range positions {
		xinv := f.Alpha(-pos)
		den := f.PolyEval(dpsi, xinv)
		if den == 0 {
			return nil, 0, ErrTooManyErrors
		}
		num := f.PolyEval(omega, xinv)
		// e = X^{1-fcr} · Omega(X^{-1}) / Psi'(X^{-1})
		mag := f.Mul(f.Pow(f.Alpha(pos), 1-c.fcr), f.Div(num, den))
		out[pos] = f.Add(out[pos], mag)
	}

	// Verify the correction really yields a codeword.
	if _, ok := c.Syndromes(out); !ok {
		return nil, 0, ErrTooManyErrors
	}
	return out, len(positions), nil
}

// berlekampMassey runs the Berlekamp-Massey recursion over the (modified)
// syndromes, starting from an effective erasure count, and returns the
// error-locator polynomial Lambda.
func (c *Code) berlekampMassey(syn []int, numErasures int) []int {
	f := c.field
	lambda := []int{1}
	b := []int{1}
	l := 0
	m := 1
	bcoef := 1
	for n := 0; n < len(syn)-numErasures; n++ {
		// Discrepancy.
		d := syn[n+numErasures]
		for i := 1; i <= l && i < len(lambda); i++ {
			if n+numErasures-i >= 0 {
				d = f.Add(d, f.Mul(lambda[i], syn[n+numErasures-i]))
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := make([]int, len(lambda))
			copy(tmp, lambda)
			// lambda = lambda - (d/bcoef)·x^m·b
			coef := f.Div(d, bcoef)
			shift := make([]int, m+len(b))
			for i, bi := range b {
				shift[m+i] = f.Mul(coef, bi)
			}
			lambda = f.PolyAdd(lambda, shift)
			l = n + 1 - l
			b = tmp
			bcoef = d
			m = 1
		} else {
			coef := f.Div(d, bcoef)
			shift := make([]int, m+len(b))
			for i, bi := range b {
				shift[m+i] = f.Mul(coef, bi)
			}
			lambda = f.PolyAdd(lambda, shift)
			m++
		}
	}
	// Trim trailing zeros.
	deg := gf.PolyDeg(lambda)
	if deg < 0 {
		return []int{1}
	}
	return lambda[:deg+1]
}
