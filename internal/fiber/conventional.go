package fiber

import (
	"errors"
	"math"
)

// Conventional models a standard telecom fiber (the optical-baseline
// medium): OM4 laser-optimised multimode for VCSEL AOCs, or G.652
// single-mode for DR/FR modules.
type Conventional struct {
	Name          string
	AttenDBPerM   float64 // attenuation, dB/m (telecom figures are dB/km)
	ModalBWLenHzM float64 // effective modal bandwidth·length, Hz·m (Inf for SMF)
	ConnectorDB   float64 // per-connector loss, dB
	SingleMode    bool
}

// OM4 returns laser-optimised 50 µm multimode fiber at 850 nm.
func OM4() Conventional {
	return Conventional{
		Name:          "OM4",
		AttenDBPerM:   2.3e-3,        // 2.3 dB/km
		ModalBWLenHzM: 4700e6 * 1000, // 4700 MHz·km EMB
		ConnectorDB:   0.3,
	}
}

// SMF returns G.652 single-mode fiber at 1310 nm.
func SMF() Conventional {
	return Conventional{
		Name:          "SMF-28",
		AttenDBPerM:   0.35e-3, // 0.35 dB/km at 1310
		ModalBWLenHzM: math.Inf(1),
		ConnectorDB:   0.25,
		SingleMode:    true,
	}
}

// Validate reports whether the parameters are meaningful.
func (c Conventional) Validate() error {
	if c.AttenDBPerM < 0 || c.ConnectorDB < 0 {
		return errors.New("fiber: negative loss")
	}
	if c.ModalBWLenHzM <= 0 {
		return errors.New("fiber: bandwidth-length product must be positive")
	}
	return nil
}

// AttenuationDB returns end-to-end loss in dB over length metres including
// one connector at each end.
func (c Conventional) AttenuationDB(lengthM float64) float64 {
	if lengthM <= 0 {
		return 2 * c.ConnectorDB
	}
	return c.AttenDBPerM*lengthM + 2*c.ConnectorDB
}

// ModalBandwidth returns the modal-dispersion-limited bandwidth (Hz) over
// the given length (infinite for single-mode fiber).
func (c Conventional) ModalBandwidth(lengthM float64) float64 {
	if math.IsInf(c.ModalBWLenHzM, 1) || lengthM <= 0 {
		return math.Inf(1)
	}
	return c.ModalBWLenHzM / lengthM
}
