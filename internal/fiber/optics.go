package fiber

import (
	"errors"
	"math"
)

// ImagingOptics models the lens system that images the microLED array onto
// the fiber facet (and the facet onto the photodiode array at the far
// end). It closes the loop between device geometry and the channel spot:
// the spot diameter is the LED diameter times the magnification, blurred
// by defocus; the lens NA sets how much of the LED's Lambertian emission
// is captured; and the image-side NA must fit inside the fiber's NA.
type ImagingOptics struct {
	// Magnification is image size over object size (e.g. 10 images a 4 µm
	// LED onto a 40 µm spot).
	Magnification float64
	// LensNA is the object-side numerical aperture: the cone captured from
	// the emitter.
	LensNA float64
	// TransmissionDB is the bulk loss of the lens train (AR-coated
	// surfaces, apertures), in dB (positive).
	TransmissionDB float64
	// DefocusM is the axial misalignment of the facet from the image
	// plane, metres.
	DefocusM float64
	// DirectionalityGain reflects emitter beaming: comms microLEDs carry
	// on-chip microlenses or resonant cavities that concentrate emission
	// toward the axis, multiplying the fraction captured inside the lens
	// NA relative to a Lambertian source. 1 = plain Lambertian.
	DirectionalityGain float64
}

// DefaultOptics returns the prototype-class imaging train: 10x
// magnification, NA 0.5 capture, 0.6 dB of bulk loss, perfectly focused.
func DefaultOptics() ImagingOptics {
	return ImagingOptics{
		Magnification:      10,
		LensNA:             0.5,
		TransmissionDB:     0.6,
		DirectionalityGain: 3, // cavity/microlensed emitter
	}
}

// Validate reports whether the optics are physical.
func (o ImagingOptics) Validate() error {
	switch {
	case o.Magnification <= 0:
		return errors.New("fiber: magnification must be positive")
	case o.LensNA <= 0 || o.LensNA >= 1:
		return errors.New("fiber: lens NA must be in (0,1)")
	case o.TransmissionDB < 0:
		return errors.New("fiber: negative lens loss")
	case o.DefocusM < 0:
		return errors.New("fiber: defocus is a magnitude (>= 0)")
	case o.DirectionalityGain < 1:
		return errors.New("fiber: directionality gain must be >= 1 (1 = Lambertian)")
	}
	return nil
}

// ImageNA returns the image-side numerical aperture: LensNA/Magnification
// (Abbe sine condition, small-NA form).
func (o ImagingOptics) ImageNA() float64 {
	return o.LensNA / o.Magnification
}

// SpotDiameterM returns the spot diameter on the facet for an emitter of
// the given diameter: geometric image ⊕ defocus blur, root-sum-square.
// The defocus blur diameter is 2·z·tanθ with sinθ = image NA.
func (o ImagingOptics) SpotDiameterM(emitterDiameterM float64) float64 {
	if emitterDiameterM <= 0 {
		return 0
	}
	img := emitterDiameterM * o.Magnification
	na := o.ImageNA()
	if na >= 1 {
		na = 0.999
	}
	tan := na / math.Sqrt(1-na*na)
	blur := 2 * o.DefocusM * tan
	return math.Sqrt(img*img + blur*blur)
}

// CaptureLossDB returns the loss from collecting only the lens NA out of
// the emitter's output: a Lambertian source yields a captured fraction of
// NA², boosted by the emitter's directionality gain and capped at 1.
func (o ImagingOptics) CaptureLossDB() float64 {
	g := o.DirectionalityGain
	if g < 1 {
		g = 1
	}
	frac := o.LensNA * o.LensNA * g
	if frac >= 1 {
		return 0
	}
	if frac <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(frac)
}

// NAMismatchLossDB returns the loss when the image-side cone exceeds the
// fiber's acceptance NA: the fiber keeps (fiberNA/imageNA)² of the power.
// A cone inside the fiber NA loses nothing.
func (o ImagingOptics) NAMismatchLossDB(fiberNA float64) float64 {
	img := o.ImageNA()
	if img <= fiberNA || img <= 0 {
		return 0
	}
	frac := (fiberNA / img) * (fiberNA / img)
	return -10 * math.Log10(frac)
}

// TotalInsertionDB returns capture + NA mismatch + bulk transmission loss
// for this optics train into the given fiber.
func (o ImagingOptics) TotalInsertionDB(fiberNA float64) float64 {
	return o.CaptureLossDB() + o.NAMismatchLossDB(fiberNA) + o.TransmissionDB
}
