package fiber

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/units"
)

func TestDefaultImagingFiberValid(t *testing.T) {
	if err := DefaultImagingFiber().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImagingValidateRejects(t *testing.T) {
	cases := []func(*ImagingFiber){
		func(f *ImagingFiber) { f.CorePitchM = 0 },
		func(f *ImagingFiber) { f.CoreDiameterM = f.CorePitchM * 2 },
		func(f *ImagingFiber) { f.BundleDiameterM = f.CorePitchM / 2 },
		func(f *ImagingFiber) { f.NA = 0 },
		func(f *ImagingFiber) { f.NA = 1.2 },
		func(f *ImagingFiber) { f.AttenDBPerM = -1 },
		func(f *ImagingFiber) { f.XTalkDBPerM = 3 },
	}
	for i, mutate := range cases {
		f := DefaultImagingFiber()
		mutate(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid fiber", i)
		}
	}
}

func TestCoreCountThousands(t *testing.T) {
	// The paper's imaging fibers hold thousands of cores in one strand.
	n := DefaultImagingFiber().CoreCount()
	if n < 5000 || n > 100000 {
		t.Errorf("core count = %d, want thousands", n)
	}
}

func TestAttenuationLinear(t *testing.T) {
	f := DefaultImagingFiber()
	if got := f.AttenuationDB(10); !units.ApproxEqual(got, 10*f.AttenDBPerM, 1e-12) {
		t.Errorf("attenuation(10m) = %v", got)
	}
	if f.AttenuationDB(-1) != 0 || f.AttenuationDB(0) != 0 {
		t.Error("nonpositive length should have zero attenuation")
	}
	// 50 m at 0.2 dB/m = 10 dB: the loss that caps reach near 50 m.
	if got := f.AttenuationDB(50); got > 12 {
		t.Errorf("50m attenuation = %v dB; breaks the 50m reach claim", got)
	}
}

func TestModalBandwidthOverReach(t *testing.T) {
	f := DefaultImagingFiber()
	// At 50 m a 300 MHz·km core still gives 6 GHz: dispersion is not the
	// limiter at 2 Gbps — exactly the wide-and-slow argument.
	bw := f.ModalBandwidth(50)
	if bw < 2e9 {
		t.Errorf("modal bandwidth at 50m = %v, should clear 2 Gbps", bw)
	}
	if !math.IsInf(f.ModalBandwidth(0), 1) {
		t.Error("zero length should be unlimited")
	}
}

func TestCrosstalkGrowsWithLength(t *testing.T) {
	f := DefaultImagingFiber()
	x1 := f.AdjacentCrosstalkDB(1)
	x10 := f.AdjacentCrosstalkDB(10)
	if !(x10 > x1) {
		t.Errorf("crosstalk should accumulate: %v vs %v", x1, x10)
	}
	if !units.ApproxEqual(x10-x1, 10, 1e-9) {
		t.Errorf("10x length should add 10 dB of crosstalk, got %v", x10-x1)
	}
	if !math.IsInf(f.AdjacentCrosstalkDB(0), -1) {
		t.Error("zero length should have no crosstalk")
	}
	// Still low at 50 m: < -25 dB keeps the eye open.
	if x := f.AdjacentCrosstalkDB(50); x > -25 {
		t.Errorf("crosstalk at 50m = %v dB, too high", x)
	}
}

func TestCircleOverlapFraction(t *testing.T) {
	if got := circleOverlapFraction(1, 0); got != 1 {
		t.Errorf("full overlap = %v", got)
	}
	if got := circleOverlapFraction(1, 2); got != 0 {
		t.Errorf("no overlap = %v", got)
	}
	if got := circleOverlapFraction(1, 5); got != 0 {
		t.Errorf("far apart = %v", got)
	}
	// Monotone decreasing in d.
	prev := 1.0
	for d := 0.0; d <= 2.0; d += 0.05 {
		cur := circleOverlapFraction(1, d)
		if cur > prev+1e-12 {
			t.Fatalf("overlap not monotone at d=%v", d)
		}
		prev = cur
	}
	if circleOverlapFraction(0, 0.1) != 0 {
		t.Error("zero radius should be 0")
	}
}

func TestCouplingLossAligned(t *testing.T) {
	f := DefaultImagingFiber()
	loss := f.CouplingLossDB(40e-6, 0)
	// Fill factor (~0.51) + Fresnel: expect ~3-4 dB at perfect alignment.
	if loss < 2 || loss > 5 {
		t.Errorf("aligned coupling loss = %v dB, want ~3", loss)
	}
}

func TestCouplingLossMonotoneInOffset(t *testing.T) {
	f := DefaultImagingFiber()
	spot := 40e-6
	prev := f.CouplingLossDB(spot, 0)
	for off := 2e-6; off < spot; off += 2e-6 {
		cur := f.CouplingLossDB(spot, off)
		if cur < prev-1e-9 {
			t.Fatalf("coupling loss should grow with offset at %v", off)
		}
		prev = cur
	}
	if !math.IsInf(f.CouplingLossDB(spot, spot*2), 1) {
		t.Error("fully off-target spot should be dark")
	}
	// Symmetric in sign.
	if f.CouplingLossDB(spot, 5e-6) != f.CouplingLossDB(spot, -5e-6) {
		t.Error("offset sign should not matter")
	}
}

func TestMisalignmentToleranceTensOfMicrons(t *testing.T) {
	// E6 claim: the spot spans many cores, so 10 µm of misalignment costs
	// little (< 3 dB extra) — unthinkable for single-mode optics.
	f := DefaultImagingFiber()
	spot := 40e-6
	extra := f.CouplingLossDB(spot, 10e-6) - f.CouplingLossDB(spot, 0)
	if extra > 3 {
		t.Errorf("10um misalignment penalty = %v dB, want < 3", extra)
	}
}

func TestNeighborLeak(t *testing.T) {
	f := DefaultImagingFiber()
	spot, pitch := 40e-6, 50e-6
	aligned := f.MisalignedNeighborLeakDB(spot, 0, pitch)
	shifted := f.MisalignedNeighborLeakDB(spot, 20e-6, pitch)
	if !math.IsInf(aligned, -1) && aligned > -20 {
		t.Errorf("aligned neighbour leak = %v dB, should be tiny", aligned)
	}
	if !(shifted > aligned) {
		t.Errorf("shifting toward neighbour should increase leak: %v vs %v", aligned, shifted)
	}
}

func TestCoresPerChannel(t *testing.T) {
	g := ChannelGroup{SpotDiameterM: 40e-6, Fiber: DefaultImagingFiber()}
	n := g.CoresPerChannel()
	// 40 µm spot over 3.2 µm pitch: on the order of a hundred cores.
	if n < 50 || n > 300 {
		t.Errorf("cores per channel = %d, want ~100", n)
	}
	if (ChannelGroup{SpotDiameterM: 0, Fiber: DefaultImagingFiber()}).CoresPerChannel() != 0 {
		t.Error("zero spot should cover zero cores")
	}
}

func TestMaxChannelsHoldsPrototypeAndScale(t *testing.T) {
	f := DefaultImagingFiber()
	// 50 µm channel pitch: enough spots for 100 channels (prototype) and
	// 400+ (800G scale point).
	n := f.MaxChannels(50e-6)
	if n < 100 {
		t.Errorf("bundle holds only %d channels at 50um pitch; prototype needs 100", n)
	}
	if f.MaxChannels(0) != 0 {
		t.Error("zero pitch should be rejected")
	}
}

func TestConventionalCatalog(t *testing.T) {
	for _, c := range []Conventional{OM4(), SMF()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := OM4()
	bad.AttenDBPerM = -1
	if bad.Validate() == nil {
		t.Error("accepted negative attenuation")
	}
}

func TestConventionalAttenuation(t *testing.T) {
	om4 := OM4()
	// 100 m of OM4: 0.23 dB + 0.6 connectors.
	if got := om4.AttenuationDB(100); !units.ApproxEqual(got, 0.83, 1e-9) {
		t.Errorf("OM4 100m = %v dB", got)
	}
	if got := om4.AttenuationDB(0); got != 2*om4.ConnectorDB {
		t.Errorf("zero length should still pay connectors: %v", got)
	}
}

func TestSMFUnlimitedModalBW(t *testing.T) {
	if !math.IsInf(SMF().ModalBandwidth(1e5), 1) {
		t.Error("SMF should have no modal dispersion")
	}
	// OM4 at 100 m: 47 GHz — fine for 25G VCSELs.
	if bw := OM4().ModalBandwidth(100); bw < 20e9 {
		t.Errorf("OM4 modal bandwidth at 100m = %v", bw)
	}
}

func TestCouplingLossQuickProperty(t *testing.T) {
	f := DefaultImagingFiber()
	prop := func(rawSpot, rawOff float64) bool {
		spot := 10e-6 + math.Abs(math.Mod(rawSpot, 90e-6))
		off := math.Abs(math.Mod(rawOff, spot))
		loss := f.CouplingLossDB(spot, off)
		return loss >= 0 || math.IsInf(loss, 1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
