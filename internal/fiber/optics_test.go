package fiber

import (
	"math"
	"testing"

	"mosaic/internal/units"
)

func TestDefaultOpticsValid(t *testing.T) {
	if err := DefaultOptics().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpticsValidateRejects(t *testing.T) {
	cases := []func(*ImagingOptics){
		func(o *ImagingOptics) { o.Magnification = 0 },
		func(o *ImagingOptics) { o.LensNA = 0 },
		func(o *ImagingOptics) { o.LensNA = 1 },
		func(o *ImagingOptics) { o.TransmissionDB = -1 },
		func(o *ImagingOptics) { o.DefocusM = -1e-6 },
	}
	for i, mutate := range cases {
		o := DefaultOptics()
		mutate(&o)
		if o.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSpotFromMagnification(t *testing.T) {
	o := DefaultOptics()
	// 4 µm LED through 10x: exactly 40 µm when focused.
	if got := o.SpotDiameterM(4e-6); !units.ApproxEqual(got, 40e-6, 1e-9) {
		t.Errorf("spot = %v", got)
	}
	if o.SpotDiameterM(0) != 0 {
		t.Error("no emitter, no spot")
	}
}

func TestDefocusGrowsSpot(t *testing.T) {
	o := DefaultOptics()
	focused := o.SpotDiameterM(4e-6)
	o.DefocusM = 200e-6
	blurred := o.SpotDiameterM(4e-6)
	if !(blurred > focused) {
		t.Errorf("defocus should blur: %v vs %v", focused, blurred)
	}
	// RSS composition: blur at 200 µm with image NA 0.05 ≈ 20 µm,
	// so spot ≈ sqrt(40² + 20²) ≈ 44.7 µm.
	if blurred < 42e-6 || blurred > 48e-6 {
		t.Errorf("blurred spot = %v, want ~44.7um", blurred)
	}
}

func TestCaptureLoss(t *testing.T) {
	o := DefaultOptics() // NA 0.5 with 3x beaming: captures 75% -> 1.25 dB
	if got := o.CaptureLossDB(); math.Abs(got-1.2494) > 0.01 {
		t.Errorf("capture loss = %v", got)
	}
	// A plain Lambertian emitter through the same lens: 25% -> 6.02 dB.
	o.DirectionalityGain = 1
	if got := o.CaptureLossDB(); math.Abs(got-6.0206) > 0.01 {
		t.Errorf("Lambertian capture loss = %v", got)
	}
	o.LensNA = 0.999999
	if got := o.CaptureLossDB(); got > 0.001 {
		t.Errorf("full NA should be lossless, got %v", got)
	}
}

func TestDirectionalityValidation(t *testing.T) {
	o := DefaultOptics()
	o.DirectionalityGain = 0.5
	if o.Validate() == nil {
		t.Error("sub-Lambertian gain accepted")
	}
}

func TestNAMismatch(t *testing.T) {
	o := DefaultOptics() // image NA = 0.05
	// Fiber NA 0.39 >> 0.05: no mismatch.
	if got := o.NAMismatchLossDB(0.39); got != 0 {
		t.Errorf("mismatch loss = %v, want 0", got)
	}
	// A low-mag train (image NA 0.25) into NA 0.1 fiber loses.
	o.Magnification = 2
	if got := o.NAMismatchLossDB(0.1); got <= 0 {
		t.Errorf("overfilled fiber should lose, got %v", got)
	}
}

func TestTotalInsertion(t *testing.T) {
	o := DefaultOptics()
	f := DefaultImagingFiber()
	total := o.TotalInsertionDB(f.NA)
	want := o.CaptureLossDB() + o.TransmissionDB // no NA mismatch here
	if !units.ApproxEqual(total, want, 1e-9) {
		t.Errorf("total = %v, want %v", total, want)
	}
}

func TestOpticsConsistentWithDefaultDesignSpot(t *testing.T) {
	// The default optics imaging the default 4 µm LED must produce the
	// 40 µm spot the Design assumes.
	o := DefaultOptics()
	if got := o.SpotDiameterM(4e-6); math.Abs(got-40e-6) > 1e-9 {
		t.Errorf("optics produce %v spot; Design assumes 40um", got)
	}
}
