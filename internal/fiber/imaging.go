// Package fiber models the optical media of the Mosaic reproduction: the
// massively multi-core imaging fiber that carries hundreds of wide-and-slow
// channels in a single strand, and the conventional multimode (OM4) and
// single-mode fibers used by the optical baselines.
//
// Imaging fibers (fused coherent bundles, as used in endoscopes) pack
// thousands of step-index cores on a hexagonal lattice inside one cladding.
// Mosaic images an array of microLEDs onto one end; each logical channel
// illuminates a *group* of cores, so end-to-end alignment only needs to be
// accurate to a fraction of the channel pitch rather than a fraction of a
// core — the key to a cheap, field-installable connector.
package fiber

import (
	"errors"
	"fmt"
	"math"
)

// ImagingFiber describes a multi-core coherent imaging fiber.
type ImagingFiber struct {
	Name            string
	CorePitchM      float64 // centre-to-centre core spacing, metres
	CoreDiameterM   float64 // individual core diameter, metres
	BundleDiameterM float64 // usable image-circle diameter, metres
	NA              float64 // numerical aperture of individual cores

	// AttenDBPerM is the attenuation in dB/m at the reference wavelength.
	// Imaging fiber is far lossier than telecom fiber (~0.05-0.25 dB/m in
	// the visible) but Mosaic reaches are tens of metres, not kilometres.
	AttenDBPerM    float64
	RefWavelengthM float64

	// XTalkDBPerM is adjacent-core crosstalk accumulated per metre, in dB
	// (negative; e.g. -45 means each metre couples -45 dB of power into a
	// neighbouring core).
	XTalkDBPerM float64

	// ModalBWLenHzM is the modal-dispersion bandwidth-length product of a
	// single core in Hz·m (step-index multimode cores are dispersive, but
	// at 2 Gbps and 50 m the product comfortably clears).
	ModalBWLenHzM float64
}

// DefaultImagingFiber returns the paper-class imaging fiber: ~3 µm core
// pitch, thousands of cores in a ~0.5 mm bundle, blue-optimised.
func DefaultImagingFiber() ImagingFiber {
	return ImagingFiber{
		Name:            "imaging-3um",
		CorePitchM:      3.2e-6,
		CoreDiameterM:   2.4e-6,
		BundleDiameterM: 550e-6,
		NA:              0.39,
		AttenDBPerM:     0.20,
		RefWavelengthM:  430e-9,
		XTalkDBPerM:     -46,
		ModalBWLenHzM:   300e6 * 1000, // 300 MHz·km expressed in Hz·m
	}
}

// Validate reports whether the fiber parameters are meaningful.
func (f ImagingFiber) Validate() error {
	switch {
	case f.CorePitchM <= 0 || f.CoreDiameterM <= 0:
		return errors.New("fiber: core geometry must be positive")
	case f.CoreDiameterM > f.CorePitchM:
		return errors.New("fiber: cores cannot overlap (diameter > pitch)")
	case f.BundleDiameterM < f.CorePitchM:
		return errors.New("fiber: bundle smaller than one core pitch")
	case f.NA <= 0 || f.NA >= 1:
		return errors.New("fiber: NA must be in (0,1)")
	case f.AttenDBPerM < 0:
		return errors.New("fiber: attenuation cannot be negative")
	case f.XTalkDBPerM >= 0:
		return errors.New("fiber: crosstalk must be negative dB")
	}
	return nil
}

// CoreCount estimates the number of cores in the bundle: hexagonal packing
// of the image circle.
func (f ImagingFiber) CoreCount() int {
	// Hex lattice density: 2/(sqrt(3)·pitch²) cores per unit area.
	r := f.BundleDiameterM / 2
	area := math.Pi * r * r
	density := 2 / (math.Sqrt(3) * f.CorePitchM * f.CorePitchM)
	return int(area * density)
}

// AttenuationDB returns the attenuation in dB over length metres.
func (f ImagingFiber) AttenuationDB(lengthM float64) float64 {
	if lengthM <= 0 {
		return 0
	}
	return f.AttenDBPerM * lengthM
}

// ModalBandwidth returns the modal-dispersion-limited bandwidth (Hz) of a
// core over the given length.
func (f ImagingFiber) ModalBandwidth(lengthM float64) float64 {
	if lengthM <= 0 {
		return math.Inf(1)
	}
	return f.ModalBWLenHzM / lengthM
}

// AdjacentCrosstalkDB returns the accumulated adjacent-core crosstalk in dB
// after the given length (power-coupled, so it grows ~linearly with length:
// +10·log10(L) on top of the per-metre figure).
func (f ImagingFiber) AdjacentCrosstalkDB(lengthM float64) float64 {
	if lengthM <= 0 {
		return math.Inf(-1) // no crosstalk
	}
	return f.XTalkDBPerM + 10*math.Log10(lengthM)
}

// ChannelGroup describes how one logical Mosaic channel maps onto the core
// lattice: a disc of cores of the given diameter.
type ChannelGroup struct {
	SpotDiameterM float64 // imaged LED spot diameter on the facet
	Fiber         ImagingFiber
}

// CoresPerChannel returns how many cores one channel's spot covers.
func (g ChannelGroup) CoresPerChannel() int {
	if g.SpotDiameterM <= 0 {
		return 0
	}
	r := g.SpotDiameterM / 2
	area := math.Pi * r * r
	density := 2 / (math.Sqrt(3) * g.Fiber.CorePitchM * g.Fiber.CorePitchM)
	n := int(area * density)
	if n < 1 {
		n = 1
	}
	return n
}

// MaxChannels returns how many channel spots fit in the bundle with the
// given centre-to-centre channel pitch.
func (f ImagingFiber) MaxChannels(channelPitchM float64) int {
	if channelPitchM <= 0 {
		return 0
	}
	r := f.BundleDiameterM / 2
	area := math.Pi * r * r
	density := 2 / (math.Sqrt(3) * channelPitchM * channelPitchM)
	return int(area * density)
}

// String identifies the fiber.
func (f ImagingFiber) String() string {
	return fmt.Sprintf("%s{pitch=%.1fum, cores=%d, %.2fdB/m}",
		f.Name, f.CorePitchM*1e6, f.CoreCount(), f.AttenDBPerM)
}

// CouplingLossDB returns the LED-to-fiber coupling loss in dB for a channel
// whose spot (diameter spotM) is laterally misaligned by offsetM from its
// nominal core-group centre. The model integrates the overlap of a
// uniform-intensity disc with the core-group disc analytically (circle
// intersection), plus the lattice fill factor (core area / unit-cell area)
// and a fixed Fresnel/packing loss.
//
// At zero offset the loss is the fill-factor + Fresnel loss; at one spot
// diameter of offset the channel is dark. Because a channel spans many
// cores, tolerance is measured in tens of microns — vs sub-micron for
// single-mode optics. This is experiment E6.
func (f ImagingFiber) CouplingLossDB(spotM, offsetM float64) float64 {
	if spotM <= 0 {
		return math.Inf(1)
	}
	if offsetM < 0 {
		offsetM = -offsetM
	}
	// Fill factor of a hex lattice of circular cores.
	fill := (math.Pi / (2 * math.Sqrt(3))) *
		(f.CoreDiameterM / f.CorePitchM) * (f.CoreDiameterM / f.CorePitchM)
	if fill > 1 {
		fill = 1
	}
	// Fraction of the (uniform) spot that still lands on its own group:
	// area of intersection of two equal circles of radius R at distance d,
	// normalised by the circle area.
	frac := circleOverlapFraction(spotM/2, offsetM)
	const fresnelDB = 0.4 // facet reflections, both ends handled by caller
	if frac <= 0 || fill <= 0 {
		return math.Inf(1)
	}
	return -10*math.Log10(frac*fill) + fresnelDB
}

// circleOverlapFraction returns the area of intersection of two circles of
// equal radius r whose centres are d apart, divided by the area of one
// circle. It is 1 at d=0 and 0 for d >= 2r.
func circleOverlapFraction(r, d float64) float64 {
	if r <= 0 {
		return 0
	}
	if d <= 0 {
		return 1
	}
	if d >= 2*r {
		return 0
	}
	half := d / (2 * r)
	lens := 2*r*r*math.Acos(half) - (d/2)*math.Sqrt(4*r*r-d*d)
	return lens / (math.Pi * r * r)
}

// MisalignedNeighborLeakDB returns how much of the misaligned spot's power
// lands on the *adjacent* channel's group (dB relative to launched power),
// given the channel pitch. This converts mechanical misalignment into
// inter-channel interference for the BER model.
func (f ImagingFiber) MisalignedNeighborLeakDB(spotM, offsetM, channelPitchM float64) float64 {
	if spotM <= 0 || channelPitchM <= 0 {
		return math.Inf(-1)
	}
	if offsetM < 0 {
		offsetM = -offsetM
	}
	// Distance from the shifted spot centre to the neighbour group centre.
	d := channelPitchM - offsetM
	if d < 0 {
		d = 0
	}
	frac := circleOverlapFraction(spotM/2, d)
	if frac <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(frac)
}
