package reliability

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeibullValidate(t *testing.T) {
	if (Weibull{Shape: 0, EtaHours: 1}).Validate() == nil {
		t.Error("zero shape accepted")
	}
	if (Weibull{Shape: 1, EtaHours: 0}).Validate() == nil {
		t.Error("zero eta accepted")
	}
	if (Weibull{Shape: 1.2, EtaHours: 1e6}).Validate() != nil {
		t.Error("valid Weibull rejected")
	}
}

func TestWeibullExponentialSpecialCase(t *testing.T) {
	// k=1 reduces to the exponential with rate 1/eta.
	w := Weibull{Shape: 1, EtaHours: 1e7}
	f := FIT(100) // lambda = 1e-7/h -> eta = 1e7 h
	for _, h := range []float64{1e3, 1e5, 1e7} {
		if math.Abs(w.Survival(h)-f.SurvivalProb(h)) > 1e-12 {
			t.Fatalf("k=1 Weibull != exponential at %v hours", h)
		}
	}
	if math.Abs(w.HazardPerHour(12345)-1e-7) > 1e-18 {
		t.Error("k=1 hazard should be constant 1/eta")
	}
}

func TestWeibullHazardShapes(t *testing.T) {
	infant := Weibull{Shape: 0.5, EtaHours: 1e6}
	wearout := Weibull{Shape: 3, EtaHours: 1e6}
	// Infant mortality: hazard decreasing; wear-out: increasing.
	if !(infant.HazardPerHour(10) > infant.HazardPerHour(1000)) {
		t.Error("infant hazard should decrease")
	}
	if !(wearout.HazardPerHour(1000) > wearout.HazardPerHour(10)) {
		t.Error("wear-out hazard should increase")
	}
	if !math.IsInf(infant.HazardPerHour(0), 1) {
		t.Error("infant hazard at 0 should diverge")
	}
	if wearout.HazardPerHour(0) != 0 {
		t.Error("wear-out hazard at 0 should be 0")
	}
	if (Weibull{Shape: 1, EtaHours: 10}).HazardPerHour(0) != 0.1 {
		t.Error("k=1 hazard at 0 should be 1/eta")
	}
}

func TestWeibullSurvivalEdges(t *testing.T) {
	w := Weibull{Shape: 2, EtaHours: 1000}
	if w.Survival(0) != 1 || w.Survival(-5) != 1 {
		t.Error("survival at t<=0 should be 1")
	}
	if math.Abs(w.Survival(1000)-math.Exp(-1)) > 1e-12 {
		t.Error("survival at eta should be 1/e")
	}
}

func TestWeibullSampleMatchesSurvival(t *testing.T) {
	w := Weibull{Shape: 2, EtaHours: 5000}
	rng := rand.New(rand.NewSource(40))
	const n = 50000
	beyond := 0
	for i := 0; i < n; i++ {
		if w.Sample(rng) > w.EtaHours {
			beyond++
		}
	}
	frac := float64(beyond) / n
	if math.Abs(frac-math.Exp(-1)) > 0.01 {
		t.Errorf("fraction beyond eta = %v, want 1/e", frac)
	}
}

func TestSparedWeibullSurvival(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mission := 5 * HoursPerYear
	// Wear-out (k=3) with eta at 4x mission: channel survival ~exp(-(1/4)^3)
	// = 98.4%; ~6-7 failures expected over 416 channels.
	w := Weibull{Shape: 3, EtaHours: 4 * mission}
	none := SparedWeibullSurvival(416, 0, w, mission, 4000, rng)
	some := SparedWeibullSurvival(416, 16, w, mission, 4000, rng)
	if !(some > none) {
		t.Errorf("spares should help: %v vs %v", some, none)
	}
	if some < 0.99 {
		t.Errorf("16 spares should handle wear-out: %v", some)
	}
	// Exponential consistency: k=1 Monte Carlo vs closed form.
	exp := Weibull{Shape: 1, EtaHours: 1e9 / 2000}
	mc := SparedWeibullSurvival(100, 3, exp, mission, 20000, rng)
	closed := SparedSystem{N: 100, Spares: 3, PerChannel: 2000}.SurvivalProb(mission)
	if math.Abs(mc-closed) > 0.02 {
		t.Errorf("Weibull k=1 MC %v vs closed form %v", mc, closed)
	}
}

func TestSparedWeibullGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := Weibull{Shape: 1, EtaHours: 1e6}
	if SparedWeibullSurvival(0, 0, w, 1, 10, rng) != 0 {
		t.Error("invalid n accepted")
	}
	if SparedWeibullSurvival(10, 10, w, 1, 10, rng) != 0 {
		t.Error("spares >= n accepted")
	}
	if SparedWeibullSurvival(10, 1, Weibull{}, 1, 10, rng) != 0 {
		t.Error("invalid Weibull accepted")
	}
}
