// Package reliability quantifies link failure behaviour: FIT arithmetic for
// series systems (conventional transceivers die when any laser dies) and
// k-of-n sparing math for Mosaic (the link survives until it runs out of
// spare channels), both as closed forms and as Monte-Carlo simulation.
//
// The paper's claim — "higher reliability than today's optical links"
// despite using hundreds of devices — holds because microLED FIT is orders
// of magnitude below laser FIT *and* channel sparing converts the remaining
// failures from link-down events into invisible remaps. Experiment E7
// reproduces both effects.
package reliability

import (
	"errors"
	"math"
	"math/rand"
)

// FIT is a failure rate in failures per 1e9 device-hours.
type FIT float64

// Device failure rates used by the experiments (public reliability-report
// ballpark figures).
const (
	FITLaserDFB   FIT = 500 // high-power CW telecom laser, hot module
	FITLaserVCSEL FIT = 100 // datacom VCSEL
	FITMicroLED   FIT = 0.5 // GaN LED, display-industry maturity
	FITDSP        FIT = 50  // 5nm PAM4 DSP die
	FITTIA        FIT = 10  // high-speed analog front end
	FITSlowTIA    FIT = 0.5 // slow CMOS TIA (part of a big array die)
	FITPhotodiode FIT = 5
	FITConnector  FIT = 5
	FITGearbox    FIT = 30 // Mosaic digital die
)

// LambdaPerHour converts FIT to a per-hour failure rate.
func (f FIT) LambdaPerHour() float64 { return float64(f) / 1e9 }

// MTTFHours returns the mean time to failure in hours.
func (f FIT) MTTFHours() float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return 1e9 / float64(f)
}

// Series returns the FIT of a series system (any component failure is a
// system failure): the sum.
func Series(fits ...FIT) FIT {
	var sum FIT
	for _, f := range fits {
		sum += f
	}
	return sum
}

// SurvivalProb returns exp(-λt) for a FIT over t hours.
func (f FIT) SurvivalProb(hours float64) float64 {
	return math.Exp(-f.LambdaPerHour() * hours)
}

// HoursPerYear is the mission-time conversion constant.
const HoursPerYear = 8766.0

// --- k-of-n sparing (non-repairable mission) ---

// SparedSystem is n identical channels of which up to s may fail before
// the system fails (i.e. the system needs n-s working channels).
type SparedSystem struct {
	N          int // total channels (data + spares)
	Spares     int // tolerated failures
	PerChannel FIT
}

// Validate checks the shape.
func (s SparedSystem) Validate() error {
	if s.N <= 0 || s.Spares < 0 || s.Spares >= s.N {
		return errors.New("reliability: need 0 <= spares < n, n > 0")
	}
	if s.PerChannel < 0 {
		return errors.New("reliability: negative FIT")
	}
	return nil
}

// logChoose returns log C(n,k) via lgamma.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// SurvivalProb returns the probability that at most Spares channels have
// failed after `hours` of (non-repairable) operation: the binomial CDF
// with p = 1 - exp(-λt).
func (s SparedSystem) SurvivalProb(hours float64) float64 {
	if err := s.Validate(); err != nil {
		return 0
	}
	p := 1 - s.PerChannel.SurvivalProb(hours)
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	sum := 0.0
	for i := 0; i <= s.Spares; i++ {
		logTerm := logChoose(s.N, i) +
			float64(i)*math.Log(p) +
			float64(s.N-i)*math.Log(1-p)
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// EffectiveFIT returns the average failure rate over a mission of the
// given length, expressed in FIT: -ln(R(T))/T · 1e9.
func (s SparedSystem) EffectiveFIT(missionHours float64) FIT {
	r := s.SurvivalProb(missionHours)
	if r <= 0 {
		return FIT(math.Inf(1))
	}
	if r >= 1 {
		return 0
	}
	return FIT(-math.Log(r) / missionHours * 1e9)
}

// --- repairable availability (Markov birth-death) ---

// RepairableSystem adds a repair process: failed channels are restored at
// rate MTTRHours each (think: a technician swaps the cable; or for whole
// transceivers, the module is replaced). The link is down while more than
// Spares channels are failed.
type RepairableSystem struct {
	SparedSystem
	MTTRHours float64
}

// Availability solves the birth-death chain in steady state: state k has
// k failed channels; failure rate (N-k)λ, repair rate k·µ (parallel
// repair). Availability is the probability mass on states 0..Spares.
func (r RepairableSystem) Availability() (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if r.MTTRHours <= 0 {
		return 0, errors.New("reliability: MTTR must be positive")
	}
	lambda := r.PerChannel.LambdaPerHour()
	mu := 1 / r.MTTRHours
	// Unnormalised stationary distribution: pi[k+1] = pi[k] * (N-k)λ / ((k+1)µ).
	pi := make([]float64, r.N+1)
	pi[0] = 1
	for k := 0; k < r.N; k++ {
		rate := float64(r.N-k) * lambda
		rep := float64(k+1) * mu
		pi[k+1] = pi[k] * rate / rep
	}
	var total, up float64
	for k, p := range pi {
		total += p
		if k <= r.Spares {
			up += p
		}
	}
	return up / total, nil
}

// DowntimeSecondsPerYear converts availability to expected downtime.
func DowntimeSecondsPerYear(availability float64) float64 {
	if availability < 0 {
		availability = 0
	}
	if availability > 1 {
		availability = 1
	}
	return (1 - availability) * HoursPerYear * 3600
}

// --- link-level catalogs ---

// LinkFIT returns the series FIT of a conventional transceiver pair for
// the given lane count (one laser, PD, TIA set per lane, one DSP per end).
func LinkFIT(laser FIT, lanesPerEnd int) FIT {
	perEnd := Series(
		FIT(float64(laser)*float64(lanesPerEnd)),
		FIT(float64(FITPhotodiode)*float64(lanesPerEnd)),
		FIT(float64(FITTIA)*float64(lanesPerEnd)),
		FITDSP,
		FITConnector,
	)
	return 2 * perEnd
}

// MosaicSystem builds the spared-system model of a Mosaic link pair with
// the given data channel and spare counts. Per-channel FIT combines the
// LED, its PD, and its slow TIA slice; the shared gearbox dies are a
// series element handled by MosaicLinkFIT.
func MosaicSystem(dataChannels, spares int) SparedSystem {
	perChannel := Series(FITMicroLED, FITPhotodiode, FITSlowTIA)
	return SparedSystem{
		N:          dataChannels + spares,
		Spares:     spares,
		PerChannel: perChannel,
	}
}

// MosaicLinkFIT returns the effective link FIT of a Mosaic pair over the
// mission: the spared channel array plus the series elements (two gearbox
// dies, two connectors).
func MosaicLinkFIT(dataChannels, spares int, missionHours float64) FIT {
	array := MosaicSystem(dataChannels, spares).EffectiveFIT(missionHours)
	return Series(array, 2*FITGearbox, 2*FITConnector)
}

// --- Weibull lifetimes (infant mortality and wear-out) ---

// Weibull describes a Weibull lifetime distribution with shape k and
// characteristic life eta (hours): survival R(t) = exp(-(t/eta)^k).
// k < 1 models infant mortality (decreasing hazard — early deaths
// dominate), k = 1 is the constant-rate exponential, k > 1 models
// wear-out (LED lumen decay, laser facet degradation).
type Weibull struct {
	Shape    float64 // k
	EtaHours float64 // characteristic life
}

// Validate checks the parameters.
func (w Weibull) Validate() error {
	if w.Shape <= 0 || w.EtaHours <= 0 {
		return errors.New("reliability: Weibull needs positive shape and eta")
	}
	return nil
}

// Survival returns R(t) = exp(-(t/eta)^k).
func (w Weibull) Survival(hours float64) float64 {
	if hours <= 0 {
		return 1
	}
	if w.Validate() != nil {
		return 0
	}
	return math.Exp(-math.Pow(hours/w.EtaHours, w.Shape))
}

// HazardPerHour returns the instantaneous failure rate h(t) =
// (k/eta)·(t/eta)^(k-1).
func (w Weibull) HazardPerHour(hours float64) float64 {
	if w.Validate() != nil || hours < 0 {
		return 0
	}
	if hours == 0 {
		if w.Shape < 1 {
			return math.Inf(1) // infant-mortality hazard diverges at t=0
		}
		if w.Shape == 1 {
			return 1 / w.EtaHours
		}
		return 0
	}
	return w.Shape / w.EtaHours * math.Pow(hours/w.EtaHours, w.Shape-1)
}

// Sample draws a lifetime in hours via inverse transform.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	if w.Validate() != nil {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.EtaHours * math.Pow(-math.Log(u), 1/w.Shape)
}

// SparedWeibullSurvival estimates (by Monte Carlo) the survival of an
// n-channel, s-spare system whose channel lifetimes follow the given
// Weibull — capturing burn-in escapes (k<1) and wear-out clustering (k>1)
// that the exponential closed form cannot.
func SparedWeibullSurvival(n, spares int, w Weibull, missionHours float64, trials int, rng *rand.Rand) float64 {
	if n <= 0 || spares < 0 || spares >= n || trials <= 0 || w.Validate() != nil {
		return 0
	}
	survived := 0
	for t := 0; t < trials; t++ {
		failures := 0
		for c := 0; c < n; c++ {
			if w.Sample(rng) < missionHours {
				failures++
				if failures > spares {
					break
				}
			}
		}
		if failures <= spares {
			survived++
		}
	}
	return float64(survived) / float64(trials)
}

// --- Monte Carlo ---

// MonteCarloSurvival estimates the spared-system survival probability at
// missionHours by simulating `trials` systems with exponential channel
// lifetimes. It exists to validate the closed form (and is used by the
// failure-injection experiments).
func MonteCarloSurvival(s SparedSystem, missionHours float64, trials int, rng *rand.Rand) float64 {
	if err := s.Validate(); err != nil || trials <= 0 {
		return 0
	}
	lambda := s.PerChannel.LambdaPerHour()
	survived := 0
	for t := 0; t < trials; t++ {
		failures := 0
		for c := 0; c < s.N; c++ {
			// Lifetime ~ Exp(lambda); fails within mission if < missionHours.
			life := rng.ExpFloat64() / lambda
			if life < missionHours {
				failures++
				if failures > s.Spares {
					break
				}
			}
		}
		if failures <= s.Spares {
			survived++
		}
	}
	return float64(survived) / float64(trials)
}
