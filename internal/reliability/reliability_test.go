package reliability

import (
	"math"
	"math/rand"
	"testing"
)

func TestFITBasics(t *testing.T) {
	f := FIT(100)
	if f.LambdaPerHour() != 1e-7 {
		t.Errorf("lambda = %v", f.LambdaPerHour())
	}
	if f.MTTFHours() != 1e7 {
		t.Errorf("MTTF = %v", f.MTTFHours())
	}
	if !math.IsInf(FIT(0).MTTFHours(), 1) {
		t.Error("zero FIT should never fail")
	}
	if got := Series(100, 200, 50); got != 350 {
		t.Errorf("series = %v", got)
	}
}

func TestSurvivalProb(t *testing.T) {
	f := FIT(1e9) // 1 failure/hour
	if got := f.SurvivalProb(1); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("survival = %v", got)
	}
	if FIT(0).SurvivalProb(1e9) != 1 {
		t.Error("zero FIT should always survive")
	}
}

func TestSparedSystemValidation(t *testing.T) {
	bad := []SparedSystem{
		{N: 0, Spares: 0, PerChannel: 1},
		{N: 5, Spares: 5, PerChannel: 1},
		{N: 5, Spares: -1, PerChannel: 1},
		{N: 5, Spares: 1, PerChannel: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if (SparedSystem{N: 5, Spares: 1, PerChannel: 1}).Validate() != nil {
		t.Error("valid system rejected")
	}
}

func TestNoSparesMatchesSeries(t *testing.T) {
	// With zero spares, the spared system is a plain series system of N
	// channels: survival = exp(-Nλt).
	s := SparedSystem{N: 100, Spares: 0, PerChannel: 10}
	hours := 5 * HoursPerYear
	want := math.Exp(-100 * FIT(10).LambdaPerHour() * hours)
	if got := s.SurvivalProb(hours); math.Abs(got-want) > 1e-9 {
		t.Errorf("survival = %v, want %v", got, want)
	}
}

func TestSparesImproveSurvival(t *testing.T) {
	hours := 5 * HoursPerYear
	prev := 0.0
	for spares := 0; spares <= 8; spares++ {
		s := SparedSystem{N: 400 + spares, Spares: spares, PerChannel: 6}
		got := s.SurvivalProb(hours)
		if got < prev {
			t.Fatalf("survival decreased with %d spares", spares)
		}
		prev = got
	}
	if prev < 0.999 {
		t.Errorf("8 spares over 408 channels should be bulletproof, got %v", prev)
	}
}

func TestEffectiveFITDropsSteeplyWithSpares(t *testing.T) {
	mission := 5 * HoursPerYear
	f0 := MosaicSystem(400, 0).EffectiveFIT(mission)
	f4 := MosaicSystem(400, 4).EffectiveFIT(mission)
	f8 := MosaicSystem(400, 8).EffectiveFIT(mission)
	if !(f4 < f0/10 && f8 < f4) {
		t.Errorf("spares not effective: %v %v %v", f0, f4, f8)
	}
}

func TestHeadlineMosaicBeatsLaserOptics(t *testing.T) {
	// E7 headline: a 416-channel Mosaic link with 16 spares has lower
	// effective FIT than an 8-laser DR8 pair, despite 50x the device count.
	mission := 5 * HoursPerYear
	mosaic := MosaicLinkFIT(400, 16, mission)
	dr8 := LinkFIT(FITLaserDFB, 8)
	if !(mosaic < dr8/10) {
		t.Errorf("Mosaic FIT %v should be far below DR8 %v", mosaic, dr8)
	}
	aoc := LinkFIT(FITLaserVCSEL, 8)
	if !(mosaic < aoc) {
		t.Errorf("Mosaic FIT %v should beat AOC %v", mosaic, aoc)
	}
}

func TestEffectiveFITEdges(t *testing.T) {
	s := SparedSystem{N: 10, Spares: 2, PerChannel: 0}
	if s.EffectiveFIT(1e6) != 0 {
		t.Error("zero channel FIT should give zero system FIT")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Use a hot system so failures actually happen in the mission.
	s := SparedSystem{N: 100, Spares: 3, PerChannel: 2000}
	mission := 5 * HoursPerYear
	closed := s.SurvivalProb(mission)
	mc := MonteCarloSurvival(s, mission, 20000, rng)
	if math.Abs(closed-mc) > 0.02 {
		t.Errorf("closed form %v vs Monte Carlo %v", closed, mc)
	}
}

func TestMonteCarloEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if MonteCarloSurvival(SparedSystem{}, 1, 100, rng) != 0 {
		t.Error("invalid system should return 0")
	}
	if MonteCarloSurvival(SparedSystem{N: 2, Spares: 1, PerChannel: 1}, 1, 0, rng) != 0 {
		t.Error("zero trials should return 0")
	}
}

func TestRepairableAvailability(t *testing.T) {
	r := RepairableSystem{
		SparedSystem: SparedSystem{N: 416, Spares: 16, PerChannel: 6},
		MTTRHours:    24,
	}
	a, err := r.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if a < 0.999999 {
		t.Errorf("availability = %v; spared+repairable should be many nines", a)
	}
	// Versus an unspared series system of the same channels.
	r0 := RepairableSystem{
		SparedSystem: SparedSystem{N: 416, Spares: 0, PerChannel: 6},
		MTTRHours:    24,
	}
	a0, err := r0.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if !(a > a0) {
		t.Errorf("spares should improve availability: %v vs %v", a, a0)
	}
}

func TestAvailabilityErrors(t *testing.T) {
	r := RepairableSystem{
		SparedSystem: SparedSystem{N: 4, Spares: 1, PerChannel: 5},
	}
	if _, err := r.Availability(); err == nil {
		t.Error("zero MTTR accepted")
	}
	r = RepairableSystem{
		SparedSystem: SparedSystem{N: 0},
		MTTRHours:    1,
	}
	if _, err := r.Availability(); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestDowntimeConversion(t *testing.T) {
	if got := DowntimeSecondsPerYear(1); got != 0 {
		t.Errorf("perfect availability downtime = %v", got)
	}
	// Five nines ~ 315 seconds/year.
	got := DowntimeSecondsPerYear(0.99999)
	if got < 250 || got > 400 {
		t.Errorf("five nines downtime = %v s/yr", got)
	}
	if DowntimeSecondsPerYear(-1) != DowntimeSecondsPerYear(0) {
		t.Error("clamping broken")
	}
	if DowntimeSecondsPerYear(2) != 0 {
		t.Error("availability > 1 should clamp to 0 downtime")
	}
}

func TestLinkFITComposition(t *testing.T) {
	dr8 := LinkFIT(FITLaserDFB, 8)
	// 8 lasers dominate: 2*(8*500 + 8*5 + 8*10 + 50 + 5) = 2*4175 = 8350.
	if dr8 != 8350 {
		t.Errorf("DR8 FIT = %v, want 8350", dr8)
	}
	if aoc := LinkFIT(FITLaserVCSEL, 8); aoc >= dr8 {
		t.Errorf("VCSEL link %v should beat DFB link %v", aoc, dr8)
	}
}

func TestSurvivalMonotoneInTime(t *testing.T) {
	s := MosaicSystem(400, 4)
	prev := 1.0
	for _, years := range []float64{0.1, 1, 2, 5, 10, 20} {
		got := s.SurvivalProb(years * HoursPerYear)
		if got > prev {
			t.Fatalf("survival increased with time at %v years", years)
		}
		prev = got
	}
}

func BenchmarkSurvivalProb(b *testing.B) {
	s := MosaicSystem(400, 16)
	for i := 0; i < b.N; i++ {
		s.SurvivalProb(5 * HoursPerYear)
	}
}
