package refmodel

import "fmt"

// Reference striper/destriper. The optimized pipeline never materialises
// units — unit (seq, lane) is a byte-offset computation into one stream
// buffer. The reference deals explicit unit records round-robin like a
// hand of cards and reassembles by drawing them back in deal order, so
// the permutation exists as a data structure that can be compared against
// the optimized index arithmetic.

// Unit is one stripe unit assigned to a lane.
type Unit struct {
	Lane    int
	Seq     int // per-lane sequence number
	Payload []byte
}

// Stripe deals the stream into per-lane unit lists, round-robin in stream
// order: unit g goes to lane g mod lanes. The stream length must be a
// whole number of units.
func Stripe(stream []byte, lanes, unitLen int) ([][]Unit, error) {
	if lanes <= 0 || unitLen <= 0 {
		return nil, fmt.Errorf("refmodel: need positive lanes and unitLen")
	}
	if len(stream)%unitLen != 0 {
		return nil, fmt.Errorf("refmodel: stream of %d bytes is not whole units of %d", len(stream), unitLen)
	}
	out := make([][]Unit, lanes)
	lane := 0
	for off := 0; off < len(stream); off += unitLen {
		payload := append([]byte(nil), stream[off:off+unitLen]...)
		out[lane] = append(out[lane], Unit{Lane: lane, Seq: len(out[lane]), Payload: payload})
		lane = (lane + 1) % lanes
	}
	return out, nil
}

// Destripe reverses Stripe by drawing units back in deal order: unit g
// comes from lane g mod lanes with per-lane sequence g div lanes, found
// by linear search so arrival order never matters. Missing units (lost
// frames on that lane) leave a zero-filled gap, matching the
// receive-side contract of the optimized pipeline.
func Destripe(perLane [][]Unit, totalUnits, unitLen int) []byte {
	lanes := len(perLane)
	out := make([]byte, 0, totalUnits*unitLen)
	for g := 0; g < totalUnits; g++ {
		lane := g % lanes
		seq := g / lanes
		var payload []byte
		for _, u := range perLane[lane] {
			if u.Seq == seq {
				payload = u.Payload
				break
			}
		}
		gap := make([]byte, unitLen)
		copy(gap, payload)
		out = append(out, gap...)
	}
	return out
}
