package refmodel

import "math"

// This file is the naive twin of the PHY's binary symmetric channel
// (internal/phy BSC). The channel noise stream is part of the simulation
// spec: a channel owns a xoshiro256++ generator seeded through splitmix64,
// draws skew and dead-channel noise bytes from the top 8 bits of each
// 64-bit output, and places bit errors by inverse-transform sampling of
// the geometric gap distribution — gap = floor(log1p(-u)/log1p(-p)) —
// consuming exactly one uniform draw per placed error plus one final
// overshooting draw. Both generators below are re-implemented here from
// the published algorithms, sharing no code with internal/phy; the
// optimized channel jumps straight to each error byte while this twin
// walks the stream bit by bit, counting the gap down one position at a
// time. The bsc_skip diffcheck stage holds the two byte-identical.

// bscRNG is an independent xoshiro256++ implementation.
type bscRNG struct {
	s0, s1, s2, s3 uint64
}

// newBSCRNG seeds the four state words with consecutive splitmix64
// outputs, exactly as the xoshiro authors prescribe.
func newBSCRNG(seed int64) bscRNG {
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return bscRNG{s0: next(), s1: next(), s2: next(), s3: next()}
}

func rotl64(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

func (r *bscRNG) next() uint64 {
	out := rotl64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl64(r.s3, 45)
	return out
}

func (r *bscRNG) uniform() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *bscRNG) noiseByte() byte { return byte(r.next() >> 56) }

// BSC is the reference binary symmetric channel. Fields mirror the
// optimized channel's public knobs.
type BSC struct {
	BER       float64
	SkewBytes int
	Dead      bool

	rng bscRNG
}

// NewBSC returns a reference channel with the given bit error rate and
// seed, applying the same [0, 0.5] clamp as the optimized constructor.
func NewBSC(ber float64, seed int64) *BSC {
	if ber < 0 {
		ber = 0
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return &BSC{BER: ber, rng: newBSCRNG(seed)}
}

// Transmit passes data through the channel and returns the received
// bytes as a fresh slice: skew prefix, then data with bit errors applied
// bit-serially.
func (c *BSC) Transmit(data []byte) []byte {
	out := make([]byte, 0, c.SkewBytes+len(data))
	for i := 0; i < c.SkewBytes; i++ {
		out = append(out, c.rng.noiseByte())
	}
	if c.Dead {
		for range data {
			out = append(out, c.rng.noiseByte())
		}
		return out
	}
	out = append(out, data...)
	body := out[c.SkewBytes:]
	p := c.BER
	if p <= 0 || len(body) == 0 {
		return out
	}
	if p >= 1 {
		// Every bit flips; no draws consumed (BER is a public knob, so
		// values beyond the constructor clamp are still defined).
		for i := range body {
			body[i] ^= 0xff
		}
		return out
	}
	// Walk the stream one bit at a time, counting down the geometric gap
	// to the next error; when it hits zero, flip and redraw. The gap
	// stays in float space so a tiny p (astronomical gaps) never touches
	// integer range; overshooting gaps just run the walk off the end.
	logq := math.Log1p(-p)
	nbits := 8 * len(body)
	gap := math.Floor(math.Log1p(-c.rng.uniform()) / logq)
	for bit := 0; bit < nbits; bit++ {
		if gap >= 1 {
			gap--
			continue
		}
		body[bit/8] ^= 1 << uint(bit%8)
		if bit+1 >= nbits {
			// The stream ends on this flip: no further draw, matching the
			// optimized channel (which only draws while bits remain).
			return out
		}
		gap = math.Floor(math.Log1p(-c.rng.uniform()) / logq)
	}
	return out
}
