package refmodel

// FECStatus classifies a reference FEC decode outcome, mirroring the
// error semantics of phy.FEC.AppendDecode: OK, an uncorrectable block
// (best-effort bytes still returned), or a stream too short to hold the
// requested plaintext (no bytes returned).
type FECStatus int

// Decode outcomes.
const (
	FECOK FECStatus = iota
	FECOverload
	FECTruncated
)

// FECRef is the reference counterpart of the phy.FEC byte-stream
// contract: fixed-rate block segmentation with zero-symbol padding.
type FECRef interface {
	EncodedLen(n int) int
	Encode(plain []byte) []byte
	Decode(encoded []byte, plainLen int) (out []byte, corrections int, status FECStatus)
}

// NoFECRef passes bytes through unprotected.
type NoFECRef struct{}

// EncodedLen implements FECRef.
func (NoFECRef) EncodedLen(n int) int { return n }

// Encode implements FECRef.
func (NoFECRef) Encode(plain []byte) []byte { return append([]byte(nil), plain...) }

// Decode implements FECRef.
func (NoFECRef) Decode(encoded []byte, plainLen int) ([]byte, int, FECStatus) {
	if plainLen > len(encoded) {
		return nil, 0, FECTruncated
	}
	return append([]byte(nil), encoded[:plainLen]...), 0, FECOK
}

// RSByteFEC maps a reference RS code over GF(256) onto the byte stream,
// one symbol per byte, replicating the segmentation contract of
// phy.RSFEC: plaintext is split into k-byte blocks (the last one
// zero-padded), each block becomes an n-byte codeword, and decode
// passes uncorrectable blocks through best-effort.
type RSByteFEC struct {
	Code *RS
}

// NewRSLiteRef returns the reference RS(68,64) byte FEC — the oracle for
// the optimized RS-lite hot path.
func NewRSLiteRef() *RSByteFEC {
	c, err := NewRS(68, 64, 0)
	if err != nil {
		panic(err)
	}
	return &RSByteFEC{Code: c}
}

// EncodedLen implements FECRef.
func (r *RSByteFEC) EncodedLen(n int) int {
	k := r.Code.K()
	blocks := (n + k - 1) / k
	return blocks * r.Code.N()
}

// Encode implements FECRef.
func (r *RSByteFEC) Encode(plain []byte) []byte {
	k, n := r.Code.K(), r.Code.N()
	blocks := (len(plain) + k - 1) / k
	out := make([]byte, 0, blocks*n)
	for b := 0; b < blocks; b++ {
		syms := make([]int, k)
		for i := 0; i < k; i++ {
			if idx := b*k + i; idx < len(plain) {
				syms[i] = int(plain[idx])
			}
		}
		cw, err := r.Code.Encode(syms)
		if err != nil {
			panic(err) // bytes are always in range
		}
		for _, s := range cw {
			out = append(out, byte(s))
		}
	}
	return out
}

// Decode implements FECRef. Corrections accumulate across blocks even
// when a later block is uncorrectable, matching the optimized decoder.
func (r *RSByteFEC) Decode(encoded []byte, plainLen int) ([]byte, int, FECStatus) {
	k, n := r.Code.K(), r.Code.N()
	np := n - k
	blocks := (plainLen + k - 1) / k
	if len(encoded) < blocks*n {
		return nil, 0, FECTruncated
	}
	out := make([]byte, 0, plainLen)
	corrections := 0
	status := FECOK
	for b := 0; b < blocks; b++ {
		word := make([]int, n)
		for i := 0; i < n; i++ {
			word[i] = int(encoded[b*n+i])
		}
		fixed, ncorr, ok := r.Code.Decode(word)
		if !ok {
			status = FECOverload
			fixed = word // best effort: pass the received word through
		}
		corrections += ncorr
		for i := 0; i < k && len(out) < plainLen; i++ {
			out = append(out, byte(fixed[np+i]))
		}
	}
	return out, corrections, status
}

// Channel-frame wire constants — the Mosaic frame spec re-stated
// independently of internal/phy: a 2-byte alignment marker outside the
// FEC, then FEC(lane[2] | seq[4] | payload | crc32[4]), big-endian.
const (
	frameMarker0 = 0xD5
	frameMarker1 = 0xC3
)

// Framer is the reference channel framer: every call allocates fresh
// buffers, every frame is assembled field by field, and the stream
// scanner re-derives everything at each hunt position.
type Framer struct {
	fec        FECRef
	payloadLen int
	bodyLen    int
	encLen     int
}

// NewFramer builds a reference framer for the given FEC and payload size.
func NewFramer(fec FECRef, payloadLen int) *Framer {
	body := 2 + 4 + payloadLen + 4
	return &Framer{fec: fec, payloadLen: payloadLen, bodyLen: body, encLen: fec.EncodedLen(body)}
}

// WireLen returns the on-the-wire frame size.
func (f *Framer) WireLen() int { return 2 + f.encLen }

// PayloadLen returns the fixed payload size.
func (f *Framer) PayloadLen() int { return f.payloadLen }

// EncodeFrame serialises one channel frame to fresh wire bytes.
func (f *Framer) EncodeFrame(lane int, seq uint32, payload []byte) []byte {
	if len(payload) != f.payloadLen {
		panic("refmodel: payload length mismatch")
	}
	body := make([]byte, 0, f.bodyLen)
	body = append(body, byte(lane>>8), byte(lane))
	body = append(body, byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
	body = append(body, payload...)
	crc := CRC32(body)
	body = append(body, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	out := []byte{frameMarker0, frameMarker1}
	return append(out, f.fec.Encode(body)...)
}

// ChannelFrame is one recovered reference frame.
type ChannelFrame struct {
	Lane        int
	Seq         uint32
	Payload     []byte
	Corrections int
}

// DecodeStats mirrors phy.DecodeStats field for field.
type DecodeStats struct {
	Frames       int
	CRCFailures  int
	FECOverloads int
	Corrections  int
	SkippedBytes int
}

// DecodeStream scans a received byte stream for channel frames with the
// same hunt/resync protocol as the optimized scanner: a frame is accepted
// only where the marker matches, the FEC yields a full body, and the CRC
// checks; accepted frames advance the scan by a whole frame, everything
// else advances one byte.
func (f *Framer) DecodeStream(stream []byte) ([]ChannelFrame, DecodeStats) {
	var frames []ChannelFrame
	var st DecodeStats
	i := 0
	for i+f.WireLen() <= len(stream) {
		if stream[i] != frameMarker0 || stream[i+1] != frameMarker1 {
			i++
			st.SkippedBytes++
			continue
		}
		body, ncorr, status := f.fec.Decode(stream[i+2:i+2+f.encLen], f.bodyLen)
		if status != FECOK {
			st.FECOverloads++
		}
		if len(body) == f.bodyLen {
			crcWant := uint32(body[f.bodyLen-4])<<24 | uint32(body[f.bodyLen-3])<<16 |
				uint32(body[f.bodyLen-2])<<8 | uint32(body[f.bodyLen-1])
			if CRC32(body[:f.bodyLen-4]) == crcWant {
				frames = append(frames, ChannelFrame{
					Lane:        int(body[0])<<8 | int(body[1]),
					Seq:         uint32(body[2])<<24 | uint32(body[3])<<16 | uint32(body[4])<<8 | uint32(body[5]),
					Payload:     append([]byte(nil), body[6:6+f.payloadLen]...),
					Corrections: ncorr,
				})
				st.Frames++
				st.Corrections += ncorr
				i += f.WireLen()
				continue
			}
			st.CRCFailures++
		}
		i++
		st.SkippedBytes++
	}
	return frames, st
}
