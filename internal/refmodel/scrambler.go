package refmodel

// Reference x^58 multiplicative scrambler (G(x) = 1 + x^39 + x^58). Where
// the optimized implementation keeps a 58-bit shift register in a uint64,
// the reference keeps the literal history of bits as a slice and reads the
// taps by indexing 39 and 58 positions back — the textbook picture of a
// self-synchronizing scrambler, one bit at a time.

// seedHistory expands a 58-bit register seed into an output/input history,
// oldest bit first: register bit j is the bit from j+1 steps ago.
func seedHistory(seed uint64) []byte {
	h := make([]byte, 58)
	for j := 0; j < 58; j++ {
		h[57-j] = byte(seed>>uint(j)) & 1
	}
	return h
}

// Scrambler is the reference scrambler. Construct with NewScrambler.
type Scrambler struct {
	hist []byte // every output bit ever produced, preceded by the seed bits
}

// NewScrambler seeds the reference scrambler.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{hist: seedHistory(seed)}
}

// ScrambleBit scrambles one bit: the output is the input XOR the outputs
// from 39 and 58 steps ago.
func (s *Scrambler) ScrambleBit(in byte) byte {
	n := len(s.hist)
	out := (in & 1) ^ s.hist[n-39] ^ s.hist[n-58]
	s.hist = append(s.hist, out)
	return out
}

// Scramble scrambles a packed byte slice, LSB-first within each byte,
// returning a fresh slice.
func (s *Scrambler) Scramble(bits []byte) []byte {
	out := make([]byte, len(bits))
	for i, b := range bits {
		var v byte
		for j := 0; j < 8; j++ {
			v |= s.ScrambleBit(b>>uint(j)) << uint(j)
		}
		out[i] = v
	}
	return out
}

// Descrambler is the reference descrambler: the taps read the *input*
// history, which is what makes the pair self-synchronizing.
type Descrambler struct {
	hist []byte // every input bit ever consumed, preceded by the seed bits
}

// NewDescrambler seeds the reference descrambler.
func NewDescrambler(seed uint64) *Descrambler {
	return &Descrambler{hist: seedHistory(seed)}
}

// DescrambleBit descrambles one bit.
func (d *Descrambler) DescrambleBit(in byte) byte {
	n := len(d.hist)
	out := (in & 1) ^ d.hist[n-39] ^ d.hist[n-58]
	d.hist = append(d.hist, in&1)
	return out
}

// Descramble descrambles a packed byte slice, LSB-first within each byte,
// returning a fresh slice.
func (d *Descrambler) Descramble(bits []byte) []byte {
	out := make([]byte, len(bits))
	for i, b := range bits {
		var v byte
		for j := 0; j < 8; j++ {
			v |= d.DescrambleBit(b>>uint(j)) << uint(j)
		}
		out[i] = v
	}
	return out
}
