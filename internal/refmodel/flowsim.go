package refmodel

import (
	"math"
	"sort"
)

// RefFlow is one flow in the reference max-min allocation: an ID (the
// tie-break and ordering key), the link IDs it crosses, and its
// scheduling weight (<= 0 or NaN behaves as 1, mirroring netsim).
type RefFlow struct {
	ID     int
	Path   []int
	Weight float64
}

func (f RefFlow) weight() float64 {
	if f.Weight <= 0 || f.Weight != f.Weight {
		return 1
	}
	return f.Weight
}

// MaxMinRates is the naive global reference for weighted max-min
// fairness by progressive filling — today's FlowSim algorithm, kept as
// the always-global twin the incremental/sharded engine is diffed
// against (diffcheck stage flowsim_inc).
//
// Semantics: repeatedly find the link with the smallest remaining
// capacity per unit of unfrozen weight (lowest link index on a tie),
// freeze every unfrozen flow crossing it at fairShare*weight in
// ascending flow-ID order, subtract, and repeat until no link constrains
// an unfrozen flow. Flows with an empty path (or left unfrozen because
// every link on their path lost all unfrozen weight) get rate 0 — they
// are unconstrained here and netsim treats them the same way.
//
// The iteration order is fixed (links ascending, flows ascending by ID)
// so the floating-point result is bit-for-bit reproducible; the
// optimized engine must match it exactly, not just within an epsilon.
func MaxMinRates(capacity []float64, flows []RefFlow) map[int]float64 {
	rates := make(map[int]float64, len(flows))
	ordered := make([]RefFlow, len(flows))
	copy(ordered, flows)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	remCap := make([]float64, len(capacity))
	copy(remCap, capacity)
	weightOn := make([]float64, len(capacity))
	frozen := make(map[int]bool, len(flows))
	for _, f := range ordered {
		rates[f.ID] = 0
		for _, l := range f.Path {
			weightOn[l] += f.weight()
		}
	}

	for {
		bottleneck := -1
		best := math.Inf(1)
		for l := range remCap {
			if weightOn[l] <= 0 {
				continue
			}
			if fair := remCap[l] / weightOn[l]; fair < best {
				best = fair
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			return rates
		}
		progressed := false
		for _, f := range ordered {
			if frozen[f.ID] {
				continue
			}
			crosses := false
			for _, l := range f.Path {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			rate := best * f.weight()
			rates[f.ID] = rate
			for _, l := range f.Path {
				remCap[l] -= rate
				if remCap[l] < 0 {
					remCap[l] = 0
				}
				weightOn[l] -= f.weight()
			}
			frozen[f.ID] = true
			progressed = true
		}
		// A bottleneck that freezes no flow carries only floating-point
		// weight residue from non-integer weights: every flow that crossed
		// it is already frozen. Retire the link and keep filling — other
		// links may still constrain live flows.
		if !progressed {
			weightOn[bottleneck] = 0
		}
	}
}
