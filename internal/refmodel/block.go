package refmodel

import "fmt"

// Reference 64b/66b block coding (byte-oriented model: 1 sync byte + 8
// payload bytes per block). The constants are re-stated here from the
// IEEE clause-49 subset the Mosaic PHY uses — sync 01 for data, 10 for
// control, idle/start/terminate control types — independently of
// internal/coding/linecode.

// BlockLen is the serialized size of one block in the byte model.
const BlockLen = 9

// Sync header bytes.
const (
	refSyncData byte = 0b01
	refSyncCtrl byte = 0b10
)

// Control type bytes.
const (
	refTypeIdle  byte = 0x1e
	refTypeStart byte = 0x78
)

// refTermType[n] is the type byte for "terminate after n data bytes".
var refTermType = [8]byte{0x87, 0x99, 0xaa, 0xb4, 0xcc, 0xd2, 0xe1, 0xff}

// BlockKind discriminates reference block contents.
type BlockKind int

// Block kinds.
const (
	BlockData BlockKind = iota
	BlockIdle
	BlockStart
	BlockTerm
	BlockBad // unparseable sync or control type
)

// RefBlock is one decoded reference block.
type RefBlock struct {
	Kind    BlockKind
	Data    []byte // BlockData: 8 bytes; BlockStart: 7; BlockTerm: TermLen
	TermLen int
}

// appendIdleBlock serialises one idle block onto dst.
func appendIdleBlock(dst []byte) []byte {
	dst = append(dst, refSyncCtrl, refTypeIdle)
	for i := 0; i < 7; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// AppendFrameBlocks serialises a frame as start/data/terminate blocks:
// the start block carries the first 7 bytes, full data blocks the next
// 8-byte words, and the terminate block the 0..7 byte remainder.
func AppendFrameBlocks(dst, frame []byte) ([]byte, error) {
	if len(frame) < 7 {
		return dst, fmt.Errorf("refmodel: frame of %d bytes below the 7-byte start block", len(frame))
	}
	dst = append(dst, refSyncCtrl, refTypeStart)
	dst = append(dst, frame[:7]...)
	rest := frame[7:]
	for len(rest) >= 8 {
		dst = append(dst, refSyncData)
		dst = append(dst, rest[:8]...)
		rest = rest[8:]
	}
	dst = append(dst, refSyncCtrl, refTermType[len(rest)])
	dst = append(dst, rest...)
	for i := len(rest); i < 7; i++ {
		dst = append(dst, 0)
	}
	return dst, nil
}

// DecodeBlockBytes parses one serialized 9-byte block. Anything that is
// not a well-formed data/idle/start/terminate block comes back BlockBad.
func DecodeBlockBytes(b []byte) RefBlock {
	if len(b) != BlockLen {
		return RefBlock{Kind: BlockBad}
	}
	switch b[0] {
	case refSyncData:
		return RefBlock{Kind: BlockData, Data: append([]byte(nil), b[1:9]...)}
	case refSyncCtrl:
		switch b[1] {
		case refTypeIdle:
			return RefBlock{Kind: BlockIdle}
		case refTypeStart:
			return RefBlock{Kind: BlockStart, Data: append([]byte(nil), b[2:9]...)}
		}
		for n, tt := range refTermType {
			if b[1] == tt {
				return RefBlock{Kind: BlockTerm, TermLen: n, Data: append([]byte(nil), b[2:2+n]...)}
			}
		}
		return RefBlock{Kind: BlockBad}
	default:
		return RefBlock{Kind: BlockBad}
	}
}
