// Package refmodel holds naive, transparently-correct reference
// implementations of every optimized stage in the PHY/MAC hot path:
// GF(256) arithmetic by shift-and-add, Reed-Solomon encoding by solving
// the root conditions with Gaussian elimination and decoding by
// brute-force bounded-distance search, a bit-history scrambler, a
// fresh-allocation channel framer, a list-based striper, a lockstep
// go-back-N MAC, and a serial end-to-end pipeline built from all of the
// above (including its own 64b/66b block codec and bitwise CRC32).
//
// Nothing here shares code with the optimized implementations — the
// package imports only the standard library — and nothing here is fast.
// That is the point: internal/diffcheck drives the optimized and
// reference implementations over the same randomized inputs and any
// disagreement convicts one of them. Goldens pin one trajectory; these
// models pin the algorithm.
package refmodel

// gfPoly is the primitive polynomial for GF(2^8), x^8+x^4+x^3+x^2+1,
// written independently of internal/coding/gf (which uses the same
// conventional polynomial — that is what makes the fields comparable).
const gfPoly = 0x11d

// GFAdd returns a+b in GF(256): carry-less, so XOR.
func GFAdd(a, b int) int { return a ^ b }

// GFMul multiplies in GF(256) by textbook shift-and-add: for each set bit
// i of b, add a·x^i, reducing by the field polynomial one shift at a time.
func GFMul(a, b int) int {
	p := 0
	for i := 0; i < 8; i++ {
		if b&(1<<i) == 0 {
			continue
		}
		s := a
		for j := 0; j < i; j++ {
			s <<= 1
			if s&0x100 != 0 {
				s ^= gfPoly
			}
		}
		p ^= s
	}
	return p
}

// GFPow raises a to a non-negative power by repeated multiplication.
func GFPow(a, n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out = GFMul(out, a)
	}
	return out
}

// GFInv finds the multiplicative inverse by exhaustive search.
func GFInv(a int) int {
	for b := 1; b < 256; b++ {
		if GFMul(a, b) == 1 {
			return b
		}
	}
	panic("refmodel: inverse of zero")
}

// GFAlpha returns alpha^i for the primitive element alpha = x (the value
// 2), with any integer exponent. The multiplicative group has order 255.
func GFAlpha(i int) int {
	i %= 255
	if i < 0 {
		i += 255
	}
	return GFPow(2, i)
}

// gfSolve solves the square linear system M·y = rhs over GF(256) by
// Gaussian elimination with partial pivoting (any nonzero pivot works in
// a field). It returns false when the system is singular. M is modified.
func gfSolve(m [][]int, rhs []int) ([]int, bool) {
	n := len(rhs)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := GFInv(m[col][col])
		for c := col; c < n; c++ {
			m[col][c] = GFMul(m[col][c], inv)
		}
		rhs[col] = GFMul(rhs[col], inv)
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for c := col; c < n; c++ {
				m[r][c] = GFAdd(m[r][c], GFMul(f, m[col][c]))
			}
			rhs[r] = GFAdd(rhs[r], GFMul(f, rhs[col]))
		}
	}
	return rhs, true
}

// CRC32 computes the IEEE CRC-32 (reflected, polynomial 0xEDB88320) one
// bit at a time — the reference for every CRC the framing layers use.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
