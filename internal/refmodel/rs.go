package refmodel

import "fmt"

// RS is a reference systematic Reed-Solomon code over GF(256). It mirrors
// the codeword layout of internal/coding/rs — positions 0..n-k-1 hold the
// parity, n-k..n-1 the data — but shares no algorithm with it:
//
//   - Encode solves the root conditions c(alpha^{fcr+j}) = 0 directly as a
//     linear system for the parity symbols (Gaussian elimination), instead
//     of running the generator-polynomial division register.
//   - Decode is brute-force bounded-distance: it tries every error-position
//     subset of weight 1..t, solves the syndrome equations for the error
//     magnitudes, and accepts the unique consistent correction — instead of
//     Berlekamp-Massey, Chien search, and Forney's formula.
//
// Both are textbook-obvious and unconscionably slow, which is exactly what
// a differential oracle wants.
type RS struct {
	n, k, t, fcr int
}

// maxSubsets bounds the brute-force search space so a reference decode
// stays test-speed; codes whose subset count exceeds it are rejected.
const maxSubsets = 200000

// NewRS builds a reference RS(n,k) over GF(256) with first consecutive
// root alpha^fcr.
func NewRS(n, k, fcr int) (*RS, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("refmodel: invalid RS(%d,%d)", n, k)
	}
	c := &RS{n: n, k: k, t: (n - k) / 2, fcr: fcr}
	subsets := 0
	choose := 1
	for w := 1; w <= c.t; w++ {
		choose = choose * (n - w + 1) / w
		subsets += choose
		if subsets > maxSubsets {
			return nil, fmt.Errorf("refmodel: RS(%d,%d) brute-force space too large (> %d subsets)", n, k, maxSubsets)
		}
	}
	return c, nil
}

// N returns the codeword length, K the data length, T the error budget.
func (c *RS) N() int { return c.n }

// K returns the number of data symbols.
func (c *RS) K() int { return c.k }

// T returns the number of correctable symbol errors.
func (c *RS) T() int { return c.t }

// evalAt evaluates the received word as a polynomial at alpha^e, term by
// term with naive exponentiation — no Horner, no shared state.
func (c *RS) evalAt(word []int, e int) int {
	x := GFAlpha(e)
	sum := 0
	for i, w := range word {
		sum = GFAdd(sum, GFMul(w, GFPow(x, i)))
	}
	return sum
}

// Encode appends n-k parity symbols for the k data symbols by solving the
// root conditions: with the data occupying positions n-k..n-1, the parity
// symbols p_0..p_{np-1} must satisfy, for each root X_j = alpha^{fcr+j},
//
//	sum_i p_i·X_j^i = sum_i data_i·X_j^{np+i}
//
// (char-2 fields make subtraction addition). The Vandermonde-structured
// system is nonsingular because the roots are distinct.
func (c *RS) Encode(data []int) ([]int, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("refmodel: encode needs %d symbols, got %d", c.k, len(data))
	}
	for _, s := range data {
		if s < 0 || s > 255 {
			return nil, fmt.Errorf("refmodel: symbol %d out of range", s)
		}
	}
	np := c.n - c.k
	m := make([][]int, np)
	rhs := make([]int, np)
	for j := 0; j < np; j++ {
		x := GFAlpha(c.fcr + j)
		m[j] = make([]int, np)
		for i := 0; i < np; i++ {
			m[j][i] = GFPow(x, i)
		}
		for i, d := range data {
			rhs[j] = GFAdd(rhs[j], GFMul(d, GFPow(x, np+i)))
		}
	}
	parity, ok := gfSolve(m, rhs)
	if !ok {
		return nil, fmt.Errorf("refmodel: singular parity system for RS(%d,%d)", c.n, c.k)
	}
	out := make([]int, c.n)
	copy(out[:np], parity)
	copy(out[np:], data)
	return out, nil
}

// Decode brute-forces the bounded-distance decoding of received: it
// returns the corrected codeword, the number of symbols corrected, and
// ok=false when no codeword lies within distance t (the word is then
// returned uncorrected, best-effort). A returned correction is verified
// against all n-k syndrome equations, so a true result is a codeword by
// construction.
func (c *RS) Decode(received []int) ([]int, int, bool) {
	if len(received) != c.n {
		return nil, 0, false
	}
	out := make([]int, c.n)
	copy(out, received)
	np := c.n - c.k
	syn := make([]int, np)
	clean := true
	for j := 0; j < np; j++ {
		syn[j] = c.evalAt(received, c.fcr+j)
		if syn[j] != 0 {
			clean = false
		}
	}
	if clean {
		return out, 0, true
	}
	positions := make([]int, c.t)
	for w := 1; w <= c.t; w++ {
		if fixed := c.searchWeight(received, syn, positions[:w], 0, 0); fixed != nil {
			return fixed, w, true
		}
	}
	return out, 0, false
}

// searchWeight enumerates error-position subsets of len(chosen) symbols
// (positions ascending, continuing from `from` with `depth` already
// chosen) and returns the corrected codeword for the first consistent
// subset, or nil.
func (c *RS) searchWeight(received, syn, chosen []int, depth, from int) []int {
	w := len(chosen)
	if depth == w {
		return c.tryPattern(received, syn, chosen)
	}
	for pos := from; pos <= c.n-(w-depth); pos++ {
		chosen[depth] = pos
		if fixed := c.searchWeight(received, syn, chosen, depth+1, pos+1); fixed != nil {
			return fixed
		}
	}
	return nil
}

// tryPattern solves the first w syndrome equations for the magnitudes at
// the chosen positions, then checks the remaining equations and that no
// magnitude is zero (a zero magnitude means a lower-weight pattern, which
// an earlier pass already tried).
func (c *RS) tryPattern(received, syn, chosen []int) []int {
	w := len(chosen)
	np := c.n - c.k
	m := make([][]int, w)
	rhs := make([]int, w)
	for j := 0; j < w; j++ {
		m[j] = make([]int, w)
		for e, pos := range chosen {
			m[j][e] = GFPow(GFAlpha(pos), c.fcr+j)
		}
		rhs[j] = syn[j]
	}
	mags, ok := gfSolve(m, rhs)
	if !ok {
		return nil
	}
	for _, y := range mags {
		if y == 0 {
			return nil
		}
	}
	for j := w; j < np; j++ {
		sum := 0
		for e, pos := range chosen {
			sum = GFAdd(sum, GFMul(mags[e], GFPow(GFAlpha(pos), c.fcr+j)))
		}
		if sum != syn[j] {
			return nil
		}
	}
	out := make([]int, c.n)
	copy(out, received)
	for e, pos := range chosen {
		out[pos] = GFAdd(out[pos], mags[e])
	}
	// Paranoia: the accepted correction must be a codeword.
	for j := 0; j < np; j++ {
		if c.evalAt(out, c.fcr+j) != 0 {
			return nil
		}
	}
	return out
}
