package refmodel

import "fmt"

// Reference MAC layer. The wire format is re-stated here independently of
// internal/mac (magic | flags [| vc] | seq | ack | len | payload | crc32,
// idle fill 0x00), the deframer parses every field with explicit
// arithmetic and the bitwise reference CRC, and the ARQ endpoints keep
// their replay state as plain slices and maps of freshly copied payloads
// — no ring, no buffer recycling, no reuse of any kind.

// MAC wire constants.
const (
	MACMagic0   = 0xD5
	MACMagic1   = 0x4D
	MACIdleByte = 0x00

	MACHeaderLen   = 9
	MACHeaderLenV2 = 10 // v2 inserts a one-byte VC field after flags
	MACOverhead    = MACHeaderLen + 4
	MACOverheadV2  = MACHeaderLenV2 + 4
	MACMaxPayload  = 2048 // default payload bound, as in the optimized MAC
	MACFlagData    = 1 << 0
	MACFlagAck     = 1 << 1
	MACFlagSack    = 1 << 2 // payload is a MACSackBytes selective-ack bitmap
	MACFlagV2      = 1 << 3 // header carries the VC byte
	MACSackBytes   = 8
	MACWindow      = 64 // default go-back-N window
	MACRetxTimeout = 3  // default superframe retransmit timeout
)

// MACFrame is one decoded reference MAC frame (payload freshly copied).
type MACFrame struct {
	Flags   byte
	VC      byte // 0 for v1 frames
	Seq     uint16
	Ack     uint16
	Payload []byte
}

// MACDeframeStats mirrors mac.DeframeStats field for field.
type MACDeframeStats struct {
	Frames        uint64
	PayloadBytes  uint64
	IdleBytes     uint64
	SkippedBytes  uint64
	HeaderRejects uint64
	CRCRejects    uint64
	Truncated     uint64
}

// AppendMACFrame encodes one v1 MAC frame onto dst byte by byte (the V2
// flag bit is stripped, as in the optimized encoder).
func AppendMACFrame(dst []byte, flags byte, seq, ack uint16, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, MACMagic0, MACMagic1, flags&^byte(MACFlagV2),
		byte(seq>>8), byte(seq), byte(ack>>8), byte(ack),
		byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := CRC32(dst[start:])
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// AppendMACFrameV2 encodes one v2 MAC frame (the V2 flag bit is forced
// on, and the VC byte follows the flags).
func AppendMACFrameV2(dst []byte, flags, vc byte, seq, ack uint16, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, MACMagic0, MACMagic1, flags|byte(MACFlagV2), vc,
		byte(seq>>8), byte(seq), byte(ack>>8), byte(ack),
		byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := CRC32(dst[start:])
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// MACDeframe scans buf for MAC frames with the same accept/reject
// protocol as the optimized deframer — accepted frames consume their
// whole extent, every reject advances one byte — but re-derives each
// candidate from scratch: header fields by explicit shifts, the CRC by
// the bitwise reference implementation, payloads as fresh copies.
func MACDeframe(buf []byte, maxPayload int) ([]MACFrame, MACDeframeStats) {
	if maxPayload <= 0 {
		maxPayload = MACMaxPayload
	}
	var frames []MACFrame
	var st MACDeframeStats
	i := 0
	for i+MACOverhead <= len(buf) {
		if buf[i] != MACMagic0 {
			if buf[i] == MACIdleByte {
				st.IdleBytes++
			} else {
				st.SkippedBytes++
			}
			i++
			continue
		}
		if buf[i+1] != MACMagic1 {
			st.SkippedBytes++
			i++
			continue
		}
		flags := buf[i+2]
		hdr := MACHeaderLen
		var vc byte
		if flags&MACFlagV2 != 0 {
			hdr = MACHeaderLenV2
			if i+hdr+4 > len(buf) {
				// The longer v2 header itself runs past the buffer.
				st.Truncated++
				i++
				continue
			}
			vc = buf[i+3]
		}
		n := int(buf[i+hdr-2])<<8 | int(buf[i+hdr-1])
		if n > maxPayload {
			st.HeaderRejects++
			i++
			continue
		}
		end := i + hdr + n + 4
		if end > len(buf) {
			st.Truncated++
			i++
			continue
		}
		want := uint32(buf[end-4])<<24 | uint32(buf[end-3])<<16 |
			uint32(buf[end-2])<<8 | uint32(buf[end-1])
		if CRC32(buf[i:end-4]) != want {
			st.CRCRejects++
			i++
			continue
		}
		st.Frames++
		st.PayloadBytes += uint64(n)
		frames = append(frames, MACFrame{
			Flags:   flags,
			VC:      vc,
			Seq:     uint16(buf[i+hdr-6])<<8 | uint16(buf[i+hdr-5]),
			Ack:     uint16(buf[i+hdr-4])<<8 | uint16(buf[i+hdr-3]),
			Payload: append([]byte(nil), buf[i+hdr:i+hdr+n]...),
		})
		i = end
	}
	for ; i < len(buf); i++ {
		if buf[i] == MACIdleByte {
			st.IdleBytes++
		} else {
			st.SkippedBytes++
		}
	}
	return frames, st
}

// MACStats mirrors the counter fields of mac.Stats (gauges included).
type MACStats struct {
	PacketsQueued uint64
	DataTx        uint64
	Retransmits   uint64
	AcksTx        uint64
	DataRx        uint64
	Delivered     uint64
	Duplicates    uint64
	Discarded     uint64
	Reordered     uint64
	AcksRx        uint64
	SacksRx       uint64
	UnknownVC     uint64
	CreditStalls  uint64
	Timeouts      uint64

	InFlight     int
	QueueDepth   int
	ReorderDepth int

	Deframe MACDeframeStats
}

// macSlot is one in-flight frame: slot k of the list carries sequence
// base+k. Payloads are owned fresh copies.
type macSlot struct {
	payload  []byte
	sentTick uint64
}

// LLREndpoint is the reference go-back-N endpoint: a single-threaded
// state machine advanced in lockstep with the optimized mac.Endpoint.
// BuildSuperframe must produce byte-identical superframes and Stats must
// track field for field — the protocol decisions (retransmit ordering,
// budget cuts, ack piggybacking, idle fill) are re-derived from the
// protocol description, not from the optimized code's buffer mechanics.
type LLREndpoint struct {
	window      int
	retxTimeout int
	maxPayload  int
	budget      int

	queue    [][]byte
	inflight []macSlot // inflight[0] carries seq base
	base     uint16
	nextSeq  uint16

	rxExpected uint16
	ackDirty   bool
	tick       uint64
	stats      MACStats
	delivered  [][]byte
}

// NewLLREndpoint builds a reference endpoint; zero parameters select the
// protocol defaults (window 64, timeout 3, max payload 2048).
func NewLLREndpoint(window, retxTimeout, maxPayload, budget int) (*LLREndpoint, error) {
	if window <= 0 {
		window = MACWindow
	}
	if retxTimeout <= 0 {
		retxTimeout = MACRetxTimeout
	}
	if maxPayload <= 0 {
		maxPayload = MACMaxPayload
	}
	if budget < maxPayload+MACOverhead {
		return nil, fmt.Errorf("refmodel: budget %d cannot hold one max frame", budget)
	}
	return &LLREndpoint{window: window, retxTimeout: retxTimeout, maxPayload: maxPayload, budget: budget}, nil
}

// Send queues one packet (copied).
func (e *LLREndpoint) Send(payload []byte) error {
	if len(payload) > e.maxPayload {
		return fmt.Errorf("refmodel: packet %dB exceeds max payload %d", len(payload), e.maxPayload)
	}
	e.queue = append(e.queue, append([]byte(nil), payload...))
	e.stats.PacketsQueued++
	return nil
}

// Delivered returns every in-order packet delivered so far (fresh
// copies, in delivery order).
func (e *LLREndpoint) Delivered() [][]byte { return e.delivered }

// BuildSuperframe advances one tick and returns a fresh superframe
// payload: timed-out window replay first, then fresh data, then a pure
// ack if needed, then idle fill to the budget.
func (e *LLREndpoint) BuildSuperframe() []byte {
	e.tick++
	out := make([]byte, 0, e.budget)
	ackSent := false

	if len(e.inflight) > 0 && e.tick-e.inflight[0].sentTick >= uint64(e.retxTimeout) {
		e.stats.Timeouts++
		for k := range e.inflight {
			if len(out)+MACOverhead+len(e.inflight[k].payload) > e.budget {
				break
			}
			out = AppendMACFrame(out, MACFlagData|MACFlagAck,
				e.base+uint16(k), e.rxExpected, e.inflight[k].payload)
			e.inflight[k].sentTick = e.tick
			e.stats.Retransmits++
			ackSent = true
		}
	}

	for len(e.queue) > 0 && len(e.inflight) < e.window {
		p := e.queue[0]
		if len(out)+MACOverhead+len(p) > e.budget {
			break
		}
		e.inflight = append(e.inflight, macSlot{payload: append([]byte(nil), p...), sentTick: e.tick})
		out = AppendMACFrame(out, MACFlagData|MACFlagAck, e.nextSeq, e.rxExpected, p)
		e.nextSeq++
		e.stats.DataTx++
		ackSent = true
		e.queue = e.queue[1:]
	}
	if len(e.queue) > 0 && len(e.inflight) == e.window {
		e.stats.CreditStalls++
	}

	if e.ackDirty && !ackSent {
		out = AppendMACFrame(out, MACFlagAck, 0, e.rxExpected, nil)
		e.stats.AcksTx++
		ackSent = true
	}
	if ackSent {
		e.ackDirty = false
	}

	for len(out) < e.budget {
		out = append(out, MACIdleByte)
	}
	e.stats.InFlight = len(e.inflight)
	e.stats.QueueDepth = len(e.queue)
	return out
}

// Accept ingests the delivered chunks of the peer's superframe.
func (e *LLREndpoint) Accept(chunks [][]byte) {
	var rx []byte
	for _, c := range chunks {
		rx = append(rx, c...)
	}
	frames, st := MACDeframe(rx, e.maxPayload)
	// The optimized deframer's stats are cumulative across Accept calls.
	e.stats.Deframe.Frames += st.Frames
	e.stats.Deframe.PayloadBytes += st.PayloadBytes
	e.stats.Deframe.IdleBytes += st.IdleBytes
	e.stats.Deframe.SkippedBytes += st.SkippedBytes
	e.stats.Deframe.HeaderRejects += st.HeaderRejects
	e.stats.Deframe.CRCRejects += st.CRCRejects
	e.stats.Deframe.Truncated += st.Truncated
	for _, f := range frames {
		e.handleFrame(f)
	}
	e.stats.InFlight = len(e.inflight)
	e.stats.QueueDepth = len(e.queue)
}

func (e *LLREndpoint) handleFrame(f MACFrame) {
	if f.Flags&MACFlagAck != 0 {
		e.handleAck(f.Ack)
	}
	if f.Flags&MACFlagData == 0 {
		return
	}
	e.stats.DataRx++
	switch d := int16(f.Seq - e.rxExpected); {
	case d == 0:
		e.stats.Delivered++
		e.delivered = append(e.delivered, append([]byte(nil), f.Payload...))
		e.rxExpected++
		e.ackDirty = true
	case d < 0:
		e.stats.Duplicates++
		e.ackDirty = true
	default:
		e.stats.Discarded++
		e.ackDirty = true
	}
}

func (e *LLREndpoint) handleAck(ack uint16) {
	adv := int(int16(ack - e.base))
	if adv < 0 || adv > len(e.inflight) {
		return
	}
	e.stats.AcksRx++
	e.inflight = e.inflight[adv:]
	e.base = ack
}

// Stats returns a snapshot of the endpoint's counters.
func (e *LLREndpoint) Stats() MACStats {
	s := e.stats
	s.InFlight = len(e.inflight)
	s.QueueDepth = len(e.queue)
	return s
}
