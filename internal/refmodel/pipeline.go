package refmodel

import (
	"errors"
	"fmt"
)

// Reference end-to-end pipeline: the same TX → channels → RX protocol as
// phy.Link.Exchange, executed serially on one goroutine with a fresh
// allocation at every step — no worker pool, no scratch reuse, no
// in-place scrambling. Channel noise is injected through a caller
// callback so the reference stays free of any dependency on the
// optimized packages; diffcheck wires in replica BSCs seeded identically
// to the link under test.

// ScramblerSeed is the spec seed both ends load before each superframe.
const ScramblerSeed = 0x2a5f3c19d4b7e

// PipelineConfig describes a reference link.
type PipelineConfig struct {
	Lanes   int
	UnitLen int // stripe unit bytes; multiple of BlockLen
	FEC     FECRef
	Seed    uint64 // scrambler seed; zero selects ScramblerSeed
}

// Transmit pushes one lane's wire bytes through its physical channel and
// returns what the far end receives. diffcheck backs this with BSC
// replicas; tests may return wire unchanged for a noiseless link.
type Transmit func(physical int, wire []byte) []byte

// PipelineStats mirrors phy.ExchangeStats field for field.
type PipelineStats struct {
	FramesIn        int
	FramesDelivered int
	FramesLost      int
	FramesCorrupted int
	UnitsTotal      int
	UnitsLost       int
	Corrections     int
	WireBytes       int
	PayloadBytes    int
	PerChannel      map[int]DecodeStats
}

// ExchangeRef runs one reference superframe: encode frames to a padded
// block stream, scramble, stripe round-robin across lanes, frame and
// transmit each lane over its physical channel, scan and reassemble,
// descramble, and parse the surviving frames. laneToPhysical maps each
// logical lane to the physical channel Transmit should use (identity
// when nil).
func ExchangeRef(cfg PipelineConfig, laneToPhysical []int, tx Transmit, frames [][]byte) ([][]byte, PipelineStats, error) {
	st := PipelineStats{FramesIn: len(frames), PerChannel: make(map[int]DecodeStats)}
	if cfg.Lanes <= 0 {
		return nil, st, errors.New("refmodel: link is down (no active lanes)")
	}
	if cfg.UnitLen <= 0 || cfg.UnitLen%BlockLen != 0 {
		return nil, st, fmt.Errorf("refmodel: UnitLen %d must be a positive multiple of %d", cfg.UnitLen, BlockLen)
	}
	fec := cfg.FEC
	if fec == nil {
		fec = NoFECRef{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = ScramblerSeed
	}
	if tx == nil {
		tx = func(_ int, wire []byte) []byte { return append([]byte(nil), wire...) }
	}

	// --- TX: frames -> FCS -> blocks -> padded serial stream ---
	var stream []byte
	for _, f := range frames {
		if len(f) < 3 {
			return nil, st, fmt.Errorf("refmodel: frame of %d bytes below minimum 3", len(f))
		}
		st.PayloadBytes += len(f)
		withFCS := append(append([]byte(nil), f...), 0, 0, 0, 0)
		crc := CRC32(f)
		withFCS[len(f)] = byte(crc >> 24)
		withFCS[len(f)+1] = byte(crc >> 16)
		withFCS[len(f)+2] = byte(crc >> 8)
		withFCS[len(f)+3] = byte(crc)
		var err error
		stream, err = AppendFrameBlocks(stream, withFCS)
		if err != nil {
			return nil, st, err
		}
		stream = appendIdleBlock(stream)
	}
	for len(stream)%cfg.UnitLen != 0 {
		stream = appendIdleBlock(stream)
	}

	// --- Scramble (fresh output slice, bit at a time) ---
	scrambled := NewScrambler(seed).Scramble(stream)

	// --- Stripe into explicit unit records ---
	totalUnits := len(scrambled) / cfg.UnitLen
	st.UnitsTotal = totalUnits
	perLane, err := Stripe(scrambled, cfg.Lanes, cfg.UnitLen)
	if err != nil {
		return nil, st, err
	}

	// --- Per-lane frame, transmit, scan — strictly in lane order ---
	framer := NewFramer(fec, cfg.UnitLen)
	received := make([][]Unit, cfg.Lanes)
	for lane := 0; lane < cfg.Lanes; lane++ {
		physical := lane
		if laneToPhysical != nil {
			physical = laneToPhysical[lane]
		}
		var wire []byte
		for _, u := range perLane[lane] {
			wire = append(wire, framer.EncodeFrame(u.Lane, uint32(u.Seq), u.Payload)...)
		}
		st.WireBytes += len(wire)

		rx := tx(physical, wire)

		chFrames, chStats := framer.DecodeStream(rx)
		st.Corrections += chStats.Corrections
		st.PerChannel[physical] = chStats
		expected := len(perLane[lane])
		seen := make([]bool, expected)
		for _, cf := range chFrames {
			// Lane mismatches would indicate a miswired remap; drop them.
			if cf.Lane != lane || int(cf.Seq) >= expected {
				continue
			}
			received[lane] = append(received[lane], Unit{Lane: lane, Seq: int(cf.Seq), Payload: cf.Payload})
			seen[cf.Seq] = true
		}
		for _, got := range seen {
			if !got {
				st.UnitsLost++
			}
		}
	}

	// --- Destripe (zero-filled gaps), descramble, parse ---
	rxStream := Destripe(received, totalUnits, cfg.UnitLen)
	plain := NewDescrambler(seed).Descramble(rxStream)
	delivered := parseRefFrames(plain, &st)
	st.FramesDelivered = len(delivered)
	st.FramesLost = st.FramesIn - st.FramesDelivered - st.FramesCorrupted
	if st.FramesLost < 0 {
		st.FramesLost = 0
	}
	return delivered, st, nil
}

// parseRefFrames walks the descrambled block stream and reassembles
// FCS-verified frames, replicating the optimized parser's resync rules:
// a bad block or an idle inside a frame corrupts it, a start inside a
// frame corrupts the one in progress, and a terminate closes the frame
// for the FCS check.
func parseRefFrames(stream []byte, st *PipelineStats) [][]byte {
	var out [][]byte
	var cur []byte
	inFrame := false
	for off := 0; off+BlockLen <= len(stream); off += BlockLen {
		blk := DecodeBlockBytes(stream[off : off+BlockLen])
		switch blk.Kind {
		case BlockBad:
			if inFrame {
				st.FramesCorrupted++
				inFrame = false
				cur = nil
			}
		case BlockStart:
			if inFrame {
				st.FramesCorrupted++
			}
			cur = append([]byte(nil), blk.Data...)
			inFrame = true
		case BlockData:
			if inFrame {
				cur = append(cur, blk.Data...)
			}
		case BlockTerm:
			if !inFrame {
				continue
			}
			cur = append(cur, blk.Data...)
			inFrame = false
			if len(cur) < 4 {
				st.FramesCorrupted++
				cur = nil
				continue
			}
			body := cur[:len(cur)-4]
			want := uint32(cur[len(cur)-4])<<24 | uint32(cur[len(cur)-3])<<16 |
				uint32(cur[len(cur)-2])<<8 | uint32(cur[len(cur)-1])
			if CRC32(body) == want {
				out = append(out, append([]byte(nil), body...))
			} else {
				st.FramesCorrupted++
			}
			cur = nil
		case BlockIdle:
			if inFrame {
				st.FramesCorrupted++
				inFrame = false
				cur = nil
			}
		}
	}
	if inFrame {
		st.FramesCorrupted++
	}
	return out
}
