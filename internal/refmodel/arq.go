package refmodel

import "fmt"

// Reference multi-VC ARQ endpoint. This is the naive twin of the
// optimized mac.Endpoint in its v2 modes (selective repeat and/or more
// than one virtual channel): the protocol — per-VC queues and windows,
// weighted round-robin service, per-slot selective-repeat timers, sack
// bitmaps, the bounded reorder buffer — is re-derived from the protocol
// description with plain slices and maps, fresh copies everywhere, and
// no buffer mechanics shared with the optimized engine. BuildSuperframe
// must produce byte-identical superframes and Stats must track the
// optimized aggregate counters field for field.

// ARQ class weights, re-stated: class 0 (highest) is serviced 4 slots
// per weighted round-robin cycle, class 1 two, class 2 one.
var arqClassWeights = [3]int{4, 2, 1}

// ARQConfig parameterizes the reference endpoint (all fields required;
// this twin does no defaulting — the diff harness feeds it the same
// resolved values the optimized Config ends up with).
type ARQConfig struct {
	Window        int
	RetxTimeout   int
	MaxPayload    int
	Budget        int
	SelectiveRep  bool
	Classes       []uint8 // one QoS class per VC
	ReorderWindow int     // SR receive buffer depth
}

// arqSlot is one in-flight frame: slot k of a VC's list carries sequence
// base+k. Payloads are owned fresh copies.
type arqSlot struct {
	payload  []byte
	sentTick uint64
	acked    bool
}

// arqVC is one virtual channel's naive protocol state.
type arqVC struct {
	class   uint8
	queue   [][]byte
	infl    []arqSlot
	base    uint16
	nextSeq uint16
	piggy   bool

	rxExpected uint16
	ackDirty   bool
	reorder    map[uint16][]byte // buffered out-of-order payloads by seq
}

// ARQEndpoint is the reference v2 endpoint.
type ARQEndpoint struct {
	cfg   ARQConfig
	vcs   []arqVC
	order []int // weighted round-robin service sequence
	cur   int

	tick      uint64
	stats     MACStats
	delivered [][]byte // flat, in delivery order
	deliverVC []int    // VC of each delivered packet
}

// NewARQEndpoint builds a reference endpoint over len(Classes) virtual
// channels.
func NewARQEndpoint(cfg ARQConfig) (*ARQEndpoint, error) {
	if cfg.Window < 1 || cfg.RetxTimeout < 1 || cfg.MaxPayload < 1 ||
		cfg.ReorderWindow < 1 || len(cfg.Classes) < 1 {
		return nil, fmt.Errorf("refmodel: incomplete ARQConfig %+v", cfg)
	}
	if cfg.Budget < cfg.MaxPayload+MACOverheadV2 {
		return nil, fmt.Errorf("refmodel: budget %d cannot hold one max v2 frame", cfg.Budget)
	}
	e := &ARQEndpoint{cfg: cfg, vcs: make([]arqVC, len(cfg.Classes))}
	for i := range e.vcs {
		e.vcs[i].class = cfg.Classes[i]
		e.vcs[i].reorder = make(map[uint16][]byte)
	}
	// Weighted round-robin: round r of the cycle includes every VC whose
	// class weight exceeds r.
	maxW := 0
	for _, c := range cfg.Classes {
		if w := arqWeight(c); w > maxW {
			maxW = w
		}
	}
	for r := 0; r < maxW; r++ {
		for vc, c := range cfg.Classes {
			if r < arqWeight(c) {
				e.order = append(e.order, vc)
			}
		}
	}
	if len(e.order) == 0 {
		e.order = []int{0}
	}
	return e, nil
}

func arqWeight(class uint8) int {
	if int(class) >= len(arqClassWeights) {
		return 0
	}
	return arqClassWeights[class]
}

// Send queues one packet on VC 0 (copied).
func (e *ARQEndpoint) Send(payload []byte) error { return e.SendVC(0, payload) }

// SendVC queues one packet on a virtual channel (copied).
func (e *ARQEndpoint) SendVC(vc int, payload []byte) error {
	if vc < 0 || vc >= len(e.vcs) {
		return fmt.Errorf("refmodel: VC %d outside [0, %d)", vc, len(e.vcs))
	}
	if len(payload) > e.cfg.MaxPayload {
		return fmt.Errorf("refmodel: packet %dB exceeds max payload %d", len(payload), e.cfg.MaxPayload)
	}
	e.vcs[vc].queue = append(e.vcs[vc].queue, append([]byte(nil), payload...))
	e.stats.PacketsQueued++
	return nil
}

// Delivered returns every in-order packet delivered so far (fresh
// copies, in delivery order) and the VC each arrived on.
func (e *ARQEndpoint) Delivered() ([][]byte, []int) { return e.delivered, e.deliverVC }

// BuildSuperframe advances one tick and returns a fresh superframe
// payload: per-VC retransmissions first (whole-window under go-back-N,
// per-slot timers under selective repeat), then fresh data in weighted
// round-robin order, then per-VC pure acks (sack bitmaps under SR), then
// idle fill to the budget. All frames are header v2.
func (e *ARQEndpoint) BuildSuperframe() []byte {
	e.tick++
	out := make([]byte, 0, e.cfg.Budget)
	for i := range e.vcs {
		e.vcs[i].piggy = false
	}

	for vc := range e.vcs {
		out = e.appendRetx(vc, out)
	}

	idle := 0
	for idle < len(e.order) {
		vc := e.order[e.cur]
		e.cur++
		if e.cur == len(e.order) {
			e.cur = 0
		}
		if progressed, next := e.emitFresh(vc, out); progressed {
			out = next
			idle = 0
		} else {
			idle++
		}
	}
	for i := range e.vcs {
		v := &e.vcs[i]
		if len(v.queue) > 0 && len(v.infl) == e.cfg.Window {
			e.stats.CreditStalls++
		}
	}

	for vc := range e.vcs {
		out = e.appendAcks(vc, out)
	}

	for len(out) < e.cfg.Budget {
		out = append(out, MACIdleByte)
	}
	e.syncGauges()
	return out
}

func (e *ARQEndpoint) appendRetx(vc int, out []byte) []byte {
	v := &e.vcs[vc]
	if !e.cfg.SelectiveRep {
		if len(v.infl) == 0 || e.tick-v.infl[0].sentTick < uint64(e.cfg.RetxTimeout) {
			return out
		}
		e.stats.Timeouts++
		for k := range v.infl {
			if len(out)+MACOverheadV2+len(v.infl[k].payload) > e.cfg.Budget {
				break
			}
			out = AppendMACFrameV2(out, MACFlagData|MACFlagAck, byte(vc),
				v.base+uint16(k), v.rxExpected, v.infl[k].payload)
			v.infl[k].sentTick = e.tick
			e.stats.Retransmits++
			v.piggy = true
		}
		return out
	}
	for k := range v.infl {
		if v.infl[k].acked || e.tick-v.infl[k].sentTick < uint64(e.cfg.RetxTimeout) {
			continue
		}
		if len(out)+MACOverheadV2+len(v.infl[k].payload) > e.cfg.Budget {
			break
		}
		out = AppendMACFrameV2(out, MACFlagData|MACFlagAck, byte(vc),
			v.base+uint16(k), v.rxExpected, v.infl[k].payload)
		v.infl[k].sentTick = e.tick
		e.stats.Timeouts++
		e.stats.Retransmits++
		v.piggy = true
	}
	return out
}

func (e *ARQEndpoint) emitFresh(vc int, out []byte) (bool, []byte) {
	v := &e.vcs[vc]
	if len(v.queue) == 0 || len(v.infl) == e.cfg.Window {
		return false, out
	}
	p := v.queue[0]
	if len(out)+MACOverheadV2+len(p) > e.cfg.Budget {
		return false, out
	}
	v.infl = append(v.infl, arqSlot{payload: append([]byte(nil), p...), sentTick: e.tick})
	out = AppendMACFrameV2(out, MACFlagData|MACFlagAck, byte(vc), v.nextSeq, v.rxExpected, p)
	v.nextSeq++
	e.stats.DataTx++
	v.piggy = true
	v.queue = v.queue[1:]
	return true, out
}

func (e *ARQEndpoint) appendAcks(vc int, out []byte) []byte {
	v := &e.vcs[vc]
	if !e.cfg.SelectiveRep {
		if v.piggy {
			v.ackDirty = false
			return out
		}
		if !v.ackDirty || len(out)+MACOverheadV2 > e.cfg.Budget {
			return out
		}
		out = AppendMACFrameV2(out, MACFlagAck, byte(vc), 0, v.rxExpected, nil)
		e.stats.AcksTx++
		v.ackDirty = false
		return out
	}
	// Selective repeat: receive-state changes always produce a sack frame
	// (data piggybacks carry only the cumulative ack).
	if !v.ackDirty || len(out)+MACOverheadV2+MACSackBytes > e.cfg.Budget {
		return out
	}
	var bm [MACSackBytes]byte
	for d := 1; d <= 8*MACSackBytes && d < e.cfg.ReorderWindow; d++ {
		if _, ok := v.reorder[v.rxExpected+uint16(d)]; ok {
			k := d - 1
			bm[k/8] |= 1 << (k % 8)
		}
	}
	out = AppendMACFrameV2(out, MACFlagAck|MACFlagSack, byte(vc), 0, v.rxExpected, bm[:])
	e.stats.AcksTx++
	v.ackDirty = false
	return out
}

// Accept ingests the delivered chunks of the peer's superframe.
func (e *ARQEndpoint) Accept(chunks [][]byte) {
	var rx []byte
	for _, c := range chunks {
		rx = append(rx, c...)
	}
	frames, st := MACDeframe(rx, e.cfg.MaxPayload)
	e.stats.Deframe.Frames += st.Frames
	e.stats.Deframe.PayloadBytes += st.PayloadBytes
	e.stats.Deframe.IdleBytes += st.IdleBytes
	e.stats.Deframe.SkippedBytes += st.SkippedBytes
	e.stats.Deframe.HeaderRejects += st.HeaderRejects
	e.stats.Deframe.CRCRejects += st.CRCRejects
	e.stats.Deframe.Truncated += st.Truncated
	for _, f := range frames {
		e.handleFrame(f)
	}
	e.syncGauges()
}

func (e *ARQEndpoint) handleFrame(f MACFrame) {
	vc := 0
	if f.Flags&MACFlagV2 != 0 {
		vc = int(f.VC)
		if vc >= len(e.vcs) {
			e.stats.UnknownVC++
			return
		}
	}
	v := &e.vcs[vc]
	if f.Flags&MACFlagAck != 0 {
		if f.Flags&MACFlagSack != 0 && f.Flags&MACFlagData == 0 && len(f.Payload) >= MACSackBytes {
			e.handleSack(v, f.Ack, f.Payload)
		} else {
			e.handleAck(v, f.Ack)
		}
	}
	if f.Flags&MACFlagData == 0 {
		return
	}
	e.stats.DataRx++
	if e.cfg.SelectiveRep {
		e.onDataSR(vc, v, f)
	} else {
		e.onDataGBN(vc, v, f)
	}
}

func (e *ARQEndpoint) onDataGBN(vc int, v *arqVC, f MACFrame) {
	switch d := int16(f.Seq - v.rxExpected); {
	case d == 0:
		e.deliver(vc, f.Payload)
		v.rxExpected++
		v.ackDirty = true
	case d < 0:
		e.stats.Duplicates++
		v.ackDirty = true
	default:
		e.stats.Discarded++
		v.ackDirty = true
	}
}

func (e *ARQEndpoint) onDataSR(vc int, v *arqVC, f MACFrame) {
	switch d := int(int16(f.Seq - v.rxExpected)); {
	case d == 0:
		e.deliver(vc, f.Payload)
		v.rxExpected++
		for {
			p, ok := v.reorder[v.rxExpected]
			if !ok {
				break
			}
			delete(v.reorder, v.rxExpected)
			e.deliver(vc, p)
			v.rxExpected++
		}
		v.ackDirty = true
	case d < 0:
		e.stats.Duplicates++
		v.ackDirty = true
	case d < e.cfg.ReorderWindow:
		if _, ok := v.reorder[f.Seq]; ok {
			e.stats.Duplicates++
		} else {
			v.reorder[f.Seq] = append([]byte(nil), f.Payload...)
			e.stats.Reordered++
		}
		v.ackDirty = true
	default:
		e.stats.Discarded++
		v.ackDirty = true
	}
}

func (e *ARQEndpoint) deliver(vc int, payload []byte) {
	e.stats.Delivered++
	e.delivered = append(e.delivered, append([]byte(nil), payload...))
	e.deliverVC = append(e.deliverVC, vc)
}

func (e *ARQEndpoint) handleAck(v *arqVC, ack uint16) {
	adv := int(int16(ack - v.base))
	if adv < 0 || adv > len(v.infl) {
		return
	}
	e.stats.AcksRx++
	v.infl = v.infl[adv:]
	v.base = ack
}

func (e *ARQEndpoint) handleSack(v *arqVC, ack uint16, bm []byte) {
	e.handleAck(v, ack)
	e.stats.SacksRx++
	for k := 0; k < 8*MACSackBytes; k++ {
		if bm[k/8]&(1<<(k%8)) == 0 {
			continue
		}
		d := int(int16(ack + 1 + uint16(k) - v.base))
		if d < 0 || d >= len(v.infl) {
			continue
		}
		v.infl[d].acked = true
	}
}

func (e *ARQEndpoint) syncGauges() {
	infl, depth, rdepth := 0, 0, 0
	for i := range e.vcs {
		infl += len(e.vcs[i].infl)
		depth += len(e.vcs[i].queue)
		rdepth += len(e.vcs[i].reorder)
	}
	e.stats.InFlight = infl
	e.stats.QueueDepth = depth
	e.stats.ReorderDepth = rdepth
}

// Stats returns a snapshot of the endpoint's counters.
func (e *ARQEndpoint) Stats() MACStats {
	e.syncGauges()
	return e.stats
}
