package refmodel_test

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"mosaic/internal/coding/gf"
	"mosaic/internal/coding/linecode"
	"mosaic/internal/coding/rs"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/refmodel"
)

// The reference models must agree with the optimized implementations on
// everything the differential harness compares. These tests pin the
// agreement at the unit level so a diffcheck divergence always points at
// a genuine behavioural change, not at reference drift.

func TestGFAgainstTableField(t *testing.T) {
	f := gf.MustNew(8)
	for a := 1; a < 256; a++ {
		if got, want := refmodel.GFInv(a), f.Inv(a); got != want {
			t.Fatalf("GFInv(%d) = %d, field says %d", a, got, want)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := rng.Intn(256), rng.Intn(256)
		if got, want := refmodel.GFMul(a, b), f.Mul(a, b); got != want {
			t.Fatalf("GFMul(%d,%d) = %d, field says %d", a, b, got, want)
		}
		n := rng.Intn(600)
		if got, want := refmodel.GFPow(a, n), f.Pow(a, n); a != 0 && got != want {
			t.Fatalf("GFPow(%d,%d) = %d, field says %d", a, n, got, want)
		}
	}
	for i := 0; i < 510; i++ {
		if got, want := refmodel.GFAlpha(i), f.Alpha(i); got != want {
			t.Fatalf("GFAlpha(%d) = %d, field says %d", i, got, want)
		}
	}
}

func TestCRC32AgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		if got, want := refmodel.CRC32(buf), crc32.ChecksumIEEE(buf); got != want {
			t.Fatalf("CRC32 mismatch on %d bytes: %08x vs %08x", len(buf), got, want)
		}
	}
}

func rsPair(t *testing.T, n, k int) (*refmodel.RS, *rs.Code) {
	t.Helper()
	ref, err := refmodel.NewRS(n, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := rs.Lite(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return ref, opt
}

func TestRSEncodeAgainstOptimized(t *testing.T) {
	for _, nk := range [][2]int{{68, 64}, {24, 18}, {15, 11}} {
		ref, opt := rsPair(t, nk[0], nk[1])
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50; i++ {
			data := make([]int, nk[1])
			for j := range data {
				data[j] = rng.Intn(256)
			}
			got, err := ref.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			want, err := opt.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("RS(%d,%d) codeword mismatch:\nref %v\nopt %v", nk[0], nk[1], got, want)
			}
		}
	}
}

func TestRSDecodeAgainstOptimized(t *testing.T) {
	for _, nk := range [][2]int{{68, 64}, {24, 18}} {
		ref, opt := rsPair(t, nk[0], nk[1])
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 60; trial++ {
			data := make([]int, nk[1])
			for j := range data {
				data[j] = rng.Intn(256)
			}
			cw, _ := ref.Encode(data)
			// 0..t+2 errors: inside the budget both must correct to the
			// codeword; outside it both must reach the same verdict.
			nerr := rng.Intn(ref.T() + 3)
			recv := append([]int(nil), cw...)
			for _, pos := range rng.Perm(len(recv))[:nerr] {
				recv[pos] ^= 1 + rng.Intn(255)
			}
			refOut, refCorr, refOK := ref.Decode(append([]int(nil), recv...))
			optOut, optCorr, optErr := opt.Decode(append([]int(nil), recv...))
			if refOK != (optErr == nil) {
				t.Fatalf("RS(%d,%d) %d errors: verdicts differ (ref ok=%v, opt err=%v)",
					nk[0], nk[1], nerr, refOK, optErr)
			}
			if refOK {
				if !reflect.DeepEqual(refOut, optOut) {
					t.Fatalf("RS(%d,%d) corrected words differ", nk[0], nk[1])
				}
				if refCorr != optCorr {
					t.Fatalf("RS(%d,%d) correction counts differ: ref %d opt %d", nk[0], nk[1], refCorr, optCorr)
				}
				if nerr <= ref.T() && !reflect.DeepEqual(refOut, cw) {
					t.Fatalf("RS(%d,%d) %d<=t errors not corrected to the codeword", nk[0], nk[1], nerr)
				}
			}
		}
	}
}

func TestScramblerAgainstOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 512)
	rng.Read(data)
	const seed = 0x2a5f3c19d4b7e

	want := linecode.NewScrambler(seed).Scramble(append([]byte(nil), data...))
	got := refmodel.NewScrambler(seed).Scramble(data)
	if !bytes.Equal(got, want) {
		t.Fatal("reference scrambler output differs from optimized")
	}
	// Cross-descramble both ways: the pair must be mutually inverse.
	if back := refmodel.NewDescrambler(seed).Descramble(want); !bytes.Equal(back, data) {
		t.Fatal("reference descrambler does not invert optimized scrambler")
	}
	if back := linecode.NewDescrambler(seed).Descramble(append([]byte(nil), got...)); !bytes.Equal(back, data) {
		t.Fatal("optimized descrambler does not invert reference scrambler")
	}
}

func TestStripeDestripeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, lanes := range []int{1, 3, 7} {
		stream := make([]byte, 9*4*lanes+9*5)
		for len(stream)%9 != 0 {
			stream = stream[:len(stream)-1]
		}
		rng.Read(stream)
		perLane, err := refmodel.Stripe(stream, lanes, 9)
		if err != nil {
			t.Fatal(err)
		}
		total := len(stream) / 9
		if got := refmodel.Destripe(perLane, total, 9); !bytes.Equal(got, stream) {
			t.Fatalf("lanes=%d: destripe(stripe(x)) != x", lanes)
		}
		// Remove one middle unit: its slot must come back zero-filled and
		// every other byte must be untouched.
		if total > 2 && lanes > 1 {
			g := total / 2
			lane, seq := g%lanes, g/lanes
			var kept []refmodel.Unit
			for _, u := range perLane[lane] {
				if u.Seq != seq {
					kept = append(kept, u)
				}
			}
			perLane[lane] = kept
			got := refmodel.Destripe(perLane, total, 9)
			want := append([]byte(nil), stream...)
			for i := g * 9; i < (g+1)*9; i++ {
				want[i] = 0
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("lanes=%d: zero-gap destripe wrong", lanes)
			}
		}
	}
}

func TestFramerAgainstOptimized(t *testing.T) {
	const unitLen = 63
	ref := refmodel.NewFramer(refmodel.NewRSLiteRef(), unitLen)
	opt := phy.NewFramer(phy.NewRSLite(), unitLen)
	if ref.WireLen() != opt.WireLen() {
		t.Fatalf("wire lengths differ: ref %d opt %d", ref.WireLen(), opt.WireLen())
	}
	rng := rand.New(rand.NewSource(7))
	var stream []byte
	for seq := 0; seq < 6; seq++ {
		payload := make([]byte, unitLen)
		rng.Read(payload)
		refWire := ref.EncodeFrame(3, uint32(seq), payload)
		optWire := opt.Encode(3, uint32(seq), payload)
		if !bytes.Equal(refWire, optWire) {
			t.Fatalf("seq %d: wire frames differ", seq)
		}
		stream = append(stream, refWire...)
	}
	// Corrupt a few bytes so the hunt paths (skip, FEC correct, CRC
	// reject) are exercised identically on both sides.
	for i := 0; i < 8; i++ {
		stream[rng.Intn(len(stream))] ^= byte(1 + rng.Intn(255))
	}
	refFrames, refStats := ref.DecodeStream(stream)
	optFrames, optStats := opt.DecodeStream(stream)
	if refStats != phy2ref(optStats) {
		t.Fatalf("decode stats differ: ref %+v opt %+v", refStats, optStats)
	}
	if len(refFrames) != len(optFrames) {
		t.Fatalf("frame counts differ: ref %d opt %d", len(refFrames), len(optFrames))
	}
	for i := range refFrames {
		if refFrames[i].Lane != optFrames[i].Lane || refFrames[i].Seq != optFrames[i].Seq ||
			refFrames[i].Corrections != optFrames[i].Corrections ||
			!bytes.Equal(refFrames[i].Payload, optFrames[i].Payload) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func phy2ref(st phy.DecodeStats) refmodel.DecodeStats {
	return refmodel.DecodeStats{
		Frames:       st.Frames,
		CRCFailures:  st.CRCFailures,
		FECOverloads: st.FECOverloads,
		Corrections:  st.Corrections,
		SkippedBytes: st.SkippedBytes,
	}
}

func TestMACDeframeAgainstOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var buf []byte
	for i := 0; i < 5; i++ {
		p := make([]byte, rng.Intn(40))
		rng.Read(p)
		buf = refmodel.AppendMACFrame(buf, refmodel.MACFlagData|refmodel.MACFlagAck,
			uint16(i), uint16(i*3), p)
		// Inter-frame garbage: idles plus random junk.
		for j := 0; j < rng.Intn(10); j++ {
			buf = append(buf, 0)
		}
		junk := make([]byte, rng.Intn(6))
		rng.Read(junk)
		buf = append(buf, junk...)
	}
	// Sanity: the reference encoder matches the optimized one.
	p := []byte{1, 2, 3}
	if !bytes.Equal(refmodel.AppendMACFrame(nil, 3, 7, 9, p), mac.AppendFrame(nil, 3, 7, 9, p)) {
		t.Fatal("reference MAC frame encoding differs from optimized")
	}
	for i := 0; i < 20; i++ {
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
	}
	refFrames, refStats := refmodel.MACDeframe(buf, 0)
	var optFrames []mac.Frame
	var d mac.Deframer
	d.Deframe(buf, func(f mac.Frame) {
		f.Payload = append([]byte(nil), f.Payload...)
		optFrames = append(optFrames, f)
	})
	optStats := d.Stats
	if refStats != (refmodel.MACDeframeStats{
		Frames:        optStats.Frames,
		PayloadBytes:  optStats.PayloadBytes,
		IdleBytes:     optStats.IdleBytes,
		SkippedBytes:  optStats.SkippedBytes,
		HeaderRejects: optStats.HeaderRejects,
		CRCRejects:    optStats.CRCRejects,
		Truncated:     optStats.Truncated,
	}) {
		t.Fatalf("deframe stats differ: ref %+v opt %+v", refStats, optStats)
	}
	if len(refFrames) != len(optFrames) {
		t.Fatalf("frame counts differ: ref %d opt %d", len(refFrames), len(optFrames))
	}
	for i := range refFrames {
		o := optFrames[i]
		if refFrames[i].Flags != o.Flags || refFrames[i].Seq != o.Seq || refFrames[i].Ack != o.Ack ||
			!bytes.Equal(refFrames[i].Payload, o.Payload) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

// TestLLRAgainstOptimized runs a reference endpoint pair and an optimized
// endpoint pair over the same deterministic lossy link and demands
// byte-identical superframes every tick plus identical delivery and stats.
func TestLLRAgainstOptimized(t *testing.T) {
	const budget = 512
	cfg := mac.Config{Window: 8, RetxTimeout: 3, MaxPayload: 128, PayloadBudget: budget}
	var optDelivered [][]byte
	optA, err := mac.NewEndpoint(cfg, func(p []byte) {
		optDelivered = append(optDelivered, append([]byte(nil), p...))
	})
	if err != nil {
		t.Fatal(err)
	}
	optB, err := mac.NewEndpoint(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	refA, err := refmodel.NewLLREndpoint(8, 3, 128, budget)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := refmodel.NewLLREndpoint(8, 3, 128, budget)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	lossRng := rand.New(rand.NewSource(10))
	for tick := 0; tick < 120; tick++ {
		if rng.Intn(3) == 0 {
			p := make([]byte, 1+rng.Intn(100))
			rng.Read(p)
			if err := optB.Send(p); err != nil {
				t.Fatal(err)
			}
			if err := refB.Send(p); err != nil {
				t.Fatal(err)
			}
		}
		sfOpt := optB.BuildSuperframe()
		sfRef := refB.BuildSuperframe()
		if !bytes.Equal(sfOpt, sfRef) {
			t.Fatalf("tick %d: B superframes differ", tick)
		}
		// Lossy link: drop or truncate some superframes, identically for
		// both pairs.
		var chunks [][]byte
		switch lossRng.Intn(4) {
		case 0: // dropped entirely
		case 1: // truncated (a lost PHY frame splices the stream)
			cut := lossRng.Intn(len(sfOpt))
			chunks = [][]byte{sfOpt[:cut]}
		default:
			chunks = [][]byte{sfOpt}
		}
		optA.Accept(chunks)
		refA.Accept(chunks)

		backOpt := optA.BuildSuperframe()
		backRef := refA.BuildSuperframe()
		if !bytes.Equal(backOpt, backRef) {
			t.Fatalf("tick %d: A superframes differ", tick)
		}
		optB.Accept([][]byte{backOpt})
		refB.Accept([][]byte{backRef})
	}
	for _, pair := range []struct {
		name string
		opt  mac.Stats
		ref  refmodel.MACStats
	}{{"A", optA.Stats(), refA.Stats()}, {"B", optB.Stats(), refB.Stats()}} {
		if got, want := pair.ref, mac2ref(pair.opt); got != want {
			t.Fatalf("endpoint %s stats differ:\nref %+v\nopt %+v", pair.name, got, want)
		}
	}
	refDelivered := refA.Delivered()
	if len(optDelivered) != len(refDelivered) {
		t.Fatalf("delivered counts differ: opt %d ref %d", len(optDelivered), len(refDelivered))
	}
	for i := range optDelivered {
		if !bytes.Equal(optDelivered[i], refDelivered[i]) {
			t.Fatalf("delivered packet %d differs", i)
		}
	}
}

func mac2ref(s mac.Stats) refmodel.MACStats {
	return refmodel.MACStats{
		PacketsQueued: s.PacketsQueued,
		DataTx:        s.DataTx,
		Retransmits:   s.Retransmits,
		AcksTx:        s.AcksTx,
		DataRx:        s.DataRx,
		Delivered:     s.Delivered,
		Duplicates:    s.Duplicates,
		Discarded:     s.Discarded,
		Reordered:     s.Reordered,
		AcksRx:        s.AcksRx,
		SacksRx:       s.SacksRx,
		UnknownVC:     s.UnknownVC,
		CreditStalls:  s.CreditStalls,
		Timeouts:      s.Timeouts,
		InFlight:      s.InFlight,
		QueueDepth:    s.QueueDepth,
		ReorderDepth:  s.ReorderDepth,
		Deframe: refmodel.MACDeframeStats{
			Frames:        s.Deframe.Frames,
			PayloadBytes:  s.Deframe.PayloadBytes,
			IdleBytes:     s.Deframe.IdleBytes,
			SkippedBytes:  s.Deframe.SkippedBytes,
			HeaderRejects: s.Deframe.HeaderRejects,
			CRCRejects:    s.Deframe.CRCRejects,
			Truncated:     s.Deframe.Truncated,
		},
	}
}

// TestExchangeRefAgainstLinkNoiseless drives the optimized link and the
// reference pipeline over clean channels and compares delivered frames
// and every statistic.
func TestExchangeRefAgainstLinkNoiseless(t *testing.T) {
	cfg := phy.Config{Lanes: 5, Spares: 1, FEC: phy.NewRSLite(), UnitLen: 63, Seed: 11, Workers: 1}
	link, err := phy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	frames := make([][]byte, 7)
	for i := range frames {
		frames[i] = make([]byte, 3+rng.Intn(200))
		rng.Read(frames[i])
	}
	optOut, optStats, err := link.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}

	laneMap := make([]int, cfg.Lanes)
	for lane := range laneMap {
		laneMap[lane] = link.Mapper().Physical(lane)
	}
	refCfg := refmodel.PipelineConfig{Lanes: cfg.Lanes, UnitLen: cfg.UnitLen, FEC: refmodel.NewRSLiteRef()}
	refOut, refStats, err := refmodel.ExchangeRef(refCfg, laneMap, nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(optOut) != len(refOut) {
		t.Fatalf("delivered counts differ: opt %d ref %d", len(optOut), len(refOut))
	}
	for i := range optOut {
		if !bytes.Equal(optOut[i], refOut[i]) {
			t.Fatalf("delivered frame %d differs", i)
		}
	}
	if optStats.FramesDelivered != refStats.FramesDelivered ||
		optStats.FramesLost != refStats.FramesLost ||
		optStats.FramesCorrupted != refStats.FramesCorrupted ||
		optStats.UnitsTotal != refStats.UnitsTotal ||
		optStats.UnitsLost != refStats.UnitsLost ||
		optStats.Corrections != refStats.Corrections ||
		optStats.WireBytes != refStats.WireBytes ||
		optStats.PayloadBytes != refStats.PayloadBytes {
		t.Fatalf("exchange stats differ:\nopt %+v\nref %+v", optStats, refStats)
	}
	for ch, st := range optStats.PerChannel {
		if refStats.PerChannel[ch] != phy2ref(st) {
			t.Fatalf("channel %d stats differ: opt %+v ref %+v", ch, st, refStats.PerChannel[ch])
		}
	}
}
