package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"mosaic/internal/phy"
	"mosaic/internal/scenario"
)

// LinkDesign is the per-link build recipe: the PHY width, the MAC
// framing, the traffic pattern each serving tick carries, and the fault
// pressure the seeded schedule applies. The fleet default is
// deliberately narrower than the paper's 100-channel prototype — the
// service trades per-link width for link count, which is the
// wide-and-slow argument applied at fleet scale.
type LinkDesign struct {
	Lanes   int    `json:"lanes"`    // active data lanes
	Spares  int    `json:"spares"`   // spare channels
	FEC     string `json:"fec"`      // none|hamming72|rslite|kp4
	UnitLen int    `json:"unit_len"` // stripe unit bytes (multiple of 9)

	PacketLen    int `json:"packet_len"`     // client packet bytes per MAC send
	PacketsPerSF int `json:"packets_per_sf"` // client packets queued per superframe

	BringUpSF int `json:"bringup_sf"`  // superframes of bring-up before serving
	DrainSF   int `json:"drain_sf"`    // max superframes spent draining
	SFPerStep int `json:"sf_per_step"` // superframes advanced per pooled step

	// Hazard is the per-superframe per-channel kill probability of the
	// link's generated fault schedule; Horizon is the schedule length in
	// superframes (a fresh seeded schedule is generated each horizon).
	Hazard  float64 `json:"hazard"`
	Horizon int     `json:"horizon"`

	// Scenario names a registered scenario (internal/scenario, by
	// experiment ID "E26" or spec name "ai-collective-seu"). When set,
	// the link's fault schedule is the scenario's witness schedule —
	// its environment models mapped down to per-channel faults —
	// instead of the hazard-generated random kills. A fresh seeded
	// witness is generated each horizon round, like RandomKills.
	Scenario string `json:"scenario,omitempty"`
}

// DefaultLinkDesign returns the fleet-scale link recipe: 8+2 lanes of
// the same bit-true pipeline, light traffic, gentle wear.
func DefaultLinkDesign() LinkDesign {
	return LinkDesign{
		Lanes: 8, Spares: 2, FEC: "rslite", UnitLen: 243,
		PacketLen: 243, PacketsPerSF: 2,
		BringUpSF: 2, DrainSF: 8, SFPerStep: 1,
		Hazard: 0.0002, Horizon: 512,
	}
}

// Validate checks the design and fills the FEC lookup.
func (d *LinkDesign) Validate() error {
	if d.Lanes <= 0 {
		return errors.New("fleetd: design needs at least one lane")
	}
	if d.Spares < 0 {
		return errors.New("fleetd: design spares must be >= 0")
	}
	if d.UnitLen <= 0 || d.UnitLen%9 != 0 {
		return fmt.Errorf("fleetd: design unit_len %d must be a positive multiple of 9", d.UnitLen)
	}
	if _, err := phy.FECByName(d.FEC); err != nil {
		return err
	}
	if d.PacketLen <= 0 || d.PacketsPerSF <= 0 {
		return errors.New("fleetd: design needs packet_len > 0 and packets_per_sf > 0")
	}
	if d.BringUpSF <= 0 || d.DrainSF <= 0 || d.SFPerStep <= 0 {
		return errors.New("fleetd: design needs bringup_sf, drain_sf, sf_per_step > 0")
	}
	if d.Hazard < 0 || d.Hazard > 1 {
		return errors.New("fleetd: design hazard must be in [0,1]")
	}
	if d.Horizon <= 0 {
		return errors.New("fleetd: design horizon must be > 0")
	}
	if d.Scenario != "" {
		if _, ok := scenario.Lookup(d.Scenario); !ok {
			return fmt.Errorf("fleetd: unknown scenario %q (see mosaicbench -list)", d.Scenario)
		}
	}
	return nil
}

// Budgets are the admission-control knobs — the half of the config the
// service expects to hot-reload under load.
type Budgets struct {
	// MaxLinks caps live (non-retired) links; admissions beyond it shed.
	MaxLinks int `json:"max_links"`

	// AdmitPerEpoch and AdmitBurst parameterize the token bucket gating
	// link admissions: the bucket refills AdmitPerEpoch tokens each epoch
	// and holds at most AdmitBurst. One admission costs one token.
	AdmitPerEpoch float64 `json:"admit_per_epoch"`
	AdmitBurst    float64 `json:"admit_burst"`

	// StepBudget caps how many serving/degraded links run full MAC
	// superframes in one epoch (bring-up, renegotiation, and draining
	// always run). The scheduler rotates fairly, so every serving link is
	// stepped every ceil(serving/StepBudget) epochs. 0 = all links.
	StepBudget int `json:"step_budget"`

	// ScrapePerEpoch caps /metrics (+ /metrics.json) scrapes per epoch;
	// beyond it scrapes shed with 429 until the next epoch. 0 = unlimited.
	ScrapePerEpoch int64 `json:"scrape_per_epoch"`

	// DetailLinks attaches a per-link labeled collector to links with ID
	// below this bound (gauges stay registered until the link retires).
	// Keeps exposition size under control at fleet scale. -1 = all links.
	DetailLinks int `json:"detail_links"`

	// FlowsPerEpoch background flows are injected into the fleet-wide
	// flow simulator each epoch, so bridge capacity publications act on
	// live traffic. 0 disables injection.
	FlowsPerEpoch int `json:"flows_per_epoch"`
}

// Config parameterizes a Fleet. The zero value is not runnable; start
// from DefaultConfig.
type Config struct {
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"` // pool workers; 0 = GOMAXPROCS

	Budgets Budgets    `json:"budgets"`
	Design  LinkDesign `json:"design"` // default design for admissions

	// MaxLog caps the retained fleet event log (0 = 200000 lines).
	MaxLog int `json:"max_log"`
}

// DefaultConfig returns a fleet sized for thousands of concurrent links.
func DefaultConfig() Config {
	return Config{
		Seed:    1,
		Workers: 0,
		Budgets: Budgets{
			MaxLinks:       4096,
			AdmitPerEpoch:  256,
			AdmitBurst:     2048,
			StepBudget:     128,
			ScrapePerEpoch: 1024,
			DetailLinks:    32,
			FlowsPerEpoch:  16,
		},
		Design: DefaultLinkDesign(),
	}
}

// Validate checks the whole config (budgets and default design).
func (c *Config) Validate() error {
	if c.Budgets.MaxLinks <= 0 {
		return errors.New("fleetd: budgets.max_links must be > 0")
	}
	if c.Budgets.AdmitPerEpoch <= 0 || c.Budgets.AdmitBurst <= 0 {
		return errors.New("fleetd: budgets.admit_per_epoch and admit_burst must be > 0")
	}
	if c.Budgets.StepBudget < 0 || c.Budgets.ScrapePerEpoch < 0 ||
		c.Budgets.FlowsPerEpoch < 0 {
		return errors.New("fleetd: budgets must be >= 0")
	}
	if c.Budgets.DetailLinks < -1 {
		return errors.New("fleetd: budgets.detail_links must be >= -1")
	}
	if c.Workers < 0 {
		return errors.New("fleetd: workers must be >= 0")
	}
	if c.MaxLog < 0 {
		return errors.New("fleetd: max_log must be >= 0")
	}
	return c.Design.Validate()
}

// LoadConfig reads and validates a JSON config file. Missing fields keep
// the defaults, so a file holding only {"budgets":{"max_links":100}}
// adjusts one budget.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return DecodeConfig(f)
}

// DecodeConfig decodes JSON from r on top of DefaultConfig and validates.
func DecodeConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("fleetd: config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
