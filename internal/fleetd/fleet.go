package fleetd

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"mosaic/internal/netsim"
	"mosaic/internal/sim"
	"mosaic/internal/telemetry"
)

// epochSimLen is how much simulated time the fleet-wide flow engine
// advances per service epoch.
const epochSimLen = 10 * sim.Millisecond

// ErrUnknownLink is returned by operations naming a link ID the fleet
// does not hold (never admitted, or retired and pruned).
var ErrUnknownLink = errors.New("fleetd: unknown link")

// Fleet is the deterministic core of the service: the managed links,
// the shared work-stealing pool, the admission gate, the fleet-wide
// flow simulator the bridges publish into, and the merged event log.
//
// All operations and Step serialize on one mutex; the pooled fan-out
// inside Step is the only concurrency, and it writes exclusively into
// per-link buffers merged at the barrier in ascending link-ID order —
// the invariant behind the worker-count-invariant event log.
type Fleet struct {
	mu   sync.Mutex
	cfg  Config
	pool *pool

	links  map[int]*managedLink
	order  []int // live link IDs, ascending (nextID is monotonic)
	nextID int
	rotor  int // next link ID owed a serving step by the budget rotor

	bucket    tokenBucket
	adm       AdmissionStats
	lastSheds uint64 // adm.Sheds() at the previous barrier (overload detection)
	draining  bool

	epoch      uint64
	log        []string
	maxLog     int
	logDropped uint64

	topo          *netsim.Topology
	fsim          *netsim.FleetSim
	freeTopo      intHeap // free host-link slots in the fleet topology
	hosts         []int
	flowRNG       *rand.Rand
	flowsInjected uint64

	retired    map[int]LinkInfo
	retiredIDs []int // admission order, for pruning

	reg      *telemetry.Registry
	col      *telemetry.FleetCollector
	linkCols map[int]*telemetry.FleetLinkCollector

	// snap is the lock-free health view: /healthz and load-shedding
	// decisions read it without taking the fleet lock (a scrape must
	// never wait out an epoch barrier).
	snap atomic.Pointer[Snapshot]
}

// Snapshot is the lock-free fleet summary refreshed at every barrier.
type Snapshot struct {
	Epoch       uint64         `json:"epoch"`
	States      map[string]int `json:"states"`
	LiveLinks   int            `json:"live_links"`
	MaxLinks    int            `json:"max_links"`
	Draining    bool           `json:"draining"`
	Overloaded  bool           `json:"overloaded"` // sheds occurred in the last epoch
	Admission   AdmissionStats `json:"admission"`
	Pool        PoolStats      `json:"pool"`
	ActiveFlows int            `json:"active_flows"`

	// ScrapeBudget mirrors Budgets.ScrapePerEpoch so the HTTP scrape gate
	// can shed without taking the fleet lock.
	ScrapeBudget int64 `json:"scrape_budget"`
}

// New builds a fleet from cfg. reg may be nil (no telemetry). The fleet
// topology is sized once, from the MaxLinks budget at creation: a later
// hot-reload can shrink or grow every budget, but admissions beyond the
// built topology shed with reason "topology".
func New(cfg Config, reg *telemetry.Registry) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:      cfg,
		pool:     newPool(cfg.Workers),
		links:    make(map[int]*managedLink),
		bucket:   newTokenBucket(cfg.Budgets.AdmitPerEpoch, cfg.Budgets.AdmitBurst),
		maxLog:   cfg.MaxLog,
		retired:  make(map[int]LinkInfo),
		reg:      reg,
		linkCols: make(map[int]*telemetry.FleetLinkCollector),
		flowRNG:  rand.New(rand.NewSource(cfg.Seed + 0x5eed)),
	}
	if f.maxLog <= 0 {
		f.maxLog = 200000
	}

	// Fleet topology: enough host-ToR links for MaxLinks members, in
	// pods of 4 leaves x 2 spines x 8 hosts (32 host links per pod).
	const leaves, spines, hostsPerLeaf = 4, 2, 8
	perPod := leaves * hostsPerLeaf
	pods := (cfg.Budgets.MaxLinks + perPod - 1) / perPod
	topo, err := netsim.NewFleet(pods, leaves, spines, hostsPerLeaf, 100e9)
	if err != nil {
		return nil, err
	}
	f.topo = topo
	f.fsim = netsim.NewFleetSim(topo, cfg.Workers)
	f.hosts = topo.Hosts()
	for _, l := range topo.Links {
		if l.Tier == netsim.TierHostToR {
			f.freeTopo = append(f.freeTopo, l.ID)
		}
	}
	heap.Init(&f.freeTopo)

	if reg != nil {
		f.col = telemetry.NewFleetCollector(reg, StateNames(), shedReasonNames())
	}
	f.publishSnapshot(false)
	return f, nil
}

func shedReasonNames() []string {
	return []string{string(ShedRate), string(ShedLinks), string(ShedTopology),
		string(ShedScrape), string(ShedDraining)}
}

func (f *Fleet) logf(format string, args ...any) {
	if len(f.log) < f.maxLog {
		f.log = append(f.log, fmt.Sprintf(format, args...))
	} else {
		f.logDropped++
	}
}

// countShed books a shed under its reason counter and logs it.
func (f *Fleet) countShed(op string, reason ShedReason) *ShedError {
	switch reason {
	case ShedRate:
		f.adm.ShedRate++
	case ShedLinks:
		f.adm.ShedLinks++
	case ShedTopology:
		f.adm.ShedTopology++
	case ShedScrape:
		f.adm.ShedScrape++
	case ShedDraining:
		f.adm.ShedDraining++
	}
	f.logf("epoch=%d shed op=%s reason=%s", f.epoch, op, reason)
	return &ShedError{Reason: reason}
}

// CountScrapeShed books a scrape shed (called by the HTTP layer when
// the scrape budget gate fires; it lives on the fleet so the counter
// and the event log agree).
func (f *Fleet) CountScrapeShed() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countShed("scrape", ShedScrape)
}

// Create admits n links with the given design (nil = the config
// default). Admission is gated per link: the MaxLinks budget, a free
// topology slot, and one token from the bucket. It returns the IDs
// admitted; if any were shed, the first ShedError is returned alongside
// the partial result.
// DesignOrDefault returns a copy of d, or of the fleet's default design
// when d is nil — the base callers layer per-request overrides (like a
// scenario binding) onto before Create.
func (f *Fleet) DesignOrDefault(d *LinkDesign) LinkDesign {
	if d != nil {
		return *d
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Design
}

func (f *Fleet) Create(n int, d *LinkDesign) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("fleetd: create needs count > 0")
	}
	design := f.cfg.Design
	if d != nil {
		design = *d
		if err := design.Validate(); err != nil {
			return nil, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var ids []int
	var shed error
	for i := 0; i < n; i++ {
		if f.draining {
			shed = f.countShed("create", ShedDraining)
			break
		}
		if len(f.links) >= f.cfg.Budgets.MaxLinks {
			shed = f.countShed("create", ShedLinks)
			break
		}
		if len(f.freeTopo) == 0 {
			shed = f.countShed("create", ShedTopology)
			break
		}
		if !f.bucket.take(1) {
			shed = f.countShed("create", ShedRate)
			break
		}
		id := f.nextID
		f.nextID++
		topoID := heap.Pop(&f.freeTopo).(int)
		ml := &managedLink{
			id: id, topoID: topoID, seed: linkSeed(f.cfg.Seed, id),
			design: design, state: StateAdmitted,
		}
		f.links[id] = ml
		f.order = append(f.order, id)
		f.adm.Admitted++
		f.logf("epoch=%d op=create link=%d topo=%d lanes=%d", f.epoch, id, topoID, design.Lanes)
		if f.reg != nil && (f.cfg.Budgets.DetailLinks < 0 || id < f.cfg.Budgets.DetailLinks) {
			f.linkCols[id] = telemetry.NewFleetLinkCollector(f.reg, id)
		}
		ids = append(ids, id)
	}
	return ids, shed
}

// Degrade kills count channels on a link (deterministically: the
// lowest-numbered alive physicals), modeling an induced fault burst.
// Legal while the link is carrying traffic (bring-up through
// renegotiating).
func (f *Fleet) Degrade(id, count int) error {
	if count <= 0 {
		return errors.New("fleetd: degrade needs count > 0")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ml, ok := f.links[id]
	if !ok {
		return ErrUnknownLink
	}
	switch ml.state {
	case StateBringUp, StateServing, StateDegraded, StateRenegotiating:
	default:
		return &TransitionError{Link: id, From: ml.state, To: StateDegraded}
	}
	if ml.fwd == nil {
		return &TransitionError{Link: id, From: ml.state, To: StateDegraded}
	}
	killed := 0
	for _, p := range ml.fwd.Mapper().ActivePhysicals() {
		if killed == count {
			break
		}
		if !ml.fwd.ChannelDead(p) {
			ml.fwd.KillChannel(p)
			killed++
		}
	}
	f.logf("epoch=%d op=degrade link=%d killed=%d", f.epoch, id, killed)
	return nil
}

// Renegotiate moves a degraded link into renegotiating; the next epoch
// commits the degraded width as its new contract and republishes
// capacity into the flow simulator.
func (f *Fleet) Renegotiate(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ml, ok := f.links[id]
	if !ok {
		return ErrUnknownLink
	}
	if err := ml.transition(StateRenegotiating, "op"); err != nil {
		return err
	}
	f.logf("epoch=%d op=renegotiate link=%d", f.epoch, id)
	return nil
}

// Retire puts a link on the drain path; it exits through
// draining -> retired over the following epochs.
func (f *Fleet) Retire(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ml, ok := f.links[id]
	if !ok {
		return ErrUnknownLink
	}
	if err := ml.transition(StateDraining, "op"); err != nil {
		return err
	}
	f.logf("epoch=%d op=retire link=%d", f.epoch, id)
	return nil
}

// Reload validates and swaps the admission budgets and the default link
// design without touching serving links. Seed, workers, and the built
// topology are immutable — a changed value there is rejected.
func (f *Fleet) Reload(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if cfg.Seed != f.cfg.Seed {
		return errors.New("fleetd: reload cannot change seed")
	}
	if cfg.Workers != f.cfg.Workers {
		return errors.New("fleetd: reload cannot change workers")
	}
	f.cfg.Budgets = cfg.Budgets
	f.cfg.Design = cfg.Design
	f.bucket.resize(cfg.Budgets.AdmitPerEpoch, cfg.Budgets.AdmitBurst)
	f.logf("epoch=%d op=reload max_links=%d admit=%g/%g step_budget=%d",
		f.epoch, cfg.Budgets.MaxLinks, cfg.Budgets.AdmitPerEpoch,
		cfg.Budgets.AdmitBurst, cfg.Budgets.StepBudget)
	return nil
}

// Step advances the fleet one epoch: refill the admission bucket, fan
// the runnable links out across the pool, merge their event buffers and
// capacity publications in ascending link-ID order, retire finished
// links, drive the fleet-wide flow simulator, and refresh telemetry.
func (f *Fleet) Step() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stepLocked()
}

func (f *Fleet) stepLocked() {
	f.bucket.refill()

	// Scheduling: lifecycle work (admission, bring-up, renegotiation,
	// draining) always runs; serving/degraded links run MAC superframes
	// under the step budget, rotated fairly by ascending link ID.
	runnable := make([]*managedLink, 0, len(f.order))
	serving := make([]*managedLink, 0, len(f.order))
	for _, id := range f.order {
		ml := f.links[id]
		switch ml.state {
		case StateAdmitted, StateBringUp, StateRenegotiating, StateDraining:
			runnable = append(runnable, ml)
		case StateServing, StateDegraded:
			ml.runServe = false
			serving = append(serving, ml)
			runnable = append(runnable, ml)
		}
	}
	budget := f.cfg.Budgets.StepBudget
	if budget <= 0 || budget > len(serving) {
		budget = len(serving)
	}
	if budget > 0 {
		// Start at the first serving link with ID >= rotor, wrap around.
		start := sort.Search(len(serving), func(i int) bool { return serving[i].id >= f.rotor })
		if start == len(serving) {
			start = 0
		}
		for k := 0; k < budget; k++ {
			ml := serving[(start+k)%len(serving)]
			ml.runServe = true
			f.rotor = ml.id + 1
		}
	}

	// Fan out. runnable is in ascending ID order (f.order is sorted),
	// which is also the merge order below.
	f.pool.run(len(runnable), func(i int) { runnable[i].step() })

	// Barrier: merge event buffers, publish bridge capacity fractions
	// into the fleet-wide flow simulator, and collect retirees — all in
	// ascending link-ID order.
	var retirees []*managedLink
	for _, ml := range runnable {
		for _, line := range ml.events {
			f.logf("epoch=%d link=%d %s", f.epoch, ml.id, line)
		}
		ml.events = ml.events[:0]
		if ml.caps.dirty {
			f.fsim.SetLinkFraction(ml.topoID, ml.caps.frac)
			ml.caps.dirty = false
		}
		if ml.state == StateRetired {
			retirees = append(retirees, ml)
		}
	}
	for _, ml := range retirees {
		f.retireLocked(ml)
	}

	// Background traffic: seeded flow arrivals between random hosts, so
	// capacity renegotiations act on live max-min shares.
	for i := 0; i < f.cfg.Budgets.FlowsPerEpoch; i++ {
		src := f.hosts[f.flowRNG.Intn(len(f.hosts))]
		dst := f.hosts[f.flowRNG.Intn(len(f.hosts))]
		if src == dst {
			continue
		}
		size := (1 + 9*f.flowRNG.Float64()) * 1e8
		if _, err := f.fsim.Inject(src, dst, size, f.flowRNG.Uint64()); err == nil {
			f.flowsInjected++
		}
	}
	f.fsim.Step(epochSimLen)

	// Epoch summary line: the fleet-level determinism witness.
	counts := f.stateCountsLocked()
	f.logf("epoch=%d summary live=%d serving=%d degraded=%d draining=%d retired=%d flows=%d",
		f.epoch, len(f.links),
		counts[StateServing], counts[StateDegraded], counts[StateDraining],
		f.adm.Retired, f.fsim.ActiveFlows())

	f.epoch++
	f.publishSnapshot(f.adm.Sheds() > f.lastSheds)
	f.lastSheds = f.adm.Sheds()
	f.syncTelemetryLocked(counts)
}

// retireLocked finalizes a retired link: record the tombstone, free the
// topology slot (restored to full width for its next tenant), detach
// the per-link collector, and drop the link.
func (f *Fleet) retireLocked(ml *managedLink) {
	f.adm.Retired++
	f.retired[ml.id] = ml.info()
	f.retiredIDs = append(f.retiredIDs, ml.id)
	if len(f.retiredIDs) > 1024 {
		delete(f.retired, f.retiredIDs[0])
		f.retiredIDs = f.retiredIDs[1:]
	}
	f.fsim.SetLinkFraction(ml.topoID, 1)
	heap.Push(&f.freeTopo, ml.topoID)
	if col, ok := f.linkCols[ml.id]; ok {
		col.Detach()
		delete(f.linkCols, ml.id)
	}
	delete(f.links, ml.id)
	for i, id := range f.order {
		if id == ml.id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

func (f *Fleet) stateCountsLocked() [NumStates]int {
	var counts [NumStates]int
	for _, ml := range f.links {
		counts[ml.state]++
	}
	return counts
}

func (f *Fleet) publishSnapshot(overloaded bool) {
	counts := f.stateCountsLocked()
	states := make(map[string]int, NumStates)
	for s, n := range counts {
		states[State(s).String()] = n
	}
	f.snap.Store(&Snapshot{
		Epoch:        f.epoch,
		States:       states,
		LiveLinks:    len(f.links),
		MaxLinks:     f.cfg.Budgets.MaxLinks,
		Draining:     f.draining,
		Overloaded:   overloaded,
		Admission:    f.adm,
		Pool:         f.pool.stats(),
		ActiveFlows:  f.fsim.ActiveFlows(),
		ScrapeBudget: f.cfg.Budgets.ScrapePerEpoch,
	})
}

func (f *Fleet) syncTelemetryLocked(counts [NumStates]int) {
	if f.col == nil {
		return
	}
	var stateCounts [NumStates]int64
	for i, n := range counts {
		stateCounts[i] = int64(n)
	}
	f.col.SyncStates(stateCounts[:])
	f.col.SyncPool(f.pool.stats().Workers, f.pool.stats().Tasks, f.pool.stats().Steals,
		f.pool.stats().Rounds, f.pool.stats().Depth)
	f.col.SyncAdmission(f.adm.Admitted, f.adm.Retired, []uint64{
		f.adm.ShedRate, f.adm.ShedLinks, f.adm.ShedTopology,
		f.adm.ShedScrape, f.adm.ShedDraining,
	})
	f.col.SyncFleet(f.epoch, uint64(f.fsim.ActiveFlows()), f.flowsInjected, uint64(len(f.links)))
	for id, col := range f.linkCols {
		ml := f.links[id]
		col.Sync(int(ml.state), ml.lanes(), ml.caps.frac, ml.queued, ml.delivered, ml.retx)
	}
}

// Snapshot returns the latest lock-free fleet summary.
func (f *Fleet) Snapshot() *Snapshot { return f.snap.Load() }

// Epoch returns the number of completed epochs.
func (f *Fleet) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// StateOf returns a link's lifecycle state (retired tombstones
// included). The second result is false for unknown IDs.
func (f *Fleet) StateOf(id int) (State, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ml, ok := f.links[id]; ok {
		return ml.state, true
	}
	if _, ok := f.retired[id]; ok {
		return StateRetired, true
	}
	return 0, false
}

// Inspect returns one link's full snapshot (live or tombstoned).
func (f *Fleet) Inspect(id int) (LinkInfo, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ml, ok := f.links[id]; ok {
		return ml.info(), true
	}
	info, ok := f.retired[id]
	return info, ok
}

// List returns the live links' snapshots in ascending ID order, capped
// at limit (0 = all).
func (f *Fleet) List(limit int) []LinkInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.order)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]LinkInfo, 0, n)
	for _, id := range f.order[:n] {
		out = append(out, f.links[id].info())
	}
	return out
}

// EventLog copies the merged fleet event log.
func (f *Fleet) EventLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// Admission returns the admission counters.
func (f *Fleet) Admission() AdmissionStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.adm
}

// PoolStats returns the worker pool counters.
func (f *Fleet) PoolStats() PoolStats { return f.pool.stats() }

// ScrapeBudget returns the per-epoch scrape budget (0 = unlimited),
// read by the HTTP shedding gate.
func (f *Fleet) ScrapeBudget() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Budgets.ScrapePerEpoch
}

// Drain performs the graceful-shutdown sequence: stop admissions, put
// every live link on the drain path, and step until the fleet is empty
// or ctx expires. It returns the number of links still live (0 on a
// clean drain).
func (f *Fleet) Drain(ctx context.Context) int {
	f.mu.Lock()
	f.draining = true
	f.logf("epoch=%d op=drain links=%d", f.epoch, len(f.links))
	for _, id := range f.order {
		ml := f.links[id]
		if ml.state != StateDraining && ml.state != StateRetired {
			_ = ml.transition(StateDraining, "fleet-drain")
		}
	}
	f.mu.Unlock()

	for {
		f.mu.Lock()
		live := len(f.links)
		f.mu.Unlock()
		if live == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return live
		default:
		}
		f.Step()
	}
}

// intHeap is a plain min-heap of free topology slots, so slot reuse is
// deterministic (lowest ID first) regardless of retirement order.
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
