// Package fleetd is the long-lived fleet service behind cmd/mosaicfleetd:
// it owns thousands of simulated Mosaic links — each a full PHY/MAC/Bridge
// stack driven by a seeded faultinject schedule — and walks every one of
// them through an explicit lifecycle on a shared work-stealing worker
// pool, under an admission-controlled operation API with token-bucket
// gating and load shedding.
//
// The package splits into a deterministic core and a real-time shell:
//
//   - The core (Fleet) advances in discrete epochs. Operations are applied
//     sequentially at epoch boundaries, link stepping fans out across the
//     pool with results buffered per link, and the fleet event log merges
//     those buffers in ascending link-ID order at the barrier — so under a
//     fixed seed and a recorded operation script the log is byte-identical
//     at any worker count (pinned by a golden-sha test in make
//     determinism, like the netsim and E24 witnesses).
//   - The shell (Server + cmd/mosaicfleetd) drives Step from a wall-clock
//     ticker, translates HTTP/JSON requests into operations, sheds load
//     with 429s when budgets are exceeded, hot-reloads configuration on
//     SIGHUP / POST /reload, and drains gracefully on SIGTERM.
package fleetd

import "fmt"

// State is a managed link's lifecycle stage. The legal transition graph:
//
//	admitted ──▶ bring-up ──▶ serving ◀──────────┐
//	    │            │         │    ▲            │
//	    │            │         ▼    │(spares     │
//	    │            │       degraded absorb)    │
//	    │            │         │                 │
//	    │            │         ▼                 │
//	    │            │     renegotiating ────────┘
//	    │            │         │
//	    ▼            ▼         ▼
//	  draining ◀── draining ◀──┴── (retire op from any live state)
//	    │
//	    ▼
//	  retired (terminal)
//
// Forward progress (admitted→bring-up→serving, serving→degraded,
// renegotiating→serving, draining→retired) happens inside pooled steps;
// operation-driven edges (degraded→renegotiating, anything→draining) are
// applied sequentially at epoch boundaries.
type State uint8

const (
	StateAdmitted State = iota
	StateBringUp
	StateServing
	StateDegraded
	StateRenegotiating
	StateDraining
	StateRetired

	NumStates = int(StateRetired) + 1
)

var stateNames = [NumStates]string{
	"admitted", "bring-up", "serving", "degraded",
	"renegotiating", "draining", "retired",
}

// String returns the lifecycle stage's wire name (used in the event log,
// the JSON API, and the per-state telemetry gauges).
func (s State) String() string {
	if int(s) < NumStates {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// StateNames lists every lifecycle stage in declaration order — the
// index is the State value. Telemetry registers one gauge per name.
func StateNames() []string {
	out := make([]string, NumStates)
	copy(out, stateNames[:])
	return out
}

// StateByName parses a wire name back into a State.
func StateByName(name string) (State, bool) {
	for i, n := range stateNames {
		if n == name {
			return State(i), true
		}
	}
	return 0, false
}

// legalEdges is the full transition relation. Anything not listed is
// rejected with a *TransitionError.
var legalEdges = map[State][]State{
	StateAdmitted:      {StateBringUp, StateDraining},
	StateBringUp:       {StateServing, StateDraining},
	StateServing:       {StateDegraded, StateDraining},
	StateDegraded:      {StateRenegotiating, StateDraining},
	StateRenegotiating: {StateServing, StateDegraded, StateDraining},
	StateDraining:      {StateRetired},
	StateRetired:       {},
}

// TransitionError reports an illegal lifecycle edge. It is the typed
// error every rejected transition returns, so callers (and the API
// layer, which maps it to 409) can distinguish a lifecycle conflict
// from a missing link or a shed operation.
type TransitionError struct {
	Link     int
	From, To State
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("fleetd: link %d: illegal transition %s -> %s", e.Link, e.From, e.To)
}

// CanTransition reports whether from -> to is a legal lifecycle edge.
func CanTransition(from, to State) bool {
	for _, next := range legalEdges[from] {
		if next == to {
			return true
		}
	}
	return false
}

// Terminal reports whether the state has no outgoing edges.
func (s State) Terminal() bool { return len(legalEdges[s]) == 0 }
