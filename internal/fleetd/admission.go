package fleetd

import "fmt"

// tokenBucket is the admission gate. It refills in epoch time, not wall
// time, so the deterministic core and the daemon share one
// implementation: the epoch loop calls refill() once per Step, and every
// admission (HTTP or scripted) spends a token under the fleet lock.
type tokenBucket struct {
	tokens   float64
	burst    float64
	perEpoch float64
}

func newTokenBucket(perEpoch, burst float64) tokenBucket {
	return tokenBucket{tokens: burst, burst: burst, perEpoch: perEpoch}
}

func (b *tokenBucket) refill() {
	b.tokens += b.perEpoch
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// take spends n tokens, or reports false leaving the bucket untouched.
func (b *tokenBucket) take(n float64) bool {
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// resize re-parameterizes the bucket on a config reload, clamping the
// current fill to the new burst so a tightened budget bites immediately.
func (b *tokenBucket) resize(perEpoch, burst float64) {
	b.perEpoch = perEpoch
	b.burst = burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// ShedReason says why an operation was refused admission. The API layer
// maps every shed to 429 and counts it per reason.
type ShedReason string

const (
	ShedRate     ShedReason = "rate"     // token bucket empty
	ShedLinks    ShedReason = "links"    // MaxLinks budget reached
	ShedTopology ShedReason = "topology" // no free slot in the fleet topology
	ShedScrape   ShedReason = "scrape"   // scrape budget exhausted this epoch
	ShedDraining ShedReason = "draining" // fleet is draining; admissions stopped
)

// ShedError is the typed refusal an admission-controlled operation
// returns when a budget gate sheds it.
type ShedError struct {
	Reason ShedReason
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("fleetd: shed (%s)", e.Reason)
}

// AdmissionStats counts admission outcomes for telemetry and /healthz.
type AdmissionStats struct {
	Admitted     uint64 `json:"admitted"`
	Retired      uint64 `json:"retired"`
	ShedRate     uint64 `json:"shed_rate"`
	ShedLinks    uint64 `json:"shed_links"`
	ShedTopology uint64 `json:"shed_topology"`
	ShedScrape   uint64 `json:"shed_scrape"`
	ShedDraining uint64 `json:"shed_draining"`
}

// Sheds sums every shed class.
func (a AdmissionStats) Sheds() uint64 {
	return a.ShedRate + a.ShedLinks + a.ShedTopology + a.ShedScrape + a.ShedDraining
}
