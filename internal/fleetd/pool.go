package fleetd

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the fleet's shared work-stealing worker pool. Every epoch the
// runnable links are dealt into per-worker run queues (contiguous index
// ranges); each worker drains its own queue front to back and, when it
// runs dry, steals single tasks from the other queues in scan order.
// Because a task only ever writes into its own link's buffers, the
// execution order — and therefore the steal pattern — cannot affect the
// merged event log; it only affects wall-clock balance, which is exactly
// what the steal counters measure.
type pool struct {
	workers int

	// Telemetry counters (read via PoolStats): lifetime tasks executed,
	// tasks obtained by stealing from another worker's queue, and barrier
	// rounds run.
	tasks  atomic.Uint64
	steals atomic.Uint64
	rounds atomic.Uint64

	// depth is the number of tasks in the current (or last) round — the
	// queue depth the gauges report.
	depth atomic.Int64

	queues []poolQueue
}

// poolQueue is one worker's share of a round: the half-open index range
// [lo, hi) with an atomic cursor. The owner and thieves pop through the
// same cursor, so a task runs exactly once.
type poolQueue struct {
	next atomic.Int64
	hi   int64
	_    [40]byte // keep cursors off each other's cache line
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &pool{workers: workers, queues: make([]poolQueue, workers)}
}

// PoolStats is the pool's telemetry snapshot.
type PoolStats struct {
	Workers int    `json:"workers"`
	Tasks   uint64 `json:"tasks"`
	Steals  uint64 `json:"steals"`
	Rounds  uint64 `json:"rounds"`
	Depth   int64  `json:"depth"`
}

func (p *pool) stats() PoolStats {
	return PoolStats{
		Workers: p.workers,
		Tasks:   p.tasks.Load(),
		Steals:  p.steals.Load(),
		Rounds:  p.rounds.Load(),
		Depth:   p.depth.Load(),
	}
}

// run executes fn(i) for every i in [0, n), fanning out across the
// workers and returning when all n tasks are done (a barrier). fn must
// confine its writes to state owned by task i.
func (p *pool) run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p.rounds.Add(1)
	p.depth.Store(int64(n))
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		p.tasks.Add(uint64(n))
		p.depth.Store(0)
		return
	}

	// Deal [0,n) into contiguous per-worker ranges.
	per := n / p.workers
	extra := n % p.workers
	lo := 0
	for w := 0; w < p.workers; w++ {
		size := per
		if w < extra {
			size++
		}
		p.queues[w].next.Store(int64(lo))
		p.queues[w].hi = int64(lo + size)
		lo += size
	}

	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(self int) {
			defer wg.Done()
			var ran, stole uint64
			// Own queue first, then steal from the others in scan order.
			for q := 0; q < p.workers; q++ {
				victim := (self + q) % p.workers
				vq := &p.queues[victim]
				for {
					i := vq.next.Add(1) - 1
					if i >= vq.hi {
						break
					}
					fn(int(i))
					ran++
					if victim != self {
						stole++
					}
				}
			}
			p.tasks.Add(ran)
			if stole > 0 {
				p.steals.Add(stole)
			}
		}(w)
	}
	wg.Wait()
	p.depth.Store(0)
}
