package fleetd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mosaic/internal/telemetry"
)

// testConfig is a small, fast fleet: wide enough to exercise sparing,
// small enough that a full lifecycle walk is milliseconds.
func testConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Budgets.MaxLinks = 64
	cfg.Budgets.StepBudget = 0 // step every serving link each epoch
	cfg.Budgets.FlowsPerEpoch = 4
	cfg.Design.Hazard = 0 // faults come from explicit Degrade ops
	return cfg
}

func stepUntil(t *testing.T, f *Fleet, pred func() bool, max int, what string) {
	t.Helper()
	for i := 0; i < max; i++ {
		if pred() {
			return
		}
		f.Step()
	}
	t.Fatalf("%s: not reached after %d epochs", what, max)
}

func stateOf(t *testing.T, f *Fleet, id int) State {
	t.Helper()
	s, ok := f.StateOf(id)
	if !ok {
		t.Fatalf("link %d unknown", id)
	}
	return s
}

// TestFleetLifecycleWalk drives one link through the full graph:
// admitted -> bring-up -> serving -> degraded -> renegotiating ->
// serving (at reduced width) -> draining -> retired, and checks the
// tombstone and the freed topology slot.
func TestFleetLifecycleWalk(t *testing.T) {
	f, err := New(testConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := f.Create(1, nil)
	if err != nil || len(ids) != 1 {
		t.Fatalf("Create = %v, %v", ids, err)
	}
	id := ids[0]
	if got := stateOf(t, f, id); got != StateAdmitted {
		t.Fatalf("after admit: state %s", got)
	}

	stepUntil(t, f, func() bool { return stateOf(t, f, id) == StateServing }, 10, "serving")
	info, _ := f.Inspect(id)
	if info.Lanes != f.cfg.Design.Lanes || info.Fraction != 1 {
		t.Fatalf("serving link: lanes=%d frac=%v", info.Lanes, info.Fraction)
	}

	// Kill more channels than the spare pool covers: the next serving
	// epoch spares what it can, comes up short, and degrades.
	if err := f.Degrade(id, f.cfg.Design.Spares+2); err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	stepUntil(t, f, func() bool { return stateOf(t, f, id) == StateDegraded }, 10, "degraded")
	info, _ = f.Inspect(id)
	if info.Lanes >= info.Contract {
		t.Fatalf("degraded link: lanes=%d contract=%d", info.Lanes, info.Contract)
	}

	// Renegotiate commits the degraded width as the new contract.
	if err := f.Renegotiate(id); err != nil {
		t.Fatalf("Renegotiate: %v", err)
	}
	stepUntil(t, f, func() bool { return stateOf(t, f, id) == StateServing }, 10, "re-serving")
	info, _ = f.Inspect(id)
	if info.Contract != info.Lanes || info.Fraction >= 1 {
		t.Fatalf("renegotiated link: lanes=%d contract=%d frac=%v",
			info.Lanes, info.Contract, info.Fraction)
	}

	// Renegotiating a healthy link is a lifecycle conflict.
	var te *TransitionError
	if err := f.Renegotiate(id); !errors.As(err, &te) {
		t.Fatalf("Renegotiate while serving = %v, want *TransitionError", err)
	}

	if err := f.Retire(id); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	stepUntil(t, f, func() bool { return stateOf(t, f, id) == StateRetired }, 20, "retired")
	info, ok := f.Inspect(id)
	if !ok || info.State != "retired" {
		t.Fatalf("tombstone: %+v ok=%v", info, ok)
	}
	if info.Delivered == 0 {
		t.Fatal("retired link delivered nothing")
	}
	if n := len(f.List(0)); n != 0 {
		t.Fatalf("%d live links after retirement", n)
	}
	if err := f.Retire(id); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("Retire retired link = %v, want ErrUnknownLink", err)
	}

	// The freed topology slot is reused by the next admission.
	oldTopo := info.TopoLink
	ids, err = f.Create(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, _ := f.Inspect(ids[0])
	if next.TopoLink != oldTopo {
		t.Fatalf("freed slot %d not reused (got %d)", oldTopo, next.TopoLink)
	}
}

// TestFleetAdmissionSheds exercises every admission gate.
func TestFleetAdmissionSheds(t *testing.T) {
	cfg := testConfig(1)
	cfg.Budgets.MaxLinks = 4
	cfg.Budgets.AdmitPerEpoch = 1
	cfg.Budgets.AdmitBurst = 2
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Burst covers two; the third sheds on rate.
	ids, err := f.Create(3, nil)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedRate {
		t.Fatalf("Create(3) err = %v, want rate shed", err)
	}
	if len(ids) != 2 {
		t.Fatalf("Create(3) admitted %d, want 2", len(ids))
	}

	// Refill over two epochs, then the links budget bites at MaxLinks=4.
	f.Step()
	f.Step()
	if _, err := f.Create(2, nil); err != nil {
		t.Fatalf("refilled create: %v", err)
	}
	f.Step()
	if _, err = f.Create(1, nil); !errors.As(err, &shed) || shed.Reason != ShedLinks {
		t.Fatalf("over-MaxLinks create err = %v, want links shed", err)
	}

	adm := f.Admission()
	if adm.Admitted != 4 || adm.ShedRate != 1 || adm.ShedLinks != 1 {
		t.Fatalf("admission stats: %+v", adm)
	}

	// Draining fleets shed everything.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if left := f.Drain(ctx); left != 0 {
		t.Fatalf("Drain left %d links", left)
	}
	if _, err = f.Create(1, nil); !errors.As(err, &shed) || shed.Reason != ShedDraining {
		t.Fatalf("create while draining err = %v, want draining shed", err)
	}
	if f.Snapshot().LiveLinks != 0 || !f.Snapshot().Draining {
		t.Fatalf("post-drain snapshot: %+v", f.Snapshot())
	}
}

func TestFleetReload(t *testing.T) {
	f, err := New(testConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	cfg.Seed = 99
	if err := f.Reload(cfg); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed-changing reload = %v", err)
	}
	cfg = testConfig(2)
	if err := f.Reload(cfg); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("worker-changing reload = %v", err)
	}
	cfg = testConfig(1)
	cfg.Budgets.MaxLinks = 1
	cfg.Budgets.AdmitBurst = 1
	if err := f.Reload(cfg); err != nil {
		t.Fatalf("reload: %v", err)
	}
	var shed *ShedError
	if _, err := f.Create(2, nil); !errors.As(err, &shed) {
		t.Fatalf("create after tightening = %v, want shed", err)
	}
}

// scenarioScript is the determinism witness's workload: admissions in
// waves, induced degradations, renegotiations, retirements, and a
// budget reload, spread over 40 epochs.
func scenarioScript() Script {
	s := Script{
		{Epoch: 0, Action: "create", Count: 12},
		{Epoch: 3, Action: "create", Count: 8},
		{Epoch: 5, Action: "degrade", Link: 2, Kill: 4},
		{Epoch: 5, Action: "degrade", Link: 7, Kill: 5},
		{Epoch: 8, Action: "renegotiate", Link: 2},
		{Epoch: 8, Action: "renegotiate", Link: 7},
		{Epoch: 10, Action: "retire", Link: 0},
		{Epoch: 10, Action: "retire", Link: 5},
		{Epoch: 12, Action: "create", Count: 4},
		{Epoch: 15, Action: "degrade", Link: 13, Kill: 2},
		{Epoch: 18, Action: "retire", Link: 13},
		{Epoch: 20, Action: "reload-budgets", Budgets: &Budgets{
			MaxLinks: 64, AdmitPerEpoch: 2, AdmitBurst: 2, StepBudget: 5,
			ScrapePerEpoch: 1024, DetailLinks: 8, FlowsPerEpoch: 4,
		}},
		{Epoch: 21, Action: "create", Count: 6}, // sheds past the tightened bucket
		{Epoch: 25, Action: "degrade", Link: 9, Kill: 4},
		{Epoch: 28, Action: "renegotiate", Link: 9},
		{Epoch: 30, Action: "retire", Link: 1},
		{Epoch: 30, Action: "retire", Link: 9},
		{Epoch: 31, Action: "renegotiate", Link: 9}, // lifecycle conflict, logged nowhere
		{Epoch: 32, Action: "degrade", Link: 999},   // unknown link, ignored
	}
	return s
}

func runScenario(t *testing.T, workers int) (string, []string) {
	t.Helper()
	cfg := testConfig(workers)
	cfg.Design.Hazard = 0.002 // seeded wear on top of explicit ops
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(scenarioScript(), 40); err != nil {
		t.Fatal(err)
	}
	log := f.EventLog()
	h := sha256.Sum256([]byte(strings.Join(log, "\n")))
	return hex.EncodeToString(h[:]), log
}

// fleetScenarioGolden pins the scenario's event log. A legitimate
// behavior change re-pins it (run with -run TestFleetdDeterministic -v
// and copy the printed sha); an accidental one is a determinism break.
const fleetScenarioGolden = "1573e18d19e251e1a8941a5561191e75de150e6bfa9a04124ec08cf05c48f25e"

// TestFleetdDeterministicAcrossWorkers replays the scripted scenario at
// 1, 3, and GOMAXPROCS workers and requires byte-identical event logs
// — the worker-count-invariance contract — then pins the sha against
// the golden so cross-machine drift also surfaces.
func TestFleetdDeterministicAcrossWorkers(t *testing.T) {
	sha1w, log1 := runScenario(t, 1)
	t.Logf("fleet scenario sha=%s (%d log lines)", sha1w, len(log1))
	for _, workers := range []int{3, runtime.GOMAXPROCS(0)} {
		shaNw, logN := runScenario(t, workers)
		if shaNw != sha1w {
			diff := firstDiff(log1, logN)
			t.Fatalf("event log diverges at %d workers: sha %s vs %s\nfirst diff: %s",
				workers, shaNw, sha1w, diff)
		}
	}
	if sha1w != fleetScenarioGolden {
		t.Fatalf("event log sha = %s, golden = %s\n(re-pin only for an intentional behavior change)",
			sha1w, fleetScenarioGolden)
	}
}

func firstDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestConcurrentAdmissionDeterministic admits links from many
// goroutines at once, 50 iterations. Link identity (ID, seed, topology
// slot) is assigned under the fleet lock and derived from the ID alone,
// so the fleet that results — and the event log of the epochs that
// follow — must not depend on goroutine arrival order or map iteration
// order.
func TestConcurrentAdmissionDeterministic(t *testing.T) {
	var want string
	for iter := 0; iter < 50; iter++ {
		f, err := New(testConfig(2), nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := f.Create(2, nil); err != nil {
					t.Errorf("concurrent Create: %v", err)
				}
			}()
		}
		wg.Wait()
		for e := 0; e < 6; e++ {
			f.Step()
		}
		h := sha256.Sum256([]byte(strings.Join(f.EventLog(), "\n")))
		got := hex.EncodeToString(h[:])
		if iter == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("iter %d: event log sha %s != %s", iter, got, want)
		}
	}
}

// TestFleetTelemetry checks the collector wiring end to end: per-state
// gauges, admission counters, and per-link gauges that appear at
// admission and vanish at retirement.
func TestFleetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig(1)
	cfg.Budgets.DetailLinks = 1 // link 0 detailed, link 1 not
	f, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(2, nil); err != nil {
		t.Fatal(err)
	}
	stepUntil(t, f, func() bool { return stateOf(t, f, 0) == StateServing }, 10, "serving")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mosaic_fleetd_links{state="serving"} 2`,
		"mosaic_fleetd_admitted_total 2",
		"mosaic_fleetd_pool_rounds_total",
		`mosaic_fleetd_link_state{link="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, `link="1"`) {
		t.Error("link 1 has per-link gauges beyond the DetailLinks budget")
	}

	if err := f.Retire(0); err != nil {
		t.Fatal(err)
	}
	stepUntil(t, f, func() bool { return stateOf(t, f, 0) == StateRetired }, 20, "retired")
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `mosaic_fleetd_link_state{link="0"}`) {
		t.Error("retired link's gauges still exposed after Detach")
	}
	if !strings.Contains(b.String(), "mosaic_fleetd_retired_total 1") {
		t.Error("retired counter not synced")
	}
}

// TestStepBudgetRotor: with StepBudget=1 the serving links advance in
// strict rotation, one per epoch, while lifecycle work still runs for
// everyone.
func TestStepBudgetRotor(t *testing.T) {
	cfg := testConfig(1)
	cfg.Budgets.StepBudget = 1
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create(3, nil); err != nil {
		t.Fatal(err)
	}
	// Bring-up always runs, so all three reach serving together.
	stepUntil(t, f, func() bool {
		for id := 0; id < 3; id++ {
			if stateOf(t, f, id) != StateServing {
				return false
			}
		}
		return true
	}, 10, "all serving")

	base := make([]int, 3)
	for id := range base {
		info, _ := f.Inspect(id)
		base[id] = info.SF
	}
	// Three epochs = exactly one serving step each, in rotation.
	f.Step()
	f.Step()
	f.Step()
	for id := range base {
		info, _ := f.Inspect(id)
		if got := info.SF - base[id]; got != f.cfg.Design.SFPerStep {
			t.Errorf("link %d advanced %d superframes over 3 epochs, want %d",
				id, got, f.cfg.Design.SFPerStep)
		}
	}
}
