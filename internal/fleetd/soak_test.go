package fleetd

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mosaic/internal/telemetry"
)

// soakOpts parameterizes the fleet soak harness shared by the short
// tier-1 smoke and the 60-second CI soak.
type soakOpts struct {
	links    int           // base fleet: admitted at start, must all survive
	duration time.Duration // wall-clock soak time after bring-up
	out      string        // write a final /metrics snapshot here ("" = skip)
}

// runFleetSoak is the acceptance harness: a live fleet stepped
// continuously while concurrent goroutines throw scrape, fault, and
// admission traffic at the HTTP API. At the end, every base link must
// still be live and healthy — degraded or renegotiating is fine,
// draining/retired/errored is a dropped link — and /healthz must never
// have answered anything but 200, or 503 during an induced overload
// window.
func runFleetSoak(t *testing.T, opts soakOpts) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Budgets.MaxLinks = opts.links + 256 // churn headroom
	cfg.Budgets.AdmitBurst = float64(opts.links + 256)
	cfg.Budgets.AdmitPerEpoch = 64
	cfg.Budgets.StepBudget = 128
	cfg.Budgets.ScrapePerEpoch = 0 // scrapes gated only in the overload burst below
	cfg.Design.Hazard = 0.0001

	reg := telemetry.NewRegistry()
	fleet, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fleet, reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The epoch driver: step as fast as the pool allows.
	stop := make(chan struct{})
	var drivers sync.WaitGroup
	drivers.Add(1)
	go func() {
		defer drivers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fleet.Step()
			}
		}
	}()

	// Bring up the base fleet.
	if ids, err := fleet.Create(opts.links, nil); err != nil || len(ids) != opts.links {
		t.Fatalf("base admission: %d links, err=%v", len(ids), err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		snap := fleet.Snapshot()
		if snap.States["serving"]+snap.States["degraded"] >= opts.links {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bring-up stalled: %+v", snap.States)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("base fleet of %d links serving after %d epochs", opts.links, fleet.Snapshot().Epoch)

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	var badHealth atomic.Value // first unexplained /healthz answer
	var clients sync.WaitGroup
	// Scraper: hammer /metrics, /metrics.json, /healthz.
	clients.Add(1)
	go func() {
		defer clients.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			get("/metrics")
			get("/metrics.json")
			code, body := get("/healthz")
			ok := code == http.StatusOK ||
				(code == http.StatusServiceUnavailable && strings.Contains(body, "overloaded"))
			if !ok && badHealth.Load() == nil {
				badHealth.Store(fmt.Sprintf("healthz = %d %s", code, body))
			}
			if i%20 == 0 {
				get("/v1/fleet")
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Faulter: degrade random base links (one channel at a time, well
	// inside the spare pool) and renegotiate any that report degraded.
	clients.Add(1)
	go func() {
		defer clients.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := rng.Intn(opts.links)
			post(fmt.Sprintf("/v1/links/%d/degrade", id), `{"kill":1}`)
			if s, ok := fleet.StateOf(id); ok && s == StateDegraded {
				post(fmt.Sprintf("/v1/links/%d/renegotiate", id), "")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Admission churn: create links beyond the base fleet and retire
	// them; periodic bursts past the rate budget induce overload windows
	// (and exercise the 429 path).
	clients.Add(1)
	go func() {
		defer clients.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code := post("/v1/links", `{"count":4}`)
			if code != http.StatusCreated && code != http.StatusTooManyRequests {
				t.Errorf("churn create = %d", code)
			}
			// Retire everything above the base fleet.
			for _, info := range fleet.List(0) {
				if info.ID >= opts.links {
					post(fmt.Sprintf("/v1/links/%d/retire", info.ID), "")
				}
			}
			if i%5 == 4 {
				// Overload burst: far past the refill rate.
				post("/v1/links", `{"count":512}`)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	time.Sleep(opts.duration)

	close(stop)
	clients.Wait()
	drivers.Wait()

	if msg := badHealth.Load(); msg != nil {
		t.Errorf("unexplained health answer during soak: %s", msg)
	}

	// Guaranteed overload window, however starved the churn goroutine was
	// (on a single-CPU host its timed bursts may never fire): a create far
	// past every budget must shed, and with the driver stopped the epoch
	// we step by hand pins the window open for /healthz to observe.
	if code := post("/v1/links", fmt.Sprintf(`{"count":%d}`, cfg.Budgets.MaxLinks+1)); code != http.StatusCreated && code != http.StatusTooManyRequests {
		t.Errorf("overload create = %d", code)
	}
	fleet.Step()
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "overloaded") {
		t.Errorf("healthz during induced overload = %d %q", code, body)
	}
	// A quiet epoch closes the window.
	fleet.Step()
	if code, body := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz after the overload window = %d %q", code, body)
	}

	// Final exposition for the CI artifact.
	if opts.out != "" {
		code, body := get("/metrics")
		if code != http.StatusOK {
			t.Fatalf("final scrape = %d", code)
		}
		if err := os.WriteFile(opts.out, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", opts.out, len(body))
	}

	// Zero dropped serving links: every base link is still live and on
	// the serving side of the lifecycle, with no recorded error.
	dropped := 0
	for id := 0; id < opts.links; id++ {
		info, ok := fleet.Inspect(id)
		if !ok {
			t.Errorf("base link %d vanished", id)
			dropped++
			continue
		}
		switch info.State {
		case "serving", "degraded", "renegotiating":
		default:
			t.Errorf("base link %d dropped to %s (err=%q)", id, info.State, info.Err)
			dropped++
		}
	}
	snap := fleet.Snapshot()
	adm := fleet.Admission()
	t.Logf("soak done: epochs=%d live=%d dropped=%d admitted=%d retired=%d sheds=%d steals=%d",
		snap.Epoch, snap.LiveLinks, dropped, adm.Admitted, adm.Retired,
		adm.Sheds(), snap.Pool.Steals)
	if adm.Sheds() == 0 {
		t.Error("soak induced no sheds; the overload path went unexercised")
	}
	if adm.Retired == 0 {
		t.Error("soak retired no churn links")
	}
}

// TestFleetSoakSmoke is the tier-1 variant: a small fleet, a couple of
// wall-clock seconds, same invariants.
func TestFleetSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	runFleetSoak(t, soakOpts{links: 64, duration: 2 * time.Second})
}

// TestFleetSoak is the acceptance soak (make soak-fleetd): >=2000
// concurrent serving links under continuous fault + scrape + admission
// traffic for 60s, run under -race in CI, with the final exposition
// uploaded as FLEETD_METRICS.prom.
func TestFleetSoak(t *testing.T) {
	if os.Getenv("MOSAIC_FLEETD_SOAK") == "" {
		t.Skip("set MOSAIC_FLEETD_SOAK=1 to run the 60s fleet soak")
	}
	links := 2000
	dur := 60 * time.Second
	if v := os.Getenv("MOSAIC_FLEETD_SOAK_SECONDS"); v != "" {
		var secs int
		if _, err := fmt.Sscanf(v, "%d", &secs); err == nil && secs > 0 {
			dur = time.Duration(secs) * time.Second
		}
	}
	out := os.Getenv("FLEETD_METRICS_OUT")
	if out == "" {
		out = "FLEETD_METRICS.prom"
	}
	runFleetSoak(t, soakOpts{links: links, duration: dur, out: out})
}
