package fleetd

import (
	"errors"
	"testing"
)

// Every legal edge of the lifecycle graph, exhaustively. Kept in sync
// with legalEdges by the exhaustive illegal-edge sweep below: every
// (from, to) pair is either here or must be rejected.
var legalEdgeTable = []struct{ from, to State }{
	{StateAdmitted, StateBringUp},
	{StateAdmitted, StateDraining},
	{StateBringUp, StateServing},
	{StateBringUp, StateDraining},
	{StateServing, StateDegraded},
	{StateServing, StateDraining},
	{StateDegraded, StateRenegotiating},
	{StateDegraded, StateDraining},
	{StateRenegotiating, StateServing},
	{StateRenegotiating, StateDegraded},
	{StateRenegotiating, StateDraining},
	{StateDraining, StateRetired},
}

func isLegal(from, to State) bool {
	for _, e := range legalEdgeTable {
		if e.from == from && e.to == to {
			return true
		}
	}
	return false
}

func TestLifecycleLegalEdges(t *testing.T) {
	for _, e := range legalEdgeTable {
		if !CanTransition(e.from, e.to) {
			t.Errorf("CanTransition(%s, %s) = false, want true", e.from, e.to)
		}
		ml := &managedLink{id: 7, state: e.from}
		if err := ml.transition(e.to, "test"); err != nil {
			t.Errorf("transition %s -> %s: %v", e.from, e.to, err)
		}
		if ml.state != e.to {
			t.Errorf("transition %s -> %s left state %s", e.from, e.to, ml.state)
		}
		if len(ml.events) != 1 {
			t.Errorf("transition %s -> %s logged %d events, want 1", e.from, e.to, len(ml.events))
		}
	}
}

// Every pair not in the legal table must be rejected with the typed
// error, carrying the exact (link, from, to) triple, and must not move
// the state or log an event.
func TestLifecycleIllegalEdges(t *testing.T) {
	for from := State(0); int(from) < NumStates; from++ {
		for to := State(0); int(to) < NumStates; to++ {
			if isLegal(from, to) {
				continue
			}
			if CanTransition(from, to) {
				t.Errorf("CanTransition(%s, %s) = true, want false", from, to)
			}
			ml := &managedLink{id: 42, state: from}
			err := ml.transition(to, "test")
			if err == nil {
				t.Errorf("transition %s -> %s: no error", from, to)
				continue
			}
			var te *TransitionError
			if !errors.As(err, &te) {
				t.Errorf("transition %s -> %s: error %T is not *TransitionError", from, to, err)
				continue
			}
			if te.Link != 42 || te.From != from || te.To != to {
				t.Errorf("transition %s -> %s: error carries (%d, %s, %s)",
					from, to, te.Link, te.From, te.To)
			}
			if ml.state != from {
				t.Errorf("rejected transition %s -> %s moved state to %s", from, to, ml.state)
			}
			if len(ml.events) != 0 {
				t.Errorf("rejected transition %s -> %s logged events", from, to)
			}
		}
	}
}

func TestStateNamesRoundTrip(t *testing.T) {
	names := StateNames()
	if len(names) != NumStates {
		t.Fatalf("StateNames has %d entries, want %d", len(names), NumStates)
	}
	for i, name := range names {
		if got := State(i).String(); got != name {
			t.Errorf("State(%d).String() = %q, want %q", i, got, name)
		}
		s, ok := StateByName(name)
		if !ok || s != State(i) {
			t.Errorf("StateByName(%q) = (%v, %v), want (%v, true)", name, s, ok, State(i))
		}
	}
	if _, ok := StateByName("no-such-state"); ok {
		t.Error("StateByName accepted an unknown name")
	}
	if State(200).String() != "state(200)" {
		t.Errorf("out-of-range State string = %q", State(200).String())
	}
}

func TestTerminal(t *testing.T) {
	for s := State(0); int(s) < NumStates; s++ {
		want := s == StateRetired
		if got := s.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, got, want)
		}
	}
}
