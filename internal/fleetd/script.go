package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Op is one recorded fleet operation — the replayable form of an API
// request. A script of ops applied at fixed epochs, plus the fleet
// seed, fully determines the event log (the golden-sha determinism
// test replays one at different worker counts).
type Op struct {
	Epoch  int    `json:"epoch"`
	Action string `json:"action"` // create|degrade|renegotiate|retire|reload-budgets

	Count  int         `json:"count,omitempty"`  // create: links to admit (default 1)
	Design *LinkDesign `json:"design,omitempty"` // create: design override
	Link   int         `json:"link,omitempty"`   // degrade/renegotiate/retire target
	Kill   int         `json:"kill,omitempty"`   // degrade: channels to kill (default 1)

	Budgets *Budgets `json:"budgets,omitempty"` // reload-budgets: new budgets
}

// Script is a recorded operation sequence, ordered by epoch (ties keep
// slice order).
type Script []Op

// DecodeScript reads a JSON script (an array of ops).
func DecodeScript(r io.Reader) (Script, error) {
	var s Script
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fleetd: script: %w", err)
	}
	return s, nil
}

// Apply executes one op against the fleet. Shed admissions and
// lifecycle conflicts are not errors at the script level — they are
// recorded in the event log exactly as the API would record them — so
// only a malformed op fails the replay.
func (f *Fleet) Apply(op Op) error {
	switch op.Action {
	case "create":
		n := op.Count
		if n <= 0 {
			n = 1
		}
		if _, err := f.Create(n, op.Design); err != nil {
			var shed *ShedError
			if !errors.As(err, &shed) {
				return err
			}
		}
	case "degrade":
		k := op.Kill
		if k <= 0 {
			k = 1
		}
		if err := f.Degrade(op.Link, k); err != nil && !isLifecycleErr(err) {
			return err
		}
	case "renegotiate":
		if err := f.Renegotiate(op.Link); err != nil && !isLifecycleErr(err) {
			return err
		}
	case "retire":
		if err := f.Retire(op.Link); err != nil && !isLifecycleErr(err) {
			return err
		}
	case "reload-budgets":
		if op.Budgets == nil {
			return fmt.Errorf("fleetd: reload-budgets op needs budgets")
		}
		f.mu.Lock()
		cfg := f.cfg
		f.mu.Unlock()
		cfg.Budgets = *op.Budgets
		if err := f.Reload(cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fleetd: unknown script action %q", op.Action)
	}
	return nil
}

// Run replays a script over the given number of epochs: at each epoch
// boundary the due ops apply in order, then the fleet steps once.
func (f *Fleet) Run(script Script, epochs int) error {
	next := 0
	for e := 0; e < epochs; e++ {
		for next < len(script) && script[next].Epoch <= e {
			if err := f.Apply(script[next]); err != nil {
				return fmt.Errorf("op %d (epoch %d): %w", next, e, err)
			}
			next++
		}
		f.Step()
	}
	return nil
}

// isLifecycleErr reports whether the error is an expected runtime
// refusal (illegal edge or unknown link) rather than a malformed op.
func isLifecycleErr(err error) bool {
	var te *TransitionError
	return errors.Is(err, ErrUnknownLink) || errors.As(err, &te)
}
