package fleetd

import (
	"net/http"
	"strings"
	"testing"
)

// A link created with a scenario binding must replay the scenario's
// witness fault schedule: the event log carries the witness line and
// the injected faults, the inspection snapshot names the scenario, and
// the same (scenario, seed) reproduces the same events.
func TestScenarioLinkRunsWitnessSchedule(t *testing.T) {
	run := func() []string {
		cfg := testConfig(1)
		h := newAPIHarness(t, cfg)
		code, body := h.do("POST", "/v1/links", map[string]any{"count": 1, "scenario": "E26"})
		if code != http.StatusCreated {
			t.Fatalf("create = %d %s", code, body)
		}
		for i := 0; i < 30; i++ {
			h.fleet.Step()
		}
		var info LinkInfo
		code, body = h.do("GET", "/v1/links/0", nil)
		h.decode(body, &info)
		if code != http.StatusOK || info.Scenario != "E26" {
			t.Fatalf("inspect = %d %+v, want scenario E26", code, info)
		}
		return h.fleet.EventLog()
	}

	log := run()
	var witness, injects int
	for _, line := range log {
		if strings.Contains(line, "scenario=E26 witness events=") {
			witness++
		}
		if strings.Contains(line, "inject") {
			injects++
		}
	}
	if witness == 0 {
		t.Fatalf("no witness-schedule line in the event log:\n%s", strings.Join(log, "\n"))
	}
	if injects == 0 {
		t.Fatalf("witness schedule injected no faults over 30 epochs:\n%s", strings.Join(log, "\n"))
	}

	// Same scenario, same fleet seed: byte-identical event log.
	again := run()
	if strings.Join(log, "\n") != strings.Join(again, "\n") {
		t.Fatal("scenario-bound fleet run is not reproducible")
	}
}

// The scenario shorthand layers onto the fleet's default design; an
// explicit design override keeps its own fields.
func TestScenarioShorthandKeepsDesignOverride(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))
	d := DefaultLinkDesign()
	d.Lanes = 4
	code, body := h.do("POST", "/v1/links", map[string]any{
		"count": 1, "scenario": "flash-diurnal-thermal", "design": d,
	})
	if code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, body)
	}
	for i := 0; i < 4; i++ {
		h.fleet.Step()
	}
	var info LinkInfo
	_, body = h.do("GET", "/v1/links/0", nil)
	h.decode(body, &info)
	if info.Scenario != "flash-diurnal-thermal" || info.Nominal != 4 {
		t.Fatalf("inspect = %+v, want scenario flash-diurnal-thermal on 4 lanes", info)
	}
}

// An unknown scenario must be rejected at admission with 400, both via
// the shorthand and via the design field.
func TestScenarioUnknownRejected(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))
	code, body := h.do("POST", "/v1/links", map[string]any{"count": 1, "scenario": "nope"})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "unknown scenario") {
		t.Fatalf("create with unknown scenario = %d %s", code, body)
	}
	d := DefaultLinkDesign()
	d.Scenario = "also-nope"
	if code, body = h.do("POST", "/v1/links", map[string]any{"count": 1, "design": d}); code != http.StatusBadRequest {
		t.Fatalf("create with unknown design scenario = %d %s", code, body)
	}
	if n := len(h.fleet.EventLog()); n != 0 {
		t.Fatalf("rejected admissions still logged %d events", n)
	}
}

// Config validation must catch a bad scenario in the default design.
func TestConfigRejectsUnknownScenario(t *testing.T) {
	cfg := testConfig(1)
	cfg.Design.Scenario = "nope"
	if err := cfg.Validate(); err == nil {
		t.Fatal("config with unknown scenario validated")
	}
	cfg.Design.Scenario = "E27"
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
