package fleetd

import (
	"fmt"
	"math/rand"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/scenario"
	"mosaic/internal/sim"
)

// capRecorder is the per-link mac.CapacitySink: the bridge's After(0)
// syncs run inside the pooled step, so the fraction lands in link-owned
// state here and the fleet republishes it into the shared FleetSim
// sequentially at the barrier (ascending link ID — race-free and
// worker-count invariant).
type capRecorder struct {
	frac  float64
	dirty bool
}

func (c *capRecorder) SetLinkCapacityFraction(_ int, frac float64) {
	c.frac = frac
	c.dirty = true
}

// managedLink is one fleet member: a full-duplex PHY pair under a MAC
// endpoint pair, a seeded fault schedule replayed by the shared
// faultinject.Applier, and a capacity bridge — plus the lifecycle
// bookkeeping the state machine needs. During a pooled step the link is
// owned exclusively by its worker; between steps the fleet lock guards
// it.
type managedLink struct {
	id     int
	topoID int // fleet topology link this member occupies
	seed   int64
	design LinkDesign

	state State
	sf    int // superframes served (absolute, across schedule rounds)

	fwd, rev *phy.Link
	pair     *mac.Pair
	applier  *faultinject.Applier
	round    int // fault-schedule round (sf / Horizon)
	eng      *sim.Engine
	bridge   *mac.Bridge
	caps     capRecorder

	nominal  int // lane count at construction; the bridge's 1.0 reference
	contract int // lanes the link last negotiated to serve at
	drained  int // superframes spent draining
	err      error

	packets     [][]byte
	handledFail map[int]bool

	// events buffers this epoch's log lines; the fleet merges and clears
	// it at the barrier.
	events []string

	// runServe marks the link as scheduled for serving ticks this epoch
	// (set by the fleet's budgeted rotor before the fan-out).
	runServe bool

	// Counters mirrored into the API/telemetry snapshots.
	queued, delivered, retx uint64
}

func (m *managedLink) logf(format string, args ...any) {
	m.events = append(m.events, fmt.Sprintf(format, args...))
}

// transition applies a lifecycle edge, returning the typed error on an
// illegal one. Every successful edge is event-logged.
func (m *managedLink) transition(to State, detail string) error {
	if !CanTransition(m.state, to) {
		return &TransitionError{Link: m.id, From: m.state, To: to}
	}
	from := m.state
	m.state = to
	if detail != "" {
		m.logf("%s->%s %s", from, to, detail)
	} else {
		m.logf("%s->%s", from, to)
	}
	return nil
}

// linkSeed derives the per-link seed from the fleet seed and the link
// ID only — not the admission order — so concurrently admitted links
// get identical behavior no matter which goroutine's request landed
// first.
func linkSeed(fleetSeed int64, id int) int64 {
	return fleetSeed + 1_000_003*int64(id+1)
}

// construct builds the PHY/MAC/Bridge stack. Runs inside the pooled
// step (construction dominates admission cost, so it parallelizes), and
// depends only on (design, seed) — never on timing.
func (m *managedLink) construct() error {
	d := m.design
	fec, err := phy.FECByName(d.FEC)
	if err != nil {
		return err
	}
	mk := func(off int64) (*phy.Link, error) {
		return phy.New(phy.Config{
			Lanes:             d.Lanes,
			Spares:            d.Spares,
			FEC:               fec,
			UnitLen:           d.UnitLen,
			PerChannelBitRate: 2e9,
			Seed:              m.seed + off,
			Workers:           1, // lanes run inline; the fleet pool is the parallelism
		})
	}
	if m.fwd, err = mk(0); err != nil {
		return err
	}
	if m.rev, err = mk(1); err != nil {
		return err
	}

	var pc mac.PairConfig
	pc.Endpoint.MaxPayload = d.PacketLen
	pc.Endpoint.Window = 4 * d.PacketsPerSF
	if pc.Endpoint.Window < mac.DefaultWindow {
		pc.Endpoint.Window = mac.DefaultWindow
	}
	// One tick of fresh data plus a full retransmission round plus a
	// pure ack — the same sizing rule mac.Session uses.
	pc.Endpoint.PayloadBudget = (2*d.PacketsPerSF + 1) * (d.PacketLen + mac.Overhead)
	if m.pair, err = mac.NewPair(m.fwd, m.rev, pc, nil, nil); err != nil {
		return err
	}

	// Fixed client payloads regenerated from the seed.
	rng := rand.New(rand.NewSource(m.seed))
	m.packets = make([][]byte, d.PacketsPerSF)
	for i := range m.packets {
		m.packets[i] = make([]byte, d.PacketLen)
		rng.Read(m.packets[i])
	}

	m.nominal = m.fwd.Mapper().NumLanes()
	m.contract = m.nominal
	m.caps.frac = 1
	m.handledFail = make(map[int]bool)

	// Health transitions land in the link's event buffer; the bridge
	// chains after this hook and records capacity changes.
	m.fwd.Monitor().SetTransitionHook(func(physical int, from, to phy.ChannelState) {
		m.logf("sf=%d transition ch=%d %v->%v", m.sf, physical, from, to)
	})
	m.eng = sim.NewEngine(m.seed)
	m.bridge = mac.NewBridge(m.fwd, &m.caps, m.topoID, m.eng)
	m.bridge.OnRenegotiate = func(_ sim.Time, lanes int, frac float64) {
		m.logf("sf=%d bridge lanes=%d frac=%.4f", m.sf, lanes, frac)
	}
	m.bridge.Install()

	m.loadSchedule()
	return nil
}

// loadSchedule (re)generates the seeded fault schedule for the current
// horizon round and arms a fresh applier on it. A design bound to a
// registered scenario replays that scenario's witness schedule (its
// environment models mapped to per-channel faults) instead of
// hazard-generated random kills; both derive the round's seed the same
// way, so scenario links are exactly as reproducible as hazard links.
func (m *managedLink) loadSchedule() {
	d := m.design
	var sched faultinject.Schedule
	roundSeed := m.seed + int64(m.round)*7907
	if entry, ok := scenario.Lookup(d.Scenario); d.Scenario != "" && ok {
		s, err := scenario.Witness(entry.Spec, d.Lanes+d.Spares, d.Horizon, roundSeed)
		if err != nil {
			// Unreachable for a registered scenario (the library validates);
			// log and serve unfaulted rather than wedging the lifecycle.
			m.logf("sf=%d scenario=%s witness error: %v", m.sf, entry.ID, err)
		} else {
			sched = s
			m.logf("sf=%d scenario=%s witness events=%d round=%d", m.sf, entry.ID, len(sched.Events), m.round)
		}
	} else if d.Hazard > 0 {
		rng := rand.New(rand.NewSource(roundSeed))
		sched = faultinject.RandomKills(rng, d.Lanes+d.Spares, d.Hazard, d.Horizon)
	}
	m.applier = faultinject.NewApplier(m.fwd, sched)
	m.applier.OnInject = func(e faultinject.Event) {
		m.logf("sf=%d inject %v", m.sf, e)
	}
}

// tick advances one superframe: inject faults, queue client traffic
// (unless draining), move the pair one round trip, spare out failed
// channels, and drain the bridge's zero-delay capacity syncs.
func (m *managedLink) tick(draining bool) {
	roundSF := m.sf - m.round*m.design.Horizon
	if roundSF >= m.design.Horizon {
		m.round++
		m.loadSchedule()
		roundSF = m.sf - m.round*m.design.Horizon
	}
	m.applier.Step(roundSF)

	if !draining {
		for _, p := range m.packets {
			if err := m.pair.A.SendVC(0, p); err != nil {
				m.fail(fmt.Errorf("send: %w", err))
				return
			}
			m.queued++
		}
	}
	if err := m.pair.Tick(); err != nil {
		m.fail(fmt.Errorf("exchange: %w", err))
		return
	}

	// Reactive sparing; the bridge hook has queued a capacity sync for
	// any width change, drained below.
	for _, p := range m.fwd.Monitor().FailedChannels() {
		if m.handledFail[p] {
			continue
		}
		m.handledFail[p] = true
		ev := m.fwd.FailChannel(p)
		m.logf("sf=%d remap %v", m.sf, ev)
	}
	m.eng.Run()

	m.delivered = m.pair.B.Stats().Delivered
	m.retx = m.pair.A.Stats().Retransmits
	m.sf++
}

// fail records a hard error and forces the link onto the drain path
// (an erroring link cannot serve, but it still exits through the
// lifecycle rather than vanishing).
func (m *managedLink) fail(err error) {
	if m.err == nil {
		m.err = err
		m.logf("sf=%d error: %v", m.sf, err)
	}
	if m.state != StateDraining && m.state != StateRetired {
		_ = m.transition(StateDraining, "on-error")
	}
}

// step is the pooled per-epoch advance. It only touches link-owned
// state; all cross-link effects (FleetSim publication, collector
// attach/detach) happen at the fleet barrier.
func (m *managedLink) step() {
	switch m.state {
	case StateAdmitted:
		if err := m.construct(); err != nil {
			// Only a config escape can land here (designs are validated at
			// admission); park the link on the drain path.
			m.fail(fmt.Errorf("construct: %w", err))
			return
		}
		_ = m.transition(StateBringUp, fmt.Sprintf("lanes=%d", m.nominal))

	case StateBringUp:
		for i := 0; i < m.design.SFPerStep && m.state == StateBringUp; i++ {
			m.tick(false)
			if m.state == StateBringUp && m.sf >= m.design.BringUpSF {
				_ = m.transition(StateServing,
					fmt.Sprintf("sf=%d lanes=%d", m.sf, m.fwd.Mapper().NumLanes()))
			}
		}
		m.checkDegraded()

	case StateServing, StateDegraded:
		if !m.runServe {
			return
		}
		for i := 0; i < m.design.SFPerStep && (m.state == StateServing || m.state == StateDegraded); i++ {
			m.tick(false)
		}
		m.checkDegraded()

	case StateRenegotiating:
		// Commit the degraded width as the new contract and republish the
		// bridge fraction (relative to the original nominal) at the
		// barrier.
		lanes := m.fwd.Mapper().NumLanes()
		m.contract = lanes
		m.caps.frac = float64(lanes) / float64(m.nominal)
		m.caps.dirty = true
		_ = m.transition(StateServing,
			fmt.Sprintf("sf=%d lanes=%d frac=%.4f", m.sf, lanes, m.caps.frac))

	case StateDraining:
		if m.pair == nil {
			_ = m.transition(StateRetired, "sf=0")
			return
		}
		for i := 0; i < m.design.SFPerStep && m.state == StateDraining; i++ {
			m.tick(true)
			m.drained++
			if m.pair.A.Stats().InFlight == 0 || m.drained >= m.design.DrainSF {
				_ = m.transition(StateRetired, fmt.Sprintf(
					"sf=%d delivered=%d/%d retx=%d", m.sf, m.delivered, m.queued, m.retx))
			}
		}
	}
}

// checkDegraded flips serving->degraded when sparing has run dry and
// the usable width fell below the negotiated contract.
func (m *managedLink) checkDegraded() {
	if m.state != StateServing || m.fwd == nil {
		return
	}
	lanes := m.fwd.Mapper().NumLanes()
	if lanes < m.contract {
		_ = m.transition(StateDegraded, fmt.Sprintf(
			"sf=%d lanes=%d/%d spares=%d", m.sf, lanes, m.contract, m.fwd.Mapper().SparesLeft()))
	}
}

// lanes returns the current usable width (0 before construction).
func (m *managedLink) lanes() int {
	if m.fwd == nil {
		return 0
	}
	return m.fwd.Mapper().NumLanes()
}

// LinkInfo is the API/inspection snapshot of one managed link.
type LinkInfo struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	TopoLink  int     `json:"topo_link"`
	Seed      int64   `json:"seed"`
	SF        int     `json:"sf"`
	Lanes     int     `json:"lanes"`
	Contract  int     `json:"contract_lanes"`
	Nominal   int     `json:"nominal_lanes"`
	Fraction  float64 `json:"fraction"`
	Queued    uint64  `json:"queued"`
	Delivered uint64  `json:"delivered"`
	Retx      uint64  `json:"retransmits"`
	Scenario  string  `json:"scenario,omitempty"`
	Err       string  `json:"err,omitempty"`
}

func (m *managedLink) info() LinkInfo {
	info := LinkInfo{
		ID: m.id, State: m.state.String(), TopoLink: m.topoID, Seed: m.seed,
		SF: m.sf, Lanes: m.lanes(), Contract: m.contract, Nominal: m.nominal,
		Fraction: m.caps.frac, Queued: m.queued, Delivered: m.delivered, Retx: m.retx,
		Scenario: m.design.Scenario,
	}
	if m.err != nil {
		info.Err = m.err.Error()
	}
	return info
}
