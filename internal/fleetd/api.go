package fleetd

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"

	"mosaic/internal/telemetry"
	"mosaic/internal/telemetry/httpx"
)

// Server is the HTTP/JSON face of a Fleet: the admission-controlled
// operation API plus the standard operational mux (metrics, health,
// pprof) with per-epoch scrape-load shedding.
//
//	POST /v1/links                  {"count":N,"design":{...}}   admit links
//	GET  /v1/links?limit=N          list live links
//	GET  /v1/links/{id}             inspect one link (tombstones included)
//	POST /v1/links/{id}/degrade     {"kill":K}                   induce faults
//	POST /v1/links/{id}/renegotiate                              commit degraded width
//	POST /v1/links/{id}/retire                                   drain and retire
//	POST /v1/links/batch            [{"action":...},...]         batched ops
//	POST /reload                    re-validate and swap budgets/design
//	GET  /v1/fleet                  fleet snapshot (states, admission, pool)
//	GET  /healthz                   200; 503 while overloaded or draining
//
// Error mapping: shed operations return 429 (with the reason and the
// shed counters bumped), illegal lifecycle edges 409, unknown links
// 404, malformed requests 400.
type Server struct {
	fleet *Fleet
	reg   *telemetry.Registry

	// ReloadConfig, when non-nil, is invoked by POST /reload with no
	// body (and by SIGHUP via the daemon shell): it re-reads the config
	// source and calls Fleet.Reload. A request with a JSON body bypasses
	// it and reloads from the body.
	ReloadConfig func() error

	scrapeEpoch atomic.Uint64
	scrapes     atomic.Int64
}

// NewServer wires a server for the fleet. reg must be the registry the
// fleet publishes into.
func NewServer(f *Fleet, reg *telemetry.Registry) *Server {
	return &Server{fleet: f, reg: reg}
}

// Handler builds the full route set on the shared operational mux.
func (s *Server) Handler() http.Handler {
	mux := httpx.NewMux(s.reg, s.healthz)
	mux.HandleFunc("POST /v1/links", s.handleCreate)
	mux.HandleFunc("GET /v1/links", s.handleList)
	mux.HandleFunc("GET /v1/links/{id}", s.handleInspect)
	mux.HandleFunc("POST /v1/links/{id}/degrade", s.handleDegrade)
	mux.HandleFunc("POST /v1/links/{id}/renegotiate", s.handleRenegotiate)
	mux.HandleFunc("POST /v1/links/{id}/retire", s.handleRetire)
	mux.HandleFunc("POST /v1/links/batch", s.handleBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	return s.scrapeGate(mux)
}

// scrapeGate sheds /metrics traffic beyond the per-epoch budget with
// 429, counting every shed. /healthz is never gated — health must stay
// observable through an overload window.
func (s *Server) scrapeGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/metrics.json" {
			if !s.allowScrape() {
				s.fleet.CountScrapeShed()
				http.Error(w, "scrape budget exceeded; retry next epoch", http.StatusTooManyRequests)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// allowScrape admits a scrape against the per-epoch budget. The
// counter resets when the epoch advances; the reset race is benign
// (a scrape or two of slack, never a stuck gate).
func (s *Server) allowScrape() bool {
	snap := s.fleet.Snapshot()
	if snap.ScrapeBudget <= 0 {
		return true
	}
	if e := snap.Epoch; s.scrapeEpoch.Load() != e {
		s.scrapeEpoch.Store(e)
		s.scrapes.Store(0)
	}
	return s.scrapes.Add(1) <= snap.ScrapeBudget
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.fleet.Snapshot()
	status, code := "ok", http.StatusOK
	if snap.Overloaded {
		status, code = "overloaded", http.StatusServiceUnavailable
	}
	if snap.Draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"fleet":  snap,
	})
}

// writeErr maps fleet errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	var shed *ShedError
	var edge *TransitionError
	code := http.StatusBadRequest
	switch {
	case errors.As(err, &shed):
		code = http.StatusTooManyRequests
	case errors.As(err, &edge):
		code = http.StatusConflict
	case errors.Is(err, ErrUnknownLink):
		code = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type createRequest struct {
	Count  int         `json:"count"`
	Design *LinkDesign `json:"design,omitempty"`
	// Scenario binds the created links to a registered scenario
	// (internal/scenario) by experiment ID or spec name: their fault
	// schedules become the scenario's witness schedule. Shorthand for
	// setting design.scenario on top of the fleet's default design.
	Scenario string `json:"scenario,omitempty"`
}

type createResponse struct {
	IDs  []int  `json:"ids"`
	Shed string `json:"shed,omitempty"` // reason, when the batch was cut short
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Scenario != "" {
		d := s.fleet.DesignOrDefault(req.Design)
		d.Scenario = req.Scenario
		req.Design = &d
	}
	ids, err := s.fleet.Create(req.Count, req.Design)
	resp := createResponse{IDs: ids}
	var shed *ShedError
	if errors.As(err, &shed) {
		resp.Shed = string(shed.Reason)
		if len(ids) == 0 {
			writeJSON(w, http.StatusTooManyRequests, resp)
			return
		}
	} else if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, errors.New("fleetd: bad limit"))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, s.fleet.List(limit))
}

func (s *Server) linkID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, errors.New("fleetd: bad link id"))
		return 0, false
	}
	return id, true
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	id, ok := s.linkID(w, r)
	if !ok {
		return
	}
	info, ok := s.fleet.Inspect(id)
	if !ok {
		writeErr(w, ErrUnknownLink)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDegrade(w http.ResponseWriter, r *http.Request) {
	id, ok := s.linkID(w, r)
	if !ok {
		return
	}
	var req struct {
		Kill int `json:"kill"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Kill == 0 {
		req.Kill = 1
	}
	if err := s.fleet.Degrade(id, req.Kill); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"link": id, "killed": req.Kill})
}

func (s *Server) handleRenegotiate(w http.ResponseWriter, r *http.Request) {
	id, ok := s.linkID(w, r)
	if !ok {
		return
	}
	if err := s.fleet.Renegotiate(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"link": id, "state": StateRenegotiating.String()})
}

func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	id, ok := s.linkID(w, r)
	if !ok {
		return
	}
	if err := s.fleet.Retire(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"link": id, "state": StateDraining.String()})
}

// handleBatch applies a sequence of ops in order. Each op gets its own
// outcome; the response is 200 with per-op results (an all-shed batch
// still reports per-op, like partial admission does).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var ops []Op
	if err := decodeBody(r, &ops); err != nil {
		writeErr(w, err)
		return
	}
	type outcome struct {
		OK    bool   `json:"ok"`
		IDs   []int  `json:"ids,omitempty"`
		Error string `json:"error,omitempty"`
	}
	results := make([]outcome, 0, len(ops))
	for _, op := range ops {
		var out outcome
		switch op.Action {
		case "create":
			n := op.Count
			if n <= 0 {
				n = 1
			}
			ids, err := s.fleet.Create(n, op.Design)
			out.IDs = ids
			out.OK = err == nil
			if err != nil {
				out.Error = err.Error()
			}
		case "degrade":
			k := op.Kill
			if k <= 0 {
				k = 1
			}
			err := s.fleet.Degrade(op.Link, k)
			out.OK = err == nil
			if err != nil {
				out.Error = err.Error()
			}
		case "renegotiate":
			err := s.fleet.Renegotiate(op.Link)
			out.OK = err == nil
			if err != nil {
				out.Error = err.Error()
			}
		case "retire":
			err := s.fleet.Retire(op.Link)
			out.OK = err == nil
			if err != nil {
				out.Error = err.Error()
			}
		default:
			out.Error = "unknown action " + op.Action
		}
		results = append(results, out)
	}
	writeJSON(w, http.StatusOK, results)
}

// handleReload re-validates and swaps budgets/design. With a JSON body
// the new config comes from the body; with an empty body the external
// ReloadConfig hook (the config file the daemon was started with)
// runs instead.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength == 0 {
		if s.ReloadConfig == nil {
			writeErr(w, errors.New("fleetd: no config source to reload from (send a JSON body)"))
			return
		}
		if err := s.ReloadConfig(); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "reloaded"})
		return
	}
	cfg, err := DecodeConfig(r.Body)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.fleet.Reload(cfg); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "reloaded"})
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Snapshot())
}

func decodeBody(r *http.Request, v any) error {
	if r.ContentLength == 0 {
		return nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errors.New("fleetd: bad request body: " + err.Error())
	}
	return nil
}
