package fleetd

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Every task must run exactly once, whatever the worker count or the
// steal pattern.
func TestPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			p := newPool(workers)
			hits := make([]atomic.Int32, n)
			p.run(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
			if n > 0 {
				st := p.stats()
				if st.Tasks != uint64(n) || st.Rounds != 1 || st.Depth != 0 {
					t.Fatalf("workers=%d n=%d: stats %+v", workers, n, st)
				}
			}
		}
	}
}

// Skewed task costs force stealing: a pool where one range is much
// heavier than the rest must still finish everything, and the steal
// counter must see it (with more workers than its own queue's tasks,
// someone must steal).
func TestPoolStealsUnderSkew(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Steals need real parallelism to be guaranteed; with one core the
		// first worker can drain every queue before the others wake.
		t.Skip("needs GOMAXPROCS >= 2 for guaranteed steals")
	}
	p := newPool(4)
	var total atomic.Int64
	p.run(64, func(i int) {
		// The first range's tasks spin; the rest are instant, so those
		// workers run dry and steal.
		if i < 16 {
			for j := 0; j < 1<<16; j++ {
				total.Add(1)
			}
		}
		total.Add(1)
	})
	if p.stats().Steals == 0 {
		t.Error("skewed round recorded no steals")
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if got := newPool(0).workers; got != runtime.GOMAXPROCS(0) {
		t.Errorf("newPool(0).workers = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := newPool(3).workers; got != 3 {
		t.Errorf("newPool(3).workers = %d", got)
	}
}
