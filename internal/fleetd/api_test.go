package fleetd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mosaic/internal/telemetry"
)

type apiHarness struct {
	t     *testing.T
	fleet *Fleet
	srv   *Server
	ts    *httptest.Server
}

func newAPIHarness(t *testing.T, cfg Config) *apiHarness {
	t.Helper()
	reg := telemetry.NewRegistry()
	f, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(f, reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &apiHarness{t: t, fleet: f, srv: srv, ts: ts}
}

func (h *apiHarness) do(method, path string, body any) (int, []byte) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (h *apiHarness) decode(data []byte, v any) {
	h.t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		h.t.Fatalf("bad JSON %q: %v", data, err)
	}
}

func TestAPILifecycle(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))

	// Create two links.
	code, body := h.do("POST", "/v1/links", map[string]int{"count": 2})
	if code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, body)
	}
	var created createResponse
	h.decode(body, &created)
	if len(created.IDs) != 2 {
		t.Fatalf("created %v", created.IDs)
	}

	// Bring them up.
	for i := 0; i < 6; i++ {
		h.fleet.Step()
	}

	// List and inspect.
	code, body = h.do("GET", "/v1/links?limit=1", nil)
	var list []LinkInfo
	h.decode(body, &list)
	if code != http.StatusOK || len(list) != 1 || list[0].ID != 0 {
		t.Fatalf("list = %d %s", code, body)
	}
	code, body = h.do("GET", "/v1/links/1", nil)
	var info LinkInfo
	h.decode(body, &info)
	if code != http.StatusOK || info.ID != 1 || info.State != "serving" {
		t.Fatalf("inspect = %d %+v", code, info)
	}
	if code, _ = h.do("GET", "/v1/links/99", nil); code != http.StatusNotFound {
		t.Fatalf("inspect unknown = %d", code)
	}
	if code, _ = h.do("GET", "/v1/links/bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("inspect non-numeric = %d", code)
	}

	// Degrade past the spare pool, step, renegotiate, step.
	kill := h.fleet.cfg.Design.Spares + 2
	code, body = h.do("POST", "/v1/links/0/degrade", map[string]int{"kill": kill})
	if code != http.StatusOK {
		t.Fatalf("degrade = %d %s", code, body)
	}
	h.fleet.Step()
	if s, _ := h.fleet.StateOf(0); s != StateDegraded {
		t.Fatalf("after degrade: %s", s)
	}
	// Renegotiating a healthy link is a 409.
	if code, _ = h.do("POST", "/v1/links/1/renegotiate", nil); code != http.StatusConflict {
		t.Fatalf("renegotiate serving link = %d, want 409", code)
	}
	if code, body = h.do("POST", "/v1/links/0/renegotiate", nil); code != http.StatusOK {
		t.Fatalf("renegotiate = %d %s", code, body)
	}
	h.fleet.Step()
	if s, _ := h.fleet.StateOf(0); s != StateServing {
		t.Fatalf("after renegotiate: %s", s)
	}

	// Retire and drain out.
	if code, body = h.do("POST", "/v1/links/0/retire", nil); code != http.StatusOK {
		t.Fatalf("retire = %d %s", code, body)
	}
	for i := 0; i < 20; i++ {
		h.fleet.Step()
	}
	code, body = h.do("GET", "/v1/links/0", nil)
	h.decode(body, &info)
	if code != http.StatusOK || info.State != "retired" {
		t.Fatalf("tombstone = %d %+v", code, info)
	}

	// Fleet snapshot reflects all of it.
	code, body = h.do("GET", "/v1/fleet", nil)
	var snap Snapshot
	h.decode(body, &snap)
	if code != http.StatusOK || snap.LiveLinks != 1 || snap.Admission.Retired != 1 {
		t.Fatalf("fleet = %d %s", code, body)
	}
}

func TestAPIBatch(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))
	ops := []Op{
		{Action: "create", Count: 2},
		{Action: "retire", Link: 0},
		{Action: "renegotiate", Link: 1}, // conflict: still admitted
		{Action: "frobnicate"},
	}
	code, body := h.do("POST", "/v1/links/batch", ops)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %s", code, body)
	}
	var results []struct {
		OK    bool   `json:"ok"`
		IDs   []int  `json:"ids"`
		Error string `json:"error"`
	}
	h.decode(body, &results)
	if len(results) != 4 {
		t.Fatalf("batch results: %s", body)
	}
	if !results[0].OK || len(results[0].IDs) != 2 {
		t.Errorf("batch create: %+v", results[0])
	}
	if !results[1].OK {
		t.Errorf("batch retire: %+v", results[1])
	}
	if results[2].OK || !strings.Contains(results[2].Error, "illegal transition") {
		t.Errorf("batch conflict: %+v", results[2])
	}
	if results[3].OK || !strings.Contains(results[3].Error, "unknown action") {
		t.Errorf("batch unknown action: %+v", results[3])
	}
}

// TestAPIAdmissionShedding: past the token bucket the API answers 429
// and the shed counters advance; /healthz reports the overload window
// at the next epoch and recovers after a quiet one.
func TestAPIAdmissionShedding(t *testing.T) {
	cfg := testConfig(1)
	cfg.Budgets.AdmitPerEpoch = 1
	cfg.Budgets.AdmitBurst = 2
	h := newAPIHarness(t, cfg)

	code, body := h.do("POST", "/v1/links", map[string]int{"count": 5})
	if code != http.StatusCreated {
		t.Fatalf("partial create = %d %s", code, body)
	}
	var created createResponse
	h.decode(body, &created)
	if len(created.IDs) != 2 || created.Shed != string(ShedRate) {
		t.Fatalf("partial create: %+v", created)
	}

	// Bucket is dry: the next create sheds entirely.
	if code, _ = h.do("POST", "/v1/links", nil); code != http.StatusTooManyRequests {
		t.Fatalf("dry-bucket create = %d, want 429", code)
	}

	// The epoch that follows the sheds reports overload on /healthz...
	h.fleet.Step()
	code, body = h.do("GET", "/healthz", nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "overloaded") {
		t.Fatalf("healthz during overload window = %d %s", code, body)
	}
	// ...and a quiet epoch clears it.
	h.fleet.Step()
	if code, body = h.do("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after quiet epoch = %d %s", code, body)
	}
}

// TestAPIScrapeGate: /metrics beyond the per-epoch budget sheds with
// 429 while /healthz stays reachable; the next epoch resets the gate.
func TestAPIScrapeGate(t *testing.T) {
	cfg := testConfig(1)
	cfg.Budgets.ScrapePerEpoch = 2
	h := newAPIHarness(t, cfg)

	for i := 0; i < 2; i++ {
		if code, _ := h.do("GET", "/metrics", nil); code != http.StatusOK {
			t.Fatalf("scrape %d = %d", i, code)
		}
	}
	if code, _ := h.do("GET", "/metrics", nil); code != http.StatusTooManyRequests {
		t.Fatal("third scrape not shed")
	}
	if code, _ := h.do("GET", "/metrics.json", nil); code != http.StatusTooManyRequests {
		t.Fatal("json scrape not shed")
	}
	// Health stays observable straight through the shed window. (The
	// fleet books the sheds, so this is the overload 503 — but it must
	// answer, not 429.)
	if code, _ := h.do("GET", "/healthz", nil); code == http.StatusTooManyRequests {
		t.Fatal("healthz shed by the scrape gate")
	}
	if h.fleet.Admission().ShedScrape != 2 {
		t.Fatalf("scrape sheds = %d, want 2", h.fleet.Admission().ShedScrape)
	}

	h.fleet.Step()
	if code, _ := h.do("GET", "/metrics", nil); code != http.StatusOK {
		t.Fatal("scrape gate did not reset at the epoch")
	}
}

func TestAPIReload(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))

	// Body reload: tighten MaxLinks.
	newCfg := testConfig(1)
	newCfg.Budgets.MaxLinks = 1
	code, body := h.do("POST", "/reload", newCfg)
	if code != http.StatusOK {
		t.Fatalf("reload = %d %s", code, body)
	}
	if h.fleet.Snapshot().MaxLinks == 1 {
		t.Fatal("snapshot refreshed before an epoch") // barrier refreshes it
	}
	h.fleet.Step()
	if got := h.fleet.Snapshot().MaxLinks; got != 1 {
		t.Fatalf("MaxLinks after reload = %d", got)
	}

	// A reload that tries to change the seed is a 400.
	newCfg.Seed = 123
	if code, _ = h.do("POST", "/reload", newCfg); code != http.StatusBadRequest {
		t.Fatalf("seed-changing reload = %d, want 400", code)
	}

	// Empty body without a hook is a 400; with a hook it runs the hook.
	if code, _ = h.do("POST", "/reload", nil); code != http.StatusBadRequest {
		t.Fatalf("hookless empty reload = %d, want 400", code)
	}
	ran := false
	h.srv.ReloadConfig = func() error { ran = true; return nil }
	if code, _ = h.do("POST", "/reload", nil); code != http.StatusOK || !ran {
		t.Fatalf("hooked reload = %d ran=%v", code, ran)
	}
}

func TestAPIBadRequests(t *testing.T) {
	h := newAPIHarness(t, testConfig(1))
	for _, tc := range []struct {
		method, path, body string
	}{
		{"POST", "/v1/links", `{"count": "many"}`},
		{"POST", "/v1/links", `{"unknown_field": 1}`},
		{"POST", "/v1/links/batch", `{"not": "an array"}`},
		{"GET", "/v1/links?limit=-3", ""},
	} {
		req, err := http.NewRequest(tc.method, h.ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s %q = %d, want 400", tc.method, tc.path, tc.body, resp.StatusCode)
		}
	}
	// A create with an invalid design override is a 400 too.
	bad := DefaultLinkDesign()
	bad.UnitLen = 10 // not a multiple of 9
	code, _ := h.do("POST", "/v1/links", createRequest{Count: 1, Design: &bad})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid design create = %d, want 400", code)
	}
}
