package experiments

import (
	"fmt"

	"mosaic/internal/faultinject"
)

// E22SparingSoak is the fault-injection soak: many seeded trials of a
// 16-lane link under random channel deaths, sweeping the spare count, with
// the pipeline-measured survival fraction cross-validated against the
// k-of-n binomial closed form from internal/reliability. Where E7 argues
// the reliability claim with FIT arithmetic and E21 shows one graceful
// aging episode, E22 closes the loop: the actual sparing/monitor/
// maintenance machinery, driven through the staged pipeline under
// sustained faults, reproduces the math.
func E22SparingSoak(seed int64) (Table, error) {
	t := tableFor("E22")
	t.Columns = []string{"spares", "trials", "sim_survival", "closed_form", "abs_err", "mc_tol",
		"mean_remaps", "dropped_trials", "mean_first_drop_sf"}

	// Accelerated-aging operating point: per-superframe hazard 0.002 on a
	// 16-lane link over a 40-superframe mission gives each channel a 7.7%
	// death probability — dense enough that every spare count from 0 to 4
	// lands at a distinct, non-degenerate survival level.
	const (
		lanes       = 16
		hazard      = 0.002
		superframes = 40
		trials      = 150
	)
	for _, spares := range []int{0, 1, 2, 4} {
		res, err := faultinject.SurvivalStudy(faultinject.SurvivalConfig{
			Lanes:       lanes,
			Spares:      spares,
			HazardPerSF: hazard,
			Superframes: superframes,
			Trials:      trials,
			Seed:        seed,
		})
		if err != nil {
			return t, err
		}
		absErr := res.SimSurvival - res.ClosedForm
		if absErr < 0 {
			absErr = -absErr
		}
		if absErr > res.Tolerance {
			return t, fmt.Errorf(
				"experiments: E22 spares=%d: simulated survival %.3f vs closed form %.3f exceeds MC tolerance %.3f",
				spares, res.SimSurvival, res.ClosedForm, res.Tolerance)
		}
		firstDrop := "-"
		if res.DroppedTrials > 0 {
			firstDrop = fm(res.MeanFirstDrop, 1)
		}
		t.AddRow(fmt.Sprintf("%d", spares), fmt.Sprintf("%d", res.Trials),
			fm(res.SimSurvival, 3), fm(res.ClosedForm, 3),
			fm(absErr, 3), fm(res.Tolerance, 3),
			fm(res.MeanRemaps, 2), fmt.Sprintf("%d", res.DroppedTrials), firstDrop)
	}
	t.Notes = "each trial soaks a 16-lane link through the full bit-true pipeline under seeded random " +
		"channel kills (hazard 2e-3/superframe, 40-superframe mission) with reactive sparing; " +
		"survival = never lost a lane, and the generator fails hard if it drifts outside the " +
		"4-sigma Monte-Carlo band around the k-of-n closed form"
	return t, nil
}
