package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// E23MACRenegotiation closes the loop the MAC layer exists for: a fleet
// aging schedule kills channels on a live Mosaic access link while a
// loaded fat-tree runs on top. The link's own machinery — monitor
// transitions, reactive sparing, and the mac.Bridge — renegotiates the
// flow-sim capacity step by step (spares absorb the first kills
// silently, then each further kill shaves one lane), and the FCT impact
// is compared against a copper-style link-down at the moment the first
// lane is lost. No hand-wired capacity edits anywhere: the network
// learns about degradation only through the MAC.
func E23MACRenegotiation(seed int64) (Table, error) {
	return e23WithWorkers(seed, 0)
}

// e23Mode selects the scenario variant.
type e23Mode int

const (
	e23Clean e23Mode = iota // MAC session with an empty schedule
	e23Aging                // the staircase kill/aging schedule
	e23Down                 // copper-style: FailLink at first lane loss
)

// e23Schedule is the fleet aging scenario: two kills absorbed by the
// spares, then three more that each cost a lane (16 lanes nominal:
// 0.9375, 0.8750, 0.8125), plus an aging ramp that forces the LLR to
// earn its keep with retransmissions while capacity shrinks.
func e23Schedule() faultinject.Schedule {
	return faultinject.Schedule{Events: []faultinject.Event{
		{At: 10, Kind: faultinject.KindKill, Channel: 2},
		{At: 12, Kind: faultinject.KindAging, Channel: 7, BER: 4e-3, Duration: 10},
		{At: 16, Kind: faultinject.KindKill, Channel: 5},
		{At: 24, Kind: faultinject.KindKill, Channel: 9},
		{At: 32, Kind: faultinject.KindKill, Channel: 12},
		{At: 40, Kind: faultinject.KindKill, Channel: 14},
	}}
}

// e23WithWorkers is the worker-count-parameterized core, so the
// determinism test can pin that the full table — including the MAC
// event-log hash in the notes — is byte-identical at any pool size.
func e23WithWorkers(seed int64, workers int) (Table, error) {
	t := tableFor("E23")
	t.Columns = []string{"scenario", "flows", "stalled", "renegs", "retx",
		"frac_end", "mean_FCT_ms", "p99_FCT_ms"}

	var macSHA, stallSHA string
	for _, sc := range []struct {
		name string
		mode e23Mode
	}{
		{"no-fault", e23Clean},
		{"mosaic-aging(mac)", e23Aging},
		{"copper-link-down", e23Down},
	} {
		st, res, recs, err := runE23Scenario(seed, workers, sc.mode)
		if err != nil {
			return t, err
		}
		if sc.mode == e23Down {
			// The copper cut strands several flows at one instant; hash
			// the full record sequence so the golden pins their order
			// (ascending flow ID within the kill, not map order).
			var sb strings.Builder
			for _, r := range recs {
				fmt.Fprintf(&sb, "%d %v %v %v\n", r.ID, r.Stalled, r.Start, r.End)
			}
			h := sha256.Sum256([]byte(sb.String()))
			stallSHA = hex.EncodeToString(h[:8])
		}
		renegs, retx, frac := "-", "-", "-"
		if res != nil {
			renegs = fmt.Sprintf("%d", res.Renegotiations)
			retx = fmt.Sprintf("%d", res.A.Retransmits)
			frac = fm(res.Fraction, 4)
			if sc.mode == e23Aging {
				h := sha256.Sum256([]byte(strings.Join(res.Log, "\n") + "\n" + res.Summary()))
				macSHA = hex.EncodeToString(h[:8])
			}
		}
		t.AddRow(sc.name, fmt.Sprintf("%d", st.Count+st.Stalled),
			fmt.Sprintf("%d", st.Stalled), renegs, retx, frac,
			fm(float64(st.Mean)*1e3, 3), fm(float64(st.P99)*1e3, 3))
	}
	t.Notes = "aging schedule -> monitor -> sparing -> mac.Bridge renegotiation; copper cut at the first " +
		"lane-loss instant for comparison; mac event log sha256[:8]=" + macSHA +
		"; copper stall records sha256[:8]=" + stallSHA +
		" (byte-identical at any phy worker count)"
	return t, nil
}

// runE23Scenario runs one scenario: the shared fat-tree workload plus,
// for the MAC modes, a live Mosaic session whose forward link is the
// access victim. Session ticks and flow events interleave on the same
// engine; capacity changes reach the flow sim only via the bridge.
func runE23Scenario(seed int64, workers int, mode e23Mode) (netsim.FCTStats, *mac.Result, []netsim.FlowRecord, error) {
	topo, err := netsim.NewFatTree(8, 800e9)
	if err != nil {
		return netsim.FCTStats{}, nil, nil, err
	}
	eng := sim.NewEngine(seed)
	fs := netsim.NewFlowSim(topo, eng)
	hosts := topo.Hosts()
	dist := workload.WebSearch()
	arr := workload.NewPoissonForLoad(0.4, len(hosts), 800e9, dist.MeanBits())
	rng := eng.RNG("workload")

	const nflows = 3000
	unroutable := 0
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= nflows {
			return
		}
		eng.Schedule(at, func() {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			if _, err := fs.StartFlow(src, dst, dist.SampleBits(rng), rng.Uint64()); err != nil {
				unroutable++
			}
			schedule(i+1, at+sim.Time(arr.NextGapSec(rng)))
		})
	}
	schedule(0, 0)

	victim := topo.LinksByTier()[netsim.TierHostToR][0]
	// 60 session superframes span the whole arrival window; the first
	// lane loss (schedule At=24, tick time (24+1)*interval) lands midway.
	interval := sim.Time(nflows / arr.RatePerSec / 50)

	var sess *mac.Session
	switch mode {
	case e23Down:
		eng.Schedule(25*interval, func() { fs.FailLink(victim) })
	case e23Clean, e23Aging:
		var sched faultinject.Schedule
		if mode == e23Aging {
			sched = e23Schedule()
		}
		fwd, err := phy.New(phy.Config{
			Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
			PerChannelBitRate: 2e9, Seed: seed + 100, Workers: workers,
		})
		if err != nil {
			return netsim.FCTStats{}, nil, nil, err
		}
		rev, err := phy.New(phy.Config{
			Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
			PerChannelBitRate: 2e9, Seed: seed + 200, Workers: workers,
		})
		if err != nil {
			return netsim.FCTStats{}, nil, nil, err
		}
		bridge := mac.NewBridge(fwd, fs, victim, eng)
		sess, err = mac.NewSession(mac.SessionConfig{
			Engine:       eng,
			Fwd:          fwd,
			Rev:          rev,
			Pair:         mac.PairConfig{PHYFrameLen: 120},
			Schedule:     sched,
			Superframes:  60,
			Interval:     interval,
			PacketsPerSF: 4,
			PacketLen:    150,
			Seed:         seed + 300,
			Bridge:       bridge,
		})
		if err != nil {
			return netsim.FCTStats{}, nil, nil, err
		}
	}

	eng.Run()
	recs := fs.Records()
	st := netsim.Stats(recs)
	st.Stalled += unroutable
	if sess != nil {
		res := sess.Result()
		if res.Err != "" {
			return st, res, recs, fmt.Errorf("experiments: E23 mac session: %s", res.Err)
		}
		return st, res, recs, nil
	}
	return st, nil, recs, nil
}
