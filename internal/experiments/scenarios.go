package experiments

import (
	"fmt"
	"strings"

	"mosaic/internal/scenario"
)

// scenarioExperiments adapts the scenario library (internal/scenario)
// into registry entries: every LibraryEntry becomes an experiment whose
// table is the scenario's windowed run summary, with the event-log sha
// in the notes as the determinism pin. The run seed substitutes the
// spec's seed, so `mosaicbench -seed` sweeps scenarios like any other
// experiment.
func scenarioExperiments() []Experiment {
	var out []Experiment
	for _, entry := range scenario.Library() {
		entry := entry
		out = append(out, Experiment{
			ID:    entry.ID,
			Title: entry.Title,
			Claim: entry.Claim,
			Kind:  KindScenario,
			Gen: func(seed int64) (Table, error) {
				return scenarioTableWithWorkers(entry, seed, 0)
			},
		})
	}
	return out
}

// scenarioTableWithWorkers renders one scenario run as a table. The
// workers parameter exists for the determinism test: the rendered table
// (rows and notes, sha included) must be byte-identical at any value.
func scenarioTableWithWorkers(entry scenario.LibraryEntry, seed int64, workers int) (Table, error) {
	spec := entry.Spec
	spec.Seed = seed
	res, err := scenario.Run(spec, scenario.Options{Workers: workers})
	if err != nil {
		return Table{}, err
	}
	t := tableFor(entry.ID)
	t.Columns = []string{"epochs", "flows", "unroutable", "env events", "done", "Gbit done", "active@end", "cross@end"}
	for _, w := range res.Windows {
		t.AddRow(
			fmt.Sprintf("%d-%d", w.Start, w.End),
			fmt.Sprintf("%d", w.Flows),
			fmt.Sprintf("%d", w.Unroutable),
			fmt.Sprintf("%d", w.EnvEvents),
			fmt.Sprintf("%d", w.Done),
			fm(w.BitsDone/1e9, 1),
			fmt.Sprintf("%d", w.ActiveEnd),
			fmt.Sprintf("%d", w.CrossEnd),
		)
	}
	faults := make([]string, 0, len(res.Faults))
	for _, fc := range res.Faults {
		faults = append(faults, fmt.Sprintf("%s: %d events (expect %.1f ± %.1f)",
			fc.Name, fc.Count, fc.Mean, 6*fc.Sigma+0.5))
	}
	faultNote := "no environments"
	if len(faults) > 0 {
		faultNote = strings.Join(faults, "; ")
	}
	t.Notes = fmt.Sprintf("scenario %s: %d hosts, %d links, %d epochs; %d flows (%d done, %d stalled, %d unroutable); "+
		"faults: %s; event log sha256/8 = %s (byte-identical at any worker count)",
		spec.Name, res.Hosts, res.Links, res.Epochs, res.Flows, res.Done, res.Stalled, res.Unroutable,
		faultNote, res.LogSHA)
	return t, nil
}
