package experiments

import (
	"strings"
	"testing"
)

// E24 is the sharded engine's flagship: the full table — per-window
// counters, FCT percentiles, the epoch event-log hash, and the MAC
// bring-up samples in the notes — must be byte-identical at one worker
// and at GOMAXPROCS workers, and the diurnal peak must actually reach
// fleet scale (>= 100k concurrent flows, the load the incremental
// engine exists to carry).
func TestE24DeterministicAcrossWorkers(t *testing.T) {
	var want string
	var wantM e24Metrics
	for i, w := range []int{1, 0} {
		tab, m, err := e24WithWorkers(1, w)
		got := render(t, tab, err)
		if i == 0 {
			want, wantM = got, m
			continue
		}
		if got != want {
			t.Fatalf("workers=%d table diverged:\n%s\nwant:\n%s", w, got, want)
		}
		if m != wantM {
			t.Fatalf("workers=%d metrics diverged: %+v vs %+v", w, m, wantM)
		}
	}

	if wantM.PeakActive < 100000 {
		t.Errorf("peak concurrent flows %d below fleet scale (want >= 100000)", wantM.PeakActive)
	}
	if wantM.Flows < 100000 {
		t.Errorf("only %d flows admitted", wantM.Flows)
	}
	if wantM.DeadLinks == 0 {
		t.Error("aging retired no links over the horizon; the scenario exercises no deaths")
	}
	if wantM.PeakCross == 0 {
		t.Error("no cross-pod flows; the shard barrier is untested")
	}
	if !strings.Contains(want, "sha256[:8]="+wantM.LogSHA) {
		t.Errorf("notes lost the epoch event-log hash %s:\n%s", wantM.LogSHA, want)
	}
	if !strings.Contains(want, "mac") {
		t.Errorf("notes lost the PHY/MAC bring-up samples:\n%s", want)
	}
}
