package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func render(t *testing.T, tab Table, err error) string {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", tab.ID, err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", tab.ID)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
		}
	}
	return out
}

func cell(tab Table, row, col int) string { return tab.Rows[row][col] }

func cellF(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(tab, row, col), "%")
	s = strings.TrimSuffix(s, "G")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q not numeric", tab.ID, row, col, cell(tab, row, col))
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	// Run the whole registry through the parallel runner: every generator
	// must produce a well-formed table carrying its registered ID.
	results, err := Run(nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Registry()) {
		t.Fatalf("got %d results, registry has %d", len(results), len(Registry()))
	}
	for i, r := range results {
		if r.Experiment.ID != Registry()[i].ID {
			t.Errorf("result %d is %s, want registry order %s", i, r.Experiment.ID, Registry()[i].ID)
		}
		out := render(t, r.Table, r.Err)
		if !strings.Contains(out, r.Experiment.ID) {
			t.Errorf("%s: output missing ID", r.Experiment.ID)
		}
	}
}

func TestRegistryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Gen == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("E10"); !ok {
		t.Error("Lookup(E10) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run([]string{"E1", "bogus"}, 1, 1); err == nil {
		t.Fatal("unknown ID must fail before running anything")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	// A parallel run must produce byte-identical tables in the same order
	// as a serial run: each generator owns its seeded random state.
	ids := []string{"E5", "E9", "E10", "A3"}
	serial, err := Run(ids, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ids, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		var a, b bytes.Buffer
		serial[i].Table.Fprint(&a)
		par[i].Table.Fprint(&b)
		if a.String() != b.String() {
			t.Errorf("%s: parallel output differs from serial", serial[i].Experiment.ID)
		}
	}
}

func TestE1Shape(t *testing.T) {
	tab, err := E1Tradeoff()
	render(t, tab, err)
	byTech := map[string][]string{}
	for _, r := range tab.Rows {
		byTech[r[0]] = r
	}
	parse := func(tech string, col int) float64 {
		v, err := strconv.ParseFloat(byTech[tech][col], 64)
		if err != nil {
			t.Fatalf("%s col %d: %v", tech, col, err)
		}
		return v
	}
	// Reach: DAC ~2m, Mosaic ~50m, DR 500m.
	if r := parse("DAC", 1); r > 3 {
		t.Errorf("DAC reach %v", r)
	}
	if r := parse("Mosaic", 1); r < 30 {
		t.Errorf("Mosaic reach %v", r)
	}
	// Power: Mosaic < DR.
	if parse("Mosaic", 2) >= parse("DR", 2) {
		t.Error("Mosaic power should beat DR")
	}
	// FIT: Mosaic << DR.
	if parse("Mosaic", 4) >= parse("DR", 4)/10 {
		t.Error("Mosaic FIT should be far below DR")
	}
}

func TestE2Headline(t *testing.T) {
	tab, err := E2PowerBreakdown()
	render(t, tab, err)
	if !strings.Contains(tab.Notes, "%") {
		t.Fatal("missing reduction note")
	}
	// Extract the percentage from "…: NN.N%".
	idx := strings.LastIndex(tab.Notes, " ")
	pct, perr := strconv.ParseFloat(strings.TrimSuffix(tab.Notes[idx+1:], "%"), 64)
	if perr != nil {
		t.Fatalf("cannot parse note %q", tab.Notes)
	}
	if pct < 60 || pct > 75 {
		t.Errorf("headline reduction = %v%%, want ~69%%", pct)
	}
}

func TestE4ReachShape(t *testing.T) {
	tab, err := E4ReachBudget()
	render(t, tab, err)
	// BER must be monotone non-decreasing down the table.
	prev := 0.0
	for i := range tab.Rows {
		ber, err := strconv.ParseFloat(cell(tab, i, 2), 64)
		if err != nil {
			t.Fatal(err)
		}
		if ber < prev {
			t.Fatalf("BER not monotone at row %d", i)
		}
		prev = ber
	}
	// 50m row must still be at or below ~1e-12; 80m must be broken.
	var at50, at80 float64
	for i := range tab.Rows {
		l, _ := strconv.ParseFloat(cell(tab, i, 0), 64)
		ber, _ := strconv.ParseFloat(cell(tab, i, 2), 64)
		if l == 50 {
			at50 = ber
		}
		if l == 80 {
			at80 = ber
		}
	}
	if at50 > 1e-9 {
		t.Errorf("BER at 50m = %v, too high", at50)
	}
	if at80 < 1e-9 {
		t.Errorf("BER at 80m = %v; reach should be exhausted well before 80m", at80)
	}
	if !strings.Contains(tab.Notes, "x") {
		t.Error("missing copper ratio note")
	}
}

func TestE5Distribution(t *testing.T) {
	tab, err := E5PrototypeBER(1)
	render(t, tab, err)
	// Percentile BERs must ascend; post-FEC must be <= pre-FEC everywhere.
	prev := -1.0
	for i := range tab.Rows {
		pre, _ := strconv.ParseFloat(cell(tab, i, 1), 64)
		post, _ := strconv.ParseFloat(cell(tab, i, 2), 64)
		if pre < prev {
			t.Fatal("percentiles not ascending")
		}
		prev = pre
		if post > pre*10 && post > 1e-12 {
			// Post-FEC *block* errors vs bit errors aren't directly
			// comparable, but at prototype operating points the block
			// error rate must be negligible.
			t.Errorf("row %d: post-FEC block err %v vs pre %v", i, post, pre)
		}
	}
}

func TestRSLiteBlockErr(t *testing.T) {
	if rsLiteBlockErr(0) != 0 {
		t.Error("zero BER should have zero block errors")
	}
	// Monotone.
	prev := 0.0
	for _, ber := range []float64{1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2} {
		p := rsLiteBlockErr(ber)
		if p < prev || p > 1 {
			t.Fatalf("block err %v at BER %v", p, ber)
		}
		prev = p
	}
	// At BER 1e-6 the block error rate must be tiny (t=2 corrects easily).
	if p := rsLiteBlockErr(1e-6); p > 1e-9 {
		t.Errorf("block err at 1e-6 = %v", p)
	}
}

func TestE7SparesColumn(t *testing.T) {
	tab, err := E7Reliability()
	render(t, tab, err)
	// Mosaic FIT strictly decreases as spares grow (rows 2..6).
	prev := math.Inf(1)
	count := 0
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r[0], "Mosaic") {
			continue
		}
		fit, _ := strconv.ParseFloat(r[1], 64)
		if fit > prev {
			t.Fatal("Mosaic FIT not decreasing with spares")
		}
		prev = fit
		count++
	}
	if count < 4 {
		t.Fatal("missing Mosaic rows")
	}
}

func TestE9SweetSpotShape(t *testing.T) {
	tab, err := E9SweetSpot()
	render(t, tab, err)
	// Energy per bit must dip and rise (a genuine sweet spot), with the
	// minimum at 1-3 Gbps.
	var min float64 = math.Inf(1)
	var minRate float64
	first, last := 0.0, 0.0
	for i := range tab.Rows {
		rate := cellF(t, tab, i, 0)
		e := cellF(t, tab, i, 2)
		if i == 0 {
			first = e
		}
		last = e
		if e < min {
			min, minRate = e, rate
		}
	}
	if !(first > min && last > min) {
		t.Errorf("no interior minimum: first %v min %v last %v", first, min, last)
	}
	if minRate < 1 || minRate > 3 {
		t.Errorf("sweet spot at %v Gbps, want 1-3", minRate)
	}
}

func TestE10Shape(t *testing.T) {
	tab, err := E10EndToEnd(1)
	render(t, tab, err)
	// First row (2m) must be fully delivered with zero corrections tail
	// risk; last row (60m, beyond reach) must show losses.
	if !strings.HasPrefix(cell(tab, 0, 1), "200/") {
		t.Errorf("2m delivery = %s", cell(tab, 0, 1))
	}
	lastBad := cellF(t, tab, len(tab.Rows)-1, 2)
	if lastBad == 0 {
		t.Error("60m (beyond reach) should lose frames")
	}
}

func TestE11Savings(t *testing.T) {
	tab, err := E11Datacenter()
	render(t, tab, err)
	// For each k, mosaic plan power < all-optics and < DAC+optics.
	powers := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		k := r[0]
		if powers[k] == nil {
			powers[k] = map[string]float64{}
		}
		v, _ := strconv.ParseFloat(r[3], 64)
		powers[k][r[2]] = v
	}
	for k, m := range powers {
		if !(m["mosaic"] < m["all-optics"] && m["mosaic"] < m["DAC+optics"]) {
			t.Errorf("k=%s: mosaic %v not below alternatives %v", k, m["mosaic"], m)
		}
	}
}

func TestE12Degradation(t *testing.T) {
	tab, err := E12Degradation(1)
	render(t, tab, err)
	get := func(name string) (mean, p99 float64, stalled int) {
		for _, r := range tab.Rows {
			if r[0] == name {
				m, _ := strconv.ParseFloat(r[3], 64)
				p, _ := strconv.ParseFloat(r[4], 64)
				s, _ := strconv.Atoi(r[2])
				return m, p, s
			}
		}
		t.Fatalf("missing scenario %s", name)
		return 0, 0, 0
	}
	base, _, _ := get("no-fault")
	deg4, _, degStall := get("mosaic-access(-4%)")
	_, _, downStall := get("optics-access-down")
	_, _, fabricDegStall := get("mosaic-fabric(-4%)")
	if degStall != 0 || fabricDegStall != 0 {
		t.Error("graceful degradation must not stall flows")
	}
	// -4% capacity should barely move the mean.
	if deg4 > base*1.5 {
		t.Errorf("-4%% degradation mean FCT %v vs base %v: too much impact", deg4, base)
	}
	// An access link going dark strands its host: stalled flows appear.
	if downStall == 0 {
		t.Error("access link-down should strand flows")
	}
}

func TestA1SingleCoreDiesFast(t *testing.T) {
	tab, err := A1Oversampling()
	render(t, tab, err)
	// At 5um offset: group loss still finite & small, single-core dead/huge.
	for i := range tab.Rows {
		off := cellF(t, tab, i, 0)
		if off == 5 {
			if g := cell(tab, i, 1); g == "inf" {
				t.Error("group spot dead at 5um")
			}
			single := cell(tab, i, 2)
			if single != "inf" {
				v, _ := strconv.ParseFloat(single, 64)
				if v < 10 {
					t.Errorf("single core at 5um only %v dB down", v)
				}
			}
		}
	}
}

func TestA2FECTable(t *testing.T) {
	tab, err := A2FECChoice(1)
	render(t, tab, err)
	// At 1e-4, none must lose frames while rslite/kp4 hold up.
	var noneOK, rsliteOK string
	for _, r := range tab.Rows {
		if r[0] == "1.00e-04" {
			switch r[1] {
			case "none":
				noneOK = r[3]
			case "RS(68,64)/GF(2^8)":
				rsliteOK = r[3]
			}
		}
	}
	if noneOK == "" || rsliteOK == "" {
		t.Fatalf("missing rows: %q %q", noneOK, rsliteOK)
	}
	if noneOK == "100/100" {
		t.Error("unprotected link at 1e-4 should lose frames")
	}
	if rsliteOK != "100/100" {
		t.Errorf("RS-lite at 1e-4 delivered %s", rsliteOK)
	}
}

func TestA3GoodputMonotone(t *testing.T) {
	tab, err := A3UnitSize(1)
	render(t, tab, err)
	prev := 0.0
	for i := range tab.Rows {
		g := cellF(t, tab, i, 1)
		if g < prev {
			t.Fatal("goodput should grow with unit size")
		}
		prev = g
	}
}

func TestA4SparingTable(t *testing.T) {
	tab, err := A4SparingPolicy(1)
	render(t, tab, err)
	// With 4 spares, rate holds at 40G through 4 failures; bare link
	// degrades immediately.
	r4 := tab.Rows[4] // 4 failures
	if r4[1] != "40G" {
		t.Errorf("spared rate after 4 failures = %s", r4[1])
	}
	if tab.Rows[1][2] != "38G" {
		t.Errorf("bare rate after 1 failure = %s", tab.Rows[1][2])
	}
	// Spared link keeps delivering everything.
	if !strings.HasPrefix(r4[3], "50/") {
		t.Errorf("spared delivery after 4 failures = %s", r4[3])
	}
}
