package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// E24 fleet shape and workload. 12 pods of a 10-leaf x 6-spine
// leaf-spine with 8 hosts per leaf gives 960 hosts and 1752 links; the
// diurnal load curve peaks at 1.8x the aggregate access capacity, so
// the peak hours build a six-figure flow backlog that the off-peak
// hours drain — that backlog is the scale the sharded engine exists
// for.
const (
	e24Pods         = 12
	e24Leaves       = 10
	e24Spines       = 6
	e24HostsPerLeaf = 8
	e24LinkRate     = 100e9
	e24Epochs       = 24 // one diurnal day, 1 s per epoch
	e24Window       = 4  // table row granularity, epochs
	e24MeanBits     = 3e9
	e24PeakLoad     = 1.8 // rho(e) = peak/2 * (1 - cos(2*pi*e/24))
	e24CrossFrac    = 0.10
	e24MeanDecay    = 0.003 // per-epoch mean exponential decay of link capacity
	e24SparingFloor = 0.7   // below this fraction the link is retired (dead)
)

// E24FleetScale is the fleet-scale deliverable of the sharded
// incremental flow engine: a 12-pod, 1752-link fleet under a diurnal
// load curve whose peak hours offer 1.8x the access capacity, with
// every link continuously aging on a seeded exponential-decay schedule
// (microLED dimming; links dropping below the sparing floor die). The
// peak builds >100k concurrent flows; a sampled set of the most-aged
// links additionally runs the real PHY/MAC bring-up so the modeled
// capacity fraction is checked against what monitor-driven sparing
// actually renegotiates. The epoch event log and the table are
// byte-identical at any shard worker count.
func E24FleetScale(seed int64) (Table, error) {
	t, _, err := e24WithWorkers(seed, 0)
	return t, err
}

// e24Metrics exposes scale counters for tests and notes.
type e24Metrics struct {
	Flows      int    // total arrivals admitted
	PeakActive int    // max concurrent flows at any epoch start
	PeakCross  int    // max concurrent cross-pod flows
	DeadLinks  int    // links retired by aging within the horizon
	Unroutable int    // arrivals rejected (no live path)
	Waterfills uint64 // component waterfill invocations across shards
	RatedFlows uint64 // flow-rate assignments across all waterfills
	LogSHA     string // sha256[:8] of the epoch event log
}

// e24WithWorkers is the worker-count-parameterized core so the
// determinism test can pin byte-identical output at any pool size.
func e24WithWorkers(seed int64, workers int) (Table, e24Metrics, error) {
	var m e24Metrics
	t := tableFor("E24")
	t.Columns = []string{"window", "arrivals", "done", "stalled",
		"active_end", "cross_end", "frac_fleet", "p50_s", "p99_s"}

	topo, err := netsim.NewFleet(e24Pods, e24Leaves, e24Spines, e24HostsPerLeaf, e24LinkRate)
	if err != nil {
		return t, m, err
	}
	aging, err := faultinject.NewFleetAging(seed+1, len(topo.Links), e24MeanDecay, e24SparingFloor)
	if err != nil {
		return t, m, err
	}
	fs := netsim.NewFleetSim(topo, workers)
	rng := rand.New(rand.NewSource(seed + 2))
	hosts := topo.Hosts()
	hostsPerPod := e24Leaves * e24HostsPerLeaf
	dist := workload.WebSearch()
	sizeScale := e24MeanBits / dist.MeanBits()

	windows := e24Epochs / e24Window
	winArrivals := make([]int, windows)
	winActive := make([]int, windows)
	winCross := make([]int, windows)
	winFrac := make([]float64, windows)

	for e := 0; e < e24Epochs; e++ {
		// Continuous aging: publish every link's modeled fraction. The
		// engine's no-op early-return makes unchanged links free, and a
		// link that crossed the sparing floor stays dead.
		for l := range topo.Links {
			fs.SetLinkFraction(l, aging.Fraction(l, e))
		}

		load := e24PeakLoad / 2 * (1 - math.Cos(2*math.Pi*float64(e)/e24Epochs))
		n := int(load*float64(len(hosts))*e24LinkRate/e24MeanBits + 0.5)
		for i := 0; i < n; i++ {
			src := rng.Intn(len(hosts))
			var dst int
			if rng.Float64() < e24CrossFrac {
				pod := (src/hostsPerPod + 1 + rng.Intn(e24Pods-1)) % e24Pods
				dst = pod*hostsPerPod + rng.Intn(hostsPerPod)
			} else {
				dst = (src/hostsPerPod)*hostsPerPod + rng.Intn(hostsPerPod)
				if dst == src {
					dst = (src/hostsPerPod)*hostsPerPod + (src+1)%hostsPerPod
				}
			}
			if _, err := fs.Inject(hosts[src], hosts[dst], dist.SampleBits(rng)*sizeScale, rng.Uint64()); err != nil {
				m.Unroutable++
				continue
			}
			m.Flows++
		}
		winArrivals[e/e24Window] += n
		if a := fs.ActiveFlows(); a > m.PeakActive {
			m.PeakActive = a
		}
		if c := fs.CrossFlows(); c > m.PeakCross {
			m.PeakCross = c
		}

		fs.Step(1)

		if (e+1)%e24Window == 0 {
			w := e / e24Window
			winActive[w] = fs.ActiveFlows()
			winCross[w] = fs.CrossFlows()
			winFrac[w] = aging.MeanFraction(e)
		}
	}

	// One merged pass over the records: bucket by completion epoch.
	byWindow := make([][]netsim.FlowRecord, windows)
	for _, r := range fs.Records() {
		w := int(r.End) / e24Window
		if w >= windows {
			w = windows - 1
		}
		byWindow[w] = append(byWindow[w], r)
	}
	for w := 0; w < windows; w++ {
		st := netsim.Stats(byWindow[w])
		t.AddRow(fmt.Sprintf("e%d-e%d", w*e24Window, (w+1)*e24Window-1),
			fmt.Sprintf("%d", winArrivals[w]),
			fmt.Sprintf("%d", st.Count), fmt.Sprintf("%d", st.Stalled),
			fmt.Sprintf("%d", winActive[w]), fmt.Sprintf("%d", winCross[w]),
			fm(winFrac[w], 4), fm(float64(st.P50), 3), fm(float64(st.P99), 3))
	}

	for l := range topo.Links {
		if aging.DeadAt(l, e24Epochs) >= 0 {
			m.DeadLinks++
		}
	}
	m.Waterfills = fs.Waterfills()
	m.RatedFlows = fs.RatedFlows()
	h := sha256.Sum256([]byte(strings.Join(fs.EventLog(), "\n")))
	m.LogSHA = hex.EncodeToString(h[:8])

	samples, err := e24BringUpSamples(seed, workers, aging, len(topo.Links))
	if err != nil {
		return t, m, err
	}

	t.Notes = fmt.Sprintf("fleet: %d pods, %d links, %d hosts; diurnal peak %.1fx access capacity; "+
		"aging mean-decay %.1f%%/epoch, sparing floor %.2f -> %d dead links; "+
		"%d flows (%d unroutable), peak concurrent %d (%d cross-pod); "+
		"%d component waterfills rated %d flows; epoch log sha256[:8]=%s "+
		"(byte-identical at any worker count); phy/mac bring-up on most-aged live links: %s",
		e24Pods, len(topo.Links), len(hosts), e24PeakLoad,
		e24MeanDecay*100, e24SparingFloor, m.DeadLinks,
		m.Flows, m.Unroutable, m.PeakActive, m.PeakCross,
		m.Waterfills, m.RatedFlows, m.LogSHA, strings.Join(samples, "; "))
	return t, m, nil
}

// e24BringUpSamples picks the three most-aged links that survive the
// horizon and runs the real PHY/MAC bring-up for each: the modeled
// fraction is converted to a channel-kill count (16 lanes, 2 spares —
// the first two kills are absorbed silently), a live mac.Session rides
// the schedule, and the fraction its bridge actually renegotiates is
// reported next to the model's. This is the "sampled set runs the real
// stack" leg of E24: the fleet model and the lane-level MAC agree on
// what aging costs.
func e24BringUpSamples(seed int64, workers int, aging *faultinject.FleetAging, links int) ([]string, error) {
	type cand struct {
		link int
		frac float64
	}
	var live []cand
	for l := 0; l < links; l++ {
		if f := aging.Fraction(l, e24Epochs-1); f > 0 {
			live = append(live, cand{l, f})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].frac != live[j].frac {
			return live[i].frac < live[j].frac
		}
		return live[i].link < live[j].link
	})
	if len(live) > 3 {
		live = live[:3]
	}

	out := make([]string, 0, len(live))
	for i, c := range live {
		kills := 2 + int(math.Round((1-c.frac)*16))
		if kills > 14 {
			kills = 14
		}
		var ev []faultinject.Event
		for k := 0; k < kills; k++ {
			ev = append(ev, faultinject.Event{
				At: 6 + 3*k, Kind: faultinject.KindKill, Channel: (5*k + 2) % 16,
			})
		}

		topo, err := netsim.NewLeafSpine(2, 1, 1, e24LinkRate)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine(seed + int64(i))
		sub := netsim.NewFlowSim(topo, eng)
		victim := topo.LinksByTier()[netsim.TierHostToR][0]
		fwd, err := phy.New(phy.Config{
			Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
			PerChannelBitRate: 2e9, Seed: seed + 400 + int64(i), Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		rev, err := phy.New(phy.Config{
			Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
			PerChannelBitRate: 2e9, Seed: seed + 500 + int64(i), Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		sess, err := mac.NewSession(mac.SessionConfig{
			Engine:       eng,
			Fwd:          fwd,
			Rev:          rev,
			Pair:         mac.PairConfig{PHYFrameLen: 120},
			Schedule:     faultinject.Schedule{Events: ev},
			Superframes:  60,
			Interval:     1e-3,
			PacketsPerSF: 4,
			PacketLen:    150,
			Seed:         seed + 600 + int64(i),
			Bridge:       mac.NewBridge(fwd, sub, victim, eng),
		})
		if err != nil {
			return nil, err
		}
		eng.Run()
		res := sess.Result()
		if res.Err != "" {
			return nil, fmt.Errorf("experiments: E24 bring-up on link %d: %s", c.link, res.Err)
		}
		out = append(out, fmt.Sprintf("link %d model %s mac %s renegs %d",
			c.link, fm(c.frac, 4), fm(res.Fraction, 4), res.Renegotiations))
	}
	return out, nil
}
