package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// E25's table embeds the multi-VC session's event-log hash in its
// notes, so byte-identical rendered tables across PHY worker-pool sizes
// prove the ARQ engines — including the SR reorder buffer and the
// weighted VC scheduler — are deterministic regardless of parallelism.
func TestE25DeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, w := range []int{1, 3, 0} {
		tab, err := e25WithWorkers(5, w)
		got := render(t, tab, err)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d table diverged:\n%s\nwant:\n%s", w, got, want)
		}
	}

	row := func(name string) []string {
		for _, l := range strings.Split(want, "\n") {
			if strings.Contains(l, name) {
				return strings.Fields(l)
			}
		}
		t.Fatalf("missing scenario row %q:\n%s", name, want)
		return nil
	}
	// Columns: scenario queued delivered goodput retx timeouts stalls disc reord
	gbn, sr := row("gbn-1vc"), row("sr-1vc")
	num := func(f []string, i int) int {
		n, err := strconv.Atoi(f[i])
		if err != nil {
			t.Fatalf("column %d of %v is not a count: %v", i, f, err)
		}
		return n
	}

	// The acceptance claim: under the burst-loss schedule, selective
	// repeat delivers strictly more than go-back-N at the same offered
	// load — and does it with fewer retransmissions.
	if num(sr, 2) <= num(gbn, 2) {
		t.Errorf("SR delivered %s, GBN %s — SR must be strictly higher:\n%s", sr[2], gbn[2], want)
	}
	if num(sr, 4) >= num(gbn, 4) {
		t.Errorf("SR retransmitted %s, GBN %s — SR must replay less:\n%s", sr[4], gbn[4], want)
	}
	// GBN discards the ahead-of-window survivors it cannot buffer; SR
	// reorders them instead of throwing them away.
	if num(gbn, 8) != 0 {
		t.Errorf("GBN reordered %s frames without a reorder buffer:\n%s", gbn[8], want)
	}
	if num(sr, 8) == 0 {
		t.Errorf("SR run never exercised the reorder buffer:\n%s", want)
	}

	qos := row("sr-3vc-qos")
	if num(qos, 2) == 0 {
		t.Errorf("multi-VC run delivered nothing:\n%s", want)
	}
	if !strings.Contains(want, "sha256[:8]=") {
		t.Errorf("notes lost the mac event-log hash:\n%s", want)
	}
	if !strings.Contains(want, "vc0(class 0)=") {
		t.Errorf("notes lost the per-VC delivery breakdown:\n%s", want)
	}
}
