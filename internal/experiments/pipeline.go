package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mosaic/internal/core"
	"mosaic/internal/mac"
	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// E5PrototypeBER reproduces the 100-channel prototype's per-channel BER
// distribution with manufacturing variation, pre- and post-FEC.
func E5PrototypeBER(seed int64) (Table, error) {
	t := tableFor("E5")
	t.Columns = []string{"percentile", "pre_FEC_BER", "post_FEC_blockerr"}
	d := core.DefaultDesign()
	d.Seed = seed
	d.LengthM = 40 // long enough that variation is visible
	rep, err := d.Evaluate()
	if err != nil {
		return t, err
	}
	var bers []float64
	for _, c := range rep.Channels {
		if !c.Dead {
			bers = append(bers, c.BER)
		}
	}
	sortFloats(bers)
	pct := func(p float64) float64 {
		i := int(p * float64(len(bers)-1))
		return bers[i]
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		ber := pct(p)
		t.AddRow(fm(p*100, 0)+"%", fe(ber), fe(rsLiteBlockErr(ber)))
	}
	t.Notes = fmt.Sprintf("%d live channels at %gm; %d dead at manufacture (spared out)",
		len(bers), d.LengthM, rep.DeadCount)
	return t, nil
}

// rsLiteBlockErr returns the post-FEC block error probability of RS(68,64)
// (t=2, byte symbols) at the given channel BER.
func rsLiteBlockErr(ber float64) float64 {
	ps := 1 - math.Pow(1-ber, 8) // byte-symbol error probability
	if ps <= 0 {
		return 0
	}
	const n, tcorr = 68, 2
	// P[block fails] = P[more than t symbol errors].
	var ok float64
	for i := 0; i <= tcorr; i++ {
		ok += math.Exp(logChoose(n, i) +
			float64(i)*math.Log(ps) + float64(n-i)*math.Log1p(-ps))
	}
	if ok > 1 {
		ok = 1
	}
	return 1 - ok
}

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// E10EndToEnd drives the bit-true 100-channel PHY over increasing reach and
// reports delivery, corrections, and efficiency.
func E10EndToEnd(seed int64) (Table, error) {
	t := tableFor("E10")
	t.Columns = []string{"length_m", "frames_ok", "frames_bad", "corrections", "goodput_frac"}
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, 200)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	// The delivered frames are only counted, never kept, so one arena
	// serves every reach point.
	var buf phy.ExchangeBuf
	for _, l := range []float64{2, 20, 40, 50, 60, 70, 80} {
		d := core.DefaultDesign()
		d.Seed = seed
		d.LengthM = l
		link, err := d.BuildPHY()
		if err != nil {
			return t, err
		}
		_, st, err := link.ExchangeInto(&buf, frames)
		if err != nil {
			return t, err
		}
		goodput := 0.0
		if st.WireBytes > 0 {
			goodput = float64(st.PayloadBytes) / float64(st.WireBytes)
		}
		t.AddRow(fm(l, 0), fmt.Sprintf("%d/%d", st.FramesDelivered, st.FramesIn),
			fmt.Sprintf("%d", st.FramesLost+st.FramesCorrupted),
			fmt.Sprintf("%d", st.Corrections), fm(goodput, 3))
	}
	return t, nil
}

// E11Datacenter compares network-wide link power and failure rates for the
// three deployment plans on fat-trees.
func E11Datacenter() (Table, error) {
	t := tableFor("E11")
	t.Columns = []string{"fat-tree_k", "hosts", "plan", "power_kW", "vs_all-optics", "link_failures/yr"}
	for _, k := range []int{8, 16, 24} {
		topo, err := netsim.NewFatTree(k, 800e9)
		if err != nil {
			return t, err
		}
		baseline, err := netsim.Analyze(topo, netsim.AllOptics(), 800e9)
		if err != nil {
			return t, err
		}
		for _, plan := range netsim.Plans() {
			rep, err := netsim.Analyze(topo, plan, 800e9)
			if err != nil {
				return t, err
			}
			saving := "-"
			if plan.Name != "all-optics" && baseline.PowerW > 0 {
				saving = fmt.Sprintf("-%.0f%%", (1-rep.PowerW/baseline.PowerW)*100)
			}
			t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", topo.NumHosts()),
				plan.Name, fm(rep.PowerW/1e3, 2), saving, fm(rep.FailuresPerYear, 2))
		}
	}
	t.Notes = "plans: DAC+optics = copper in rack, optics above; mosaic = Mosaic wherever 50m reaches"
	return t, nil
}

// E12Degradation contrasts graceful degradation (Mosaic channel sparing
// exhausted, capacity -4%) against optics-style link-down on the tail FCT
// of a loaded fat-tree.
func E12Degradation(seed int64) (Table, error) {
	t := tableFor("E12")
	t.Columns = []string{"scenario", "flows", "stalled", "mean_FCT_ms", "p99_FCT_ms"}
	scenarios := []struct {
		name string
		tier netsim.Tier
		mode faultMode
	}{
		{"no-fault", netsim.TierHostToR, faultNone},
		{"mosaic-access(-4%)", netsim.TierHostToR, faultMosaicBridge},
		{"optics-access-down", netsim.TierHostToR, faultLinkDown},
		{"mosaic-fabric(-4%)", netsim.TierToRAgg, faultMosaicBridge},
		{"optics-fabric-down", netsim.TierToRAgg, faultLinkDown},
	}
	for _, sc := range scenarios {
		st, err := runFaultScenario(seed, sc.tier, sc.mode)
		if err != nil {
			return t, err
		}
		t.AddRow(sc.name, fmt.Sprintf("%d", st.Count+st.Stalled),
			fmt.Sprintf("%d", st.Stalled),
			fm(float64(st.Mean)*1e3, 3), fm(float64(st.P99)*1e3, 3))
	}
	t.Notes = "fabric link-down is absorbed by ECMP rerouting; access link-down strands the host — " +
		"exactly where Mosaic's graceful degradation matters most; mosaic rows degrade via the " +
		"mac.Bridge (monitor -> renegotiation), not a hand-wired capacity edit"
	return t, nil
}

// faultMode selects how runFaultScenario damages the victim link.
type faultMode int

const (
	faultNone faultMode = iota
	// faultMosaicBridge kills 8 of the victim's 104 channels: sparing
	// absorbs 4, the lane count degrades 100->96, and the mac.Bridge
	// renegotiates the flow-sim capacity to 0.96 on its own.
	faultMosaicBridge
	// faultLinkDown is the optics-style failure: the whole link dies.
	faultLinkDown
)

// runFaultScenario runs the shared workload with a fault applied to one
// link of the given tier once ~15% of flows have arrived. Flows that
// become unroutable count as stalled.
func runFaultScenario(seed int64, tier netsim.Tier, mode faultMode) (netsim.FCTStats, error) {
	topo, err := netsim.NewFatTree(8, 800e9)
	if err != nil {
		return netsim.FCTStats{}, err
	}
	eng := sim.NewEngine(seed)
	fs := netsim.NewFlowSim(topo, eng)
	hosts := topo.Hosts()
	dist := workload.WebSearch()
	arr := workload.NewPoissonForLoad(0.4, len(hosts), 800e9, dist.MeanBits())
	rng := eng.RNG("workload")

	// Inject 3000 flows with Poisson arrivals.
	const nflows = 3000
	unroutable := 0
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= nflows {
			return
		}
		eng.Schedule(at, func() {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			if _, err := fs.StartFlow(src, dst, dist.SampleBits(rng), rng.Uint64()); err != nil {
				unroutable++ // endpoint stranded by a dead access link
			}
			schedule(i+1, at+sim.Time(arr.NextGapSec(rng)))
		})
	}
	schedule(0, 0)

	if mode != faultNone {
		faultAt := sim.Time(0.15 * nflows / arr.RatePerSec)
		victim := topo.LinksByTier()[tier][0]
		switch mode {
		case faultLinkDown:
			eng.Schedule(faultAt, func() { fs.FailLink(victim) })
		case faultMosaicBridge:
			// A Mosaic endpoint on the victim link: 100 lanes plus 4
			// spares, bridged into the flow sim. Killing 8 channels
			// exhausts sparing and degrades the lane count to 96; the
			// bridge observes the monitor transitions and republishes
			// capacity 0.96 itself (coalesced, post-remap).
			link, err := phy.New(phy.Config{
				Lanes:             100,
				Spares:            4,
				FEC:               phy.NoFEC{},
				UnitLen:           243,
				PerChannelBitRate: 8e9,
				Seed:              seed,
			})
			if err != nil {
				return netsim.FCTStats{}, err
			}
			bridge := mac.NewBridge(link, fs, victim, eng)
			bridge.Install()
			eng.Schedule(faultAt, func() {
				for ch := 0; ch < 8; ch++ {
					link.FailChannel(ch)
				}
			})
		}
	}
	eng.Run()
	st := netsim.Stats(fs.Records())
	st.Stalled += unroutable
	return st, nil
}

// --- Ablations ---

// A1Oversampling contrasts many-core channel spots against single-core
// mapping for misalignment tolerance.
func A1Oversampling() (Table, error) {
	t := tableFor("A1")
	t.Columns = []string{"offset_um", "group_spot_40um_loss_dB", "single_core_4um_loss_dB"}
	d := core.DefaultDesign()
	for _, off := range []float64{0, 1, 2, 5, 10, 15} {
		group := d.Fiber.CouplingLossDB(40e-6, off*1e-6)
		single := d.Fiber.CouplingLossDB(4e-6, off*1e-6)
		t.AddRow(fm(off, 0), fm(group, 2), fm(single, 2))
	}
	t.Notes = "the single-core spot goes dark within ~4um of offset; the group barely notices 10um"
	return t, nil
}

// A2FECChoice sweeps channel BER across FEC schemes on the bit-true link.
func A2FECChoice(seed int64) (Table, error) {
	t := tableFor("A2")
	t.Columns = []string{"BER", "fec", "overhead", "frames_ok", "corrections"}
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, 100)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	fecs := []phy.FEC{phy.NoFEC{}, phy.HammingFEC{}, phy.NewRSLite(), phy.NewRSKP4()}
	for _, ber := range []float64{1e-7, 1e-5, 1e-4} {
		for _, fec := range fecs {
			cfg := phy.DefaultConfig()
			cfg.FEC = fec
			cfg.Seed = seed
			link, err := phy.New(cfg)
			if err != nil {
				return t, err
			}
			for p := 0; p < link.Mapper().NumChannels(); p++ {
				link.SetChannelBER(p, ber)
			}
			_, st, err := link.Exchange(frames)
			if err != nil {
				return t, err
			}
			t.AddRow(fe(ber), fec.Name(), fm(fec.Overhead()*100, 1)+"%",
				fmt.Sprintf("%d/%d", st.FramesDelivered, st.FramesIn),
				fmt.Sprintf("%d", st.Corrections))
		}
	}
	return t, nil
}

// A3UnitSize sweeps the stripe-unit / channel-frame size.
func A3UnitSize(seed int64) (Table, error) {
	t := tableFor("A3")
	t.Columns = []string{"unit_B", "goodput_frac", "frames_ok@1e-5"}
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, 100)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	for _, unit := range []int{63, 117, 243, 495, 999} {
		cfg := phy.DefaultConfig()
		cfg.UnitLen = unit
		cfg.Seed = seed
		link, err := phy.New(cfg)
		if err != nil {
			return t, err
		}
		for p := 0; p < link.Mapper().NumChannels(); p++ {
			link.SetChannelBER(p, 1e-5)
		}
		_, st, err := link.Exchange(frames)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", unit), fm(link.GoodputFraction(), 3),
			fmt.Sprintf("%d/%d", st.FramesDelivered, st.FramesIn))
	}
	return t, nil
}

// A4SparingPolicy injects successive channel deaths and tracks capacity.
func A4SparingPolicy(seed int64) (Table, error) {
	t := tableFor("A4")
	t.Columns = []string{"failures", "with_4_spares_rate", "no_spares_rate", "with_spares_ok", "no_spares_ok"}
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, 50)
	for i := range frames {
		frames[i] = make([]byte, 1200)
		rng.Read(frames[i])
	}
	mk := func(spares int) (*phy.Link, error) {
		cfg := phy.DefaultConfig()
		cfg.Lanes = 20
		cfg.Spares = spares
		cfg.Seed = seed
		return phy.New(cfg)
	}
	spared, err := mk(4)
	if err != nil {
		return t, err
	}
	bare, err := mk(0)
	if err != nil {
		return t, err
	}
	for failures := 0; failures <= 6; failures++ {
		if failures > 0 {
			victim := failures - 1
			spared.KillChannel(victim)
			spared.FailChannel(victim)
			bare.KillChannel(victim)
			bare.FailChannel(victim)
		}
		_, stS, err := spared.Exchange(frames)
		if err != nil {
			return t, err
		}
		_, stB, err := bare.Exchange(frames)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%d", failures),
			fm(spared.AggregateRate()/1e9, 0)+"G", fm(bare.AggregateRate()/1e9, 0)+"G",
			fmt.Sprintf("%d/%d", stS.FramesDelivered, stS.FramesIn),
			fmt.Sprintf("%d/%d", stB.FramesDelivered, stB.FramesIn))
	}
	return t, nil
}
