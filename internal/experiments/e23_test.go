package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// E23's table embeds the MAC session's event-log hash in its notes, so
// byte-identical rendered tables across PHY worker-pool sizes prove the
// whole chain — PHY exchange, LLR, sparing, bridge renegotiation, flow
// sim — is deterministic regardless of parallelism.
func TestE23DeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, w := range []int{1, 3, 0} {
		tab, err := e23WithWorkers(5, w)
		got := render(t, tab, err)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d table diverged:\n%s\nwant:\n%s", w, got, want)
		}
	}

	// The table must actually tell the story: the MAC scenario
	// renegotiated below full capacity yet stranded nobody, while the
	// copper cut stalled flows.
	lines := strings.Split(want, "\n")
	var mosaic, copper string
	for _, l := range lines {
		if strings.Contains(l, "mosaic-aging(mac)") {
			mosaic = l
		}
		if strings.Contains(l, "copper-link-down") {
			copper = l
		}
	}
	if mosaic == "" || copper == "" {
		t.Fatalf("missing scenario rows:\n%s", want)
	}
	mf := strings.Fields(mosaic)
	// scenario flows stalled renegs retx frac_end mean p99
	if mf[2] != "0" {
		t.Errorf("mosaic scenario stalled flows: %s", mosaic)
	}
	if mf[3] == "0" || mf[3] == "-" {
		t.Errorf("mosaic scenario never renegotiated: %s", mosaic)
	}
	if mf[5] == "1.0000" {
		t.Errorf("mosaic scenario ended at full capacity: %s", mosaic)
	}
	cf := strings.Fields(copper)
	// The cut must be a multi-stall kill — several flows stranded at one
	// instant — so the stall-record hash below actually pins an ordering
	// (a single stalled flow would make any order look deterministic).
	if n, err := strconv.Atoi(cf[2]); err != nil || n < 2 {
		t.Errorf("copper link-down stranded %s flows, want >= 2: %s", cf[2], copper)
	}
	if !strings.Contains(want, "mac event log sha256[:8]=") {
		t.Errorf("notes lost the mac event-log hash:\n%s", want)
	}
	if !strings.Contains(want, "copper stall records sha256[:8]=") {
		t.Errorf("notes lost the copper stall-record hash:\n%s", want)
	}
}
