package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/photonics"
	"mosaic/internal/phy"
	"mosaic/internal/power"
	"mosaic/internal/serdes"
)

// E13Temperature sweeps case temperature: microLED vs laser optical power
// penalty and the wear-out acceleration each suffers.
func E13Temperature() (Table, error) {
	t := tableFor("E13")
	t.Columns = []string{"temp_K", "LED_penalty_dB", "VCSEL_penalty_dB", "DFB_penalty_dB", "wearout_accel"}
	led := photonics.DefaultMicroLED()
	iLED := led.NominalCurrent()
	vcsel := photonics.VCSEL850()
	dfb := photonics.DFB1310()
	iV := 4e-3
	iD, err := dfb.CurrentForPower(1e-3)
	if err != nil {
		return t, err
	}
	for _, temp := range []float64{300, 320, 340, 360, 380, 400} {
		t.AddRow(fm(temp, 0),
			fm(led.PowerPenaltyDB(iLED, temp), 2),
			fmtPenalty(vcsel.PowerPenaltyDB(iV, temp)),
			fmtPenalty(dfb.PowerPenaltyDB(iD, temp)),
			fm(photonics.AccelerationFactor(0.7, temp), 1))
	}
	t.Notes = "penalties at fixed drive current; 'inf' = threshold exceeded drive (laser dark); " +
		"wear-out acceleration is Arrhenius at 0.7 eV and multiplies each device's base FIT"
	return t, nil
}

func fmtPenalty(v float64) string {
	if math.IsInf(v, 1) {
		return "inf(dark)"
	}
	return fm(v, 2)
}

// E14Latency compares one-way link latency across technologies, including
// the Mosaic unit-size knob.
func E14Latency() (Table, error) {
	t := tableFor("E14")
	t.Columns = []string{"config", "serialize_ns", "fec_ns", "other_ns", "total_ns"}
	// Conventional references (per-lane accumulation + decode pipelines):
	// KP4 block = 5440 bits at 106.25G = 51ns, DSP ~60ns, decode ~150ns.
	t.AddRow("DAC (passive)", "0", "0", "5", "5")
	t.AddRow("DR/AOC (PAM4 DSP+KP4)", "51", "210", "25", "286")
	t.AddRow("LPO (linear, host FEC)", "51", "160", "10", "221")
	for _, unit := range []int{63, 117, 243, 495} {
		cfg := phy.DefaultConfig()
		cfg.Lanes = 400
		cfg.Spares = 16
		cfg.UnitLen = unit
		link, err := phy.New(cfg)
		if err != nil {
			return t, err
		}
		lb := link.LatencyBudget()
		t.AddRow(fmt.Sprintf("Mosaic unit=%dB", unit),
			fm(lb.SerializationNs, 0), fm(lb.FECNs, 0),
			fm(lb.DeskewNs+lb.GearboxNs, 0), fm(lb.TotalNs(), 0))
	}
	t.Notes = "wide-and-slow trades unit-fill latency against goodput (see A3); small units reach " +
		"the DSP-optics latency class while large units maximise efficiency"
	return t, nil
}

// E15Cost compares deployed-link cost across reach, locating the band
// where Mosaic is the cheapest buildable option.
func E15Cost() (Table, error) {
	t := tableFor("E15")
	t.Columns = []string{"length_m", "DAC", "AOC", "DR", "LPO", "CPO", "Mosaic", "cheapest"}
	techs := power.AllTechs()
	for _, l := range []float64{1, 2, 3, 5, 10, 20, 30, 50, 100} {
		row := []string{fm(l, 0)}
		for _, tech := range techs {
			c, err := power.Cost(tech, 800e9, l)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, "$"+fm(c.TotalUSD(), 0))
		}
		best, _, err := power.CheapestAt(800e9, l)
		if err != nil {
			row = append(row, "none")
		} else {
			row = append(row, best.String())
		}
		t.AddRow(row...)
	}
	t.Notes = "n/a = length exceeds the technology's reach; dollar figures are order-of-magnitude"
	return t, nil
}

// E16BlastRadius runs the identical pipeline as 8×106.25G (narrow-and-fast,
// KP4, no spares) and 400×2G (+16 spares) and kills one transmitter in
// each: the architectural failure-mode contrast in one table.
func E16BlastRadius(seed int64) (Table, error) {
	t := tableFor("E16")
	t.Columns = []string{"architecture", "healthy", "after 1 death", "after repair action"}
	rng := randFrames(seed, 100, 1500)

	run := func(cfg phy.Config) (h, dead, repaired string, err error) {
		link, err := phy.New(cfg)
		if err != nil {
			return "", "", "", err
		}
		ex := func() string {
			_, st, err2 := link.Exchange(rng)
			if err2 != nil {
				err = err2
				return "err"
			}
			return fmt.Sprintf("%d/%d", st.FramesDelivered, st.FramesIn)
		}
		h = ex()
		link.KillChannel(0)
		dead = ex()
		link.FailChannel(0) // Mosaic: spare in; conventional: lane removed
		repaired = ex()
		return h, dead, repaired, err
	}

	conv := phy.ConventionalConfig()
	conv.Seed = seed
	h, d, r, err := run(conv)
	if err != nil {
		return t, err
	}
	t.AddRow("8x106G (KP4, no spares)", h, d, r+" at 700G (lane lost)")

	mos := phy.DefaultConfig()
	mos.Lanes = 400
	mos.Spares = 16
	mos.Seed = seed
	h, d, r, err = run(mos)
	if err != nil {
		return t, err
	}
	t.AddRow("400x2G (+16 spares)", h, d, r+" at 800G (spared)")
	t.Notes = "same pipeline both rows; only width and sparing differ. The conventional link cannot " +
		"deliver during the death (12.5% of all units lost corrupts nearly every frame) and permanently " +
		"loses an eighth of its rate; Mosaic loses 0.25% of units transiently and nothing after sparing"
	return t, nil
}

// E17Equalization quantifies the DSP burden: FFE taps needed to open each
// channel's eye. This is where the conventional transceiver's dominant
// power consumer comes from, and why Mosaic doesn't have one.
func E17Equalization() (Table, error) {
	t := tableFor("E17")
	t.Columns = []string{"channel", "baud_G", "raw_ISI", "taps_needed", "eq_eye"}
	d := core.DefaultDesign()
	res, err := d.NominalChannel()
	if err != nil {
		return t, err
	}
	type row struct {
		name string
		h    serdes.FrequencyResponse
		baud float64
	}
	copper := channel.Twinax26AWG()
	il := func(length float64) serdes.FrequencyResponse {
		return serdes.FromInsertionLossDB(func(f float64) float64 {
			return copper.InsertionLossDB(f, length) - copper.FixedDB // cable only
		})
	}
	rows := []row{
		{"Mosaic 2G NRZ (LED+RX)", serdes.SinglePole(res.BandwidthHz), 2e9},
		{"copper 1m @53Gbaud", il(1), 53.125e9},
		{"copper 2m @53Gbaud", il(2), 53.125e9},
		{"copper 3m @53Gbaud", il(3), 53.125e9},
		{"copper 2m @12.9Gbaud (25G NRZ)", il(2), 12.890625e9},
	}
	for _, r := range rows {
		p, err := serdes.SamplePulse(r.h, r.baud, 6, 14)
		if err != nil {
			return t, err
		}
		n := serdes.TapsNeeded(p, 41, 0.3)
		eq := p
		if n > 0 && n <= 41 {
			ffe, err := serdes.DesignFFE(p, n)
			if err != nil {
				return t, err
			}
			eq = ffe.Apply(p)
		}
		taps := fmt.Sprintf("%d", n)
		if n > 41 {
			taps = ">41"
		}
		t.AddRow(r.name, fm(r.baud/1e9, 1), fm(p.ISIRatio(), 2), taps, fm(eq.EyeOpening(), 2))
	}
	t.Notes = "taps=0 means the raw channel meets the target: no FFE, no DFE, no CDR complexity — " +
		"the analog front end is a slicer"
	return t, nil
}

func randFrames(seed int64, n, size int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = make([]byte, size)
		rng.Read(frames[i])
	}
	return frames
}

// A5Modulation contrasts NRZ against PAM4 per channel: PAM4 would halve
// the channel count but needs ~5 dB more optical budget — the wrong trade
// for LED launch powers.
func A5Modulation() (Table, error) {
	t := tableFor("A5")
	t.Columns = []string{"scheme", "chan_rate", "channels", "BER@20m", "BER@40m", "reach_m"}
	type variant struct {
		name string
		mod  channel.Modulation
		rate float64
	}
	for _, v := range []variant{
		{"NRZ 2G", channel.NRZ, 2e9},
		{"PAM4 4G", channel.PAM4, 4e9},
		{"NRZ 4G", channel.NRZ, 4e9},
	} {
		d := core.DefaultDesign()
		d.Modulation = v.mod
		d.ChannelRate = v.rate
		n := int(d.AggregateRate / v.rate)
		b20 := d.NominalBERAt(20)
		b40 := d.NominalBERAt(40)
		reach := d.MaxReach(1e-12)
		t.AddRow(v.name, fm(v.rate/1e9, 0)+"G", fmt.Sprintf("%d", n),
			fe(b20), fe(b40), fm(reach, 1))
	}
	t.Notes = "PAM4 halves channel count but its 1/3 eye costs ~5dB of budget — reach collapses; " +
		"NRZ at twice the rate loses less but still trails wide NRZ at 2G"
	return t, nil
}
