package experiments

import (
	"fmt"

	"mosaic/internal/core"
	"mosaic/internal/fiber"
	"mosaic/internal/netsim"
	"mosaic/internal/phy"
)

// E18Waterfall runs the classic FEC waterfall on the bit-true pipeline:
// frame success rate vs injected channel BER for each FEC scheme. It is
// the measured counterpart of the analytic post-FEC column of E5.
func E18Waterfall(seed int64) (Table, error) {
	t := tableFor("E18")
	t.Columns = []string{"BER", "none", "hamming72", "rslite", "kp4"}
	frames := randFrames(seed, 150, 1500)
	fecs := []phy.FEC{phy.NoFEC{}, phy.HammingFEC{}, phy.NewRSLite(), phy.NewRSKP4()}
	for _, ber := range []float64{1e-7, 1e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3} {
		row := []string{fe(ber)}
		for _, fec := range fecs {
			cfg := phy.DefaultConfig()
			cfg.FEC = fec
			cfg.Seed = seed
			link, err := phy.New(cfg)
			if err != nil {
				return t, err
			}
			for p := 0; p < link.Mapper().NumChannels(); p++ {
				link.SetChannelBER(p, ber)
			}
			_, st, err := link.Exchange(frames)
			if err != nil {
				return t, err
			}
			row = append(row, fm(float64(st.FramesDelivered)/float64(st.FramesIn)*100, 1)+"%")
		}
		t.AddRow(row...)
	}
	t.Notes = "the Mosaic operating point sits at BER <= 1e-12 (off the left edge); the waterfall " +
		"shows the margin each scheme buys before the pipeline degrades"
	return t, nil
}

// E20FleetTCO compares 5-year total cost of ownership (link capex + energy
// opex) across deployment plans and fabric sizes.
func E20FleetTCO() (Table, error) {
	t := tableFor("E20")
	t.Columns = []string{"fabric", "plan", "capex_$k", "opex_$k/yr", "5yr_TCO_$k", "vs_all-optics"}
	fabrics := []struct {
		name string
		topo func() (*netsim.Topology, error)
	}{
		{"fat-tree k=16", func() (*netsim.Topology, error) { return netsim.NewFatTree(16, 800e9) }},
		{"leaf-spine 32x8x32", func() (*netsim.Topology, error) { return netsim.NewLeafSpine(32, 8, 32, 800e9) }},
	}
	for _, f := range fabrics {
		topo, err := f.topo()
		if err != nil {
			return t, err
		}
		baseline, err := netsim.Analyze(topo, netsim.AllOptics(), 800e9)
		if err != nil {
			return t, err
		}
		baseTCO := baseline.TCOUSD(5)
		for _, plan := range netsim.Plans() {
			rep, err := netsim.Analyze(topo, plan, 800e9)
			if err != nil {
				return t, err
			}
			saving := "-"
			if plan.Name != "all-optics" && baseTCO > 0 {
				saving = fmt.Sprintf("-%.0f%%", (1-rep.TCOUSD(5)/baseTCO)*100)
			}
			t.AddRow(f.name, plan.Name,
				fm(rep.CapexUSD/1e3, 0), fm(rep.OpexUSDPerYear()/1e3, 1),
				fm(rep.TCOUSD(5)/1e3, 0), saving)
		}
	}
	t.Notes = "energy at $0.10/kWh with PUE 1.5; capex from the order-of-magnitude cost catalog (E15)"
	return t, nil
}

// E21PredictiveMaintenance ages one channel decade-by-decade and compares
// a link that proactively spares degrading channels against one that waits
// for hard failure. LEDs age gracefully; the monitor sees it coming.
func E21PredictiveMaintenance(seed int64) (Table, error) {
	t := tableFor("E21")
	t.Columns = []string{"aging_BER", "proactive_lost", "proactive_state", "reactive_lost", "reactive_state"}
	mk := func() (*phy.Link, error) {
		cfg := phy.DefaultConfig()
		cfg.Lanes = 20
		cfg.Spares = 2
		cfg.Seed = seed
		return phy.New(cfg)
	}
	pro, err := mk()
	if err != nil {
		return t, err
	}
	rea, err := mk()
	if err != nil {
		return t, err
	}
	frames := randFrames(seed, 60, 1500)
	policy := phy.DefaultMaintenancePolicy()
	policy.KeepSpares = 0
	var lostPro, lostRea int
	const victim = 6
	for _, ber := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 0.4} {
		pro.SetChannelBER(victim, ber)
		rea.SetChannelBER(victim, ber)
		for r := 0; r < 10; r++ {
			if _, st, err := pro.Exchange(frames); err == nil {
				lostPro += st.FramesIn - st.FramesDelivered
			}
			if _, st, err := rea.Exchange(frames); err == nil {
				lostRea += st.FramesIn - st.FramesDelivered
			}
		}
		pro.Maintain(policy)
		// Reactive: only hard failure detection (monitor Failed state).
		for _, p := range rea.Monitor().FailedChannels() {
			rea.FailChannel(p)
		}
		stateOf := func(l *phy.Link) string {
			if l.Mapper().LaneOf(victim) == -1 {
				return "replaced"
			}
			return "in service"
		}
		t.AddRow(fe(ber),
			fmt.Sprintf("%d", lostPro), stateOf(pro),
			fmt.Sprintf("%d", lostRea), stateOf(rea))
	}
	t.Notes = "proactive replacement happens around 1e-5 estimated BER with zero frame loss; " +
		"the reactive link waits until the channel is effectively dead and pays for it in frames"
	return t, nil
}

// E19OpticsBudget sweeps the imaging train: lens NA, emitter beaming, and
// defocus, each against the resulting link reach.
func E19OpticsBudget() (Table, error) {
	t := tableFor("E19")
	t.Columns = []string{"variant", "spot_um", "optics_loss_dB", "reach_m"}
	base := core.DefaultDesign()
	add := func(name string, o fiber.ImagingOptics, chip float64) error {
		d, err := base.WithOptics(o, chip)
		if err != nil {
			t.AddRow(name, "-", fm(o.TotalInsertionDB(base.Fiber.NA), 2), "unbuildable")
			return nil
		}
		t.AddRow(name,
			fm(d.SpotDiameterM*1e6, 1),
			fm(o.TotalInsertionDB(base.Fiber.NA), 2),
			fm(d.MaxReach(1e-12), 1))
		return nil
	}

	nominal := fiber.DefaultOptics()
	if err := add("nominal (NA 0.5, beamed 3x)", nominal, 0.40); err != nil {
		return t, err
	}
	lambertian := nominal
	lambertian.DirectionalityGain = 1
	if err := add("plain Lambertian emitter", lambertian, 0.40); err != nil {
		return t, err
	}
	lowNA := nominal
	lowNA.LensNA = 0.3
	if err := add("cheap lens (NA 0.3)", lowNA, 0.40); err != nil {
		return t, err
	}
	for _, dz := range []float64{50e-6, 100e-6, 200e-6} {
		o := nominal
		o.DefocusM = dz
		if err := add(fmt.Sprintf("defocus %0.0f um", dz*1e6), o, 0.40); err != nil {
			return t, err
		}
	}
	t.Notes = "beaming (on-chip microlenses) is worth ~4.8 dB of budget; focus tolerance is " +
		"hundreds of microns — injection-moulded assembly territory, not active alignment"
	return t, nil
}
