package experiments

import (
	"strings"
	"testing"

	"mosaic/internal/scenario"
)

// Every library scenario auto-registers as a KindScenario experiment,
// spliced between the paper experiments and the ablations.
func TestScenarioAutoRegistration(t *testing.T) {
	lib := scenario.Library()
	scen := ByKind(KindScenario)
	if len(scen) != len(lib) {
		t.Fatalf("registry has %d scenario experiments, library has %d", len(scen), len(lib))
	}
	for i, entry := range lib {
		e, ok := Lookup(entry.ID)
		if !ok {
			t.Fatalf("library scenario %s not registered", entry.ID)
		}
		if e.Kind != KindScenario {
			t.Errorf("%s registered with kind %q, want %q", entry.ID, e.Kind, KindScenario)
		}
		if scen[i].ID != entry.ID {
			t.Errorf("scenario order: registry[%d] = %s, library[%d] = %s", i, scen[i].ID, i, entry.ID)
		}
	}
	// Presentation order: E26 must come after E25 and before A1.
	pos := map[string]int{}
	for i, e := range Registry() {
		pos[e.ID] = i
	}
	if !(pos["E25"] < pos["E26"] && pos["E26"] < pos["A1"]) {
		t.Errorf("scenario experiments misplaced: E25@%d E26@%d A1@%d", pos["E25"], pos["E26"], pos["A1"])
	}
}

// The Kind partition must be total and disjoint: three kinds, every
// experiment in exactly one, ByKind slices reassembling the registry.
func TestKindsPartitionRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 3 {
		t.Fatalf("Kinds() = %v, want [paper scenario ablation]", kinds)
	}
	want := []string{KindPaper, KindScenario, KindAblation}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("Kinds() = %v, want %v", kinds, want)
		}
	}
	total := 0
	for _, k := range kinds {
		for _, e := range ByKind(k) {
			if e.Kind != k {
				t.Errorf("ByKind(%q) returned %s with kind %q", k, e.ID, e.Kind)
			}
			total++
		}
	}
	if total != len(Registry()) {
		t.Errorf("ByKind slices cover %d experiments, registry has %d", total, len(Registry()))
	}
	if got := ByKind("nope"); got != nil {
		t.Errorf("ByKind(nope) = %v, want nil", got)
	}
}

// E26/E27 are the scenario library's determinism pins: the rendered
// table — windowed rows, fault expectations, and the event-log sha in
// the notes — must be byte-identical at one worker and at GOMAXPROCS
// workers. This is the golden-sha test `make determinism` runs.
func TestScenarioTablesDeterministicAcrossWorkers(t *testing.T) {
	for _, entry := range scenario.Library() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			t.Parallel()
			var want string
			for i, w := range []int{1, 0} {
				tab, err := scenarioTableWithWorkers(entry, 1, w)
				got := render(t, tab, err)
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d table diverged:\n%s\nwant:\n%s", w, got, want)
				}
			}
			if !strings.Contains(want, "sha256/8 = ") {
				t.Errorf("notes lost the event-log hash:\n%s", want)
			}
			if !strings.Contains(want, "faults: ") {
				t.Errorf("notes lost the fault expectations:\n%s", want)
			}
			if strings.Count(want, "\n") < 4 {
				t.Errorf("table suspiciously short:\n%s", want)
			}
		})
	}
}

// The registry seed must reach the scenario: different seeds,
// different tables.
func TestScenarioTableSeedSensitive(t *testing.T) {
	e, ok := Lookup("E26")
	if !ok {
		t.Fatal("E26 not registered")
	}
	a, err := e.Gen(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Gen(2)
	if err != nil {
		t.Fatal(err)
	}
	if render(t, a, nil) == render(t, b, nil) {
		t.Fatal("E26 table identical across seeds")
	}
}
