// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md — the full text was not
// available, so the suite is derived from the abstract's quantitative
// claims). Every experiment lives in the Registry (registry.go): static
// ID/title/claim metadata plus a seeded generator returning a printable
// Table. cmd/mosaicbench and the top-level benchmark harness both drive
// the registry — serially or in parallel via Run — so the numbers in
// EXPERIMENTS.md, the CLI output, and `go test -bench` always agree.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mosaic/internal/channel"
	"mosaic/internal/core"
	"mosaic/internal/power"
	"mosaic/internal/reliability"
)

// Table is one experiment's output: a titled grid with the paper claim it
// reproduces.
type Table struct {
	ID      string
	Title   string
	Claim   string // the abstract's wording this experiment validates
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as CSV (header row, then data rows), with
// the ID/title/claim as comment lines.
func (t Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "# claim: %s\n", t.Claim)
	}
	writeRow := func(cells []string) {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		fmt.Fprintln(w, strings.Join(quoted, ","))
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// fm formats a float compactly.
func fm(v float64, prec int) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// fe formats in scientific notation.
func fe(v float64) string { return fmt.Sprintf("%.2e", v) }

// E1Tradeoff builds the motivation table: reach, power, and reliability of
// every technology at 800G.
func E1Tradeoff() (Table, error) {
	t := tableFor("E1")
	t.Columns = []string{"tech", "reach_m", "power_W", "pJ/bit", "link_FIT"}
	rows, err := core.DefaultDesign().CompareTechnologies(800e9)
	if err != nil {
		return t, err
	}
	for _, r := range rows {
		t.AddRow(r.Tech.String(), fm(r.ReachM, 1), fm(r.PowerW, 2),
			fm(r.PJPerBit, 2), fm(r.LinkFIT, 1))
	}
	t.Notes = "power is per transceiver pair, host serdes excluded (identical across techs)"
	return t, nil
}

// E2PowerBreakdown builds the per-component power budgets at 800G and the
// headline reduction figure.
func E2PowerBreakdown() (Table, error) {
	t := tableFor("E2")
	t.Columns = []string{"tech", "component", "power_W", "share"}
	for _, tech := range power.AllTechs() {
		b, err := power.PerBudget(tech, 800e9)
		if err != nil {
			return t, err
		}
		total := b.TotalW()
		for _, c := range b.SortedComponents() {
			share := "-"
			if total > 0 {
				share = fm(c.PowerW/total*100, 1) + "%"
			}
			t.AddRow(tech.String(), c.Name, fm(c.PowerW, 3), share)
		}
		t.AddRow(tech.String(), "TOTAL", fm(total, 2), "100%")
	}
	red, err := power.Reduction(power.Mosaic, power.DR, 800e9)
	if err != nil {
		return t, err
	}
	t.Notes = fmt.Sprintf("Mosaic vs DR reduction at 800G: %.1f%%", red*100)
	return t, nil
}

// E3PowerScaling sweeps aggregate rate for every technology.
func E3PowerScaling() (Table, error) {
	t := tableFor("E3")
	t.Columns = []string{"rate_Gbps", "DAC_W", "AOC_W", "DR_W", "LPO_W", "CPO_W", "Mosaic_W", "Mosaic_vs_DR"}
	for _, rate := range power.SupportedRates() {
		row := []string{fm(rate/1e9, 0)}
		var drW, moW float64
		for _, tech := range power.AllTechs() {
			b, err := power.PerBudget(tech, rate)
			if err != nil {
				return t, err
			}
			row = append(row, fm(b.TotalW(), 2))
			if tech == power.DR {
				drW = b.TotalW()
			}
			if tech == power.Mosaic {
				moW = b.TotalW()
			}
		}
		row = append(row, fmt.Sprintf("-%.0f%%", (1-moW/drW)*100))
		t.AddRow(row...)
	}
	return t, nil
}

// E4ReachBudget sweeps fiber length for the Mosaic channel and contrasts
// the copper reach wall.
func E4ReachBudget() (Table, error) {
	t := tableFor("E4")
	t.Columns = []string{"length_m", "rx_dBm", "BER", "margin_dB"}
	d := core.DefaultDesign()
	for _, l := range []float64{1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80} {
		dd := d
		dd.LengthM = l
		res, err := dd.NominalChannel()
		if err != nil {
			return t, err
		}
		t.AddRow(fm(l, 0), fm(res.RxPowerDBm, 1), fe(res.BER), fm(res.MarginDB, 1))
	}
	reach := d.MaxReach(1e-12)
	copper := channel.Twinax26AWG().MaxReach(channel.NyquistHz(106.25e9, channel.PAM4), 28)
	t.Notes = fmt.Sprintf("Mosaic reach @1e-12: %.1f m; 112G-PAM4 copper: %.1f m; ratio %.0fx",
		reach, copper, reach/copper)
	return t, nil
}

// E6Misalignment sweeps lateral connector offset.
func E6Misalignment() (Table, error) {
	t := tableFor("E6")
	t.Columns = []string{"offset_um", "coupling_loss_dB", "neighbor_leak_dB", "BER@30m"}
	d := core.DefaultDesign()
	d.LengthM = 30
	for _, off := range []float64{0, 2, 5, 8, 10, 12, 15, 20, 25, 30} {
		dd := d
		dd.LateralOffsetM = off * 1e-6
		loss := d.Fiber.CouplingLossDB(d.SpotDiameterM, off*1e-6)
		leak := d.Fiber.MisalignedNeighborLeakDB(d.SpotDiameterM, off*1e-6, d.ChannelPitchM)
		t.AddRow(fm(off, 0), fm(loss, 2), fm(leak, 1), fe(dd.NominalBER()))
	}
	t.Notes = "single-mode optics require ~0.5 um alignment; Mosaic tolerates ~10 um"
	return t, nil
}

// E7Reliability sweeps spare count and compares against laser links.
func E7Reliability() (Table, error) {
	t := tableFor("E7")
	t.Columns = []string{"config", "FIT", "5yr_survival", "downtime_s/yr(MTTR24h)"}
	const mission = 5 * reliability.HoursPerYear
	dr8 := reliability.LinkFIT(reliability.FITLaserDFB, 8)
	aoc := reliability.LinkFIT(reliability.FITLaserVCSEL, 8)
	t.AddRow("DR8 (8x DFB)", fm(float64(dr8), 0), fm(dr8.SurvivalProb(mission), 4), "-")
	t.AddRow("AOC (8x VCSEL)", fm(float64(aoc), 0), fm(aoc.SurvivalProb(mission), 4), "-")
	for _, spares := range []int{0, 2, 4, 8, 16} {
		sys := reliability.MosaicSystem(400, spares)
		fit := reliability.MosaicLinkFIT(400, spares, mission)
		rep := reliability.RepairableSystem{SparedSystem: sys, MTTRHours: 24}
		avail, err := rep.Availability()
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("Mosaic 400+%d", spares), fm(float64(fit), 1),
			fm(sys.SurvivalProb(mission), 6),
			fm(reliability.DowntimeSecondsPerYear(avail), 3))
	}
	return t, nil
}

// E8ScalingTable builds the configuration table across aggregate rates.
func E8ScalingTable() (Table, error) {
	t := tableFor("E8")
	t.Columns = []string{"rate_Gbps", "channels", "spares", "pitch_um", "fits_bundle", "power_W", "pJ/bit"}
	for _, rate := range power.SupportedRates() {
		data := int(rate / power.MosaicChannelRate)
		total := power.MosaicChannels(rate)
		d := core.DefaultDesign()
		d.AggregateRate = rate
		d.Spares = total - data
		// Choose the densest standard pitch that fits.
		pitch := 50e-6
		for _, p := range []float64{50e-6, 35e-6, 25e-6, 18e-6} {
			if d.Fiber.MaxChannels(p) >= total {
				pitch = p
				break
			}
		}
		d.ChannelPitchM = pitch
		d.SpotDiameterM = pitch * 0.8
		fits := "yes"
		if d.Fiber.MaxChannels(pitch) < total {
			fits = "NO"
		}
		b, err := power.PerBudget(power.Mosaic, rate)
		if err != nil {
			return t, err
		}
		t.AddRow(fm(rate/1e9, 0), fmt.Sprintf("%d", data), fmt.Sprintf("%d", total-data),
			fm(pitch*1e6, 0), fits, fm(b.TotalW(), 2), fm(b.PJPerBit(), 2))
	}
	return t, nil
}

// E9SweetSpot sweeps per-channel rate at fixed 800G aggregate.
func E9SweetSpot() (Table, error) {
	t := tableFor("E9")
	t.Columns = []string{"chan_rate_Gbps", "channels", "pJ/bit", "per_chan_mW"}
	for _, r := range []float64{0.5e9, 1e9, 2e9, 3e9, 5e9, 8e9, 12.5e9, 25e9, 50e9} {
		n := int(math.Ceil(800e9 / r))
		t.AddRow(fm(r/1e9, 1), fmt.Sprintf("%d", n),
			fm(power.EnergyPerBitPJ(r), 2), fm(power.ChannelPowerW(r)*1e3, 2))
	}
	t.Notes = fmt.Sprintf("energy minimum at %.1f Gbps/channel", power.SweetSpotRate()/1e9)
	return t, nil
}
