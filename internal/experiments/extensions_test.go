package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestE13Thermal(t *testing.T) {
	tab, err := E13Temperature()
	render(t, tab, err)
	// At 340K+ the DFB must be dark while the LED penalty stays < 2 dB.
	for i := range tab.Rows {
		temp := cellF(t, tab, i, 0)
		if temp == 340 {
			if cell(tab, i, 3) != "inf(dark)" {
				t.Errorf("DFB at 340K should be dark, got %s", cell(tab, i, 3))
			}
			if led := cellF(t, tab, i, 1); led > 2 {
				t.Errorf("LED penalty at 340K = %v dB", led)
			}
		}
	}
	// LED penalty monotone in temperature.
	prev := -1.0
	for i := range tab.Rows {
		led := cellF(t, tab, i, 1)
		if led < prev {
			t.Fatal("LED penalty not monotone")
		}
		prev = led
	}
}

func TestE14LatencyShape(t *testing.T) {
	tab, err := E14Latency()
	render(t, tab, err)
	var dac, dsp, mosaicSmall, mosaicBig float64
	for i := range tab.Rows {
		name := cell(tab, i, 0)
		total := cellF(t, tab, i, 4)
		switch {
		case strings.HasPrefix(name, "DAC"):
			dac = total
		case strings.HasPrefix(name, "DR/AOC"):
			dsp = total
		case name == "Mosaic unit=63B":
			mosaicSmall = total
		case name == "Mosaic unit=495B":
			mosaicBig = total
		}
	}
	if !(dac < dsp && dsp < mosaicBig) {
		t.Errorf("latency ordering: dac %v dsp %v mosaicBig %v", dac, dsp, mosaicBig)
	}
	if !(mosaicSmall < mosaicBig) {
		t.Error("smaller units should cut Mosaic latency")
	}
	// Small-unit Mosaic within ~3x of DSP optics (the knob works).
	if mosaicSmall > dsp*3 {
		t.Errorf("small-unit Mosaic %v too far above DSP %v", mosaicSmall, dsp)
	}
}

func TestE15CostCrossovers(t *testing.T) {
	tab, err := E15Cost()
	render(t, tab, err)
	for i := range tab.Rows {
		l := cellF(t, tab, i, 0)
		cheapest := cell(tab, i, 7)
		switch {
		case l <= 2:
			if cheapest != "DAC" {
				t.Errorf("at %vm cheapest = %s, want DAC", l, cheapest)
			}
		case l <= 50:
			if cheapest != "Mosaic" {
				t.Errorf("at %vm cheapest = %s, want Mosaic", l, cheapest)
			}
		default:
			if cheapest == "Mosaic" || cheapest == "DAC" {
				t.Errorf("at %vm cheapest = %s, want conventional optics", l, cheapest)
			}
		}
		// DAC must be n/a beyond its reach.
		if l > 2.5 && cell(tab, i, 1) != "n/a" {
			t.Errorf("DAC at %vm should be n/a", l)
		}
	}
}

func TestE16BlastRadius(t *testing.T) {
	tab, err := E16BlastRadius(1)
	render(t, tab, err)
	conv, mosaic := tab.Rows[0], tab.Rows[1]
	// Both healthy columns must be full delivery.
	if conv[1] != "100/100" || mosaic[1] != "100/100" {
		t.Fatalf("healthy runs not clean: %v / %v", conv[1], mosaic[1])
	}
	// One death: conventional collapses, Mosaic barely notices.
	if conv[2] != "0/100" {
		t.Errorf("conventional after death = %s, want total collapse", conv[2])
	}
	var got int
	if _, err := fmt.Sscanf(mosaic[2], "%d/100", &got); err != nil || got < 95 {
		t.Errorf("mosaic after death = %s, want >=95/100", mosaic[2])
	}
	// Repair: both deliver again, but only Mosaic at full rate.
	if !strings.Contains(conv[3], "700G") || !strings.Contains(mosaic[3], "800G") {
		t.Errorf("repair annotations wrong: %q / %q", conv[3], mosaic[3])
	}
}

func TestE17Equalization(t *testing.T) {
	tab, err := E17Equalization()
	render(t, tab, err)
	taps := map[string]string{}
	for _, r := range tab.Rows {
		taps[r[0]] = r[3]
	}
	if taps["Mosaic 2G NRZ (LED+RX)"] != "0" {
		t.Errorf("Mosaic taps = %s, want 0", taps["Mosaic 2G NRZ (LED+RX)"])
	}
	if taps["copper 2m @53Gbaud"] == "0" {
		t.Error("112G copper should need an equalizer")
	}
	// Equalizer burden grows with copper length.
	t1, _ := strconv.Atoi(taps["copper 1m @53Gbaud"])
	t3, _ := strconv.Atoi(taps["copper 3m @53Gbaud"])
	if !(t3 >= t1) {
		t.Errorf("taps should grow with length: 1m=%d 3m=%d", t1, t3)
	}
}

func TestA5ModulationShape(t *testing.T) {
	tab, err := A5Modulation()
	render(t, tab, err)
	reach := func(name string) float64 {
		for i := range tab.Rows {
			if cell(tab, i, 0) == name {
				v, err := strconv.ParseFloat(cell(tab, i, 5), 64)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("missing row %s", name)
		return 0
	}
	nrz2, pam4, nrz4 := reach("NRZ 2G"), reach("PAM4 4G"), reach("NRZ 4G")
	if !(nrz2 > nrz4 && nrz4 > pam4) {
		t.Errorf("reach ordering: nrz2 %v nrz4 %v pam4 %v", nrz2, nrz4, pam4)
	}
	// PAM4's eye penalty should cost well over 15 m of reach vs NRZ at the
	// same symbol rate... (4G PAM4 = 2Gbaud, same as 2G NRZ).
	if nrz2-pam4 < 15 {
		t.Errorf("PAM4 reach penalty only %v m", nrz2-pam4)
	}
}
