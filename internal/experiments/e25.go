package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mosaic/internal/faultinject"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// E25ARQGoodput pits the two ARQ disciplines against each other on the
// same lossy Mosaic link: a recurring burst-loss schedule corrupts PHY
// frames mid-run while periodic incast spikes pile fresh packets onto
// the send queue. Go-back-N answers every burst with a whole-window
// replay that crowds fresh data out of the superframe budget; selective
// repeat retransmits only the slots that actually died and parks the
// survivors in its reorder buffer, so the same schedule costs it far
// less goodput. The third scenario runs SR over three QoS-classed
// virtual channels to show the weighted scheduler holding the
// high-priority channel's queue short through the incast spikes.
func E25ARQGoodput(seed int64) (Table, error) {
	return e25WithWorkers(seed, 0)
}

// e25Scenario is one table row: an ARQ discipline plus a VC layout.
type e25Scenario struct {
	name      string
	arq       mac.ARQKind
	vcs       int
	classes   []uint8
	vcPackets []int // nil = PacketsPerSF on VC 0
}

// e25Schedule is the burst-loss pattern: four elevated-BER bursts on
// different channels, spaced so each one lands while the previous
// recovery (and at least one incast spike) is still in flight.
func e25Schedule() faultinject.Schedule {
	return faultinject.Schedule{Events: []faultinject.Event{
		{At: 8, Kind: faultinject.KindBurst, Channel: 3, BER: 8e-3, Duration: 6},
		{At: 20, Kind: faultinject.KindBurst, Channel: 7, BER: 8e-3, Duration: 6},
		{At: 34, Kind: faultinject.KindBurst, Channel: 11, BER: 8e-3, Duration: 6},
		{At: 50, Kind: faultinject.KindBurst, Channel: 5, BER: 8e-3, Duration: 6},
	}}
}

// e25WithWorkers is the worker-count-parameterized core so the
// determinism test can pin the rendered table — including the event-log
// hash of the multi-VC run in the notes — at any PHY pool size.
func e25WithWorkers(seed int64, workers int) (Table, error) {
	t := tableFor("E25")
	t.Columns = []string{"scenario", "queued", "delivered", "goodput_Mbps",
		"retx", "timeouts", "stalls", "disc", "reord"}

	var logSHA string
	var vcNote string
	for _, sc := range []e25Scenario{
		{name: "gbn-1vc", arq: mac.ARQGoBackN, vcs: 1},
		{name: "sr-1vc", arq: mac.ARQSelectiveRepeat, vcs: 1},
		{name: "sr-3vc-qos", arq: mac.ARQSelectiveRepeat, vcs: 3,
			classes: []uint8{0, 1, 2}, vcPackets: []int{10, 6, 4}},
	} {
		res, err := runE25Scenario(seed, workers, sc)
		if err != nil {
			return t, err
		}
		goodput := float64(res.B.Delivered) * float64(e25PacketLen) * 8 /
			(float64(res.Superframes) * float64(e25Interval)) / 1e6
		t.AddRow(sc.name,
			fmt.Sprintf("%d", res.A.PacketsQueued),
			fmt.Sprintf("%d", res.B.Delivered),
			fm(goodput, 1),
			fmt.Sprintf("%d", res.A.Retransmits),
			fmt.Sprintf("%d", res.A.Timeouts),
			fmt.Sprintf("%d", res.A.CreditStalls),
			fmt.Sprintf("%d", res.B.Discarded),
			fmt.Sprintf("%d", res.B.Reordered))
		if sc.name == "sr-3vc-qos" {
			h := sha256.Sum256([]byte(strings.Join(res.Log, "\n") + "\n" + res.Summary()))
			logSHA = hex.EncodeToString(h[:8])
			parts := make([]string, len(res.BVCs))
			for vc, v := range res.BVCs {
				parts[vc] = fmt.Sprintf("vc%d(class %d)=%d", vc, v.Class, v.Delivered)
			}
			vcNote = strings.Join(parts, " ")
		}
	}
	t.Notes = "four 8e-3 BER bursts + incast every " + fmt.Sprintf("%d", e25BurstEvery) +
		" sf; same offered load everywhere; multi-vc delivered " + vcNote +
		"; mac event log sha256[:8]=" + logSHA + " (byte-identical at any phy worker count)"
	return t, nil
}

// Fixed scenario parameters, shared so the goodput denominator and the
// notes stay in one place.
const (
	e25Superframes = 80
	e25Interval    = sim.Time(1e-5)
	e25PacketLen   = 150
	e25PerSF       = 20
	e25BurstEvery  = 8
	e25BurstPkts   = 30
	e25Window      = 64
)

// runE25Scenario runs one session: a 16-lane full-duplex pair with the
// burst-loss schedule on the forward link and incast spikes on VC 0.
// Window and payload budget are pinned identically across scenarios so
// the only variable is the ARQ discipline (and the VC layout).
func runE25Scenario(seed int64, workers int, sc e25Scenario) (*mac.Result, error) {
	eng := sim.NewEngine(seed)
	fwd, err := phy.New(phy.Config{
		Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
		PerChannelBitRate: 2e9, Seed: seed + 100, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	rev, err := phy.New(phy.Config{
		Lanes: 16, Spares: 2, FEC: phy.NewRSLite(), UnitLen: 63,
		PerChannelBitRate: 2e9, Seed: seed + 200, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	pc := mac.PairConfig{PHYFrameLen: 120}
	pc.Endpoint.ARQ = sc.arq
	pc.Endpoint.VCs = sc.vcs
	pc.Endpoint.VCClass = sc.classes
	pc.Endpoint.Window = e25Window
	// A few frames of slack over the steady per-tick load: the average
	// offered load (steady + amortized incast) sits just under the
	// budget, so go-back-N's whole-window replays displace fresh frames
	// the link never gets back, while selective repeat's per-slot
	// retransmissions fit in the slack.
	pc.Endpoint.PayloadBudget = (e25PerSF + 6) * (e25PacketLen + mac.OverheadV2)
	sess, err := mac.NewSession(mac.SessionConfig{
		Engine:       eng,
		Fwd:          fwd,
		Rev:          rev,
		Pair:         pc,
		Schedule:     e25Schedule(),
		Superframes:  e25Superframes,
		Interval:     e25Interval,
		PacketsPerSF: e25PerSF,
		VCPackets:    sc.vcPackets,
		BurstEvery:   e25BurstEvery,
		BurstPackets: e25BurstPkts,
		PacketLen:    e25PacketLen,
		Seed:         seed + 300,
	})
	if err != nil {
		return nil, err
	}
	eng.Run()
	res := sess.Result()
	if res.Err != "" {
		return res, fmt.Errorf("experiments: E25 mac session (%s): %s", sc.name, res.Err)
	}
	return res, nil
}
