package experiments

import "testing"

func TestE22SoakAgreesWithClosedForm(t *testing.T) {
	// The generator itself fails hard when any spare level drifts outside
	// the Monte-Carlo band, so a clean run IS the cross-validation; the
	// assertions below check the table's shape and physics on top.
	tab, err := E22SparingSoak(1)
	render(t, tab, err)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 spare levels", len(tab.Rows))
	}
	prev := -1.0
	for i := range tab.Rows {
		sim := cellF(t, tab, i, 2)
		closed := cellF(t, tab, i, 3)
		absErr := cellF(t, tab, i, 4)
		tol := cellF(t, tab, i, 5)
		if absErr > tol {
			t.Errorf("row %d: abs_err %.3f > tol %.3f", i, absErr, tol)
		}
		// More spares must never hurt closed-form survival, and the
		// simulated value must track it (monotone within tolerance).
		if closed < prev {
			t.Errorf("row %d: closed form decreased with more spares", i)
		}
		if sim < prev-tol {
			t.Errorf("row %d: simulated survival fell with more spares", i)
		}
		prev = closed
	}
	// The zero-spare link must be strictly less survivable than 4 spares.
	if !(cellF(t, tab, 0, 3) < cellF(t, tab, 3, 3)) {
		t.Error("sparing bought nothing")
	}
	// Every configuration saw real faults reach the pipeline.
	for i := range tab.Rows {
		if cellF(t, tab, i, 6) <= 0 {
			t.Errorf("row %d: no remaps recorded", i)
		}
	}
}
