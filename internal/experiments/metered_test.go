package experiments

import (
	"strings"
	"testing"

	"mosaic/internal/telemetry"
)

// RunMetered's contract: the telemetry registry observes every generator
// run, and the generated tables are byte-identical with telemetry on or
// off (timings flow into the registry only, never into a table).

func TestRunMeteredRecordsRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	ids := []string{"E1", "E2", "E8"}
	results, err := RunMetered(ids, 1, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	snap := reg.Snapshot()
	for _, id := range ids {
		key := `mosaic_experiment_runs_total{experiment="` + id + `"}`
		if snap.Counters[key] != 1 {
			t.Errorf("%s = %d, want 1", key, snap.Counters[key])
		}
	}
	hv, ok := snap.Histograms["mosaic_experiment_duration_seconds"]
	if !ok || hv.Count != uint64(len(ids)) {
		t.Errorf("duration histogram = %+v, want count %d", hv, len(ids))
	}
	for _, id := range ids {
		key := `mosaic_experiment_last_duration_seconds{experiment="` + id + `"}`
		if d, ok := snap.Gauges[key]; !ok || d < 0 {
			t.Errorf("%s = (%g, %v), want a non-negative duration", key, d, ok)
		}
	}
	// No generator failed, so no error counters exist.
	for key := range snap.Counters {
		if strings.HasPrefix(key, "mosaic_experiment_errors_total") {
			t.Errorf("unexpected error counter %s", key)
		}
	}
}

func TestRunMeteredOutputMatchesRun(t *testing.T) {
	ids := []string{"E1", "E9"}
	plain, err := Run(ids, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	metered, err := RunMetered(ids, 7, 2, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	render := func(rs []Result) string {
		var sb strings.Builder
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
			r.Table.Fprint(&sb)
		}
		return sb.String()
	}
	if a, b := render(plain), render(metered); a != b {
		t.Errorf("tables differ with telemetry enabled:\n--- plain ---\n%s\n--- metered ---\n%s", a, b)
	}
}
