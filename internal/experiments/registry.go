package experiments

import (
	"fmt"
	"sync"
	"time"

	"mosaic/internal/telemetry"
)

// Experiment is one registered experiment: static metadata (usable
// without running anything — listing is O(1)) plus the generator that
// produces its table. Generators take the run seed explicitly, so every
// experiment owns its random state and a parallel run is exactly as
// deterministic as a serial one.
type Experiment struct {
	ID    string
	Title string
	Claim string // the abstract's wording this experiment validates
	Kind  string // KindPaper, KindAblation, or KindScenario
	Gen   func(seed int64) (Table, error)
}

// Experiment kinds: the registry carries three families and callers
// (mosaicbench -list, the conformance CI job) enumerate them
// separately.
const (
	KindPaper    = "paper"    // reproduces a claim from the source paper
	KindAblation = "ablation" // isolates one design choice
	KindScenario = "scenario" // scenario-library run (internal/scenario)
)

// unseeded adapts a deterministic (seedless) generator to the registry
// signature.
func unseeded(f func() (Table, error)) func(int64) (Table, error) {
	return func(int64) (Table, error) { return f() }
}

// registry is the single source of experiment metadata, in presentation
// order. Generators obtain their Table skeleton from it via tableFor, so
// an ID/title/claim lives in exactly one place. (Filled in init: the
// generators themselves call tableFor, which reads the registry, and a
// composite-literal initializer would be an initialization cycle.)
var registry []Experiment

func init() {
	paper := []Experiment{
		{
			ID:    "E1",
			Title: "the reach/power/reliability trade-off at 800G",
			Claim: "copper: power-efficient and reliable but <2m; optics: long reach, high power, low reliability; Mosaic: breaks the trade-off",
			Gen:   unseeded(E1Tradeoff),
		},
		{
			ID:    "E2",
			Title: "component power breakdown at 800G",
			Claim: "\"reducing power consumption by up to 69%\"",
			Gen:   unseeded(E2PowerBreakdown),
		},
		{
			ID:    "E3",
			Title: "transceiver power vs aggregate rate",
			Claim: "the optics/copper power gap widens with speed; Mosaic scales like copper",
			Gen:   unseeded(E3PowerScaling),
		},
		{
			ID:    "E4",
			Title: "link budget and BER vs reach",
			Claim: "\"over [25x] the reach of copper ... reach of up to 50m\"",
			Gen:   unseeded(E4ReachBudget),
		},
		{
			ID:    "E5",
			Title: "per-channel BER distribution, 100-channel prototype",
			Claim: "\"an end-to-end Mosaic prototype with 100 optical channels, each transmitting at 2Gbps\"",
			Gen:   E5PrototypeBER,
		},
		{
			ID:    "E6",
			Title: "misalignment tolerance and crosstalk",
			Claim: "massively multi-core imaging fibers make spatial multiplexing practical (coarse alignment suffices)",
			Gen:   unseeded(E6Misalignment),
		},
		{
			ID:    "E7",
			Title: "link reliability vs spare channels (5-year mission)",
			Claim: "\"offering higher reliability than today's optical links\"",
			Gen:   unseeded(E7Reliability),
		},
		{
			ID:    "E8",
			Title: "scaling configurations at 2 Gbps/channel",
			Claim: "\"scales to 800Gbps and beyond\"",
			Gen:   unseeded(E8ScalingTable),
		},
		{
			ID:    "E9",
			Title: "the wide-and-slow sweet spot (800G aggregate)",
			Claim: "hundreds of parallel low-speed channels beat a few high-speed ones on energy",
			Gen:   unseeded(E9SweetSpot),
		},
		{
			ID:    "E10",
			Title: "bit-true end-to-end pipeline vs reach (100ch x 2G, RS-lite FEC)",
			Claim: "error-free end-to-end operation at the prototype point; graceful FEC takeover toward max reach",
			Gen:   E10EndToEnd,
		},
		{
			ID:    "E11",
			Title: "network-wide link power and failures (800G links)",
			Claim: "seamless integration with existing infrastructure; fleet-level power and reliability win",
			Gen:   unseeded(E11Datacenter),
		},
		{
			ID:    "E12",
			Title: "flow completion times under a mid-run link fault (fat-tree k=8, websearch load 0.4)",
			Claim: "channel failures degrade capacity gracefully instead of killing the link",
			Gen:   E12Degradation,
		},
		{
			ID:    "E13",
			Title: "thermal behaviour: microLED vs lasers",
			Claim: "directly-modulated microLEDs eliminate power-hungry, temperature-fragile lasers",
			Gen:   unseeded(E13Temperature),
		},
		{
			ID:    "E14",
			Title: "one-way link latency at 800G (module/PHY only, excl. flight time ~5ns/m)",
			Claim: "protocol-agnostic integration — latency is set by architecture, not distance class",
			Gen:   unseeded(E14Latency),
		},
		{
			ID:    "E15",
			Title: "deployed 800G link cost vs length (modules + cable)",
			Claim: "a practical and scalable link solution (display/endoscopy supply chains)",
			Gen:   unseeded(E15Cost),
		},
		{
			ID:    "E16",
			Title: "failure blast radius: one dead transmitter, 800G aggregate",
			Claim: "a laser death is a link death; a microLED death is 0.25% of capacity (and spared)",
			Gen:   E16BlastRadius,
		},
		{
			ID:    "E17",
			Title: "equalization burden (FFE taps to reach ISI <= 0.3)",
			Claim: "eliminating ... complex electronics: 2 Gbps channels need no equalization at all",
			Gen:   unseeded(E17Equalization),
		},
		{
			ID:    "E18",
			Title: "FEC waterfall on the bit-true link (frame delivery vs channel BER)",
			Claim: "light FEC turns the residual error floor into error-free operation",
			Gen:   E18Waterfall,
		},
		{
			ID:    "E19",
			Title: "imaging-optics budget: lens choice and focus tolerance vs reach",
			Claim: "massively multi-core imaging fibers + simple imaging optics make spatial multiplexing practical",
			Gen:   unseeded(E19OpticsBudget),
		},
		{
			ID:    "E20",
			Title: "fleet TCO: link capex + 5-year energy opex (800G links)",
			Claim: "a practical and scalable link solution for the future of networking",
			Gen:   unseeded(E20FleetTCO),
		},
		{
			ID:    "E21",
			Title: "predictive maintenance: aging channel, proactive vs reactive sparing",
			Claim: "per-channel FEC telemetry turns graceful LED aging into zero-loss replacement",
			Gen:   E21PredictiveMaintenance,
		},
		{
			ID:    "E22",
			Title: "fault-injection soak: pipeline survival vs k-of-n closed form",
			Claim: "channel sparing turns device death into an invisible remap — validated end-to-end, not just in FIT math",
			Gen:   E22SparingSoak,
		},
		{
			ID:    "E23",
			Title: "fleet aging under load: MAC renegotiation vs copper link-down (fat-tree k=8)",
			Claim: "the MAC closes the loop: monitor transitions drive sparing and capacity renegotiation, so aging shaves lanes instead of stranding hosts",
			Gen:   E23MACRenegotiation,
		},
		{
			ID:    "E24",
			Title: "fleet scale: 12-pod diurnal day with continuous microLED aging (sharded incremental engine)",
			Claim: "the sharded engine holds >100k concurrent flows over 1752 links byte-identically at any worker count, while sampled links prove the aging model against real MAC bring-up",
			Gen:   E24FleetScale,
		},
		{
			ID:    "E25",
			Title: "ARQ discipline under burst loss + incast: go-back-N vs selective repeat vs multi-VC QoS",
			Claim: "a wide-and-slow link loses channels in bursts, not all at once — selective repeat retransmits only what died, and QoS-classed virtual channels keep priority traffic flowing through incast",
			Gen:   E25ARQGoodput,
		},
	}
	ablations := []Experiment{
		{
			ID:    "A1",
			Title: "ablation: oversampled core groups vs single-core mapping",
			Claim: "design choice: a channel = a group of cores, so alignment is coarse",
			Gen:   unseeded(A1Oversampling),
		},
		{
			ID:    "A2",
			Title: "ablation: per-channel FEC choice (100ch link, artificial BER)",
			Claim: "design choice: wide-and-slow channels need only a light FEC",
			Gen:   A2FECChoice,
		},
		{
			ID:    "A3",
			Title: "ablation: stripe-unit size (framing overhead vs blast radius)",
			Claim: "design choice: per-channel frames balance overhead against loss blast radius",
			Gen:   A3UnitSize,
		},
		{
			ID:    "A4",
			Title: "ablation: sparing policy under successive channel deaths (20 lanes)",
			Claim: "design choice: spares absorb failures invisibly, then the link degrades instead of dying",
			Gen:   A4SparingPolicy,
		},
		{
			ID:    "A5",
			Title: "ablation: per-channel modulation (NRZ vs PAM4 at equal aggregate)",
			Claim: "design choice: stay at NRZ and scale width, not symbol density",
			Gen:   unseeded(A5Modulation),
		},
	}
	for i := range paper {
		paper[i].Kind = KindPaper
	}
	for i := range ablations {
		ablations[i].Kind = KindAblation
	}
	// Presentation order: paper experiments, then the scenario library
	// (E26, E27, ... — auto-registered from internal/scenario, so a new
	// library entry gets a table, a seed, and a determinism pin for
	// free), then ablations.
	registry = append(registry, paper...)
	registry = append(registry, scenarioExperiments()...)
	registry = append(registry, ablations...)
}

// Kinds returns the distinct experiment kinds in presentation order
// (first appearance wins).
func Kinds() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range registry {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			out = append(out, e.Kind)
		}
	}
	return out
}

// ByKind returns the registered experiments of one kind, in
// presentation order.
func ByKind(kind string) []Experiment {
	var out []Experiment
	for _, e := range registry {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Registry returns the registered experiments in presentation order.
// The slice is a copy; the metadata is shared and must not be mutated.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tableFor returns a Table skeleton prefilled with the registered
// metadata for id. It panics on an unregistered ID: generators and the
// registry are maintained together, so a miss is a programming error.
func tableFor(id string) Table {
	e, ok := Lookup(id)
	if !ok {
		panic("experiments: no registry entry for " + id)
	}
	return Table{ID: e.ID, Title: e.Title, Claim: e.Claim}
}

// Result is one generated experiment: the metadata, its table, and the
// generator error if any (Run does not stop on generator errors — a
// broken experiment should not hide the other 25).
type Result struct {
	Experiment Experiment
	Table      Table
	Err        error
}

// Run generates the experiments named by ids (all of them if ids is
// empty) with the given seed, fanning the generators out over up to par
// goroutines (par <= 1 runs serially). Results always come back in
// registry order, regardless of completion order. Unknown IDs make Run
// fail before any generator starts.
func Run(ids []string, seed int64, par int) ([]Result, error) {
	return RunMetered(ids, seed, par, nil)
}

// RunMetered is Run with optional telemetry: when reg is non-nil, each
// generator's wall-clock duration lands in the
// mosaic_experiment_duration_seconds histogram and a per-experiment
// last-duration gauge, alongside run and error counters. Timings are
// wall-clock and therefore nondeterministic — they flow only into the
// registry, never into a table, so the generated output stays
// byte-identical with telemetry on or off. The registry is safe for the
// concurrent generators a par > 1 run spawns.
func RunMetered(ids []string, seed int64, par int, reg *telemetry.Registry) ([]Result, error) {
	sel := make([]int, 0, len(registry))
	if len(ids) == 0 {
		for i := range registry {
			sel = append(sel, i)
		}
	} else {
		chosen := make(map[int]bool, len(ids))
		for _, id := range ids {
			found := false
			for i, e := range registry {
				if e.ID == id {
					chosen[i] = true
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown experiment %q", id)
			}
		}
		for i := range registry {
			if chosen[i] {
				sel = append(sel, i)
			}
		}
	}

	var durations *telemetry.Histogram
	if reg != nil {
		reg.Help("mosaic_experiment_duration_seconds", "wall-clock generator duration per experiment run")
		reg.Help("mosaic_experiment_runs_total", "experiment generator invocations")
		durations = reg.Histogram("mosaic_experiment_duration_seconds", telemetry.DurationBuckets())
	}

	results := make([]Result, len(sel))
	gen := func(k int) {
		e := registry[sel[k]]
		start := time.Now()
		tab, err := e.Gen(seed)
		if reg != nil {
			d := time.Since(start).Seconds()
			durations.Observe(d)
			reg.Gauge("mosaic_experiment_last_duration_seconds", "experiment", e.ID).Set(d)
			reg.Counter("mosaic_experiment_runs_total", "experiment", e.ID).Inc()
			if err != nil {
				reg.Counter("mosaic_experiment_errors_total", "experiment", e.ID).Inc()
			}
		}
		results[k] = Result{Experiment: e, Table: tab, Err: err}
	}
	if par <= 1 || len(sel) == 1 {
		for k := range sel {
			gen(k)
		}
		return results, nil
	}
	if par > len(sel) {
		par = len(sel)
	}
	// Slot-indexed results: workers may finish in any order, the output
	// order is fixed by sel.
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for k := range work {
				gen(k)
			}
		}()
	}
	for k := range sel {
		work <- k
	}
	close(work)
	wg.Wait()
	return results, nil
}
