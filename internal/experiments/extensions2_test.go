package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func pct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestE18WaterfallShape(t *testing.T) {
	tab, err := E18Waterfall(1)
	render(t, tab, err)
	// Each column must be non-increasing in BER, and FEC columns must
	// dominate the unprotected column everywhere.
	for col := 1; col <= 4; col++ {
		prev := 101.0
		for i := range tab.Rows {
			v := pct(t, cell(tab, i, col))
			if v > prev+5 { // allow small statistical wiggle
				t.Fatalf("col %d not roughly monotone at row %d", col, i)
			}
			prev = v
		}
	}
	for i := range tab.Rows {
		raw := pct(t, cell(tab, i, 1))
		for col := 2; col <= 4; col++ {
			if pct(t, cell(tab, i, col)) < raw-5 {
				t.Fatalf("FEC column %d below unprotected at row %d", col, i)
			}
		}
	}
	// At 1e-5, unprotected visibly suffers while every FEC is perfect.
	for i := range tab.Rows {
		if cell(tab, i, 0) == "1.00e-05" {
			if pct(t, cell(tab, i, 1)) > 95 {
				t.Error("unprotected at 1e-5 should lose frames")
			}
			if pct(t, cell(tab, i, 3)) != 100 {
				t.Error("rslite at 1e-5 should be perfect")
			}
		}
	}
}

func TestE20TCO(t *testing.T) {
	tab, err := E20FleetTCO()
	render(t, tab, err)
	tco := map[string]map[string]float64{}
	for i := range tab.Rows {
		fabric, plan := cell(tab, i, 0), cell(tab, i, 1)
		if tco[fabric] == nil {
			tco[fabric] = map[string]float64{}
		}
		tco[fabric][plan] = cellF(t, tab, i, 4)
	}
	for fabric, plans := range tco {
		// All-optics must be the most expensive everywhere.
		if !(plans["mosaic"] < plans["all-optics"]) ||
			!(plans["DAC+optics"] < plans["all-optics"]) {
			t.Errorf("%s: all-optics should be costliest: %v", fabric, plans)
		}
		for plan, v := range plans {
			if v <= 0 {
				t.Errorf("%s/%s: nonpositive TCO", fabric, plan)
			}
		}
	}
}

func TestE21Maintenance(t *testing.T) {
	tab, err := E21PredictiveMaintenance(1)
	render(t, tab, err)
	last := tab.Rows[len(tab.Rows)-1]
	proLost, _ := strconv.Atoi(last[1])
	reaLost, _ := strconv.Atoi(last[3])
	if proLost != 0 {
		t.Errorf("proactive link lost %d frames", proLost)
	}
	if reaLost <= proLost {
		t.Errorf("reactive link should pay in frames: %d vs %d", reaLost, proLost)
	}
	// Proactive replacement must happen before the BER gets dangerous.
	for i := range tab.Rows {
		if cell(tab, i, 0) == "1.00e-05" && cell(tab, i, 2) != "replaced" {
			t.Error("proactive link should replace at 1e-5")
		}
	}
}

func TestE19OpticsShape(t *testing.T) {
	tab, err := E19OpticsBudget()
	render(t, tab, err)
	reach := map[string]float64{}
	for i := range tab.Rows {
		name := cell(tab, i, 0)
		if cell(tab, i, 3) == "unbuildable" {
			continue
		}
		reach[name] = cellF(t, tab, i, 3)
	}
	nominal := reach["nominal (NA 0.5, beamed 3x)"]
	if nominal < 40 {
		t.Errorf("nominal optics reach = %v", nominal)
	}
	// Losing the beaming or the lens NA must cost serious reach.
	if !(reach["plain Lambertian emitter"] < nominal-10) {
		t.Errorf("Lambertian reach %v should be well below nominal %v",
			reach["plain Lambertian emitter"], nominal)
	}
	if !(reach["cheap lens (NA 0.3)"] < nominal-10) {
		t.Errorf("cheap lens reach %v should be well below nominal %v",
			reach["cheap lens (NA 0.3)"], nominal)
	}
	// Defocus to 200 µm must remain essentially free (the tolerance claim).
	if d := reach["defocus 200 um"]; d < nominal-3 {
		t.Errorf("200um defocus reach = %v vs nominal %v", d, nominal)
	}
}
