package diffcheck

import (
	"os"
	"strconv"
	"testing"
)

// TestDiffQuick is the tier-1 differential smoke: a small corpus over
// every stage at two worker counts. It keeps the harness itself honest
// on every `go test ./...` without the cost of the deep run.
func TestDiffQuick(t *testing.T) {
	rep := Run(Options{Seed: 1, Cases: 4, Size: 4, Workers: []int{1, 2}})
	if !rep.OK() {
		t.Fatalf("differential smoke diverged: %s", rep.First())
	}
	if rep.TotalCases == 0 {
		t.Fatal("differential smoke ran no cases")
	}
}

// TestDiffDeep is the full differential corpus behind `make verify-deep`:
// at least 200 cases per stage across at least three worker counts,
// enabled by MOSAIC_VERIFY_DEEP=1. MOSAIC_DIFF_CASES overrides the case
// count and MOSAIC_DIFF_OUT names the JSON artifact written when a
// divergence is found (for the CI upload).
func TestDiffDeep(t *testing.T) {
	if os.Getenv("MOSAIC_VERIFY_DEEP") == "" {
		t.Skip("deep differential corpus: set MOSAIC_VERIFY_DEEP=1 (make verify-deep)")
	}
	cases := 200
	if v := os.Getenv("MOSAIC_DIFF_CASES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad MOSAIC_DIFF_CASES %q", v)
		}
		cases = n
	}
	seed := int64(1)
	if v := os.Getenv("MOSAIC_DIFF_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad MOSAIC_DIFF_SEED %q", v)
		}
		seed = n
	}
	rep := Run(Options{Seed: seed, Cases: cases, Workers: []int{1, 2, 0}})
	t.Logf("deep differential run: %d cases across %d stages, %d divergences",
		rep.TotalCases, len(rep.Stages), rep.Diverged)
	if rep.OK() {
		return
	}
	if out := os.Getenv("MOSAIC_DIFF_OUT"); out != "" {
		if err := WriteJSON(out, rep); err != nil {
			t.Errorf("writing divergence artifact: %v", err)
		} else {
			t.Logf("divergence artifact written to %s", out)
		}
	}
	t.Fatalf("differential corpus diverged: %s", rep.First())
}
