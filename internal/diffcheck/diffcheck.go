// Package diffcheck is the differential verification harness: it drives
// the optimized PHY/MAC hot paths and the naive reference models in
// internal/refmodel over seeded random corpora and reports the first
// stage where they diverge. Every case is derived deterministically from
// (seed, case index, size scalar), so a divergence is a three-number
// repro; the runner additionally minimizes the size scalar before
// reporting, giving the smallest input that still shows the bug.
//
// The stages mirror the pipeline decomposition:
//
//	scrambler  — x^58 scrambler/descrambler vs bit-history reference
//	bsc_skip   — geometric skip-sampling channel vs bit-walking twin
//	rs_encode  — LFSR RS encoder vs root-condition linear solve
//	rs_decode  — BM/Chien/Forney decoder vs brute-force subset search
//	rs_vector  — vectorized byte-stream RS (table-XOR encode, clean
//	             shortcut, parity-verified extract) vs reference byte FEC
//	framer     — channel framer hunt/FEC/CRC vs field-by-field reference
//	striper    — stripe index arithmetic vs explicit unit dealing
//	mac_frame  — MAC deframer (v1 and v2 headers) vs naive scanner
//	mac_llr    — go-back-N endpoint vs lockstep reference state machine
//	mac_sr     — selective-repeat endpoint (sack bitmaps, bounded reorder
//	             buffer) vs a naive map-based twin
//	mac_vc     — multi-virtual-channel endpoint (per-VC seq/ack spaces,
//	             weighted round-robin QoS) vs the same twin
//	pipeline   — full Exchange vs serial reference pipeline, across
//	             worker counts, noise, skew, dead channels and sparing
//	flowsim_inc — incremental dirty-set flow engine vs the always-global
//	             max-min reference, bitwise, over randomized
//	             arrival/kill/restore/degrade traces
//
// A passing deep run (make verify-deep) certifies that a perf-oriented
// change preserved bit-exact behaviour; a failing one names the stage
// and the repro seed.
package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// DefaultSize is the base size scalar: stage inputs scale linearly in it.
const DefaultSize = 8

// StageNames lists every differential stage in pipeline order.
var StageNames = []string{
	"scrambler", "bsc_skip", "rs_encode", "rs_decode", "rs_vector", "framer",
	"striper", "mac_frame", "mac_llr", "mac_sr", "mac_vc", "pipeline",
	"flowsim_inc",
}

// Options configures a differential run.
type Options struct {
	Seed  int64 // corpus seed; every case derives from it
	Cases int   // cases per stage (0 = 25)
	Size  int   // base size scalar (0 = DefaultSize)
	// Workers lists the worker counts the pipeline stage must agree
	// across (nil = {1, 2, 0}; 0 means GOMAXPROCS).
	Workers []int
	// Stages restricts the run (nil = all of StageNames).
	Stages []string
	// MaxDivergences stops a stage after this many minimized divergences
	// (0 = 3); the first one is what matters, the rest are context.
	MaxDivergences int
}

func (o Options) withDefaults() Options {
	if o.Cases <= 0 {
		o.Cases = 25
	}
	if o.Size <= 0 {
		o.Size = DefaultSize
	}
	if o.Workers == nil {
		o.Workers = []int{1, 2, 0}
	}
	if o.Stages == nil {
		o.Stages = StageNames
	}
	if o.MaxDivergences <= 0 {
		o.MaxDivergences = 3
	}
	return o
}

// Divergence is one minimized disagreement between the optimized path
// and the reference model. Seed/Case/Size reproduce it exactly.
type Divergence struct {
	Stage   string `json:"stage"`
	Seed    int64  `json:"seed"`
	Case    int    `json:"case"`
	Size    int    `json:"size"`
	Workers int    `json:"workers,omitempty"` // pipeline stage only
	Detail  string `json:"detail"`
}

func (d Divergence) String() string {
	s := fmt.Sprintf("stage=%s seed=%d case=%d size=%d", d.Stage, d.Seed, d.Case, d.Size)
	if d.Stage == "pipeline" {
		s += fmt.Sprintf(" workers=%d", d.Workers)
	}
	return s + ": " + d.Detail
}

// StageResult is one stage's outcome.
type StageResult struct {
	Stage       string       `json:"stage"`
	Cases       int          `json:"cases"`
	Divergences []Divergence `json:"divergences,omitempty"`
}

// Report is a full differential run.
type Report struct {
	Seed       int64         `json:"seed"`
	Size       int           `json:"size"`
	Workers    []int         `json:"workers"`
	Stages     []StageResult `json:"stages"`
	TotalCases int           `json:"total_cases"`
	Diverged   int           `json:"diverged"`
}

// OK reports whether the run found no divergence.
func (r Report) OK() bool { return r.Diverged == 0 }

// First returns the first divergence in pipeline-stage order, or nil.
func (r Report) First() *Divergence {
	for i := range r.Stages {
		if len(r.Stages[i].Divergences) > 0 {
			return &r.Stages[i].Divergences[0]
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON, the artifact format the
// CI verify-deep job uploads on failure.
func WriteJSON(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// stageFunc runs one case of one stage and returns a human-readable
// description of the divergence, or "" when the paths agree. Workers is
// meaningful only for the pipeline stage.
type stageFunc func(seed int64, caseIdx, size, workers int) string

var stageFuncs = map[string]stageFunc{
	"scrambler":   diffScrambler,
	"bsc_skip":    diffBSCSkip,
	"rs_encode":   diffRSEncode,
	"rs_decode":   diffRSDecode,
	"rs_vector":   diffRSVector,
	"framer":      diffFramer,
	"striper":     diffStriper,
	"mac_frame":   diffMACFrame,
	"mac_llr":     diffMACLLR,
	"mac_sr":      diffMACSR,
	"mac_vc":      diffMACVC,
	"pipeline":    diffPipeline,
	"flowsim_inc": diffFlowSimInc,
}

// Run executes the configured stages and returns the report. Every
// divergence is minimized: the runner re-derives the same case at
// smaller size scalars and reports the smallest one that still differs.
func Run(opts Options) Report {
	opts = opts.withDefaults()
	rep := Report{Seed: opts.Seed, Size: opts.Size, Workers: opts.Workers}
	for _, name := range opts.Stages {
		fn, ok := stageFuncs[name]
		if !ok {
			rep.Stages = append(rep.Stages, StageResult{
				Stage: name,
				Divergences: []Divergence{{
					Stage: name, Seed: opts.Seed,
					Detail: "unknown stage (valid: " + fmt.Sprint(StageNames) + ")",
				}},
			})
			rep.Diverged++
			continue
		}
		res := StageResult{Stage: name}
		workerSet := []int{0}
		if name == "pipeline" {
			workerSet = opts.Workers
		}
		for c := 0; c < opts.Cases && len(res.Divergences) < opts.MaxDivergences; c++ {
			for _, w := range workerSet {
				detail := fn(opts.Seed, c, opts.Size, w)
				res.Cases++
				if detail == "" {
					continue
				}
				res.Divergences = append(res.Divergences, minimize(name, fn, opts.Seed, c, opts.Size, w, detail))
				rep.Diverged++
				break
			}
		}
		rep.TotalCases += res.Cases
		rep.Stages = append(rep.Stages, res)
	}
	return rep
}

// minimize shrinks the size scalar of a diverging case to the smallest
// value that still diverges (the case derivation is monotone in size, so
// a linear scan from 1 finds the minimum).
func minimize(stage string, fn stageFunc, seed int64, caseIdx, size, workers int, detail string) Divergence {
	for s := 1; s < size; s++ {
		if d := fn(seed, caseIdx, s, workers); d != "" {
			return Divergence{Stage: stage, Seed: seed, Case: caseIdx, Size: s, Workers: workers, Detail: d}
		}
	}
	return Divergence{Stage: stage, Seed: seed, Case: caseIdx, Size: size, Workers: workers, Detail: detail}
}

// caseSeed folds the corpus seed and case index into one RNG seed. The
// multiplier is an arbitrary odd constant; it only needs to separate
// neighbouring cases.
func caseSeed(seed int64, caseIdx int) int64 {
	return seed + int64(caseIdx)*0x9E3779B1
}
