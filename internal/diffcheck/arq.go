package diffcheck

import (
	"bytes"
	"fmt"
	"math/rand"

	"mosaic/internal/mac"
	"mosaic/internal/refmodel"
)

// diffMACSR advances an optimized selective-repeat endpoint pair and the
// naive reference twin in lockstep over an identical deterministic lossy
// link: single VC, per-slot retransmit timers, sack bitmaps, and the
// bounded reorder buffer all in play.
func diffMACSR(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	cfg := mac.Config{
		Window:        2 + rng.Intn(15),
		RetxTimeout:   1 + rng.Intn(4),
		MaxPayload:    32 + rng.Intn(97),
		ARQ:           mac.ARQSelectiveRepeat,
		VCs:           1,
		ReorderWindow: 2 + rng.Intn(15),
	}
	cfg.PayloadBudget = (cfg.MaxPayload + mac.OverheadV2) * (1 + rng.Intn(3))
	return diffMACARQ(rng, cfg, 10*size)
}

// diffMACVC does the same over 2–4 virtual channels with random QoS
// classes, alternating go-back-N and selective repeat so both protocols
// run through the v2 multi-VC framing and the weighted scheduler.
func diffMACVC(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	vcs := 2 + rng.Intn(3)
	classes := make([]uint8, vcs)
	for i := range classes {
		classes[i] = uint8(rng.Intn(mac.NumClasses))
	}
	cfg := mac.Config{
		Window:        2 + rng.Intn(15),
		RetxTimeout:   1 + rng.Intn(4),
		MaxPayload:    32 + rng.Intn(97),
		VCs:           vcs,
		VCClass:       classes,
		ReorderWindow: 2 + rng.Intn(15),
	}
	if rng.Intn(2) == 0 {
		cfg.ARQ = mac.ARQSelectiveRepeat
	} else {
		cfg.ARQ = mac.ARQGoBackN
	}
	cfg.PayloadBudget = (cfg.MaxPayload + mac.OverheadV2) * (2 + rng.Intn(4))
	return diffMACARQ(rng, cfg, 10*size)
}

// diffMACARQ is the shared lockstep harness: optimized pair vs reference
// twin pair over the same loss pattern, demanding byte-identical
// superframes every tick, identical delivered (packet, VC) streams, and
// identical aggregate counters.
func diffMACARQ(rng *rand.Rand, cfg mac.Config, ticks int) string {
	type rx struct {
		vc int
		p  []byte
	}
	var optDelivered []rx
	optA, err := mac.NewEndpointVC(cfg, func(vc int, p []byte) {
		optDelivered = append(optDelivered, rx{vc, append([]byte(nil), p...)})
	})
	if err != nil {
		return "optimized endpoint: " + err.Error()
	}
	optB, err := mac.NewEndpoint(cfg, nil)
	if err != nil {
		return "optimized endpoint: " + err.Error()
	}

	classes := cfg.VCClass
	if classes == nil {
		classes = make([]uint8, cfg.VCs)
	}
	rcfg := refmodel.ARQConfig{
		Window:        cfg.Window,
		RetxTimeout:   cfg.RetxTimeout,
		MaxPayload:    cfg.MaxPayload,
		Budget:        cfg.PayloadBudget,
		SelectiveRep:  cfg.ARQ == mac.ARQSelectiveRepeat,
		Classes:       classes,
		ReorderWindow: cfg.ReorderWindow,
	}
	refA, err := refmodel.NewARQEndpoint(rcfg)
	if err != nil {
		return "reference endpoint: " + err.Error()
	}
	refB, err := refmodel.NewARQEndpoint(rcfg)
	if err != nil {
		return "reference endpoint: " + err.Error()
	}

	for tick := 0; tick < ticks; tick++ {
		if rng.Intn(3) != 0 {
			vc := rng.Intn(cfg.VCs)
			p := make([]byte, 1+rng.Intn(cfg.MaxPayload))
			rng.Read(p)
			if err := optB.SendVC(vc, p); err != nil {
				return "optimized send: " + err.Error()
			}
			if err := refB.SendVC(vc, p); err != nil {
				return "reference send: " + err.Error()
			}
		}
		sfOpt := optB.BuildSuperframe()
		sfRef := refB.BuildSuperframe()
		if i := firstDiff(sfOpt, sfRef); i >= 0 {
			return fmt.Sprintf("tick %d: B->A superframe differs at byte %d", tick, i)
		}
		var chunks [][]byte
		switch rng.Intn(4) {
		case 0: // superframe lost entirely
		case 1: // truncated: a lost PHY frame splices the stream
			chunks = [][]byte{sfOpt[:rng.Intn(len(sfOpt))]}
		default:
			chunks = [][]byte{sfOpt}
		}
		optA.Accept(chunks)
		refA.Accept(chunks)

		backOpt := optA.BuildSuperframe()
		backRef := refA.BuildSuperframe()
		if i := firstDiff(backOpt, backRef); i >= 0 {
			return fmt.Sprintf("tick %d: A->B superframe differs at byte %d", tick, i)
		}
		optB.Accept([][]byte{backOpt})
		refB.Accept([][]byte{backRef})
	}

	for _, side := range []struct {
		name string
		opt  mac.Stats
		ref  refmodel.MACStats
	}{{"A", optA.Stats(), refA.Stats()}, {"B", optB.Stats(), refB.Stats()}} {
		if got := macStatsToRef(side.opt); got != side.ref {
			return fmt.Sprintf("endpoint %s stats: optimized %+v reference %+v", side.name, got, side.ref)
		}
	}
	refDelivered, refVCs := refA.Delivered()
	if len(optDelivered) != len(refDelivered) {
		return fmt.Sprintf("delivered %d packets optimized, %d reference", len(optDelivered), len(refDelivered))
	}
	for i := range optDelivered {
		if optDelivered[i].vc != refVCs[i] {
			return fmt.Sprintf("delivered packet %d on VC %d optimized, VC %d reference",
				i, optDelivered[i].vc, refVCs[i])
		}
		if !bytes.Equal(optDelivered[i].p, refDelivered[i]) {
			return fmt.Sprintf("delivered packet %d differs", i)
		}
	}
	return ""
}
