package diffcheck

import (
	"bytes"
	"fmt"
	"math/rand"

	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/refmodel"
)

// diffMACLLR advances an optimized go-back-N endpoint pair and a
// reference pair in lockstep over an identical deterministic lossy link
// and demands byte-identical superframes at every tick, identical
// delivered packet streams, and identical counters.
func diffMACLLR(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	window := 2 + rng.Intn(15)
	retx := 1 + rng.Intn(4)
	maxPayload := 32 + rng.Intn(97)
	budget := (maxPayload + mac.Overhead) * (1 + rng.Intn(3))

	cfg := mac.Config{Window: window, RetxTimeout: retx, MaxPayload: maxPayload, PayloadBudget: budget}
	var optDelivered [][]byte
	optA, err := mac.NewEndpoint(cfg, func(p []byte) {
		optDelivered = append(optDelivered, append([]byte(nil), p...))
	})
	if err != nil {
		return "optimized endpoint: " + err.Error()
	}
	optB, err := mac.NewEndpoint(cfg, nil)
	if err != nil {
		return "optimized endpoint: " + err.Error()
	}
	refA, err := refmodel.NewLLREndpoint(window, retx, maxPayload, budget)
	if err != nil {
		return "reference endpoint: " + err.Error()
	}
	refB, err := refmodel.NewLLREndpoint(window, retx, maxPayload, budget)
	if err != nil {
		return "reference endpoint: " + err.Error()
	}

	ticks := 10 * size
	for tick := 0; tick < ticks; tick++ {
		if rng.Intn(3) == 0 {
			p := make([]byte, 1+rng.Intn(maxPayload))
			rng.Read(p)
			if err := optB.Send(p); err != nil {
				return "optimized send: " + err.Error()
			}
			if err := refB.Send(p); err != nil {
				return "reference send: " + err.Error()
			}
		}
		sfOpt := optB.BuildSuperframe()
		sfRef := refB.BuildSuperframe()
		if i := firstDiff(sfOpt, sfRef); i >= 0 {
			return fmt.Sprintf("tick %d: B->A superframe differs at byte %d", tick, i)
		}
		var chunks [][]byte
		switch rng.Intn(4) {
		case 0: // superframe lost entirely
		case 1: // truncated: a lost PHY frame splices the stream
			chunks = [][]byte{sfOpt[:rng.Intn(len(sfOpt))]}
		default:
			chunks = [][]byte{sfOpt}
		}
		optA.Accept(chunks)
		refA.Accept(chunks)

		backOpt := optA.BuildSuperframe()
		backRef := refA.BuildSuperframe()
		if i := firstDiff(backOpt, backRef); i >= 0 {
			return fmt.Sprintf("tick %d: A->B superframe differs at byte %d", tick, i)
		}
		optB.Accept([][]byte{backOpt})
		refB.Accept([][]byte{backRef})
	}

	for _, side := range []struct {
		name string
		opt  mac.Stats
		ref  refmodel.MACStats
	}{{"A", optA.Stats(), refA.Stats()}, {"B", optB.Stats(), refB.Stats()}} {
		if got := macStatsToRef(side.opt); got != side.ref {
			return fmt.Sprintf("endpoint %s stats: optimized %+v reference %+v", side.name, got, side.ref)
		}
	}
	refDelivered := refA.Delivered()
	if len(optDelivered) != len(refDelivered) {
		return fmt.Sprintf("delivered %d packets optimized, %d reference", len(optDelivered), len(refDelivered))
	}
	for i := range optDelivered {
		if !bytes.Equal(optDelivered[i], refDelivered[i]) {
			return fmt.Sprintf("delivered packet %d differs", i)
		}
	}
	return ""
}

func macStatsToRef(s mac.Stats) refmodel.MACStats {
	return refmodel.MACStats{
		PacketsQueued: s.PacketsQueued,
		DataTx:        s.DataTx,
		Retransmits:   s.Retransmits,
		AcksTx:        s.AcksTx,
		DataRx:        s.DataRx,
		Delivered:     s.Delivered,
		Duplicates:    s.Duplicates,
		Discarded:     s.Discarded,
		Reordered:     s.Reordered,
		AcksRx:        s.AcksRx,
		SacksRx:       s.SacksRx,
		UnknownVC:     s.UnknownVC,
		CreditStalls:  s.CreditStalls,
		Timeouts:      s.Timeouts,
		InFlight:      s.InFlight,
		QueueDepth:    s.QueueDepth,
		ReorderDepth:  s.ReorderDepth,
		Deframe: refmodel.MACDeframeStats{
			Frames:        s.Deframe.Frames,
			PayloadBytes:  s.Deframe.PayloadBytes,
			IdleBytes:     s.Deframe.IdleBytes,
			SkippedBytes:  s.Deframe.SkippedBytes,
			HeaderRejects: s.Deframe.HeaderRejects,
			CRCRejects:    s.Deframe.CRCRejects,
			Truncated:     s.Deframe.Truncated,
		},
	}
}

// diffPipeline runs the full optimized Exchange against the serial
// reference pipeline. The case derivation depends only on
// (seed, caseIdx, size) so the same traffic, noise, skew, dead channels
// and fault schedule replay at every worker count; the reference side
// injects noise through BSC replicas seeded with the link's own formula,
// so when the optimized TX bytes are correct the random draws align and
// the comparison is byte-exact end to end.
func diffPipeline(seed int64, caseIdx, size, workers int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	lanes := 2 + rng.Intn(5)
	spares := rng.Intn(3)
	unitLen := 9 * []int{3, 7}[rng.Intn(2)]
	var optFEC phy.FEC
	var refFEC refmodel.FECRef
	if rng.Intn(2) == 0 {
		optFEC, refFEC = phy.NoFEC{}, refmodel.NoFECRef{}
	} else {
		optFEC, refFEC = phy.NewRSLite(), refmodel.NewRSLiteRef()
	}
	linkSeed := caseSeed(seed, caseIdx) ^ 0x5ca1ab1e

	link, err := phy.New(phy.Config{
		Lanes: lanes, Spares: spares, FEC: optFEC, UnitLen: unitLen,
		PerChannelBitRate: 2e9, Seed: linkSeed, Workers: workers,
	})
	if err != nil {
		return "link construction: " + err.Error()
	}

	// Replica channels for the reference side, seeded with the link's own
	// per-channel formula so the noise streams match draw for draw.
	total := lanes + spares
	replicas := make([]*phy.BSC, total)
	for i := range replicas {
		replicas[i] = phy.NewBSC(0, linkSeed+int64(i)*7919)
	}
	setBER := func(ch int, ber float64) {
		link.SetChannelBER(ch, ber)
		replicas[ch].BER = link.ChannelBER(ch)
	}
	setSkew := func(ch, bytes int) {
		link.SetChannelSkew(ch, bytes)
		replicas[ch].SkewBytes = bytes
	}

	// Channel conditions: a mix of clean, noisy, and skewed channels,
	// including BERs heavy enough to lose whole units so the zero-gap
	// reassembly path runs.
	for ch := 0; ch < total; ch++ {
		switch rng.Intn(4) {
		case 0:
			setBER(ch, []float64{1e-5, 1e-4, 1e-3, 1e-2}[rng.Intn(4)])
		case 1:
			setSkew(ch, rng.Intn(5))
		}
	}

	// Fault schedule: optionally kill one channel partway through, let
	// the dead channel shred its lane's traffic for a detection delay,
	// then remap the lane to a spare — mirroring how the monitor needs a
	// few superframes to condemn a channel.
	exchanges := 2 + size/3
	faultAt := -1
	faultCh := -1
	repairAt := -1
	if spares > 0 && rng.Intn(2) == 0 {
		faultAt = rng.Intn(exchanges)
		faultCh = rng.Intn(lanes)
		repairAt = faultAt + 1 + rng.Intn(3)
	}

	tx := func(physical int, wire []byte) []byte {
		return replicas[physical].Transmit(wire)
	}

	for x := 0; x < exchanges; x++ {
		if x == faultAt {
			link.KillChannel(faultCh)
			replicas[faultCh].Dead = true
		}
		if x == repairAt {
			link.FailChannel(faultCh)
		}
		nFrames := rng.Intn(4)
		frames := make([][]byte, nFrames)
		for i := range frames {
			frames[i] = make([]byte, 3+rng.Intn(20*size))
			rng.Read(frames[i])
		}

		optOut, optStats, optErr := link.Exchange(frames)

		activeLanes := link.Mapper().NumLanes()
		laneMap := make([]int, activeLanes)
		for lane := range laneMap {
			laneMap[lane] = link.Mapper().Physical(lane)
		}
		refOut, refStats, refErr := refmodel.ExchangeRef(refmodel.PipelineConfig{
			Lanes: activeLanes, UnitLen: unitLen, FEC: refFEC,
		}, laneMap, tx, frames)

		if (optErr == nil) != (refErr == nil) {
			return fmt.Sprintf("exchange %d: optimized err=%v reference err=%v", x, optErr, refErr)
		}
		if optErr != nil {
			continue
		}
		if len(optOut) != len(refOut) {
			return fmt.Sprintf("exchange %d: delivered %d frames optimized, %d reference", x, len(optOut), len(refOut))
		}
		for i := range optOut {
			if !bytes.Equal(optOut[i], refOut[i]) {
				return fmt.Sprintf("exchange %d: delivered frame %d differs", x, i)
			}
		}
		if d := exchangeStatsDiff(optStats, refStats); d != "" {
			return fmt.Sprintf("exchange %d: %s", x, d)
		}
	}
	return ""
}

// exchangeStatsDiff compares an optimized ExchangeStats against the
// reference PipelineStats field by field.
func exchangeStatsDiff(opt phy.ExchangeStats, ref refmodel.PipelineStats) string {
	type pair struct {
		name     string
		opt, ref int
	}
	for _, p := range []pair{
		{"FramesIn", opt.FramesIn, ref.FramesIn},
		{"FramesDelivered", opt.FramesDelivered, ref.FramesDelivered},
		{"FramesLost", opt.FramesLost, ref.FramesLost},
		{"FramesCorrupted", opt.FramesCorrupted, ref.FramesCorrupted},
		{"UnitsTotal", opt.UnitsTotal, ref.UnitsTotal},
		{"UnitsLost", opt.UnitsLost, ref.UnitsLost},
		{"Corrections", opt.Corrections, ref.Corrections},
		{"WireBytes", opt.WireBytes, ref.WireBytes},
		{"PayloadBytes", opt.PayloadBytes, ref.PayloadBytes},
	} {
		if p.opt != p.ref {
			return fmt.Sprintf("%s is %d optimized, %d reference", p.name, p.opt, p.ref)
		}
	}
	if len(opt.PerChannel) != len(ref.PerChannel) {
		return fmt.Sprintf("PerChannel covers %d channels optimized, %d reference", len(opt.PerChannel), len(ref.PerChannel))
	}
	for ch, st := range opt.PerChannel {
		got := refmodel.DecodeStats{
			Frames:       st.Frames,
			CRCFailures:  st.CRCFailures,
			FECOverloads: st.FECOverloads,
			Corrections:  st.Corrections,
			SkippedBytes: st.SkippedBytes,
		}
		if got != ref.PerChannel[ch] {
			return fmt.Sprintf("channel %d stats: optimized %+v reference %+v", ch, got, ref.PerChannel[ch])
		}
	}
	return ""
}
