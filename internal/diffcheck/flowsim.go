package diffcheck

import (
	"fmt"
	"math/rand"

	"mosaic/internal/netsim"
	"mosaic/internal/refmodel"
	"mosaic/internal/sim"
)

// diffFlowSimInc drives the incremental flow engine (IncFlowSim: per-link
// flow indices, dirty-set component waterfill, completion heap) through a
// randomized trace of arrivals, link kills/restores, capacity fractions,
// batched bursts, and time advances, and after every mutation compares
// every active flow's rate bit-for-bit against refmodel.MaxMinRates — the
// always-global progressive-filling twin. Exact equality (not epsilon) is
// the contract: the component-restricted waterfill performs the same
// float operations in the same order as a global fill restricted to that
// component, so any difference is a real bug, not rounding.
func diffFlowSimInc(seed int64, caseIdx, size, workers int) string {
	_ = workers
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx) ^ 0x0f10351b))

	// Alternate topology families so both the single-domain and the
	// pods-plus-core link structures are covered.
	var (
		topo *netsim.Topology
		err  error
	)
	if caseIdx%2 == 0 {
		topo, err = netsim.NewLeafSpine(2+rng.Intn(size), 1+rng.Intn(2+size/4), 1+rng.Intn(3), 100e9)
	} else {
		topo, err = netsim.NewFleet(2+rng.Intn(2), 1+rng.Intn(size), 1+rng.Intn(2+size/4), 1+rng.Intn(3), 100e9)
	}
	if err != nil {
		return fmt.Sprintf("topology: %v", err)
	}
	hosts := topo.Hosts()
	if len(hosts) < 2 {
		return ""
	}

	eng := sim.NewEngine(caseSeed(seed, caseIdx))
	fs := netsim.NewIncFlowSim(topo, eng)

	steps := 6 * size
	inBatch := false
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(100); {
		case op < 45: // arrival, sometimes weighted
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			w := 1.0
			if rng.Intn(4) == 0 {
				w = 0.5 + rng.Float64()*3
			}
			_, _ = fs.StartFlowWeighted(src, dst, (0.1+rng.Float64())*1e9, rng.Uint64(), w)
		case op < 60: // advance time, let completions fire
			if !inBatch {
				eng.RunUntil(eng.Now() + sim.Time(rng.Float64()*0.02))
			}
		case op < 72: // kill a link
			fs.FailLink(rng.Intn(len(topo.Links)))
		case op < 84: // restore a link
			fs.RestoreLink(rng.Intn(len(topo.Links)))
		case op < 94: // degrade a link
			fs.SetLinkCapacityFraction(rng.Intn(len(topo.Links)), rng.Float64())
		default: // toggle batch mode (burst application)
			if inBatch {
				fs.CommitBatch()
				inBatch = false
			} else {
				fs.BeginBatch()
				inBatch = true
			}
		}
		if inBatch {
			continue // rates are intentionally stale inside a batch
		}
		if detail := compareIncToRef(fs); detail != "" {
			return fmt.Sprintf("step %d: %s", s, detail)
		}
	}
	if inBatch {
		fs.CommitBatch()
		if detail := compareIncToRef(fs); detail != "" {
			return fmt.Sprintf("final commit: %s", detail)
		}
	}
	return ""
}

// compareIncToRef recomputes the global reference allocation for the
// engine's current flow set and demands bitwise rate equality.
func compareIncToRef(fs *netsim.IncFlowSim) string {
	states := fs.FlowStates()
	flows := make([]refmodel.RefFlow, len(states))
	for i, st := range states {
		flows[i] = refmodel.RefFlow{ID: st.ID, Path: st.Path, Weight: st.Weight}
	}
	want := refmodel.MaxMinRates(fs.Capacities(), flows)
	for _, st := range states {
		if st.Rate != want[st.ID] {
			return fmt.Sprintf("flow %d (%d active): incremental rate %.17g != refmodel %.17g",
				st.ID, len(states), st.Rate, want[st.ID])
		}
	}
	return ""
}
