package diffcheck_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/coding/linecode"
	"mosaic/internal/coding/rs"
	"mosaic/internal/mac"
	"mosaic/internal/photonics"
	"mosaic/internal/phy"
	"mosaic/internal/reliability"
	"mosaic/internal/units"
)

// Property and metamorphic suites for the physics and coding layers:
// instead of pinning golden values, these assert relationships that must
// hold for any correct implementation — monotonicity, round-trip
// identity, bounded error propagation, and closed-form agreement.

// mosaicOperatingPoint builds the paper's per-channel optical link at a
// given path loss.
func mosaicOperatingPoint(pathLossDB float64) channel.OpticalParams {
	led := photonics.DefaultMicroLED()
	i := led.NominalCurrent()
	return channel.OpticalParams{
		TxPowerW:          led.OpticalPower(i) / 2,
		TxBandwidthHz:     led.Bandwidth(i),
		WavelengthM:       led.WavelengthM,
		RINdBHz:           led.RINdBHz,
		ExtinctionRatioDB: 12,
		PathLossDB:        pathLossDB,
		MediumBWHz:        5e9,
		CrosstalkDB:       channel.NoCrosstalk(),
		Rx:                photonics.MosaicReceiver(),
		BitRate:           2e9,
		Modulation:        channel.NRZ,
	}
}

// TestBERMonotoneInSNR sweeps path loss upward (SNR downward) and
// requires the analog model's Q to fall and BER to rise monotonically.
func TestBERMonotoneInSNR(t *testing.T) {
	prevQ := 0.0
	prevBER := 0.0
	for step := 0; step <= 30; step++ {
		loss := 1 + float64(step) // 1..31 dB
		r, err := mosaicOperatingPoint(loss).Evaluate()
		if err != nil {
			t.Fatalf("loss %.0f dB: %v", loss, err)
		}
		if step > 0 {
			if r.Q > prevQ {
				t.Fatalf("Q rose from %.3f to %.3f as path loss grew to %.0f dB", prevQ, r.Q, loss)
			}
			if r.BER < prevBER {
				t.Fatalf("BER fell from %.3g to %.3g as path loss grew to %.0f dB", prevBER, r.BER, loss)
			}
		}
		prevQ, prevBER = r.Q, r.BER
	}
	// The Q <-> BER mapping itself must be anti-monotone.
	for q := 1.0; q < 10; q += 0.5 {
		if units.BERFromQ(q) <= units.BERFromQ(q+0.5) {
			t.Fatalf("BERFromQ not decreasing at Q=%.1f", q)
		}
	}
}

// TestFECWaterfallMonotoneInDistance injects e symbol errors into RS
// codes of growing minimum distance and requires (a) guaranteed success
// inside each code's error budget and (b) a decode success rate that is
// non-decreasing in the code distance at every error weight.
func TestFECWaterfallMonotoneInDistance(t *testing.T) {
	codes := []struct {
		n, k int
	}{{68, 64}, {68, 60}, {68, 56}} // t = 2, 4, 6
	const trials = 60
	rng := rand.New(rand.NewSource(21))
	// success[c][e] = decodes that returned the transmitted codeword.
	success := make([][]int, len(codes))
	for ci, nk := range codes {
		code, err := rs.Lite(nk.n, nk.k)
		if err != nil {
			t.Fatal(err)
		}
		success[ci] = make([]int, 9)
		for e := 0; e <= 8; e++ {
			for trial := 0; trial < trials; trial++ {
				data := make([]int, nk.k)
				for i := range data {
					data[i] = rng.Intn(256)
				}
				cw, err := code.Encode(data)
				if err != nil {
					t.Fatal(err)
				}
				recv := append([]int(nil), cw...)
				for _, pos := range rng.Perm(nk.n)[:e] {
					recv[pos] ^= 1 + rng.Intn(255)
				}
				out, _, err := code.Decode(recv)
				ok := err == nil
				if ok {
					for i := range out {
						if out[i] != cw[i] {
							ok = false
							break
						}
					}
				}
				if ok {
					success[ci][e]++
				}
				if e <= code.T() && !ok {
					t.Fatalf("RS(%d,%d) failed inside its budget: %d errors (t=%d)", nk.n, nk.k, e, code.T())
				}
			}
		}
	}
	// Waterfall ordering: more distance never decodes worse (small slack
	// for the rare beyond-budget miscorrection of the weaker code).
	const slack = 3
	for ci := 1; ci < len(codes); ci++ {
		for e := 0; e <= 8; e++ {
			if success[ci][e]+slack < success[ci-1][e] {
				t.Fatalf("at %d errors RS(%d,%d) decoded %d/%d but weaker RS(%d,%d) decoded %d/%d",
					e, codes[ci].n, codes[ci].k, success[ci][e], trials,
					codes[ci-1].n, codes[ci-1].k, success[ci-1][e], trials)
			}
		}
	}
}

// TestScramblerErrorPropagationBounded flips one channel bit and
// requires the self-synchronizing descrambler to corrupt at most 3
// output bits (the error itself plus its two taps), everything else
// intact — the property that makes scrambling safe under noise.
func TestScramblerErrorPropagationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 256)
	rng.Read(data)
	const seed = 0x2a5f3c19d4b7e
	clean := linecode.NewScrambler(seed).Scramble(append([]byte(nil), data...))
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), clean...)
		bit := rng.Intn(len(corrupted) * 8)
		corrupted[bit/8] ^= 1 << uint(bit%8)
		out := linecode.NewDescrambler(seed).Descramble(corrupted)
		diffBits := 0
		for i := range out {
			d := out[i] ^ data[i]
			for ; d != 0; d &= d - 1 {
				diffBits++
			}
		}
		if diffBits == 0 || diffBits > 3 {
			t.Fatalf("flipping channel bit %d corrupted %d output bits (want 1..3)", bit, diffBits)
		}
	}
}

// TestMACDeframeCorruptionLocality corrupts only inter-frame fill and
// requires the exact same frames to be recovered: damage outside frame
// extents must never affect framed data (resynchronization locality).
func TestMACDeframeCorruptionLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		var buf []byte
		type extent struct{ start, end int }
		var extents []extent
		var gaps []int
		for i := 0; i < 6; i++ {
			for j := 2 + rng.Intn(10); j > 0; j-- {
				gaps = append(gaps, len(buf))
				buf = append(buf, mac.IdleByte)
			}
			p := make([]byte, rng.Intn(64))
			rng.Read(p)
			start := len(buf)
			buf = mac.AppendFrame(buf, mac.FlagData, uint16(i), uint16(i), p)
			extents = append(extents, extent{start, len(buf)})
		}
		deframe := func(b []byte) ([]mac.Frame, mac.DeframeStats) {
			var frames []mac.Frame
			var d mac.Deframer
			d.Deframe(b, func(f mac.Frame) {
				f.Payload = append([]byte(nil), f.Payload...)
				frames = append(frames, f)
			})
			return frames, d.Stats
		}
		baseline, baseStats := deframe(buf)
		if int(baseStats.Frames) != len(extents) {
			t.Fatalf("clean buffer: recovered %d of %d frames", baseStats.Frames, len(extents))
		}
		// Corrupt a handful of gap bytes only.
		corrupted := append([]byte(nil), buf...)
		for i := 0; i < 4; i++ {
			corrupted[gaps[rng.Intn(len(gaps))]] ^= byte(1 + rng.Intn(255))
		}
		got, _ := deframe(corrupted)
		if len(got) != len(baseline) {
			t.Fatalf("gap corruption changed recovered frame count: %d -> %d", len(baseline), len(got))
		}
		for i := range got {
			if got[i].Seq != baseline[i].Seq || !bytes.Equal(got[i].Payload, baseline[i].Payload) {
				t.Fatalf("gap corruption changed recovered frame %d", i)
			}
		}
	}
}

// TestChannelFrameResyncLocality destroys one channel frame's marker and
// requires every other frame on the stream to survive — one bad frame
// must never poison the rest of the lane.
func TestChannelFrameResyncLocality(t *testing.T) {
	const unitLen = 27
	fr := phy.NewFramer(phy.NewRSLite(), unitLen)
	rng := rand.New(rand.NewSource(24))
	const nFrames = 8
	payloads := make([][]byte, nFrames)
	var stream []byte
	for seq := 0; seq < nFrames; seq++ {
		payloads[seq] = make([]byte, unitLen)
		rng.Read(payloads[seq])
		stream = append(stream, fr.Encode(1, uint32(seq), payloads[seq])...)
	}
	for victim := 0; victim < nFrames; victim++ {
		corrupted := append([]byte(nil), stream...)
		corrupted[victim*fr.WireLen()] ^= 0xFF // kill the marker
		frames, _ := fr.DecodeStream(corrupted)
		seen := make(map[uint32]bool)
		for _, f := range frames {
			seen[f.Seq] = true
			if !bytes.Equal(f.Payload, payloads[f.Seq]) {
				t.Fatalf("victim %d: frame %d recovered with wrong payload", victim, f.Seq)
			}
		}
		for seq := 0; seq < nFrames; seq++ {
			if seq != victim && !seen[uint32(seq)] {
				t.Fatalf("victim %d: innocent frame %d was lost", victim, seq)
			}
		}
	}
}

// TestSparingSurvivalMatchesClosedForm checks the k-of-n sparing model
// three ways: Monte Carlo agrees with the binomial closed form, more
// spares never hurt, and longer missions never help.
func TestSparingSurvivalMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const mission = 10 * reliability.HoursPerYear
	for _, n := range []int{10, 104} {
		prev := -1.0
		for spares := 0; spares <= 4; spares++ {
			s := reliability.SparedSystem{N: n, Spares: spares, PerChannel: 5000}
			closed := s.SurvivalProb(mission)
			if closed < prev {
				t.Fatalf("n=%d: survival fell from %.6f to %.6f when spares grew to %d", n, prev, closed, spares)
			}
			prev = closed
			mc := reliability.MonteCarloSurvival(s, mission, 20000, rng)
			if diff := mc - closed; diff > 0.015 || diff < -0.015 {
				t.Fatalf("n=%d spares=%d: Monte Carlo %.4f vs closed form %.4f", n, spares, mc, closed)
			}
		}
		// Longer missions only lose channels.
		s := reliability.SparedSystem{N: n, Spares: 2, PerChannel: 5000}
		prevR := 1.1
		for years := 1; years <= 16; years *= 2 {
			r := s.SurvivalProb(float64(years) * reliability.HoursPerYear)
			if r > prevR {
				t.Fatalf("n=%d: survival rose from %.6f to %.6f at %d years", n, prevR, r, years)
			}
			prevR = r
		}
	}
}
