package diffcheck

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"mosaic/internal/coding/linecode"
	"mosaic/internal/coding/rs"
	"mosaic/internal/mac"
	"mosaic/internal/phy"
	"mosaic/internal/refmodel"
)

// Byte-level stage runners. Each derives its whole input from
// (seed, caseIdx, size) via one rand.Rand, runs the optimized path and
// the reference model, and describes the first disagreement.

// diffScrambler checks the uint64-register scrambler/descrambler pair
// against the bit-history reference on a random stream.
func diffScrambler(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	data := make([]byte, 1+rng.Intn(64*size))
	rng.Read(data)
	regSeed := rng.Uint64() & (1<<58 - 1)

	opt := linecode.NewScrambler(regSeed).Scramble(append([]byte(nil), data...))
	ref := refmodel.NewScrambler(regSeed).Scramble(data)
	if i := firstDiff(opt, ref); i >= 0 {
		return fmt.Sprintf("scrambled byte %d: optimized %02x reference %02x", i, opt[i], ref[i])
	}
	back := linecode.NewDescrambler(regSeed).Descramble(append([]byte(nil), opt...))
	if i := firstDiff(back, data); i >= 0 {
		return fmt.Sprintf("descramble(scramble(x)) differs from x at byte %d", i)
	}
	refBack := refmodel.NewDescrambler(regSeed).Descramble(ref)
	if i := firstDiff(refBack, data); i >= 0 {
		return fmt.Sprintf("reference descrambler broke round-trip at byte %d", i)
	}
	return ""
}

// rsParams picks a small-t code deterministically per case: the subset
// search keeps the reference decoder fast only for t <= 3.
func rsParams(rng *rand.Rand) (n, k int) {
	switch rng.Intn(3) {
	case 0:
		return 68, 64 // RS-lite, t=2
	case 1:
		return 24, 18 // t=3
	default:
		return 15, 11 // t=2
	}
}

// diffRSEncode checks the LFSR encoder against the linear-solve
// reference on random data words.
func diffRSEncode(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	n, k := rsParams(rng)
	ref, err := refmodel.NewRS(n, k, 0)
	if err != nil {
		return "reference construction: " + err.Error()
	}
	opt, err := rs.Lite(n, k)
	if err != nil {
		return "optimized construction: " + err.Error()
	}
	for trial := 0; trial < size; trial++ {
		data := make([]int, k)
		for i := range data {
			data[i] = rng.Intn(256)
		}
		refCW, err := ref.Encode(data)
		if err != nil {
			return "reference encode: " + err.Error()
		}
		optCW, err := opt.Encode(data)
		if err != nil {
			return "optimized encode: " + err.Error()
		}
		for i := range refCW {
			if refCW[i] != optCW[i] {
				return fmt.Sprintf("RS(%d,%d) trial %d: codeword symbol %d is %d optimized, %d reference",
					n, k, trial, i, optCW[i], refCW[i])
			}
		}
	}
	return ""
}

// diffRSDecode checks the algebraic decoder against brute-force
// bounded-distance search across clean, correctable, and overloaded
// words.
func diffRSDecode(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	n, k := rsParams(rng)
	ref, err := refmodel.NewRS(n, k, 0)
	if err != nil {
		return "reference construction: " + err.Error()
	}
	opt, err := rs.Lite(n, k)
	if err != nil {
		return "optimized construction: " + err.Error()
	}
	for trial := 0; trial < size; trial++ {
		data := make([]int, k)
		for i := range data {
			data[i] = rng.Intn(256)
		}
		cw, err := opt.Encode(data)
		if err != nil {
			return "optimized encode: " + err.Error()
		}
		recv := append([]int(nil), cw...)
		nerr := rng.Intn(ref.T() + 3) // 0..t+2: spans clean, correctable, overloaded
		for _, pos := range rng.Perm(n)[:nerr] {
			recv[pos] ^= 1 + rng.Intn(255)
		}
		refOut, refCorr, refOK := ref.Decode(append([]int(nil), recv...))
		optOut, optCorr, optErr := opt.Decode(append([]int(nil), recv...))
		if refOK != (optErr == nil) {
			return fmt.Sprintf("RS(%d,%d) trial %d (%d errors): reference ok=%v but optimized err=%v",
				n, k, trial, nerr, refOK, optErr)
		}
		if !refOK {
			continue
		}
		if refCorr != optCorr {
			return fmt.Sprintf("RS(%d,%d) trial %d: corrections %d optimized, %d reference",
				n, k, trial, optCorr, refCorr)
		}
		for i := range refOut {
			if refOut[i] != optOut[i] {
				return fmt.Sprintf("RS(%d,%d) trial %d: corrected symbol %d is %d optimized, %d reference",
					n, k, trial, i, optOut[i], refOut[i])
			}
		}
	}
	return ""
}

// diffFramer checks the channel framer (hunt, FEC, CRC, stats) against
// the reference on a stream of frames with random corruption and junk.
func diffFramer(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	unitLen := 9 * (1 + rng.Intn(7))
	var optFEC phy.FEC
	var refFEC refmodel.FECRef
	if rng.Intn(2) == 0 {
		optFEC, refFEC = phy.NoFEC{}, refmodel.NoFECRef{}
	} else {
		optFEC, refFEC = phy.NewRSLite(), refmodel.NewRSLiteRef()
	}
	opt := phy.NewFramer(optFEC, unitLen)
	ref := refmodel.NewFramer(refFEC, unitLen)
	if opt.WireLen() != ref.WireLen() {
		return fmt.Sprintf("wire length %d optimized, %d reference", opt.WireLen(), ref.WireLen())
	}

	var stream []byte
	for seq := 0; seq < 1+size; seq++ {
		payload := make([]byte, unitLen)
		rng.Read(payload)
		lane := rng.Intn(64)
		optWire := opt.Encode(lane, uint32(seq), payload)
		refWire := ref.EncodeFrame(lane, uint32(seq), payload)
		if i := firstDiff(optWire, refWire); i >= 0 {
			return fmt.Sprintf("encoded frame seq %d differs at wire byte %d", seq, i)
		}
		if rng.Intn(4) == 0 { // inter-frame junk to exercise the hunt
			junk := make([]byte, rng.Intn(10))
			rng.Read(junk)
			stream = append(stream, junk...)
		}
		stream = append(stream, optWire...)
	}
	for i := 0; i < size; i++ { // sprinkle corruption
		stream[rng.Intn(len(stream))] ^= byte(1 + rng.Intn(255))
	}

	optFrames, optStats := opt.DecodeStream(stream)
	refFrames, refStats := ref.DecodeStream(stream)
	if got := (refmodel.DecodeStats{
		Frames:       optStats.Frames,
		CRCFailures:  optStats.CRCFailures,
		FECOverloads: optStats.FECOverloads,
		Corrections:  optStats.Corrections,
		SkippedBytes: optStats.SkippedBytes,
	}); got != refStats {
		return fmt.Sprintf("decode stats: optimized %+v reference %+v", got, refStats)
	}
	if len(optFrames) != len(refFrames) {
		return fmt.Sprintf("recovered %d frames optimized, %d reference", len(optFrames), len(refFrames))
	}
	for i := range optFrames {
		o, r := optFrames[i], refFrames[i]
		if o.Lane != r.Lane || o.Seq != r.Seq || o.Corrections != r.Corrections || !bytes.Equal(o.Payload, r.Payload) {
			return fmt.Sprintf("recovered frame %d differs (lane %d/%d seq %d/%d)", i, o.Lane, r.Lane, o.Seq, r.Seq)
		}
	}
	return ""
}

// diffStriper checks the striper's index arithmetic (byte-view striping
// and LaneUnits) against the reference that deals explicit unit records.
func diffStriper(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	lanes := 1 + rng.Intn(12)
	unitLen := 9 * (1 + rng.Intn(4))
	totalUnits := 1 + rng.Intn(8*size)
	stream := make([]byte, totalUnits*unitLen)
	rng.Read(stream)

	perLane, err := refmodel.Stripe(stream, lanes, unitLen)
	if err != nil {
		return "reference stripe: " + err.Error()
	}
	for lane := 0; lane < lanes; lane++ {
		if got, want := phy.LaneUnits(totalUnits, lanes, lane), len(perLane[lane]); got != want {
			return fmt.Sprintf("lane %d: LaneUnits says %d units, reference dealt %d", lane, got, want)
		}
		for _, u := range perLane[lane] {
			// The optimized pipeline's unit (seq, lane) is the byte view
			// stream[(seq*lanes+lane)*unitLen:].
			g := u.Seq*lanes + lane
			view := stream[g*unitLen : (g+1)*unitLen]
			if i := firstDiff(view, u.Payload); i >= 0 {
				return fmt.Sprintf("lane %d seq %d: stripe byte %d differs", lane, u.Seq, i)
			}
		}
	}
	if got := refmodel.Destripe(perLane, totalUnits, unitLen); !bytes.Equal(got, stream) {
		return "destripe(stripe(x)) != x"
	}
	return ""
}

// diffMACFrame checks the MAC deframer (accept/reject taxonomy and
// resync) against the naive reference scanner on a mixed buffer.
func diffMACFrame(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	maxPayload := 64 + rng.Intn(256)
	var buf []byte
	for i := 0; i < 1+size; i++ {
		switch rng.Intn(5) {
		case 0: // idle run
			for j := rng.Intn(12); j > 0; j-- {
				buf = append(buf, mac.IdleByte)
			}
		case 1: // random junk (may contain stray magics)
			junk := make([]byte, rng.Intn(20))
			rng.Read(junk)
			buf = append(buf, junk...)
		case 2: // a real v2 frame with a VC byte
			p := make([]byte, rng.Intn(maxPayload+8)) // sometimes over budget
			rng.Read(p)
			buf = mac.AppendFrameVC(buf, byte(rng.Intn(8)), byte(rng.Intn(mac.MaxVCs)),
				uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16)), p)
		default: // a real v1 frame
			p := make([]byte, rng.Intn(maxPayload+8)) // sometimes over budget
			rng.Read(p)
			buf = mac.AppendFrame(buf, byte(rng.Intn(4)), uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16)), p)
		}
	}
	for i := 0; i < size && len(buf) > 0; i++ {
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
	}

	var optFrames []mac.Frame
	d := mac.Deframer{MaxPayload: maxPayload}
	d.Deframe(buf, func(f mac.Frame) {
		f.Payload = append([]byte(nil), f.Payload...)
		optFrames = append(optFrames, f)
	})
	refFrames, refStats := refmodel.MACDeframe(buf, maxPayload)
	if got := (refmodel.MACDeframeStats{
		Frames:        d.Stats.Frames,
		PayloadBytes:  d.Stats.PayloadBytes,
		IdleBytes:     d.Stats.IdleBytes,
		SkippedBytes:  d.Stats.SkippedBytes,
		HeaderRejects: d.Stats.HeaderRejects,
		CRCRejects:    d.Stats.CRCRejects,
		Truncated:     d.Stats.Truncated,
	}); got != refStats {
		return fmt.Sprintf("deframe stats: optimized %+v reference %+v", got, refStats)
	}
	if len(optFrames) != len(refFrames) {
		return fmt.Sprintf("deframed %d frames optimized, %d reference", len(optFrames), len(refFrames))
	}
	for i := range optFrames {
		o, r := optFrames[i], refFrames[i]
		if o.Flags != r.Flags || o.VC != r.VC || o.Seq != r.Seq || o.Ack != r.Ack || !bytes.Equal(o.Payload, r.Payload) {
			return fmt.Sprintf("deframed frame %d differs", i)
		}
	}
	return ""
}

// diffBSCSkip checks the geometric skip-sampling channel against the
// bit-walking reference twin: same seed, same knobs, byte-identical
// output. Edge regimes are drawn explicitly — ber 0 (clean), ber beyond
// the constructor clamp (every bit flips, no draws), a ber so small the
// first gap overshoots the whole stream, plus skew prefixes and dead
// channels — and two back-to-back transmissions pin the generator state
// carried between calls.
func diffBSCSkip(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	data := make([]byte, 1+rng.Intn(128*size))
	rng.Read(data)
	var ber float64
	switch rng.Intn(6) {
	case 0:
		ber = 0
	case 1:
		ber = 1 // past the clamp, set via the public field below
	case 2:
		ber = 1e-12 // expected gap of ~10^12 bits: overshoots any frame
	case 3:
		ber = 0.5
	default:
		ber = math.Pow(10, -1-6*rng.Float64())
	}
	chanSeed := rng.Int63()
	skew := rng.Intn(17)
	dead := rng.Intn(8) == 0

	opt := phy.NewBSC(ber, chanSeed)
	ref := refmodel.NewBSC(ber, chanSeed)
	opt.BER, ref.BER = ber, ber // bypass the constructor clamp for ber=1
	opt.SkewBytes, ref.SkewBytes = skew, skew
	opt.Dead, ref.Dead = dead, dead

	for round := 0; round < 2; round++ {
		optOut := opt.Transmit(data)
		refOut := ref.Transmit(data)
		if len(optOut) != len(refOut) {
			return fmt.Sprintf("round %d: output length %d optimized, %d reference", round, len(optOut), len(refOut))
		}
		if i := firstDiff(optOut, refOut); i >= 0 {
			return fmt.Sprintf("round %d (ber=%g skew=%d dead=%v): byte %d is %02x optimized, %02x reference",
				round, ber, skew, dead, i, optOut[i], refOut[i])
		}
	}
	return ""
}

// diffRSVector checks the vectorized byte-stream RS path — table-XOR
// slice encode, clean-shortcut decode, and the parity-verified extract —
// against the reference byte FEC over multi-block streams with 0..np+2
// errors per block (spanning clean, correctable, and overloaded words).
func diffRSVector(seed int64, caseIdx, size, _ int) string {
	rng := rand.New(rand.NewSource(caseSeed(seed, caseIdx)))
	n, k := rsParams(rng)
	np := n - k
	refCode, err := refmodel.NewRS(n, k, 0)
	if err != nil {
		return "reference construction: " + err.Error()
	}
	ref := &refmodel.RSByteFEC{Code: refCode}
	code, err := rs.Lite(n, k)
	if err != nil {
		return "optimized construction: " + err.Error()
	}
	opt := phy.NewRSFEC(code)

	blocks := 1 + rng.Intn(3)
	plainLen := 1 + rng.Intn(blocks*k)
	plain := make([]byte, plainLen)
	rng.Read(plain)

	optEnc := opt.Encode(plain)
	refEnc := ref.Encode(plain)
	if i := firstDiff(optEnc, refEnc); i >= 0 {
		return fmt.Sprintf("RS(%d,%d) plainLen %d: encoded byte %d is %02x optimized, %02x reference",
			n, k, plainLen, i, optEnc[i], refEnc[i])
	}

	// The clean stream must take the extract shortcut and reproduce the
	// plaintext (zero-padded tail excluded by plainLen).
	if ext, ok := opt.AppendExtract(nil, optEnc, plainLen); !ok {
		return fmt.Sprintf("RS(%d,%d): extract rejected a clean stream", n, k)
	} else if i := firstDiff(ext, plain); i >= 0 {
		return fmt.Sprintf("RS(%d,%d): clean extract byte %d is %02x, want %02x", n, k, i, ext[i], plain[i])
	}

	// Corrupt each block independently with 0..np+2 byte errors.
	recv := append([]byte(nil), optEnc...)
	total := 0
	for b := 0; b+n <= len(recv); b += n {
		nerr := rng.Intn(np + 3)
		total += nerr
		for _, pos := range rng.Perm(n)[:nerr] {
			recv[b+pos] ^= byte(1 + rng.Intn(255))
		}
	}
	optOut, optCorr, optErr := opt.Decode(recv, plainLen)
	refOut, refCorr, refStatus := ref.Decode(append([]byte(nil), recv...), plainLen)
	if i := firstDiff(optOut, refOut); i >= 0 {
		return fmt.Sprintf("RS(%d,%d) %d errors: decoded byte %d is %02x optimized, %02x reference",
			n, k, total, i, optOut[i], refOut[i])
	}
	if optCorr != refCorr {
		return fmt.Sprintf("RS(%d,%d) %d errors: corrections %d optimized, %d reference", n, k, total, optCorr, refCorr)
	}
	if (optErr != nil) != (refStatus == refmodel.FECOverload) {
		return fmt.Sprintf("RS(%d,%d) %d errors: overload %v optimized, %v reference",
			n, k, total, optErr != nil, refStatus == refmodel.FECOverload)
	}
	// The extract shortcut may only accept when every block is a clean
	// codeword — in which case the full decode above saw zero corrections
	// and no overload, and the bytes must agree with it.
	if ext, ok := opt.AppendExtract(nil, recv, plainLen); ok {
		if optCorr != 0 || optErr != nil {
			return fmt.Sprintf("RS(%d,%d): extract accepted a stream the decoder had to repair (%d corrections, overload %v)",
				n, k, optCorr, optErr != nil)
		}
		if i := firstDiff(ext, optOut); i >= 0 {
			return fmt.Sprintf("RS(%d,%d): extract byte %d is %02x, decode says %02x", n, k, i, ext[i], optOut[i])
		}
	}
	return ""
}

// firstDiff returns the first index where a and b differ (length
// mismatch counts from the shorter length), or -1 when equal.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
