// Package telemetry is the observability layer of the Mosaic reproduction:
// a small, deterministic metrics registry with counters, gauges, and
// fixed-bucket histograms, plus Prometheus-style text exposition and a
// JSON snapshot (expose.go) and an HTTP mux with /metrics, /healthz and
// pprof hooks (http.go).
//
// Design constraints, in order:
//
//  1. Allocation-free on the hot path. Metric handles are created once at
//     setup (Counter/Gauge/Histogram look up or create under a lock);
//     Add/Set/Observe on a handle are single atomic operations with no
//     allocation, so the PHY superframe loop can fold statistics at line
//     rate.
//  2. Race-safe reads. Exposition snapshots the registry under a read
//     lock while values are read atomically, so an HTTP scrape can run
//     concurrently with a soak without tripping the race detector.
//  3. Determinism-neutral. The registry only ever *receives* values; it
//     never feeds anything back into the simulation, so enabling
//     telemetry cannot perturb an experiment table or a soak event log.
//     Exposition output is itself deterministic for a given set of values
//     (metrics sort by name, then label signature).
//
// The registry deliberately implements the subset of the Prometheus data
// model the repo needs — no external dependencies, no global default
// registry, no metric vectors (labels are baked into the handle at
// creation).
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// kind discriminates metric families so a name cannot be reused across
// metric types (which would produce malformed exposition).
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds a process's metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]kind   // family name -> kind
	help     map[string]string // family name -> HELP text
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]kind),
		help:     make(map[string]string),
	}
}

// Help sets the HELP text emitted for a metric family. Optional; call
// once at setup.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	r.help[name] = strings.ReplaceAll(text, "\n", " ")
	r.mu.Unlock()
}

// metricID renders the canonical identity of a metric: the family name
// plus its label pairs sorted by key, in exposition syntax. Two handles
// with the same ID are the same metric.
func metricID(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// validate panics on a malformed name or label set: metric registration
// happens at setup time with literal names, so a bad one is a programming
// error, caught in tests — not a runtime condition to limp past.
func validate(name string, labels []string) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label list (want key,value pairs)", name))
	}
	for i := 0; i < len(labels); i += 2 {
		if !labelRe.MatchString(labels[i]) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label key %q", name, labels[i]))
		}
	}
}

// checkKind enforces one metric type per family name.
func (r *Registry) checkKind(name string, k kind) {
	if have, ok := r.kinds[name]; ok && have != k {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %v, requested %v", name, have, k))
	}
	r.kinds[name] = k
}

// Counter returns the counter with the given family name and label pairs
// (key, value, key, value, ...), creating it on first use. The returned
// handle is shared: every call with the same identity returns the same
// counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	validate(name, labels)
	id := metricID(name, labels)
	r.mu.RLock()
	c, ok := r.counters[id]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	r.checkKind(name, kindCounter)
	c = &Counter{name: name, id: id}
	r.counters[id] = c
	return c
}

// Gauge returns the gauge with the given identity, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	validate(name, labels)
	id := metricID(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[id]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	r.checkKind(name, kindGauge)
	g = &Gauge{name: name, id: id}
	r.gauges[id] = g
	return g
}

// Histogram returns the fixed-bucket histogram with the given identity,
// creating it on first use with the supplied upper bucket bounds (sorted,
// deduplicated; +Inf is implicit). Buckets are fixed at creation — later
// calls with different buckets return the existing histogram unchanged.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	validate(name, labels)
	id := metricID(name, labels)
	r.mu.RLock()
	h, ok := r.hists[id]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	r.checkKind(name, kindHistogram)
	uppers := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		uppers = append(uppers, b)
	}
	sort.Float64s(uppers)
	uppers = dedupeSorted(uppers)
	h = &Histogram{
		name:   name,
		id:     id,
		labels: append([]string(nil), labels...),
		uppers: uppers,
		counts: make([]atomic.Uint64, len(uppers)+1), // last = +Inf overflow
	}
	r.hists[id] = h
	return h
}

// Unregister removes the metric with the given identity from the
// registry, so it stops appearing in exposition. Handles already held
// keep working but write into detached storage. Returns false when no
// metric with that identity exists. The family's kind registration is
// kept, so a later re-registration under the same name must keep the
// same type. Used by fleet-scale callers that attach per-entity labeled
// metrics at admission and detach them at retirement.
func (r *Registry) Unregister(name string, labels ...string) bool {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[id]; ok {
		delete(r.counters, id)
		return true
	}
	if _, ok := r.gauges[id]; ok {
		delete(r.gauges, id)
		return true
	}
	if _, ok := r.hists[id]; ok {
		delete(r.hists, id)
		return true
	}
	return false
}

func dedupeSorted(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Counter is a monotonically increasing uint64. All methods are
// allocation-free and safe for concurrent use.
type Counter struct {
	name string
	id   string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value. All methods are
// allocation-free and safe for concurrent use.
type Gauge struct {
	name string
	id   string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Add adds d (atomically, via compare-and-swap).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is
// allocation-free and safe for concurrent use. A scrape concurrent with
// Observe may see the per-bucket counts slightly ahead of the sum; each
// individual value is still torn-write-free.
type Histogram struct {
	name    string
	id      string
	labels  []string
	uppers  []float64       // sorted upper bounds; +Inf is counts[len(uppers)]
	counts  []atomic.Uint64 // len(uppers)+1
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first upper bound >= v.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default histogram bucketing for wall-clock
// timings in seconds: 1ms to ~100s, log-spaced.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
}

// formatFloat renders a float64 the way both exposition formats need it:
// shortest round-trip representation, with +Inf spelled Prometheus-style.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
