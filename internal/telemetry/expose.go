package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Exposition: the registry renders to the Prometheus text format
// (WritePrometheus) and to a JSON snapshot (Snapshot/WriteJSON). Both are
// deterministic for a given set of metric values: families sort by name,
// metrics within a family sort by their label signature, and JSON maps
// marshal with sorted keys. Rendering takes the registry read lock only
// while gathering handles; values are read atomically, so a scrape never
// blocks the hot path.

// HistogramValue is the JSON snapshot of one histogram.
type HistogramValue struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Uppers are the bucket upper bounds; Counts has one extra entry for
	// the +Inf overflow bucket. Counts are per-bucket (not cumulative).
	Uppers []float64 `json:"uppers"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric, keyed by the metric's
// canonical identity (name plus sorted label pairs). Values are read
// atomically; the snapshot as a whole is not a single consistent cut
// across metrics, which is the usual exposition contract.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramValue, len(hists)),
	}
	for _, c := range counters {
		s.Counters[c.id] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.id] = g.Value()
	}
	for _, h := range hists {
		hv := HistogramValue{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Uppers: append([]float64(nil), h.uppers...),
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[h.id] = hv
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// row is one pre-rendered sample line plus the key it sorts under: the
// metric identity for counters and gauges, the histogram identity plus a
// bucket ordinal for histogram series (so buckets stay in increasing le
// order instead of sorting lexicographically).
type row struct {
	key  string
	line string
}

// family groups one metric name's samples for exposition.
type family struct {
	name string
	kind kind
	help string
	rows []row
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, samples
// sorted by identity.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make(map[string]*family)
	get := func(name string, k kind) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, kind: k, help: r.help[name]}
			fams[name] = f
		}
		return f
	}
	for _, c := range r.counters {
		f := get(c.name, kindCounter)
		f.rows = append(f.rows, row{c.id, c.id + " " + strconv.FormatUint(c.Value(), 10)})
	}
	for _, g := range r.gauges {
		f := get(g.name, kindGauge)
		f.rows = append(f.rows, row{g.id, g.id + " " + formatFloat(g.Value())})
	}
	for _, h := range r.hists {
		f := get(h.name, kindHistogram)
		f.rows = append(f.rows, h.renderRows()...)
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	for _, name := range names {
		f := fams[name]
		if f.help != "" {
			buf.WriteString("# HELP " + name + " " + f.help + "\n")
		}
		buf.WriteString("# TYPE " + name + " " + f.kind.String() + "\n")
		sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].key < f.rows[j].key })
		for _, row := range f.rows {
			buf.WriteString(row.line)
			buf.WriteByte('\n')
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// renderRows renders one histogram's cumulative _bucket series plus _sum
// and _count, merging the le label into any existing labels. Bucket rows
// sort under an ordinal suffix so they expose in increasing le order.
func (h *Histogram) renderRows() []row {
	rows := make([]row, 0, len(h.counts)+2)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.uppers) {
			le = formatFloat(h.uppers[i])
		}
		line := metricID(h.name+"_bucket", append(append([]string(nil), h.labels...), "le", le)) +
			" " + strconv.FormatUint(cum, 10)
		rows = append(rows, row{fmt.Sprintf("%s\x00%04d", h.id, i), line})
	}
	rows = append(rows,
		row{h.id + "\x00sum", metricID(h.name+"_sum", h.labels) + " " + formatFloat(h.Sum())},
		row{h.id + "\x00cnt", metricID(h.name+"_count", h.labels) + " " + strconv.FormatUint(h.Count(), 10)})
	return rows
}

// WriteFile writes a snapshot of r to path: JSON when the path ends in
// .json, Prometheus text otherwise. This is the file-dump twin of the
// /metrics and /metrics.json HTTP endpoints, used by the -metrics flags.
func WriteFile(r *Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// PrometheusString renders the exposition to a string (test helper and
// file-snapshot convenience).
func (r *Registry) PrometheusString() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b) // strings.Builder writes cannot fail
	return b.String()
}
