package telemetry

import (
	"strconv"

	"mosaic/internal/phy"
)

// LinkCollector bridges one phy.Link into a Registry: per-exchange frame
// and FEC counters, per-channel health (BER estimates, loss, state) from
// the monitor's snapshot, and state-transition counters fed by the
// monitor's transition hook.
//
// The collector is push-based to preserve both determinism and race
// safety: the goroutine driving the link calls ObserveExchange/Sync at
// superframe boundaries (where injections and remaps already happen), so
// the link itself is never touched from a scrape. Scrapes read only the
// registry's atomics. All per-channel metric handles are created up
// front, so the per-superframe path performs no allocation beyond the
// reused snapshot buffer.
type LinkCollector struct {
	link *phy.Link
	reg  *Registry

	framesIn        *Counter
	framesDelivered *Counter
	framesLost      *Counter
	framesCorrupted *Counter
	unitsLost       *Counter
	unitsTotal      *Counter
	corrections     *Counter
	wireBytes       *Counter
	payloadBytes    *Counter

	superframes   *Gauge
	lanesActive   *Gauge
	lanesStart    int
	sparesLeft    *Gauge
	aggregateRate *Gauge

	chFramesOK    []*Counter
	chFramesLost  []*Counter
	chCorrections []*Counter
	chBits        []*Counter
	chBER         []*Gauge
	chBERValid    []*Gauge
	chLossRatio   []*Gauge
	chState       []*Gauge
	chDead        []*Gauge

	transitions map[[2]phy.ChannelState]*Counter

	prev []phy.ChannelHealth // monitor cumulative values at last Sync
	snap []phy.ChannelHealth // reusable snapshot buffer
}

// NewLinkCollector registers link's metrics in r and returns the
// collector. Per-channel counters count from attach time: the monitor's
// current cumulative values become the baseline, so attaching mid-life
// does not replay history into the registry.
func NewLinkCollector(r *Registry, link *phy.Link) *LinkCollector {
	c := &LinkCollector{link: link, reg: r}

	r.Help("mosaic_link_frames_in_total", "frames offered to the link per Exchange")
	r.Help("mosaic_link_frames_delivered_total", "frames recovered intact by the far end")
	r.Help("mosaic_link_frames_lost_total", "frames missing entirely")
	r.Help("mosaic_link_frames_corrupted_total", "frames delivered damaged (FCS failure)")
	r.Help("mosaic_link_fec_corrections_total", "bit errors corrected by per-channel FEC")
	r.Help("mosaic_link_superframes", "completed Exchange rounds")
	r.Help("mosaic_link_lanes_active", "logical lanes currently carrying traffic")
	r.Help("mosaic_link_spares_left", "spare physical channels remaining")
	r.Help("mosaic_channel_ber_estimate", "estimated pre-FEC BER from FEC corrections (0 with ber_valid 0 = no data, not perfect)")
	r.Help("mosaic_channel_ber_valid", "1 when the BER estimate is backed by decoded bits")
	r.Help("mosaic_channel_loss_ratio", "lifetime fraction of expected frames that never arrived")
	r.Help("mosaic_channel_state", "monitor classification: 0 healthy, 1 degraded, 2 failed")
	r.Help("mosaic_channel_dead", "1 when the transmitter has been killed")
	r.Help("mosaic_monitor_transitions_total", "channel health state transitions")

	c.framesIn = r.Counter("mosaic_link_frames_in_total")
	c.framesDelivered = r.Counter("mosaic_link_frames_delivered_total")
	c.framesLost = r.Counter("mosaic_link_frames_lost_total")
	c.framesCorrupted = r.Counter("mosaic_link_frames_corrupted_total")
	c.unitsLost = r.Counter("mosaic_link_units_lost_total")
	c.unitsTotal = r.Counter("mosaic_link_units_total")
	c.corrections = r.Counter("mosaic_link_fec_corrections_total")
	c.wireBytes = r.Counter("mosaic_link_wire_bytes_total")
	c.payloadBytes = r.Counter("mosaic_link_payload_bytes_total")

	c.superframes = r.Gauge("mosaic_link_superframes")
	c.lanesActive = r.Gauge("mosaic_link_lanes_active")
	c.sparesLeft = r.Gauge("mosaic_link_spares_left")
	c.aggregateRate = r.Gauge("mosaic_link_aggregate_rate_bps")
	c.lanesStart = link.Mapper().NumLanes()

	n := link.Config().Lanes + link.Config().Spares
	c.chFramesOK = make([]*Counter, n)
	c.chFramesLost = make([]*Counter, n)
	c.chCorrections = make([]*Counter, n)
	c.chBits = make([]*Counter, n)
	c.chBER = make([]*Gauge, n)
	c.chBERValid = make([]*Gauge, n)
	c.chLossRatio = make([]*Gauge, n)
	c.chState = make([]*Gauge, n)
	c.chDead = make([]*Gauge, n)
	for i := 0; i < n; i++ {
		ch := strconv.Itoa(i)
		c.chFramesOK[i] = r.Counter("mosaic_channel_frames_ok_total", "channel", ch)
		c.chFramesLost[i] = r.Counter("mosaic_channel_frames_lost_total", "channel", ch)
		c.chCorrections[i] = r.Counter("mosaic_channel_fec_corrections_total", "channel", ch)
		c.chBits[i] = r.Counter("mosaic_channel_bits_observed_total", "channel", ch)
		c.chBER[i] = r.Gauge("mosaic_channel_ber_estimate", "channel", ch)
		c.chBERValid[i] = r.Gauge("mosaic_channel_ber_valid", "channel", ch)
		c.chLossRatio[i] = r.Gauge("mosaic_channel_loss_ratio", "channel", ch)
		c.chState[i] = r.Gauge("mosaic_channel_state", "channel", ch)
		c.chDead[i] = r.Gauge("mosaic_channel_dead", "channel", ch)
	}

	// Pre-create the transition counters for every (from, to) pair the
	// state machine can produce, so OnTransition stays allocation-free.
	c.transitions = make(map[[2]phy.ChannelState]*Counter)
	for _, pair := range [][2]phy.ChannelState{
		{phy.Healthy, phy.Degraded},
		{phy.Degraded, phy.Healthy},
		{phy.Degraded, phy.Failed},
		{phy.Healthy, phy.Failed},
	} {
		c.transitions[pair] = r.Counter("mosaic_monitor_transitions_total",
			"from", pair[0].String(), "to", pair[1].String())
	}

	// Baseline: count deltas from now on, not the monitor's whole history.
	c.prev = link.Monitor().Snapshot()
	c.Sync()
	return c
}

// ObserveExchange folds one Exchange's aggregate statistics. Call it from
// the goroutine driving the link, once per superframe.
func (c *LinkCollector) ObserveExchange(st phy.ExchangeStats) {
	c.framesIn.Add(uint64(st.FramesIn))
	c.framesDelivered.Add(uint64(st.FramesDelivered))
	c.framesLost.Add(uint64(st.FramesLost))
	c.framesCorrupted.Add(uint64(st.FramesCorrupted))
	c.unitsLost.Add(uint64(st.UnitsLost))
	c.unitsTotal.Add(uint64(st.UnitsTotal))
	c.corrections.Add(uint64(st.Corrections))
	c.wireBytes.Add(uint64(st.WireBytes))
	c.payloadBytes.Add(uint64(st.PayloadBytes))
}

// Sync refreshes the gauges and per-channel counters from the link's
// accessors and the monitor snapshot. Call it from the goroutine driving
// the link (typically right after ObserveExchange); it must not run
// concurrently with Exchange.
func (c *LinkCollector) Sync() {
	link := c.link
	c.superframes.SetInt(int64(link.Superframes()))
	c.lanesActive.SetInt(int64(link.Mapper().NumLanes()))
	c.sparesLeft.SetInt(int64(link.Mapper().SparesLeft()))
	c.aggregateRate.Set(link.AggregateRate())

	c.snap = link.Monitor().SnapshotInto(c.snap)
	for i, h := range c.snap {
		if i >= len(c.chBER) {
			break
		}
		if i < len(c.prev) {
			p := c.prev[i]
			c.chFramesOK[i].Add(h.FramesOK - p.FramesOK)
			c.chFramesLost[i].Add(h.FramesLost - p.FramesLost)
			c.chCorrections[i].Add(h.Corrections - p.Corrections)
			c.chBits[i].Add(h.BitsObserved - p.BitsObserved)
		}
		c.chBER[i].Set(h.EstimatedBER())
		c.chBERValid[i].SetBool(h.HasBERData())
		c.chLossRatio[i].Set(h.LossRatio())
		c.chState[i].SetInt(int64(h.State))
		c.chDead[i].SetBool(link.ChannelDead(h.Physical))
	}
	c.prev = append(c.prev[:0], c.snap...)
}

// OnTransition is a phy.Monitor transition hook feeding the transition
// counters. Chain it from an existing hook or register it directly with
// Monitor.SetTransitionHook.
func (c *LinkCollector) OnTransition(physical int, from, to phy.ChannelState) {
	if ctr, ok := c.transitions[[2]phy.ChannelState{from, to}]; ok {
		ctr.Inc()
		return
	}
	// A pair outside the known state machine (future states): register on
	// demand rather than dropping it.
	c.reg.Counter("mosaic_monitor_transitions_total",
		"from", from.String(), "to", to.String()).Inc()
}
