package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	healthz := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}
	srv := httptest.NewServer(NewMux(r, healthz))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if snap.Counters["up_total"] != 1 {
		t.Errorf("/metrics.json counter = %d, want 1", snap.Counters["up_total"])
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// pprof is mounted (cmdline is the cheapest endpoint to probe).
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestMuxNilHealthz(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/healthz without handler = %d, want 404", resp.StatusCode)
	}
}
