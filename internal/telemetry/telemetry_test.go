package telemetry

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "method", "get", "code", "200")
	b := r.Counter("requests_total", "code", "200", "method", "get") // label order irrelevant
	if a != b {
		t.Error("same identity returned distinct counter handles")
	}
	if c := r.Counter("requests_total", "method", "get", "code", "500"); c == a {
		t.Error("distinct label values shared a handle")
	}
	g1, g2 := r.Gauge("temp"), r.Gauge("temp")
	if g1 != g2 {
		t.Error("same identity returned distinct gauge handles")
	}
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", []float64{5, 6}) // buckets fixed at creation
	if h1 != h2 {
		t.Error("same identity returned distinct histogram handles")
	}
	if len(h1.uppers) != 2 || h1.uppers[0] != 1 || h1.uppers[1] != 2 {
		t.Errorf("buckets changed after creation: %v", h1.uppers)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("v")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
	g.SetBool(true)
	if g.Value() != 1 {
		t.Errorf("gauge bool = %g, want 1", g.Value())
	}
	g.SetInt(-7)
	if g.Value() != -7 {
		t.Errorf("gauge int = %g, want -7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{2, 1, 2}) // unsorted + duplicate input
	if len(h.uppers) != 2 || h.uppers[0] != 1 || h.uppers[1] != 2 {
		t.Fatalf("uppers = %v, want [1 2]", h.uppers)
	}
	for _, v := range []float64{0.5, 1.0, 1.5, 3} {
		h.Observe(v)
	}
	// v <= le semantics: 0.5 and 1.0 land in le=1, 1.5 in le=2, 3 overflows.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 4 || h.Sum() != 6 {
		t.Errorf("count/sum = %d/%g, want 4/6", h.Count(), h.Sum())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("test_total", "a counter family")
	r.Counter("test_total", "channel", "2").Add(5)
	r.Counter("test_total", "channel", "10").Inc()
	r.Gauge("temp").Set(1.5)
	h := r.Histogram("lat", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	want := strings.Join([]string{
		`# TYPE lat histogram`,
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_count 3`,
		`lat_sum 5`,
		`# TYPE temp gauge`,
		`temp 1.5`,
		`# HELP test_total a counter family`,
		`# TYPE test_total counter`,
		`test_total{channel="10"} 1`,
		`test_total{channel="2"} 5`,
		``,
	}, "\n")
	if got := r.PrometheusString(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Deterministic: rendering twice is byte-identical.
	if r.PrometheusString() != r.PrometheusString() {
		t.Error("exposition not deterministic across renders")
	}
	checkJSON(r, t)
}

// checkJSON double-checks the JSON side is deterministic and parseable.
func checkJSON(r *Registry, t *testing.T) {
	var a, b strings.Builder
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("JSON snapshot not deterministic across renders")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(a.String()), &s); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if s.Counters[`test_total{channel="2"}`] != 5 {
		t.Errorf("snapshot counter = %d, want 5", s.Counters[`test_total{channel="2"}`])
	}
	if s.Gauges["temp"] != 1.5 {
		t.Errorf("snapshot gauge = %g, want 1.5", s.Gauges["temp"])
	}
	hv, ok := s.Histograms["lat"]
	if !ok || hv.Count != 3 {
		t.Errorf("snapshot histogram = %+v, want count 3", hv)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "path", "a\"b\\c\nd").Inc()
	out := r.PrometheusString()
	want := `c{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped sample %q not found in:\n%s", want, out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad metric name", func() { r.Counter("bad name") })
	mustPanic("odd labels", func() { r.Counter("ok", "k") })
	mustPanic("bad label key", func() { r.Counter("ok", "bad-key", "v") })
	r.Counter("family")
	mustPanic("kind collision", func() { r.Gauge("family") })
}

// TestConcurrentHammer drives writers and scrapers concurrently; it exists
// for the -race pass in make check.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits_total", "worker", string(rune('a'+w)))
			g := r.Gauge("level")
			h := r.Histogram("obs", DurationBuckets())
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for s := 0; s < 4; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.WritePrometheus(io.Discard)
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	var total uint64
	for _, v := range r.Snapshot().Counters {
		total += v
	}
	if total != writers*iters {
		t.Errorf("counted %d increments, want %d", total, writers*iters)
	}
}
