package telemetry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/phy"
)

func newTestLink(t *testing.T) *phy.Link {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes: 2, Spares: 1, FEC: phy.NewRSLite(), UnitLen: 27,
		PerChannelBitRate: 2e9, Seed: 5, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

// TestLinkCollector drives a real link through clean exchanges, a channel
// kill, and a sparing remap, checking that the registry counters track the
// exchange statistics and the per-channel gauges track the monitor.
func TestLinkCollector(t *testing.T) {
	link := newTestLink(t)
	r := NewRegistry()
	c := NewLinkCollector(r, link)

	frames := [][]byte{[]byte("hello mosaic"), []byte("telemetry")}
	var wantIn, wantDelivered uint64
	for i := 0; i < 3; i++ {
		out, st, err := link.Exchange(frames)
		if err != nil {
			t.Fatal(err)
		}
		wantIn += uint64(st.FramesIn)
		wantDelivered += uint64(len(out))
		c.ObserveExchange(st)
		c.Sync()
	}
	if got := r.Counter("mosaic_link_frames_in_total").Value(); got != wantIn {
		t.Fatalf("frames_in counter %d, want %d", got, wantIn)
	}
	if got := r.Counter("mosaic_link_frames_delivered_total").Value(); got != wantDelivered {
		t.Fatalf("frames_delivered counter %d, want %d", got, wantDelivered)
	}
	if got := r.Gauge("mosaic_link_superframes").Value(); got != 3 {
		t.Fatalf("superframes gauge %v, want 3", got)
	}
	if got := r.Gauge("mosaic_link_lanes_active").Value(); got != 2 {
		t.Fatalf("lanes_active gauge %v, want 2", got)
	}
	if got := r.Gauge("mosaic_link_spares_left").Value(); got != 1 {
		t.Fatalf("spares_left gauge %v, want 1", got)
	}
	okBefore := r.Counter("mosaic_channel_frames_ok_total", "channel", "0").Value()
	if okBefore == 0 {
		t.Fatal("channel 0 accepted no frames over 3 clean exchanges")
	}

	// Kill channel 0's transmitter: the dead gauge must flip, losses must
	// accrue, and after a remap the spare count must drop.
	link.KillChannel(0)
	if _, st, err := link.Exchange(frames); err != nil {
		t.Fatal(err)
	} else {
		c.ObserveExchange(st)
	}
	c.Sync()
	if got := r.Gauge("mosaic_channel_dead", "channel", "0").Value(); got != 1 {
		t.Fatalf("dead gauge for killed channel %v, want 1", got)
	}
	if got := r.Counter("mosaic_channel_frames_lost_total", "channel", "0").Value(); got == 0 {
		t.Fatal("killed channel shows no lost frames")
	}
	if got := r.Counter("mosaic_link_units_lost_total").Value(); got == 0 {
		t.Fatal("link shows no lost units with a dead channel")
	}
	link.FailChannel(0)
	c.Sync()
	if got := r.Gauge("mosaic_link_spares_left").Value(); got != 0 {
		t.Fatalf("spares_left after remap %v, want 0", got)
	}
}

// TestLinkCollectorOnTransition covers both the pre-registered transition
// pairs and the on-demand fallback for pairs outside the known machine.
func TestLinkCollectorOnTransition(t *testing.T) {
	link := newTestLink(t)
	r := NewRegistry()
	c := NewLinkCollector(r, link)

	c.OnTransition(0, phy.Healthy, phy.Degraded)
	c.OnTransition(1, phy.Healthy, phy.Degraded)
	c.OnTransition(0, phy.Degraded, phy.Failed)
	want := r.Counter("mosaic_monitor_transitions_total",
		"from", phy.Healthy.String(), "to", phy.Degraded.String())
	if want.Value() != 2 {
		t.Fatalf("healthy->degraded transitions %d, want 2", want.Value())
	}
	// A pair the state machine cannot produce today still lands in a
	// counter rather than vanishing.
	c.OnTransition(0, phy.Failed, phy.Healthy)
	odd := r.Counter("mosaic_monitor_transitions_total",
		"from", phy.Failed.String(), "to", phy.Healthy.String())
	if odd.Value() != 1 {
		t.Fatalf("unknown transition pair counted %d, want 1", odd.Value())
	}
}

// TestMACCollectorSync checks delta folding, the windowed retx-rate math
// (including the zero-denominator window), and bridge-level publication.
func TestMACCollectorSync(t *testing.T) {
	r := NewRegistry()
	c := NewMACCollector(r)

	s := MACStats{
		PacketsQueued: 10, DataTx: 20, Retransmits: 5, AcksTx: 2,
		DataRx: 18, Delivered: 9, Duplicates: 1, Discarded: 1,
		AcksRx: 15, CreditStalls: 3, Timeouts: 2,
		InFlight: 4, QueueDepth: 6,
		DeframeFrames: 40, CRCRejects: 2, HeaderRejects: 1, SkippedBytes: 7,
	}
	c.Sync("a", s)
	if got := r.Counter("mosaic_mac_retransmits_total", "endpoint", "a").Value(); got != 5 {
		t.Fatalf("retransmits %d, want 5", got)
	}
	// First window: 5 retransmits over 20 fresh + 5 retx data frames.
	if got := r.Gauge("mosaic_mac_retx_rate", "endpoint", "a").Value(); got != 5.0/25.0 {
		t.Fatalf("retx rate %v, want 0.2", got)
	}
	if got := r.Gauge("mosaic_mac_replay_occupancy", "endpoint", "a").Value(); got != 4 {
		t.Fatalf("replay occupancy %v, want 4", got)
	}

	// Second sync with identical cumulative stats: every delta is zero, so
	// counters hold and the retx-rate window divides by nothing -> 0.
	c.Sync("a", s)
	if got := r.Counter("mosaic_mac_retransmits_total", "endpoint", "a").Value(); got != 5 {
		t.Fatalf("retransmits double-counted: %d", got)
	}
	if got := r.Gauge("mosaic_mac_retx_rate", "endpoint", "a").Value(); got != 0 {
		t.Fatalf("empty-window retx rate %v, want 0", got)
	}

	// Third sync: only fresh data this window -> rate 0 with nonzero
	// denominator; counters advance by the delta only.
	s2 := s
	s2.DataTx += 10
	s2.Delivered += 10
	c.Sync("a", s2)
	if got := r.Gauge("mosaic_mac_retx_rate", "endpoint", "a").Value(); got != 0 {
		t.Fatalf("clean-window retx rate %v, want 0", got)
	}
	if got := r.Counter("mosaic_mac_data_frames_tx_total", "endpoint", "a").Value(); got != 30 {
		t.Fatalf("data_tx %d, want 30", got)
	}

	// A second endpoint gets its own handle set.
	c.Sync("b", MACStats{DataTx: 1})
	if got := r.Counter("mosaic_mac_data_frames_tx_total", "endpoint", "b").Value(); got != 1 {
		t.Fatalf("endpoint b data_tx %d, want 1", got)
	}

	c.SyncBridge(2, 0.5)
	c.SyncBridge(5, 1.0)
	if got := r.Counter("mosaic_mac_renegotiations_total").Value(); got != 5 {
		t.Fatalf("renegotiations %d, want 5", got)
	}
	if got := r.Gauge("mosaic_mac_capacity_fraction").Value(); got != 1.0 {
		t.Fatalf("capacity fraction %v, want 1", got)
	}
}

// TestWriteFile covers the file-dump twin of the HTTP endpoints: JSON when
// the path says so, Prometheus text otherwise, and error propagation for
// an unwritable path.
func TestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("mosaic_test_total").Add(7)
	r.Gauge("mosaic_test_gauge").Set(2.5)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "metrics.json")
	if err := WriteFile(r, jsonPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}

	promPath := filepath.Join(dir, "metrics.prom")
	if err := WriteFile(r, promPath); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "mosaic_test_total 7") {
		t.Fatalf("Prometheus dump missing counter line:\n%s", raw)
	}

	if err := WriteFile(r, filepath.Join(dir, "no-such-dir", "x.json")); err == nil {
		t.Fatal("unwritable path did not error")
	}
}

// TestHistogramBucketEdges pins the boundary convention (a value equal to
// an upper bound lands in that bucket) and the bucket-list sanitation:
// unsorted, duplicated, NaN and +Inf inputs.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mosaic_test_hist", []float64{5, 1, 2, 2, math.NaN(), math.Inf(1)})
	h.Observe(1)   // == first upper bound: le="1"
	h.Observe(1.5) // le="2"
	h.Observe(5)   // == last finite bound: le="5"
	h.Observe(6)   // overflow: +Inf only
	if h.Count() != 4 || h.Sum() != 13.5 {
		t.Fatalf("count=%d sum=%v, want 4 and 13.5", h.Count(), h.Sum())
	}
	text := r.PrometheusString()
	for _, line := range []string{
		`mosaic_test_hist_bucket{le="1"} 1`,
		`mosaic_test_hist_bucket{le="2"} 2`,
		`mosaic_test_hist_bucket{le="5"} 3`,
		`mosaic_test_hist_bucket{le="+Inf"} 4`,
		`mosaic_test_hist_count 4`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
	// Re-registering with different buckets returns the existing histogram.
	if got := r.Histogram("mosaic_test_hist", []float64{100}); got != h {
		t.Fatal("histogram identity not stable across re-registration")
	}
}

func TestGaugeSetBool(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mosaic_test_bool")
	g.SetBool(true)
	if g.Value() != 1 {
		t.Fatalf("SetBool(true) stored %v", g.Value())
	}
	g.SetBool(false)
	if g.Value() != 0 {
		t.Fatalf("SetBool(false) stored %v", g.Value())
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{2.5, "2.5"},
		{0, "0"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Fatalf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[kind]string{
		kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram", kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("kind %d stringifies to %q, want %q", k, got, want)
		}
	}
}
