// Package httpx is the shared HTTP shell for the repo's daemons
// (linkmetricsd, mosaicfleetd): the standard operational mux and a
// signal-aware server lifecycle with graceful drain.
//
// NewMux wires a registry (and an optional health handler) into a
// standalone *http.ServeMux with the standard operational endpoints.
// The mux is deliberately explicit — nothing registers on
// http.DefaultServeMux — so a binary can mount it wherever it wants:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/healthz        the supplied health handler (404 when nil)
//	/debug/pprof/*  net/http/pprof profiling (CPU, heap, goroutine, ...)
//
// Daemon runs a handler on an address with the shared shutdown
// discipline: SIGTERM/SIGINT trigger a bounded Drain callback (stop
// admissions, drain workers, flush telemetry) followed by
// http.Server.Shutdown, and SIGHUP triggers a Reload callback (config
// hot-reload) without interrupting serving.
package httpx

import (
	"context"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mosaic/internal/telemetry"
)

// NewMux returns a mux serving the registry plus pprof. healthz may be
// nil.
func NewMux(r *telemetry.Registry, healthz http.HandlerFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	if healthz != nil {
		mux.HandleFunc("/healthz", healthz)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Daemon is the shared serve-and-shutdown shell.
type Daemon struct {
	Addr    string       // listen address (":9090")
	Handler http.Handler // typically a NewMux with API routes added

	// Grace bounds the whole shutdown sequence — Drain plus
	// http.Server.Shutdown share one deadline (default 15s).
	Grace time.Duration

	// Drain, when non-nil, runs on SIGTERM/SIGINT before the HTTP server
	// shuts down: stop admissions, drain or stop worker goroutines, flush
	// telemetry. It must return when ctx expires.
	Drain func(ctx context.Context)

	// Reload, when non-nil, runs on SIGHUP (and can be shared with a
	// POST /reload route). Errors are logged, never fatal — a bad config
	// must not take the daemon down.
	Reload func() error

	// Logf defaults to log.Printf.
	Logf func(format string, args ...any)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ListenAndServe serves until a termination signal lands, then runs the
// graceful sequence and returns. A SIGHUP triggers Reload and serving
// continues.
func (d *Daemon) ListenAndServe() error {
	ln, err := net.Listen("tcp", d.Addr)
	if err != nil {
		return err
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt, syscall.SIGHUP)
	defer signal.Stop(sigs)
	d.logf("httpx: serving on %s", ln.Addr())
	return d.Serve(ln, sigs)
}

// Serve is ListenAndServe with the listener and signal source injected
// (tests drive shutdown through a fake signal channel).
func (d *Daemon) Serve(ln net.Listener, sigs <-chan os.Signal) error {
	grace := d.Grace
	if grace <= 0 {
		grace = 15 * time.Second
	}
	srv := &http.Server{Handler: d.Handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if d.Reload == nil {
					continue
				}
				if err := d.Reload(); err != nil {
					d.logf("httpx: reload failed (serving continues): %v", err)
				} else {
					d.logf("httpx: reloaded")
				}
				continue
			}
			d.logf("httpx: %v received; draining (grace %v)", sig, grace)
			ctx, cancel := context.WithTimeout(context.Background(), grace)
			if d.Drain != nil {
				d.Drain(ctx)
			}
			err := srv.Shutdown(ctx)
			cancel()
			<-errc // Serve has returned http.ErrServerClosed
			if err != nil {
				d.logf("httpx: shutdown incomplete: %v", err)
			}
			return err
		}
	}
}
