package httpx

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mosaic/internal/telemetry"
)

func TestMuxEndpoints(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("up_total").Inc()
	healthz := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}
	srv := httptest.NewServer(NewMux(r, healthz))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if snap.Counters["up_total"] != 1 {
		t.Errorf("/metrics.json counter = %d, want 1", snap.Counters["up_total"])
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// pprof is mounted (cmdline is the cheapest endpoint to probe).
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestMuxNilHealthz(t *testing.T) {
	srv := httptest.NewServer(NewMux(telemetry.NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/healthz without handler = %d, want 404", resp.StatusCode)
	}
}

// TestDaemonGracefulShutdown drives the full lifecycle through a fake
// signal channel: serve, SIGHUP reload (serving continues), then
// SIGTERM with the Drain hook observed before Serve returns.
func TestDaemonGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var reloads, drains atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("pong"))
	})
	d := &Daemon{
		Handler: mux,
		Grace:   5 * time.Second,
		Drain:   func(context.Context) { drains.Add(1) },
		Reload:  func() error { reloads.Add(1); return nil },
		Logf:    t.Logf,
	}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- d.Serve(ln, sigs) }()

	url := "http://" + ln.Addr().String() + "/ping"
	waitUp := func() {
		t.Helper()
		for i := 0; i < 100; i++ {
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("server never came up")
	}
	waitUp()

	sigs <- syscall.SIGHUP
	for i := 0; i < 100 && reloads.Load() == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if reloads.Load() != 1 {
		t.Fatalf("reloads = %d, want 1", reloads.Load())
	}
	// Still serving after the reload.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET after SIGHUP: %v", err)
	}
	resp.Body.Close()

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	if drains.Load() != 1 {
		t.Errorf("drains = %d, want 1", drains.Load())
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still reachable after shutdown")
	}
}
