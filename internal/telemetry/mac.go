package telemetry

import "strconv"

// MACStats is a neutral snapshot of one MAC/LLR endpoint's cumulative
// counters and gauges. It mirrors mac.Stats field-for-field but lives
// here so the telemetry package never imports internal/mac (which
// imports faultinject, which imports telemetry); the MAC layer converts
// its own stats into this struct when pushing.
type MACStats struct {
	PacketsQueued uint64
	DataTx        uint64
	Retransmits   uint64
	AcksTx        uint64
	DataRx        uint64
	Delivered     uint64
	Duplicates    uint64
	Discarded     uint64
	Reordered     uint64
	AcksRx        uint64
	SacksRx       uint64
	UnknownVC     uint64
	CreditStalls  uint64
	Timeouts      uint64

	InFlight     int
	QueueDepth   int
	ReorderDepth int

	DeframeFrames uint64
	CRCRejects    uint64
	HeaderRejects uint64
	SkippedBytes  uint64
}

// MACVCStats is the per-virtual-channel breakdown of the same counters,
// mirroring mac.VCStats.
type MACVCStats struct {
	Class         int
	PacketsQueued uint64
	DataTx        uint64
	Retransmits   uint64
	Delivered     uint64
	Duplicates    uint64
	Discarded     uint64
	Reordered     uint64
	CreditStalls  uint64
	Timeouts      uint64

	InFlight     int
	QueueDepth   int
	ReorderDepth int
}

// macEndpoint holds the metric handles and previous snapshot for one
// labeled endpoint.
type macEndpoint struct {
	packets, dataTx, retx, acksTx      *Counter
	dataRx, delivered, dups, discarded *Counter
	reordered, acksRx, sacksRx         *Counter
	unknownVC, stalls, timeouts        *Counter
	deframed, crcRej, hdrRej, skipped  *Counter

	inFlight, queueDepth, reorderDepth, retxRate *Gauge

	prev MACStats
}

// macVC holds the metric handles and previous snapshot for one
// (endpoint, virtual channel) pair.
type macVC struct {
	packets, dataTx, retx, delivered *Counter
	dups, discarded, reordered       *Counter
	stalls, timeouts                 *Counter

	class, inFlight, queueDepth, reorderDepth *Gauge

	prev MACVCStats
}

// MACCollector pushes MAC endpoint snapshots into a Registry, following
// the same discipline as LinkCollector: handles are created up front,
// cumulative snapshot counters become registry deltas against the
// previous Sync, and gauges are overwritten. All writes happen on the
// caller's goroutine at superframe boundaries; scrapes read atomics.
type MACCollector struct {
	reg       *Registry
	endpoints map[string]*macEndpoint
	vcs       map[string]*macVC

	renegotiations *Counter
	capacityFrac   *Gauge
	prevReneg      uint64
}

// NewMACCollector registers the MAC metric set (with help text) and
// returns a collector. Endpoint handles are created lazily per label on
// first Sync; bridge-level metrics are singletons.
func NewMACCollector(reg *Registry) *MACCollector {
	reg.Help("mosaic_mac_retransmits_total", "LLR data frames re-sent by the ARQ")
	reg.Help("mosaic_mac_delivered_total", "packets delivered in order to the client")
	reg.Help("mosaic_mac_discarded_total", "data frames dropped with no reorder room (ahead of window)")
	reg.Help("mosaic_mac_reordered_total", "out-of-order data frames parked in the SR reorder buffer")
	reg.Help("mosaic_mac_credit_stalls_total", "superframes where data waited on a full replay window")
	reg.Help("mosaic_mac_crc_rejects_total", "MAC frames dropped by the deframer CRC check")
	reg.Help("mosaic_mac_replay_occupancy", "unacked frames in the replay ring")
	reg.Help("mosaic_mac_reorder_depth", "frames parked in the SR reorder buffer")
	reg.Help("mosaic_mac_retx_rate", "retransmitted fraction of data frames since the last sync")
	reg.Help("mosaic_mac_renegotiations_total", "capacity renegotiations published by the MAC bridge")
	reg.Help("mosaic_mac_capacity_fraction", "capacity fraction last published by the MAC bridge")
	reg.Help("mosaic_mac_vc_delivered_total", "per-VC packets delivered in order to the client")
	reg.Help("mosaic_mac_vc_class", "QoS class assigned to the virtual channel (0 = highest)")
	c := &MACCollector{
		reg:            reg,
		endpoints:      make(map[string]*macEndpoint),
		vcs:            make(map[string]*macVC),
		renegotiations: reg.Counter("mosaic_mac_renegotiations_total"),
		capacityFrac:   reg.Gauge("mosaic_mac_capacity_fraction"),
	}
	c.capacityFrac.Set(1)
	return c
}

func (c *MACCollector) endpoint(label string) *macEndpoint {
	if ep, ok := c.endpoints[label]; ok {
		return ep
	}
	r := c.reg
	ep := &macEndpoint{
		packets:      r.Counter("mosaic_mac_packets_queued_total", "endpoint", label),
		dataTx:       r.Counter("mosaic_mac_data_frames_tx_total", "endpoint", label),
		retx:         r.Counter("mosaic_mac_retransmits_total", "endpoint", label),
		acksTx:       r.Counter("mosaic_mac_pure_acks_tx_total", "endpoint", label),
		dataRx:       r.Counter("mosaic_mac_data_frames_rx_total", "endpoint", label),
		delivered:    r.Counter("mosaic_mac_delivered_total", "endpoint", label),
		dups:         r.Counter("mosaic_mac_duplicates_total", "endpoint", label),
		discarded:    r.Counter("mosaic_mac_discarded_total", "endpoint", label),
		reordered:    r.Counter("mosaic_mac_reordered_total", "endpoint", label),
		acksRx:       r.Counter("mosaic_mac_acks_rx_total", "endpoint", label),
		sacksRx:      r.Counter("mosaic_mac_sacks_rx_total", "endpoint", label),
		unknownVC:    r.Counter("mosaic_mac_unknown_vc_total", "endpoint", label),
		stalls:       r.Counter("mosaic_mac_credit_stalls_total", "endpoint", label),
		timeouts:     r.Counter("mosaic_mac_timeouts_total", "endpoint", label),
		deframed:     r.Counter("mosaic_mac_deframed_frames_total", "endpoint", label),
		crcRej:       r.Counter("mosaic_mac_crc_rejects_total", "endpoint", label),
		hdrRej:       r.Counter("mosaic_mac_header_rejects_total", "endpoint", label),
		skipped:      r.Counter("mosaic_mac_resync_skipped_bytes_total", "endpoint", label),
		inFlight:     r.Gauge("mosaic_mac_replay_occupancy", "endpoint", label),
		queueDepth:   r.Gauge("mosaic_mac_queue_depth", "endpoint", label),
		reorderDepth: r.Gauge("mosaic_mac_reorder_depth", "endpoint", label),
		retxRate:     r.Gauge("mosaic_mac_retx_rate", "endpoint", label),
	}
	c.endpoints[label] = ep
	return ep
}

func (c *MACCollector) vc(label string, vc int) *macVC {
	key := label + "/" + strconv.Itoa(vc)
	if h, ok := c.vcs[key]; ok {
		return h
	}
	r := c.reg
	vcLabel := strconv.Itoa(vc)
	h := &macVC{
		packets:      r.Counter("mosaic_mac_vc_packets_queued_total", "endpoint", label, "vc", vcLabel),
		dataTx:       r.Counter("mosaic_mac_vc_data_frames_tx_total", "endpoint", label, "vc", vcLabel),
		retx:         r.Counter("mosaic_mac_vc_retransmits_total", "endpoint", label, "vc", vcLabel),
		delivered:    r.Counter("mosaic_mac_vc_delivered_total", "endpoint", label, "vc", vcLabel),
		dups:         r.Counter("mosaic_mac_vc_duplicates_total", "endpoint", label, "vc", vcLabel),
		discarded:    r.Counter("mosaic_mac_vc_discarded_total", "endpoint", label, "vc", vcLabel),
		reordered:    r.Counter("mosaic_mac_vc_reordered_total", "endpoint", label, "vc", vcLabel),
		stalls:       r.Counter("mosaic_mac_vc_credit_stalls_total", "endpoint", label, "vc", vcLabel),
		timeouts:     r.Counter("mosaic_mac_vc_timeouts_total", "endpoint", label, "vc", vcLabel),
		class:        r.Gauge("mosaic_mac_vc_class", "endpoint", label, "vc", vcLabel),
		inFlight:     r.Gauge("mosaic_mac_vc_replay_occupancy", "endpoint", label, "vc", vcLabel),
		queueDepth:   r.Gauge("mosaic_mac_vc_queue_depth", "endpoint", label, "vc", vcLabel),
		reorderDepth: r.Gauge("mosaic_mac_vc_reorder_depth", "endpoint", label, "vc", vcLabel),
	}
	c.vcs[key] = h
	return h
}

// Sync publishes one endpoint snapshot: counters advance by the delta
// against the previous snapshot (so restarts of the underlying endpoint
// never decrease registry counters), gauges are overwritten, and the
// retx-rate gauge reflects only the window since the last Sync.
func (c *MACCollector) Sync(label string, s MACStats) {
	ep := c.endpoint(label)
	p := ep.prev
	ep.packets.Add(s.PacketsQueued - p.PacketsQueued)
	ep.dataTx.Add(s.DataTx - p.DataTx)
	ep.retx.Add(s.Retransmits - p.Retransmits)
	ep.acksTx.Add(s.AcksTx - p.AcksTx)
	ep.dataRx.Add(s.DataRx - p.DataRx)
	ep.delivered.Add(s.Delivered - p.Delivered)
	ep.dups.Add(s.Duplicates - p.Duplicates)
	ep.discarded.Add(s.Discarded - p.Discarded)
	ep.reordered.Add(s.Reordered - p.Reordered)
	ep.acksRx.Add(s.AcksRx - p.AcksRx)
	ep.sacksRx.Add(s.SacksRx - p.SacksRx)
	ep.unknownVC.Add(s.UnknownVC - p.UnknownVC)
	ep.stalls.Add(s.CreditStalls - p.CreditStalls)
	ep.timeouts.Add(s.Timeouts - p.Timeouts)
	ep.deframed.Add(s.DeframeFrames - p.DeframeFrames)
	ep.crcRej.Add(s.CRCRejects - p.CRCRejects)
	ep.hdrRej.Add(s.HeaderRejects - p.HeaderRejects)
	ep.skipped.Add(s.SkippedBytes - p.SkippedBytes)

	ep.inFlight.SetInt(int64(s.InFlight))
	ep.queueDepth.SetInt(int64(s.QueueDepth))
	ep.reorderDepth.SetInt(int64(s.ReorderDepth))
	dRetx := s.Retransmits - p.Retransmits
	dData := s.DataTx - p.DataTx + dRetx
	if dData > 0 {
		ep.retxRate.Set(float64(dRetx) / float64(dData))
	} else {
		ep.retxRate.Set(0)
	}
	ep.prev = s
}

// SyncVC publishes one virtual channel's snapshot for a labeled
// endpoint, with the same delta-against-previous discipline as Sync.
func (c *MACCollector) SyncVC(label string, vcIdx int, s MACVCStats) {
	h := c.vc(label, vcIdx)
	p := h.prev
	h.packets.Add(s.PacketsQueued - p.PacketsQueued)
	h.dataTx.Add(s.DataTx - p.DataTx)
	h.retx.Add(s.Retransmits - p.Retransmits)
	h.delivered.Add(s.Delivered - p.Delivered)
	h.dups.Add(s.Duplicates - p.Duplicates)
	h.discarded.Add(s.Discarded - p.Discarded)
	h.reordered.Add(s.Reordered - p.Reordered)
	h.stalls.Add(s.CreditStalls - p.CreditStalls)
	h.timeouts.Add(s.Timeouts - p.Timeouts)

	h.class.SetInt(int64(s.Class))
	h.inFlight.SetInt(int64(s.InFlight))
	h.queueDepth.SetInt(int64(s.QueueDepth))
	h.reorderDepth.SetInt(int64(s.ReorderDepth))
	h.prev = s
}

// SyncBridge publishes bridge-level renegotiation state (cumulative
// count plus the current capacity fraction).
func (c *MACCollector) SyncBridge(renegotiations uint64, frac float64) {
	c.renegotiations.Add(renegotiations - c.prevReneg)
	c.prevReneg = renegotiations
	c.capacityFrac.Set(frac)
}
