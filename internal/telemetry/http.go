package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// HTTP serving: NewMux wires a registry (and an optional health handler)
// into a standalone *http.ServeMux with the standard operational
// endpoints. The mux is deliberately explicit — nothing registers on
// http.DefaultServeMux — so a binary can mount it wherever it wants:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/healthz        the supplied health handler (404 when nil)
//	/debug/pprof/*  net/http/pprof profiling (CPU, heap, goroutine, ...)

// NewMux returns a mux serving the registry plus pprof. healthz may be
// nil.
func NewMux(r *Registry, healthz http.HandlerFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	if healthz != nil {
		mux.HandleFunc("/healthz", healthz)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
