package telemetry

import (
	"strings"
	"testing"
)

func expo(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "queue", "a").Add(3)
	r.Counter("jobs_total", "queue", "b").Add(5)
	g := r.Gauge("depth")
	g.SetInt(9)
	r.Histogram("latency", []float64{1, 2})

	if !r.Unregister("jobs_total", "queue", "a") {
		t.Fatal("Unregister known counter = false")
	}
	out := expo(t, r)
	if strings.Contains(out, `queue="a"`) {
		t.Error("unregistered series still exposed")
	}
	if !strings.Contains(out, `jobs_total{queue="b"} 5`) {
		t.Error("sibling series vanished with it")
	}

	// Label order must not matter — identity is the sorted label set.
	r.Counter("multi", "x", "1", "y", "2")
	if !r.Unregister("multi", "y", "2", "x", "1") {
		t.Error("Unregister with reordered labels = false")
	}

	if !r.Unregister("depth") || !r.Unregister("latency") {
		t.Error("Unregister gauge/histogram = false")
	}
	if r.Unregister("depth") {
		t.Error("second Unregister = true")
	}
	if r.Unregister("never_registered") {
		t.Error("Unregister of unknown metric = true")
	}

	// The detached handle keeps working, invisibly.
	g.SetInt(11)
	if g.Value() != 11 {
		t.Error("detached handle stopped working")
	}
	if strings.Contains(expo(t, r), "depth") {
		t.Error("detached gauge reappeared")
	}

	// The family kind survives detachment: re-registering under another
	// type must still panic.
	defer func() {
		if recover() == nil {
			t.Error("re-registering a detached family as another kind did not panic")
		}
	}()
	r.Gauge("jobs_total")
}

func TestFleetCollectorSync(t *testing.T) {
	r := NewRegistry()
	states := []string{"serving", "draining"}
	reasons := []string{"rate", "links"}
	c := NewFleetCollector(r, states, reasons)

	c.SyncStates([]int64{10, 2})
	c.SyncAdmission(12, 3, []uint64{4, 1})
	c.SyncPool(8, 100, 7, 5, 3)
	c.SyncFleet(42, 9, 17, 12)

	out := expo(t, r)
	for _, want := range []string{
		`mosaic_fleetd_links{state="serving"} 10`,
		`mosaic_fleetd_links{state="draining"} 2`,
		"mosaic_fleetd_admitted_total 12",
		"mosaic_fleetd_retired_total 3",
		`mosaic_fleetd_shed_total{reason="rate"} 4`,
		`mosaic_fleetd_shed_total{reason="links"} 1`,
		"mosaic_fleetd_pool_workers 8",
		"mosaic_fleetd_pool_tasks_total 100",
		"mosaic_fleetd_pool_steals_total 7",
		"mosaic_fleetd_pool_rounds_total 5",
		"mosaic_fleetd_pool_depth 3",
		"mosaic_fleetd_epoch 42",
		"mosaic_fleetd_flows_active 9",
		"mosaic_fleetd_flows_injected_total 17",
		"mosaic_fleetd_links_live 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Delta-sync: re-syncing the same cumulative values adds nothing,
	// larger values add the difference.
	c.SyncAdmission(12, 3, []uint64{4, 1})
	c.SyncAdmission(15, 3, []uint64{6, 1})
	out = expo(t, r)
	if !strings.Contains(out, "mosaic_fleetd_admitted_total 15") {
		t.Error("admitted delta-sync wrong")
	}
	if !strings.Contains(out, `mosaic_fleetd_shed_total{reason="rate"} 6`) {
		t.Error("shed delta-sync wrong")
	}
}

func TestFleetLinkCollectorDetach(t *testing.T) {
	r := NewRegistry()
	c := NewFleetLinkCollector(r, 17)
	c.Sync(2, 8, 0.75, 100, 90, 3)

	out := expo(t, r)
	for _, want := range []string{
		`mosaic_fleetd_link_state{link="17"} 2`,
		`mosaic_fleetd_link_lanes{link="17"} 8`,
		`mosaic_fleetd_link_fraction{link="17"} 0.75`,
		`mosaic_fleetd_link_queued{link="17"} 100`,
		`mosaic_fleetd_link_delivered{link="17"} 90`,
		`mosaic_fleetd_link_retransmits{link="17"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A second link's gauges survive the first one's Detach.
	other := NewFleetLinkCollector(r, 18)
	other.Sync(1, 10, 1, 0, 0, 0)
	c.Detach()
	out = expo(t, r)
	if strings.Contains(out, `link="17"`) {
		t.Error("detached link still exposed")
	}
	if !strings.Contains(out, `mosaic_fleetd_link_lanes{link="18"} 10`) {
		t.Error("surviving link lost its gauges")
	}
}
