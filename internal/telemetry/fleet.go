package telemetry

import "strconv"

// Fleet-service collectors: FleetCollector carries the fleet-wide view
// (per-lifecycle-state gauges, admission and shed counters, worker-pool
// depth/steal counters, epoch and flow gauges) and FleetLinkCollector
// carries one managed link's labeled gauges, attached at admission and
// detached — unregistered from exposition — at retirement.
//
// Both follow the repo's collector discipline: push-based (the fleet's
// epoch barrier calls Sync; scrapes read only atomics), with counter
// handles delta-synced from attach-time baselines so re-attachment never
// replays history.

// FleetCollector registers the fleet-wide metric set.
type FleetCollector struct {
	states []*Gauge

	admitted, retired *Counter
	sheds             []*Counter

	epoch, links, flows *Gauge
	flowsInjected       *Counter

	poolWorkers, poolDepth            *Gauge
	poolTasks, poolSteals, poolRounds *Counter

	// Attach-time baselines for delta-syncing cumulative inputs.
	prevAdmitted, prevRetired         uint64
	prevSheds                         []uint64
	prevTasks, prevSteals, prevRounds uint64
	prevInjected                      uint64
}

// NewFleetCollector registers the fleet metric families in r: one
// mosaic_fleetd_links{state=...} gauge per lifecycle state name and one
// mosaic_fleetd_shed_total{reason=...} counter per shed reason.
func NewFleetCollector(r *Registry, states, shedReasons []string) *FleetCollector {
	r.Help("mosaic_fleetd_links", "managed links per lifecycle state")
	r.Help("mosaic_fleetd_admitted_total", "links admitted into the fleet")
	r.Help("mosaic_fleetd_retired_total", "links retired out of the fleet")
	r.Help("mosaic_fleetd_shed_total", "operations shed by the admission gate, by reason")
	r.Help("mosaic_fleetd_epoch", "completed fleet epochs")
	r.Help("mosaic_fleetd_links_live", "live (non-retired) managed links")
	r.Help("mosaic_fleetd_flows_active", "in-flight flows in the fleet-wide flow simulator")
	r.Help("mosaic_fleetd_flows_injected_total", "background flows injected into the flow simulator")
	r.Help("mosaic_fleetd_pool_workers", "work-stealing pool workers")
	r.Help("mosaic_fleetd_pool_depth", "tasks in the current pool round")
	r.Help("mosaic_fleetd_pool_tasks_total", "pool tasks executed")
	r.Help("mosaic_fleetd_pool_steals_total", "pool tasks obtained by stealing")
	r.Help("mosaic_fleetd_pool_rounds_total", "pool barrier rounds run")

	c := &FleetCollector{
		admitted:      r.Counter("mosaic_fleetd_admitted_total"),
		retired:       r.Counter("mosaic_fleetd_retired_total"),
		epoch:         r.Gauge("mosaic_fleetd_epoch"),
		links:         r.Gauge("mosaic_fleetd_links_live"),
		flows:         r.Gauge("mosaic_fleetd_flows_active"),
		flowsInjected: r.Counter("mosaic_fleetd_flows_injected_total"),
		poolWorkers:   r.Gauge("mosaic_fleetd_pool_workers"),
		poolDepth:     r.Gauge("mosaic_fleetd_pool_depth"),
		poolTasks:     r.Counter("mosaic_fleetd_pool_tasks_total"),
		poolSteals:    r.Counter("mosaic_fleetd_pool_steals_total"),
		poolRounds:    r.Counter("mosaic_fleetd_pool_rounds_total"),
		prevSheds:     make([]uint64, len(shedReasons)),
	}
	for _, s := range states {
		c.states = append(c.states, r.Gauge("mosaic_fleetd_links", "state", s))
	}
	for _, reason := range shedReasons {
		c.sheds = append(c.sheds, r.Counter("mosaic_fleetd_shed_total", "reason", reason))
	}
	return c
}

// SyncStates publishes the per-state link counts (aligned with the
// states slice passed at construction).
func (c *FleetCollector) SyncStates(counts []int64) {
	for i, g := range c.states {
		if i < len(counts) {
			g.SetInt(counts[i])
		}
	}
}

// SyncPool publishes the worker-pool counters.
func (c *FleetCollector) SyncPool(workers int, tasks, steals, rounds uint64, depth int64) {
	c.poolWorkers.SetInt(int64(workers))
	c.poolDepth.SetInt(depth)
	syncDelta(c.poolTasks, &c.prevTasks, tasks)
	syncDelta(c.poolSteals, &c.prevSteals, steals)
	syncDelta(c.poolRounds, &c.prevRounds, rounds)
}

// SyncAdmission publishes admission outcomes; sheds aligns with the
// shedReasons slice passed at construction.
func (c *FleetCollector) SyncAdmission(admitted, retired uint64, sheds []uint64) {
	syncDelta(c.admitted, &c.prevAdmitted, admitted)
	syncDelta(c.retired, &c.prevRetired, retired)
	for i, ctr := range c.sheds {
		if i < len(sheds) {
			syncDelta(ctr, &c.prevSheds[i], sheds[i])
		}
	}
}

// SyncFleet publishes the epoch/flow gauges.
func (c *FleetCollector) SyncFleet(epoch, activeFlows, flowsInjected, liveLinks uint64) {
	c.epoch.SetInt(int64(epoch))
	c.flows.SetInt(int64(activeFlows))
	c.links.SetInt(int64(liveLinks))
	syncDelta(c.flowsInjected, &c.prevInjected, flowsInjected)
}

// syncDelta advances a counter to a cumulative external value measured
// against its attach-time baseline.
func syncDelta(c *Counter, prev *uint64, now uint64) {
	if now > *prev {
		c.Add(now - *prev)
		*prev = now
	}
}

// fleetLinkMetricNames lists the per-link gauge families, shared by
// registration and Detach.
var fleetLinkMetricNames = []string{
	"mosaic_fleetd_link_state",
	"mosaic_fleetd_link_lanes",
	"mosaic_fleetd_link_fraction",
	"mosaic_fleetd_link_queued",
	"mosaic_fleetd_link_delivered",
	"mosaic_fleetd_link_retransmits",
}

// FleetLinkCollector is one managed link's labeled gauge set
// (label link="<id>"). Attach at admission, Sync at epoch barriers,
// Detach at retirement.
type FleetLinkCollector struct {
	reg    *Registry
	label  string
	gauges [6]*Gauge // aligned with fleetLinkMetricNames
}

// NewFleetLinkCollector registers the per-link gauges for link id.
func NewFleetLinkCollector(r *Registry, id int) *FleetLinkCollector {
	c := &FleetLinkCollector{reg: r, label: strconv.Itoa(id)}
	for i, name := range fleetLinkMetricNames {
		c.gauges[i] = r.Gauge(name, "link", c.label)
	}
	return c
}

// Sync publishes the link's current lifecycle state (as its numeric
// State value), width, capacity fraction, and traffic counters.
func (c *FleetLinkCollector) Sync(state, lanes int, frac float64, queued, delivered, retx uint64) {
	c.gauges[0].SetInt(int64(state))
	c.gauges[1].SetInt(int64(lanes))
	c.gauges[2].Set(frac)
	c.gauges[3].SetInt(int64(queued))
	c.gauges[4].SetInt(int64(delivered))
	c.gauges[5].SetInt(int64(retx))
}

// Detach unregisters every per-link gauge from exposition.
func (c *FleetLinkCollector) Detach() {
	for _, name := range fleetLinkMetricNames {
		c.reg.Unregister(name, "link", c.label)
	}
}
