package phy

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The per-lane stage of the pipeline fans out over a persistent,
// package-level worker pool instead of spawning a goroutine per lane per
// Exchange. The pool is sized by runtime.GOMAXPROCS at first use and
// shared by every Link in the process — mirroring how a wide-and-slow
// endpoint has a fixed silicon budget that hundreds of cheap channels
// time-share, and keeping goroutine count independent of how many links
// an experiment builds.
//
// Determinism: lane work only touches per-lane state (each physical
// channel owns its RNG), so the lane→worker assignment — and therefore
// the worker count — cannot change any result bit.

var (
	poolOnce  sync.Once
	poolTasks chan func()
	poolSize  int
)

func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolTasks = make(chan func(), 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
	}
}

// forEachLane runs fn(0..n-1) with up to par runner tasks on the
// persistent pool (actual concurrency is bounded by the pool's worker
// count). par <= 1 runs inline on the caller's goroutine — handy for
// tests and for callers that are themselves parallel. par == 0 means
// "pool default": one runner per pool worker.
func forEachLane(n, par int, fn func(lane int)) {
	if n <= 0 {
		return
	}
	if par != 1 {
		poolOnce.Do(startPool)
		if par <= 0 || par > 4*poolSize {
			par = poolSize
		}
	}
	if par > n {
		par = n
	}
	if par <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	runner := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(par)
	for i := 0; i < par; i++ {
		poolTasks <- runner
	}
	wg.Wait()
}
