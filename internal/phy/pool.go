package phy

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The per-lane stage of the pipeline fans out over a persistent,
// package-level worker pool instead of spawning a goroutine per lane per
// Exchange. The pool is sized by runtime.GOMAXPROCS at first use and
// shared by every Link in the process — mirroring how a wide-and-slow
// endpoint has a fixed silicon budget that hundreds of cheap channels
// time-share, and keeping goroutine count independent of how many links
// an experiment builds.
//
// Determinism: lane work only touches per-lane state (each physical
// channel owns its RNG), so the lane→worker assignment — and therefore
// the worker count — cannot change any result bit.

var (
	poolOnce  sync.Once
	poolTasks chan func()
	poolSize  int
)

func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolTasks = make(chan func(), 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
	}
}

// laneDispatcher fans a fixed worker function out over lane indices on
// the persistent pool. The runner closure, wait group, and work counter
// live in the dispatcher, so a dispatcher built once (per Link) makes
// every subsequent dispatch allocation-free — the steady-state Exchange
// path must not touch the heap (see bench_test.go).
//
// A dispatcher is not reentrant: one dispatch at a time.
type laneDispatcher struct {
	fn   func(lane int)
	n    int
	next atomic.Int64
	wg   sync.WaitGroup
	run  func()
}

// newLaneDispatcher builds a dispatcher around fn. The only allocations
// ever made on fn's behalf happen here.
func newLaneDispatcher(fn func(lane int)) *laneDispatcher {
	d := &laneDispatcher{fn: fn}
	d.run = func() {
		defer d.wg.Done()
		for {
			i := int(d.next.Add(1)) - 1
			if i >= d.n {
				return
			}
			d.fn(i)
		}
	}
	return d
}

// dispatch runs fn(0..n-1) with up to par runner tasks on the persistent
// pool (actual concurrency is bounded by the pool's worker count).
// par <= 1 runs inline on the caller's goroutine — handy for tests and
// for callers that are themselves parallel. par == 0 means "pool
// default": one runner per pool worker.
func (d *laneDispatcher) dispatch(n, par int) {
	if n <= 0 {
		return
	}
	if par != 1 {
		poolOnce.Do(startPool)
		if par <= 0 || par > 4*poolSize {
			par = poolSize
		}
	}
	if par > n {
		par = n
	}
	if par <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			d.fn(i)
		}
		return
	}
	d.n = n
	d.next.Store(0)
	d.wg.Add(par)
	for i := 0; i < par; i++ {
		poolTasks <- d.run
	}
	d.wg.Wait()
}

// forEachLane is the one-shot form of laneDispatcher for cold paths that
// don't keep a dispatcher around.
func forEachLane(n, par int, fn func(lane int)) {
	newLaneDispatcher(fn).dispatch(n, par)
}
