package phy

import (
	"encoding/binary"
	"hash/crc32"
)

// Channel framing: every channel carries a sequence of fixed-size wire
// frames. The 2-byte alignment marker sits OUTSIDE the FEC so a receiver
// can hunt for alignment before it can decode; everything else (lane id,
// sequence number, payload, CRC) is FEC-protected:
//
//	wire frame = marker | FEC( lane | seq | payload[U] | crc32 )
//
// The sequence number provides skew-tolerant reassembly: channels may
// deliver the same superframe at different times (path-length skew) and
// the gearbox still reorders units correctly.

// Marker bytes. Chosen with good autocorrelation properties (not critical
// in a byte-oriented model, but keeps the hunt honest).
const (
	marker0 = 0xD5
	marker1 = 0xC3
)

// Framer encodes and decodes channel frames for a fixed payload size.
type Framer struct {
	fec        FEC
	payloadLen int
	bodyLen    int // lane(2) + seq(4) + payload + crc(4)
	encLen     int
	// extract is the optional CRC-first decode shortcut (see
	// dataExtractor); nil when the FEC doesn't support it.
	extract func(dst, encoded []byte, plainLen int) ([]byte, bool)
}

// NewFramer returns a framer for the given FEC and per-frame payload size.
func NewFramer(fec FEC, payloadLen int) *Framer {
	body := 2 + 4 + payloadLen + 4
	f := &Framer{
		fec:        fec,
		payloadLen: payloadLen,
		bodyLen:    body,
		encLen:     fec.EncodedLen(body),
	}
	if ex, ok := fec.(dataExtractor); ok {
		f.extract = ex.AppendExtract
	}
	return f
}

// PayloadLen returns the fixed per-frame payload size.
func (f *Framer) PayloadLen() int { return f.payloadLen }

// WireLen returns the on-the-wire size of one frame.
func (f *Framer) WireLen() int { return 2 + f.encLen }

// OverheadFraction returns (wire-payload)/payload.
func (f *Framer) OverheadFraction() float64 {
	return float64(f.WireLen()-f.payloadLen) / float64(f.payloadLen)
}

// ChannelFrame is one decoded channel frame.
type ChannelFrame struct {
	Lane        int
	Seq         uint32
	Payload     []byte
	Corrections int // FEC corrections inside this frame
}

// Encode serialises one frame to wire bytes.
func (f *Framer) Encode(lane int, seq uint32, payload []byte) []byte {
	var scratch []byte
	return f.AppendFrame(make([]byte, 0, f.WireLen()), lane, seq, payload, &scratch)
}

// AppendFrame serialises one frame onto dst and returns the extended
// slice. bodyScratch is a reusable buffer for the pre-FEC frame body
// (grown as needed); pass the same pointer on every call from one worker
// so the hot path stays allocation-free.
func (f *Framer) AppendFrame(dst []byte, lane int, seq uint32, payload []byte, bodyScratch *[]byte) []byte {
	if len(payload) != f.payloadLen {
		panic("phy: payload length mismatch")
	}
	if cap(*bodyScratch) < f.bodyLen {
		*bodyScratch = make([]byte, f.bodyLen)
	}
	body := (*bodyScratch)[:f.bodyLen]
	binary.BigEndian.PutUint16(body[0:2], uint16(lane))
	binary.BigEndian.PutUint32(body[2:6], seq)
	copy(body[6:6+f.payloadLen], payload)
	crc := crc32.ChecksumIEEE(body[:6+f.payloadLen])
	binary.BigEndian.PutUint32(body[6+f.payloadLen:], crc)

	dst = append(dst, marker0, marker1)
	return f.fec.AppendEncode(dst, body)
}

// DecodeStats reports what the decoder saw on one channel's stream.
type DecodeStats struct {
	Frames       int // frames delivered
	CRCFailures  int // frames found but rejected by CRC
	FECOverloads int // frames whose FEC flagged uncorrectable blocks
	Corrections  int // total corrected errors
	SkippedBytes int // bytes discarded while hunting for alignment
}

// DecodeStream scans a channel's received byte stream, recovering every
// frame it can. It hunts for the marker, FEC-decodes the fixed-size body,
// verifies the CRC, and resynchronizes on failure.
func (f *Framer) DecodeStream(stream []byte) ([]ChannelFrame, DecodeStats) {
	var frames []ChannelFrame
	var scratch []byte
	st := f.ScanStream(stream, &scratch, func(lane int, seq uint32, payload []byte, ncorr int) {
		frames = append(frames, ChannelFrame{
			Lane:        lane,
			Seq:         seq,
			Payload:     append([]byte(nil), payload...),
			Corrections: ncorr,
		})
	})
	return frames, st
}

// ScanStream is the allocation-free core of DecodeStream: it hunts for the
// marker, FEC-decodes the fixed-size body into bodyScratch (reused across
// frames), verifies the CRC, and calls emit for every recovered frame.
// The payload slice passed to emit aliases bodyScratch and is only valid
// for the duration of the callback — copy it out if it must survive.
func (f *Framer) ScanStream(stream []byte, bodyScratch *[]byte, emit func(lane int, seq uint32, payload []byte, ncorr int)) DecodeStats {
	var st DecodeStats
	i := 0
	for i+f.WireLen() <= len(stream) {
		if stream[i] != marker0 || stream[i+1] != marker1 {
			i++
			st.SkippedBytes++
			continue
		}
		enc := stream[i+2 : i+2+f.encLen]
		// Extract shortcut: pull the systematic data out, with the
		// extractor proving every block is a codeword as it copies. On
		// ok the body is bit-identical to a full decode of the same
		// bytes (zero corrections, no overloads), so only the CRC accept
		// logic remains. Dirty frames (ok=false) — and the rare clean
		// codeword whose body still fails the frame CRC — fall through
		// to the real FEC decode below, which reproduces the reference
		// decision sequence exactly.
		if f.extract != nil {
			b, ok := f.extract((*bodyScratch)[:0], enc, f.bodyLen)
			if cap(b) > cap(*bodyScratch) {
				*bodyScratch = b
			}
			if ok && len(b) == f.bodyLen &&
				binary.BigEndian.Uint32(b[6+f.payloadLen:]) == crc32.ChecksumIEEE(b[:6+f.payloadLen]) {
				emit(int(binary.BigEndian.Uint16(b[0:2])),
					binary.BigEndian.Uint32(b[2:6]),
					b[6:6+f.payloadLen], 0)
				st.Frames++
				i += f.WireLen()
				continue
			}
		}
		body, ncorr, fecErr := f.fec.AppendDecode((*bodyScratch)[:0], enc, f.bodyLen)
		if cap(body) > cap(*bodyScratch) {
			*bodyScratch = body
		}
		if fecErr != nil {
			st.FECOverloads++
		}
		if len(body) == f.bodyLen {
			crcWant := binary.BigEndian.Uint32(body[6+f.payloadLen:])
			crcGot := crc32.ChecksumIEEE(body[:6+f.payloadLen])
			if crcWant == crcGot {
				emit(int(binary.BigEndian.Uint16(body[0:2])),
					binary.BigEndian.Uint32(body[2:6]),
					body[6:6+f.payloadLen], ncorr)
				st.Frames++
				st.Corrections += ncorr
				i += f.WireLen()
				continue
			}
			st.CRCFailures++
		}
		// Bad frame: resume hunting one byte later.
		i++
		st.SkippedBytes++
	}
	return st
}
