package phy

// The gearbox is what makes Mosaic protocol agnostic: it converts between
// one fast serial stream and many slow channel streams by striping
// fixed-size units round-robin across the active lanes. Unit i goes to
// lane i mod L with per-lane sequence number i div L; reassembly inverts
// the permutation using the sequence numbers carried in channel frames, so
// arbitrary per-channel skew cannot reorder data.

// Stripe splits the stream into units of exactly unitLen bytes (the last
// unit is zero-padded) and deals them round-robin over lanes. It returns
// units[lane][seq]. A nil/empty stream returns empty per-lane slices.
func Stripe(stream []byte, lanes, unitLen int) [][][]byte {
	if lanes <= 0 || unitLen <= 0 {
		panic("phy: Stripe needs positive lanes and unit length")
	}
	nunits := (len(stream) + unitLen - 1) / unitLen
	out := make([][][]byte, lanes)
	perLane := (nunits + lanes - 1) / lanes
	for l := range out {
		out[l] = make([][]byte, 0, perLane)
	}
	for u := 0; u < nunits; u++ {
		unit := make([]byte, unitLen)
		copy(unit, stream[u*unitLen:min(len(stream), (u+1)*unitLen)])
		lane := u % lanes
		out[lane] = append(out[lane], unit)
	}
	return out
}

// Destripe reassembles the stream from per-lane units. missing[g] reports
// globally-indexed units that were lost (their positions are zero-filled
// so downstream alignment survives). totalUnits is the expected unit
// count; units[lane] may have gaps represented as nil entries.
func Destripe(units [][][]byte, lanes, unitLen, totalUnits int) (stream []byte, missing []int) {
	stream = make([]byte, totalUnits*unitLen)
	for g := 0; g < totalUnits; g++ {
		lane := g % lanes
		seq := g / lanes
		if lane >= len(units) || seq >= len(units[lane]) || units[lane][seq] == nil {
			missing = append(missing, g)
			continue
		}
		copy(stream[g*unitLen:], units[lane][seq])
	}
	return stream, missing
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
