package phy

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// The staged pipeline must be bit-deterministic: for a fixed Config.Seed,
// the delivered frames and every statistic are identical no matter how
// many pool workers run the per-lane stage. The noise-free golden values
// below date back to the pre-refactor implementation (goroutine-per-lane,
// allocation-heavy); the noise-dependent cases were re-pinned when the
// BSC moved from math/rand + Poisson error counts to the spec'd
// xoshiro256++ stream with geometric skip-sampling — the draw sequence
// changed, the channel model did not. default-clean consumes no random
// draws and is untouched, and the re-pinned values were certified by a
// clean verify-deep run (the pipeline diffcheck stage replays the same
// noise through the naive reference pipeline byte-for-byte, swept across
// worker counts).

type goldenCase struct {
	name    string
	cfg     func() Config
	nframes int
	size    int
	ber     float64
	failMid bool // kill + fail channel 2 before round 1 of 3

	wantSHA         string // sha256[:8] of delivered frames, 3 rounds
	wantDelivered   int
	wantCorrupted   int
	wantUnitsLost   int
	wantCorrections int
	wantWire        int
}

var goldenCases = []goldenCase{
	{
		name: "default-clean",
		cfg:  DefaultConfig, nframes: 60, size: 1500,
		wantSHA: "b76be625bf468d4c", wantDelivered: 180, wantWire: 347706,
	},
	{
		name: "default-noisy",
		cfg: func() Config {
			c := DefaultConfig()
			c.Seed = 7
			return c
		},
		nframes: 60, size: 1500, ber: 2e-4,
		wantSHA: "e528091caf78c249", wantDelivered: 175, wantCorrupted: 4,
		wantUnitsLost: 4, wantCorrections: 563, wantWire: 347706,
	},
	{
		name: "fail-remap",
		cfg: func() Config {
			c := DefaultConfig()
			c.Lanes = 20
			c.Spares = 2
			c.Seed = 3
			return c
		},
		nframes: 40, size: 900, ber: 1e-5, failMid: true,
		wantSHA: "4ff99f2a1c12bebb", wantDelivered: 120,
		wantCorrections: 17, wantWire: 140562,
	},
	{
		name: "conventional",
		cfg: func() Config {
			c := ConventionalConfig()
			c.Seed = 5
			return c
		},
		nframes: 30, size: 1200, ber: 1e-6,
		wantSHA: "741b5d35ba10d37b", wantDelivered: 90,
		wantCorrections: 4, wantWire: 552630,
	},
}

// runGolden pushes the case's frames through 3 Exchange rounds and returns
// the frame hash plus aggregated stats.
func runGolden(t *testing.T, gc goldenCase, workers int) (string, ExchangeStats) {
	t.Helper()
	cfg := gc.cfg()
	cfg.Workers = workers
	link, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if gc.ber > 0 {
		for p := 0; p < cfg.Lanes+cfg.Spares; p++ {
			link.SetChannelBER(p, gc.ber)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	frames := make([][]byte, gc.nframes)
	for i := range frames {
		frames[i] = make([]byte, gc.size)
		rng.Read(frames[i])
	}
	h := sha256.New()
	var agg ExchangeStats
	for round := 0; round < 3; round++ {
		if gc.failMid && round == 1 {
			link.KillChannel(2)
			link.FailChannel(2)
		}
		delivered, st, err := link.Exchange(frames)
		if err != nil {
			t.Fatalf("Exchange round %d: %v", round, err)
		}
		for _, f := range delivered {
			h.Write(f)
		}
		agg.FramesDelivered += st.FramesDelivered
		agg.FramesCorrupted += st.FramesCorrupted
		agg.UnitsLost += st.UnitsLost
		agg.Corrections += st.Corrections
		agg.WireBytes += st.WireBytes
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), agg
}

// TestDeterminism checks every golden case against the captured seed
// values for worker counts 1 (inline), 4, and NumCPU — including the
// mid-run channel kill + sparing remap case.
func TestDeterminism(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, gc := range goldenCases {
		for _, w := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", gc.name, w), func(t *testing.T) {
				sha, agg := runGolden(t, gc, w)
				if sha != gc.wantSHA {
					t.Errorf("frame hash = %s, want %s", sha, gc.wantSHA)
				}
				if agg.FramesDelivered != gc.wantDelivered {
					t.Errorf("delivered = %d, want %d", agg.FramesDelivered, gc.wantDelivered)
				}
				if agg.FramesCorrupted != gc.wantCorrupted {
					t.Errorf("corrupted = %d, want %d", agg.FramesCorrupted, gc.wantCorrupted)
				}
				if agg.UnitsLost != gc.wantUnitsLost {
					t.Errorf("unitsLost = %d, want %d", agg.UnitsLost, gc.wantUnitsLost)
				}
				if agg.Corrections != gc.wantCorrections {
					t.Errorf("corrections = %d, want %d", agg.Corrections, gc.wantCorrections)
				}
				if agg.WireBytes != gc.wantWire {
					t.Errorf("wireBytes = %d, want %d", agg.WireBytes, gc.wantWire)
				}
			})
		}
	}
}
