// Package phy implements the Mosaic wide-and-slow PHY: the digital logic
// that fans a high-speed data stream out over hundreds of slow optical
// channels and reassembles it, with per-channel framing, lightweight FEC,
// skew-tolerant reassembly, health monitoring, and spare-channel remapping.
//
// This is the paper's primary contribution rendered as executable logic:
// everything a real Mosaic endpoint's gearbox ASIC would do, exercised over
// simulated noisy channels whose error rates come from the analog models in
// internal/channel.
package phy

import (
	"math"
	"math/rand"
)

// BSC is a binary symmetric channel: each transmitted bit flips with
// probability BER. Dead channels emit noise. A skew of up to SkewBytes
// random bytes precedes the stream, modelling per-channel path-length and
// serialization skew (the receiver must hunt for frame alignment).
type BSC struct {
	BER       float64
	SkewBytes int
	Dead      bool

	rng *rand.Rand
}

// NewBSC returns a channel with the given bit error rate and its own
// deterministic random stream.
func NewBSC(ber float64, rng *rand.Rand) *BSC {
	if ber < 0 {
		ber = 0
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return &BSC{BER: ber, rng: rng}
}

// poisson draws a Poisson-distributed count with the given mean using
// inversion for small means and a normal approximation for large ones.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		// Normal approximation, clamped at zero.
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Transmit passes data through the channel and returns the received bytes
// (a fresh slice): skew prefix, then data with bit errors applied. The
// input is not modified.
func (c *BSC) Transmit(data []byte) []byte {
	return c.TransmitTo(nil, data)
}

// TransmitTo is Transmit into a reusable buffer: the received bytes are
// appended to dst (usually dst[:0] of a per-lane scratch slice) and the
// extended slice returned. The random draw sequence is identical to
// Transmit, so a fixed seed produces identical bytes either way.
func (c *BSC) TransmitTo(dst, data []byte) []byte {
	base := len(dst)
	need := c.SkewBytes + len(data)
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	out := dst[base:]
	for i := 0; i < c.SkewBytes; i++ {
		out[i] = byte(c.rng.Intn(256))
	}
	body := out[c.SkewBytes:]
	copy(body, data)
	if c.Dead {
		// A dead transmitter: the receiver slices at the noise floor.
		for i := range body {
			body[i] = byte(c.rng.Intn(256))
		}
		return dst
	}
	if c.BER <= 0 || len(body) == 0 {
		return dst
	}
	nbits := float64(len(body)) * 8
	// For low BER, draw the number of errors (binomial ~= Poisson) and
	// place them uniformly; far cheaper than a coin per bit.
	nerr := poisson(c.rng, nbits*c.BER)
	for e := 0; e < nerr; e++ {
		pos := c.rng.Intn(len(body) * 8)
		body[pos/8] ^= 1 << uint(pos%8)
	}
	return dst
}
