// Package phy implements the Mosaic wide-and-slow PHY: the digital logic
// that fans a high-speed data stream out over hundreds of slow optical
// channels and reassembles it, with per-channel framing, lightweight FEC,
// skew-tolerant reassembly, health monitoring, and spare-channel remapping.
//
// This is the paper's primary contribution rendered as executable logic:
// everything a real Mosaic endpoint's gearbox ASIC would do, exercised over
// simulated noisy channels whose error rates come from the analog models in
// internal/channel.
package phy

import "math"

// chanRNG is the per-channel random stream: xoshiro256++ seeded through
// splitmix64. It replaces math/rand here for two reasons that matter at
// fleet scale: a generator is a 32-byte value embedded in its BSC (no
// per-channel heap allocation, no 4.8 KiB lagged-Fibonacci table to seed),
// and the algorithm is pinned by this repo rather than by the Go runtime,
// so the channel noise byte streams are part of the simulation spec — the
// naive twin in internal/refmodel re-implements the same two algorithms
// independently and the bsc_skip diffcheck stage holds the two in lockstep.
type chanRNG struct {
	s [4]uint64
}

// seedChanRNG initializes the state with splitmix64, the reference seeder
// for xoshiro generators (never yields the all-zero state).
func seedChanRNG(seed int64) chanRNG {
	var r chanRNG
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 advances xoshiro256++.
func (r *chanRNG) Uint64() uint64 {
	s := &r.s
	x := s[0] + s[3]
	out := (x<<23 | x>>41) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = s[3]<<45 | s[3]>>19
	return out
}

// Float64 returns a uniform float in [0, 1) with 53 random bits.
func (r *chanRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Byte returns a uniform byte (the top bits of the state, per the
// xoshiro authors' guidance that high bits have the best equidistribution).
func (r *chanRNG) Byte() byte {
	return byte(r.Uint64() >> 56)
}

// BSC is a binary symmetric channel: each transmitted bit flips with
// probability BER. Dead channels emit noise. A skew of up to SkewBytes
// random bytes precedes the stream, modelling per-channel path-length and
// serialization skew (the receiver must hunt for frame alignment).
//
// Errors are placed by geometric skip-sampling: instead of a Bernoulli
// coin per bit, the channel draws the gap to the next flipped bit
// (geometric with parameter BER, by inversion) and jumps straight to it,
// so an exchange touches only the bytes that actually take an error —
// O(errors), not O(bits). One uniform draw is consumed per error (plus
// the final overshooting draw), which is the draw discipline the
// refmodel twin reproduces bit-serially.
type BSC struct {
	BER       float64
	SkewBytes int
	Dead      bool

	rng chanRNG
}

// NewBSC returns a channel with the given bit error rate and its own
// deterministic random stream derived from seed.
func NewBSC(ber float64, seed int64) *BSC {
	b := &BSC{}
	b.init(ber, seed)
	return b
}

// init seeds a BSC in place (the link embeds its channels by value).
func (c *BSC) init(ber float64, seed int64) {
	if ber < 0 {
		ber = 0
	}
	if ber > 0.5 {
		ber = 0.5
	}
	c.BER = ber
	c.SkewBytes = 0
	c.Dead = false
	c.rng = seedChanRNG(seed)
}

// Transmit passes data through the channel and returns the received bytes
// (a fresh slice): skew prefix, then data with bit errors applied. The
// input is not modified.
func (c *BSC) Transmit(data []byte) []byte {
	return c.TransmitTo(nil, data)
}

// TransmitTo is Transmit into a reusable buffer: the received bytes are
// appended to dst (usually dst[:0] of a per-lane scratch slice) and the
// extended slice returned. The random draw sequence is identical to
// Transmit, so a fixed seed produces identical bytes either way.
func (c *BSC) TransmitTo(dst, data []byte) []byte {
	base := len(dst)
	need := c.SkewBytes + len(data)
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	out := dst[base:]
	for i := 0; i < c.SkewBytes; i++ {
		out[i] = c.rng.Byte()
	}
	body := out[c.SkewBytes:]
	copy(body, data)
	if c.Dead {
		// A dead transmitter: the receiver slices at the noise floor.
		for i := range body {
			body[i] = c.rng.Byte()
		}
		return dst
	}
	p := c.BER
	if p <= 0 || len(body) == 0 {
		return dst
	}
	if p >= 1 {
		// Degenerate channel: every bit flips, no draws consumed.
		// (NewBSC clamps to 0.5, but BER is a public knob.)
		for i := range body {
			body[i] ^= 0xff
		}
		return dst
	}
	// Geometric skip-sampling: the gap to the next error is
	// floor(log(1-u)/log(1-p)). Gaps are compared in float space before
	// conversion so a tiny p (astronomical gaps) cannot overflow int.
	logq := math.Log1p(-p)
	nbits := len(body) * 8
	bit := 0
	for {
		gap := math.Floor(math.Log1p(-c.rng.Float64()) / logq)
		if gap >= float64(nbits-bit) {
			return dst
		}
		bit += int(gap)
		body[bit>>3] ^= 1 << uint(bit&7)
		bit++
		if bit >= nbits {
			return dst
		}
	}
}
