package phy

import (
	"math"
	"reflect"
	"testing"
)

// Regression tests for the accessor hardening: Health and WorstChannels
// used to panic on out-of-range input where Observe/MarkFailed silently
// guard, and EstimatedBER's 0 on a dead channel read as "perfect".

func TestHealthOutOfRangeReturnsSentinel(t *testing.T) {
	m := NewMonitor(4, DefaultMonitorConfig())
	m.Observe(1, 10, 10, 3, 1000)
	for _, physical := range []int{-1, -100, math.MinInt, 4, 5, 1 << 20, math.MaxInt} {
		h := m.Health(physical)
		if h.Physical != -1 {
			t.Errorf("Health(%d).Physical = %d, want -1 sentinel", physical, h.Physical)
		}
		if h.FramesOK != 0 || h.FramesLost != 0 || h.Corrections != 0 ||
			h.BitsObserved != 0 || h.State != Healthy {
			t.Errorf("Health(%d) = %+v, want zero-value stats", physical, h)
		}
	}
	// In-range still returns the real record, keyed by its own index.
	for physical := 0; physical < 4; physical++ {
		if h := m.Health(physical); h.Physical != physical {
			t.Errorf("Health(%d).Physical = %d", physical, h.Physical)
		}
	}
	if h := m.Health(1); h.Corrections != 3 || h.BitsObserved != 1000 {
		t.Errorf("Health(1) = %+v, want the observed stats", h)
	}
}

func TestWorstChannelsClampsK(t *testing.T) {
	m := NewMonitor(3, DefaultMonitorConfig())
	for _, tc := range []struct {
		k, wantLen int
	}{
		{math.MinInt, 0}, {-100, 0}, {-1, 0}, {0, 0},
		{1, 1}, {3, 3}, {4, 3}, {math.MaxInt, 3},
	} {
		if got := len(m.WorstChannels(tc.k)); got != tc.wantLen {
			t.Errorf("len(WorstChannels(%d)) = %d, want %d", tc.k, got, tc.wantLen)
		}
	}
}

func TestWorstChannelsDeterministicTieBreak(t *testing.T) {
	m := NewMonitor(6, DefaultMonitorConfig())
	// Channels 5, 3, 1 share one BER estimate; 4 and 2 share a worse one;
	// 0 has no data. Worst-first with ties broken on the physical index.
	for _, p := range []int{5, 3, 1} {
		m.Observe(p, 10, 10, 10, 1_000_000)
	}
	for _, p := range []int{4, 2} {
		m.Observe(p, 10, 10, 100, 1_000_000)
	}
	wantOrder := []int{2, 4, 1, 3, 5, 0}
	first := m.WorstChannels(6)
	for i, h := range first {
		if h.Physical != wantOrder[i] {
			t.Fatalf("WorstChannels order = %v, want physicals %v",
				physicals(first), wantOrder)
		}
	}
	// Stable across calls: exposition built from this order cannot flap.
	for i := 0; i < 5; i++ {
		if got := m.WorstChannels(6); !reflect.DeepEqual(physicals(got), wantOrder) {
			t.Fatalf("call %d: order %v, want %v", i, physicals(got), wantOrder)
		}
	}
}

func physicals(hs []ChannelHealth) []int {
	out := make([]int, len(hs))
	for i, h := range hs {
		out[i] = h.Physical
	}
	return out
}

func TestEstimatedBERNoDataIsExplicit(t *testing.T) {
	// A hard-killed channel: every frame lost, nothing decoded. Its BER
	// estimate must read as "no data", not as a perfect channel.
	dead := ChannelHealth{Physical: 7, FramesLost: 40}
	if dead.EstimatedBER() != 0 {
		t.Errorf("dead EstimatedBER = %g, want 0", dead.EstimatedBER())
	}
	if dead.HasBERData() {
		t.Error("dead channel claims BER data")
	}
	if dead.LossRatio() != 1 {
		t.Errorf("dead LossRatio = %g, want 1", dead.LossRatio())
	}
	healthy := ChannelHealth{FramesOK: 100, Corrections: 5, BitsObserved: 1000}
	if !healthy.HasBERData() || healthy.EstimatedBER() != 0.005 {
		t.Errorf("healthy = (%v, %g), want (true, 0.005)",
			healthy.HasBERData(), healthy.EstimatedBER())
	}
	if healthy.LossRatio() != 0 {
		t.Errorf("healthy LossRatio = %g, want 0", healthy.LossRatio())
	}
	partial := ChannelHealth{FramesOK: 30, FramesLost: 10}
	if partial.LossRatio() != 0.25 {
		t.Errorf("partial LossRatio = %g, want 0.25", partial.LossRatio())
	}
	if (ChannelHealth{}).LossRatio() != 0 {
		t.Errorf("zero-value LossRatio = %g, want 0", (ChannelHealth{}).LossRatio())
	}
}

// TestObserveClassifiesDeadViaLoss pins the classifier consistency: a
// channel that delivers nothing has no BER evidence, so it must be
// Failed via the loss-ratio test — never mistaken for healthy because
// its EstimatedBER reads 0.
func TestObserveClassifiesDeadViaLoss(t *testing.T) {
	m := NewMonitor(2, DefaultMonitorConfig())
	m.Observe(0, 20, 0, 0, 0) // total loss window, zero decoded bits
	h := m.Health(0)
	if h.State != Failed {
		t.Fatalf("state = %v, want failed (loss test, not BER)", h.State)
	}
	if h.HasBERData() {
		t.Error("dead channel accumulated BER data")
	}
	if tr := m.Transitions(); tr.HealthyToFailed != 1 {
		t.Errorf("transitions = %+v, want one healthy->failed", tr)
	}
}

func TestSnapshotIntoReusesBuffer(t *testing.T) {
	m := NewMonitor(8, DefaultMonitorConfig())
	buf := make([]ChannelHealth, 0, 8)
	got := m.SnapshotInto(buf)
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Error("SnapshotInto reallocated despite sufficient capacity")
	}
	if nil2 := m.SnapshotInto(nil); len(nil2) != 8 {
		t.Errorf("SnapshotInto(nil) len = %d, want 8", len(nil2))
	}
	// Snapshot and SnapshotInto agree.
	if !reflect.DeepEqual(m.Snapshot(), got) {
		t.Error("Snapshot and SnapshotInto disagree")
	}
}
