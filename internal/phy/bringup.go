package phy

import (
	"fmt"
	"sort"
)

// Link bring-up: before carrying traffic, a Mosaic endpoint probes every
// physical channel — including the spares — with test patterns, takes dead
// and hopeless channels out of service, and only then declares the link
// up. This is the power-on self-test that makes day-one manufacturing
// defects (and transport damage) invisible to the host.

// LinkState is the bring-up state of the link.
type LinkState int

// Bring-up states.
const (
	StateDown LinkState = iota
	StateProbing
	StateUp
	StateDegraded // up, but with fewer lanes than configured
)

// String names the state.
func (s LinkState) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateProbing:
		return "probing"
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// probeScratch holds ProbeChannel's reusable buffers. Bring-up is serial
// (one probe at a time per link), so a single set suffices.
type probeScratch struct {
	payload []byte
	wire    []byte
	rx      []byte
	body    []byte
}

// ProbeChannel sends `count` probe frames over one physical channel and
// returns how many came back intact and how many errors the FEC corrected.
// It exercises exactly the per-channel path traffic uses (framer + FEC +
// channel) without involving the gearbox.
func (l *Link) ProbeChannel(physical, count int) (ok, corrections int) {
	if physical < 0 || physical >= len(l.channels) || count <= 0 {
		return 0, 0
	}
	ch := &l.channels[physical]
	ps := &l.probe
	if cap(ps.payload) < l.framer.PayloadLen() {
		ps.payload = make([]byte, l.framer.PayloadLen())
	}
	payload := ps.payload[:l.framer.PayloadLen()]
	for i := range payload {
		payload[i] = byte(i*7 + physical) // deterministic test pattern
	}
	wire := ps.wire[:0]
	if need := count * l.framer.WireLen(); cap(wire) < need {
		wire = make([]byte, 0, need)
	}
	for seq := 0; seq < count; seq++ {
		wire = l.framer.AppendFrame(wire, 0x7fff, uint32(seq), payload, &ps.body)
	}
	ps.wire = wire
	ps.rx = ch.TransmitTo(ps.rx[:0], wire)
	st := l.framer.ScanStream(ps.rx, &ps.body, func(lane int, _ uint32, got []byte, _ int) {
		if lane == 0x7fff && byteEqual(got, payload) {
			ok++
		}
	})
	return ok, st.Corrections
}

func byteEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BringupReport summarises a bring-up sequence.
type BringupReport struct {
	State        LinkState
	Probed       int
	DeadChannels []int
	Remaps       []RemapEvent
	Lanes        int // active lanes after bring-up
	SparesLeft   int
}

// String renders the report.
func (r BringupReport) String() string {
	return fmt.Sprintf("bringup: %v, %d probed, %d dead %v, %d lanes, %d spares left",
		r.State, r.Probed, len(r.DeadChannels), r.DeadChannels, r.Lanes, r.SparesLeft)
}

// Bringup probes every physical channel with `probeFrames` test frames,
// fails channels that return fewer than half of them, and returns the
// resulting link state. It is idempotent: already-failed channels are not
// probed again.
func (l *Link) Bringup(probeFrames int) BringupReport {
	if probeFrames <= 0 {
		probeFrames = 8
	}
	rep := BringupReport{State: StateProbing}
	var dead []int
	for p := range l.channels {
		if l.monitor.Health(p).State == Failed {
			continue // already out of service
		}
		rep.Probed++
		ok, _ := l.ProbeChannel(p, probeFrames)
		if ok*2 < probeFrames {
			dead = append(dead, p)
		}
	}
	sort.Ints(dead)
	for _, p := range dead {
		l.monitor.MarkFailed(p)
		rep.Remaps = append(rep.Remaps, l.mapper.Fail(p))
	}
	rep.DeadChannels = dead
	rep.Lanes = l.mapper.NumLanes()
	rep.SparesLeft = l.mapper.SparesLeft()
	switch {
	case rep.Lanes == 0:
		rep.State = StateDown
	case rep.Lanes < l.cfg.Lanes:
		rep.State = StateDegraded
	default:
		rep.State = StateUp
	}
	return rep
}
