package phy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"mosaic/internal/coding/linecode"
)

// The TX → channel → RX hot path is an explicit staged pipeline:
//
//	frame → encode (blocks → serial stream) → scramble → stripe →
//	per-lane transmit/decode → destripe → descramble → parse
//
// The serial stages run on the caller's goroutine and reuse buffers held
// in linkScratch; the per-lane stage fans out over the persistent worker
// pool (pool.go), each lane working exclusively on its own laneState.
// Striping allocates nothing: the padded TX stream is already a whole
// number of units, so unit (seq, lane) is the byte view
// stream[(seq*lanes+lane)*unitLen:], and on the receive side the lanes
// write recovered units straight into their disjoint slots of the
// reassembly buffer — the destripe permutation is an index computation,
// not a data structure.

// laneState is one lane's persistent working set. A lane is touched by
// exactly one pool worker per Exchange, so no locking is needed; buffers
// grow to the high-water mark and are reused on every subsequent call.
type laneState struct {
	wire []byte // encoded channel frames (TX side)
	rx   []byte // received bytes (skew prefix + noise applied)
	body []byte // framer body scratch, shared by encode and decode
	seen []bool // which unit sequence numbers arrived intact

	physical  int
	expected  int // units assigned to this lane
	good      int // accepted channel frames (lane and seq in range)
	wireBytes int
	stats     DecodeStats
}

// linkScratch holds the reusable buffers of the serial stages.
type linkScratch struct {
	blocks   []linecode.Block
	fcs      []byte // frame + FCS staging
	stream   []byte // TX serial stream, scrambled in place
	rxStream []byte // RX reassembled stream, descrambled in place
	parse    []byte // frame-in-progress buffer for the parse stage
	lanes    []laneState
}

// laneStates returns n lane slots, preserving per-lane buffers across
// calls (and across lane-count changes after sparing remaps).
func (sc *linkScratch) laneStates(n int) []laneState {
	if cap(sc.lanes) < n {
		grown := make([]laneState, n)
		copy(grown, sc.lanes[:cap(sc.lanes)])
		sc.lanes = grown
	}
	sc.lanes = sc.lanes[:n]
	return sc.lanes
}

// rxStreamBuf returns a zeroed reassembly buffer of n bytes; missing
// units keep the zero fill so downstream alignment survives loss.
func (sc *linkScratch) rxStreamBuf(n int) []byte {
	if cap(sc.rxStream) < n {
		sc.rxStream = make([]byte, n)
		return sc.rxStream
	}
	sc.rxStream = sc.rxStream[:n]
	s := sc.rxStream
	for i := range s {
		s[i] = 0
	}
	return s
}

// stageEncode converts user frames into the padded, serialized block
// stream: per-frame FCS, 64b/66b blocks, inter-frame idles, and idle
// padding to a whole number of stripe units.
func (l *Link) stageEncode(frames [][]byte, st *ExchangeStats) ([]byte, error) {
	sc := &l.scratch
	blocks := sc.blocks[:0]
	for _, f := range frames {
		if len(f) < 3 {
			sc.blocks = blocks
			return nil, fmt.Errorf("phy: frame of %d bytes below minimum 3", len(f))
		}
		st.PayloadBytes += len(f)
		withFCS := append(sc.fcs[:0], f...)
		var fcs [4]byte
		binary.BigEndian.PutUint32(fcs[:], crc32.ChecksumIEEE(f))
		withFCS = append(withFCS, fcs[:]...)
		sc.fcs = withFCS
		var err error
		blocks, err = linecode.AppendFrameBlocks(blocks, withFCS)
		if err != nil {
			sc.blocks = blocks
			return nil, err
		}
		blocks = append(blocks, linecode.IdleBlock())
	}
	// Pad with idle blocks to a whole number of stripe units so the
	// gearbox never has to invent fill bytes after scrambling.
	unitBlocks := l.cfg.UnitLen / 9
	for len(blocks)%unitBlocks != 0 {
		blocks = append(blocks, linecode.IdleBlock())
	}
	sc.blocks = blocks

	stream := sc.stream[:0]
	if need := 9 * len(blocks); cap(stream) < need {
		stream = make([]byte, 0, need)
	}
	for _, b := range blocks {
		sync, payload, err := b.Encode()
		if err != nil {
			return nil, err
		}
		stream = append(stream, sync)
		stream = append(stream, payload[:]...)
	}
	sc.stream = stream
	return stream, nil
}

// laneUnits returns how many stripe units land on a lane: units are dealt
// round-robin, unit g to lane g mod lanes with sequence g div lanes.
func laneUnits(totalUnits, lanes, lane int) int {
	return (totalUnits - lane + lanes - 1) / lanes
}

// LaneUnits exposes the striper's unit-count arithmetic so differential
// harnesses can compare it against a reference striper that materialises
// the units.
func LaneUnits(totalUnits, lanes, lane int) int {
	return laneUnits(totalUnits, lanes, lane)
}

// stageLane runs one lane end to end: frame each of its units, push the
// wire bytes through the lane's physical channel, then hunt, FEC-decode,
// and validate the received stream, writing recovered units directly into
// this lane's disjoint slots of rxStream.
func (l *Link) stageLane(lane, lanes, totalUnits int, txStream, rxStream []byte, ls *laneState) {
	unitLen := l.cfg.UnitLen
	physical := l.mapper.Physical(lane)
	ch := l.channels[physical]
	expected := laneUnits(totalUnits, lanes, lane)
	ls.physical = physical
	ls.expected = expected
	ls.good = 0

	wire := ls.wire[:0]
	if need := expected * l.framer.WireLen(); cap(wire) < need {
		wire = make([]byte, 0, need)
	}
	for seq := 0; seq < expected; seq++ {
		g := seq*lanes + lane
		wire = l.framer.AppendFrame(wire, lane, uint32(seq), txStream[g*unitLen:(g+1)*unitLen], &ls.body)
	}
	ls.wire = wire
	ls.wireBytes = len(wire)

	ls.rx = ch.TransmitTo(ls.rx[:0], wire)

	if cap(ls.seen) < expected {
		ls.seen = make([]bool, expected)
	}
	ls.seen = ls.seen[:expected]
	for i := range ls.seen {
		ls.seen[i] = false
	}
	ls.stats = l.framer.ScanStream(ls.rx, &ls.body, func(frLane int, seq uint32, payload []byte, ncorr int) {
		// Lane mismatches would indicate a miswired remap; drop them.
		if frLane != lane || int(seq) >= expected {
			return
		}
		g := int(seq)*lanes + lane
		copy(rxStream[g*unitLen:(g+1)*unitLen], payload)
		ls.seen[seq] = true
		ls.good++
	})
}

// stageFold merges the per-lane results serially, in lane order, so the
// monitor observation sequence — and every statistic — is independent of
// worker count.
func (l *Link) stageFold(states []laneState, st *ExchangeStats) {
	for i := range states {
		ls := &states[i]
		st.WireBytes += ls.wireBytes
		st.Corrections += ls.stats.Corrections
		st.PerChannel[ls.physical] = ls.stats
		for _, got := range ls.seen {
			if !got {
				st.UnitsLost++
			}
		}
		l.monitor.Observe(ls.physical, ls.expected, ls.good, ls.stats.Corrections,
			uint64(ls.wireBytes)*8)
	}
}
