package phy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"mosaic/internal/coding/linecode"
)

// The TX → channel → RX hot path is an explicit staged pipeline:
//
//	frame → encode (blocks → serial stream) → scramble → stripe →
//	per-lane transmit/decode → destripe → descramble → parse
//
// The serial stages run on the caller's goroutine and reuse buffers held
// in linkScratch; the per-lane stage fans out over the persistent worker
// pool (pool.go), each lane working exclusively on its own laneState.
// Striping allocates nothing: the padded TX stream is already a whole
// number of units, so unit (seq, lane) is the byte view
// stream[(seq*lanes+lane)*unitLen:], and on the receive side the lanes
// write recovered units straight into their disjoint slots of the
// reassembly buffer — the destripe permutation is an index computation,
// not a data structure.

// laneState is one lane's persistent working set. A lane is touched by
// exactly one pool worker per Exchange, so no locking is needed; buffers
// grow to the high-water mark and are reused on every subsequent call.
// States are held by pointer so the emit closure below can capture its
// laneState once, at construction, and survive lane-count growth.
type laneState struct {
	wire []byte // encoded channel frames (TX side)
	rx   []byte // received bytes (skew prefix + noise applied)
	body []byte // framer body scratch, shared by encode and decode
	seen []bool // which unit sequence numbers arrived intact

	physical  int
	expected  int // units assigned to this lane
	good      int // accepted channel frames (lane and seq in range)
	wireBytes int
	stats     DecodeStats

	// Per-Exchange striping parameters, set by stageLane before the scan
	// so the persistent emit closure needs no per-call captures.
	laneIdx  int
	lanesCnt int
	unitLen  int
	rxOut    []byte
	emit     func(lane int, seq uint32, payload []byte, ncorr int)
}

// init installs the persistent emit closure; the laneState must already
// have its final address (states are slab-allocated, then pinned by
// pointer in linkScratch.lanes).
func (ls *laneState) init() {
	ls.emit = func(frLane int, seq uint32, payload []byte, ncorr int) {
		// Lane mismatches would indicate a miswired remap; drop them.
		if frLane != ls.laneIdx || int(seq) >= ls.expected {
			return
		}
		g := int(seq)*ls.lanesCnt + ls.laneIdx
		copy(ls.rxOut[g*ls.unitLen:(g+1)*ls.unitLen], payload)
		ls.seen[seq] = true
		ls.good++
	}
}

// linkScratch holds the reusable buffers of the serial stages.
type linkScratch struct {
	blocks   []linecode.Block
	fcs      []byte // frame + FCS staging
	stream   []byte // TX serial stream, scrambled in place
	rxStream []byte // RX reassembled stream, descrambled in place
	parse    []byte // frame-in-progress buffer for the parse stage
	lanes    []*laneState

	// Arguments of the in-flight per-lane stage, read by the persistent
	// dispatch function (see Link.stageLaneIdx): striping geometry plus
	// the TX and RX streams.
	curLanes int
	curUnits int
	curTx    []byte
	curRx    []byte
}

// rxSkewSlack is the extra capacity carved per lane for the RX buffer so
// modest channel skew (a random prefix of junk bytes) doesn't force the
// lane out of its slab slot.
const rxSkewSlack = 32

// prepareLanes returns n lane slots, preserving per-lane buffers across
// calls (and across lane-count changes after sparing remaps). Lanes whose
// buffers are too small for this Exchange get fresh ones carved out of a
// single shared slab — link construction costs a handful of allocations,
// not four per lane.
func (sc *linkScratch) prepareLanes(n, wireNeed, seenNeed, bodyLen int) []*laneState {
	if len(sc.lanes) < n {
		fresh := make([]laneState, n-len(sc.lanes))
		for i := range fresh {
			fresh[i].init()
			sc.lanes = append(sc.lanes, &fresh[i])
		}
	}
	lanes := sc.lanes[:n]
	rxNeed := wireNeed + rxSkewSlack
	var byteDef, boolDef int
	for _, ls := range lanes {
		if cap(ls.wire) < wireNeed {
			byteDef += wireNeed
		}
		if cap(ls.rx) < rxNeed {
			byteDef += rxNeed
		}
		if cap(ls.body) < bodyLen {
			byteDef += bodyLen
		}
		if cap(ls.seen) < seenNeed {
			boolDef += seenNeed
		}
	}
	if byteDef > 0 {
		slab := make([]byte, byteDef)
		off := 0
		for _, ls := range lanes {
			// Full slice expressions cap every slot exactly, so a lane
			// that outgrows its slot reallocates privately instead of
			// clobbering its neighbor.
			if cap(ls.wire) < wireNeed {
				ls.wire = slab[off : off : off+wireNeed]
				off += wireNeed
			}
			if cap(ls.rx) < rxNeed {
				ls.rx = slab[off : off : off+rxNeed]
				off += rxNeed
			}
			if cap(ls.body) < bodyLen {
				ls.body = slab[off : off : off+bodyLen]
				off += bodyLen
			}
		}
	}
	if boolDef > 0 {
		slab := make([]bool, boolDef)
		off := 0
		for _, ls := range lanes {
			if cap(ls.seen) < seenNeed {
				ls.seen = slab[off : off : off+seenNeed]
				off += seenNeed
			}
		}
	}
	return lanes
}

// rxStreamBuf returns a zeroed reassembly buffer of n bytes; missing
// units keep the zero fill so downstream alignment survives loss.
func (sc *linkScratch) rxStreamBuf(n int) []byte {
	if cap(sc.rxStream) < n {
		sc.rxStream = make([]byte, n)
		return sc.rxStream
	}
	sc.rxStream = sc.rxStream[:n]
	s := sc.rxStream
	for i := range s {
		s[i] = 0
	}
	return s
}

// stageEncode converts user frames into the padded, serialized block
// stream: per-frame FCS, 64b/66b blocks, inter-frame idles, and idle
// padding to a whole number of stripe units.
func (l *Link) stageEncode(frames [][]byte, st *ExchangeStats) ([]byte, error) {
	sc := &l.scratch
	// Size the block slice up front (start + data + term + idle per frame,
	// plus worst-case unit padding) so the encode loop never regrows it —
	// the append-doubling chain on a fresh link was a measurable slice of
	// the whole exchange's allocations.
	unitBlocks := l.cfg.UnitLen / 9
	need := unitBlocks
	for _, f := range frames {
		need += 3 + (len(f)+4)/8
	}
	if cap(sc.blocks) < need {
		sc.blocks = make([]linecode.Block, 0, need)
	}
	blocks := sc.blocks[:0]
	for _, f := range frames {
		if len(f) < 3 {
			sc.blocks = blocks
			return nil, fmt.Errorf("phy: frame of %d bytes below minimum 3", len(f))
		}
		st.PayloadBytes += len(f)
		withFCS := append(sc.fcs[:0], f...)
		var fcs [4]byte
		binary.BigEndian.PutUint32(fcs[:], crc32.ChecksumIEEE(f))
		withFCS = append(withFCS, fcs[:]...)
		sc.fcs = withFCS
		var err error
		blocks, err = linecode.AppendFrameBlocks(blocks, withFCS)
		if err != nil {
			sc.blocks = blocks
			return nil, err
		}
		blocks = append(blocks, linecode.IdleBlock())
	}
	// Pad with idle blocks to a whole number of stripe units so the
	// gearbox never has to invent fill bytes after scrambling.
	for len(blocks)%unitBlocks != 0 {
		blocks = append(blocks, linecode.IdleBlock())
	}
	sc.blocks = blocks

	stream := sc.stream[:0]
	if need := 9 * len(blocks); cap(stream) < need {
		stream = make([]byte, 0, need)
	}
	for _, b := range blocks {
		sync, payload, err := b.Encode()
		if err != nil {
			return nil, err
		}
		stream = append(stream, sync)
		stream = append(stream, payload[:]...)
	}
	sc.stream = stream
	return stream, nil
}

// laneUnits returns how many stripe units land on a lane: units are dealt
// round-robin, unit g to lane g mod lanes with sequence g div lanes.
func laneUnits(totalUnits, lanes, lane int) int {
	return (totalUnits - lane + lanes - 1) / lanes
}

// LaneUnits exposes the striper's unit-count arithmetic so differential
// harnesses can compare it against a reference striper that materialises
// the units.
func LaneUnits(totalUnits, lanes, lane int) int {
	return laneUnits(totalUnits, lanes, lane)
}

// stageLaneIdx is the persistent dispatch function handed to the link's
// laneDispatcher at construction: it reads the in-flight Exchange's
// striping arguments from linkScratch, so no per-call closure exists on
// the hot path.
func (l *Link) stageLaneIdx(lane int) {
	sc := &l.scratch
	l.stageLane(lane, sc.curLanes, sc.curUnits, sc.curTx, sc.curRx, sc.lanes[lane])
}

// stageLane runs one lane end to end: frame each of its units, push the
// wire bytes through the lane's physical channel, then hunt, FEC-decode,
// and validate the received stream, writing recovered units directly into
// this lane's disjoint slots of rxStream (via the lane's persistent emit
// closure).
func (l *Link) stageLane(lane, lanes, totalUnits int, txStream, rxStream []byte, ls *laneState) {
	unitLen := l.cfg.UnitLen
	physical := l.mapper.Physical(lane)
	ch := &l.channels[physical]
	expected := laneUnits(totalUnits, lanes, lane)
	ls.physical = physical
	ls.expected = expected
	ls.good = 0
	ls.laneIdx = lane
	ls.lanesCnt = lanes
	ls.unitLen = unitLen
	ls.rxOut = rxStream

	wire := ls.wire[:0]
	if need := expected * l.framer.WireLen(); cap(wire) < need {
		wire = make([]byte, 0, need)
	}
	for seq := 0; seq < expected; seq++ {
		g := seq*lanes + lane
		wire = l.framer.AppendFrame(wire, lane, uint32(seq), txStream[g*unitLen:(g+1)*unitLen], &ls.body)
	}
	ls.wire = wire
	ls.wireBytes = len(wire)

	ls.rx = ch.TransmitTo(ls.rx[:0], wire)

	if cap(ls.seen) < expected {
		ls.seen = make([]bool, expected)
	}
	ls.seen = ls.seen[:expected]
	for i := range ls.seen {
		ls.seen[i] = false
	}
	ls.stats = l.framer.ScanStream(ls.rx, &ls.body, ls.emit)
	ls.rxOut = nil
}

// stageFold merges the per-lane results serially, in lane order, so the
// monitor observation sequence — and every statistic — is independent of
// worker count.
func (l *Link) stageFold(states []*laneState, st *ExchangeStats) {
	for _, ls := range states {
		st.WireBytes += ls.wireBytes
		st.Corrections += ls.stats.Corrections
		st.PerChannel[ls.physical] = ls.stats
		for _, got := range ls.seen {
			if !got {
				st.UnitsLost++
			}
		}
		l.monitor.Observe(ls.physical, ls.expected, ls.good, ls.stats.Corrections,
			uint64(ls.wireBytes)*8)
	}
}
