package phy

import (
	"errors"
	"fmt"
	"sync"

	"mosaic/internal/coding/hamming"
	"mosaic/internal/coding/rs"
)

// FEC is the per-channel forward error correction applied to each channel
// frame. Implementations segment the byte stream into code blocks
// internally. Decode is given the expected plaintext length so padding can
// be stripped deterministically.
//
// Implementations must be safe for concurrent use (the per-channel workers
// run in parallel).
type FEC interface {
	// Name identifies the scheme (for reports).
	Name() string
	// Overhead returns the rate overhead, (encoded-plain)/plain.
	Overhead() float64
	// EncodedLen returns the encoded size of a plaintext of n bytes.
	EncodedLen(n int) int
	// Encode returns the encoded bytes (fresh slice).
	Encode(plain []byte) []byte
	// Decode corrects errors and returns plainLen bytes plus the number of
	// corrected symbol/bit errors. It returns an error when a block was
	// uncorrectable (the returned bytes are then best-effort).
	Decode(encoded []byte, plainLen int) ([]byte, int, error)
	// AppendEncode appends the encoded bytes to dst and returns the
	// extended slice; the allocation-aware hot path uses this so one
	// per-lane wire buffer absorbs every frame.
	AppendEncode(dst, plain []byte) []byte
	// AppendDecode appends plainLen decoded bytes to dst; semantics
	// otherwise match Decode.
	AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error)
}

// ErrFECOverload indicates at least one code block was uncorrectable.
var ErrFECOverload = errors.New("phy: uncorrectable FEC block")

// --- No FEC ---

// NoFEC passes data through unprotected; the baseline ablation point.
type NoFEC struct{}

// Name implements FEC.
func (NoFEC) Name() string { return "none" }

// Overhead implements FEC.
func (NoFEC) Overhead() float64 { return 0 }

// EncodedLen implements FEC.
func (NoFEC) EncodedLen(n int) int { return n }

// Encode implements FEC.
func (NoFEC) Encode(plain []byte) []byte {
	return append([]byte(nil), plain...)
}

// Decode implements FEC.
func (NoFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	if plainLen > len(encoded) {
		return nil, 0, fmt.Errorf("phy: NoFEC stream shorter (%d) than plaintext (%d)", len(encoded), plainLen)
	}
	return append([]byte(nil), encoded[:plainLen]...), 0, nil
}

// AppendEncode implements FEC.
func (NoFEC) AppendEncode(dst, plain []byte) []byte {
	return append(dst, plain...)
}

// AppendDecode implements FEC.
func (NoFEC) AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error) {
	if plainLen > len(encoded) {
		return dst, 0, fmt.Errorf("phy: NoFEC stream shorter (%d) than plaintext (%d)", len(encoded), plainLen)
	}
	return append(dst, encoded[:plainLen]...), 0, nil
}

// --- Hamming(72,64) SEC-DED ---

// HammingFEC protects each 8-byte word with one check byte: 12.5% overhead,
// single-bit correction per word. The "nearly free" design point for
// channels that are already almost error-free.
type HammingFEC struct{}

// Name implements FEC.
func (HammingFEC) Name() string { return "hamming72" }

// Overhead implements FEC.
func (HammingFEC) Overhead() float64 { return hamming.Overhead() }

// EncodedLen implements FEC.
func (HammingFEC) EncodedLen(n int) int {
	words := (n + 7) / 8
	return words * 9
}

// Encode implements FEC.
func (h HammingFEC) Encode(plain []byte) []byte {
	words := (len(plain) + 7) / 8
	return h.AppendEncode(make([]byte, 0, words*9), plain)
}

// AppendEncode implements FEC.
func (HammingFEC) AppendEncode(out, plain []byte) []byte {
	words := (len(plain) + 7) / 8
	for w := 0; w < words; w++ {
		var v uint64
		for i := 0; i < 8; i++ {
			idx := w*8 + i
			if idx < len(plain) {
				v |= uint64(plain[idx]) << uint(8*i)
			}
		}
		cw := hamming.Encode(v)
		for i := 0; i < 8; i++ {
			out = append(out, byte(cw.Data>>uint(8*i)))
		}
		out = append(out, cw.Check)
	}
	return out
}

// Decode implements FEC.
func (h HammingFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	return h.AppendDecode(make([]byte, 0, plainLen), encoded, plainLen)
}

// AppendDecode implements FEC.
func (HammingFEC) AppendDecode(out, encoded []byte, plainLen int) ([]byte, int, error) {
	words := (plainLen + 7) / 8
	if len(encoded) < words*9 {
		return out, 0, fmt.Errorf("phy: hamming stream truncated: %d < %d", len(encoded), words*9)
	}
	base := len(out)
	corrections := 0
	var firstErr error
	for w := 0; w < words; w++ {
		blk := encoded[w*9 : w*9+9]
		var cw hamming.Codeword
		for i := 0; i < 8; i++ {
			cw.Data |= uint64(blk[i]) << uint(8*i)
		}
		cw.Check = blk[8]
		data, res, err := hamming.Decode(cw)
		switch res {
		case hamming.Corrected:
			corrections++
		case hamming.Detected:
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: word %d: %v", ErrFECOverload, w, err)
			}
		}
		for i := 0; i < 8 && len(out) < base+plainLen; i++ {
			out = append(out, byte(data>>uint(8*i)))
		}
	}
	return out, corrections, firstErr
}

// --- Reed-Solomon (byte symbols) ---

// RSFEC wraps an RS code for the byte-oriented channel stream. Codes over
// GF(2^8) map one symbol per byte; larger fields (KP4/KR4 over GF(2^10))
// pack each symbol into two bytes so parity symbols above 255 survive the
// wire. The 16-bits-per-10-bit-symbol padding overstates KP4's wire
// overhead but preserves its per-block correction behaviour, which is what
// the experiments compare; Overhead() reports the true code rate.
type RSFEC struct {
	code     *rs.Code
	symBytes int
	// scratch pools per-call symbol buffers so the concurrent per-lane
	// workers share one allocation-free codec.
	scratch sync.Pool
}

// rsScratch holds the symbol-domain working set for one encode or decode
// call: data/received symbols, the output codeword, and syndrome space.
type rsScratch struct {
	word []int
	cw   []int
	syn  []int
}

// NewRSLite returns the light per-channel RS(68,64) over GF(2^8): t=2 per
// block at 6.25% overhead — the paper-class "wide channels need only a
// whisper of FEC" operating point.
func NewRSLite() *RSFEC {
	c, err := rs.Lite(68, 64)
	if err != nil {
		panic(err)
	}
	return NewRSFEC(c)
}

// NewRSKP4 returns RS(544,514), the heavyweight Ethernet FEC baseline.
func NewRSKP4() *RSFEC { return NewRSFEC(rs.KP4()) }

// NewRSFEC wraps an arbitrary code, choosing the symbol serialization
// width from the field size.
func NewRSFEC(c *rs.Code) *RSFEC {
	sb := 1
	if c.Field().Size() > 256 {
		sb = 2
	}
	f := &RSFEC{code: c, symBytes: sb}
	f.scratch.New = func() any {
		return &rsScratch{
			word: make([]int, c.N()),
			cw:   make([]int, c.N()),
			syn:  make([]int, c.Parity()),
		}
	}
	return f
}

// Name implements FEC.
func (r *RSFEC) Name() string { return r.code.String() }

// Overhead implements FEC.
func (r *RSFEC) Overhead() float64 { return r.code.OverheadFraction() }

// EncodedLen implements FEC.
func (r *RSFEC) EncodedLen(n int) int {
	k := r.code.K()
	blocks := (n + k - 1) / k
	return blocks * r.code.N() * r.symBytes
}

// putSym serialises one field symbol.
func (r *RSFEC) putSym(dst []byte, s int) {
	if r.symBytes == 1 {
		dst[0] = byte(s)
		return
	}
	dst[0] = byte(s >> 8)
	dst[1] = byte(s)
}

// getSym reads one field symbol, masking to the field size so corrupted
// high bits cannot escape the field.
func (r *RSFEC) getSym(src []byte) int {
	if r.symBytes == 1 {
		return int(src[0])
	}
	return (int(src[0])<<8 | int(src[1])) & (r.code.Field().Size() - 1)
}

// Encode implements FEC.
func (r *RSFEC) Encode(plain []byte) []byte {
	return r.AppendEncode(nil, plain)
}

// AppendEncode implements FEC.
func (r *RSFEC) AppendEncode(dst, plain []byte) []byte {
	k, n := r.code.K(), r.code.N()
	blocks := (len(plain) + k - 1) / k
	base := len(dst)
	need := blocks * n * r.symBytes
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	sc := r.scratch.Get().(*rsScratch)
	syms := sc.word[:k]
	for b := 0; b < blocks; b++ {
		for i := 0; i < k; i++ {
			idx := b*k + i
			if idx < len(plain) {
				syms[i] = int(plain[idx])
			} else {
				syms[i] = 0
			}
		}
		if err := r.code.EncodeTo(sc.cw, syms); err != nil {
			panic(err) // symbols are bytes; cannot be out of range
		}
		off := base + b*n*r.symBytes
		for i, s := range sc.cw {
			r.putSym(dst[off+i*r.symBytes:], s)
		}
	}
	r.scratch.Put(sc)
	return dst
}

// Decode implements FEC.
func (r *RSFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	return r.AppendDecode(make([]byte, 0, plainLen), encoded, plainLen)
}

// AppendDecode implements FEC.
func (r *RSFEC) AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error) {
	k, n := r.code.K(), r.code.N()
	blocks := (plainLen + k - 1) / k
	need := blocks * n * r.symBytes
	if len(encoded) < need {
		return dst, 0, fmt.Errorf("phy: RS stream truncated: %d < %d", len(encoded), need)
	}
	start := len(dst)
	corrections := 0
	var firstErr error
	sc := r.scratch.Get().(*rsScratch)
	for b := 0; b < blocks; b++ {
		base := b * n * r.symBytes
		for i := 0; i < n; i++ {
			sc.word[i] = r.getSym(encoded[base+i*r.symBytes:])
		}
		ncorr, err := r.code.DecodeTo(sc.cw, sc.word, sc.syn)
		fixed := sc.cw
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: block %d: %v", ErrFECOverload, b, err)
			}
			fixed = sc.word // best effort: pass through
		}
		corrections += ncorr
		data := r.code.Data(fixed)
		for i := 0; i < k && len(dst) < start+plainLen; i++ {
			dst = append(dst, byte(data[i]))
		}
	}
	r.scratch.Put(sc)
	return dst, corrections, firstErr
}

// FECByName returns a FEC scheme by its configuration name; used by CLIs.
func FECByName(name string) (FEC, error) {
	switch name {
	case "", "none":
		return NoFEC{}, nil
	case "hamming", "hamming72":
		return HammingFEC{}, nil
	case "rslite", "rs-lite":
		return NewRSLite(), nil
	case "kp4", "rs544":
		return NewRSKP4(), nil
	default:
		return nil, fmt.Errorf("phy: unknown FEC %q (want none|hamming72|rslite|kp4)", name)
	}
}
