package phy

import (
	"errors"
	"fmt"
	"sync"

	"mosaic/internal/coding/hamming"
	"mosaic/internal/coding/rs"
)

// FEC is the per-channel forward error correction applied to each channel
// frame. Implementations segment the byte stream into code blocks
// internally. Decode is given the expected plaintext length so padding can
// be stripped deterministically.
//
// Implementations must be safe for concurrent use (the per-channel workers
// run in parallel).
type FEC interface {
	// Name identifies the scheme (for reports).
	Name() string
	// Overhead returns the rate overhead, (encoded-plain)/plain.
	Overhead() float64
	// EncodedLen returns the encoded size of a plaintext of n bytes.
	EncodedLen(n int) int
	// Encode returns the encoded bytes (fresh slice).
	Encode(plain []byte) []byte
	// Decode corrects errors and returns plainLen bytes plus the number of
	// corrected symbol/bit errors. It returns an error when a block was
	// uncorrectable (the returned bytes are then best-effort).
	Decode(encoded []byte, plainLen int) ([]byte, int, error)
	// AppendEncode appends the encoded bytes to dst and returns the
	// extended slice; the allocation-aware hot path uses this so one
	// per-lane wire buffer absorbs every frame.
	AppendEncode(dst, plain []byte) []byte
	// AppendDecode appends plainLen decoded bytes to dst; semantics
	// otherwise match Decode.
	AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error)
}

// ErrFECOverload indicates at least one code block was uncorrectable.
var ErrFECOverload = errors.New("phy: uncorrectable FEC block")

// --- No FEC ---

// NoFEC passes data through unprotected; the baseline ablation point.
type NoFEC struct{}

// Name implements FEC.
func (NoFEC) Name() string { return "none" }

// Overhead implements FEC.
func (NoFEC) Overhead() float64 { return 0 }

// EncodedLen implements FEC.
func (NoFEC) EncodedLen(n int) int { return n }

// Encode implements FEC.
func (NoFEC) Encode(plain []byte) []byte {
	return append([]byte(nil), plain...)
}

// Decode implements FEC.
func (NoFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	if plainLen > len(encoded) {
		return nil, 0, fmt.Errorf("phy: NoFEC stream shorter (%d) than plaintext (%d)", len(encoded), plainLen)
	}
	return append([]byte(nil), encoded[:plainLen]...), 0, nil
}

// AppendEncode implements FEC.
func (NoFEC) AppendEncode(dst, plain []byte) []byte {
	return append(dst, plain...)
}

// AppendDecode implements FEC.
func (NoFEC) AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error) {
	if plainLen > len(encoded) {
		return dst, 0, fmt.Errorf("phy: NoFEC stream shorter (%d) than plaintext (%d)", len(encoded), plainLen)
	}
	return append(dst, encoded[:plainLen]...), 0, nil
}

// --- Hamming(72,64) SEC-DED ---

// HammingFEC protects each 8-byte word with one check byte: 12.5% overhead,
// single-bit correction per word. The "nearly free" design point for
// channels that are already almost error-free.
type HammingFEC struct{}

// Name implements FEC.
func (HammingFEC) Name() string { return "hamming72" }

// Overhead implements FEC.
func (HammingFEC) Overhead() float64 { return hamming.Overhead() }

// EncodedLen implements FEC.
func (HammingFEC) EncodedLen(n int) int {
	words := (n + 7) / 8
	return words * 9
}

// Encode implements FEC.
func (h HammingFEC) Encode(plain []byte) []byte {
	words := (len(plain) + 7) / 8
	return h.AppendEncode(make([]byte, 0, words*9), plain)
}

// AppendEncode implements FEC.
func (HammingFEC) AppendEncode(out, plain []byte) []byte {
	words := (len(plain) + 7) / 8
	for w := 0; w < words; w++ {
		var v uint64
		for i := 0; i < 8; i++ {
			idx := w*8 + i
			if idx < len(plain) {
				v |= uint64(plain[idx]) << uint(8*i)
			}
		}
		cw := hamming.Encode(v)
		for i := 0; i < 8; i++ {
			out = append(out, byte(cw.Data>>uint(8*i)))
		}
		out = append(out, cw.Check)
	}
	return out
}

// Decode implements FEC.
func (h HammingFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	return h.AppendDecode(make([]byte, 0, plainLen), encoded, plainLen)
}

// AppendDecode implements FEC.
func (HammingFEC) AppendDecode(out, encoded []byte, plainLen int) ([]byte, int, error) {
	words := (plainLen + 7) / 8
	if len(encoded) < words*9 {
		return out, 0, fmt.Errorf("phy: hamming stream truncated: %d < %d", len(encoded), words*9)
	}
	base := len(out)
	corrections := 0
	var firstErr error
	for w := 0; w < words; w++ {
		blk := encoded[w*9 : w*9+9]
		var cw hamming.Codeword
		for i := 0; i < 8; i++ {
			cw.Data |= uint64(blk[i]) << uint(8*i)
		}
		cw.Check = blk[8]
		data, res, err := hamming.Decode(cw)
		switch res {
		case hamming.Corrected:
			corrections++
		case hamming.Detected:
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: word %d: %v", ErrFECOverload, w, err)
			}
		}
		for i := 0; i < 8 && len(out) < base+plainLen; i++ {
			out = append(out, byte(data>>uint(8*i)))
		}
	}
	return out, corrections, firstErr
}

// --- Reed-Solomon (byte symbols) ---

// RSFEC wraps an RS code for the byte-oriented channel stream. Codes over
// GF(2^8) map one symbol per byte; larger fields (KP4/KR4 over GF(2^10))
// pack each symbol into two bytes so parity symbols above 255 survive the
// wire. The 16-bits-per-10-bit-symbol padding overstates KP4's wire
// overhead but preserves its per-block correction behaviour, which is what
// the experiments compare; Overhead() reports the true code rate.
type RSFEC struct {
	code     *rs.Code
	symBytes int
	// fast is the byte-domain table-driven codec (rs.Codec8) for GF(2^8)
	// codes with ≤8 parity symbols — the RS-lite class. When non-nil,
	// AppendEncode/AppendDecode skip the int-symbol staging entirely:
	// encode streams parity straight into dst via the packed-uint64 LFSR,
	// decode syndrome-checks the wire bytes in place and only a dirty
	// block is copied (to a stack buffer) for the allocation-free full
	// decode. Larger codes (KP4/KR4 over GF(2^10)) keep the general path.
	fast *rs.Codec8
	// scratch pools per-call symbol buffers so the concurrent per-lane
	// workers share one allocation-free codec on the general path.
	scratch sync.Pool
}

// rsScratch holds the symbol-domain working set for one encode or decode
// call: data/received symbols, the output codeword, and syndrome space.
type rsScratch struct {
	word []int
	cw   []int
	syn  []int
}

// NewRSLite returns the light per-channel RS(68,64) over GF(2^8): t=2 per
// block at 6.25% overhead — the paper-class "wide channels need only a
// whisper of FEC" operating point.
func NewRSLite() *RSFEC {
	c, err := rs.Lite(68, 64)
	if err != nil {
		panic(err)
	}
	return NewRSFEC(c)
}

// NewRSKP4 returns RS(544,514), the heavyweight Ethernet FEC baseline.
func NewRSKP4() *RSFEC { return NewRSFEC(rs.KP4()) }

// NewRSFEC wraps an arbitrary code, choosing the symbol serialization
// width from the field size.
func NewRSFEC(c *rs.Code) *RSFEC {
	sb := 1
	if c.Field().Size() > 256 {
		sb = 2
	}
	f := &RSFEC{code: c, symBytes: sb, fast: c.Codec8()}
	f.scratch.New = func() any {
		return &rsScratch{
			word: make([]int, c.N()),
			cw:   make([]int, c.N()),
			syn:  make([]int, c.Parity()),
		}
	}
	return f
}

// Name implements FEC.
func (r *RSFEC) Name() string { return r.code.String() }

// Overhead implements FEC.
func (r *RSFEC) Overhead() float64 { return r.code.OverheadFraction() }

// EncodedLen implements FEC.
func (r *RSFEC) EncodedLen(n int) int {
	k := r.code.K()
	blocks := (n + k - 1) / k
	return blocks * r.code.N() * r.symBytes
}

// putSym serialises one field symbol.
func (r *RSFEC) putSym(dst []byte, s int) {
	if r.symBytes == 1 {
		dst[0] = byte(s)
		return
	}
	dst[0] = byte(s >> 8)
	dst[1] = byte(s)
}

// getSym reads one field symbol, masking to the field size so corrupted
// high bits cannot escape the field.
func (r *RSFEC) getSym(src []byte) int {
	if r.symBytes == 1 {
		return int(src[0])
	}
	return (int(src[0])<<8 | int(src[1])) & (r.code.Field().Size() - 1)
}

// Encode implements FEC.
func (r *RSFEC) Encode(plain []byte) []byte {
	return r.AppendEncode(nil, plain)
}

// AppendEncode implements FEC.
func (r *RSFEC) AppendEncode(dst, plain []byte) []byte {
	k, n := r.code.K(), r.code.N()
	blocks := (len(plain) + k - 1) / k
	base := len(dst)
	need := blocks * n * r.symBytes
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	if r.fast != nil {
		np := n - k
		for b := 0; b < blocks; b++ {
			off := base + b*n
			lo := b * k
			hi := lo + k
			if hi > len(plain) {
				hi = len(plain)
			}
			data := plain[lo:hi]
			r.fast.EncodeParity(dst[off:off+np], data)
			copy(dst[off+np:], data)
			// Tail-block padding must be zero on the wire (dst may hold
			// stale bytes from a previous use of the buffer).
			for i := off + np + len(data); i < off+n; i++ {
				dst[i] = 0
			}
		}
		return dst
	}
	sc := r.scratch.Get().(*rsScratch)
	syms := sc.word[:k]
	for b := 0; b < blocks; b++ {
		for i := 0; i < k; i++ {
			idx := b*k + i
			if idx < len(plain) {
				syms[i] = int(plain[idx])
			} else {
				syms[i] = 0
			}
		}
		if err := r.code.EncodeTo(sc.cw, syms); err != nil {
			panic(err) // symbols are bytes; cannot be out of range
		}
		off := base + b*n*r.symBytes
		for i, s := range sc.cw {
			r.putSym(dst[off+i*r.symBytes:], s)
		}
	}
	r.scratch.Put(sc)
	return dst
}

// dataExtractor is the optional FEC fast path used by the framer's scan:
// AppendExtract pulls the systematic data bytes out of the encoded
// stream, verifying as it goes that every block is a codeword (without
// touching the stream). ok=true means the extraction IS the decode —
// zero corrections, no overloads, bit-identical to what AppendDecode
// would return for the same bytes. ok=false (any dirty block, or the
// layout isn't extractable) means the caller must run the full
// AppendDecode; dst then holds partial garbage to be discarded.
type dataExtractor interface {
	AppendExtract(dst, encoded []byte, plainLen int) ([]byte, bool)
}

// AppendExtract implements dataExtractor for byte-symbol systematic RS
// codes: each block is parity-first, so the data bytes are copied
// straight out; the block is proven clean by re-encoding its parity from
// the data (a codeword's parity is exactly the encoder's output, so one
// table-XOR encode pass replaces the np-pass syndrome check). Returns
// ok=false outside the fast envelope, on a truncated stream, or on the
// first dirty block.
func (r *RSFEC) AppendExtract(dst, encoded []byte, plainLen int) ([]byte, bool) {
	if r.fast == nil {
		return dst, false
	}
	k, n := r.code.K(), r.code.N()
	np := n - k
	blocks := (plainLen + k - 1) / k
	if len(encoded) < blocks*n {
		return dst, false
	}
	start := len(dst)
	var parity [8]byte
	for b := 0; b < blocks; b++ {
		block := encoded[b*n : (b+1)*n]
		src := block[np:]
		r.fast.EncodeParity(parity[:np], src)
		for j := 0; j < np; j++ {
			if parity[j] != block[j] {
				return dst, false
			}
		}
		take := k
		if rem := start + plainLen - len(dst); take > rem {
			take = rem
		}
		dst = append(dst, src[:take]...)
	}
	return dst, true
}

// Decode implements FEC.
func (r *RSFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	return r.AppendDecode(make([]byte, 0, plainLen), encoded, plainLen)
}

// AppendDecode implements FEC.
func (r *RSFEC) AppendDecode(dst, encoded []byte, plainLen int) ([]byte, int, error) {
	k, n := r.code.K(), r.code.N()
	blocks := (plainLen + k - 1) / k
	need := blocks * n * r.symBytes
	if len(encoded) < need {
		return dst, 0, fmt.Errorf("phy: RS stream truncated: %d < %d", len(encoded), need)
	}
	start := len(dst)
	corrections := 0
	var firstErr error
	if r.fast != nil {
		np := n - k
		for b := 0; b < blocks; b++ {
			block := encoded[b*n : (b+1)*n]
			src := block[np:]
			if !r.fast.Clean(block) {
				// Dirty block: decode a stack copy so the received
				// stream stays untouched (the framer may re-scan these
				// bytes at a different alignment after a resync).
				var blk [255]byte
				copy(blk[:n], block)
				ncorr, err := r.fast.Decode(blk[:n])
				if err != nil {
					// The sentinel alone: callers only branch on non-nil /
					// errors.Is, and wrapping the block index here was the
					// single largest allocation source in the whole RX path
					// (one fmt.Errorf per overloaded frame at high BER).
					firstErr = ErrFECOverload
					// best effort: pass the received data through
				} else {
					src = blk[np:n]
				}
				corrections += ncorr
			}
			take := k
			if rem := start + plainLen - len(dst); take > rem {
				take = rem
			}
			dst = append(dst, src[:take]...)
		}
		return dst, corrections, firstErr
	}
	sc := r.scratch.Get().(*rsScratch)
	for b := 0; b < blocks; b++ {
		base := b * n * r.symBytes
		for i := 0; i < n; i++ {
			sc.word[i] = r.getSym(encoded[base+i*r.symBytes:])
		}
		ncorr, err := r.code.DecodeTo(sc.cw, sc.word, sc.syn)
		fixed := sc.cw
		if err != nil {
			firstErr = ErrFECOverload // sentinel only; see fast path
			fixed = sc.word           // best effort: pass through
		}
		corrections += ncorr
		data := r.code.Data(fixed)
		for i := 0; i < k && len(dst) < start+plainLen; i++ {
			dst = append(dst, byte(data[i]))
		}
	}
	r.scratch.Put(sc)
	return dst, corrections, firstErr
}

// FECByName returns a FEC scheme by its configuration name; used by CLIs.
func FECByName(name string) (FEC, error) {
	switch name {
	case "", "none":
		return NoFEC{}, nil
	case "hamming", "hamming72":
		return HammingFEC{}, nil
	case "rslite", "rs-lite":
		return NewRSLite(), nil
	case "kp4", "rs544":
		return NewRSKP4(), nil
	default:
		return nil, fmt.Errorf("phy: unknown FEC %q (want none|hamming72|rslite|kp4)", name)
	}
}
