package phy

import (
	"errors"
	"fmt"

	"mosaic/internal/coding/hamming"
	"mosaic/internal/coding/rs"
)

// FEC is the per-channel forward error correction applied to each channel
// frame. Implementations segment the byte stream into code blocks
// internally. Decode is given the expected plaintext length so padding can
// be stripped deterministically.
//
// Implementations must be safe for concurrent use (the per-channel workers
// run in parallel).
type FEC interface {
	// Name identifies the scheme (for reports).
	Name() string
	// Overhead returns the rate overhead, (encoded-plain)/plain.
	Overhead() float64
	// EncodedLen returns the encoded size of a plaintext of n bytes.
	EncodedLen(n int) int
	// Encode returns the encoded bytes (fresh slice).
	Encode(plain []byte) []byte
	// Decode corrects errors and returns plainLen bytes plus the number of
	// corrected symbol/bit errors. It returns an error when a block was
	// uncorrectable (the returned bytes are then best-effort).
	Decode(encoded []byte, plainLen int) ([]byte, int, error)
}

// ErrFECOverload indicates at least one code block was uncorrectable.
var ErrFECOverload = errors.New("phy: uncorrectable FEC block")

// --- No FEC ---

// NoFEC passes data through unprotected; the baseline ablation point.
type NoFEC struct{}

// Name implements FEC.
func (NoFEC) Name() string { return "none" }

// Overhead implements FEC.
func (NoFEC) Overhead() float64 { return 0 }

// EncodedLen implements FEC.
func (NoFEC) EncodedLen(n int) int { return n }

// Encode implements FEC.
func (NoFEC) Encode(plain []byte) []byte {
	return append([]byte(nil), plain...)
}

// Decode implements FEC.
func (NoFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	if plainLen > len(encoded) {
		return nil, 0, fmt.Errorf("phy: NoFEC stream shorter (%d) than plaintext (%d)", len(encoded), plainLen)
	}
	return append([]byte(nil), encoded[:plainLen]...), 0, nil
}

// --- Hamming(72,64) SEC-DED ---

// HammingFEC protects each 8-byte word with one check byte: 12.5% overhead,
// single-bit correction per word. The "nearly free" design point for
// channels that are already almost error-free.
type HammingFEC struct{}

// Name implements FEC.
func (HammingFEC) Name() string { return "hamming72" }

// Overhead implements FEC.
func (HammingFEC) Overhead() float64 { return hamming.Overhead() }

// EncodedLen implements FEC.
func (HammingFEC) EncodedLen(n int) int {
	words := (n + 7) / 8
	return words * 9
}

// Encode implements FEC.
func (HammingFEC) Encode(plain []byte) []byte {
	words := (len(plain) + 7) / 8
	out := make([]byte, 0, words*9)
	for w := 0; w < words; w++ {
		var v uint64
		for i := 0; i < 8; i++ {
			idx := w*8 + i
			if idx < len(plain) {
				v |= uint64(plain[idx]) << uint(8*i)
			}
		}
		cw := hamming.Encode(v)
		for i := 0; i < 8; i++ {
			out = append(out, byte(cw.Data>>uint(8*i)))
		}
		out = append(out, cw.Check)
	}
	return out
}

// Decode implements FEC.
func (HammingFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	words := (plainLen + 7) / 8
	if len(encoded) < words*9 {
		return nil, 0, fmt.Errorf("phy: hamming stream truncated: %d < %d", len(encoded), words*9)
	}
	out := make([]byte, 0, plainLen)
	corrections := 0
	var firstErr error
	for w := 0; w < words; w++ {
		blk := encoded[w*9 : w*9+9]
		var cw hamming.Codeword
		for i := 0; i < 8; i++ {
			cw.Data |= uint64(blk[i]) << uint(8*i)
		}
		cw.Check = blk[8]
		data, res, err := hamming.Decode(cw)
		switch res {
		case hamming.Corrected:
			corrections++
		case hamming.Detected:
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: word %d: %v", ErrFECOverload, w, err)
			}
		}
		for i := 0; i < 8 && len(out) < plainLen; i++ {
			out = append(out, byte(data>>uint(8*i)))
		}
	}
	return out, corrections, firstErr
}

// --- Reed-Solomon (byte symbols) ---

// RSFEC wraps an RS code for the byte-oriented channel stream. Codes over
// GF(2^8) map one symbol per byte; larger fields (KP4/KR4 over GF(2^10))
// pack each symbol into two bytes so parity symbols above 255 survive the
// wire. The 16-bits-per-10-bit-symbol padding overstates KP4's wire
// overhead but preserves its per-block correction behaviour, which is what
// the experiments compare; Overhead() reports the true code rate.
type RSFEC struct {
	code     *rs.Code
	symBytes int
}

// NewRSLite returns the light per-channel RS(68,64) over GF(2^8): t=2 per
// block at 6.25% overhead — the paper-class "wide channels need only a
// whisper of FEC" operating point.
func NewRSLite() *RSFEC {
	c, err := rs.Lite(68, 64)
	if err != nil {
		panic(err)
	}
	return NewRSFEC(c)
}

// NewRSKP4 returns RS(544,514), the heavyweight Ethernet FEC baseline.
func NewRSKP4() *RSFEC { return NewRSFEC(rs.KP4()) }

// NewRSFEC wraps an arbitrary code, choosing the symbol serialization
// width from the field size.
func NewRSFEC(c *rs.Code) *RSFEC {
	sb := 1
	if c.Field().Size() > 256 {
		sb = 2
	}
	return &RSFEC{code: c, symBytes: sb}
}

// Name implements FEC.
func (r *RSFEC) Name() string { return r.code.String() }

// Overhead implements FEC.
func (r *RSFEC) Overhead() float64 { return r.code.OverheadFraction() }

// EncodedLen implements FEC.
func (r *RSFEC) EncodedLen(n int) int {
	k := r.code.K()
	blocks := (n + k - 1) / k
	return blocks * r.code.N() * r.symBytes
}

// putSym serialises one field symbol.
func (r *RSFEC) putSym(dst []byte, s int) {
	if r.symBytes == 1 {
		dst[0] = byte(s)
		return
	}
	dst[0] = byte(s >> 8)
	dst[1] = byte(s)
}

// getSym reads one field symbol, masking to the field size so corrupted
// high bits cannot escape the field.
func (r *RSFEC) getSym(src []byte) int {
	if r.symBytes == 1 {
		return int(src[0])
	}
	return (int(src[0])<<8 | int(src[1])) & (r.code.Field().Size() - 1)
}

// Encode implements FEC.
func (r *RSFEC) Encode(plain []byte) []byte {
	k, n := r.code.K(), r.code.N()
	blocks := (len(plain) + k - 1) / k
	out := make([]byte, blocks*n*r.symBytes)
	syms := make([]int, k)
	for b := 0; b < blocks; b++ {
		for i := 0; i < k; i++ {
			idx := b*k + i
			if idx < len(plain) {
				syms[i] = int(plain[idx])
			} else {
				syms[i] = 0
			}
		}
		cw, err := r.code.Encode(syms)
		if err != nil {
			panic(err) // symbols are bytes; cannot be out of range
		}
		base := b * n * r.symBytes
		for i, s := range cw {
			r.putSym(out[base+i*r.symBytes:], s)
		}
	}
	return out
}

// Decode implements FEC.
func (r *RSFEC) Decode(encoded []byte, plainLen int) ([]byte, int, error) {
	k, n := r.code.K(), r.code.N()
	blocks := (plainLen + k - 1) / k
	need := blocks * n * r.symBytes
	if len(encoded) < need {
		return nil, 0, fmt.Errorf("phy: RS stream truncated: %d < %d", len(encoded), need)
	}
	out := make([]byte, 0, plainLen)
	corrections := 0
	var firstErr error
	word := make([]int, n)
	for b := 0; b < blocks; b++ {
		base := b * n * r.symBytes
		for i := 0; i < n; i++ {
			word[i] = r.getSym(encoded[base+i*r.symBytes:])
		}
		fixed, ncorr, err := r.code.Decode(word)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: block %d: %v", ErrFECOverload, b, err)
			}
			fixed = word // best effort: pass through
		}
		corrections += ncorr
		data := r.code.Data(fixed)
		for i := 0; i < k && len(out) < plainLen; i++ {
			out = append(out, byte(data[i]))
		}
	}
	return out, corrections, firstErr
}

// FECByName returns a FEC scheme by its configuration name; used by CLIs.
func FECByName(name string) (FEC, error) {
	switch name {
	case "", "none":
		return NoFEC{}, nil
	case "hamming", "hamming72":
		return HammingFEC{}, nil
	case "rslite", "rs-lite":
		return NewRSLite(), nil
	case "kp4", "rs544":
		return NewRSKP4(), nil
	default:
		return nil, fmt.Errorf("phy: unknown FEC %q (want none|hamming72|rslite|kp4)", name)
	}
}
