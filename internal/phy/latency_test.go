package phy

import (
	"strings"
	"testing"
)

func TestLatencyBudgetComponents(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lb := link.LatencyBudget()
	if lb.SerializationNs <= 0 || lb.GearboxNs <= 0 {
		t.Fatalf("budget = %+v", lb)
	}
	// 243 B unit + framing at 2 Gbps: about 1.1 µs of serialization.
	if lb.SerializationNs < 800 || lb.SerializationNs > 1500 {
		t.Errorf("serialization = %v ns, want ~1.1us", lb.SerializationNs)
	}
	if lb.TotalNs() < lb.SerializationNs {
		t.Error("total below a component")
	}
	if !strings.Contains(lb.String(), "total") {
		t.Error("missing summary")
	}
}

func TestLatencyShrinksWithSmallerUnits(t *testing.T) {
	small := DefaultConfig()
	small.UnitLen = 63
	big := DefaultConfig()
	big.UnitLen = 495
	ls, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(ls.LatencyBudget().SerializationNs < lb.LatencyBudget().SerializationNs) {
		t.Error("smaller units should serialize faster")
	}
	// ...but cost goodput: the A3 trade-off, visible from latency's side.
	if !(ls.GoodputFraction() < lb.GoodputFraction()) {
		t.Error("smaller units should cost goodput")
	}
}

func TestLatencyGrowsWithSkew(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := link.LatencyBudget().TotalNs()
	link.SetChannelSkew(5, 100)
	if !(link.LatencyBudget().TotalNs() > base) {
		t.Error("skew should add deskew latency")
	}
}

func TestFECLatencyOrdering(t *testing.T) {
	if fecDecodeLatencyNs(NoFEC{}) != 0 {
		t.Error("no FEC should be free")
	}
	h := fecDecodeLatencyNs(HammingFEC{})
	lite := fecDecodeLatencyNs(NewRSLite())
	kp4 := fecDecodeLatencyNs(NewRSKP4())
	if !(h < lite && lite < kp4) {
		t.Errorf("latency ordering broken: hamming %v, rslite %v, kp4 %v", h, lite, kp4)
	}
	// KP4 decode pipeline: the ~150ns class.
	if kp4 < 50 || kp4 > 500 {
		t.Errorf("kp4 latency = %v ns", kp4)
	}
}

func TestFasterChannelsSerializeFaster(t *testing.T) {
	slow := DefaultConfig()
	fast := DefaultConfig()
	fast.PerChannelBitRate = 10e9
	ls, err := New(slow)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := New(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !(lf.LatencyBudget().SerializationNs < ls.LatencyBudget().SerializationNs) {
		t.Error("faster channels should fill units faster")
	}
}
