package phy

import "testing"

func TestFECMetadata(t *testing.T) {
	cases := []struct {
		fec      FEC
		name     string
		overhead float64
	}{
		{NoFEC{}, "none", 0},
		{HammingFEC{}, "hamming72", 0.125},
		{NewRSLite(), "RS(68,64)/GF(2^8)", 4.0 / 64.0},
	}
	for _, c := range cases {
		if c.fec.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.fec.Name(), c.name)
		}
		if c.fec.Overhead() != c.overhead {
			t.Errorf("%s: overhead = %v, want %v", c.name, c.fec.Overhead(), c.overhead)
		}
	}
	if NewRSKP4().Name() == "" || NewRSKP4().Overhead() <= 0 {
		t.Error("KP4 metadata broken")
	}
}

func TestNoFECDecodeTruncated(t *testing.T) {
	if _, _, err := (NoFEC{}).Decode([]byte{1, 2}, 5); err == nil {
		t.Error("truncated NoFEC stream accepted")
	}
}

func TestFramerOverheadFraction(t *testing.T) {
	f := NewFramer(NoFEC{}, 243)
	// wire = 2 + (243+10) = 255; overhead = 12/243.
	want := float64(f.WireLen()-243) / 243
	if got := f.OverheadFraction(); got != want {
		t.Errorf("overhead = %v, want %v", got, want)
	}
}

func TestConventionalConfigShape(t *testing.T) {
	cfg := ConventionalConfig()
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if link.Mapper().NumLanes() != 8 || link.Mapper().SparesLeft() != 0 {
		t.Error("conventional shape wrong")
	}
	if link.AggregateRate() != 8*106.25e9 {
		t.Errorf("rate = %v", link.AggregateRate())
	}
	if link.Config().FEC.Name() != "RS(544,514)/GF(2^10)" {
		t.Errorf("FEC = %s", link.Config().FEC.Name())
	}
}

func TestMapperActivePhysicals(t *testing.T) {
	m, _ := NewMapper(4, 2)
	got := m.ActivePhysicals()
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i, p := range got {
		if p != i {
			t.Fatal("identity expected initially")
		}
	}
	m.Fail(1)
	got = m.ActivePhysicals()
	if got[1] != 4 {
		t.Errorf("lane 1 should map to spare 4, got %d", got[1])
	}
	// Returned slice is a copy: mutating it must not affect the mapper.
	got[0] = 99
	if m.Physical(0) == 99 {
		t.Error("ActivePhysicals leaked internal state")
	}
}

func TestRemapEventStrings(t *testing.T) {
	events := []RemapEvent{
		{Physical: 3, Lane: -1, Spare: -1},
		{Physical: 3, Lane: 2, Spare: 5},
		{Physical: 3, Lane: 2, Spare: -1, Degraded: true},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
}

func TestByteEqual(t *testing.T) {
	if !byteEqual([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if byteEqual([]byte{1}, []byte{1, 2}) {
		t.Error("length mismatch reported equal")
	}
	if byteEqual([]byte{1, 3}, []byte{1, 2}) {
		t.Error("content mismatch reported equal")
	}
}
