package phy

import (
	"math/rand"
	"strings"
	"testing"
)

func TestProbeChannelClean(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ok, corr := link.ProbeChannel(5, 10)
	if ok != 10 || corr != 0 {
		t.Fatalf("clean probe: ok=%d corr=%d", ok, corr)
	}
}

func TestProbeChannelDead(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	link.KillChannel(9)
	ok, _ := link.ProbeChannel(9, 10)
	if ok != 0 {
		t.Fatalf("dead probe returned %d frames", ok)
	}
}

func TestProbeChannelNoisy(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	link.SetChannelBER(3, 1e-4)
	ok, corr := link.ProbeChannel(3, 50)
	if ok < 45 {
		t.Fatalf("noisy-but-correctable probe lost too much: %d/50", ok)
	}
	if corr == 0 {
		t.Error("corrections should be visible at 1e-4 over ~14KB")
	}
}

func TestProbeChannelBounds(t *testing.T) {
	link, _ := New(DefaultConfig())
	if ok, _ := link.ProbeChannel(-1, 5); ok != 0 {
		t.Error("negative channel probed")
	}
	if ok, _ := link.ProbeChannel(9999, 5); ok != 0 {
		t.Error("out-of-range channel probed")
	}
	if ok, _ := link.ProbeChannel(0, 0); ok != 0 {
		t.Error("zero-count probe returned frames")
	}
}

func TestBringupCleanLink(t *testing.T) {
	link, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := link.Bringup(8)
	if rep.State != StateUp {
		t.Fatalf("clean link state = %v", rep.State)
	}
	if rep.Probed != 104 || len(rep.DeadChannels) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Lanes != 100 || rep.SparesLeft != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "up") {
		t.Error("report string missing state")
	}
}

func TestBringupSparesOutDead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 20
	cfg.Spares = 3
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link.KillChannel(4)
	link.KillChannel(11)
	link.KillChannel(21) // a spare is dead too
	rep := link.Bringup(8)
	if rep.State != StateUp {
		t.Fatalf("state = %v; two data deaths + one dead spare fit in 3 spares", rep.State)
	}
	if len(rep.DeadChannels) != 3 {
		t.Fatalf("dead = %v", rep.DeadChannels)
	}
	if rep.Lanes != 20 {
		t.Fatalf("lanes = %d", rep.Lanes)
	}
	if rep.SparesLeft != 0 {
		t.Fatalf("spares left = %d", rep.SparesLeft)
	}
	// Traffic must now be clean.
	rng := rand.New(rand.NewSource(1))
	frames := make([][]byte, 20)
	for i := range frames {
		frames[i] = make([]byte, 1000)
		rng.Read(frames[i])
	}
	_, st, err := link.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 20 {
		t.Fatalf("post-bringup traffic lost frames: %+v", st)
	}
}

func TestBringupDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 10
	cfg.Spares = 1
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link.KillChannel(0)
	link.KillChannel(1)
	link.KillChannel(2)
	rep := link.Bringup(8)
	if rep.State != StateDegraded {
		t.Fatalf("state = %v, want degraded", rep.State)
	}
	if rep.Lanes != 8 { // 10 - (3 dead - 1 spare)
		t.Fatalf("lanes = %d, want 8", rep.Lanes)
	}
}

func TestBringupTotalLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 3
	cfg.Spares = 0
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		link.KillChannel(p)
	}
	rep := link.Bringup(8)
	if rep.State != StateDown {
		t.Fatalf("state = %v, want down", rep.State)
	}
}

func TestBringupIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 10
	cfg.Spares = 2
	link, _ := New(cfg)
	link.KillChannel(5)
	first := link.Bringup(8)
	second := link.Bringup(8)
	if len(second.DeadChannels) != 0 {
		t.Fatalf("second bringup re-failed channels: %v", second.DeadChannels)
	}
	if second.Probed >= first.Probed {
		t.Error("second bringup should skip failed channels")
	}
	if second.State != StateUp {
		t.Errorf("state = %v", second.State)
	}
}

func TestLinkStateStrings(t *testing.T) {
	for _, s := range []LinkState{StateDown, StateProbing, StateUp, StateDegraded, LinkState(9)} {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
}
