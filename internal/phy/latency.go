package phy

import "fmt"

// Latency accounting. Wide-and-slow has a latency trade-off that deserves
// honesty: a 2 Gbps channel accumulates a 243-byte stripe unit in ~1 µs,
// where a 100 Gbps lane fills the same buffer 50× faster — but the
// conventional lane then pays the PAM4 DSP and the KP4 block (5440 bits
// must land before decoding starts) plus its decode pipeline. The unit
// size is the knob (ablation A3): small units cut latency and goodput
// together.

// LatencyBudget itemises the one-way PHY latency of a link configuration,
// in nanoseconds.
type LatencyBudget struct {
	SerializationNs float64 // accumulating one stripe unit on a channel
	FECNs           float64 // decode pipeline of the chosen FEC
	DeskewNs        float64 // reassembly buffer depth
	GearboxNs       float64 // striping/framing logic
}

// TotalNs sums the components.
func (l LatencyBudget) TotalNs() float64 {
	return l.SerializationNs + l.FECNs + l.DeskewNs + l.GearboxNs
}

// String renders the budget.
func (l LatencyBudget) String() string {
	return fmt.Sprintf("total %.0fns (serialize %.0f, fec %.0f, deskew %.0f, gearbox %.0f)",
		l.TotalNs(), l.SerializationNs, l.FECNs, l.DeskewNs, l.GearboxNs)
}

// fecDecodeLatencyNs estimates the decode-pipeline latency of a FEC scheme
// (block accumulation is accounted in serialization, since the channel
// frame contains whole blocks).
func fecDecodeLatencyNs(f FEC) float64 {
	switch r := f.(type) {
	case NoFEC:
		return 0
	case HammingFEC:
		return 4 // XOR trees, one pipeline stage
	case *RSFEC:
		// Syndrome + BM + Chien scale with n and t; coarse pipeline model.
		n := float64(r.code.N())
		t := float64(r.code.T())
		return 10 + n*0.08 + t*6
	default:
		return 20
	}
}

// LatencyBudget returns the one-way PHY latency of this link at its
// configured unit size, FEC, and worst observed skew.
func (l *Link) LatencyBudget() LatencyBudget {
	bitTime := 1 / l.cfg.PerChannelBitRate
	unitBits := float64(l.framer.WireLen()) * 8
	maxSkew := 0
	for _, ch := range l.channels {
		if ch.SkewBytes > maxSkew {
			maxSkew = ch.SkewBytes
		}
	}
	return LatencyBudget{
		SerializationNs: unitBits * bitTime * 1e9,
		FECNs:           fecDecodeLatencyNs(l.cfg.FEC),
		DeskewNs:        float64(maxSkew*8) * bitTime * 1e9,
		GearboxNs:       15, // striping + framing pipeline stages
	}
}
