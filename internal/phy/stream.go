package phy

import (
	"errors"

	"mosaic/internal/sim"
)

// Stream runs a Link continuously on a discrete-event engine: frames are
// queued, carved into superframes, and delivered after the time the
// channels genuinely need (serialization + latency budget). Failures can
// be injected at any simulated instant; the stream records per-superframe
// statistics so experiments can plot throughput and loss over time.
type Stream struct {
	link   *Link
	engine *sim.Engine

	// SuperframeBytes is the payload carved into each Exchange.
	SuperframeBytes int
	// OnDeliver, if set, receives each delivered frame.
	OnDeliver func(frame []byte, at sim.Time)

	queue   [][]byte
	active  bool
	History []StreamSample
	// Totals.
	FramesIn, FramesOut, FramesLost int
	BytesOut                        int
}

// StreamSample is one superframe's outcome.
type StreamSample struct {
	At        sim.Time
	Rate      float64 // aggregate line rate during this superframe
	Delivered int
	Lost      int
	UnitsLost int
}

// NewStream binds a link to an engine.
func NewStream(link *Link, engine *sim.Engine) (*Stream, error) {
	if link == nil || engine == nil {
		return nil, errors.New("phy: stream needs a link and an engine")
	}
	return &Stream{
		link:            link,
		engine:          engine,
		SuperframeBytes: 64 * 1024,
	}, nil
}

// Link returns the underlying link (for failure injection).
func (s *Stream) Link() *Link { return s.link }

// Enqueue adds frames to the transmit queue and starts the pump if idle.
func (s *Stream) Enqueue(frames ...[]byte) {
	s.queue = append(s.queue, frames...)
	s.FramesIn += len(frames)
	if !s.active {
		s.active = true
		s.engine.After(0, s.pump)
	}
}

// QueueDepth returns the number of frames waiting.
func (s *Stream) QueueDepth() int { return len(s.queue) }

// pump carves one superframe, exchanges it, accounts for the time it
// occupies the link, and reschedules itself while work remains.
func (s *Stream) pump() {
	if len(s.queue) == 0 {
		s.active = false
		return
	}
	// Carve frames up to SuperframeBytes.
	var batch [][]byte
	bytes := 0
	for len(s.queue) > 0 && bytes < s.SuperframeBytes {
		f := s.queue[0]
		s.queue = s.queue[1:]
		batch = append(batch, f)
		bytes += len(f)
	}

	rate := s.link.AggregateRate()
	goodput := rate * s.link.GoodputFraction()
	delivered, st, err := s.link.Exchange(batch)
	if err != nil {
		// A malformed frame is a caller bug surfaced at enqueue time in
		// real hardware; drop the batch and continue.
		s.FramesLost += len(batch)
		s.engine.After(0, s.pump)
		return
	}
	// Time this superframe occupied the link.
	var occupancy sim.Time
	if goodput > 0 {
		occupancy = sim.Time(float64(bytes*8) / goodput)
	}
	lb := s.link.LatencyBudget()
	deliverAt := s.engine.Now() + occupancy + sim.Time(lb.TotalNs()*1e-9)

	s.FramesOut += st.FramesDelivered
	s.FramesLost += st.FramesIn - st.FramesDelivered
	for _, f := range delivered {
		s.BytesOut += len(f)
		if s.OnDeliver != nil {
			f := f
			s.engine.Schedule(deliverAt, func() { s.OnDeliver(f, deliverAt) })
		}
	}
	s.History = append(s.History, StreamSample{
		At:        s.engine.Now(),
		Rate:      rate,
		Delivered: st.FramesDelivered,
		Lost:      st.FramesIn - st.FramesDelivered,
		UnitsLost: st.UnitsLost,
	})
	// The link is busy until the superframe has been serialized.
	s.engine.Schedule(s.engine.Now()+occupancy, s.pump)
}

// GoodputBps returns the measured goodput so far (delivered payload bits
// over elapsed simulated time). Zero before any time has passed.
func (s *Stream) GoodputBps() float64 {
	now := float64(s.engine.Now())
	if now <= 0 {
		return 0
	}
	return float64(s.BytesOut*8) / now
}
