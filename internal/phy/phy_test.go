package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- BSC ---

func TestBSCNoErrors(t *testing.T) {
	c := NewBSC(0, 1)
	data := []byte("hello wide and slow world")
	got := c.Transmit(data)
	if !bytes.Equal(got, data) {
		t.Fatal("error-free channel altered data")
	}
}

func TestBSCDoesNotModifyInput(t *testing.T) {
	c := NewBSC(0.1, 1)
	data := make([]byte, 1000)
	snapshot := append([]byte(nil), data...)
	c.Transmit(data)
	if !bytes.Equal(data, snapshot) {
		t.Fatal("Transmit modified its input")
	}
}

func TestBSCErrorRate(t *testing.T) {
	c := NewBSC(1e-3, 2)
	data := make([]byte, 1<<18) // 2 Mbit
	flips := 0
	for trial := 0; trial < 4; trial++ {
		got := c.Transmit(data)
		for i := range data {
			x := got[i] ^ data[i]
			for ; x != 0; x &= x - 1 {
				flips++
			}
		}
	}
	nbits := float64(4 * len(data) * 8)
	rate := float64(flips) / nbits
	if rate < 0.8e-3 || rate > 1.2e-3 {
		t.Errorf("measured BER %v, want ~1e-3", rate)
	}
}

func TestBSCSkewPrefix(t *testing.T) {
	c := NewBSC(0, 3)
	c.SkewBytes = 17
	data := []byte("payload")
	got := c.Transmit(data)
	if len(got) != 17+len(data) {
		t.Fatalf("length %d", len(got))
	}
	if !bytes.Equal(got[17:], data) {
		t.Fatal("payload damaged after skew prefix")
	}
}

func TestBSCDead(t *testing.T) {
	c := NewBSC(0, 4)
	c.Dead = true
	data := make([]byte, 1024)
	got := c.Transmit(data)
	same := 0
	for i := range data {
		if got[i] == data[i] {
			same++
		}
	}
	if same > len(data)/2 {
		t.Error("dead channel should be noise, not data")
	}
}

func TestBSCClamps(t *testing.T) {
	if NewBSC(-1, 1).BER != 0 {
		t.Error("negative BER not clamped")
	}
	if NewBSC(0.9, 1).BER != 0.5 {
		t.Error("BER above 0.5 not clamped")
	}
}

// --- geometric skip-sampler edge regimes ---

// TestBSCZeroBERConsumesNoDraws pins that a clean transmit leaves the
// channel's random stream untouched: raising BER afterwards must yield
// exactly the bytes a fresh channel with the same seed produces.
func TestBSCZeroBERConsumesNoDraws(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(13)).Read(data)

	warm := NewBSC(0, 99)
	if !bytes.Equal(warm.Transmit(data), data) {
		t.Fatal("clean channel altered data")
	}
	warm.BER = 0.01
	fresh := NewBSC(0.01, 99)
	if !bytes.Equal(warm.Transmit(data), fresh.Transmit(data)) {
		t.Fatal("p=0 transmit consumed random draws")
	}
}

// TestBSCDegenerateFlipsAll checks the p >= 1 short-circuit: every bit
// flips and, like p = 0, no draws are consumed.
func TestBSCDegenerateFlipsAll(t *testing.T) {
	data := make([]byte, 257)
	rand.New(rand.NewSource(14)).Read(data)

	c := NewBSC(0, 42)
	c.BER = 1 // past the constructor clamp, exercising the public knob
	got := c.Transmit(data)
	for i := range got {
		if got[i] != data[i]^0xff {
			t.Fatalf("byte %d: %02x, want all bits flipped (%02x)", i, got[i], data[i]^0xff)
		}
	}
	c.BER = 0.25
	fresh := NewBSC(0.25, 42)
	if !bytes.Equal(c.Transmit(data), fresh.Transmit(data)) {
		t.Fatal("p>=1 transmit consumed random draws")
	}
}

// TestBSCTinyBERGapOvershootsFrame: at p = 1e-15 the expected gap to the
// first error is ~10^15 bits, astronomically past any frame, so the
// sampler's first draw must overshoot and leave the data untouched —
// with no intermediate work and no int overflow from the huge float gap.
func TestBSCTinyBERGapOvershootsFrame(t *testing.T) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(15)).Read(data)
	c := NewBSC(1e-15, 7)
	for round := 0; round < 8; round++ {
		if !bytes.Equal(c.Transmit(data), data) {
			t.Fatalf("round %d: tiny-p channel flipped a bit in a 64 KiB frame "+
				"(probability ~5e-10 per round; a flip means the gap math broke)", round)
		}
	}
}

// TestBSCSkipSamplingMatchesBernoulliRate checks the sampler is still a
// faithful BSC at moderate p: the realized flip rate over a long stream
// must sit near p (law of large numbers, 6-sigma band).
func TestBSCSkipSamplingMatchesBernoulliRate(t *testing.T) {
	const p = 1e-3
	data := make([]byte, 1<<20)
	got := NewBSC(p, 21).Transmit(data)
	flips := 0
	for i := range got {
		flips += popcount8(got[i] ^ data[i])
	}
	nbits := float64(len(data) * 8)
	mean := p * nbits
	sigma := math.Sqrt(nbits * p * (1 - p))
	if d := math.Abs(float64(flips) - mean); d > 6*sigma {
		t.Fatalf("flips = %d, want %0.f ± %0.f", flips, mean, 6*sigma)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// --- Gearbox ---

func TestStripeDestripeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 62, 63, 64, 1000, 6300} {
		stream := make([]byte, n)
		rng.Read(stream)
		units := Stripe(stream, 10, 63)
		total := (n + 62) / 63
		got, missing := Destripe(units, 10, 63, total)
		if len(missing) != 0 {
			t.Fatalf("n=%d: unexpected missing %v", n, missing)
		}
		if !bytes.Equal(got[:n], stream) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestDestripeReportsMissing(t *testing.T) {
	stream := make([]byte, 63*10)
	units := Stripe(stream, 5, 63)
	units[2][1] = nil // kill global unit 2 + 1*5 = 7
	_, missing := Destripe(units, 5, 63, 10)
	if len(missing) != 1 || missing[0] != 7 {
		t.Fatalf("missing = %v, want [7]", missing)
	}
}

func TestStripeQuick(t *testing.T) {
	prop := func(data []byte, rawLanes uint8) bool {
		lanes := 1 + int(rawLanes)%16
		units := Stripe(data, lanes, 9)
		total := (len(data) + 8) / 9
		got, missing := Destripe(units, lanes, 9, total)
		return len(missing) == 0 && bytes.Equal(got[:len(data)], data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStripePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Stripe with zero lanes did not panic")
		}
	}()
	Stripe(nil, 0, 9)
}

// --- Framer ---

func TestFramerRoundTrip(t *testing.T) {
	for _, fec := range []FEC{NoFEC{}, HammingFEC{}, NewRSLite()} {
		f := NewFramer(fec, 63)
		payload := make([]byte, 63)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		wire := f.Encode(5, 42, payload)
		frames, st := f.DecodeStream(wire)
		if len(frames) != 1 {
			t.Fatalf("%s: got %d frames", fec.Name(), len(frames))
		}
		got := frames[0]
		if got.Lane != 5 || got.Seq != 42 || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("%s: frame mismatch: %+v", fec.Name(), got)
		}
		if st.Frames != 1 || st.CRCFailures != 0 {
			t.Errorf("%s: stats %+v", fec.Name(), st)
		}
	}
}

func TestFramerHuntsThroughSkew(t *testing.T) {
	f := NewFramer(HammingFEC{}, 63)
	payload := make([]byte, 63)
	wire := f.Encode(1, 7, payload)
	// Random garbage prefix, as a skewed channel would present.
	rng := rand.New(rand.NewSource(7))
	garbage := make([]byte, 200)
	rng.Read(garbage)
	stream := append(garbage, wire...)
	frames, _ := f.DecodeStream(stream)
	found := false
	for _, fr := range frames {
		if fr.Lane == 1 && fr.Seq == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("frame not recovered after skew garbage")
	}
}

func TestFramerCorrectsWithFEC(t *testing.T) {
	f := NewFramer(NewRSLite(), 63)
	payload := make([]byte, 63)
	wire := f.Encode(0, 0, payload)
	wire[10] ^= 0xff // corrupt one byte inside the FEC region
	frames, st := f.DecodeStream(wire)
	if len(frames) != 1 {
		t.Fatalf("FEC did not save the frame: %+v", st)
	}
	if st.Corrections == 0 {
		t.Error("corrections not reported")
	}
}

func TestFramerDropsOnNoFECCorruption(t *testing.T) {
	f := NewFramer(NoFEC{}, 63)
	payload := make([]byte, 63)
	wire := f.Encode(0, 0, payload)
	wire[10] ^= 0x01
	frames, st := f.DecodeStream(wire)
	if len(frames) != 0 {
		t.Fatal("corrupted unprotected frame accepted")
	}
	if st.CRCFailures == 0 {
		t.Error("CRC failure not counted")
	}
}

func TestFramerMarkerCorruption(t *testing.T) {
	f := NewFramer(HammingFEC{}, 63)
	wire := f.Encode(0, 0, make([]byte, 63))
	wire[0] ^= 0xff // destroy the marker
	frames, _ := f.DecodeStream(wire)
	if len(frames) != 0 {
		t.Fatal("frame with destroyed marker recovered")
	}
}

func TestFramerPayloadLenPanic(t *testing.T) {
	f := NewFramer(NoFEC{}, 63)
	defer func() {
		if recover() == nil {
			t.Error("wrong payload length did not panic")
		}
	}()
	f.Encode(0, 0, make([]byte, 10))
}

// --- Monitor ---

func TestMonitorClassification(t *testing.T) {
	m := NewMonitor(4, DefaultMonitorConfig())
	// Channel 0: clean.
	m.Observe(0, 100, 100, 0, 1e9)
	if m.Health(0).State != Healthy {
		t.Error("clean channel not healthy")
	}
	// Channel 1: high corrected-error rate -> degraded.
	m.Observe(1, 100, 100, 5000, 1e6)
	if m.Health(1).State != Degraded {
		t.Errorf("noisy channel state = %v", m.Health(1).State)
	}
	// Channel 2: most frames missing -> failed.
	m.Observe(2, 100, 10, 0, 1e6)
	if m.Health(2).State != Failed {
		t.Errorf("lossy channel state = %v", m.Health(2).State)
	}
	// Failed is sticky even if a later window looks fine.
	m.Observe(2, 100, 100, 0, 1e6)
	if m.Health(2).State != Failed {
		t.Error("failed state should be sticky")
	}
}

func TestMonitorRecovery(t *testing.T) {
	m := NewMonitor(1, DefaultMonitorConfig())
	m.Observe(0, 10, 10, 1000, 1e6) // degraded
	if m.Health(0).State != Degraded {
		t.Fatal("setup failed")
	}
	// Lots of clean traffic dilutes the estimate below threshold.
	m.Observe(0, 1000, 1000, 0, 1e12)
	if m.Health(0).State != Healthy {
		t.Errorf("channel did not recover: %v", m.Health(0).State)
	}
}

func TestMonitorBEREstimate(t *testing.T) {
	m := NewMonitor(1, DefaultMonitorConfig())
	m.Observe(0, 10, 10, 100, 1e8)
	if got := m.Health(0).EstimatedBER(); math.Abs(got-1e-6) > 1e-12 {
		t.Errorf("BER estimate = %v", got)
	}
	if (ChannelHealth{}).EstimatedBER() != 0 {
		t.Error("zero observation should estimate 0")
	}
}

func TestMonitorWorstChannels(t *testing.T) {
	m := NewMonitor(3, DefaultMonitorConfig())
	m.Observe(0, 1, 1, 10, 1e6)
	m.Observe(1, 1, 1, 1000, 1e6)
	m.Observe(2, 1, 1, 100, 1e6)
	worst := m.WorstChannels(2)
	if len(worst) != 2 || worst[0].Physical != 1 || worst[1].Physical != 2 {
		t.Errorf("worst = %+v", worst)
	}
	if len(m.WorstChannels(10)) != 3 {
		t.Error("k > n should clamp")
	}
}

func TestMonitorBounds(t *testing.T) {
	m := NewMonitor(2, DefaultMonitorConfig())
	m.Observe(-1, 1, 1, 0, 1) // must not panic
	m.Observe(5, 1, 1, 0, 1)
	m.MarkFailed(5)
	m.MarkFailed(1)
	if got := m.FailedChannels(); len(got) != 1 || got[0] != 1 {
		t.Errorf("failed = %v", got)
	}
}

// --- Mapper ---

func TestMapperBasics(t *testing.T) {
	m, err := NewMapper(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLanes() != 4 || m.SparesLeft() != 2 || m.NumChannels() != 6 {
		t.Fatal("initial shape wrong")
	}
	for lane := 0; lane < 4; lane++ {
		if m.Physical(lane) != lane {
			t.Fatal("identity map expected")
		}
	}
	if m.LaneOf(4) != -1 {
		t.Error("spare should have no lane")
	}
}

func TestMapperFailRemapsToSpare(t *testing.T) {
	m, _ := NewMapper(4, 2)
	ev := m.Fail(2)
	if ev.Lane != 2 || ev.Spare != 4 || ev.Degraded {
		t.Fatalf("event = %+v", ev)
	}
	if m.Physical(2) != 4 || m.SparesLeft() != 1 || m.NumLanes() != 4 {
		t.Fatal("remap state wrong")
	}
	if ev.String() == "" {
		t.Error("empty event string")
	}
}

func TestMapperFailSpare(t *testing.T) {
	m, _ := NewMapper(4, 2)
	ev := m.Fail(5) // a spare
	if ev.Lane != -1 || m.SparesLeft() != 1 || m.NumLanes() != 4 {
		t.Fatalf("spare failure mishandled: %+v", ev)
	}
}

func TestMapperDegradesWhenSparesExhausted(t *testing.T) {
	m, _ := NewMapper(3, 1)
	m.Fail(0) // uses the spare
	ev := m.Fail(1)
	if !ev.Degraded || ev.Spare != -1 {
		t.Fatalf("expected degradation: %+v", ev)
	}
	if m.NumLanes() != 2 {
		t.Errorf("lanes = %d, want 2", m.NumLanes())
	}
}

func TestMapperDoubleFailIdempotent(t *testing.T) {
	m, _ := NewMapper(3, 1)
	m.Fail(1)
	ev := m.Fail(1)
	if ev.Lane != -1 || ev.Spare != -1 {
		t.Errorf("double fail should be a no-op: %+v", ev)
	}
}

func TestMapperRejectsBadShape(t *testing.T) {
	if _, err := NewMapper(0, 1); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := NewMapper(1, -1); err == nil {
		t.Error("negative spares accepted")
	}
}
