package phy

import "testing"

// Edge cases of the monitor/maintenance state machine that the happy-path
// maintenance tests don't reach: spare-pool exhaustion with no reserve,
// worst-first ordering under simultaneous drift, degradation when the
// pool is already empty, and the transition counters behind them.

func TestMaintainKeepSparesZeroExhaustsPool(t *testing.T) {
	link := maintFixture(t) // 20 lanes + 3 spares
	for _, p := range []int{2, 5, 9, 12} {
		link.SetChannelBER(p, 1e-4)
	}
	trafficRounds(t, link, 5)
	policy := MaintenancePolicy{SpareAboveBER: 1e-6, KeepSpares: 0}
	actions := link.Maintain(policy)
	// With no reserve the policy may consume the whole pool — but only
	// the pool: the fourth drifting channel must stay in service rather
	// than degrade the link.
	if len(actions) != 3 {
		t.Fatalf("actions = %d, want 3 (pool size): %v", len(actions), actions)
	}
	if left := link.Mapper().SparesLeft(); left != 0 {
		t.Errorf("spares left = %d, want 0", left)
	}
	if lanes := link.Mapper().NumLanes(); lanes != 20 {
		t.Errorf("lanes = %d; proactive maintenance must never degrade the link", lanes)
	}
	for _, a := range actions {
		if a.Event.Degraded {
			t.Errorf("action degraded the link: %v", a)
		}
	}
	// Exactly one of the four drifters is still carrying traffic.
	stillActive := 0
	for _, p := range []int{2, 5, 9, 12} {
		if link.Mapper().LaneOf(p) >= 0 {
			stillActive++
		}
	}
	if stillActive != 1 {
		t.Errorf("%d drifting channels still active, want 1", stillActive)
	}
	// A second pass has nothing left to spend.
	if again := link.Maintain(policy); len(again) != 0 {
		t.Errorf("maintenance acted with an empty pool: %v", again)
	}
}

func TestMaintainOrdersSimultaneousDriftWorstFirst(t *testing.T) {
	link := maintFixture(t)
	// Three channels cross the policy line in the same window, at
	// different severities. Replacement must go worst-first so a tight
	// spare budget is always spent on the biggest risk.
	link.SetChannelBER(17, 2e-5)
	link.SetChannelBER(3, 5e-5)
	link.SetChannelBER(12, 1e-4)
	trafficRounds(t, link, 5)
	actions := link.Maintain(MaintenancePolicy{SpareAboveBER: 1e-6, KeepSpares: 0})
	if len(actions) != 3 {
		t.Fatalf("actions = %v, want 3", actions)
	}
	want := []int{12, 3, 17}
	for i, a := range actions {
		if a.Physical != want[i] {
			t.Fatalf("action %d spared channel %d, want %d (worst first): %v",
				i, a.Physical, want[i], actions)
		}
	}
	for i := 1; i < len(actions); i++ {
		if actions[i].EstimatedBER > actions[i-1].EstimatedBER {
			t.Errorf("actions not sorted by estimated BER: %v", actions)
		}
	}
}

func TestDegradedToFailedWithNoSpares(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 20
	cfg.Spares = 0
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: channel 6 drifts — corrections push its lifetime estimate
	// over the degraded line while every frame still arrives.
	link.SetChannelBER(6, 3e-5)
	trafficRounds(t, link, 3)
	if st := link.Monitor().Health(6).State; st != Degraded {
		t.Fatalf("state after drift = %v, want degraded", st)
	}
	// Phase 2: the channel dies outright; the next window classifies the
	// loss as a failure.
	link.KillChannel(6)
	trafficRounds(t, link, 1)
	if st := link.Monitor().Health(6).State; st != Failed {
		t.Fatalf("state after kill = %v, want failed", st)
	}
	tr := link.Monitor().Transitions()
	if tr.HealthyToDegraded != 1 || tr.DegradedToFailed != 1 || tr.HealthyToFailed != 0 {
		t.Errorf("transitions = %+v, want exactly healthy->degraded->failed", tr)
	}
	// Phase 3: with zero spares, sparing out the failure must degrade the
	// link to fewer lanes instead of remapping.
	ev := link.FailChannel(6)
	if !ev.Degraded || ev.Spare != -1 {
		t.Fatalf("remap event = %v, want degradation with no spare", ev)
	}
	if lanes := link.Mapper().NumLanes(); lanes != 19 {
		t.Errorf("lanes = %d, want 19", lanes)
	}
	// The narrowed link still delivers cleanly.
	_, st, err := link.Exchange([][]byte{make([]byte, 1500)})
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != st.FramesIn {
		t.Errorf("delivered %d/%d after degradation", st.FramesDelivered, st.FramesIn)
	}
}

func TestTransitionCountsRecovery(t *testing.T) {
	link := maintFixture(t)
	// A short BER excursion marks the channel degraded; sustained clean
	// traffic dilutes the lifetime estimate back under the line and the
	// monitor must record the recovery.
	link.SetChannelBER(4, 2e-5)
	trafficRounds(t, link, 2)
	if st := link.Monitor().Health(4).State; st != Degraded {
		t.Fatalf("state after excursion = %v, want degraded", st)
	}
	link.SetChannelBER(4, 0)
	for i := 0; i < 200 && link.Monitor().Health(4).State == Degraded; i++ {
		trafficRounds(t, link, 1)
	}
	if st := link.Monitor().Health(4).State; st != Healthy {
		t.Fatalf("state never recovered: %v (estBER %.2e)",
			st, link.Monitor().Health(4).EstimatedBER())
	}
	tr := link.Monitor().Transitions()
	if tr.HealthyToDegraded != 1 || tr.DegradedToHealthy != 1 {
		t.Errorf("transitions = %+v, want one degradation and one recovery", tr)
	}
}

func TestMarkFailedCountsOnceAndHooksFire(t *testing.T) {
	m := NewMonitor(4, DefaultMonitorConfig())
	var calls []ChannelState
	m.SetTransitionHook(func(physical int, from, to ChannelState) {
		if physical != 2 {
			t.Errorf("hook physical = %d, want 2", physical)
		}
		calls = append(calls, to)
	})
	m.MarkFailed(2)
	m.MarkFailed(2) // no state change: must not count or fire again
	m.MarkFailed(-1)
	m.MarkFailed(99)
	tr := m.Transitions()
	if tr.HealthyToFailed != 1 {
		t.Errorf("HealthyToFailed = %d, want 1", tr.HealthyToFailed)
	}
	if len(calls) != 1 || calls[0] != Failed {
		t.Errorf("hook calls = %v, want one failed transition", calls)
	}
	m.SetTransitionHook(nil)
	m.MarkFailed(3) // nil hook must be a no-op, not a panic
	if got := m.Transitions().HealthyToFailed; got != 2 {
		t.Errorf("HealthyToFailed = %d, want 2", got)
	}
}
