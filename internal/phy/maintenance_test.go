package phy

import (
	"math/rand"
	"strings"
	"testing"
)

func maintFixture(t *testing.T) *Link {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Lanes = 20
	cfg.Spares = 3
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func trafficRounds(t *testing.T, link *Link, rounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(30))
	frames := make([][]byte, 40)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	for r := 0; r < rounds; r++ {
		if _, _, err := link.Exchange(frames); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaintainHealthyLinkNoAction(t *testing.T) {
	link := maintFixture(t)
	trafficRounds(t, link, 3)
	if actions := link.Maintain(DefaultMaintenancePolicy()); len(actions) != 0 {
		t.Fatalf("healthy link got actions: %v", actions)
	}
}

func TestMaintainSparesOutDriftingChannel(t *testing.T) {
	link := maintFixture(t)
	link.SetChannelBER(7, 3e-5) // drifting well past the 1e-6 policy line
	trafficRounds(t, link, 5)
	actions := link.Maintain(DefaultMaintenancePolicy())
	if len(actions) != 1 {
		t.Fatalf("actions = %v", actions)
	}
	if actions[0].Physical != 7 {
		t.Errorf("spared channel %d, want 7", actions[0].Physical)
	}
	if actions[0].Event.Spare < 0 {
		t.Error("no spare assigned")
	}
	if !strings.Contains(actions[0].String(), "proactive") {
		t.Error("action string broken")
	}
	// Channel 7 no longer carries a lane.
	if link.Mapper().LaneOf(7) != -1 {
		t.Error("channel 7 still active")
	}
	// And the link still runs clean at full width.
	trafficRounds(t, link, 1)
	if link.Mapper().NumLanes() != 20 {
		t.Error("lane count changed")
	}
}

func TestMaintainRespectsReserve(t *testing.T) {
	link := maintFixture(t) // 3 spares, KeepSpares 1
	for _, p := range []int{2, 5, 9, 12} {
		link.SetChannelBER(p, 1e-4)
	}
	trafficRounds(t, link, 5)
	actions := link.Maintain(DefaultMaintenancePolicy())
	// Only 2 proactive remaps allowed (3 spares - 1 reserved).
	if len(actions) != 2 {
		t.Fatalf("actions = %d, want 2: %v", len(actions), actions)
	}
	if link.Mapper().SparesLeft() != 1 {
		t.Errorf("spares left = %d, want the reserve", link.Mapper().SparesLeft())
	}
}

func TestMaintainWorstFirst(t *testing.T) {
	link := maintFixture(t)
	link.SetChannelBER(3, 1e-5)
	link.SetChannelBER(8, 1e-4) // worse
	trafficRounds(t, link, 5)
	policy := DefaultMaintenancePolicy()
	policy.KeepSpares = 2 // only one action possible
	actions := link.Maintain(policy)
	if len(actions) != 1 || actions[0].Physical != 8 {
		t.Fatalf("actions = %v, want channel 8 first", actions)
	}
}

func TestMaintainIdempotent(t *testing.T) {
	link := maintFixture(t)
	link.SetChannelBER(7, 1e-4)
	trafficRounds(t, link, 5)
	first := link.Maintain(DefaultMaintenancePolicy())
	second := link.Maintain(DefaultMaintenancePolicy())
	if len(first) != 1 || len(second) != 0 {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestMaintainDisabledPolicy(t *testing.T) {
	link := maintFixture(t)
	link.SetChannelBER(7, 1e-3)
	trafficRounds(t, link, 2)
	if actions := link.Maintain(MaintenancePolicy{}); actions != nil {
		t.Error("zero policy should do nothing")
	}
}

func TestMaintainAgingStory(t *testing.T) {
	// The full predictive-maintenance story: a channel ages (BER climbs
	// decade by decade); maintenance replaces it before the link ever
	// loses a frame.
	link := maintFixture(t)
	rng := rand.New(rand.NewSource(31))
	frames := make([][]byte, 30)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	lost := 0
	for _, ber := range []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4} {
		link.SetChannelBER(4, ber)
		for r := 0; r < 3; r++ {
			_, st, err := link.Exchange(frames)
			if err != nil {
				t.Fatal(err)
			}
			lost += st.FramesIn - st.FramesDelivered
		}
		link.Maintain(DefaultMaintenancePolicy())
		if link.Mapper().LaneOf(4) == -1 {
			break // replaced
		}
	}
	if link.Mapper().LaneOf(4) != -1 {
		t.Fatal("aging channel never replaced")
	}
	if lost != 0 {
		t.Errorf("lost %d frames during a graceful aging episode", lost)
	}
}
