package phy

import (
	"errors"
	"fmt"
)

// Mapper assigns logical lanes to physical channels and manages the spare
// pool. This is the reliability half of the wide-and-slow story: with
// hundreds of channels, a handful of spares turns individual channel death
// from a link-down event (as with a laser) into a transparent remap.
//
// Remaps take effect at superframe boundaries, mirroring how the hardware
// swaps lanes between alignment periods.
type Mapper struct {
	lanes  []int        // lane -> physical channel
	spares []int        // unused physical channels, in preference order
	failed map[int]bool // physical channels taken out of service
}

// NewMapper creates a mapper with `lanes` active lanes and `spares`
// additional spare channels; physical channels are numbered
// 0..lanes+spares-1 with the spares at the top.
func NewMapper(lanes, spares int) (*Mapper, error) {
	if lanes <= 0 || spares < 0 {
		return nil, errors.New("phy: mapper needs lanes > 0 and spares >= 0")
	}
	m := &Mapper{
		lanes:  make([]int, lanes),
		spares: make([]int, 0, spares),
		failed: make(map[int]bool),
	}
	for i := range m.lanes {
		m.lanes[i] = i
	}
	for i := 0; i < spares; i++ {
		m.spares = append(m.spares, lanes+i)
	}
	return m, nil
}

// NumLanes returns the number of active logical lanes.
func (m *Mapper) NumLanes() int { return len(m.lanes) }

// NumChannels returns the total number of physical channels managed.
func (m *Mapper) NumChannels() int { return len(m.lanes) + len(m.spares) + len(m.failed) }

// SparesLeft returns the number of unused spare channels.
func (m *Mapper) SparesLeft() int { return len(m.spares) }

// Physical returns the physical channel for a logical lane.
func (m *Mapper) Physical(lane int) int { return m.lanes[lane] }

// LaneOf returns the logical lane currently mapped to a physical channel,
// or -1 if it is a spare or failed.
func (m *Mapper) LaneOf(physical int) int {
	for lane, p := range m.lanes {
		if p == physical {
			return lane
		}
	}
	return -1
}

// RemapEvent describes the outcome of a failure.
type RemapEvent struct {
	Physical int  // the channel that failed
	Lane     int  // the lane it carried (-1 if it was a spare)
	Spare    int  // the spare that took over (-1 if none available)
	Degraded bool // true when the link lost a lane instead of remapping
}

// String renders the event.
func (e RemapEvent) String() string {
	switch {
	case e.Lane < 0:
		return fmt.Sprintf("spare channel %d failed (no traffic impact)", e.Physical)
	case e.Degraded:
		return fmt.Sprintf("channel %d (lane %d) failed, no spares: degraded to %s", e.Physical, e.Lane, "fewer lanes")
	default:
		return fmt.Sprintf("channel %d (lane %d) failed, remapped to spare %d", e.Physical, e.Lane, e.Spare)
	}
}

// Fail marks a physical channel dead and repairs the lane map: the lane is
// remapped onto the first available spare; with no spares left the lane is
// removed and the link degrades to fewer lanes (graceful rate degradation
// rather than link-down).
func (m *Mapper) Fail(physical int) RemapEvent {
	if m.failed[physical] {
		return RemapEvent{Physical: physical, Lane: -1, Spare: -1}
	}
	m.failed[physical] = true

	// A failed spare just shrinks the pool.
	for i, s := range m.spares {
		if s == physical {
			m.spares = append(m.spares[:i], m.spares[i+1:]...)
			return RemapEvent{Physical: physical, Lane: -1, Spare: -1}
		}
	}
	lane := m.LaneOf(physical)
	if lane < 0 {
		return RemapEvent{Physical: physical, Lane: -1, Spare: -1}
	}
	if len(m.spares) > 0 {
		spare := m.spares[0]
		m.spares = m.spares[1:]
		m.lanes[lane] = spare
		return RemapEvent{Physical: physical, Lane: lane, Spare: spare}
	}
	// Degrade: drop the lane entirely.
	m.lanes = append(m.lanes[:lane], m.lanes[lane+1:]...)
	return RemapEvent{Physical: physical, Lane: lane, Spare: -1, Degraded: true}
}

// ActivePhysicals returns the physical channel of every active lane, in
// lane order.
func (m *Mapper) ActivePhysicals() []int {
	out := make([]int, len(m.lanes))
	copy(out, m.lanes)
	return out
}
