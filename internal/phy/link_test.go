package phy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func testFrames(rng *rand.Rand, n, size int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = make([]byte, size)
		rng.Read(frames[i])
	}
	return frames
}

func mustLink(t *testing.T, cfg Config) *Link {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestExchangeCleanChannels(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	frames := testFrames(rng, 20, 1500)
	got, st, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 20 || st.FramesCorrupted != 0 || st.UnitsLost != 0 {
		t.Fatalf("stats: %+v", st)
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestExchangeVariousSizes(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	sizes := []int{3, 4, 7, 64, 65, 512, 1500, 9000}
	frames := make([][]byte, len(sizes))
	for i, s := range sizes {
		frames[i] = make([]byte, s)
		rng.Read(frames[i])
	}
	got, st, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != len(sizes) {
		t.Fatalf("delivered %d of %d: %+v", st.FramesDelivered, len(sizes), st)
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("size %d mismatch", sizes[i])
		}
	}
}

func TestExchangeRejectsTinyFrame(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	if _, _, err := l.Exchange([][]byte{{1, 2}}); err == nil {
		t.Error("2-byte frame accepted")
	}
}

func TestExchangeEmpty(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	got, st, err := l.Exchange(nil)
	if err != nil || len(got) != 0 || st.FramesDelivered != 0 {
		t.Fatalf("empty exchange: %v %v %+v", got, err, st)
	}
}

func TestExchangeWithModerateBER(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FEC = NewRSLite()
	l := mustLink(t, cfg)
	for p := 0; p < l.Mapper().NumChannels(); p++ {
		l.SetChannelBER(p, 1e-6)
	}
	rng := rand.New(rand.NewSource(3))
	frames := testFrames(rng, 100, 1500)
	got, st, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered < 99 {
		t.Fatalf("FEC should carry 1e-6 BER easily: %+v", st)
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestFECPreventsLossThatNoFECSuffers(t *testing.T) {
	run := func(fec FEC) ExchangeStats {
		cfg := DefaultConfig()
		cfg.FEC = fec
		cfg.Seed = 7
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < l.Mapper().NumChannels(); p++ {
			l.SetChannelBER(p, 3e-5)
		}
		rng := rand.New(rand.NewSource(4))
		_, st, err := l.Exchange(testFrames(rng, 200, 1500))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	bare := run(NoFEC{})
	coded := run(NewRSLite())
	if bare.FramesDelivered >= 200 {
		t.Skip("unprotected run had no losses; raise BER")
	}
	if coded.FramesDelivered <= bare.FramesDelivered {
		t.Errorf("FEC did not help: %d vs %d delivered", coded.FramesDelivered, bare.FramesDelivered)
	}
	if coded.Corrections == 0 {
		t.Error("no corrections recorded")
	}
}

func TestExchangeSurvivesSkew(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	for p := 0; p < l.Mapper().NumChannels(); p++ {
		l.SetChannelSkew(p, rng.Intn(50))
	}
	frames := testFrames(rng, 30, 1000)
	got, st, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 30 {
		t.Fatalf("skew broke reassembly: %+v", st)
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatal("frame mismatch under skew")
		}
	}
}

func TestDeadChannelDetectedAndSpared(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 20
	cfg.Spares = 2
	l := mustLink(t, cfg)
	rng := rand.New(rand.NewSource(6))

	l.KillChannel(7)
	_, st1, err := l.Exchange(testFrames(rng, 50, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if st1.UnitsLost == 0 {
		t.Fatal("dead channel lost no units?")
	}
	if l.Monitor().Health(7).State != Failed {
		t.Fatalf("monitor did not flag channel 7: %v", l.Monitor().Health(7).State)
	}

	// Spare it out; traffic must fully recover.
	ev := l.FailChannel(7)
	if ev.Spare != 20 {
		t.Fatalf("remap event: %+v", ev)
	}
	frames := testFrames(rng, 50, 1500)
	got, st2, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st2.FramesDelivered != 50 || st2.UnitsLost != 0 {
		t.Fatalf("after sparing: %+v", st2)
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatal("frame mismatch after sparing")
		}
	}
}

func TestGracefulDegradationWithoutSpares(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 10
	cfg.Spares = 0
	l := mustLink(t, cfg)
	rate0 := l.AggregateRate()

	l.KillChannel(3)
	ev := l.FailChannel(3)
	if !ev.Degraded {
		t.Fatalf("expected degradation: %+v", ev)
	}
	if l.Mapper().NumLanes() != 9 {
		t.Fatal("lane not removed")
	}
	if l.AggregateRate() >= rate0 {
		t.Error("aggregate rate should drop")
	}
	// But the link still works.
	rng := rand.New(rand.NewSource(7))
	frames := testFrames(rng, 20, 1200)
	got, st, err := l.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 20 {
		t.Fatalf("degraded link dropped frames: %+v", st)
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatal("frame mismatch on degraded link")
		}
	}
}

func TestExchangeDeterministic(t *testing.T) {
	run := func() ExchangeStats {
		cfg := DefaultConfig()
		cfg.Seed = 99
		l, _ := New(cfg)
		for p := 0; p < l.Mapper().NumChannels(); p++ {
			l.SetChannelBER(p, 1e-5)
		}
		rng := rand.New(rand.NewSource(8))
		_, st, err := l.Exchange(testFrames(rng, 50, 1500))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.FramesDelivered != b.FramesDelivered || a.Corrections != b.Corrections ||
		a.UnitsLost != b.UnitsLost {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestGoodputFraction(t *testing.T) {
	l := mustLink(t, DefaultConfig())
	g := l.GoodputFraction()
	if g <= 0.5 || g >= 1 {
		t.Errorf("goodput fraction = %v, want (0.5,1)", g)
	}
	// Measured efficiency should be in the same ballpark as predicted.
	rng := rand.New(rand.NewSource(9))
	_, st, err := l.Exchange(testFrames(rng, 200, 1500))
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(st.PayloadBytes) / float64(st.WireBytes)
	if measured < g*0.8 || measured > g*1.05 {
		t.Errorf("measured efficiency %v vs predicted %v", measured, g)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Lanes = 0
	if _, err := New(bad); err == nil {
		t.Error("zero lanes accepted")
	}
	bad = DefaultConfig()
	bad.UnitLen = 10 // not multiple of 9
	if _, err := New(bad); err == nil {
		t.Error("misaligned UnitLen accepted")
	}
	// Defaults fill in.
	cfg := Config{Lanes: 2}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Config().UnitLen != 243 {
		t.Error("UnitLen default not applied")
	}
}

func TestFECByName(t *testing.T) {
	for _, name := range []string{"none", "", "hamming72", "rslite", "kp4"} {
		if _, err := FECByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := FECByName("quantum"); err == nil {
		t.Error("unknown FEC accepted")
	}
}

func TestChannelStateString(t *testing.T) {
	for _, s := range []ChannelState{Healthy, Degraded, Failed, ChannelState(9)} {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
}

func BenchmarkExchange100ch(b *testing.B) {
	cfg := DefaultConfig()
	l, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < l.Mapper().NumChannels(); p++ {
		l.SetChannelBER(p, 1e-9)
	}
	rng := rand.New(rand.NewSource(1))
	frames := make([][]byte, 64)
	total := 0
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
		total += 1500
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := l.Exchange(frames)
		if err != nil {
			b.Fatal(err)
		}
		if st.FramesDelivered != 64 {
			b.Fatal(fmt.Sprintf("dropped frames: %+v", st))
		}
	}
}
