package phy

import (
	"fmt"
	"sort"
)

// ChannelState is the health state of one physical channel.
type ChannelState int

// Health states.
const (
	Healthy  ChannelState = iota
	Degraded              // correcting persistently, still delivering
	Failed                // not delivering; must be spared out
)

// String names the state.
func (s ChannelState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MonitorConfig tunes the health classifier.
type MonitorConfig struct {
	// DegradedBER is the estimated pre-FEC BER above which a channel is
	// declared degraded.
	DegradedBER float64
	// FailedLossRatio is the fraction of expected frames missing in an
	// observation window above which the channel is declared failed.
	FailedLossRatio float64
}

// DefaultMonitorConfig returns the thresholds used by the experiments.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{DegradedBER: 1e-6, FailedLossRatio: 0.5}
}

// ChannelHealth aggregates one physical channel's observed statistics.
type ChannelHealth struct {
	Physical     int
	FramesOK     uint64
	FramesLost   uint64
	Corrections  uint64
	BitsObserved uint64
	State        ChannelState
}

// EstimatedBER returns the pre-FEC BER estimate from FEC corrections.
//
// The estimate only exists where FEC decoded something: a channel with
// BitsObserved == 0 returns 0, which does NOT mean "perfect" — a
// hard-killed channel that delivered nothing (FramesLost > 0) has no BER
// evidence at all. Check HasBERData before treating 0 as a measurement,
// and use LossRatio for the delivery dimension. The classifier is
// consistent with this split: Observe declares such channels Failed via
// the FailedLossRatio window test, never via the BER estimate.
func (h ChannelHealth) EstimatedBER() float64 {
	if h.BitsObserved == 0 {
		return 0
	}
	return float64(h.Corrections) / float64(h.BitsObserved)
}

// HasBERData reports whether EstimatedBER is backed by decoded bits. It
// is the NaN-free "no data" signal: false means the 0 from EstimatedBER
// is absence of evidence, not a perfect channel.
func (h ChannelHealth) HasBERData() bool { return h.BitsObserved > 0 }

// LossRatio returns the lifetime fraction of expected frames that never
// arrived (0 when the channel has seen no traffic). A dead channel shows
// LossRatio 1 with HasBERData false — the loss dimension is where its
// damage is visible, not the BER estimate.
func (h ChannelHealth) LossRatio() float64 {
	total := h.FramesOK + h.FramesLost
	if total == 0 {
		return 0
	}
	return float64(h.FramesLost) / float64(total)
}

// TransitionCounts aggregates state-machine transitions across all
// channels of a monitor. Failure-injection harnesses use these to assert
// that device-level events surfaced as the expected classifications.
type TransitionCounts struct {
	HealthyToDegraded uint64
	DegradedToHealthy uint64
	DegradedToFailed  uint64
	HealthyToFailed   uint64
}

// Monitor tracks the health of every physical channel from the per-frame
// statistics the framer reports. This is the observability layer a real
// Mosaic module exposes to its sparing logic: per-channel corrected-error
// counters are a free byproduct of FEC decoding.
type Monitor struct {
	cfg         MonitorConfig
	channels    []ChannelHealth
	transitions TransitionCounts
	onTransit   func(physical int, from, to ChannelState)
}

// NewMonitor creates a monitor over n physical channels.
func NewMonitor(n int, cfg MonitorConfig) *Monitor {
	m := &Monitor{cfg: cfg, channels: make([]ChannelHealth, n)}
	for i := range m.channels {
		m.channels[i].Physical = i
	}
	return m
}

// Observe folds one observation window for a physical channel: how many
// frames were expected, how many arrived, how many errors were corrected,
// and how many payload bits were checked.
func (m *Monitor) Observe(physical, expectedFrames, gotFrames, corrections int, bits uint64) {
	if physical < 0 || physical >= len(m.channels) {
		return
	}
	h := &m.channels[physical]
	h.FramesOK += uint64(gotFrames)
	if expectedFrames > gotFrames {
		h.FramesLost += uint64(expectedFrames - gotFrames)
	}
	h.Corrections += uint64(corrections)
	h.BitsObserved += bits

	// Classify using this window (loss) and lifetime (BER estimate). The
	// two dimensions are deliberately independent: a channel delivering
	// nothing has no decoded bits and therefore no BER estimate
	// (HasBERData == false), so it must fail on the loss test here — the
	// BER clauses below can never fire for it, and its EstimatedBER of 0
	// is "no data", not "healthy".
	switch {
	case expectedFrames > 0 &&
		float64(expectedFrames-gotFrames)/float64(expectedFrames) >= m.cfg.FailedLossRatio:
		m.setState(physical, Failed)
	case h.State != Failed && h.EstimatedBER() > m.cfg.DegradedBER:
		m.setState(physical, Degraded)
	case h.State == Degraded && h.EstimatedBER() <= m.cfg.DegradedBER:
		m.setState(physical, Healthy)
	}
}

// setState applies a classification, counting the transition and firing
// the hook when the state actually changes.
func (m *Monitor) setState(physical int, to ChannelState) {
	h := &m.channels[physical]
	from := h.State
	if from == to {
		return
	}
	h.State = to
	switch {
	case from == Healthy && to == Degraded:
		m.transitions.HealthyToDegraded++
	case from == Degraded && to == Healthy:
		m.transitions.DegradedToHealthy++
	case from == Degraded && to == Failed:
		m.transitions.DegradedToFailed++
	case from == Healthy && to == Failed:
		m.transitions.HealthyToFailed++
	}
	if m.onTransit != nil {
		m.onTransit(physical, from, to)
	}
}

// Transitions returns the cumulative transition counters.
func (m *Monitor) Transitions() TransitionCounts { return m.transitions }

// SetTransitionHook registers fn to be called on every channel state
// change (from Observe or MarkFailed). The hook runs synchronously on the
// observing goroutine — lane observations fold serially in lane order, so
// a fixed seed produces an identical call sequence at any worker count.
// Pass nil to remove the hook.
func (m *Monitor) SetTransitionHook(fn func(physical int, from, to ChannelState)) {
	m.onTransit = fn
}

// TransitionHook returns the currently installed hook (nil when unset),
// so a new subscriber can chain rather than replace it — the monitor has
// a single hook slot by design (deterministic call order).
func (m *Monitor) TransitionHook() func(physical int, from, to ChannelState) {
	return m.onTransit
}

// MarkFailed forces a channel into the failed state (e.g. laser-off test
// or an explicit kill in a failure-injection experiment).
func (m *Monitor) MarkFailed(physical int) {
	if physical >= 0 && physical < len(m.channels) {
		m.setState(physical, Failed)
	}
}

// Health returns a copy of one channel's health. An out-of-range index
// returns a zero-value health with Physical == -1 instead of panicking —
// the same silent guard Observe and MarkFailed apply, so callers probing
// a channel id from external input (a fault schedule, an HTTP query)
// cannot crash the process.
func (m *Monitor) Health(physical int) ChannelHealth {
	if physical < 0 || physical >= len(m.channels) {
		return ChannelHealth{Physical: -1}
	}
	return m.channels[physical]
}

// Snapshot returns a copy of all channels' health.
func (m *Monitor) Snapshot() []ChannelHealth {
	return m.SnapshotInto(nil)
}

// SnapshotInto copies every channel's health into dst, reusing its
// capacity (dst may be nil). Telemetry collectors call this once per
// superframe; reusing the buffer keeps the observation path
// allocation-free in steady state.
func (m *Monitor) SnapshotInto(dst []ChannelHealth) []ChannelHealth {
	return append(dst[:0], m.channels...)
}

// FailedChannels lists physical channels currently in the failed state.
func (m *Monitor) FailedChannels() []int {
	var out []int
	for i := range m.channels {
		if m.channels[i].State == Failed {
			out = append(out, i)
		}
	}
	return out
}

// WorstChannels returns the k channels with the highest estimated BER,
// worst first. Ties break on the physical channel index (ascending), so
// the order — and any exposition built from it — is stable across runs.
// k is clamped to [0, number of channels]; a negative k returns an empty
// slice instead of panicking.
func (m *Monitor) WorstChannels(k int) []ChannelHealth {
	snap := m.Snapshot()
	sort.Slice(snap, func(i, j int) bool {
		bi, bj := snap[i].EstimatedBER(), snap[j].EstimatedBER()
		if bi != bj {
			return bi > bj
		}
		return snap[i].Physical < snap[j].Physical
	})
	if k < 0 {
		k = 0
	}
	if k > len(snap) {
		k = len(snap)
	}
	return snap[:k]
}
